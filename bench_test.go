// Benchmarks regenerating every table and figure of the paper's
// evaluation (§4), one bench per artifact. Absolute values are recorded in
// EXPERIMENTS.md; run with:
//
//	go test -bench=. -benchmem
package ebbrt_test

import (
	"testing"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/apps/netpipe"
	"ebbrt/internal/core"
	"ebbrt/internal/event"
	"ebbrt/internal/experiments"
	"ebbrt/internal/jsvm"
	"ebbrt/internal/load"
	"ebbrt/internal/mem"
	"ebbrt/internal/sim"
	"ebbrt/internal/testbed"
)

// ---- Table 1: Ebb invocation -------------------------------------------

type benchRep struct{ n int }

func (r *benchRep) Bump() { r.n++ }

//go:noinline
func (r *benchRep) BumpNoInline() { r.n++ }

type benchBumper interface{ BumpVirtual() }

func (r *benchRep) BumpVirtual() { r.n++ }

type benchRep2 struct{ n int }

func (r *benchRep2) BumpVirtual() { r.n++ }

func BenchmarkTable1Inline(b *testing.B) {
	r := &benchRep{}
	for i := 0; i < b.N; i++ {
		r.Bump()
	}
}

func BenchmarkTable1NoInline(b *testing.B) {
	r := &benchRep{}
	for i := 0; i < b.N; i++ {
		r.BumpNoInline()
	}
}

func BenchmarkTable1Virtual(b *testing.B) {
	targets := []benchBumper{&benchRep{}, &benchRep2{}}
	for i := 0; i < b.N; i++ {
		targets[i&1].BumpVirtual()
	}
}

func BenchmarkTable1InlineEbb(b *testing.B) {
	d := core.NewDomain(1, core.NativeTable)
	ref := core.Allocate(d, func(int) *benchRep { return &benchRep{} })
	ref.Get(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref.Get(0).Bump()
	}
}

func BenchmarkTable1HostedEbb(b *testing.B) {
	d := core.NewDomain(1, core.HostedTable)
	ref := core.Allocate(d, func(int) *benchRep { return &benchRep{} })
	ref.Get(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref.Get(0).Bump()
	}
}

// ---- Figure 3: memory allocation ----------------------------------------

func benchAllocator(b *testing.B, a mem.Allocator) {
	b.Helper()
	for i := 0; i < 1000; i++ {
		a.AllocFree(0) // warm
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.AllocFree(0)
	}
}

func BenchmarkFigure3EbbRTAlloc(b *testing.B) {
	pages := mem.NewPageAllocator(2, 256<<20)
	m := mem.NewMalloc(pages, 1, func(int) int { return 0 })
	benchAllocator(b, &mem.EbbRTAllocator{M: m})
}

func BenchmarkFigure3GlibcStyleAlloc(b *testing.B) {
	benchAllocator(b, mem.NewGlibcStyle())
}

func BenchmarkFigure3JemallocStyleAlloc(b *testing.B) {
	benchAllocator(b, mem.NewJemallocStyle(1))
}

// BenchmarkFigure3ContentionModel reports the modelled 24-core glibc
// degradation factor (see EXPERIMENTS.md for why the model substitutes for
// real 24-core hardware here).
func BenchmarkFigure3ContentionModel(b *testing.B) {
	var rows []experiments.Figure3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure3([]int{1, 24}, 2000)
	}
	b.ReportMetric(rows[1].Cycles["glibc"]/rows[1].Cycles["EbbRT"], "glibc-vs-ebbrt-24c")
}

// ---- Figure 4: NetPIPE ---------------------------------------------------

func benchNetpipe(b *testing.B, kind testbed.ServerKind, size int) {
	b.Helper()
	var goodput float64
	for i := 0; i < b.N; i++ {
		pts, err := netpipe.Run(kind, []int{size}, 5)
		if err != nil {
			b.Fatal(err)
		}
		goodput = pts[0].GoodputMbps
	}
	b.ReportMetric(goodput, "Mbps")
}

func BenchmarkFigure4NetpipeEbbRT64B(b *testing.B)   { benchNetpipe(b, testbed.EbbRT, 64) }
func BenchmarkFigure4NetpipeLinux64B(b *testing.B)   { benchNetpipe(b, testbed.LinuxVM, 64) }
func BenchmarkFigure4NetpipeEbbRT256kB(b *testing.B) { benchNetpipe(b, testbed.EbbRT, 262144) }
func BenchmarkFigure4NetpipeLinux256kB(b *testing.B) { benchNetpipe(b, testbed.LinuxVM, 262144) }

// ---- Figures 5/6: memcached ---------------------------------------------

func benchMemcached(b *testing.B, kind testbed.ServerKind, cores int, rate float64) {
	b.Helper()
	var res load.MutilateResult
	for i := 0; i < b.N; i++ {
		pair := testbed.NewPair(kind, cores, 8)
		srv := memcached.NewServer(memcached.NewRCUStore(), cores)
		if err := srv.Serve(pair.Server); err != nil {
			b.Fatal(err)
		}
		cfg := load.DefaultMutilate(rate)
		cfg.Duration = 80 * sim.Millisecond
		dial := func(c *event.Ctx, cb appnet.Callbacks, onConnect func(*event.Ctx, appnet.Conn)) {
			pair.Client.Dial(c, testbed.ServerIP, memcached.Port, cb, onConnect)
		}
		res = load.RunMutilate(pair.Client, dial, srv, cfg)
	}
	b.ReportMetric(res.Mean.Micros(), "mean-us")
	b.ReportMetric(res.P99.Micros(), "p99-us")
	b.ReportMetric(res.AchievedRPS, "rps")
}

func BenchmarkFigure5MemcachedEbbRT(b *testing.B)   { benchMemcached(b, testbed.EbbRT, 1, 150000) }
func BenchmarkFigure5MemcachedLinux(b *testing.B)   { benchMemcached(b, testbed.LinuxVM, 1, 150000) }
func BenchmarkFigure5MemcachedNative(b *testing.B)  { benchMemcached(b, testbed.LinuxNative, 1, 150000) }
func BenchmarkFigure5MemcachedOSv(b *testing.B)     { benchMemcached(b, testbed.OSv, 1, 150000) }
func BenchmarkFigure6MemcachedEbbRT4c(b *testing.B) { benchMemcached(b, testbed.EbbRT, 4, 600000) }
func BenchmarkFigure6MemcachedLinux4c(b *testing.B) { benchMemcached(b, testbed.LinuxVM, 4, 600000) }

// ---- Figure 7: V8 suite ---------------------------------------------------

func BenchmarkFigure7SuiteEbbRT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		jsvm.RunSuite(jsvm.EbbRTEnv())
	}
}

func BenchmarkFigure7SuiteLinux(b *testing.B) {
	for i := 0; i < b.N; i++ {
		jsvm.RunSuite(jsvm.LinuxEnv())
	}
}

func BenchmarkFigure7Overall(b *testing.B) {
	var rows []experiments.Figure7Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure7()
	}
	b.ReportMetric(rows[len(rows)-1].EbbRTScore, "overall-score")
}

// ---- Table 2: webserver ----------------------------------------------------

func BenchmarkTable2Webserver(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2(0)
	}
	b.ReportMetric(rows[0].Result.Mean.Micros(), "ebbrt-mean-us")
	b.ReportMetric(rows[0].Result.P99.Micros(), "ebbrt-p99-us")
	b.ReportMetric(rows[1].Result.Mean.Micros(), "linux-mean-us")
	b.ReportMetric(rows[1].Result.P99.Micros(), "linux-p99-us")
}
