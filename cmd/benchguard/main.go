// Command benchguard is the CI benchmark regression gate: it runs the
// cluster-scaling, hot-key, replicated hot-key (R=3), lossy-link,
// memory-pressure, and frontend-tier experiments at smoke scale, writes
// the measured numbers to JSON artifacts, and exits non-zero if any
// headline number regresses below its committed floor. The floors are
// deliberately below the measured values (4x scaling measured vs 3.0
// floor; ~1.7x hot-key improvement measured vs 1.3 floor; ~1.9x
// replicated hot-key improvement measured vs 1.5 floor; ~6x
// adaptive-RTO advantage at 5% loss measured vs 1.5 floor; ~0.77 LRU
// hit rate under 2x memory pressure vs 0.55 floor; ~2.6x batched/per-op
// frontend throughput measured vs 1.3 floor) so the gate trips on real
// regressions, not noise. Two memory-pressure gates are hard, not
// floors: the bounded stores must never exceed their byte budget, and
// the expiry probe must find zero expired values served from any layer.
// The frontend gate additionally requires zero failed callbacks and at
// least one multi-op round actually formed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ebbrt/internal/audit"
	"ebbrt/internal/cluster"
	"ebbrt/internal/experiments"
	"ebbrt/internal/sim"
)

// report is the BENCH_hotkey.json schema.
type report struct {
	// Scaling4 is the binary-protocol sharded scaling speedup at 4
	// backends over 1 (the PR 1 acceptance number).
	Scaling4 float64 `json:"scaling_speedup_4_backends"`
	// HotKeyOffSpeedup / HotKeyOnSpeedup are the skewed-tail scaling
	// speedups at the sweep's largest backend count with the client
	// Ebb's hot-key cache off and on.
	HotKeyBackends   int     `json:"hotkey_backends"`
	HotKeyOffSpeedup float64 `json:"hotkey_off_speedup"`
	HotKeyOnSpeedup  float64 `json:"hotkey_on_speedup"`
	// HotKeyImprovement is OnSpeedup/OffSpeedup - the number the gate
	// guards.
	HotKeyImprovement float64 `json:"hotkey_improvement"`
	HotKeyHitRate     float64 `json:"hotkey_cache_hit_rate"`
	HotShare          float64 `json:"hot_key_share_top10"`
	// Staleness probe: the oldest stale cache serve vs the TTL bound.
	MaxStaleAgeMs float64 `json:"max_stale_age_ms"`
	TTLMs         float64 `json:"ttl_ms"`
	TTLBounded    bool    `json:"ttl_bounded"`
	// Floors the run was gated against.
	MinScaling4    float64 `json:"floor_scaling_4_backends"`
	MinImprovement float64 `json:"floor_hotkey_improvement"`
	Pass           bool    `json:"pass"`
}

// r3Report is the BENCH_hotkey_r3.json schema: the replica-coherent
// hot-key cache plus salted write spreading at R=3, versus the
// cache-off, spread-off baseline on the same cluster shape, under a
// rogue uncached writer.
type r3Report struct {
	Backends int `json:"backends"`
	Replicas int `json:"replicas"`
	// BaselineRPS / FixedRPS are the two runs' achieved throughput;
	// Improvement (fixed/baseline) is the number the gate guards.
	BaselineRPS float64 `json:"baseline_rps"`
	FixedRPS    float64 `json:"fixed_rps"`
	Improvement float64 `json:"improvement"`
	HitRate     float64 `json:"cache_hit_rate"`
	// Write spreading engagement: the gate also requires salted writes,
	// so a silently disabled spread path cannot pass.
	PromotedKeys int    `json:"spread_promoted_keys"`
	SaltedWrites uint64 `json:"salted_writes"`
	SaltedReads  uint64 `json:"salted_targeted_reads"`
	SaltedFanIns uint64 `json:"salted_fanin_fallbacks"`
	// Hottest backend's share of served requests before and after.
	BaselineMaxShare float64 `json:"baseline_hottest_node_share"`
	FixedMaxShare    float64 `json:"fixed_hottest_node_share"`
	// Staleness probe under the rogue writer, peeking every live owner
	// of every shard: the TTL is the hard bound.
	MaxStaleAgeMs  float64 `json:"max_stale_age_ms"`
	TTLMs          float64 `json:"ttl_ms"`
	TTLBounded     bool    `json:"ttl_bounded"`
	MinImprovement float64 `json:"floor_improvement"`
	Pass           bool    `json:"pass"`
}

// lossyReport is the BENCH_lossy.json schema: the self-tuning TCP data
// path versus the fixed-RTO baseline under frame loss at the switch.
type lossyReport struct {
	LossRate        float64 `json:"loss_rate"`
	AdaptiveRPS     float64 `json:"adaptive_rps"`
	AdaptiveP99Us   float64 `json:"adaptive_p99_us"`
	AdaptiveRexmits uint64  `json:"adaptive_retransmits"`
	AdaptiveFastRex uint64  `json:"adaptive_fast_retransmits"`
	AdaptiveNetErrs uint64  `json:"adaptive_net_errs"`
	FixedRPS        float64 `json:"fixed_rps"`
	FixedP99Us      float64 `json:"fixed_p99_us"`
	DroppedFrames   uint64  `json:"dropped_frames"`
	// ThroughputRatio (adaptive/fixed completed RPS) is the number the
	// gate guards.
	ThroughputRatio float64 `json:"throughput_ratio"`
	MinRatio        float64 `json:"floor_throughput_ratio"`
	Pass            bool    `json:"pass"`
}

// mempReport is the BENCH_memp.json schema: the bounded store under a
// 2x-budget ETC offered load, slab-classed LRU versus FIFO, with the
// hard memory bound and the expiry probe as gates.
type mempReport struct {
	Backends       int     `json:"backends"`
	BudgetBytes    uint64  `json:"budget_bytes_per_backend"`
	PressureFactor float64 `json:"pressure_factor"`
	// LRUHitRate is the number the hit-rate floor guards; LRUAdvantage
	// (LRU minus FIFO hit rate) must not go negative.
	LRUHitRate   float64 `json:"lru_hit_rate"`
	FIFOHitRate  float64 `json:"fifo_hit_rate"`
	LRUAdvantage float64 `json:"lru_advantage"`
	Evictions    uint64  `json:"lru_evictions"`
	Expired      uint64  `json:"lru_expired_reclaims"`
	// PeakBytes is the worst per-backend footprint across both runs; the
	// hard gate is PeakBytes <= BudgetBytes, no tolerance.
	PeakBytes  uint64 `json:"peak_bytes_per_backend"`
	MemBounded bool   `json:"mem_bounded"`
	// Expiry probe across both runs: values served past their deadline
	// from any layer, and expired entries still live in the stores.
	ProbeKeys        int     `json:"expiry_probe_keys"`
	ExpiredServed    int     `json:"expired_served"`
	StoreLiveExpired int     `json:"store_live_expired"`
	MinHitRate       float64 `json:"floor_lru_hit_rate"`
	Pass             bool    `json:"pass"`
}

// frontendReport is the BENCH_frontend.json schema: the frontend-tier
// batched submission queue (coalesced GETQ+Noop rounds) versus the
// per-op GET spine on the same single-frontend deployment, offered the
// same multiget load just past the per-op ceiling. Ratio is the number
// the gate guards, alongside zero failed callbacks in either arm.
type frontendReport struct {
	Frontends     int     `json:"frontends"`
	Backends      int     `json:"backends"`
	MultiGet      int     `json:"multiget_keys_per_read"`
	OfferedRPS    float64 `json:"offered_arrivals_per_sec"`
	PerOpRPS      float64 `json:"per_op_rps"`
	BatchedRPS    float64 `json:"batched_rps"`
	Ratio         float64 `json:"batched_over_per_op"`
	BatchedRounds uint64  `json:"batched_rounds"`
	MultiOpRounds uint64  `json:"multi_op_rounds"`
	QuietMisses   uint64  `json:"quiet_misses"`
	NetErrs       uint64  `json:"net_errs"`
	MinRatio      float64 `json:"floor_batched_over_per_op"`
	Pass          bool    `json:"pass"`
}

// eventsReport is the BENCH_events.json schema: the availability run's
// audit event log, gated on the failure-detection state machine having
// actually fired - at least one eviction and one restore recorded, with
// the kill-to-eviction latency under the detection bound. A silently
// suppressed event stream fails CI here even if the throughput numbers
// look healthy.
type eventsReport struct {
	EventLog    string  `json:"event_log"`
	TotalEvents int     `json:"total_events"`
	Kills       int     `json:"kill_events"`
	Revives     int     `json:"revive_events"`
	Evictions   int     `json:"eviction_events"`
	Restores    int     `json:"restore_events"`
	MissedBeats int     `json:"missed_beat_events"`
	EvictMs     float64 `json:"eviction_latency_ms"`
	MaxEvictMs  float64 `json:"floor_eviction_latency_ms"`
	Pass        bool    `json:"pass"`
}

func main() {
	out := flag.String("out", "BENCH_hotkey.json", "report artifact path")
	r3Out := flag.String("r3-out", "BENCH_hotkey_r3.json", "replicated hot-key report artifact path")
	lossyOut := flag.String("lossy-out", "BENCH_lossy.json", "lossy-link report artifact path")
	mempOut := flag.String("memp-out", "BENCH_memp.json", "memory-pressure report artifact path")
	frontOut := flag.String("frontend-out", "BENCH_frontend.json", "frontend-tier report artifact path")
	minFrontRatio := flag.Float64("min-frontend-ratio", 1.3, "floor for the batched/per-op frontend throughput ratio")
	eventsOut := flag.String("events-out", "BENCH_events.json", "availability event-log report artifact path")
	eventsLog := flag.String("events-log", "events_benchguard.jsonl", "availability audit event log artifact path")
	maxEvictMs := flag.Float64("max-evict-ms", 25, "ceiling for the kill-to-eviction detection latency (ms)")
	minMempHit := flag.Float64("min-memp-hit", 0.55, "floor for the LRU hit rate under 2x memory pressure")
	minScaling := flag.Float64("min-scaling", 3.0, "floor for 4-backend scaling speedup")
	minImprove := flag.Float64("min-improvement", 1.3, "floor for the hot-key skewed-tail improvement")
	minR3 := flag.Float64("min-r3-improvement", 1.5, "floor for the replicated (R=3) hot-key improvement")
	minLossy := flag.Float64("min-lossy-ratio", 1.5, "floor for the adaptive/fixed throughput ratio at 5% loss")
	lossRate := flag.Float64("loss-rate", 0.05, "frame loss probability for the lossy gate")
	rate := flag.Float64("rate", 280000, "hot-key experiment offered RPS per backend")
	scaleRate := flag.Float64("scale-rate", 200000, "scaling experiment offered RPS per backend")
	durMs := flag.Int("duration", 40, "measured window per point (ms)")
	keys := flag.Int("keys", 4000, "ETC key population for the hot-key runs")
	backends := flag.Int("backends", 8, "hot-key sweep tail backend count")
	flag.Parse()

	dur := sim.Time(*durMs) * sim.Millisecond

	fmt.Printf("benchguard: scaling smoke (1 vs 4 backends, %.0f RPS/backend)\n", *scaleRate)
	rows := experiments.ClusterScaling([]int{1, 4}, *scaleRate, experiments.ScalingOptions{Duration: dur})
	fmt.Print(experiments.FormatScaling(rows))
	scaling4 := 0.0
	if rows[0].Result.AchievedRPS > 0 {
		scaling4 = rows[1].Result.AchievedRPS / rows[0].Result.AchievedRPS
	}

	fmt.Printf("\nbenchguard: hot-key smoke (1 vs %d backends, %.0f RPS/backend)\n", *backends, *rate)
	hk := experiments.HotKey(experiments.HotKeyOptions{
		BackendCounts: []int{1, *backends},
		PerBackendRPS: *rate,
		Duration:      dur,
		KeySpace:      *keys,
		// PromoteMin 4 matches the ebbrt-hotkey driver: smoke windows are
		// short, so promotion must not eat most of the run.
		Cache: cluster.HotKeyOptions{PromoteMin: 4},
	})
	fmt.Print(experiments.FormatHotKey(hk))
	tail := hk.Rows[len(hk.Rows)-1]

	rep := report{
		Scaling4:          scaling4,
		HotKeyBackends:    tail.Backends,
		HotKeyOffSpeedup:  tail.OffSpeedup,
		HotKeyOnSpeedup:   tail.OnSpeedup,
		HotKeyImprovement: hk.Improvement,
		HotKeyHitRate:     tail.Cache.HitRate(),
		HotShare:          hk.HotShare,
		MaxStaleAgeMs:     float64(hk.Probe.MaxStaleAge) / 1e6,
		TTLMs:             float64(hk.TTL) / 1e6,
		TTLBounded:        hk.TTLBounded,
		MinScaling4:       *minScaling,
		MinImprovement:    *minImprove,
	}
	rep.Pass = rep.Scaling4 >= *minScaling && rep.HotKeyImprovement >= *minImprove && rep.TTLBounded

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	fmt.Printf("\nbenchguard: wrote %s\n%s", *out, data)

	fmt.Printf("\nbenchguard: replicated hot-key smoke (%d backends, R=3, %.0f RPS/backend)\n", *backends, *rate)
	r3 := experiments.ReplicatedHotKey(experiments.ReplicatedHotKeyOptions{
		Backends:      *backends,
		PerBackendRPS: *rate,
		Duration:      dur,
		KeySpace:      *keys,
		// PromoteMin 4 as above: smoke windows are short, so cache
		// promotion must not eat most of the run.
		Cache: cluster.HotKeyOptions{PromoteMin: 4},
	})
	fmt.Print(experiments.FormatReplicatedHotKey(r3))
	r3rep := r3Report{
		Backends:         r3.Opt.Backends,
		Replicas:         r3.Opt.Replicas,
		BaselineRPS:      r3.Off.AchievedRPS,
		FixedRPS:         r3.On.AchievedRPS,
		Improvement:      r3.Improvement,
		HitRate:          r3.Cache.HitRate(),
		PromotedKeys:     r3.HotWrite.Promoted,
		SaltedWrites:     r3.HotWrite.SaltedWrites,
		SaltedReads:      r3.HotWrite.SaltedReads,
		SaltedFanIns:     r3.HotWrite.SaltedFanIns,
		BaselineMaxShare: r3.OffMaxShare,
		FixedMaxShare:    r3.OnMaxShare,
		MaxStaleAgeMs:    float64(r3.Cache.MaxStaleAge) / 1e6,
		TTLMs:            float64(r3.TTL) / 1e6,
		TTLBounded:       r3.TTLBounded,
		MinImprovement:   *minR3,
	}
	r3rep.Pass = r3rep.Improvement >= *minR3 && r3rep.TTLBounded && r3rep.SaltedWrites > 0
	r3data, err := json.MarshalIndent(r3rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	r3data = append(r3data, '\n')
	if err := os.WriteFile(*r3Out, r3data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	fmt.Printf("\nbenchguard: wrote %s\n%s", *r3Out, r3data)

	fmt.Printf("\nbenchguard: lossy-link smoke (%.0f%% frame loss, adaptive vs fixed RTO)\n", 100**lossRate)
	lr := experiments.Lossy(experiments.LossyOptions{
		Backends:  2,
		Replicas:  2,
		TargetRPS: 10000,
		Duration:  60 * sim.Millisecond,
		LossRates: []float64{*lossRate},
	})
	fmt.Print(experiments.FormatLossy(lr))
	lp := lr.Points[0]
	lrep := lossyReport{
		LossRate:        lp.LossRate,
		AdaptiveRPS:     lp.Adaptive.Load.AchievedRPS,
		AdaptiveP99Us:   lp.Adaptive.Load.P99.Micros(),
		AdaptiveRexmits: lp.Adaptive.Tcp.Retransmits,
		AdaptiveFastRex: lp.Adaptive.Tcp.FastRetransmits,
		AdaptiveNetErrs: lp.Adaptive.Load.NetErrs,
		FixedRPS:        lp.Fixed.Load.AchievedRPS,
		FixedP99Us:      lp.Fixed.Load.P99.Micros(),
		DroppedFrames:   lp.Adaptive.DroppedFrames,
		ThroughputRatio: lp.ThroughputRatio,
		MinRatio:        *minLossy,
	}
	lrep.Pass = lrep.ThroughputRatio >= *minLossy && lrep.AdaptiveNetErrs == 0
	ldata, err := json.MarshalIndent(lrep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	ldata = append(ldata, '\n')
	if err := os.WriteFile(*lossyOut, ldata, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	fmt.Printf("\nbenchguard: wrote %s\n%s", *lossyOut, ldata)

	fmt.Println("\nbenchguard: memory-pressure smoke (bounded stores at 2x budget, LRU vs FIFO)")
	mp := experiments.MemoryPressure(experiments.MemoryPressureOptions{
		TargetRPS: 60000,
		Duration:  25 * sim.Millisecond,
	})
	fmt.Print(experiments.FormatMemoryPressure(mp))
	lru, fifo := mp.Rows[0], mp.Rows[1]
	peak := lru.Stores.PeakBytes
	if fifo.Stores.PeakBytes > peak {
		peak = fifo.Stores.PeakBytes
	}
	mrep := mempReport{
		Backends:         mp.Opt.Backends,
		BudgetBytes:      mp.Opt.BudgetBytes,
		PressureFactor:   mp.Opt.PressureFactor,
		LRUHitRate:       lru.HitRate,
		FIFOHitRate:      fifo.HitRate,
		LRUAdvantage:     mp.LRUAdvantage,
		Evictions:        lru.Stores.Evictions,
		Expired:          lru.Stores.Expired,
		PeakBytes:        peak,
		MemBounded:       lru.MemBounded && fifo.MemBounded,
		ProbeKeys:        lru.ProbeKeys,
		ExpiredServed:    lru.ExpiredServed + fifo.ExpiredServed,
		StoreLiveExpired: lru.StoreLiveExpired + fifo.StoreLiveExpired,
		MinHitRate:       *minMempHit,
	}
	mrep.Pass = mrep.MemBounded && mrep.LRUHitRate >= *minMempHit &&
		mrep.ExpiredServed == 0 && mrep.StoreLiveExpired == 0 && mrep.LRUAdvantage >= 0
	mdata, err := json.MarshalIndent(mrep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	mdata = append(mdata, '\n')
	if err := os.WriteFile(*mempOut, mdata, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	fmt.Printf("\nbenchguard: wrote %s\n%s", *mempOut, mdata)

	fmt.Println("\nbenchguard: frontend-tier smoke (batched GETQ rounds vs per-op spine, N=1)")
	fs := experiments.FrontendScaling(experiments.FrontendScalingOptions{
		FrontendCounts: []int{1},
		Duration:       dur,
	})
	fmt.Print(experiments.FormatFrontendScaling(fs))
	frow := fs.Rows[0]
	frep := frontendReport{
		Frontends:     frow.Frontends,
		Backends:      fs.Opt.Backends,
		MultiGet:      fs.Opt.MultiGet,
		OfferedRPS:    frow.OfferedRPS,
		PerOpRPS:      frow.PerOp.AchievedRPS,
		BatchedRPS:    frow.Batched.AchievedRPS,
		Ratio:         frow.Ratio,
		BatchedRounds: frow.Stats.Rounds,
		MultiOpRounds: frow.Stats.Batches,
		QuietMisses:   frow.Stats.QuietMisses,
		NetErrs:       fs.NetErrs,
		MinRatio:      *minFrontRatio,
	}
	frep.Pass = frep.Ratio >= *minFrontRatio && frep.NetErrs == 0 && frep.MultiOpRounds > 0
	fdata, err := json.MarshalIndent(frep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	fdata = append(fdata, '\n')
	if err := os.WriteFile(*frontOut, fdata, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	fmt.Printf("\nbenchguard: wrote %s\n%s", *frontOut, fdata)

	fmt.Println("\nbenchguard: availability event-log smoke (kill + revive, audited)")
	erep := runEventsGate(*eventsLog, *maxEvictMs)
	edata, err := json.MarshalIndent(erep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	edata = append(edata, '\n')
	if err := os.WriteFile(*eventsOut, edata, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	fmt.Printf("\nbenchguard: wrote %s\n%s", *eventsOut, edata)

	switch {
	case !rep.TTLBounded:
		fmt.Fprintln(os.Stderr, "benchguard FAIL: staleness probe exceeded the TTL bound")
		os.Exit(1)
	case rep.Scaling4 < *minScaling:
		fmt.Fprintf(os.Stderr, "benchguard FAIL: scaling speedup %.2fx below floor %.2fx\n", rep.Scaling4, *minScaling)
		os.Exit(1)
	case rep.HotKeyImprovement < *minImprove:
		fmt.Fprintf(os.Stderr, "benchguard FAIL: hot-key improvement %.2fx below floor %.2fx\n", rep.HotKeyImprovement, *minImprove)
		os.Exit(1)
	case !r3rep.TTLBounded:
		fmt.Fprintln(os.Stderr, "benchguard FAIL: R=3 staleness probe exceeded the TTL bound")
		os.Exit(1)
	case r3rep.SaltedWrites == 0:
		fmt.Fprintln(os.Stderr, "benchguard FAIL: R=3 run engaged no write spreading")
		os.Exit(1)
	case r3rep.Improvement < *minR3:
		fmt.Fprintf(os.Stderr, "benchguard FAIL: replicated hot-key improvement %.2fx below floor %.2fx\n", r3rep.Improvement, *minR3)
		os.Exit(1)
	case lrep.ThroughputRatio < *minLossy:
		fmt.Fprintf(os.Stderr, "benchguard FAIL: lossy-link adaptive/fixed ratio %.2fx below floor %.2fx\n", lrep.ThroughputRatio, *minLossy)
		os.Exit(1)
	case lrep.AdaptiveNetErrs != 0:
		fmt.Fprintf(os.Stderr, "benchguard FAIL: %d failed client callbacks under loss with adaptive RTO\n", lrep.AdaptiveNetErrs)
		os.Exit(1)
	case !mrep.MemBounded:
		fmt.Fprintf(os.Stderr, "benchguard FAIL: bounded store peak %d bytes exceeded the %d-byte budget\n", mrep.PeakBytes, mrep.BudgetBytes)
		os.Exit(1)
	case mrep.ExpiredServed != 0 || mrep.StoreLiveExpired != 0:
		fmt.Fprintf(os.Stderr, "benchguard FAIL: expiry probe saw %d expired values served, %d live in stores\n", mrep.ExpiredServed, mrep.StoreLiveExpired)
		os.Exit(1)
	case mrep.LRUHitRate < *minMempHit:
		fmt.Fprintf(os.Stderr, "benchguard FAIL: LRU hit rate %.3f under memory pressure below floor %.3f\n", mrep.LRUHitRate, *minMempHit)
		os.Exit(1)
	case mrep.LRUAdvantage < 0:
		fmt.Fprintf(os.Stderr, "benchguard FAIL: LRU hit rate below FIFO by %.3f\n", -mrep.LRUAdvantage)
		os.Exit(1)
	case frep.MultiOpRounds == 0:
		fmt.Fprintln(os.Stderr, "benchguard FAIL: frontend batched arm formed no multi-op rounds")
		os.Exit(1)
	case frep.Ratio < *minFrontRatio:
		fmt.Fprintf(os.Stderr, "benchguard FAIL: frontend batched/per-op ratio %.2fx below floor %.2fx\n", frep.Ratio, *minFrontRatio)
		os.Exit(1)
	case frep.NetErrs != 0:
		fmt.Fprintf(os.Stderr, "benchguard FAIL: %d failed client callbacks in the frontend-tier smoke\n", frep.NetErrs)
		os.Exit(1)
	case erep.Evictions == 0:
		fmt.Fprintln(os.Stderr, "benchguard FAIL: availability event log recorded no eviction")
		os.Exit(1)
	case erep.Restores == 0:
		fmt.Fprintln(os.Stderr, "benchguard FAIL: availability event log recorded no restore")
		os.Exit(1)
	case erep.EvictMs > *maxEvictMs:
		fmt.Fprintf(os.Stderr, "benchguard FAIL: eviction latency %.1fms above the %.1fms detection bound\n", erep.EvictMs, *maxEvictMs)
		os.Exit(1)
	}
	fmt.Println("benchguard PASS")
}

// runEventsGate runs the kill+revive availability smoke with a file
// sink attached, reads the log back the way CI consumers would, and
// derives the gated numbers from the events alone.
func runEventsGate(logPath string, maxEvictMs float64) eventsReport {
	sink, err := audit.CreateFileSink(logPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	res := experiments.Availability(experiments.AvailabilityOptions{
		TargetRPS: 25000,
		Duration:  110 * sim.Millisecond,
		KillAt:    40 * sim.Millisecond,
		ReviveAt:  70 * sim.Millisecond,
		Audit:     audit.NewLog(sink),
	})
	fmt.Print(experiments.FormatAvailability(res))
	if err := sink.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard: event log:", err)
		os.Exit(2)
	}
	f, err := os.Open(logPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	defer f.Close()
	events, err := audit.ReadEvents(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard: event log:", err)
		os.Exit(2)
	}

	x := audit.ExpectEvents(events)
	rep := eventsReport{
		EventLog:    logPath,
		TotalEvents: len(events),
		Kills:       x.Count(audit.On(audit.NodeKilled)),
		Revives:     x.Count(audit.On(audit.NodeRevived)),
		Evictions:   x.Count(audit.On(audit.HealthEvicted)),
		Restores:    x.Count(audit.On(audit.HealthRestored)),
		MissedBeats: x.Count(audit.On(audit.HealthMissedBeat)),
		EvictMs:     -1,
		MaxEvictMs:  maxEvictMs,
	}
	kill, haveKill := x.First(audit.On(audit.NodeKilled))
	evict, haveEvict := x.First(audit.On(audit.HealthEvicted))
	if haveKill && haveEvict {
		rep.EvictMs = float64(evict.Time-kill.Time) / 1e6
	}
	rep.Pass = rep.Evictions >= 1 && rep.Restores >= 1 &&
		rep.EvictMs >= 0 && rep.EvictMs <= maxEvictMs
	return rep
}
