// Command ebbrt-all regenerates every table and figure of the paper's
// evaluation in one run, printing each section; this is the source of the
// measured numbers recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"ebbrt/internal/experiments"
	"ebbrt/internal/sim"
	"ebbrt/internal/testbed"
)

func section(title string) {
	fmt.Println()
	fmt.Println("==============================================================")
	fmt.Println(title)
	fmt.Println("==============================================================")
}

func main() {
	quick := flag.Bool("quick", false, "reduced sweeps for a fast smoke run")
	flag.Parse()

	section("Table 1: Ebb invocation (object dispatch costs, cycles/1000 calls)")
	iters := 20_000_000
	if *quick {
		iters = 2_000_000
	}
	fmt.Print(experiments.FormatTable1(experiments.Table1(iters)))

	section("Figure 3: memory allocation scalability (cycles per 10 pairs)")
	fmt.Print(experiments.FormatFigure3(experiments.Figure3(nil, 0)))

	section("Figure 4: NetPIPE goodput vs message size")
	reps := 10
	if *quick {
		reps = 3
	}
	series4, err := experiments.Figure4(nil, reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(experiments.FormatFigure4(series4))

	dur := 250 * sim.Millisecond
	rates1 := experiments.DefaultRatesSingleCore()
	rates4 := experiments.DefaultRatesFourCore()
	if *quick {
		dur = 60 * sim.Millisecond
		rates1 = []float64{50000, 150000, 250000}
		rates4 = []float64{200000, 600000, 1000000}
	}

	section("Figure 5: memcached single core (latency vs throughput)")
	var fig5 []experiments.MemcachedSeries
	for _, kind := range []testbed.ServerKind{testbed.EbbRT, testbed.LinuxVM, testbed.LinuxNative, testbed.OSv} {
		fig5 = append(fig5, experiments.MemcachedCurve(kind, rates1, experiments.MemcachedOptions{Cores: 1, Duration: dur}))
	}
	fmt.Print(experiments.FormatMemcached(fig5))
	sla := 500 * sim.Microsecond
	fmt.Println("Throughput at 500us p99 SLA:")
	for _, s := range fig5 {
		fmt.Printf("  %-14s %12.0f RPS\n", s.System, experiments.SLAThroughput(s.Points, sla))
	}

	section("Figure 6: memcached four cores (latency vs throughput)")
	var fig6 []experiments.MemcachedSeries
	for _, kind := range []testbed.ServerKind{testbed.EbbRT, testbed.LinuxVM, testbed.LinuxNative} {
		fig6 = append(fig6, experiments.MemcachedCurve(kind, rates4, experiments.MemcachedOptions{Cores: 4, Duration: dur}))
	}
	fmt.Print(experiments.FormatMemcached(fig6))
	fmt.Println("Throughput at 500us p99 SLA:")
	for _, s := range fig6 {
		fmt.Printf("  %-14s %12.0f RPS\n", s.System, experiments.SLAThroughput(s.Points, sla))
	}

	section("Figure 7: V8 suite scores normalized to Linux")
	fmt.Print(experiments.FormatFigure7(experiments.Figure7()))

	section("Table 2: node.js webserver latency")
	fmt.Print(experiments.FormatTable2(experiments.Table2(0)))
}
