// Command ebbrt-alloc regenerates Figure 3: per-core memory allocation
// latency (cycles per ten 8-byte alloc/free pairs) versus core count for
// the EbbRT allocator, a glibc-style single-arena allocator, and a
// jemalloc-style thread-caching allocator.
//
// By default the contention is computed by a deterministic queueing model
// over the allocators' synchronization structure (this host may have a
// single CPU); -real benchmarks the actual data structures under real
// goroutine parallelism, meaningful on many-core hosts.
package main

import (
	"flag"
	"fmt"

	"ebbrt/internal/experiments"
)

func main() {
	real := flag.Bool("real", false, "run real-goroutine benchmark instead of the queueing model")
	meas := flag.Int("measurements", 0, "measurements per core (0 = default)")
	flag.Parse()
	cores := []int{1, 2, 4, 8, 12, 24}
	fmt.Println("Figure 3: memory allocation microbenchmark (cycles per ten 8B alloc/free pairs)")
	fmt.Println("(paper: EbbRT linear to 24 cores; glibc 3.8x EbbRT at 24; jemalloc linear, 42% slower)")
	fmt.Println()
	if *real {
		fmt.Print(experiments.FormatFigure3(experiments.Figure3Real(cores, *meas)))
	} else {
		fmt.Print(experiments.FormatFigure3(experiments.Figure3(cores, *meas)))
	}
}
