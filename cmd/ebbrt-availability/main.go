// Command ebbrt-availability runs the fault-tolerance experiment: a
// replicated multi-backend memcached cluster under the ETC workload,
// with one backend killed mid-run (and optionally revived). It prints
// throughput and hit rate before the kill, during the failure window
// (kill to health-monitor eviction), and after the ring has rerouted,
// plus the full completion timeline.
package main

import (
	"flag"
	"fmt"
	"os"

	"ebbrt/internal/audit"
	"ebbrt/internal/experiments"
	"ebbrt/internal/sim"
)

func main() {
	backends := flag.Int("backends", 4, "native backend count")
	replicas := flag.Int("replicas", 2, "replication factor R")
	cores := flag.Int("cores", 1, "cores per backend")
	rate := flag.Float64("rate", 40000, "offered load (RPS) through the frontend client Ebb")
	durMs := flag.Int("duration", 160, "measured window (ms)")
	killMs := flag.Int("kill", 60, "kill offset into the measurement (ms)")
	reviveMs := flag.Int("revive", 0, "revive offset (ms), 0 = never")
	victim := flag.Int("victim", 0, "backend index to kill")
	timeoutMs := flag.Float64("timeout", 4, "client per-replica request timeout (ms)")
	eventsOut := flag.String("events", "", "write the run's audit event log (JSON lines) to this file")
	flag.Parse()

	var alog *audit.Log
	var sink *audit.FileSink
	if *eventsOut != "" {
		s, err := audit.CreateFileSink(*eventsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ebbrt-availability:", err)
			os.Exit(2)
		}
		sink = s
		alog = audit.NewLog(sink)
	}

	res := experiments.Availability(experiments.AvailabilityOptions{
		Backends:        *backends,
		Replicas:        *replicas,
		CoresPerBackend: *cores,
		TargetRPS:       *rate,
		Duration:        sim.Time(*durMs) * sim.Millisecond,
		KillAt:          sim.Time(*killMs) * sim.Millisecond,
		ReviveAt:        sim.Time(*reviveMs) * sim.Millisecond,
		KillBackend:     *victim,
		RequestTimeout:  sim.Time(*timeoutMs * float64(sim.Millisecond)),
		Audit:           alog,
	})
	fmt.Print(experiments.FormatAvailability(res))
	if sink != nil {
		if err := sink.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ebbrt-availability: event log:", err)
			os.Exit(2)
		}
		fmt.Printf("wrote event log %s\n", *eventsOut)
	}
}
