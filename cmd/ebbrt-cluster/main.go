// Command ebbrt-cluster runs the sharded multi-backend memcached
// deployment: N native library-OS backends behind a consistent-hash
// ring, driven by the mutilate-style ETC workload from a dedicated load
// generator machine, with a hosted frontend demonstrating the
// cluster-aware client Ebb. It prints the scaling curve (aggregate
// achieved throughput vs backend count).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ebbrt/internal/cluster"
	"ebbrt/internal/event"
	"ebbrt/internal/experiments"
	"ebbrt/internal/sim"
)

func main() {
	backendsFlag := flag.String("backends", "1,2,4,8", "comma-separated backend counts to sweep")
	rate := flag.Float64("rate", 300000, "offered load per backend (RPS)")
	cores := flag.Int("cores", 1, "cores per backend")
	conns := flag.Int("conns", 8, "load-generator connections per backend")
	durMs := flag.Int("duration", 150, "measurement duration per point (ms)")
	demo := flag.Bool("demo", true, "run the frontend client Ebb demo first")
	flag.Parse()

	var counts []int
	for _, s := range strings.Split(*backendsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			fmt.Fprintln(os.Stderr, "bad backend count:", s)
			os.Exit(1)
		}
		counts = append(counts, v)
	}

	if *demo {
		runDemo()
	}

	opt := experiments.ScalingOptions{
		CoresPerBackend: *cores,
		ConnsPerBackend: *conns,
		Duration:        sim.Time(*durMs) * sim.Millisecond,
	}
	fmt.Printf("Cluster scaling: ETC workload, %d core(s)/backend, %d conns/backend, %.0f RPS/backend offered\n",
		*cores, *conns, *rate)
	rows := experiments.ClusterScaling(counts, *rate, opt)
	fmt.Print(experiments.FormatScaling(rows))
}

// runDemo exercises the hosted frontend's cluster client Ebb: set, get
// and delete a handful of keys through the ring.
func runDemo() {
	cl := cluster.New(4, 1)
	front := cl.Sys.Frontend()
	cli := cluster.NewClient(cl, front, 0)

	keys := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	fetched := map[string]string{}
	front.Spawn(func(c *event.Ctx) {
		for _, k := range keys {
			key := k
			cli.Set(c, []byte(key), []byte("value-of-"+key), 0, func(c *event.Ctx, r cluster.Response) {
				cli.Get(c, []byte(key), func(c *event.Ctx, r cluster.Response) {
					fetched[key] = string(r.Value)
				})
			})
		}
	})
	cl.Sys.K.RunUntil(2 * sim.Second)

	fmt.Printf("Frontend client Ebb (id %d) across %d backends:\n", cli.Id(), len(cl.Backends))
	for _, k := range keys {
		fmt.Printf("  %-8s -> backend %d, got %q\n", k, cl.Ring.Lookup([]byte(k)), fetched[k])
	}
	for i, b := range cl.Backends {
		fmt.Printf("  backend %d: %d keys, %d requests served\n", i, b.Srv.Store.Len(), b.Srv.Requests)
	}
	fmt.Println()
}
