// Command ebbrt-dispatch regenerates Table 1: object dispatch costs for
// 1000 invocations across dispatch flavours, including the Ebb fast path
// and the hosted hash-table path.
package main

import (
	"flag"
	"fmt"

	"ebbrt/internal/experiments"
)

func main() {
	iters := flag.Int("iters", 20_000_000, "invocations per flavour (per trial)")
	flag.Parse()
	fmt.Println("Table 1: Object dispatch costs for 1000 invocations")
	fmt.Println("(paper: Inline 1052, No Inline 4047, Virtual 5038, Inline Ebb 1448; hosted ~19x native)")
	fmt.Println()
	fmt.Print(experiments.FormatTable1(experiments.Table1(*iters)))
}
