// Command ebbrt-elasticity runs the elasticity experiment: a sharded
// memcached cluster under the ETC workload with a backend joining
// mid-run and another decommissioned later. It runs the schedule twice
// - once with the rebalancer streaming moved key shares, once with the
// miss-faulting baseline - and prints both, so the hit-rate cost of
// elasticity (and the migration engine removing it) is visible side by
// side, along with the time to restore full replication after the
// decommission.
package main

import (
	"flag"
	"fmt"

	"ebbrt/internal/experiments"
	"ebbrt/internal/sim"
)

func main() {
	backends := flag.Int("backends", 3, "initial native backend count")
	replicas := flag.Int("replicas", 1, "replication factor R")
	cores := flag.Int("cores", 1, "cores per backend")
	rate := flag.Float64("rate", 30000, "offered load (RPS) through the frontend client Ebb")
	durMs := flag.Int("duration", 240, "measured window (ms)")
	joinMs := flag.Int("join", 60, "join offset into the measurement (ms)")
	decommMs := flag.Int("decommission", 150, "decommission offset (ms), negative = skip")
	victim := flag.Int("victim", 0, "backend index to decommission")
	killFirst := flag.Bool("kill-first", false, "kill the victim before decommissioning (permanent loss, not a drain)")
	keys := flag.Int("keys", 3000, "ETC key population")
	timeoutMs := flag.Float64("timeout", 4, "client per-replica request timeout (ms)")
	baselineOnly := flag.Bool("baseline-only", false, "run only the miss-faulting baseline")
	streamOnly := flag.Bool("stream-only", false, "run only the streamed migration")
	flag.Parse()

	opt := experiments.ElasticityOptions{
		Backends:               *backends,
		Replicas:               *replicas,
		CoresPerBackend:        *cores,
		TargetRPS:              *rate,
		Duration:               sim.Time(*durMs) * sim.Millisecond,
		JoinAt:                 sim.Time(*joinMs) * sim.Millisecond,
		DecommissionAt:         sim.Time(*decommMs) * sim.Millisecond,
		DecommissionBackend:    *victim,
		KillBeforeDecommission: *killFirst,
		KeySpace:               *keys,
		RequestTimeout:         sim.Time(*timeoutMs * float64(sim.Millisecond)),
	}
	switch {
	case *baselineOnly:
		opt.Stream = false
		fmt.Print(experiments.FormatElasticity(experiments.Elasticity(opt)))
	case *streamOnly:
		opt.Stream = true
		fmt.Print(experiments.FormatElasticity(experiments.Elasticity(opt)))
	default:
		streamed, baseline := experiments.ElasticityCompare(opt)
		fmt.Print(experiments.FormatElasticity(streamed))
		fmt.Println()
		fmt.Print(experiments.FormatElasticity(baseline))
		fmt.Println()
		fmt.Printf("post-join hit rate:   %.4f streamed vs %.4f baseline\n",
			streamed.PostJoinHitRate, baseline.PostJoinHitRate)
		if opt.DecommissionAt > 0 {
			fmt.Printf("post-decomm hit rate: %.4f streamed vs %.4f baseline\n",
				streamed.PostDecommHitRate, baseline.PostDecommHitRate)
			if streamed.RestoreRTime >= 0 {
				fmt.Printf("time to restore R:    %.2fms streamed vs never (baseline)\n",
					float64(streamed.RestoreRTime)/1e6)
			}
		}
	}
}
