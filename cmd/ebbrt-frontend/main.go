// Command ebbrt-frontend runs the frontend-tier scale-out experiment:
// the multiget ETC workload driven through N hosted GPOS frontends
// against M native backends, with the client's batched submission queue
// (coalesced GETQ+Noop rounds) ablated against the per-op GET spine at
// every N. The single-frontend ceiling is profiled first, then the
// matrix; -min-ratio turns the batched-vs-per-op ablation into a gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ebbrt/internal/experiments"
	"ebbrt/internal/sim"
)

func main() {
	frontends := flag.String("frontends", "1,2,3", "comma-separated frontend counts")
	backends := flag.Int("backends", 4, "native backend count")
	backendCores := flag.Int("backend-cores", 2, "cores per backend")
	frontCores := flag.Int("front-cores", 1, "cores per hosted frontend")
	rate := flag.Float64("rate", 50000, "offered arrivals per second per frontend")
	durMs := flag.Int("duration", 40, "measured window per point (ms)")
	multiget := flag.Int("multiget", 8, "keys per read arrival")
	maxBatch := flag.Int("max-batch", 0, "max reads per pipelined round (0 = default)")
	keys := flag.Int("keys", 3000, "ETC key population")
	minRatio := flag.Float64("min-ratio", 0, "exit non-zero if batched/per-op at N=1 falls below this")
	flag.Parse()

	var counts []int
	for _, tok := range strings.Split(*frontends, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "bad frontend count %q\n", tok)
			os.Exit(2)
		}
		counts = append(counts, n)
	}

	res := experiments.FrontendScaling(experiments.FrontendScalingOptions{
		FrontendCounts:  counts,
		Backends:        *backends,
		CoresPerBackend: *backendCores,
		FrontendCores:   *frontCores,
		PerFrontendRPS:  *rate,
		MultiGet:        *multiget,
		MaxBatch:        *maxBatch,
		Duration:        sim.Time(*durMs) * sim.Millisecond,
		KeySpace:        *keys,
	})
	fmt.Print(experiments.FormatFrontendScaling(res))
	if res.NetErrs > 0 {
		fmt.Fprintf(os.Stderr, "%d operations failed with network errors\n", res.NetErrs)
		os.Exit(1)
	}
	if *minRatio > 0 && res.Ratio < *minRatio {
		fmt.Fprintf(os.Stderr, "batched/per-op ratio %.2fx below floor %.2fx\n", res.Ratio, *minRatio)
		os.Exit(1)
	}
}
