// Command ebbrt-hotkey-r3 runs the replicated hot-key experiment: the
// skewed ETC workload at R>1 with replica-coherent caching plus salted
// hot-write spreading, against the cache-off baseline on the same
// cluster shape. A rogue uncached writer overwrites the hottest keys
// during the fixed run so the staleness probe - peeking every live
// owner of every shard - verifies the TTL bound at R=3.
package main

import (
	"flag"
	"fmt"
	"os"

	"ebbrt/internal/cluster"
	"ebbrt/internal/experiments"
	"ebbrt/internal/sim"
)

func main() {
	backends := flag.Int("backends", 8, "cluster size")
	replicas := flag.Int("replicas", 3, "replication factor")
	rate := flag.Float64("rate", 280000, "offered RPS per backend")
	durMs := flag.Int("duration", 60, "measured window per run (ms)")
	keys := flag.Int("keys", 6000, "ETC key population")
	skew := flag.Float64("skew", 1.2, "Zipf skew exponent")
	frontCores := flag.Int("front-cores", 12, "hosted frontend cores")
	capacity := flag.Int("capacity", 128, "hot-key cache entries per core")
	ttlUs := flag.Int("ttl", 2000, "cache TTL (us)")
	promote := flag.Uint("promote", 4, "sketch count to promote a key for caching")
	reval := flag.Int("revalidate", 16, "revalidate one in N cache hits (negative disables)")
	salts := flag.Int("salts", 4, "shards a promoted hot key's writes spread over")
	wpromote := flag.Uint("write-promote", 16, "write-sketch count to promote a key for spreading")
	rogue := flag.Float64("rogue", 2000, "rogue writer RPS against the hottest keys (negative disables)")
	timeoutUs := flag.Int("timeout", 0, "client per-replica request timeout (us), 0 disables")
	minImprove := flag.Float64("min-improvement", 0, "exit non-zero if the R>1 improvement falls below this")
	flag.Parse()

	res := experiments.ReplicatedHotKey(experiments.ReplicatedHotKeyOptions{
		Backends:       *backends,
		Replicas:       *replicas,
		PerBackendRPS:  *rate,
		FrontendCores:  *frontCores,
		Duration:       sim.Time(*durMs) * sim.Millisecond,
		KeySpace:       *keys,
		ZipfSkew:       *skew,
		RogueRPS:       *rogue,
		RequestTimeout: sim.Time(*timeoutUs) * sim.Microsecond,
		Cache: cluster.HotKeyOptions{
			Capacity:        *capacity,
			TTL:             sim.Time(*ttlUs) * sim.Microsecond,
			PromoteMin:      uint32(*promote),
			RevalidateEvery: *reval,
		},
		HotWrite: cluster.HotWriteOptions{
			Salts:      *salts,
			PromoteMin: uint32(*wpromote),
		},
	})
	fmt.Print(experiments.FormatReplicatedHotKey(res))
	if !res.TTLBounded {
		fmt.Fprintln(os.Stderr, "staleness probe violated the TTL bound")
		os.Exit(1)
	}
	if *minImprove > 0 && res.Improvement < *minImprove {
		fmt.Fprintf(os.Stderr, "improvement %.2fx below floor %.2fx\n", res.Improvement, *minImprove)
		os.Exit(1)
	}
}
