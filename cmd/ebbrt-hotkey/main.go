// Command ebbrt-hotkey runs the hot-key caching experiment: the skewed
// ETC workload swept over backend counts through the frontend's client
// Ebb, once with the hot-key cache off and once with it on. The
// uncached curve caps where the hottest keys' owning shard saturates;
// the cached curve shows the client absorbing those reads locally. A
// rogue uncached writer overwrites the hottest keys during the cached
// runs so the staleness probe verifies the TTL bound under adversarial
// write traffic.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ebbrt/internal/cluster"
	"ebbrt/internal/experiments"
	"ebbrt/internal/sim"
)

func main() {
	backends := flag.String("backends", "1,2,4,8", "comma-separated backend counts")
	rate := flag.Float64("rate", 280000, "offered RPS per backend")
	durMs := flag.Int("duration", 60, "measured window per point (ms)")
	keys := flag.Int("keys", 6000, "ETC key population")
	skew := flag.Float64("skew", 1.2, "Zipf skew exponent")
	frontCores := flag.Int("front-cores", 12, "hosted frontend cores")
	capacity := flag.Int("capacity", 128, "hot-key cache entries per core")
	ttlUs := flag.Int("ttl", 2000, "cache TTL (us)")
	promote := flag.Uint("promote", 4, "sketch count to promote a key")
	reval := flag.Int("revalidate", 16, "revalidate one in N cache hits (negative disables)")
	rogue := flag.Float64("rogue", 2000, "rogue writer RPS against the hottest keys (negative disables)")
	timeoutUs := flag.Int("timeout", 0, "client per-replica request timeout (us), 0 disables")
	minImprove := flag.Float64("min-improvement", 0, "exit non-zero if the skewed-tail improvement falls below this")
	flag.Parse()

	var counts []int
	for _, tok := range strings.Split(*backends, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "bad backend count %q\n", tok)
			os.Exit(2)
		}
		counts = append(counts, n)
	}

	res := experiments.HotKey(experiments.HotKeyOptions{
		BackendCounts:  counts,
		PerBackendRPS:  *rate,
		FrontendCores:  *frontCores,
		Duration:       sim.Time(*durMs) * sim.Millisecond,
		KeySpace:       *keys,
		ZipfSkew:       *skew,
		RogueRPS:       *rogue,
		RequestTimeout: sim.Time(*timeoutUs) * sim.Microsecond,
		Cache: cluster.HotKeyOptions{
			Capacity:        *capacity,
			TTL:             sim.Time(*ttlUs) * sim.Microsecond,
			PromoteMin:      uint32(*promote),
			RevalidateEvery: *reval,
		},
	})
	fmt.Print(experiments.FormatHotKey(res))
	if !res.TTLBounded {
		fmt.Fprintln(os.Stderr, "staleness probe violated the TTL bound")
		os.Exit(1)
	}
	if *minImprove > 0 && res.Improvement < *minImprove {
		fmt.Fprintf(os.Stderr, "improvement %.2fx below floor %.2fx\n", res.Improvement, *minImprove)
		os.Exit(1)
	}
}
