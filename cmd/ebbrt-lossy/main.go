// Command ebbrt-lossy runs the loss-resilience experiment: the
// replicated memcached cluster under the ETC workload with uniform
// random frame loss injected at the switch, run twice per loss rate -
// once with the self-tuning TCP data path (adaptive RTO, fast
// retransmit, persist probes) and once with the fixed-RTO baseline -
// and prints the throughput/latency comparison.
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"ebbrt/internal/experiments"
	"ebbrt/internal/sim"
)

func main() {
	backends := flag.Int("backends", 4, "native backend count")
	replicas := flag.Int("replicas", 2, "replication factor R")
	cores := flag.Int("cores", 1, "cores per backend")
	rate := flag.Float64("rate", 20000, "offered load (RPS) through the frontend client Ebb")
	durMs := flag.Int("duration", 100, "measured window (ms)")
	losses := flag.String("loss", "1,5,10", "comma-separated frame loss percentages to sweep")
	seed := flag.Uint64("seed", 42, "workload / loss process seed")
	flag.Parse()

	var rates []float64
	for _, s := range strings.Split(*losses, ",") {
		p, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Printf("bad -loss element %q: %v\n", s, err)
			return
		}
		rates = append(rates, p/100)
	}

	res := experiments.Lossy(experiments.LossyOptions{
		Backends:        *backends,
		Replicas:        *replicas,
		CoresPerBackend: *cores,
		TargetRPS:       *rate,
		Duration:        sim.Time(*durMs) * sim.Millisecond,
		LossRates:       rates,
		Seed:            *seed,
	})
	fmt.Print(experiments.FormatLossy(res))
}
