// Command ebbrt-memcached regenerates Figures 5 and 6: memcached mean and
// 99th-percentile latency as a function of offered throughput, for EbbRT,
// Linux in a VM, Linux native, and (single-core) OSv, under the
// mutilate-style Facebook ETC workload.
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"ebbrt/internal/experiments"
	"ebbrt/internal/sim"
	"ebbrt/internal/testbed"
)

func main() {
	cores := flag.Int("cores", 1, "server cores (1 = Figure 5, 4 = Figure 6)")
	store := flag.String("store", "rcu", "key-value store: rcu or locked (ablation)")
	polling := flag.Bool("polling", true, "adaptive polling (false = ablation)")
	ratesFlag := flag.String("rates", "", "comma-separated offered loads in RPS (default: per-figure sweep)")
	durMs := flag.Int("duration", 250, "measurement duration per point (ms)")
	flag.Parse()

	var rates []float64
	if *ratesFlag != "" {
		for _, s := range strings.Split(*ratesFlag, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fmt.Println("bad rate:", s)
				return
			}
			rates = append(rates, v)
		}
	} else if *cores >= 4 {
		rates = experiments.DefaultRatesFourCore()
	} else {
		rates = experiments.DefaultRatesSingleCore()
	}

	opt := experiments.MemcachedOptions{
		Cores:          *cores,
		Store:          *store,
		DisablePolling: !*polling,
		Duration:       sim.Time(*durMs) * sim.Millisecond,
	}

	kinds := []testbed.ServerKind{testbed.EbbRT, testbed.LinuxVM, testbed.LinuxNative}
	if *cores == 1 {
		kinds = append(kinds, testbed.OSv) // paper omits OSv from the 4-core figure
	}

	fig := "Figure 5 (single core)"
	if *cores >= 4 {
		fig = "Figure 6 (multicore)"
	}
	fmt.Printf("%s: memcached latency vs throughput, ETC workload, pipeline 4, store=%s polling=%v\n",
		fig, *store, *polling)
	fmt.Println("(paper @500us p99 SLA, 1 core: EbbRT +58% vs Linux VM, +11.7% vs native; 4 cores: +58% vs VM, -5% vs native)")
	fmt.Println()

	var series []experiments.MemcachedSeries
	for _, kind := range kinds {
		series = append(series, experiments.MemcachedCurve(kind, rates, opt))
	}
	fmt.Print(experiments.FormatMemcached(series))

	sla := 500 * sim.Microsecond
	fmt.Println()
	fmt.Println("Throughput at 500us p99 SLA:")
	for _, s := range series {
		fmt.Printf("  %-14s %12.0f RPS\n", s.System, experiments.SLAThroughput(s.Points, sla))
	}
}
