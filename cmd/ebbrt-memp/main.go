// Command ebbrt-memp runs the memory-pressure experiment: the ETC
// workload offered a dataset larger than the backends' bounded stores
// can hold, once per eviction policy (slab-classed LRU vs FIFO). It
// reports the hit rate each policy sustains, verifies every backend
// stayed inside its byte budget, and drives the expiry probe: after the
// run it crosses every expiring key's deadline and checks that not one
// is served from the stores or any core's hot-key cache.
package main

import (
	"flag"
	"fmt"
	"os"

	"ebbrt/internal/cluster"
	"ebbrt/internal/experiments"
	"ebbrt/internal/sim"
)

func main() {
	backends := flag.Int("backends", 2, "backend count")
	budgetMiB := flag.Int("budget", 8, "per-backend store budget (MiB, multiple of 8)")
	pressure := flag.Float64("pressure", 2, "offered dataset size over aggregate budget")
	rate := flag.Float64("rate", 120000, "offered RPS")
	durMs := flag.Int("duration", 60, "measured window (ms)")
	valueMean := flag.Float64("value-mean", 1200, "ETC value-size mean (bytes)")
	skew := flag.Float64("skew", 1.2, "Zipf skew exponent")
	expireEvery := flag.Int("expire-every", 10, "every Nth key writes with a 1s exptime")
	frontCores := flag.Int("front-cores", 4, "hosted frontend cores")
	capacity := flag.Int("capacity", 128, "hot-key cache entries per core")
	promote := flag.Uint("promote", 4, "sketch count to promote a key")
	minHit := flag.Float64("min-hit", 0, "exit non-zero if the LRU hit rate falls below this")
	flag.Parse()

	res := experiments.MemoryPressure(experiments.MemoryPressureOptions{
		Backends:       *backends,
		BudgetBytes:    uint64(*budgetMiB) << 20,
		PressureFactor: *pressure,
		TargetRPS:      *rate,
		Duration:       sim.Time(*durMs) * sim.Millisecond,
		ValueMean:      *valueMean,
		ZipfSkew:       *skew,
		ExpireEvery:    *expireEvery,
		FrontendCores:  *frontCores,
		Cache: cluster.HotKeyOptions{
			Capacity:   *capacity,
			PromoteMin: uint32(*promote),
		},
	})
	fmt.Print(experiments.FormatMemoryPressure(res))

	fail := false
	for _, row := range res.Rows {
		if !row.MemBounded {
			fmt.Fprintf(os.Stderr, "%s: peak %d bytes exceeded budget %d\n", row.Policy, row.Stores.PeakBytes, row.Stores.BudgetBytes)
			fail = true
		}
		if row.ExpiredServed > 0 || row.StoreLiveExpired > 0 {
			fmt.Fprintf(os.Stderr, "%s: expiry probe served %d expired values (%d live in stores)\n",
				row.Policy, row.ExpiredServed, row.StoreLiveExpired)
			fail = true
		}
	}
	if *minHit > 0 && res.Rows[0].HitRate < *minHit {
		fmt.Fprintf(os.Stderr, "LRU hit rate %.3f below floor %.3f\n", res.Rows[0].HitRate, *minHit)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}
