// Command ebbrt-netpipe regenerates Figure 4: NetPIPE goodput as a
// function of message size for EbbRT and Linux (same system on both ends
// of a 10GbE link, both virtualized).
package main

import (
	"flag"
	"fmt"
	"os"

	"ebbrt/internal/apps/netpipe"
	"ebbrt/internal/experiments"
	"ebbrt/internal/testbed"
)

func main() {
	reps := flag.Int("reps", 10, "ping-pongs per message size")
	forceCopy := flag.Bool("forcecopy", false, "ablation: add per-byte copies to the EbbRT path")
	flag.Parse()

	if *forceCopy {
		runForceCopyAblation(*reps)
		return
	}
	fmt.Println("Figure 4: NetPIPE goodput vs message size")
	fmt.Println("(paper: 64B one-way 9.7us EbbRT vs 15.9us Linux; 4Gbps at 64kB vs 384kB)")
	fmt.Println()
	series, err := experiments.Figure4(nil, *reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(experiments.FormatFigure4(series))
}

// runForceCopyAblation compares zero-copy EbbRT against a variant that
// copies at the application boundary (paper §3.6's claim isolated).
func runForceCopyAblation(reps int) {
	fmt.Println("Zero-copy ablation: EbbRT vs EbbRT with forced per-byte copies")
	fmt.Println()
	sizes := []int{64, 4096, 65536, 262144, 786432}
	zero, err := netpipe.Run(testbed.EbbRT, sizes, reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	copied, err := netpipe.RunWithStack(testbed.EbbRT, sizes, reps, 0.12)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%-10s %14s %14s\n", "Size(B)", "ZeroCopy(Mbps)", "Copying(Mbps)")
	for i := range sizes {
		fmt.Printf("%-10d %14.0f %14.0f\n", sizes[i], zero[i].GoodputMbps, copied[i].GoodputMbps)
	}
}
