// Command ebbrt-nodebench regenerates Figure 7: the V8 benchmark suite
// (version 7) scores of the node.js port, normalized to Linux, under the
// managed-runtime substitute.
package main

import (
	"fmt"

	"ebbrt/internal/experiments"
)

func main() {
	fmt.Println("Figure 7: V8 suite scores normalized to Linux")
	fmt.Println("(paper: EbbRT wins all; overall +4.09%; Splay +13.9%)")
	fmt.Println()
	fmt.Print(experiments.FormatFigure7(experiments.Figure7()))
}
