// Command ebbrt-textproto exercises the memcached ASCII text protocol
// against the sharded cluster. It first runs a demo session - a
// text-mode client speaking set/get/gets/delete (with and without
// noreply) to a cluster backend, printing the byte-exact exchange - and
// then the TextVsBinary experiment: the same ETC load driven over each
// wire protocol, reporting the text path's throughput and latency
// relative to binary at each cluster size.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/cluster"
	"ebbrt/internal/event"
	"ebbrt/internal/experiments"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/sim"
)

func main() {
	backendsFlag := flag.String("backends", "1,2,4", "comma-separated backend counts to sweep")
	rate := flag.Float64("rate", 200000, "offered load per backend (RPS)")
	cores := flag.Int("cores", 1, "cores per backend")
	conns := flag.Int("conns", 8, "load-generator connections per backend")
	durMs := flag.Int("duration", 120, "measurement duration per point (ms)")
	session := flag.Bool("session", true, "run the text session demo first")
	flag.Parse()

	var counts []int
	for _, s := range strings.Split(*backendsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			fmt.Fprintln(os.Stderr, "bad backend count:", s)
			os.Exit(1)
		}
		counts = append(counts, v)
	}

	if *session {
		runSession()
	}

	opt := experiments.ScalingOptions{
		CoresPerBackend: *cores,
		ConnsPerBackend: *conns,
		Duration:        sim.Time(*durMs) * sim.Millisecond,
	}
	fmt.Printf("Text vs binary protocol: ETC workload, %d core(s)/backend, %d conns/backend, %.0f RPS/backend offered\n",
		*cores, *conns, *rate)
	rows := experiments.TextVsBinary(counts, *rate, opt)
	fmt.Print(experiments.FormatTextVsBinary(rows))
}

// runSession drives a scripted ASCII session against one backend of a
// live sharded cluster, over the simulated network, and prints each
// request alongside the exact bytes the server answered.
func runSession() {
	cl := cluster.New(3, 1)
	gen := cl.AddLoadGenerator(2)

	steps := []string{
		"version\r\n",
		"set greeting 7 0 13\r\nHello, EbbRT!\r\n",
		"get greeting\r\n",
		"gets greeting\r\n",
		"set quiet 0 0 2 noreply\r\nhi\r\nget quiet\r\n",
		"delete quiet noreply\r\nget quiet\r\n",
		"add greeting 0 0 4\r\nlate\r\n",
		"replace greeting 7 0 14\r\nHello, update!\r\n",
		"get greeting missing-key\r\n",
		"delete greeting\r\n",
		"get greeting\r\n",
		"quit\r\n",
	}

	// The demo talks to whichever backend owns "greeting"; any backend
	// would serve - each speaks both protocols on the standard port.
	target := cl.Ring.Lookup([]byte("greeting"))
	ip := cl.Backends[target].Node.IP()

	got := make([]string, len(steps))
	step := 0
	var conn appnet.Conn
	k := cl.Sys.K
	var sendNext func(c *event.Ctx)
	sendNext = func(c *event.Ctx) {
		if step >= len(steps) || conn == nil {
			return
		}
		conn.Send(c, iobuf.Wrap([]byte(steps[step])))
		// Give the exchange a round trip, then advance to the next step so
		// each step's responses land in its own slot.
		k.After(2*sim.Millisecond, func() {
			step++
			gen.Spawn(sendNext)
		})
	}
	gen.Spawn(func(c *event.Ctx) {
		gen.Runtime.Dial(c, ip, memcached.Port, appnet.Callbacks{
			OnData: func(c *event.Ctx, _ appnet.Conn, payload *iobuf.IOBuf) {
				idx := step
				if idx >= len(got) {
					idx = len(got) - 1
				}
				got[idx] += string(payload.CopyOut())
			},
		}, func(c *event.Ctx, cn appnet.Conn) {
			conn = cn
			sendNext(c)
		})
	})
	k.RunUntil(sim.Time(len(steps)+5) * 2 * sim.Millisecond)

	fmt.Printf("Text session against backend %d of the %d-backend cluster:\n", target, len(cl.Backends))
	for i, s := range steps {
		fmt.Printf("  >> %q\n", s)
		if got[i] != "" {
			fmt.Printf("  << %q\n", got[i])
		} else {
			fmt.Printf("  << (no reply)\n")
		}
	}
	fmt.Println()
}
