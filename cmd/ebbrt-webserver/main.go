// Command ebbrt-webserver regenerates Table 2: mean and 99th-percentile
// latency of the node.js webserver (static 148-byte response) under
// wrk-style moderate load, EbbRT vs Linux.
package main

import (
	"flag"
	"fmt"

	"ebbrt/internal/experiments"
)

func main() {
	rps := flag.Float64("rps", 0, "offered load in RPS (0 = closed loop, as wrk)")
	flag.Parse()
	fmt.Println("Table 2: node.js webserver latency")
	fmt.Println("(paper: EbbRT 90.54/123.00us, Linux 112.83/199.00us mean/p99)")
	fmt.Println()
	fmt.Print(experiments.FormatTable2(experiments.Table2(*rps)))
}
