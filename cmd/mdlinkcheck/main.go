// Command mdlinkcheck verifies that the relative links in the
// repository's markdown files resolve to files that exist. CI runs it
// over README.md and docs/ so documentation moves and renames cannot
// silently break cross-references. External (http/https/mailto) links
// and pure in-page fragments are skipped - the check is hermetic.
//
// Usage: mdlinkcheck <file-or-dir> ...
// Exits non-zero listing every broken link.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links: [text](target). Reference-style
// and autolinks are rare in this repo and out of scope.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdlinkcheck <file-or-dir> ...")
		os.Exit(2)
	}
	var files []string
	for _, arg := range os.Args[1:] {
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdlinkcheck:", err)
			os.Exit(2)
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(strings.ToLower(path), ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdlinkcheck:", err)
			os.Exit(2)
		}
	}

	broken := 0
	checked := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdlinkcheck:", err)
			os.Exit(2)
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if skip(target) {
				continue
			}
			// Drop an in-page fragment; the file part must still exist.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			checked++
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				fmt.Printf("%s: broken link %q (-> %s)\n", file, m[1], resolved)
				broken++
			}
		}
	}
	fmt.Printf("mdlinkcheck: %d files, %d relative links checked, %d broken\n",
		len(files), checked, broken)
	if broken > 0 {
		os.Exit(1)
	}
}

// skip reports whether target is not a relative file link.
func skip(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
