// Package ebbrt is a Go reproduction of EbbRT, the framework for building
// per-application library operating systems (Schatzberg et al., OSDI'16 /
// BU-CS-TR 2016-002).
//
// The package re-exports the framework's public surface:
//
//   - Elastic Building Blocks: distributed multi-core fragmented objects
//     with per-core representatives constructed on demand (NewDomain,
//     AllocateEbb, Ref).
//   - The non-preemptive event-driven execution environment: one event
//     loop per core, Spawn, timers, idle handlers for adaptive polling,
//     and save/restore blocking contexts (EventManager, EventCtx).
//   - Monadic futures with Then-chaining and exception-like error flow.
//   - IOBuf zero-copy buffer chains.
//   - The native network stack (Ethernet/ARP/IPv4/UDP/TCP/DHCP) with
//     application-managed pacing.
//   - The memory allocation subsystem: buddy page allocator, SLQB-style
//     slab allocator with per-core representatives, general allocator.
//   - RCU and the RCU hash table.
//   - The heterogeneous deployment model: a hosted frontend plus native
//     backends sharing one Ebb namespace over a messenger, with offload
//     Ebbs such as the FileSystem.
//
// Because a Go program cannot boot bare-metal, the "hardware" is a
// deterministic simulated machine substrate (see DESIGN.md for the
// substitution argument). The framework code above it - event loops,
// drivers, protocols, allocators, applications - is real and fully
// exercised by the test suite and the experiment harnesses in cmd/.
package ebbrt

import (
	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/core"
	"ebbrt/internal/event"
	"ebbrt/internal/future"
	"ebbrt/internal/hosted"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/machine"
	"ebbrt/internal/mem"
	"ebbrt/internal/netstack"
	"ebbrt/internal/rcu"
	"ebbrt/internal/sim"
	"ebbrt/internal/testbed"
)

// Core framework types.
type (
	// EbbId is a system-wide unique Ebb identifier.
	EbbId = core.Id
	// EbbDomain holds one machine's per-core representative tables.
	EbbDomain = core.Domain
	// EbbRef is the typed handle for invoking an Ebb.
	EbbRef[T any] = core.Ref[T]

	// EventManager is the per-core non-preemptive event loop.
	EventManager = event.Manager
	// EventCtx is the executing event's context (charging, blocking).
	EventCtx = event.Ctx
	// IdleHandler is a registered polling callback.
	IdleHandler = event.IdleHandler

	// Future is a monadic future; Promise is its producing side; Result
	// is the outcome delivered to continuations.
	Future[T any]  = future.Future[T]
	Promise[T any] = future.Promise[T]
	Result[T any]  = future.Result[T]
	// Unit is the empty payload of a Future that signals completion.
	Unit = future.Unit

	// IOBuf is a zero-copy buffer chain element.
	IOBuf = iobuf.IOBuf

	// Machine is a simulated host; Kernel the virtual-time executor.
	Machine = machine.Machine
	Kernel  = sim.Kernel
	// VirtualTime is a point in simulation time (nanoseconds).
	VirtualTime = sim.Time

	// Interface is a configured network interface; TcpPcb a connection.
	Interface = netstack.Interface
	TcpPcb    = netstack.TcpPcb
	Ipv4Addr  = netstack.Ipv4Addr

	// System is a heterogeneous deployment: hosted frontend plus native
	// backends. Node is one machine of it.
	System = hosted.System
	Node   = hosted.Node
	// FileSystem is the offload Ebb served by the hosted frontend.
	FileSystem = hosted.FileSystem

	// PageAllocator, SlabAllocator and Malloc form the memory subsystem.
	PageAllocator = mem.PageAllocator
	SlabAllocator = mem.SlabAllocator
	Malloc        = mem.Malloc

	// RCUTable is the resizable RCU hash table.
	RCUTable[K comparable, V any] = rcu.Table[K, V]

	// Conn and Callbacks are the application connection abstraction;
	// Runtime is an OS personality (native EbbRT or the GPOS baseline).
	Conn      = appnet.Conn
	Callbacks = appnet.Callbacks
	Runtime   = appnet.Runtime

	// TestbedPair is the two-machine client/server evaluation topology.
	TestbedPair = testbed.Pair
	// ServerKind selects the system under test on a testbed.
	ServerKind = testbed.ServerKind
)

// Systems under test for testbed topologies, as in the paper's figures.
const (
	KindEbbRT       = testbed.EbbRT
	KindLinuxVM     = testbed.LinuxVM
	KindLinuxNative = testbed.LinuxNative
	KindOSv         = testbed.OSv
)

// Re-exported constructors and helpers.

// NewSystem creates a deployment with a hosted frontend node.
func NewSystem() *System { return hosted.NewSystem() }

// NewFileSystem creates the FileSystem offload Ebb across a system's nodes.
func NewFileSystem(sys *System) *FileSystem { return hosted.NewFileSystem(sys) }

// NewTestbed builds the paper's two-machine topology with the chosen
// server system, serverCores on the server and clientCores on the client.
func NewTestbed(kind ServerKind, serverCores, clientCores int) *TestbedPair {
	return testbed.NewPair(kind, serverCores, clientCores)
}

// AllocateEbb creates an Ebb in a domain with a per-core miss handler.
func AllocateEbb[T any](d *EbbDomain, miss func(core int) *T) EbbRef[T] {
	return core.Allocate(d, miss)
}

// AttachEbb binds an existing id to a miss handler in this domain.
func AttachEbb[T any](d *EbbDomain, id EbbId, miss func(core int) *T) EbbRef[T] {
	return core.Attach(d, id, miss)
}

// NewPromise creates a promise/future pair.
func NewPromise[T any]() Promise[T] { return future.NewPromise[T]() }

// Ready returns an already-fulfilled future.
func Ready[T any](v T) Future[T] { return future.Ready(v) }

// Then chains fn onto f; the result future carries fn's outcome.
func Then[T, U any](f Future[T], fn func(future.Result[T]) (U, error)) Future[U] {
	return future.Then(f, fn)
}

// ThenOK chains fn onto f's success; upstream errors propagate untouched.
func ThenOK[T, U any](f Future[T], fn func(T) (U, error)) Future[U] {
	return future.ThenOK(f, fn)
}

// NewIOBuf allocates a buffer with the given capacity.
func NewIOBuf(capacity int) *IOBuf { return iobuf.New(capacity) }

// IOBufFromBytes copies data into a fresh buffer.
func IOBufFromBytes(data []byte) *IOBuf { return iobuf.FromBytes(data) }

// WrapIOBuf takes ownership of data without copying.
func WrapIOBuf(data []byte) *IOBuf { return iobuf.Wrap(data) }

// IP constructs an IPv4 address from octets.
func IP(a, b, c, d byte) Ipv4Addr { return netstack.IP(a, b, c, d) }

// NewRCUTable creates an RCU hash table.
func NewRCUTable[K comparable, V any](hash func(K) uint64, hint int) *RCUTable[K, V] {
	return rcu.NewTable[K, V](hash, hint)
}

// StringHash hashes string keys for RCU tables.
func StringHash(s string) uint64 { return rcu.StringHash(s) }
