package ebbrt_test

import (
	"testing"

	"ebbrt"
)

// The facade test exercises the public API end to end: a deployment, a
// custom Ebb, events with charging, futures with blocking, and the
// FileSystem offload - the same surface the examples use.
func TestPublicAPIEndToEnd(t *testing.T) {
	sys := ebbrt.NewSystem()
	backend := sys.AddNativeNode(2)
	fs := ebbrt.NewFileSystem(sys)

	type rep struct{ hits int }
	ref := ebbrt.AllocateEbb(backend.Domain, func(core int) *rep { return &rep{} })

	p := ebbrt.NewPromise[string]()
	doubled := ebbrt.ThenOK(p.Future(), func(s string) (string, error) { return s + s, nil })

	var fileContent []byte
	var chained string
	backend.Spawn(func(c *ebbrt.EventCtx) {
		ref.Get(c.Core().ID).hits++
		c.ChargeCycles(500)

		if _, err := fs.Write(c, backend, "/cfg", []byte("xyz")).Block(c); err != nil {
			t.Errorf("write: %v", err)
		}
		data, err := fs.Read(c, backend, "/cfg").Block(c)
		if err != nil {
			t.Errorf("read: %v", err)
		}
		fileContent = data

		p.SetValue("ab")
		v, err := doubled.Block(c)
		if err != nil {
			t.Errorf("future: %v", err)
		}
		chained = v
	})
	sys.K.RunUntil(ebbrt.VirtualTime(2_000_000_000))

	if string(fileContent) != "xyz" {
		t.Fatalf("filesystem round trip got %q", fileContent)
	}
	if chained != "abab" {
		t.Fatalf("future chain got %q", chained)
	}
	total := 0
	ref.ForEachRep(func(core int, r *rep) { total += r.hits })
	if total != 1 {
		t.Fatalf("ebb hits = %d", total)
	}
}

func TestPublicTestbed(t *testing.T) {
	pair := ebbrt.NewTestbed(ebbrt.KindEbbRT, 1, 2)
	if pair.Server.Name() != "EbbRT" {
		t.Fatalf("server runtime %q", pair.Server.Name())
	}
	buf := ebbrt.IOBufFromBytes([]byte("hello"))
	if buf.ComputeChainDataLength() != 5 {
		t.Fatal("iobuf facade broken")
	}
	tbl := ebbrt.NewRCUTable[string, int](ebbrt.StringHash, 8)
	tbl.Put("k", 1)
	if v, ok := tbl.Get("k"); !ok || v != 1 {
		t.Fatal("rcu table facade broken")
	}
	if ebbrt.IP(10, 0, 0, 2).String() != "10.0.0.2" {
		t.Fatal("ip facade broken")
	}
}
