// Memcached example: the paper's flagship workload (§4.2).
//
// It builds the two-machine testbed, serves memcached on a single-core
// EbbRT backend with the RCU store, drives it with the mutilate-style
// Facebook ETC workload, and prints the latency profile - then repeats on
// the Linux-VM baseline for comparison.
//
//	go run ./examples/memcached
package main

import (
	"fmt"

	"ebbrt"
	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/event"
	"ebbrt/internal/load"
	"ebbrt/internal/sim"
	"ebbrt/internal/testbed"
)

func run(kind ebbrt.ServerKind) load.MutilateResult {
	pair := ebbrt.NewTestbed(kind, 1, 8)
	srv := memcached.NewServer(memcached.NewRCUStore(), 1)
	if err := srv.Serve(pair.Server); err != nil {
		panic(err)
	}
	cfg := load.DefaultMutilate(100_000) // 100k RPS offered
	cfg.Duration = 150 * sim.Millisecond
	dial := func(c *event.Ctx, cb appnet.Callbacks, onConnect func(*event.Ctx, appnet.Conn)) {
		pair.Client.Dial(c, testbed.ServerIP, memcached.Port, cb, onConnect)
	}
	return load.RunMutilate(pair.Client, dial, srv, cfg)
}

func main() {
	fmt.Println("memcached, ETC workload, 100k RPS offered, single core:")
	for _, kind := range []ebbrt.ServerKind{ebbrt.KindEbbRT, ebbrt.KindLinuxVM} {
		res := run(kind)
		fmt.Printf("  %-12s achieved=%8.0f RPS  mean=%6.1fus  p99=%6.1fus\n",
			kind, res.AchievedRPS, res.Mean.Micros(), res.P99.Micros())
	}
}
