// Offload example: the heterogeneous deployment of paper §2.1 and the
// FileSystem Ebb of §4.3.
//
// A hosted frontend and two native backends share one Ebb namespace. The
// backends never implement a filesystem: their FileSystem representatives
// function-ship every call over the messenger to the frontend, whose
// representative serves the (in-memory) filesystem - "the most
// maintainable software is that which was not written."
//
//	go run ./examples/offload
package main

import (
	"fmt"

	"ebbrt"
)

func main() {
	sys := ebbrt.NewSystem()
	backend1 := sys.AddNativeNode(2)
	backend2 := sys.AddNativeNode(2)
	fs := ebbrt.NewFileSystem(sys)

	// Backend 1 writes its boot report; the call blocks the event (via
	// save/restore) while the round trip to the frontend completes.
	backend1.Spawn(func(c *ebbrt.EventCtx) {
		report := fmt.Sprintf("node=%d cores=%d booted_at=%v",
			backend1.Id, len(backend1.Runtime.Mgrs()), c.Now())
		if _, err := fs.Write(c, backend1, "/var/run/backend1", []byte(report)).Block(c); err != nil {
			panic(err)
		}
		fmt.Printf("  backend1 wrote its report at t=%v\n", c.Now())
	})

	// Backend 2 polls for it and reads it - cross-node data flow composed
	// entirely of Ebb invocations.
	backend2.Spawn(func(c *ebbrt.EventCtx) {
		var poll func(c *ebbrt.EventCtx)
		poll = func(c *ebbrt.EventCtx) {
			fs.Read(c, backend2, "/var/run/backend1").OnDone(func(r ebbrt.Result[[]byte]) {
				data, err := r.Get()
				if err != nil {
					// Not there yet: retry shortly.
					c.Manager().After(1_000_000, poll)
					return
				}
				fmt.Printf("  backend2 read: %q\n", data)
			})
		}
		poll(c)
	})

	sys.K.RunUntil(1_000_000_000) // 1s of virtual time
	fmt.Printf("done at virtual t=%v\n", sys.K.Now())
}
