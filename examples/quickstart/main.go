// Quickstart: the EbbRT programming model in one file.
//
// It boots a deployment (hosted frontend + one native backend), defines a
// custom Ebb with per-core representatives constructed on demand, spawns
// events across cores, chains futures, and runs the whole thing in
// deterministic virtual time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"ebbrt"
)

// PerCoreCounter is an application-defined Ebb: each core gets its own
// representative, so increments never contend; a gather walks the reps.
type PerCoreCounter struct {
	core int
	n    int
}

func main() {
	sys := ebbrt.NewSystem()
	backend := sys.AddNativeNode(4)

	// Define the counter Ebb in the backend's namespace. The miss handler
	// runs the first time each core touches the Ebb - representatives are
	// elastic, constructed only where used.
	counter := ebbrt.AllocateEbb(backend.Domain, func(core int) *PerCoreCounter {
		fmt.Printf("  [miss handler] constructing representative on core %d\n", core)
		return &PerCoreCounter{core: core}
	})

	// Spawn an event on every core; each bumps its own representative
	// without any synchronization (events are non-preemptive and pinned).
	for i, mgr := range backend.Runtime.Mgrs() {
		core := i
		mgr.Spawn(func(c *ebbrt.EventCtx) {
			rep := counter.Get(core)
			rep.n += core + 1
			c.ChargeCycles(100) // account the work in virtual time
		})
	}

	// A future fulfilled by a timer, consumed with Then-chaining.
	p := ebbrt.NewPromise[int]()
	backend.Runtime.Mgrs()[0].After(2_000_000, func(c *ebbrt.EventCtx) { // 2ms
		p.SetValue(21)
	})
	doubled := ebbrt.ThenOK(p.Future(), func(v int) (int, error) { return v * 2, nil })

	// An event with blocking semantics: save/restore lets it await the
	// future mid-execution while the core keeps processing other events.
	backend.Spawn(func(c *ebbrt.EventCtx) {
		v, err := doubled.Block(c)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  [blocked event] future resolved to %d at t=%v\n", v, c.Now())
	})

	// Run the virtual clock until everything settles. (RunUntil, not Run:
	// the hosted frontend's OS model keeps periodic scheduler ticks
	// queued forever, as a real OS would.)
	sys.K.RunUntil(10_000_000) // 10ms of virtual time

	total := 0
	counter.ForEachRep(func(core int, rep *PerCoreCounter) {
		fmt.Printf("  core %d representative holds %d\n", core, rep.n)
		total += rep.n
	})
	fmt.Printf("gathered total: %d (virtual time elapsed: %v)\n", total, sys.K.Now())
}
