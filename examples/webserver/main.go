// Webserver example: the node.js-style HTTP server of paper §4.3.
//
// It serves the static 148-byte response on an EbbRT backend, measures
// latency with the wrk-style closed-loop client, and prints Table 2's
// comparison against the Linux baseline.
//
//	go run ./examples/webserver
package main

import (
	"fmt"

	"ebbrt/internal/experiments"
)

func main() {
	fmt.Println("node.js webserver, static 148-byte response, wrk closed loop:")
	for _, row := range experiments.Table2(0) {
		fmt.Printf("  %-12s mean=%7.2fus  p99=%7.2fus  (%.0f req/s)\n",
			row.System, row.Result.Mean.Micros(), row.Result.P99.Micros(), row.Result.AchievedRPS)
	}
	fmt.Println("\npaper reports: EbbRT 90.54/123.00us, Linux 112.83/199.00us")
}
