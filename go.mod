module ebbrt

go 1.24
