// Package appnet defines the thin connection abstraction the example
// applications (memcached, the webserver, NetPIPE, the load generators)
// are written against, with two implementations:
//
//   - Native: EbbRT's direct stack interface. Receive callbacks run
//     synchronously from the device driver; sends go straight to the
//     stack, with the application-side buffering the paper prescribes
//     (data beyond the remote window is held by the app and drained as
//     acknowledgments arrive).
//   - GPOS (package gpos): the same protocol stack behind a general
//     purpose OS model - syscalls, user/kernel copies, softirq handoff
//     and scheduler wakeups.
//
// Writing each application once against this interface is what lets the
// benchmark harnesses compare runtimes without duplicating app logic.
package appnet

import (
	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/netstack"
	"ebbrt/internal/sim"
)

// Conn is one TCP connection as seen by an application.
type Conn interface {
	// Send queues payload for transmission. It always accepts the data;
	// the implementation is responsible for windowing/buffering.
	Send(c *event.Ctx, payload *iobuf.IOBuf)
	// Close initiates an orderly shutdown.
	Close(c *event.Ctx)
	// Core reports the core the connection is pinned to.
	Core() int
}

// Callbacks are the application's connection event handlers.
type Callbacks struct {
	// OnData delivers received payload.
	OnData func(c *event.Ctx, conn Conn, payload *iobuf.IOBuf)
	// OnClose fires at full teardown; err non-nil on abnormal close.
	OnClose func(c *event.Ctx, conn Conn, err error)
}

// Runtime abstracts "an OS this app runs on" for servers and clients.
type Runtime interface {
	// Listen accepts connections on port; accept returns the callbacks
	// for each new connection.
	Listen(port uint16, accept func(conn Conn) Callbacks) error
	// Dial opens a connection and invokes onConnect when established.
	Dial(c *event.Ctx, ip netstack.Ipv4Addr, port uint16, cb Callbacks, onConnect func(c *event.Ctx, conn Conn))
	// Mgrs exposes the per-core event managers.
	Mgrs() []*event.Manager
	// Kernel exposes the simulation kernel.
	Kernel() *sim.Kernel
	// Name identifies the runtime in experiment output.
	Name() string
}

// Native is the EbbRT-native runtime: the application sits directly on the
// stack.
type Native struct {
	Stack *netstack.Stack
	Itf   *netstack.Interface
	// RuntimeName overrides the default "EbbRT" label.
	RuntimeName string
}

// NewNative wraps a configured stack interface.
func NewNative(st *netstack.Stack, itf *netstack.Interface) *Native {
	return &Native{Stack: st, Itf: itf}
}

// Name implements Runtime.
func (n *Native) Name() string {
	if n.RuntimeName != "" {
		return n.RuntimeName
	}
	return "EbbRT"
}

// Mgrs implements Runtime.
func (n *Native) Mgrs() []*event.Manager { return n.Stack.Mgrs }

// Kernel implements Runtime.
func (n *Native) Kernel() *sim.Kernel { return n.Stack.M.K }

// Listen implements Runtime.
func (n *Native) Listen(port uint16, accept func(conn Conn) Callbacks) error {
	_, err := n.Itf.ListenTcp(port, func(c *event.Ctx, pcb *netstack.TcpPcb) netstack.ConnHandler {
		conn := &nativeConn{pcb: pcb}
		cb := accept(conn)
		return conn.handler(cb)
	})
	return err
}

// Dial implements Runtime.
func (n *Native) Dial(c *event.Ctx, ip netstack.Ipv4Addr, port uint16, cb Callbacks, onConnect func(c *event.Ctx, conn Conn)) {
	conn := &nativeConn{}
	h := conn.handler(cb)
	inner := h.OnConnected
	h.OnConnected = func(c *event.Ctx, pcb *netstack.TcpPcb) {
		if inner != nil {
			inner(c, pcb)
		}
		if onConnect != nil {
			onConnect(c, conn)
		}
	}
	pcb, err := n.Itf.ConnectTcp(c, ip, port, h)
	if err != nil {
		if cb.OnClose != nil {
			cb.OnClose(c, conn, err)
		}
		return
	}
	conn.pcb = pcb
}

// nativeConn implements the application-side send buffering the paper
// describes: the app hands data to Send; whatever fits the remote window
// goes out immediately, the rest is held and drained on acknowledgment.
type nativeConn struct {
	pcb     *netstack.TcpPcb
	pending [][]byte
	closed  bool
	// closeRequested defers FIN until the send buffer drains.
	closeRequested bool
}

// Core implements Conn.
func (nc *nativeConn) Core() int {
	if nc.pcb == nil {
		return 0
	}
	return nc.pcb.Core()
}

func (nc *nativeConn) handler(cb Callbacks) netstack.ConnHandler {
	return netstack.ConnHandler{
		OnReceive: func(c *event.Ctx, pcb *netstack.TcpPcb, payload *iobuf.IOBuf) {
			if cb.OnData != nil {
				cb.OnData(c, nc, payload)
			}
		},
		OnAcked: func(c *event.Ctx, pcb *netstack.TcpPcb, nBytes int) {
			nc.drain(c)
		},
		OnWindowOpen: func(c *event.Ctx, pcb *netstack.TcpPcb) {
			nc.drain(c)
		},
		OnRemoteClosed: func(c *event.Ctx, pcb *netstack.TcpPcb) {
			// The peer finished sending; once our buffered data drains,
			// complete the shutdown so both sides observe OnClose.
			nc.Close(c)
		},
		OnClosed: func(c *event.Ctx, pcb *netstack.TcpPcb, err error) {
			nc.closed = true
			if cb.OnClose != nil {
				cb.OnClose(c, nc, err)
			}
		},
	}
}

// Send implements Conn.
func (nc *nativeConn) Send(c *event.Ctx, payload *iobuf.IOBuf) {
	if nc.closed || nc.pcb == nil {
		return
	}
	if len(nc.pending) == 0 {
		n := payload.ComputeChainDataLength()
		if w := nc.pcb.SendWindowRemaining(); n <= w {
			if err := nc.pcb.Send(c, payload); err == nil {
				return
			}
		}
	}
	nc.pending = append(nc.pending, payload.CopyOut())
	nc.drain(c)
}

// drain pushes buffered data as the window allows.
func (nc *nativeConn) drain(c *event.Ctx) {
	if nc.closed || nc.pcb == nil {
		return
	}
	for len(nc.pending) > 0 {
		head := nc.pending[0]
		w := nc.pcb.SendWindowRemaining()
		if w == 0 {
			return
		}
		n := len(head)
		if n > w {
			n = w
		}
		if err := nc.pcb.Send(c, iobuf.Wrap(head[:n])); err != nil {
			return
		}
		if n == len(head) {
			nc.pending = nc.pending[1:]
		} else {
			nc.pending[0] = head[n:]
		}
	}
	if nc.closeRequested && len(nc.pending) == 0 {
		nc.closeRequested = false
		nc.pcb.Close(c)
	}
}

// Close implements Conn; it defers FIN until buffered data drains.
func (nc *nativeConn) Close(c *event.Ctx) {
	if nc.closed || nc.pcb == nil {
		return
	}
	if len(nc.pending) > 0 {
		nc.closeRequested = true
		return
	}
	nc.pcb.Close(c)
}
