package appnet_test

import (
	"bytes"
	"testing"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/sim"
	"ebbrt/internal/testbed"
)

// echoPair builds a testbed with an echo server of the given kind.
func echoPair(t *testing.T, kind testbed.ServerKind) *testbed.Pair {
	t.Helper()
	pair := testbed.NewPair(kind, 1, 2)
	err := pair.Server.Listen(7, func(conn appnet.Conn) appnet.Callbacks {
		return appnet.Callbacks{
			OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
				conn.Send(c, iobuf.FromBytes(payload.CopyOut()))
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return pair
}

func roundTrip(t *testing.T, pair *testbed.Pair, msg []byte) []byte {
	t.Helper()
	var got []byte
	pair.Client.Mgrs()[0].Spawn(func(c *event.Ctx) {
		pair.Client.Dial(c, testbed.ServerIP, 7, appnet.Callbacks{
			OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
				got = append(got, payload.CopyOut()...)
			},
		}, func(c *event.Ctx, conn appnet.Conn) {
			conn.Send(c, iobuf.FromBytes(msg))
		})
	})
	pair.K.RunUntil(3 * sim.Second)
	return got
}

func TestEchoAcrossAllRuntimes(t *testing.T) {
	msg := []byte("runtime-independence")
	for _, kind := range []testbed.ServerKind{testbed.EbbRT, testbed.LinuxVM, testbed.LinuxNative, testbed.OSv} {
		pair := echoPair(t, kind)
		if got := roundTrip(t, pair, msg); !bytes.Equal(got, msg) {
			t.Fatalf("%v echoed %q", kind, got)
		}
	}
}

func TestLargeSendBuffersBeyondWindow(t *testing.T) {
	// 300 kB far exceeds the 64k TCP window: Conn.Send must buffer and
	// drain transparently on both runtimes.
	msg := make([]byte, 300_000)
	for i := range msg {
		msg[i] = byte(i * 13)
	}
	for _, kind := range []testbed.ServerKind{testbed.EbbRT, testbed.LinuxVM} {
		pair := echoPair(t, kind)
		got := roundTrip(t, pair, msg)
		if !bytes.Equal(got, msg) {
			t.Fatalf("%v: echoed %d bytes of %d", kind, len(got), len(msg))
		}
	}
}

func TestCloseAfterBufferedSendDelivers(t *testing.T) {
	pair := testbed.NewPair(testbed.EbbRT, 1, 2)
	var received []byte
	serverClosed := false
	err := pair.Server.Listen(7, func(conn appnet.Conn) appnet.Callbacks {
		return appnet.Callbacks{
			OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
				received = append(received, payload.CopyOut()...)
			},
			OnClose: func(c *event.Ctx, conn appnet.Conn, err error) { serverClosed = true },
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 200_000)
	pair.Client.Mgrs()[0].Spawn(func(c *event.Ctx) {
		pair.Client.Dial(c, testbed.ServerIP, 7, appnet.Callbacks{},
			func(c *event.Ctx, conn appnet.Conn) {
				conn.Send(c, iobuf.Wrap(msg))
				conn.Close(c) // must defer FIN until the buffer drains
			})
	})
	pair.K.RunUntil(5 * sim.Second)
	if len(received) != len(msg) {
		t.Fatalf("received %d of %d after close-behind-send", len(received), len(msg))
	}
	if !serverClosed {
		t.Fatal("server never saw the close")
	}
}

func TestDialRefusedReportsClose(t *testing.T) {
	pair := testbed.NewPair(testbed.EbbRT, 1, 2)
	gotClose := false
	var gotErr error
	pair.Client.Mgrs()[0].Spawn(func(c *event.Ctx) {
		pair.Client.Dial(c, testbed.ServerIP, 9999, appnet.Callbacks{
			OnClose: func(c *event.Ctx, conn appnet.Conn, err error) {
				gotClose = true
				gotErr = err
			},
		}, func(c *event.Ctx, conn appnet.Conn) {
			t.Error("connected to closed port")
		})
	})
	pair.K.RunUntil(2 * sim.Second)
	if !gotClose || gotErr == nil {
		t.Fatalf("refused dial: close=%v err=%v", gotClose, gotErr)
	}
}

func TestRuntimeNames(t *testing.T) {
	for _, tc := range []struct {
		kind testbed.ServerKind
		want string
	}{
		{testbed.EbbRT, "EbbRT"},
		{testbed.LinuxVM, "Linux"},
		{testbed.OSv, "OSv"},
	} {
		pair := testbed.NewPair(tc.kind, 1, 1)
		if got := pair.Server.Name(); got != tc.want {
			t.Fatalf("kind %v name %q, want %q", tc.kind, got, tc.want)
		}
	}
}

func TestGPOSDeliveryIsDeferredAndBatched(t *testing.T) {
	// On the GPOS runtime the app handler must NOT run in the softirq
	// event that received the packet: there is a wakeup delay.
	pair := testbed.NewPair(testbed.LinuxVM, 1, 2)
	var deliveredAt sim.Time
	err := pair.Server.Listen(7, func(conn appnet.Conn) appnet.Callbacks {
		return appnet.Callbacks{
			OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
				deliveredAt = c.Now()
				conn.Send(c, iobuf.FromBytes(payload.CopyOut()))
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	ebbPair := echoPair(t, testbed.EbbRT)
	msg := []byte("latency-probe")
	gposStart := pair.K.Now()
	_ = roundTrip(t, pair, msg)
	gposRTT := deliveredAt - gposStart
	ebbStart := ebbPair.K.Now()
	var ebbDone sim.Time
	ebbPair.Client.Mgrs()[0].Spawn(func(c *event.Ctx) {
		ebbPair.Client.Dial(c, testbed.ServerIP, 7, appnet.Callbacks{
			OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
				ebbDone = c.Now()
			},
		}, func(c *event.Ctx, conn appnet.Conn) {
			conn.Send(c, iobuf.FromBytes(msg))
		})
	})
	ebbPair.K.RunUntil(1 * sim.Second)
	ebbRTT := ebbDone - ebbStart
	if gposRTT <= ebbRTT/2 {
		t.Fatalf("GPOS one-way %v implausibly fast vs EbbRT RTT %v", gposRTT, ebbRTT)
	}
}
