// Package httpd is the node.js webserver workload of paper §4.3 (Table 2):
// an event-driven HTTP server answering every GET with a small static
// response totaling 148 bytes, its handler executing inside the managed
// runtime (modelled as a fixed JavaScript execution cost per request).
package httpd

import (
	"bytes"
	"fmt"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/sim"
)

// handlerSeed makes the per-request jitter deterministic per server.
const handlerSeed = 0xeb

// Port is the webserver port.
const Port = 8080

// Response is the static 148-byte HTTP response the paper's webserver
// returns (headers plus a small body).
var Response = buildResponse()

func buildResponse() []byte {
	body := "Hello World\n"
	head := fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: %d\r\nConnection: keep-alive\r\nServer: ebbrt-node\r\n", len(body))
	resp := head + pad(148-len(head)-len(body)-4) + "\r\n\r\n" + body
	return []byte(resp)
}

// pad emits an X-Pad header filler so the response totals exactly 148 B.
func pad(n int) string {
	if n <= 8 {
		return ""
	}
	return "X-Pad: " + string(bytes.Repeat([]byte{'x'}, n-9)) + "\r\n"
}

// Server is the webserver instance.
type Server struct {
	// HandlerCPU is the JavaScript handler execution cost per request
	// (V8 running the http-module callback).
	HandlerCPU sim.Time
	// HandlerJitterMean adds an exponentially distributed per-request
	// cost, modelling allocation and incremental-GC variation in the
	// managed runtime (deterministic seed).
	HandlerJitterMean sim.Time
	// Requests counts requests served.
	Requests uint64

	rng *sim.Rng
}

// NewServer returns a server with the calibrated node.js handler cost.
func NewServer() *Server {
	return &Server{
		HandlerCPU:        73 * sim.Microsecond,
		HandlerJitterMean: 9 * sim.Microsecond,
		rng:               sim.NewRng(handlerSeed),
	}
}

// handlerCost samples the per-request execution cost.
func (s *Server) handlerCost() sim.Time {
	if s.HandlerJitterMean == 0 {
		return s.HandlerCPU
	}
	return s.HandlerCPU + sim.Time(s.rng.Exp(float64(s.HandlerJitterMean)))
}

// Serve starts the server on rt.
func (s *Server) Serve(rt appnet.Runtime) error {
	return rt.Listen(Port, func(conn appnet.Conn) appnet.Callbacks {
		hc := &httpConn{srv: s}
		return appnet.Callbacks{
			OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
				hc.onData(c, conn, payload)
			},
		}
	})
}

// httpConn parses pipelined GET requests off the stream.
type httpConn struct {
	srv *Server
	rx  []byte
}

func (hc *httpConn) onData(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
	hc.rx = append(hc.rx, payload.CopyOut()...)
	var resp []byte
	for {
		idx := bytes.Index(hc.rx, []byte("\r\n\r\n"))
		if idx < 0 {
			break
		}
		req := hc.rx[:idx]
		hc.rx = hc.rx[idx+4:]
		if !bytes.HasPrefix(req, []byte("GET ")) {
			conn.Close(c)
			return
		}
		hc.srv.Requests++
		c.Charge(hc.srv.handlerCost())
		resp = append(resp, Response...)
	}
	if len(resp) > 0 {
		conn.Send(c, iobuf.Wrap(resp))
	}
}

// Request is the canonical benchmark request.
var Request = []byte("GET / HTTP/1.1\r\nHost: bench\r\n\r\n")
