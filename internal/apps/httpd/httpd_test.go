package httpd_test

import (
	"bytes"
	"testing"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/apps/httpd"
	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/sim"
	"ebbrt/internal/testbed"
)

func TestResponseExactly148Bytes(t *testing.T) {
	if len(httpd.Response) != 148 {
		t.Fatalf("response %d bytes, want 148 (paper Table 2 workload)", len(httpd.Response))
	}
	if !bytes.HasPrefix(httpd.Response, []byte("HTTP/1.1 200 OK\r\n")) {
		t.Fatal("response is not a 200")
	}
	if !bytes.Contains(httpd.Response, []byte("\r\n\r\n")) {
		t.Fatal("response missing header terminator")
	}
}

func exchange(t *testing.T, raw [][]byte) []byte {
	t.Helper()
	pair := testbed.NewPair(testbed.EbbRT, 1, 2)
	srv := httpd.NewServer()
	srv.HandlerCPU = 1 * sim.Microsecond // keep the test fast
	if err := srv.Serve(pair.Server); err != nil {
		t.Fatal(err)
	}
	var got []byte
	pair.Client.Mgrs()[0].Spawn(func(c *event.Ctx) {
		pair.Client.Dial(c, testbed.ServerIP, httpd.Port, appnet.Callbacks{
			OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
				got = append(got, payload.CopyOut()...)
			},
		}, func(c *event.Ctx, conn appnet.Conn) {
			for _, r := range raw {
				conn.Send(c, iobuf.Wrap(r))
			}
		})
	})
	pair.K.RunUntil(100 * sim.Millisecond)
	return got
}

func TestServesGET(t *testing.T) {
	got := exchange(t, [][]byte{httpd.Request})
	if !bytes.Equal(got, httpd.Response) {
		t.Fatalf("got %d bytes, want the canonical response", len(got))
	}
}

func TestPipelinedGETs(t *testing.T) {
	got := exchange(t, [][]byte{append(append([]byte{}, httpd.Request...), httpd.Request...)})
	if len(got) != 2*len(httpd.Response) {
		t.Fatalf("pipelined: got %d bytes, want %d", len(got), 2*len(httpd.Response))
	}
}

func TestRequestSplitAcrossSegments(t *testing.T) {
	req := httpd.Request
	got := exchange(t, [][]byte{req[:5], req[5:11], req[11:]})
	if !bytes.Equal(got, httpd.Response) {
		t.Fatal("fragmented request not reassembled")
	}
}

func TestNonGETClosesConnection(t *testing.T) {
	got := exchange(t, [][]byte{[]byte("POST / HTTP/1.1\r\n\r\n")})
	if len(got) != 0 {
		t.Fatalf("non-GET produced %d bytes", len(got))
	}
}

func TestHandlerJitterDeterministic(t *testing.T) {
	a, b := httpd.NewServer(), httpd.NewServer()
	if a.HandlerCPU != b.HandlerCPU {
		t.Fatal("configs differ")
	}
}
