package memcached

import (
	"fmt"
	"sync"

	"ebbrt/internal/mem"
	"ebbrt/internal/sim"
)

// BoundedStore is the memory-bounded store: the same Store interface as
// the unbounded tables, but every entry's bytes come from internal/mem's
// slab allocator over a fixed page budget, and when an allocation fails
// the store evicts from the exhausted size class's LRU list - stock
// memcached's slab-classed eviction design, which the paper's §4.2
// storage argument is about.
//
// Faithfulness notes:
//
//   - Entries are charged to the smallest slab class that fits
//     key+value+overhead; each class is a real mem.SlabAllocator carving
//     pages from the shared budget.
//   - Slab pages never return to the page allocator (the slab design has
//     no page reclaim), so a class that grew large early keeps its pages
//     even if the workload's size mix shifts - memcached's well-known
//     "slab calcification". Eviction is therefore per-class: an
//     allocation failure in class c evicts from class c's LRU only.
//   - Items too big for the largest class are backed by whole page-block
//     allocations with their own LRU; those pages DO return on eviction,
//     so large-item churn can refill the buddy allocator.
//   - Eviction prefers reclaiming expired entries near the LRU tail
//     (counted in Expired) before evicting a live one (counted in
//     Evictions), as stock memcached's tail search does.
//
// The backing bytes themselves live on the Go heap (entries hold real
// slices); the allocator tracks the simulated footprint, which is what
// the budget bounds.

// EvictionPolicy selects what the per-class lists reclaim first.
type EvictionPolicy uint8

const (
	// EvictLRU bumps an entry on every hit, so the tail is the least
	// recently used (stock memcached).
	EvictLRU EvictionPolicy = iota
	// EvictFIFO never bumps, so the tail is the oldest stored - the
	// ablation policy the MemoryPressure experiment compares against.
	EvictFIFO
)

func (p EvictionPolicy) String() string {
	if p == EvictFIFO {
		return "fifo"
	}
	return "lru"
}

// boundedClasses are the slab size classes entries are charged to.
// Anything larger than the last class is a large item backed by whole
// pages.
var boundedClasses = []int{64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096}

// boundedOverhead is the per-item metadata charge (item header, LRU
// links, hash chain), approximating stock memcached's ~48-56 byte item
// header.
const boundedOverhead = 56

// tailSearchDepth bounds how far from the LRU tail the eviction path
// looks for an expired entry before giving up and evicting a live one
// (stock memcached's bounded tail search).
const tailSearchDepth = 8

// boundedItem is one resident entry plus its allocation provenance.
type boundedItem struct {
	key   string
	e     *Entry
	class int      // index into classes, or -1 for a large item
	addr  mem.Addr // slab object or page-block base
	order int      // page order, large items only
	prev  *boundedItem
	next  *boundedItem
}

// boundedClass is one slab size class: its allocator and its LRU list
// (sentinel ring: head.next is most recent, head.prev the tail).
type boundedClass struct {
	size int
	slab *mem.SlabAllocator
	head boundedItem
	n    int
	// Per-class reclaim history, surfaced by `stats items`.
	evicted uint64
	expired uint64
}

func (c *boundedClass) init() {
	c.head.prev = &c.head
	c.head.next = &c.head
}

func (c *boundedClass) pushFront(it *boundedItem) {
	it.prev = &c.head
	it.next = c.head.next
	it.prev.next = it
	it.next.prev = it
	c.n++
}

func (c *boundedClass) unlink(it *boundedItem) {
	it.prev.next = it.next
	it.next.prev = it.prev
	it.prev, it.next = nil, nil
	c.n--
}

// BoundedStoreStats is the footprint and reclaim counters the
// MemoryPressure experiment gates on.
type BoundedStoreStats struct {
	BudgetBytes uint64 // page budget the store was created with
	UsedBytes   uint64 // pages carved from the budget right now
	PeakBytes   uint64 // high-water of UsedBytes
	ItemBytes   uint64 // bytes charged to resident items
	Items       int
	Evictions   uint64 // live entries evicted to satisfy an allocation
	Expired     uint64 // dead entries reclaimed (lazy lookups + eviction scan)
	Rejected    uint64 // stores refused even after eviction
}

// BoundedStore implements Store under a byte budget. All methods
// serialize on one mutex, like the stock cache_lock; OpCost models that.
type BoundedStore struct {
	mu      sync.Mutex
	m       map[string]*boundedItem
	pages   *mem.PageAllocator
	classes []*boundedClass
	large   boundedClass // items beyond the largest slab class
	policy  EvictionPolicy
	// Clock supplies the instant eviction scans classify entries against
	// (expired vs live). The server wires it to the simulation clock.
	clock func() sim.Time

	budget    uint64
	peak      uint64
	itemBytes uint64
	evictions uint64
	expired   uint64
	rejected  uint64
}

// NewBoundedStore creates a store over budgetBytes of simulated memory
// (rounded down to the page allocator's 8 MiB block granularity; at
// least one block). clock supplies "now" for the eviction scan's
// expired-first preference; nil means entries never look expired to it.
func NewBoundedStore(budgetBytes uint64, policy EvictionPolicy, clock func() sim.Time) *BoundedStore {
	blockBytes := uint64(mem.PageSize) << mem.MaxOrder
	if budgetBytes < blockBytes {
		panic(fmt.Sprintf("memcached: bounded store budget %d below one %d-byte block", budgetBytes, blockBytes))
	}
	budgetBytes -= budgetBytes % blockBytes
	if clock == nil {
		clock = func() sim.Time { return 0 }
	}
	s := &BoundedStore{
		m:      make(map[string]*boundedItem),
		pages:  mem.NewPageAllocator(1, budgetBytes),
		policy: policy,
		clock:  clock,
		budget: budgetBytes,
	}
	for _, size := range boundedClasses {
		c := &boundedClass{
			size: size,
			slab: mem.NewSlabAllocator(s.pages, size, 1, func(int) int { return 0 }),
		}
		c.init()
		s.classes = append(s.classes, c)
	}
	s.large.init()
	return s
}

// Name implements Store.
func (s *BoundedStore) Name() string { return "bounded-" + s.policy.String() }

// charge reports the bytes an entry is accounted at before class
// rounding.
func chargeBytes(key string, e *Entry) int {
	return len(key) + len(e.Value) + boundedOverhead
}

// classFor picks the slab class index for a charge, or -1 for a large
// item.
func (s *BoundedStore) classFor(charge int) int {
	for i, c := range s.classes {
		if charge <= c.size {
			return i
		}
	}
	return -1
}

// Stats snapshots the counters.
func (s *BoundedStore) Stats() BoundedStoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return BoundedStoreStats{
		BudgetBytes: s.budget,
		UsedBytes:   s.budget - s.pages.FreeBytes(),
		PeakBytes:   s.peak,
		ItemBytes:   s.itemBytes,
		Items:       len(s.m),
		Evictions:   s.evictions,
		Expired:     s.expired,
		Rejected:    s.rejected,
	}
}

// BoundedClassStats is one slab size class's occupancy and reclaim
// history, as `stats items` and `stats slabs` report it. Id is the
// 1-based class id (stock memcached numbers classes from 1).
type BoundedClassStats struct {
	Id         int
	ChunkSize  int
	Items      int
	UsedBytes  uint64 // Items * ChunkSize, the class-rounded charge
	FreeChunks int    // allocated-but-free slab objects
	Evicted    uint64
	Expired    uint64
}

// ClassStats snapshots the slab classes that have any history (resident
// items or past reclaims), in ascending chunk-size order. Large items
// (beyond the biggest class) appear only in the aggregate Stats.
func (s *BoundedStore) ClassStats() []BoundedClassStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []BoundedClassStats
	for i, c := range s.classes {
		if c.n == 0 && c.evicted == 0 && c.expired == 0 {
			continue
		}
		out = append(out, BoundedClassStats{
			Id:         i + 1,
			ChunkSize:  c.size,
			Items:      c.n,
			UsedBytes:  uint64(c.n) * uint64(c.size),
			FreeChunks: c.slab.FreeObjects(),
			Evicted:    c.evicted,
			Expired:    c.expired,
		})
	}
	return out
}

// Get implements Store. A hit is bumped to the front of its class's
// list under EvictLRU; EvictFIFO leaves the order as stored.
func (s *BoundedStore) Get(key string) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.m[key]
	if !ok {
		return nil, false
	}
	if s.policy == EvictLRU {
		c := s.classOf(it)
		c.unlink(it)
		c.pushFront(it)
	}
	return it.e, true
}

func (s *BoundedStore) classOf(it *boundedItem) *boundedClass {
	if it.class < 0 {
		return &s.large
	}
	return s.classes[it.class]
}

// Set implements Store: false means the entry could not be stored
// within the budget even after eviction (the server answers
// SERVER_ERROR / StatusOutOfMemory).
func (s *BoundedStore) Set(key string, e *Entry) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.m[key]; ok {
		s.removeItem(old)
	}
	return s.insert(key, e)
}

// Add implements Store.
func (s *BoundedStore) Add(key string, e *Entry) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; ok {
		return false
	}
	return s.insert(key, e)
}

// insert allocates backing for the entry, evicting as needed.
func (s *BoundedStore) insert(key string, e *Entry) bool {
	charge := chargeBytes(key, e)
	ci := s.classFor(charge)
	it := &boundedItem{key: key, e: e, class: ci}
	if ci >= 0 {
		c := s.classes[ci]
		addr, ok := c.slab.Alloc(0)
		for !ok {
			// Freeing one object of this class guarantees the next Alloc
			// succeeds, so each round either progresses or proves the
			// store can do nothing more for this class.
			if !s.reclaimFrom(c) && !s.reclaimFrom(&s.large) {
				s.rejected++
				return false
			}
			addr, ok = c.slab.Alloc(0)
		}
		it.addr = addr
		s.itemBytes += uint64(c.size)
	} else {
		order := largeOrder(charge)
		if order < 0 {
			// Bigger than the largest page block: unstorable at any budget.
			s.rejected++
			return false
		}
		addr, ok := s.pages.Alloc(order, 0)
		for !ok {
			// Only large-item pages ever come back to the buddy
			// allocator, so only the large list can unblock this.
			if !s.reclaimFrom(&s.large) {
				s.rejected++
				return false
			}
			addr, ok = s.pages.Alloc(order, 0)
		}
		it.addr = addr
		it.order = order
		s.itemBytes += uint64(mem.PageSize) << order
	}
	s.m[key] = it
	s.classOf(it).pushFront(it)
	if used := s.budget - s.pages.FreeBytes(); used > s.peak {
		s.peak = used
	}
	return true
}

// largeOrder picks the page order backing a large item, or -1 when even
// the largest block cannot hold it.
func largeOrder(charge int) int {
	for order := 0; order <= mem.MaxOrder; order++ {
		if mem.PageSize<<order >= charge {
			return order
		}
	}
	return -1
}

// reclaimFrom frees one entry from the class: an expired one near the
// tail if the bounded search finds it, else the tail itself. False
// means the class has nothing resident.
func (s *BoundedStore) reclaimFrom(c *boundedClass) bool {
	if c.n == 0 {
		return false
	}
	now := s.clock()
	victim := c.head.prev // tail = coldest
	depth := 0
	for it := c.head.prev; it != &c.head && depth < tailSearchDepth; it = it.prev {
		if it.e.Expired(now) {
			victim = it
			s.expired++
			c.expired++
			s.removeItem(victim)
			return true
		}
		depth++
	}
	s.evictions++
	c.evicted++
	s.removeItem(victim)
	return true
}

// removeItem unlinks the item and returns its backing to the allocator
// (slab object to its class, large pages to the buddy allocator).
func (s *BoundedStore) removeItem(it *boundedItem) {
	s.classOf(it).unlink(it)
	delete(s.m, it.key)
	if it.class >= 0 {
		c := s.classes[it.class]
		c.slab.Free(0, it.addr)
		s.itemBytes -= uint64(c.size)
		return
	}
	s.pages.Free(it.addr, it.order)
	s.itemBytes -= uint64(mem.PageSize) << it.order
}

// Delete implements Store.
func (s *BoundedStore) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.m[key]
	if !ok {
		return false
	}
	s.removeItem(it)
	return true
}

// Len implements Store.
func (s *BoundedStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Scan implements Store: snapshot under the lock, fn unlocked so it may
// mutate the store.
func (s *BoundedStore) Scan(fn func(key string, e *Entry) bool) {
	s.mu.Lock()
	snap := make([]storePair, 0, len(s.m))
	for k, it := range s.m {
		snap = append(snap, storePair{k: k, v: it.e})
	}
	s.mu.Unlock()
	for _, kv := range snap {
		if !fn(kv.k, kv.v) {
			return
		}
	}
}

// Keys implements Store.
func (s *BoundedStore) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	return keys
}

// OpCost implements Store: one lock like the stock cache_lock, plus the
// LRU bookkeeping, contended across actively serving cores.
func (s *BoundedStore) OpCost(activeCores int) sim.Time {
	base := 140 * sim.Nanosecond
	if activeCores > 1 {
		base += sim.Time(activeCores) * 90 * sim.Nanosecond
	}
	return base
}
