package memcached

import (
	"fmt"
	"testing"

	"ebbrt/internal/event"
	"ebbrt/internal/mem"
	"ebbrt/internal/sim"
)

const boundedTestBudget = uint64(mem.PageSize) << mem.MaxOrder // one block, the minimum

func boundedKey(i int) string { return fmt.Sprintf("k%06d", i) }

// fillEntry returns an entry whose charge lands in the 1024-byte class
// for the fixed-width keys above.
func fillEntry() *Entry {
	return &Entry{Value: make([]byte, 960)}
}

// fillToCapacity inserts entries until the first reclaim, returning how
// many fit without one.
func fillToCapacity(t *testing.T, s *BoundedStore) int {
	t.Helper()
	for i := 0; ; i++ {
		if !s.Set(boundedKey(i), fillEntry()) {
			t.Fatalf("set %d rejected during fill", i)
		}
		st := s.Stats()
		if st.Evictions+st.Expired > 0 {
			return i
		}
		if i > 1_000_000 {
			t.Fatal("budget never filled")
		}
	}
}

func TestBoundedStoreNeverExceedsBudget(t *testing.T) {
	s := NewBoundedStore(boundedTestBudget, EvictLRU, nil)
	// Offer ~2x the budget in items.
	n := int(2 * boundedTestBudget / 1024)
	for i := 0; i < n; i++ {
		if !s.Set(boundedKey(i), fillEntry()) {
			t.Fatalf("set %d rejected", i)
		}
	}
	st := s.Stats()
	if st.BudgetBytes != boundedTestBudget {
		t.Fatalf("budget %d, want %d", st.BudgetBytes, boundedTestBudget)
	}
	if st.PeakBytes > st.BudgetBytes {
		t.Fatalf("peak %d exceeded budget %d", st.PeakBytes, st.BudgetBytes)
	}
	if st.UsedBytes > st.BudgetBytes {
		t.Fatalf("used %d exceeds budget %d", st.UsedBytes, st.BudgetBytes)
	}
	if st.Evictions == 0 {
		t.Fatal("2x-budget offered load caused no evictions")
	}
	if st.Items >= n {
		t.Fatalf("all %d items resident under a budget for half", n)
	}
	if st.Items != s.Len() {
		t.Fatalf("stats items %d != Len %d", st.Items, s.Len())
	}
	// Every surviving key must still be readable.
	for _, k := range s.Keys() {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("resident key %s unreadable", k)
		}
	}
}

func TestBoundedStoreLRUBumpProtects(t *testing.T) {
	s := NewBoundedStore(boundedTestBudget, EvictLRU, nil)
	capacity := fillToCapacity(t, s)
	// The fill's first reclaim evicted the insertion-order tail, key 0.
	if _, ok := s.Get(boundedKey(0)); ok {
		t.Fatal("LRU tail survived the first eviction")
	}
	// Bump key 1 (the current tail); the next eviction must take key 2.
	if _, ok := s.Get(boundedKey(1)); !ok {
		t.Fatal("key 1 missing before bump test")
	}
	s.Set(boundedKey(capacity+1), fillEntry())
	if _, ok := s.Get(boundedKey(1)); !ok {
		t.Fatal("recently-used key evicted despite LRU bump")
	}
	if _, ok := s.Get(boundedKey(2)); ok {
		t.Fatal("key 2 survived; eviction did not follow LRU order")
	}
}

func TestBoundedStoreFIFOIgnoresHits(t *testing.T) {
	s := NewBoundedStore(boundedTestBudget, EvictFIFO, nil)
	capacity := fillToCapacity(t, s)
	// Under FIFO a hit must not protect the tail.
	if _, ok := s.Get(boundedKey(1)); !ok {
		t.Fatal("key 1 missing before hit test")
	}
	s.Set(boundedKey(capacity+1), fillEntry())
	if _, ok := s.Get(boundedKey(1)); ok {
		t.Fatal("FIFO tail survived eviction because of a hit")
	}
}

func TestBoundedStoreExpiredFirstReclaim(t *testing.T) {
	var now sim.Time
	s := NewBoundedStore(boundedTestBudget, EvictLRU, func() sim.Time { return now })
	// Probe capacity on a twin store, then fill this one just below it.
	capacity := fillToCapacity(t, NewBoundedStore(boundedTestBudget, EvictLRU, nil))
	entries := make([]*Entry, capacity)
	for i := 0; i < capacity; i++ {
		entries[i] = fillEntry()
		if !s.Set(boundedKey(i), entries[i]) {
			t.Fatalf("set %d rejected", i)
		}
	}
	if st := s.Stats(); st.Evictions+st.Expired != 0 {
		t.Fatalf("reclaims during sub-capacity fill: %+v", st)
	}
	// Expire key 1 - one step in from the LRU tail (key 0), inside the
	// bounded tail search - and push past the budget.
	entries[1].Expires = 5 * sim.Second
	now = 10 * sim.Second
	if !s.Set(boundedKey(capacity), fillEntry()) {
		t.Fatal("set past capacity rejected")
	}
	st := s.Stats()
	if st.Expired != 1 || st.Evictions != 0 {
		t.Fatalf("reclaim took a live entry over an expired one: %+v", st)
	}
	if _, ok := s.Get(boundedKey(1)); ok {
		t.Fatal("expired entry still resident")
	}
	if _, ok := s.Get(boundedKey(0)); !ok {
		t.Fatal("live tail evicted while an expired entry was in reach")
	}
}

func TestBoundedStoreLargeItems(t *testing.T) {
	s := NewBoundedStore(boundedTestBudget, EvictLRU, nil)
	// ~128 KiB values take the whole-page-block path, not a slab class.
	large := func() *Entry { return &Entry{Value: make([]byte, 128<<10)} }
	if !s.Set("big0", large()) {
		t.Fatal("first large set rejected")
	}
	used := s.Stats().UsedBytes
	if used < 128<<10 {
		t.Fatalf("large item charged only %d bytes", used)
	}
	// Large-item pages return to the buddy allocator on delete - unlike
	// slab pages, which calcify.
	s.Delete("big0")
	if got := s.Stats().UsedBytes; got != 0 {
		t.Fatalf("large-item pages not returned: used %d after delete", got)
	}
	// Offer 2x the budget in large items; the list must evict to fit.
	n := int(2 * boundedTestBudget / (128 << 10))
	for i := 0; i < n; i++ {
		if !s.Set(fmt.Sprintf("big%d", i), large()) {
			t.Fatalf("large set %d rejected", i)
		}
	}
	st := s.Stats()
	if st.PeakBytes > st.BudgetBytes {
		t.Fatalf("large items peaked at %d over budget %d", st.PeakBytes, st.BudgetBytes)
	}
	if st.Evictions == 0 {
		t.Fatal("large-item churn caused no evictions")
	}
	// An item bigger than the largest page block is unstorable.
	if s.Set("huge", &Entry{Value: make([]byte, int(boundedTestBudget)+1)}) {
		t.Fatal("stored an item larger than the whole budget")
	}
	if s.Stats().Rejected == 0 {
		t.Fatal("oversized store not counted as rejected")
	}
}

// TestBoundedStoreSlabCalcification: pages claimed by one size class
// never return to the buddy allocator, so once one class owns every
// page a different class - with nothing of its own to evict - cannot
// store at all, while the calcified class keeps cycling via its own
// LRU. This is stock memcached's slab calcification.
func TestBoundedStoreSlabCalcification(t *testing.T) {
	s := NewBoundedStore(boundedTestBudget, EvictLRU, nil)
	capacity := fillToCapacity(t, s)        // 1024-class now owns every page
	small := &Entry{Value: make([]byte, 4)} // 64-byte class
	if s.Set("small0", small) {
		t.Fatal("starved class stored despite calcified pages and an empty LRU of its own")
	}
	if st := s.Stats(); st.Rejected == 0 {
		t.Fatalf("starved-class store not counted as rejected: %+v", st)
	}
	// The calcified class itself keeps working, evicting from its own LRU.
	if !s.Set(boundedKey(capacity+1), fillEntry()) {
		t.Fatal("calcified class rejected a same-class store")
	}
}

// TestBoundedStoreServerOOM: the server surfaces an unsatisfiable store
// as StatusOutOfMemory on the wire.
func TestBoundedStoreServerOOM(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewBoundedStore(boundedTestBudget, EvictLRU, nil), 1)
		_, fc := feed(c, srv,
			BuildSet([]byte("huge"), make([]byte, int(boundedTestBudget)+1), 0, 1),
			BuildSet([]byte("ok"), []byte("v"), 0, 2),
		)
		hdrs, _ := parseResponses(t, fc.out)
		if len(hdrs) != 2 {
			t.Fatalf("%d responses, want 2", len(hdrs))
		}
		if hdrs[0].Status != StatusOutOfMemory {
			t.Fatalf("oversized set status %#x, want OutOfMemory", hdrs[0].Status)
		}
		if hdrs[1].Status != StatusOK {
			t.Fatalf("normal set after OOM status %#x, want OK", hdrs[1].Status)
		}
	})
}
