package memcached

import "ebbrt/internal/sim"

// Expiry semantics, stock-memcached-exact (docs/PROTOCOL.md "Expiry").
//
// Every wire protocol carries expiry as `exptime`, an integer number of
// seconds interpreted by memcached's long-standing rules:
//
//   - 0 means "never expires";
//   - a value up to 30 days (2,592,000 seconds) is RELATIVE: the entry
//     expires that many seconds from now;
//   - a value above 30 days is an ABSOLUTE unix timestamp;
//   - a negative value (text protocol only - the binary field is
//     unsigned) or an absolute timestamp already in the past expires the
//     entry immediately: it is stored, but no read will ever see it.
//
// Expiry is lazy, as in stock memcached: nothing sweeps the store on a
// timer. An expired entry is reclaimed when a request touches it (any
// lookup path treats it as absent and deletes it) or when the bounded
// store's eviction scan reaches it. Migration and read-repair streams
// filter expired entries at stream time so a new owner never resurrects
// them.
//
// All of this runs on simulated time, so expiry tests are deterministic:
// the simulation's unix clock is defined below.

// UnixEpochOffset anchors the simulation's unix clock: virtual time 0 is
// this unix second. Absolute exptimes (> MaxRelativeExpiry) are
// interpreted against it, which is what lets tests exercise the 30-day
// absolute rule without waiting 30 days of virtual time.
const UnixEpochOffset int64 = 1_700_000_000

// MaxRelativeExpiry is the stock 30-day cutoff: an exptime at or below
// it is relative seconds-from-now, above it an absolute unix timestamp.
const MaxRelativeExpiry int64 = 30 * 24 * 60 * 60

// ExpiredImmediately is the Entry.Expires sentinel for "stored already
// dead" (negative exptime, or an absolute timestamp in the past).
const ExpiredImmediately = sim.Time(-1)

// UnixNow maps a virtual instant onto the simulation's unix clock.
func UnixNow(now sim.Time) int64 {
	return UnixEpochOffset + int64(now/sim.Second)
}

// AbsoluteExpiry resolves a wire exptime into the absolute virtual time
// the entry dies at (0 = never), applying the stock rules above.
func AbsoluteExpiry(exptime int64, now sim.Time) sim.Time {
	switch {
	case exptime == 0:
		return 0
	case exptime < 0:
		return ExpiredImmediately
	case exptime > MaxRelativeExpiry:
		secs := exptime - UnixEpochOffset
		if at := sim.Time(secs) * sim.Second; at > now {
			return at
		}
		return ExpiredImmediately
	default:
		return now + sim.Time(exptime)*sim.Second
	}
}

// Expired reports whether the entry is dead at the given instant: an
// Expires of 0 never expires, anything else expires once now reaches it
// (ExpiredImmediately is below any valid instant, so it is always dead).
func (e *Entry) Expired(now sim.Time) bool {
	return e.Expires != 0 && e.Expires <= now
}
