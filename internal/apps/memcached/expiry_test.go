package memcached

import (
	"encoding/binary"
	"testing"

	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/machine"
	"ebbrt/internal/sim"
)

// Expiry semantics tests: the exptime resolution rules as pure units,
// then the full server paths (both protocols) driven across virtual
// time - the whole point of sim-time expiry is that "wait 30 days" is a
// deterministic unit test here.

func TestAbsoluteExpiryRules(t *testing.T) {
	now := 10 * sim.Second
	cases := []struct {
		name    string
		exptime int64
		want    sim.Time
	}{
		{"zero-never", 0, 0},
		{"negative-immediate", -1, ExpiredImmediately},
		{"relative-1s", 1, now + sim.Second},
		{"relative-30d-boundary", MaxRelativeExpiry, now + sim.Time(MaxRelativeExpiry)*sim.Second},
		{"absolute-future", UnixEpochOffset + 60, 60 * sim.Second},
		{"absolute-past", UnixEpochOffset + 5, ExpiredImmediately},
		{"absolute-now", UnixEpochOffset + 10, ExpiredImmediately},
	}
	for _, tc := range cases {
		if got := AbsoluteExpiry(tc.exptime, now); got != tc.want {
			t.Errorf("%s: AbsoluteExpiry(%d, %v) = %v, want %v", tc.name, tc.exptime, now, got, tc.want)
		}
	}
	e := &Entry{Expires: 5 * sim.Second}
	if e.Expired(5*sim.Second - 1) {
		t.Error("entry expired before its deadline")
	}
	if !e.Expired(5 * sim.Second) {
		t.Error("entry not expired at its deadline")
	}
	if (&Entry{}).Expired(1 << 60) {
		t.Error("never-expiring entry expired")
	}
	if !(&Entry{Expires: ExpiredImmediately}).Expired(0) {
		t.Error("immediately-expired entry served")
	}
}

// timedStep is one action at a virtual instant, for tests that must
// cross expiry deadlines.
type timedStep struct {
	at sim.Time
	fn func(c *event.Ctx)
}

// runTimed executes the steps at their instants on one simulated core.
func runTimed(t *testing.T, horizon sim.Time, steps []timedStep) {
	t.Helper()
	k := sim.NewKernel()
	m := machine.New(k, machine.DefaultConfig("proto", 1))
	mgr := event.NewManager(m.Cores[0], event.DefaultCosts())
	ran := 0
	for _, st := range steps {
		st := st
		mgr.After(st.at, func(c *event.Ctx) {
			st.fn(c)
			ran++
		})
	}
	k.RunUntil(horizon)
	if ran != len(steps) {
		t.Fatalf("only %d of %d timed steps ran", ran, len(steps))
	}
}

// TestTextExptimeHonored is the anchor-bug regression: the text parser
// always validated exptime and then dropped it, so `set k 0 1 v` never
// expired. The entry must serve before the deadline and miss after it.
func TestTextExptimeHonored(t *testing.T) {
	srv := NewServer(NewRCUStore(), 1)
	sc := &serverConn{srv: srv}
	fc := &fakeConn{}
	runTimed(t, 5*sim.Second, []timedStep{
		{0, func(c *event.Ctx) {
			sc.onData(c, fc, wrapBytes("set k 0 1 5\r\nhello\r\n"))
			if string(fc.out) != respStored {
				t.Fatalf("store response %q", fc.out)
			}
			fc.out = nil
		}},
		{900 * sim.Millisecond, func(c *event.Ctx) {
			sc.onData(c, fc, wrapBytes("get k\r\n"))
			if want := "VALUE k 0 5\r\nhello\r\n" + respEnd; string(fc.out) != want {
				t.Fatalf("pre-expiry get %q, want %q", fc.out, want)
			}
			fc.out = nil
		}},
		{1100 * sim.Millisecond, func(c *event.Ctx) {
			sc.onData(c, fc, wrapBytes("get k\r\n"))
			if string(fc.out) != respEnd {
				t.Fatalf("post-expiry get served %q - the exptime was dropped on the floor", fc.out)
			}
			if srv.Store.Len() != 0 {
				t.Fatal("expired entry not lazily reclaimed by the lookup")
			}
			if srv.ExpiredReclaimed != 1 {
				t.Fatalf("ExpiredReclaimed = %d, want 1", srv.ExpiredReclaimed)
			}
		}},
	})
}

// TestBinarySetExptimeHonored drives the binary extras' exptime field
// through the same deadline crossing.
func TestBinarySetExptimeHonored(t *testing.T) {
	srv := NewServer(NewRCUStore(), 1)
	sc := &serverConn{srv: srv}
	fc := &fakeConn{}
	req := BuildSet([]byte("k"), []byte("v"), 0, 1)
	binary.BigEndian.PutUint32(req[HeaderLen+4:], 2) // exptime: 2 seconds
	runTimed(t, 5*sim.Second, []timedStep{
		{0, func(c *event.Ctx) {
			sc.onData(c, fc, wrapBytes(string(req)))
			sc.onData(c, fc, wrapBytes(string(BuildGet([]byte("k"), 2))))
			hdrs, bodies := parseResponses(t, fc.out)
			if len(hdrs) != 2 || hdrs[1].Status != StatusOK {
				t.Fatalf("pre-expiry responses %+v", hdrs)
			}
			// The GET response's extras carry the absolute expiry.
			if len(bodies[1]) < GetResponseExtrasLen {
				t.Fatalf("GET extras %d bytes, want %d", len(bodies[1]), GetResponseExtrasLen)
			}
			if exp := sim.Time(int64(binary.BigEndian.Uint64(bodies[1][4:12]))); exp != 2*sim.Second {
				t.Fatalf("GET extras expiry %v, want 2s", exp)
			}
			fc.out = nil
		}},
		{2100 * sim.Millisecond, func(c *event.Ctx) {
			sc.onData(c, fc, wrapBytes(string(BuildGet([]byte("k"), 3))))
			hdrs, _ := parseResponses(t, fc.out)
			if len(hdrs) != 1 || hdrs[0].Status != StatusKeyNotFound {
				t.Fatalf("post-expiry get %+v, want KeyNotFound", hdrs)
			}
		}},
	})
}

// TestNegativeAndPastExptime: a negative exptime (text only) and an
// absolute unix time already in the past both store the entry dead.
func TestNegativeAndPastExptime(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv, []byte(
			"set dead 0 -1 1\r\nx\r\n"+
				"get dead\r\n"))
		if want := respStored + respEnd; string(fc.out) != want {
			t.Fatalf("negative exptime session %q, want %q", fc.out, want)
		}
	})
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		past := UnixNow(c.Now()) - 100
		line := "set dead 0 " + itoa(int(past)) + " 1\r\nx\r\nget dead\r\n"
		_, fc := feed(c, srv, []byte(line))
		if want := respStored + respEnd; string(fc.out) != want {
			t.Fatalf("past absolute exptime session %q, want %q", fc.out, want)
		}
	})
}

// TestAbsoluteUnixExptime: a value above the 30-day cutoff is an
// absolute unix timestamp on the simulation's unix clock.
func TestAbsoluteUnixExptime(t *testing.T) {
	srv := NewServer(NewRCUStore(), 1)
	sc := &serverConn{srv: srv}
	fc := &fakeConn{}
	// Absolute: unix second 3 of the sim clock = virtual time 3s.
	line := "set k 0 " + itoa(int(UnixEpochOffset)+3) + " 1\r\nv\r\n"
	runTimed(t, 10*sim.Second, []timedStep{
		{0, func(c *event.Ctx) {
			sc.onData(c, fc, wrapBytes(line))
			if string(fc.out) != respStored {
				t.Fatalf("store %q", fc.out)
			}
			fc.out = nil
		}},
		{2900 * sim.Millisecond, func(c *event.Ctx) {
			sc.onData(c, fc, wrapBytes("get k\r\n"))
			if string(fc.out) == respEnd {
				t.Fatal("entry expired before its absolute deadline")
			}
			fc.out = nil
		}},
		{3100 * sim.Millisecond, func(c *event.Ctx) {
			sc.onData(c, fc, wrapBytes("get k\r\n"))
			if string(fc.out) != respEnd {
				t.Fatalf("entry survived its absolute deadline: %q", fc.out)
			}
		}},
	})
}

// TestTouchExtendsDeadline: touch moves a live entry's expiry without
// minting a CAS; touch on a missing (or expired) key is NOT_FOUND.
func TestTouchExtendsDeadline(t *testing.T) {
	srv := NewServer(NewRCUStore(), 1)
	sc := &serverConn{srv: srv}
	fc := &fakeConn{}
	var casBefore uint64
	runTimed(t, 10*sim.Second, []timedStep{
		{0, func(c *event.Ctx) {
			sc.onData(c, fc, wrapBytes("set k 0 1 1\r\nv\r\ntouch missing 5\r\n"))
			if want := respStored + respNotFound; string(fc.out) != want {
				t.Fatalf("setup %q, want %q", fc.out, want)
			}
			e, _ := srv.Store.Get("k")
			casBefore = e.CAS
			fc.out = nil
		}},
		{500 * sim.Millisecond, func(c *event.Ctx) {
			sc.onData(c, fc, wrapBytes("touch k 4\r\n"))
			if string(fc.out) != respTouched {
				t.Fatalf("touch %q", fc.out)
			}
			e, ok := srv.Store.Get("k")
			if !ok || e.CAS != casBefore {
				t.Fatalf("touch minted a CAS: %d -> %d", casBefore, e.CAS)
			}
			fc.out = nil
		}},
		{2 * sim.Second, func(c *event.Ctx) {
			// Original deadline (1s) passed, touched deadline (0.5s+4s) not.
			sc.onData(c, fc, wrapBytes("get k\r\n"))
			if string(fc.out) == respEnd {
				t.Fatal("touched entry expired at its ORIGINAL deadline")
			}
			fc.out = nil
		}},
		{5 * sim.Second, func(c *event.Ctx) {
			sc.onData(c, fc, wrapBytes("get k\r\ntouch k 1\r\n"))
			if want := respEnd + respNotFound; string(fc.out) != want {
				t.Fatalf("post-deadline %q, want %q", fc.out, want)
			}
		}},
	})
}

// TestFlushAllImmediateAndDelayed: flush_all kills everything stored
// before it; with a delay the cut takes effect at the deadline, killing
// entries stored before the deadline (even after the command) but not
// entries stored after it.
func TestFlushAllImmediateAndDelayed(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv, []byte(
			"set a 0 0 1\r\nx\r\n"+
				"flush_all\r\n"+
				"get a\r\n"+
				"set b 0 0 1\r\ny\r\n"+
				"get b\r\n"))
		want := respStored + respOK + respEnd + respStored + "VALUE b 0 1\r\ny\r\n" + respEnd
		if string(fc.out) != want {
			t.Fatalf("immediate flush session:\n got %q\nwant %q", fc.out, want)
		}
	})

	srv := NewServer(NewRCUStore(), 1)
	sc := &serverConn{srv: srv}
	fc := &fakeConn{}
	runTimed(t, 10*sim.Second, []timedStep{
		{0, func(c *event.Ctx) {
			sc.onData(c, fc, wrapBytes("set a 0 0 1\r\nx\r\nflush_all 2\r\n"))
			if want := respStored + respOK; string(fc.out) != want {
				t.Fatalf("setup %q", fc.out)
			}
			fc.out = nil
		}},
		{1 * sim.Second, func(c *event.Ctx) {
			// Inside the delay window: a is still alive, and b (stored now,
			// still before the deadline) will die at the cut too.
			sc.onData(c, fc, wrapBytes("get a\r\nset b 0 0 1\r\ny\r\n"))
			if want := "VALUE a 0 1\r\nx\r\n" + respEnd + respStored; string(fc.out) != want {
				t.Fatalf("inside delay window %q, want %q", fc.out, want)
			}
			fc.out = nil
		}},
		{3 * sim.Second, func(c *event.Ctx) {
			sc.onData(c, fc, wrapBytes("get a\r\nget b\r\nset d 0 0 1\r\nz\r\nget d\r\n"))
			want := respEnd + respEnd + respStored + "VALUE d 0 1\r\nz\r\n" + respEnd
			if string(fc.out) != want {
				t.Fatalf("post-deadline %q, want %q", fc.out, want)
			}
		}},
	})
}

// TestExpiredOccupantDoesNotBlockAdd: add must treat a dead occupant as
// absent, reclaiming it, in both protocols.
func TestExpiredOccupantDoesNotBlockAdd(t *testing.T) {
	srv := NewServer(NewRCUStore(), 1)
	sc := &serverConn{srv: srv}
	fc := &fakeConn{}
	runTimed(t, 10*sim.Second, []timedStep{
		{0, func(c *event.Ctx) {
			sc.onData(c, fc, wrapBytes("set k 0 1 1\r\na\r\n"))
			fc.out = nil
		}},
		{2 * sim.Second, func(c *event.Ctx) {
			sc.onData(c, fc, wrapBytes("add k 0 0 1\r\nb\r\nget k\r\n"))
			if want := respStored + "VALUE k 0 1\r\nb\r\n" + respEnd; string(fc.out) != want {
				t.Fatalf("add over expired occupant %q, want %q", fc.out, want)
			}
		}},
	})
}

// TestDeleteOfExpiredIsNotFound: delete must answer as if the dead
// entry were already gone.
func TestDeleteOfExpiredIsNotFound(t *testing.T) {
	srv := NewServer(NewRCUStore(), 1)
	sc := &serverConn{srv: srv}
	fc := &fakeConn{}
	runTimed(t, 10*sim.Second, []timedStep{
		{0, func(c *event.Ctx) {
			sc.onData(c, fc, wrapBytes("set k 0 1 1\r\na\r\n"))
			fc.out = nil
		}},
		{2 * sim.Second, func(c *event.Ctx) {
			sc.onData(c, fc, wrapBytes("delete k\r\n"))
			if string(fc.out) != respNotFound {
				t.Fatalf("delete of expired entry %q, want NOT_FOUND", fc.out)
			}
		}},
	})
}

func wrapBytes(s string) *iobuf.IOBuf { return iobuf.Wrap([]byte(s)) }
