package memcached

import (
	"bytes"
	"testing"

	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
)

// buildRound assembles one pipelined multiget round: a GETQ per key
// fenced by a Noop, exactly as the cluster client's batched submission
// queue emits it.
func buildRound(keys []string, fenceOpaque uint32) []byte {
	var pkt []byte
	for i, k := range keys {
		pkt = append(pkt, BuildGetQ([]byte(k), uint32(i+1))...)
	}
	return append(pkt, BuildNoop(fenceOpaque)...)
}

// roundServer seeds a server for the mixed round: k1 and k4 live, k3
// stored but already expired (a past deadline reclaimed on touch), k2
// never stored.
func roundServer(t *testing.T) *Server {
	t.Helper()
	srv := NewServer(NewRCUStore(), 1)
	srv.Store.Set("k1", &Entry{Value: []byte("v1"), Flags: 7, CAS: 11})
	srv.Store.Set("k3", &Entry{Value: []byte("dead"), Expires: 1, CAS: 12})
	srv.Store.Set("k4", &Entry{Value: []byte("v4"), CAS: 13})
	return srv
}

var roundKeys = []string{"k1", "k2", "k3", "k4"}

// checkRound verifies the byte-exact response stream of the mixed
// round: hits for k1 (opaque 1) and k4 (opaque 4) with the GETQ opcode
// echoed, nothing at all for the miss and the expired entry, and the
// Noop fence last.
func checkRound(t *testing.T, raw []byte) {
	t.Helper()
	hdrs, bodies := parseResponses(t, raw)
	if len(hdrs) != 3 {
		t.Fatalf("%d responses, want hits for k1+k4 and the fence", len(hdrs))
	}
	for i, want := range []struct {
		opcode byte
		opaque uint32
		cas    uint64
		value  string
	}{
		{OpGetQ, 1, 11, "v1"},
		{OpGetQ, 4, 13, "v4"},
		{OpNoop, 9, 0, ""},
	} {
		h := hdrs[i]
		if h.Opcode != want.opcode || h.Opaque != want.opaque || h.Status != StatusOK || h.CAS != want.cas {
			t.Fatalf("response %d: %+v, want opcode %#x opaque %d cas %d", i, h, want.opcode, want.opaque, want.cas)
		}
		if want.value != "" && string(bodies[i][GetResponseExtrasLen:]) != want.value {
			t.Fatalf("response %d: value %q, want %q", i, bodies[i][GetResponseExtrasLen:], want.value)
		}
	}
}

func TestGetQRoundMixedHitsMissesExpired(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := roundServer(t)
		_, fc := feed(c, srv, buildRound(roundKeys, 9))
		checkRound(t, fc.out)
		if srv.ExpiredReclaimed != 1 {
			t.Fatalf("expired entry not reclaimed by the quiet read (reclaims=%d)", srv.ExpiredReclaimed)
		}
	})
}

func TestGetQRoundSplitAtEveryOffset(t *testing.T) {
	// The round's responses must be byte-identical no matter how TCP
	// fragments the request stream: every split point yields the same
	// hits, the same suppressed misses, and the fence last.
	round := buildRound(roundKeys, 9)
	var want []byte
	protoHarness(t, func(c *event.Ctx) {
		_, fc := feed(c, roundServer(t), round)
		want = append([]byte(nil), fc.out...)
	})
	for cut := 1; cut < len(round); cut++ {
		protoHarness(t, func(c *event.Ctx) {
			_, fc := feed(c, roundServer(t), round[:cut], round[cut:])
			if !bytes.Equal(fc.out, want) {
				t.Fatalf("cut=%d: response stream diverged (%d bytes vs %d)", cut, len(fc.out), len(want))
			}
		})
	}
}

func TestGetQRoundAllMissesAnswersOnlyFence(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv, buildRound([]string{"a", "b", "c"}, 77))
		hdrs, _ := parseResponses(t, fc.out)
		if len(hdrs) != 1 || hdrs[0].Opcode != OpNoop || hdrs[0].Opaque != 77 {
			t.Fatalf("want only the fence response, got %+v", hdrs)
		}
	})
}

func TestGetQRoundSingleDeliveryCoalesces(t *testing.T) {
	// A round delivered as one segment must come back as one Send: the
	// server coalesces the delivery batch's responses, which is half of
	// what batching saves the frontend (one receive path, not N).
	protoHarness(t, func(c *event.Ctx) {
		srv := roundServer(t)
		sc := &serverConn{srv: srv}
		fc := &countingConn{}
		sc.onData(c, fc, iobuf.Wrap(buildRound(roundKeys, 9)))
		if fc.sends != 1 {
			t.Fatalf("round answered in %d sends, want 1 coalesced send", fc.sends)
		}
		checkRound(t, fc.out)
	})
}

// countingConn is fakeConn plus a Send-call counter.
type countingConn struct {
	fakeConn
	sends int
}

func (f *countingConn) Send(c *event.Ctx, payload *iobuf.IOBuf) {
	f.sends++
	f.fakeConn.Send(c, payload)
}
