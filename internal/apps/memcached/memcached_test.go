package memcached

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/sim"
	"ebbrt/internal/testbed"
)

func TestHeaderRoundTrip(t *testing.T) {
	prop := func(op byte, keyLen uint8, extras uint8, body uint16, opaque uint32, cas uint64) bool {
		bodyLen := uint32(keyLen) + uint32(extras) + uint32(body)
		h := Header{
			Magic: MagicRequest, Opcode: op,
			KeyLen: uint16(keyLen), ExtrasLen: extras,
			BodyLen: bodyLen, Opaque: opaque, CAS: cas,
		}
		b := make([]byte, HeaderLen)
		WriteHeader(b, h)
		got, err := ParseHeader(b)
		return err == nil && got == h
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseHeaderRejectsInconsistentLengths(t *testing.T) {
	b := make([]byte, HeaderLen)
	WriteHeader(b, Header{Magic: MagicRequest, KeyLen: 10, BodyLen: 5})
	if _, err := ParseHeader(b); err == nil {
		t.Fatal("inconsistent lengths accepted")
	}
	if _, err := ParseHeader(b[:10]); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestStoresAgree(t *testing.T) {
	for _, store := range []Store{NewRCUStore(), NewLockedStore()} {
		if _, ok := store.Get("missing"); ok {
			t.Fatalf("%s: found missing key", store.Name())
		}
		store.Set("k", &Entry{Value: []byte("v"), Flags: 7})
		e, ok := store.Get("k")
		if !ok || string(e.Value) != "v" || e.Flags != 7 {
			t.Fatalf("%s: got %+v ok=%v", store.Name(), e, ok)
		}
		if store.Len() != 1 {
			t.Fatalf("%s: len %d", store.Name(), store.Len())
		}
		if !store.Delete("k") || store.Delete("k") {
			t.Fatalf("%s: delete semantics wrong", store.Name())
		}
	}
}

func TestLockedStoreCostGrowsWithCores(t *testing.T) {
	s := NewLockedStore()
	if s.OpCost(4) <= s.OpCost(1) {
		t.Fatal("locked store contention cost not increasing")
	}
	r := NewRCUStore()
	if r.OpCost(24) != r.OpCost(1) {
		t.Fatal("RCU store cost should be core-count independent")
	}
}

// serveAndExchange runs a request against a live server over the testbed
// and returns the raw responses.
func serveAndExchange(t *testing.T, requests [][]byte) []byte {
	t.Helper()
	pair := testbed.NewPair(testbed.EbbRT, 1, 2)
	srv := NewServer(NewRCUStore(), 1)
	if err := srv.Serve(pair.Server); err != nil {
		t.Fatal(err)
	}
	var responses []byte
	pair.Client.Mgrs()[0].Spawn(func(c *event.Ctx) {
		pair.Client.Dial(c, testbed.ServerIP, Port, appnet.Callbacks{
			OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
				responses = append(responses, payload.CopyOut()...)
			},
		}, func(c *event.Ctx, conn appnet.Conn) {
			for _, req := range requests {
				conn.Send(c, iobuf.Wrap(req))
			}
		})
	})
	pair.K.RunUntil(100 * sim.Millisecond)
	return responses
}

func TestSetGetDeleteOverNetwork(t *testing.T) {
	key := []byte("the-key")
	val := []byte("the-value")
	resp := serveAndExchange(t, [][]byte{
		BuildSet(key, val, 0xdead, 1),
		BuildGet(key, 2),
		BuildDelete(key, 3),
		BuildGet(key, 4),
	})

	// Parse the four responses.
	var hdrs []Header
	var bodies [][]byte
	for off := 0; off+HeaderLen <= len(resp); {
		h, err := ParseHeader(resp[off:])
		if err != nil {
			t.Fatal(err)
		}
		total := HeaderLen + int(h.BodyLen)
		hdrs = append(hdrs, h)
		bodies = append(bodies, resp[off+HeaderLen:off+total])
		off += total
	}
	if len(hdrs) != 4 {
		t.Fatalf("got %d responses", len(hdrs))
	}
	if hdrs[0].Status != StatusOK || hdrs[0].Opaque != 1 {
		t.Fatalf("set response %+v", hdrs[0])
	}
	if hdrs[1].Status != StatusOK || hdrs[1].Opaque != 2 {
		t.Fatalf("get response %+v", hdrs[1])
	}
	flags := binary.BigEndian.Uint32(bodies[1][:4])
	if flags != 0xdead || string(bodies[1][GetResponseExtrasLen:]) != "the-value" {
		t.Fatalf("get body flags=%x value=%q", flags, bodies[1][GetResponseExtrasLen:])
	}
	if hdrs[2].Status != StatusOK {
		t.Fatalf("delete response %+v", hdrs[2])
	}
	if hdrs[3].Status != StatusKeyNotFound {
		t.Fatalf("get-after-delete response %+v", hdrs[3])
	}
}

func TestGetQSuppressesMiss(t *testing.T) {
	resp := serveAndExchange(t, [][]byte{
		buildOp(OpGetQ, []byte("absent"), 9),
		BuildGet([]byte("also-absent"), 10),
	})
	h, err := ParseHeader(resp)
	if err != nil {
		t.Fatal(err)
	}
	// The quiet miss produced nothing; the first response is the loud one.
	if h.Opaque != 10 || h.Status != StatusKeyNotFound {
		t.Fatalf("first response %+v", h)
	}
}

func buildOp(op byte, key []byte, opaque uint32) []byte {
	b := make([]byte, HeaderLen+len(key))
	WriteHeader(b, Header{Magic: MagicRequest, Opcode: op,
		KeyLen: uint16(len(key)), BodyLen: uint32(len(key)), Opaque: opaque})
	copy(b[HeaderLen:], key)
	return b
}

func TestPipelinedRequestsSplitAcrossSegments(t *testing.T) {
	// Concatenate several requests, then send them in awkward fragments to
	// exercise the reassembly path.
	key := []byte("kk")
	all := append(BuildSet(key, []byte("v1"), 0, 1), BuildGet(key, 2)...)
	all = append(all, BuildGet(key, 3)...)
	var frags [][]byte
	for len(all) > 0 {
		n := 7
		if n > len(all) {
			n = len(all)
		}
		frags = append(frags, all[:n])
		all = all[n:]
	}
	resp := serveAndExchange(t, frags)
	count := 0
	for off := 0; off+HeaderLen <= len(resp); {
		h, err := ParseHeader(resp[off:])
		if err != nil {
			t.Fatal(err)
		}
		if h.Status != StatusOK {
			t.Fatalf("response %d status %d", count, h.Status)
		}
		off += HeaderLen + int(h.BodyLen)
		count++
	}
	if count != 3 {
		t.Fatalf("got %d responses, want 3", count)
	}
}
