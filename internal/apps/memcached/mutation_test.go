package memcached

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
)

// Mutation-command edge suites: incr/decr, append/prepend, touch and
// flush_all over both protocols, mirroring the byte-exact style of
// textproto_test.go and the split sweep of protocol_edge_test.go.

func TestTextIncrDecrEdges(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv, []byte(
			"set n 0 0 2\r\n10\r\n"+
				"incr n 5\r\n"+ // 15
				"decr n 3\r\n"+ // 12
				"decr n 100\r\n"+ // clamps at 0
				"incr missing 1\r\n"+ // NOT_FOUND
				"set s 0 0 3\r\nabc\r\n"+
				"incr s 1\r\n"+ // non-numeric value
				"incr n abc\r\n"+ // bad delta argument
				"set big 0 0 20\r\n18446744073709551615\r\n"+
				"incr big 1\r\n")) // wraps to 0
		want := respStored +
			"15\r\n" +
			"12\r\n" +
			"0\r\n" +
			respNotFound +
			respStored +
			respNonNumeric +
			respBadDelta +
			respStored +
			"0\r\n"
		if string(fc.out) != want {
			t.Fatalf("incr/decr session:\n got %q\nwant %q", fc.out, want)
		}
	})
}

func TestTextIncrNoreply(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv, []byte(
			"set n 0 0 1\r\n7\r\n"+
				"incr n 2 noreply\r\n"+
				"decr n 1 noreply\r\n"+
				"get n\r\n"))
		want := respStored + "VALUE n 0 1\r\n8\r\n" + respEnd
		if string(fc.out) != want {
			t.Fatalf("noreply incr/decr session:\n got %q\nwant %q", fc.out, want)
		}
	})
}

func TestBinaryCounterEdges(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv,
			BuildCounter([]byte("n"), 1, 0, CounterNoCreate, true, 1),   // miss, no create
			BuildCounter([]byte("n"), 3, 40, 0, true, 2),                // miss, seeds initial=40
			BuildCounter([]byte("n"), 3, 0, CounterNoCreate, true, 3),   // 43
			BuildCounter([]byte("n"), 50, 0, CounterNoCreate, false, 4), // clamps at 0
		)
		hdrs, bodies := parseResponses(t, fc.out)
		if len(hdrs) != 4 {
			t.Fatalf("%d responses, want 4", len(hdrs))
		}
		if hdrs[0].Status != StatusKeyNotFound {
			t.Fatalf("no-create miss status %#x, want KeyNotFound", hdrs[0].Status)
		}
		wantVals := []uint64{40, 43, 0}
		for i, want := range wantVals {
			h, b := hdrs[i+1], bodies[i+1]
			if h.Status != StatusOK || len(b) != 8 {
				t.Fatalf("counter response %d: status %#x body %d bytes", i+1, h.Status, len(b))
			}
			if got := binary.BigEndian.Uint64(b); got != want {
				t.Fatalf("counter response %d: value %d, want %d", i+1, got, want)
			}
			if h.CAS == 0 {
				t.Fatalf("counter response %d: CAS not minted", i+1)
			}
		}
		// The stored representation is the decimal string, like stock.
		if e, _ := srv.Store.Get("n"); string(e.Value) != "0" {
			t.Fatalf("stored counter value %q, want decimal \"0\"", e.Value)
		}
	})
}

func TestBinaryCounterNonNumericAndWrap(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv,
			BuildSet([]byte("s"), []byte("abc"), 0, 1),
			BuildCounter([]byte("s"), 1, 0, CounterNoCreate, true, 2),
			BuildSet([]byte("big"), []byte("18446744073709551615"), 0, 3),
			BuildCounter([]byte("big"), 2, 0, CounterNoCreate, true, 4), // wraps to 1
		)
		hdrs, bodies := parseResponses(t, fc.out)
		if len(hdrs) != 4 {
			t.Fatalf("%d responses, want 4", len(hdrs))
		}
		if hdrs[1].Status != StatusDeltaBadval {
			t.Fatalf("incr on non-numeric status %#x, want DeltaBadval", hdrs[1].Status)
		}
		if hdrs[3].Status != StatusOK || binary.BigEndian.Uint64(bodies[3]) != 1 {
			t.Fatalf("wrap response status %#x value %v, want OK 1", hdrs[3].Status, bodies[3])
		}
	})
}

func TestTextAppendPrependCASMonotonic(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv, []byte(
			"append k 0 0 1\r\nx\r\n"+ // nothing to append onto
				"prepend k 0 0 1\r\nx\r\n"+
				"set k 7 0 2\r\nbc\r\n"+
				"gets k\r\n"+
				"append k 0 0 1\r\nd\r\n"+
				"prepend k 0 0 1\r\na\r\n"+
				"gets k\r\n"))
		raw := string(fc.out)
		wantPrefix := respNotStored + respNotStored + respStored
		if len(raw) < len(wantPrefix) || raw[:len(wantPrefix)] != wantPrefix {
			t.Fatalf("session prefix %q, want %q", raw, wantPrefix)
		}
		// First gets: "VALUE k 7 2 <cas1>\r\nbc\r\nEND\r\n", then two
		// STOREDs, then "VALUE k 7 4 <cas2>\r\nabcd\r\nEND\r\n".
		rest := raw[len(wantPrefix):]
		var flags1, len1 int
		var cas1 uint64
		if _, err := sscanValue(rest, "k", &flags1, &len1, &cas1); err != nil {
			t.Fatalf("first gets: %v (in %q)", err, rest)
		}
		if flags1 != 7 || len1 != 2 {
			t.Fatalf("first gets flags=%d len=%d, want 7 2", flags1, len1)
		}
		e, _ := srv.Store.Get("k")
		if string(e.Value) != "abcd" {
			t.Fatalf("final value %q, want abcd", e.Value)
		}
		// Concatenation preserves flags but mints fresh, larger CAS values.
		if e.Flags != 7 {
			t.Fatalf("append/prepend dropped flags: %d", e.Flags)
		}
		if e.CAS <= cas1 {
			t.Fatalf("CAS not monotonic across concats: %d -> %d", cas1, e.CAS)
		}
	})
}

func TestBinaryAppendPrepend(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv,
			buildConcat([]byte("k"), []byte("x"), true, 1), // miss
			BuildSet([]byte("k"), []byte("bc"), 7, 2),
			buildConcat([]byte("k"), []byte("d"), true, 3),
			buildConcat([]byte("k"), []byte("a"), false, 4),
			BuildGet([]byte("k"), 5),
		)
		hdrs, bodies := parseResponses(t, fc.out)
		if len(hdrs) != 5 {
			t.Fatalf("%d responses, want 5", len(hdrs))
		}
		if hdrs[0].Status != StatusNotStored {
			t.Fatalf("concat miss status %#x, want NotStored", hdrs[0].Status)
		}
		if hdrs[2].Status != StatusOK || hdrs[3].Status != StatusOK {
			t.Fatalf("concat statuses %#x %#x", hdrs[2].Status, hdrs[3].Status)
		}
		if hdrs[3].CAS <= hdrs[2].CAS || hdrs[2].CAS <= hdrs[1].CAS {
			t.Fatalf("CAS not monotonic: set=%d append=%d prepend=%d",
				hdrs[1].CAS, hdrs[2].CAS, hdrs[3].CAS)
		}
		got := bodies[4][GetResponseExtrasLen:]
		if !bytes.Equal(got, []byte("abcd")) {
			t.Fatalf("final value %q, want abcd", got)
		}
		if flags := binary.BigEndian.Uint32(bodies[4][:4]); flags != 7 {
			t.Fatalf("concat dropped flags: %d", flags)
		}
	})
}

func TestBinaryTouchAndFlush(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv,
			BuildSet([]byte("k"), []byte("v"), 0, 1),
			BuildTouch([]byte("k"), 60, 2),
			BuildTouch([]byte("missing"), 60, 3),
			buildFlush(0, 4),
			BuildGet([]byte("k"), 5),
		)
		hdrs, _ := parseResponses(t, fc.out)
		if len(hdrs) != 5 {
			t.Fatalf("%d responses, want 5", len(hdrs))
		}
		if hdrs[1].Status != StatusOK {
			t.Fatalf("touch status %#x, want OK", hdrs[1].Status)
		}
		if hdrs[2].Status != StatusKeyNotFound {
			t.Fatalf("touch on missing key status %#x, want KeyNotFound", hdrs[2].Status)
		}
		if hdrs[3].Status != StatusOK {
			t.Fatalf("flush status %#x, want OK", hdrs[3].Status)
		}
		if hdrs[4].Status != StatusKeyNotFound {
			t.Fatalf("get after flush status %#x, want KeyNotFound", hdrs[4].Status)
		}
	})
}

// TestTextIncrSplitAtEveryOffset mirrors TestTextSplitAtEveryOffset for
// a mutation command: the session must behave identically no matter
// where the byte stream is cut.
func TestTextIncrSplitAtEveryOffset(t *testing.T) {
	session := []byte("set n 0 0 2\r\n41\r\nincr n 1\r\nappend n 0 0 1\r\n!\r\nget n\r\n")
	want := respStored + "42\r\n" + respStored + "VALUE n 0 3\r\n42!\r\n" + respEnd
	for cut := 1; cut < len(session); cut++ {
		cut := cut
		protoHarness(t, func(c *event.Ctx) {
			srv := NewServer(NewRCUStore(), 1)
			sc := &serverConn{srv: srv}
			fc := &fakeConn{}
			sc.onData(c, fc, iobuf.Wrap(session[:cut]))
			sc.onData(c, fc, iobuf.Wrap(session[cut:]))
			if string(fc.out) != want {
				t.Fatalf("cut=%d:\n got %q\nwant %q", cut, fc.out, want)
			}
		})
	}
}

// buildConcat encodes a binary append/prepend request (no extras).
func buildConcat(key, value []byte, atEnd bool, opaque uint32) []byte {
	op := byte(OpPrepend)
	if atEnd {
		op = OpAppend
	}
	body := len(key) + len(value)
	b := make([]byte, HeaderLen+body)
	WriteHeader(b, Header{
		Magic: MagicRequest, Opcode: op,
		KeyLen: uint16(len(key)), BodyLen: uint32(body), Opaque: opaque,
	})
	copy(b[HeaderLen:], key)
	copy(b[HeaderLen+len(key):], value)
	return b
}

// buildFlush encodes a binary flush_all request with a 4-byte delay.
func buildFlush(delay uint32, opaque uint32) []byte {
	b := make([]byte, HeaderLen+4)
	WriteHeader(b, Header{
		Magic: MagicRequest, Opcode: OpFlush,
		ExtrasLen: 4, BodyLen: 4, Opaque: opaque,
	})
	binary.BigEndian.PutUint32(b[HeaderLen:], delay)
	return b
}

// sscanValue parses the "VALUE <key> <flags> <len> <cas>" line at the
// head of a gets response.
func sscanValue(raw, key string, flags, length *int, cas *uint64) (int, error) {
	var k string
	n, err := fmt.Sscanf(raw, "VALUE %s %d %d %d", &k, flags, length, cas)
	if err != nil {
		return n, err
	}
	if k != key {
		return n, fmt.Errorf("gets returned key %q, want %q", k, key)
	}
	return n, nil
}
