// Package memcached re-implements memcached directly against the EbbRT
// interfaces (paper §4.2): a multi-core key-value server storing pairs
// in an RCU hash table (with a globally-locked ablation), handling each
// request synchronously from the network stack.
//
// The server speaks both standard memcached wire protocols on the same
// listener - the binary protocol (this file) and the ASCII text
// protocol (textproto.go) - auto-detected per connection from the first
// byte: 0x80 is the binary request magic, anything else begins a text
// command line. docs/PROTOCOL.md is the wire-format reference for both.
//
// The same server logic runs over the GPOS baseline through the appnet
// abstraction, which is how Figures 5 and 6 compare systems.
package memcached

import (
	"encoding/binary"
	"fmt"
)

// Binary protocol magics.
const (
	MagicRequest  = 0x80
	MagicResponse = 0x81
)

// Opcodes used by the mutilate-style workload and the migration stream.
const (
	OpGet    = 0x00
	OpSet    = 0x01
	OpAdd    = 0x02
	OpDelete = 0x04
	OpNoop   = 0x0a
	OpGetQ   = 0x09
	OpSetQ   = 0x11
	OpAddQ   = 0x12
)

// Response status codes.
const (
	StatusOK          = 0x0000
	StatusKeyNotFound = 0x0001
	StatusKeyExists   = 0x0002
	StatusUnknownCmd  = 0x0081
)

// HeaderLen is the fixed binary-protocol header size.
const HeaderLen = 24

// Header is the binary protocol packet header (request or response).
type Header struct {
	Magic     byte
	Opcode    byte
	KeyLen    uint16
	ExtrasLen byte
	Status    uint16 // vbucket id in requests
	BodyLen   uint32 // total body: extras + key + value
	Opaque    uint32
	CAS       uint64
}

// ParseHeader decodes a 24-byte header.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderLen {
		return Header{}, fmt.Errorf("memcached: short header (%d)", len(b))
	}
	h := Header{
		Magic:     b[0],
		Opcode:    b[1],
		KeyLen:    binary.BigEndian.Uint16(b[2:4]),
		ExtrasLen: b[4],
		Status:    binary.BigEndian.Uint16(b[6:8]),
		BodyLen:   binary.BigEndian.Uint32(b[8:12]),
		Opaque:    binary.BigEndian.Uint32(b[12:16]),
		CAS:       binary.BigEndian.Uint64(b[16:24]),
	}
	if int(h.KeyLen)+int(h.ExtrasLen) > int(h.BodyLen) {
		return Header{}, fmt.Errorf("memcached: inconsistent lengths key=%d extras=%d body=%d",
			h.KeyLen, h.ExtrasLen, h.BodyLen)
	}
	return h, nil
}

// WriteHeader encodes h into b (at least HeaderLen bytes).
func WriteHeader(b []byte, h Header) {
	b[0] = h.Magic
	b[1] = h.Opcode
	binary.BigEndian.PutUint16(b[2:4], h.KeyLen)
	b[4] = h.ExtrasLen
	b[5] = 0 // data type
	binary.BigEndian.PutUint16(b[6:8], h.Status)
	binary.BigEndian.PutUint32(b[8:12], h.BodyLen)
	binary.BigEndian.PutUint32(b[12:16], h.Opaque)
	binary.BigEndian.PutUint64(b[16:24], h.CAS)
}

// BuildGet encodes a GET request.
func BuildGet(key []byte, opaque uint32) []byte {
	b := make([]byte, HeaderLen+len(key))
	WriteHeader(b, Header{
		Magic: MagicRequest, Opcode: OpGet,
		KeyLen: uint16(len(key)), BodyLen: uint32(len(key)), Opaque: opaque,
	})
	copy(b[HeaderLen:], key)
	return b
}

// BuildSet encodes a SET request with flags and zero expiry.
func BuildSet(key, value []byte, flags uint32, opaque uint32) []byte {
	return BuildSetStamped(key, value, flags, opaque, 0)
}

// BuildSetStamped encodes a SET carrying a version stamp in the request
// header's CAS field. A nonzero stamp selects the replica-stamped store
// rule (docs/PROTOCOL.md "Version stamps"): the server stores the entry
// with exactly this CAS - never re-minting from its local counter - and
// applies it only if the stamp is newer than the entry it would replace,
// so replicas of one key converge on the same {value, stamp} no matter
// the delivery order. stamp 0 is a plain SET (server-minted CAS).
func BuildSetStamped(key, value []byte, flags uint32, opaque uint32, stamp uint64) []byte {
	body := 8 + len(key) + len(value)
	b := make([]byte, HeaderLen+body)
	WriteHeader(b, Header{
		Magic: MagicRequest, Opcode: OpSet,
		KeyLen: uint16(len(key)), ExtrasLen: 8,
		BodyLen: uint32(body), Opaque: opaque, CAS: stamp,
	})
	binary.BigEndian.PutUint32(b[HeaderLen:], flags)
	binary.BigEndian.PutUint32(b[HeaderLen+4:], 0)
	copy(b[HeaderLen+8:], key)
	copy(b[HeaderLen+8+len(key):], value)
	return b
}

// BuildAdd encodes an ADD (store-if-absent) request; quiet selects the
// AddQ opcode, which suppresses the success response - the migration
// stream pipelines AddQ and fences with a single Noop rather than
// reading one response per key.
func BuildAdd(key, value []byte, flags uint32, opaque uint32, quiet bool) []byte {
	return BuildAddStamped(key, value, flags, opaque, quiet, 0)
}

// BuildAddStamped is BuildAdd carrying a version stamp in the request
// header's CAS field: the stored entry keeps exactly this CAS instead of
// a freshly minted server-local one. The migration stream uses it so a
// transferred entry arrives at its new owner with the stamp the
// surviving replicas hold - re-minting would silently diverge them.
func BuildAddStamped(key, value []byte, flags uint32, opaque uint32, quiet bool, stamp uint64) []byte {
	body := 8 + len(key) + len(value)
	b := make([]byte, HeaderLen+body)
	op := byte(OpAdd)
	if quiet {
		op = OpAddQ
	}
	WriteHeader(b, Header{
		Magic: MagicRequest, Opcode: op,
		KeyLen: uint16(len(key)), ExtrasLen: 8,
		BodyLen: uint32(body), Opaque: opaque, CAS: stamp,
	})
	binary.BigEndian.PutUint32(b[HeaderLen:], flags)
	binary.BigEndian.PutUint32(b[HeaderLen+4:], 0)
	copy(b[HeaderLen+8:], key)
	copy(b[HeaderLen+8+len(key):], value)
	return b
}

// BuildNoop encodes a NOOP request. A noop at the tail of a quiet
// pipeline acts as a fence: its response confirms every earlier request
// on the connection has been processed (TCP ordering plus the server's
// in-order handling).
func BuildNoop(opaque uint32) []byte {
	b := make([]byte, HeaderLen)
	WriteHeader(b, Header{Magic: MagicRequest, Opcode: OpNoop, Opaque: opaque})
	return b
}

// BuildDelete encodes a DELETE request.
func BuildDelete(key []byte, opaque uint32) []byte {
	b := make([]byte, HeaderLen+len(key))
	WriteHeader(b, Header{
		Magic: MagicRequest, Opcode: OpDelete,
		KeyLen: uint16(len(key)), BodyLen: uint32(len(key)), Opaque: opaque,
	})
	copy(b[HeaderLen:], key)
	return b
}

// GetResponseExtrasLen is the flags field carried on GET responses.
const GetResponseExtrasLen = 4

// NextFrame splits one complete packet off the head of a byte stream.
// It is the single implementation of the protocol's framing rule,
// shared by the server, the cluster client, and the load generator. It
// returns n == 0 (and no error) while data holds only a partial packet;
// it returns an error as soon as the header is malformed or carries the
// wrong magic - without waiting for the body, since a desynced stream
// never resynchronizes and the connection should be torn down.
func NextFrame(data []byte, magic byte) (hdr Header, body []byte, n int, err error) {
	if len(data) < HeaderLen {
		return Header{}, nil, 0, nil
	}
	hdr, err = ParseHeader(data)
	if err != nil {
		return Header{}, nil, 0, err
	}
	if hdr.Magic != magic {
		return Header{}, nil, 0, fmt.Errorf("memcached: magic %#x, want %#x", hdr.Magic, magic)
	}
	total := HeaderLen + int(hdr.BodyLen)
	if len(data) < total {
		return hdr, nil, 0, nil
	}
	return hdr, data[HeaderLen:total], total, nil
}
