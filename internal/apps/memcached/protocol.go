// Package memcached re-implements memcached directly against the EbbRT
// interfaces (paper §4.2): a multi-core key-value server storing pairs
// in an RCU hash table (with a globally-locked ablation), handling each
// request synchronously from the network stack.
//
// The server speaks both standard memcached wire protocols on the same
// listener - the binary protocol (this file) and the ASCII text
// protocol (textproto.go) - auto-detected per connection from the first
// byte: 0x80 is the binary request magic, anything else begins a text
// command line. docs/PROTOCOL.md is the wire-format reference for both.
//
// The same server logic runs over the GPOS baseline through the appnet
// abstraction, which is how Figures 5 and 6 compare systems.
package memcached

import (
	"encoding/binary"
	"fmt"
)

// Binary protocol magics.
const (
	MagicRequest  = 0x80
	MagicResponse = 0x81
)

// Opcodes used by the mutilate-style workload and the migration stream.
const (
	OpGet       = 0x00
	OpSet       = 0x01
	OpAdd       = 0x02
	OpDelete    = 0x04
	OpIncrement = 0x05
	OpDecrement = 0x06
	OpFlush     = 0x08
	OpNoop      = 0x0a
	OpGetQ      = 0x09
	OpStat      = 0x10
	OpAppend    = 0x0e
	OpPrepend   = 0x0f
	OpSetQ      = 0x11
	OpAddQ      = 0x12
	OpTouch     = 0x1c
)

// Response status codes.
const (
	StatusOK          = 0x0000
	StatusKeyNotFound = 0x0001
	StatusKeyExists   = 0x0002
	StatusValueTooBig = 0x0003
	StatusNotStored   = 0x0005
	StatusDeltaBadval = 0x0006
	StatusUnknownCmd  = 0x0081
	StatusOutOfMemory = 0x0082
)

// HeaderLen is the fixed binary-protocol header size.
const HeaderLen = 24

// Header is the binary protocol packet header (request or response).
type Header struct {
	Magic     byte
	Opcode    byte
	KeyLen    uint16
	ExtrasLen byte
	Status    uint16 // vbucket id in requests
	BodyLen   uint32 // total body: extras + key + value
	Opaque    uint32
	CAS       uint64
}

// ParseHeader decodes a 24-byte header.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderLen {
		return Header{}, fmt.Errorf("memcached: short header (%d)", len(b))
	}
	h := Header{
		Magic:     b[0],
		Opcode:    b[1],
		KeyLen:    binary.BigEndian.Uint16(b[2:4]),
		ExtrasLen: b[4],
		Status:    binary.BigEndian.Uint16(b[6:8]),
		BodyLen:   binary.BigEndian.Uint32(b[8:12]),
		Opaque:    binary.BigEndian.Uint32(b[12:16]),
		CAS:       binary.BigEndian.Uint64(b[16:24]),
	}
	if int(h.KeyLen)+int(h.ExtrasLen) > int(h.BodyLen) {
		return Header{}, fmt.Errorf("memcached: inconsistent lengths key=%d extras=%d body=%d",
			h.KeyLen, h.ExtrasLen, h.BodyLen)
	}
	return h, nil
}

// WriteHeader encodes h into b (at least HeaderLen bytes).
func WriteHeader(b []byte, h Header) {
	b[0] = h.Magic
	b[1] = h.Opcode
	binary.BigEndian.PutUint16(b[2:4], h.KeyLen)
	b[4] = h.ExtrasLen
	b[5] = 0 // data type
	binary.BigEndian.PutUint16(b[6:8], h.Status)
	binary.BigEndian.PutUint32(b[8:12], h.BodyLen)
	binary.BigEndian.PutUint32(b[12:16], h.Opaque)
	binary.BigEndian.PutUint64(b[16:24], h.CAS)
}

// BuildGet encodes a GET request.
func BuildGet(key []byte, opaque uint32) []byte {
	b := make([]byte, HeaderLen+len(key))
	WriteHeader(b, Header{
		Magic: MagicRequest, Opcode: OpGet,
		KeyLen: uint16(len(key)), BodyLen: uint32(len(key)), Opaque: opaque,
	})
	copy(b[HeaderLen:], key)
	return b
}

// BuildGetQ encodes a quiet GET. The server suppresses the miss
// response entirely and answers a hit with the GETQ opcode echoed;
// clients pipeline a run of GETQs and fence them with a NOOP, reading
// absence of a member's response once the fence answers (docs/PROTOCOL.md
// "Multiget rounds").
func BuildGetQ(key []byte, opaque uint32) []byte {
	b := make([]byte, HeaderLen+len(key))
	WriteHeader(b, Header{
		Magic: MagicRequest, Opcode: OpGetQ,
		KeyLen: uint16(len(key)), BodyLen: uint32(len(key)), Opaque: opaque,
	})
	copy(b[HeaderLen:], key)
	return b
}

// BuildSet encodes a SET request with flags and zero expiry.
func BuildSet(key, value []byte, flags uint32, opaque uint32) []byte {
	return BuildSetStamped(key, value, flags, opaque, 0)
}

// BuildSetStamped encodes a SET carrying a version stamp in the request
// header's CAS field. A nonzero stamp selects the replica-stamped store
// rule (docs/PROTOCOL.md "Version stamps"): the server stores the entry
// with exactly this CAS - never re-minting from its local counter - and
// applies it only if the stamp is newer than the entry it would replace,
// so replicas of one key converge on the same {value, stamp} no matter
// the delivery order. stamp 0 is a plain SET (server-minted CAS).
func BuildSetStamped(key, value []byte, flags uint32, opaque uint32, stamp uint64) []byte {
	body := 8 + len(key) + len(value)
	b := make([]byte, HeaderLen+body)
	WriteHeader(b, Header{
		Magic: MagicRequest, Opcode: OpSet,
		KeyLen: uint16(len(key)), ExtrasLen: 8,
		BodyLen: uint32(body), Opaque: opaque, CAS: stamp,
	})
	binary.BigEndian.PutUint32(b[HeaderLen:], flags)
	binary.BigEndian.PutUint32(b[HeaderLen+4:], 0)
	copy(b[HeaderLen+8:], key)
	copy(b[HeaderLen+8+len(key):], value)
	return b
}

// BuildAdd encodes an ADD (store-if-absent) request; quiet selects the
// AddQ opcode, which suppresses the success response - the migration
// stream pipelines AddQ and fences with a single Noop rather than
// reading one response per key.
func BuildAdd(key, value []byte, flags uint32, opaque uint32, quiet bool) []byte {
	return BuildAddStamped(key, value, flags, opaque, quiet, 0)
}

// BuildAddStamped is BuildAdd carrying a version stamp in the request
// header's CAS field: the stored entry keeps exactly this CAS instead of
// a freshly minted server-local one. The migration stream uses it so a
// transferred entry arrives at its new owner with the stamp the
// surviving replicas hold - re-minting would silently diverge them.
func BuildAddStamped(key, value []byte, flags uint32, opaque uint32, quiet bool, stamp uint64) []byte {
	body := 8 + len(key) + len(value)
	b := make([]byte, HeaderLen+body)
	op := byte(OpAdd)
	if quiet {
		op = OpAddQ
	}
	WriteHeader(b, Header{
		Magic: MagicRequest, Opcode: op,
		KeyLen: uint16(len(key)), ExtrasLen: 8,
		BodyLen: uint32(body), Opaque: opaque, CAS: stamp,
	})
	binary.BigEndian.PutUint32(b[HeaderLen:], flags)
	binary.BigEndian.PutUint32(b[HeaderLen+4:], 0)
	copy(b[HeaderLen+8:], key)
	copy(b[HeaderLen+8+len(key):], value)
	return b
}

// BuildNoop encodes a NOOP request. A noop at the tail of a quiet
// pipeline acts as a fence: its response confirms every earlier request
// on the connection has been processed (TCP ordering plus the server's
// in-order handling).
func BuildNoop(opaque uint32) []byte {
	b := make([]byte, HeaderLen)
	WriteHeader(b, Header{Magic: MagicRequest, Opcode: OpNoop, Opaque: opaque})
	return b
}

// BuildStat encodes a STAT request. An empty key requests the general
// statistics; "items" and "slabs" select those groups. The server
// answers with one response packet per statistic (name in the key
// field, value in the value field) terminated by an empty-key,
// empty-value packet.
func BuildStat(key []byte, opaque uint32) []byte {
	b := make([]byte, HeaderLen+len(key))
	WriteHeader(b, Header{
		Magic: MagicRequest, Opcode: OpStat,
		KeyLen: uint16(len(key)), BodyLen: uint32(len(key)), Opaque: opaque,
	})
	copy(b[HeaderLen:], key)
	return b
}

// BuildDelete encodes a DELETE request.
func BuildDelete(key []byte, opaque uint32) []byte {
	b := make([]byte, HeaderLen+len(key))
	WriteHeader(b, Header{
		Magic: MagicRequest, Opcode: OpDelete,
		KeyLen: uint16(len(key)), BodyLen: uint32(len(key)), Opaque: opaque,
	})
	copy(b[HeaderLen:], key)
	return b
}

// GetResponseExtrasLen is the extras block carried on GET responses:
// the stock 4-byte flags field followed by the entry's absolute expiry
// as a signed 64-bit virtual time (0 = never). Stock memcached sends
// only the flags; the expiry extension is what lets the cluster
// client's hot-key cache expire cached values at the origin's deadline
// instead of serving them until its own TTL runs out. Consumers that
// only want flags read the first 4 bytes and ignore the rest.
const GetResponseExtrasLen = 12

// SetAbsExpiryExtrasLen marks the internal SET/ADD extras dialect:
// extras of exactly 8 bytes are the stock {flags u32, exptime u32}
// (exptime resolved by the server under the stock relative/absolute
// rules), while extras of this length carry {flags u32, expiry i64} -
// the entry's absolute virtual expiry, stored verbatim. Migration and
// read-repair use the latter so a transferred entry keeps its exact
// deadline; re-encoding as whole seconds would shift it.
const SetAbsExpiryExtrasLen = 12

// BuildSetAbsExpiry is BuildSetStamped carrying an absolute virtual
// expiry verbatim (the internal dialect above). Read-repair uses it to
// copy an entry to a stale replica without disturbing its deadline.
func BuildSetAbsExpiry(key, value []byte, flags uint32, opaque uint32, stamp uint64, expires int64) []byte {
	body := SetAbsExpiryExtrasLen + len(key) + len(value)
	b := make([]byte, HeaderLen+body)
	WriteHeader(b, Header{
		Magic: MagicRequest, Opcode: OpSet,
		KeyLen: uint16(len(key)), ExtrasLen: SetAbsExpiryExtrasLen,
		BodyLen: uint32(body), Opaque: opaque, CAS: stamp,
	})
	binary.BigEndian.PutUint32(b[HeaderLen:], flags)
	binary.BigEndian.PutUint64(b[HeaderLen+4:], uint64(expires))
	copy(b[HeaderLen+SetAbsExpiryExtrasLen:], key)
	copy(b[HeaderLen+SetAbsExpiryExtrasLen+len(key):], value)
	return b
}

// BuildAddStampedAbs is BuildAddStamped carrying an absolute virtual
// expiry verbatim. The migration stream uses it so a transferred entry
// arrives at its new owner with both the stamp and the deadline the
// surviving replicas hold.
func BuildAddStampedAbs(key, value []byte, flags uint32, opaque uint32, quiet bool, stamp uint64, expires int64) []byte {
	body := SetAbsExpiryExtrasLen + len(key) + len(value)
	b := make([]byte, HeaderLen+body)
	op := byte(OpAdd)
	if quiet {
		op = OpAddQ
	}
	WriteHeader(b, Header{
		Magic: MagicRequest, Opcode: op,
		KeyLen: uint16(len(key)), ExtrasLen: SetAbsExpiryExtrasLen,
		BodyLen: uint32(body), Opaque: opaque, CAS: stamp,
	})
	binary.BigEndian.PutUint32(b[HeaderLen:], flags)
	binary.BigEndian.PutUint64(b[HeaderLen+4:], uint64(expires))
	copy(b[HeaderLen+SetAbsExpiryExtrasLen:], key)
	copy(b[HeaderLen+SetAbsExpiryExtrasLen+len(key):], value)
	return b
}

// CounterExtrasLen is the extras block on INCREMENT/DECREMENT requests:
// {delta u64, initial u64, exptime u32}, per the stock binary protocol.
const CounterExtrasLen = 20

// CounterNoCreate is the INCREMENT/DECREMENT exptime meaning "do not
// create on miss" (stock memcached's 0xffffffff sentinel).
const CounterNoCreate = 0xffffffff

// BuildCounter encodes an INCREMENT (incr=true) or DECREMENT request.
// exptime CounterNoCreate makes a miss an error instead of seeding the
// counter with initial.
func BuildCounter(key []byte, delta, initial uint64, exptime uint32, incr bool, opaque uint32) []byte {
	body := CounterExtrasLen + len(key)
	b := make([]byte, HeaderLen+body)
	op := byte(OpDecrement)
	if incr {
		op = OpIncrement
	}
	WriteHeader(b, Header{
		Magic: MagicRequest, Opcode: op,
		KeyLen: uint16(len(key)), ExtrasLen: CounterExtrasLen,
		BodyLen: uint32(body), Opaque: opaque,
	})
	binary.BigEndian.PutUint64(b[HeaderLen:], delta)
	binary.BigEndian.PutUint64(b[HeaderLen+8:], initial)
	binary.BigEndian.PutUint32(b[HeaderLen+16:], exptime)
	copy(b[HeaderLen+CounterExtrasLen:], key)
	return b
}

// BuildTouch encodes a TOUCH request (4-byte exptime extras).
func BuildTouch(key []byte, exptime uint32, opaque uint32) []byte {
	body := 4 + len(key)
	b := make([]byte, HeaderLen+body)
	WriteHeader(b, Header{
		Magic: MagicRequest, Opcode: OpTouch,
		KeyLen: uint16(len(key)), ExtrasLen: 4,
		BodyLen: uint32(body), Opaque: opaque,
	})
	binary.BigEndian.PutUint32(b[HeaderLen:], exptime)
	copy(b[HeaderLen+4:], key)
	return b
}

// NextFrame splits one complete packet off the head of a byte stream.
// It is the single implementation of the protocol's framing rule,
// shared by the server, the cluster client, and the load generator. It
// returns n == 0 (and no error) while data holds only a partial packet;
// it returns an error as soon as the header is malformed or carries the
// wrong magic - without waiting for the body, since a desynced stream
// never resynchronizes and the connection should be torn down.
func NextFrame(data []byte, magic byte) (hdr Header, body []byte, n int, err error) {
	if len(data) < HeaderLen {
		return Header{}, nil, 0, nil
	}
	hdr, err = ParseHeader(data)
	if err != nil {
		return Header{}, nil, 0, err
	}
	if hdr.Magic != magic {
		return Header{}, nil, 0, fmt.Errorf("memcached: magic %#x, want %#x", hdr.Magic, magic)
	}
	total := HeaderLen + int(hdr.BodyLen)
	if len(data) < total {
		return hdr, nil, 0, nil
	}
	return hdr, data[HeaderLen:total], total, nil
}
