package memcached

import (
	"bytes"
	"testing"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/machine"
	"ebbrt/internal/sim"
)

// fakeConn captures server output without a network, so the protocol
// edge cases (especially the every-byte-offset split sweep) run at unit
// speed against the real serverConn reassembly/dispatch logic.
type fakeConn struct {
	out    []byte
	closed bool
}

func (f *fakeConn) Send(c *event.Ctx, payload *iobuf.IOBuf) {
	f.out = append(f.out, payload.CopyOut()...)
}
func (f *fakeConn) Close(c *event.Ctx) { f.closed = true }
func (f *fakeConn) Core() int          { return 0 }

// protoHarness runs fn inside a live event context.
func protoHarness(t *testing.T, fn func(c *event.Ctx)) {
	t.Helper()
	k := sim.NewKernel()
	m := machine.New(k, machine.DefaultConfig("proto", 1))
	mgr := event.NewManager(m.Cores[0], event.DefaultCosts())
	done := false
	mgr.Spawn(func(c *event.Ctx) {
		fn(c)
		done = true
	})
	k.RunUntil(1 * sim.Second)
	if !done {
		t.Fatal("harness event did not run")
	}
}

// feed delivers the byte chunks to a fresh server connection and
// returns the connection, its fake transport, and the server.
func feed(c *event.Ctx, srv *Server, chunks ...[]byte) (*serverConn, *fakeConn) {
	sc := &serverConn{srv: srv}
	fc := &fakeConn{}
	for _, chunk := range chunks {
		if sc.srv != nil && !fc.closed {
			sc.onData(c, fc, iobuf.Wrap(chunk))
		}
	}
	return sc, fc
}

func parseResponses(t *testing.T, raw []byte) ([]Header, [][]byte) {
	t.Helper()
	var hdrs []Header
	var bodies [][]byte
	for off := 0; off < len(raw); {
		h, err := ParseHeader(raw[off:])
		if err != nil {
			t.Fatalf("bad response at %d: %v", off, err)
		}
		if h.Magic != MagicResponse {
			t.Fatalf("response magic %#x", h.Magic)
		}
		total := HeaderLen + int(h.BodyLen)
		if off+total > len(raw) {
			t.Fatalf("truncated response at %d", off)
		}
		hdrs = append(hdrs, h)
		bodies = append(bodies, raw[off+HeaderLen:off+total])
		off += total
	}
	return hdrs, bodies
}

func TestTruncatedHeaderHeldUntilCompleted(t *testing.T) {
	// A partial header must produce no response and no close; the
	// request completes when the remainder arrives.
	req := BuildGet([]byte("k"), 7)
	for cut := 1; cut < HeaderLen; cut++ {
		protoHarness(t, func(c *event.Ctx) {
			srv := NewServer(NewRCUStore(), 1)
			srv.Store.Set("k", &Entry{Value: []byte("v")})
			sc, fc := feed(c, srv, req[:cut])
			if len(fc.out) != 0 || fc.closed {
				t.Fatalf("cut=%d: server reacted to truncated header (out=%d closed=%v)",
					cut, len(fc.out), fc.closed)
			}
			sc.onData(c, fc, iobuf.Wrap(req[cut:]))
			hdrs, bodies := parseResponses(t, fc.out)
			if len(hdrs) != 1 || hdrs[0].Status != StatusOK || string(bodies[0][GetResponseExtrasLen:]) != "v" {
				t.Fatalf("cut=%d: bad completion %+v", cut, hdrs)
			}
		})
	}
}

func TestTruncatedHeaderNeverAnsweredIfAbandoned(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv, BuildGet([]byte("k"), 1)[:HeaderLen-1])
		if len(fc.out) != 0 || fc.closed {
			t.Fatalf("reacted to abandoned partial header")
		}
		if srv.Requests != 0 {
			t.Fatalf("counted %d requests for zero complete frames", srv.Requests)
		}
	})
}

func TestBadMagicClosesConnection(t *testing.T) {
	// A first byte other than 0x80 selects the text protocol (see
	// textproto_test.go), so the desync-means-close rule now applies to
	// connections that already committed to binary: once the first frame
	// carried the request magic, a later frame without it is a
	// desynchronized stream and must drop the connection.
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		junk := make([]byte, HeaderLen)
		junk[0] = 0x42
		_, fc := feed(c, srv, BuildNoop(1), junk)
		if !fc.closed {
			t.Fatal("protocol error did not close the connection")
		}
		hdrs, _ := parseResponses(t, fc.out)
		if len(hdrs) != 1 || hdrs[0].Opaque != 1 {
			t.Fatalf("want only the pre-junk noop response, got %+v", hdrs)
		}
	})
}

func TestUnknownOpcodeStatus(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		req := buildOp(0x55, []byte("key"), 0xbeef)
		_, fc := feed(c, srv, req)
		hdrs, _ := parseResponses(t, fc.out)
		if len(hdrs) != 1 {
			t.Fatalf("%d responses", len(hdrs))
		}
		if hdrs[0].Status != StatusUnknownCmd {
			t.Fatalf("status %#x, want StatusUnknownCmd", hdrs[0].Status)
		}
		if hdrs[0].Opaque != 0xbeef || hdrs[0].Opcode != 0x55 {
			t.Fatalf("echo fields wrong: %+v", hdrs[0])
		}
	})
}

// buildSetQ encodes a quiet SET.
func buildSetQ(key, value []byte, opaque uint32) []byte {
	b := BuildSet(key, value, 0, opaque)
	b[1] = OpSetQ
	return b
}

func TestQuietSemantics(t *testing.T) {
	// The quiet variants answer only when something went wrong: GetQ
	// suppresses misses (but answers hits), SetQ suppresses successes.
	cases := []struct {
		name string
		prep func(s Store)
		req  func() []byte
		// wantOpaques lists the responses that must appear, in order; a
		// trailing Noop (opaque 99) is always appended as a fence.
		wantOpaques  []uint32
		wantStatuses []uint16
	}{
		{
			name:         "GetQ miss is silent",
			req:          func() []byte { return buildOp(OpGetQ, []byte("absent"), 1) },
			wantOpaques:  []uint32{99},
			wantStatuses: []uint16{StatusOK},
		},
		{
			name:         "GetQ hit answers",
			prep:         func(s Store) { s.Set("present", &Entry{Value: []byte("v")}) },
			req:          func() []byte { return buildOp(OpGetQ, []byte("present"), 2) },
			wantOpaques:  []uint32{2, 99},
			wantStatuses: []uint16{StatusOK, StatusOK},
		},
		{
			name:         "SetQ success is silent",
			req:          func() []byte { return buildSetQ([]byte("sk"), []byte("sv"), 3) },
			wantOpaques:  []uint32{99},
			wantStatuses: []uint16{StatusOK},
		},
		{
			name:         "loud Get miss answers",
			req:          func() []byte { return BuildGet([]byte("absent"), 4) },
			wantOpaques:  []uint32{4, 99},
			wantStatuses: []uint16{StatusKeyNotFound, StatusOK},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			protoHarness(t, func(c *event.Ctx) {
				srv := NewServer(NewRCUStore(), 1)
				if tc.prep != nil {
					tc.prep(srv.Store)
				}
				noop := buildOp(OpNoop, nil, 99)
				_, fc := feed(c, srv, append(tc.req(), noop...))
				hdrs, _ := parseResponses(t, fc.out)
				if len(hdrs) != len(tc.wantOpaques) {
					t.Fatalf("%d responses, want %d: %+v", len(hdrs), len(tc.wantOpaques), hdrs)
				}
				for i := range hdrs {
					if hdrs[i].Opaque != tc.wantOpaques[i] || hdrs[i].Status != tc.wantStatuses[i] {
						t.Fatalf("response %d = opaque %d status %#x, want opaque %d status %#x",
							i, hdrs[i].Opaque, hdrs[i].Status, tc.wantOpaques[i], tc.wantStatuses[i])
					}
				}
			})
		})
	}
}

// TestAddSemantics: ADD stores only when absent (KeyExists otherwise);
// the quiet variant suppresses the success response but still reports
// the conflict - so a migration stream of AddQs is silent except for
// keys that lost to a fresher dual-written value, and its Noop fence
// flushes last.
func TestAddSemantics(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		srv.Store.Set("taken", &Entry{Value: []byte("fresh")})

		_, fc := feed(c, srv,
			BuildAdd([]byte("new"), []byte("v1"), 7, 1, false),   // plain add, absent -> OK
			BuildAdd([]byte("new"), []byte("v2"), 0, 2, false),   // plain add, present -> KeyExists
			BuildAdd([]byte("quiet"), []byte("q1"), 0, 3, true),  // quiet add, absent -> silent
			BuildAdd([]byte("taken"), []byte("old"), 0, 4, true), // quiet add, present -> KeyExists
			BuildNoop(5),
		)
		hdrs, _ := parseResponses(t, fc.out)
		if len(hdrs) != 4 {
			t.Fatalf("%d responses, want 4 (ok, exists, exists, noop)", len(hdrs))
		}
		want := []struct {
			opaque uint32
			status uint16
		}{
			{1, StatusOK},
			{2, StatusKeyExists},
			{4, StatusKeyExists},
			{5, StatusOK},
		}
		for i, w := range want {
			if hdrs[i].Opaque != w.opaque || hdrs[i].Status != w.status {
				t.Errorf("response %d: opaque %d status %#x, want %d/%#x",
					i, hdrs[i].Opaque, hdrs[i].Status, w.opaque, w.status)
			}
		}
		if e, _ := srv.Store.Get("new"); string(e.Value) != "v1" || e.Flags != 7 {
			t.Errorf("add stored %q flags %d", e.Value, e.Flags)
		}
		if e, _ := srv.Store.Get("taken"); string(e.Value) != "fresh" {
			t.Errorf("quiet add clobbered existing value: %q", e.Value)
		}
		if e, _ := srv.Store.Get("quiet"); e == nil || string(e.Value) != "q1" {
			t.Error("quiet add did not store into empty slot")
		}
	})
}

func TestQuietSetIsApplied(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		feed(c, srv, buildSetQ([]byte("sk"), []byte("sv"), 1))
		e, ok := srv.Store.Get("sk")
		if !ok || string(e.Value) != "sv" {
			t.Fatalf("SetQ not applied: %+v ok=%v", e, ok)
		}
	})
}

func TestMultiRequestFrameSplitAtEveryOffset(t *testing.T) {
	// A pipelined frame of mixed loud/quiet requests must produce
	// byte-identical output no matter where the stream is split in two.
	key := []byte("pipeline-key")
	frame := BuildSet(key, []byte("value-1"), 5, 1)
	frame = append(frame, buildOp(OpGetQ, []byte("no-such-key"), 2)...) // silent miss
	frame = append(frame, BuildGet(key, 3)...)
	frame = append(frame, buildSetQ(key, []byte("value-2"), 4)...) // silent success
	frame = append(frame, BuildGet(key, 5)...)
	frame = append(frame, buildOp(OpNoop, nil, 6)...)

	// Reference: the whole frame in one delivery.
	var want []byte
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv, frame)
		want = append([]byte(nil), fc.out...)
	})
	hdrs, bodies := parseResponses(t, want)
	if len(hdrs) != 4 {
		t.Fatalf("reference run: %d responses, want 4", len(hdrs))
	}
	if string(bodies[1][GetResponseExtrasLen:]) != "value-1" || string(bodies[2][GetResponseExtrasLen:]) != "value-2" {
		t.Fatalf("reference run bodies wrong")
	}

	for cut := 1; cut < len(frame); cut++ {
		protoHarness(t, func(c *event.Ctx) {
			srv := NewServer(NewRCUStore(), 1)
			_, fc := feed(c, srv, frame[:cut], frame[cut:])
			if !bytes.Equal(fc.out, want) {
				t.Fatalf("cut=%d: output diverged (%d bytes vs %d)", cut, len(fc.out), len(want))
			}
			if srv.Requests != 6 {
				t.Fatalf("cut=%d: served %d requests, want 6", cut, srv.Requests)
			}
		})
	}
}

func TestMultiRequestFrameByteAtATime(t *testing.T) {
	// The adversarial extreme: one byte per delivery.
	key := []byte("k")
	frame := BuildSet(key, []byte("v"), 0, 1)
	frame = append(frame, BuildGet(key, 2)...)
	var want []byte
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv, frame)
		want = append([]byte(nil), fc.out...)
	})
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		sc := &serverConn{srv: srv}
		fc := &fakeConn{}
		for _, b := range frame {
			sc.onData(c, fc, iobuf.Wrap([]byte{b}))
		}
		if !bytes.Equal(fc.out, want) {
			t.Fatalf("byte-at-a-time output diverged")
		}
	})
}

func TestNextFrame(t *testing.T) {
	req := BuildSet([]byte("k"), []byte("v"), 0, 9)
	cases := []struct {
		name    string
		data    []byte
		magic   byte
		wantN   int
		wantErr bool
	}{
		{"empty", nil, MagicRequest, 0, false},
		{"partial header", req[:HeaderLen-1], MagicRequest, 0, false},
		{"header only", req[:HeaderLen], MagicRequest, 0, false},
		{"partial body", req[:len(req)-1], MagicRequest, 0, false},
		{"complete", req, MagicRequest, len(req), false},
		{"complete plus tail", append(append([]byte(nil), req...), 0xff), MagicRequest, len(req), false},
		{"wrong magic detected before body", req[:HeaderLen], MagicResponse, 0, true},
		{"inconsistent lengths", func() []byte {
			b := make([]byte, HeaderLen)
			WriteHeader(b, Header{Magic: MagicRequest, KeyLen: 9, BodyLen: 3})
			return b
		}(), MagicRequest, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hdr, body, n, err := NextFrame(tc.data, tc.magic)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tc.wantErr)
			}
			if n != tc.wantN {
				t.Fatalf("n = %d, want %d", n, tc.wantN)
			}
			if n > 0 {
				if hdr.Opaque != 9 {
					t.Fatalf("header not parsed: %+v", hdr)
				}
				if len(body) != int(hdr.BodyLen) {
					t.Fatalf("body %d bytes, want %d", len(body), hdr.BodyLen)
				}
			}
		})
	}
}

// appnet.Conn conformance for the fake.
var _ appnet.Conn = (*fakeConn)(nil)
