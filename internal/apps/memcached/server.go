package memcached

import (
	"encoding/binary"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/sim"
)

// Port is the standard memcached port.
const Port = 11211

// Server is the memcached instance: one shared store, connections pinned
// to the cores RSS delivered them to. It speaks both standard wire
// protocols on the same listener - the binary protocol and the ASCII
// text protocol (textproto.go) - auto-detected per connection from the
// first byte.
type Server struct {
	Store Store
	Cores int
	// RequestCPU is the application's per-request parse+execute cost.
	RequestCPU sim.Time
	// Requests counts operations served.
	Requests uint64

	// casSeq feeds nextCAS: every stored entry gets a node-unique,
	// monotonically increasing CAS value, reported by `gets` (and echoed
	// in binary GET response headers).
	casSeq uint64
}

// nextCAS returns the next CAS value to stamp on a stored entry.
func (s *Server) nextCAS() uint64 {
	s.casSeq++
	return s.casSeq
}

// NewServer creates a server over the given store.
func NewServer(store Store, cores int) *Server {
	return &Server{Store: store, Cores: cores, RequestCPU: 300 * sim.Nanosecond}
}

// Serve starts accepting connections on rt.
func (s *Server) Serve(rt appnet.Runtime) error {
	return rt.Listen(Port, func(conn appnet.Conn) appnet.Callbacks {
		sc := &serverConn{srv: s}
		return appnet.Callbacks{
			OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
				sc.onData(c, conn, payload)
			},
		}
	})
}

// Prepopulate loads the store directly (the warmup the load generator
// would otherwise have to perform over the network).
func (s *Server) Prepopulate(keys [][]byte, values [][]byte) {
	for i := range keys {
		s.Store.Set(string(keys[i]), &Entry{Value: values[i], Flags: 0, CAS: s.nextCAS()})
	}
}

// Per-connection protocol modes. A connection commits to a protocol on
// its first received byte and never switches.
const (
	modeDetect byte = iota // nothing received yet
	modeBinary             // first byte was MagicRequest
	modeText               // anything else: an ASCII command line
	modeClosed             // torn down (quit, or a binary framing error)
)

// serverConn accumulates stream bytes and processes complete requests.
type serverConn struct {
	srv  *Server
	rx   []byte
	mode byte
	text textSession
}

func (sc *serverConn) onData(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
	if sc.mode == modeClosed {
		return
	}
	// The paper's implementation parses requests directly from the IOBufs
	// the driver filled. We accumulate only when a request straddles
	// segment boundaries; the fast path processes in place.
	data := payload.CopyOut()
	if len(sc.rx) > 0 {
		sc.rx = append(sc.rx, data...)
		data = sc.rx
	}
	if len(data) == 0 {
		return
	}
	// Protocol auto-detection: the binary request magic 0x80 is not a
	// printable ASCII byte, so it can never begin a text command line.
	if sc.mode == modeDetect {
		if data[0] == MagicRequest {
			sc.mode = modeBinary
		} else {
			sc.mode = modeText
		}
	}
	if sc.mode == modeText {
		sc.onTextData(c, conn, data)
		return
	}
	// One coalesced response per delivery batch: responses to pipelined
	// requests aggregate into a single send, as the event-driven server
	// naturally does when multiple requests arrive in one interrupt.
	var resp []byte
	consumed := 0
	for {
		hdr, body, n, err := NextFrame(data[consumed:], MagicRequest)
		if err != nil {
			// Protocol error: drop the connection.
			sc.mode = modeClosed
			conn.Close(c)
			return
		}
		if n == 0 {
			break
		}
		resp = sc.srv.handle(c, hdr, body, resp)
		consumed += n
	}
	// Retain any partial request.
	if consumed < len(data) {
		sc.rx = append(sc.rx[:0], data[consumed:]...)
	} else {
		sc.rx = sc.rx[:0]
	}
	if len(resp) > 0 {
		conn.Send(c, iobuf.Wrap(resp))
	}
}

// onTextData runs the text-protocol state machine over the coalesced
// stream, with the same retain-the-tail and single-send-per-batch
// discipline as the binary path.
func (sc *serverConn) onTextData(c *event.Ctx, conn appnet.Conn, data []byte) {
	resp, consumed, quit := sc.srv.handleText(c, &sc.text, data)
	if consumed < len(data) && !quit {
		sc.rx = append(sc.rx[:0], data[consumed:]...)
	} else {
		sc.rx = sc.rx[:0]
	}
	if len(resp) > 0 {
		conn.Send(c, iobuf.Wrap(resp))
	}
	if quit {
		sc.mode = modeClosed
		conn.Close(c)
	}
}

// handle executes one request, appending any response bytes to resp.
func (s *Server) handle(c *event.Ctx, hdr Header, body []byte, resp []byte) []byte {
	s.Requests++
	c.Charge(s.RequestCPU + s.Store.OpCost(s.Cores))
	keyStart := int(hdr.ExtrasLen)
	key := string(body[keyStart : keyStart+int(hdr.KeyLen)])

	switch hdr.Opcode {
	case OpGet, OpGetQ:
		e, ok := s.Store.Get(key)
		if !ok {
			if hdr.Opcode == OpGetQ {
				return resp // quiet get suppresses misses
			}
			return appendResponse(resp, hdr, StatusKeyNotFound, nil, nil)
		}
		var extras [GetResponseExtrasLen]byte
		binary.BigEndian.PutUint32(extras[:], e.Flags)
		return appendResponseCAS(resp, hdr, StatusOK, extras[:], e.Value, e.CAS)

	case OpSet, OpSetQ:
		var flags uint32
		if hdr.ExtrasLen >= 4 {
			flags = binary.BigEndian.Uint32(body)
		}
		value := append([]byte(nil), body[keyStart+int(hdr.KeyLen):]...)
		if hdr.CAS != 0 {
			// Replica-stamped store: the coordinator (the cluster client)
			// assigned this write's version stamp once, and every replica
			// stores that exact stamp - never a locally minted one, which
			// is what made R>1 stamps incomparable. Apply last-writer-wins
			// by stamp so replicas converge on the same {value, stamp}
			// regardless of delivery order; echo the winning stamp so the
			// coordinator can detect that its write was superseded.
			win := hdr.CAS
			if cur, ok := s.Store.Get(key); ok && cur.CAS >= hdr.CAS {
				win = cur.CAS
			} else {
				s.Store.Set(key, &Entry{Value: value, Flags: flags, CAS: hdr.CAS})
			}
			if hdr.Opcode == OpSetQ {
				return resp
			}
			return appendResponseCAS(resp, hdr, StatusOK, nil, nil, win)
		}
		cas := s.nextCAS()
		s.Store.Set(key, &Entry{Value: value, Flags: flags, CAS: cas})
		if hdr.Opcode == OpSetQ {
			return resp
		}
		// As in stock memcached, a successful store echoes the entry's
		// newly stamped CAS in the response header.
		return appendResponseCAS(resp, hdr, StatusOK, nil, nil, cas)

	case OpAdd, OpAddQ:
		var flags uint32
		if hdr.ExtrasLen >= 4 {
			flags = binary.BigEndian.Uint32(body)
		}
		value := append([]byte(nil), body[keyStart+int(hdr.KeyLen):]...)
		// A stamped ADD (migration stream, nonzero request CAS) preserves
		// the sender's version stamp; a plain ADD mints a local one.
		cas := hdr.CAS
		if cas == 0 {
			cas = s.nextCAS()
		}
		if !s.Store.Add(key, &Entry{Value: value, Flags: flags, CAS: cas}) {
			// Losing the race to an existing entry is an error response
			// even for the quiet opcode, as in stock memcached; quiet
			// suppresses only successes.
			return appendResponse(resp, hdr, StatusKeyExists, nil, nil)
		}
		if hdr.Opcode == OpAddQ {
			return resp
		}
		return appendResponseCAS(resp, hdr, StatusOK, nil, nil, cas)

	case OpDelete:
		if s.Store.Delete(key) {
			return appendResponse(resp, hdr, StatusOK, nil, nil)
		}
		return appendResponse(resp, hdr, StatusKeyNotFound, nil, nil)

	case OpNoop:
		return appendResponse(resp, hdr, StatusOK, nil, nil)

	default:
		return appendResponse(resp, hdr, StatusUnknownCmd, nil, nil)
	}
}

// appendResponse serializes a response packet onto resp.
func appendResponse(resp []byte, req Header, status uint16, extras, value []byte) []byte {
	return appendResponseCAS(resp, req, status, extras, value, 0)
}

// appendResponseCAS is appendResponse carrying the entry's CAS in the
// response header (GET responses report it, as stock memcached does).
func appendResponseCAS(resp []byte, req Header, status uint16, extras, value []byte, cas uint64) []byte {
	body := len(extras) + len(value)
	off := len(resp)
	resp = append(resp, make([]byte, HeaderLen+body)...)
	WriteHeader(resp[off:], Header{
		Magic:     MagicResponse,
		Opcode:    req.Opcode,
		ExtrasLen: byte(len(extras)),
		Status:    status,
		BodyLen:   uint32(body),
		Opaque:    req.Opaque,
		CAS:       cas,
	})
	copy(resp[off+HeaderLen:], extras)
	copy(resp[off+HeaderLen+len(extras):], value)
	return resp
}
