package memcached

import (
	"encoding/binary"
	"strconv"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/sim"
)

// Port is the standard memcached port.
const Port = 11211

// Server is the memcached instance: one shared store, connections pinned
// to the cores RSS delivered them to. It speaks both standard wire
// protocols on the same listener - the binary protocol and the ASCII
// text protocol (textproto.go) - auto-detected per connection from the
// first byte.
type Server struct {
	Store Store
	Cores int
	// RequestCPU is the application's per-request parse+execute cost.
	RequestCPU sim.Time
	// Requests counts operations served.
	Requests uint64
	// ExpiredReclaimed counts entries deleted lazily because a lookup
	// found them past their expiry (or behind a due flush_all).
	ExpiredReclaimed uint64

	// casSeq feeds nextCAS: every stored entry gets a node-unique,
	// monotonically increasing CAS value, reported by `gets` (and echoed
	// in binary GET response headers).
	casSeq uint64

	// flushAt is the pending flush_all deadline: once the clock reaches
	// it, every entry stored before it is dead (stock memcached's
	// oldest_live rule). Zero means no flush is pending. The sweep is
	// lazy - maybeApplyFlush runs it from the request path - but
	// EntryLive also honors a due-but-unswept deadline so direct store
	// readers (migration, staleness probes) never see flushed entries.
	flushAt sim.Time

	// stats are the live counters behind the `stats` command (stats.go
	// renders them under their stock names). Both protocols feed the same
	// counters, mostly from the shared apply* helpers.
	stats statCounters
}

// statCounters mirrors stock memcached's general-stats counters. cmd_get
// is not stored: it is hits+misses by construction (every retrieval key
// lands in exactly one of the two).
type statCounters struct {
	currConns  uint64
	totalConns uint64

	cmdSet   uint64 // storage commands attempted (set/add/replace/append/prepend)
	cmdFlush uint64
	cmdTouch uint64

	getHits    uint64
	getMisses  uint64
	getExpired uint64 // retrievals that found a dead entry (counted in getMisses too)

	deleteHits   uint64
	deleteMisses uint64
	incrHits     uint64
	incrMisses   uint64
	decrHits     uint64
	decrMisses   uint64
	touchHits    uint64
	touchMisses  uint64

	totalItems uint64 // entries ever stored by a command path
}

// nextCAS returns the next CAS value to stamp on a stored entry.
func (s *Server) nextCAS() uint64 {
	s.casSeq++
	return s.casSeq
}

// mintCAS mints a CAS for a fresh store of an entry that may replace
// cur. The server counter is node-monotonic, but an entry last written
// through the cluster's replica-wide stamps holds a value far above it;
// bumping past the old CAS keeps every entry's history monotonic, which
// the client hot-key cache's newest-wins rule depends on.
func (s *Server) mintCAS(cur *Entry) uint64 {
	cas := s.nextCAS()
	if cur != nil && cur.CAS >= cas {
		cas = cur.CAS + 1
	}
	return cas
}

// EntryLive reports whether the entry is visible at the given instant:
// not past its expiry, and not behind a due flush_all deadline.
func (s *Server) EntryLive(e *Entry, now sim.Time) bool {
	if e.Expired(now) {
		return false
	}
	if s.flushAt != 0 && now >= s.flushAt && e.StoredAt < s.flushAt {
		return false
	}
	return true
}

// getLive is the lazy-expiry lookup every read and mutation path goes
// through: a dead entry is reclaimed on touch and reported absent, as
// stock memcached does - nothing sweeps the store on a timer.
func (s *Server) getLive(key string, now sim.Time) (*Entry, bool) {
	e, ok := s.Store.Get(key)
	if !ok {
		return nil, false
	}
	if !s.EntryLive(e, now) {
		s.Store.Delete(key)
		s.ExpiredReclaimed++
		return nil, false
	}
	return e, true
}

// getForRead is getLive plus the retrieval accounting: every key a get
// command looks up lands in exactly one of get_hits/get_misses, with a
// miss that reclaimed a dead entry additionally counted in get_expired.
func (s *Server) getForRead(key string, now sim.Time) (*Entry, bool) {
	e, ok := s.Store.Get(key)
	if ok && !s.EntryLive(e, now) {
		s.Store.Delete(key)
		s.ExpiredReclaimed++
		s.stats.getExpired++
		ok = false
	}
	if !ok {
		s.stats.getMisses++
		return nil, false
	}
	s.stats.getHits++
	return e, true
}

// applyDelete removes a live entry, shared by both protocols; the
// outcome feeds delete_hits/delete_misses. A dead entry answers
// NOT_FOUND, exactly as if it had already been reclaimed.
func (s *Server) applyDelete(key string, now sim.Time) bool {
	if _, ok := s.getLive(key, now); ok && s.Store.Delete(key) {
		s.stats.deleteHits++
		return true
	}
	s.stats.deleteMisses++
	return false
}

// maybeApplyFlush sweeps out entries behind a due flush_all deadline,
// once, then clears it. Run from the request path so the store's
// footprint shrinks promptly after the deadline passes; correctness
// does not depend on it (EntryLive already hides flushed entries).
func (s *Server) maybeApplyFlush(now sim.Time) {
	if s.flushAt == 0 || now < s.flushAt {
		return
	}
	cut := s.flushAt
	s.flushAt = 0
	s.Store.Scan(func(key string, e *Entry) bool {
		if e.StoredAt < cut && s.Store.Delete(key) {
			s.ExpiredReclaimed++
		}
		return true
	})
}

// NewServer creates a server over the given store.
func NewServer(store Store, cores int) *Server {
	return &Server{Store: store, Cores: cores, RequestCPU: 300 * sim.Nanosecond}
}

// Serve starts accepting connections on rt.
func (s *Server) Serve(rt appnet.Runtime) error {
	return rt.Listen(Port, func(conn appnet.Conn) appnet.Callbacks {
		sc := &serverConn{srv: s}
		s.stats.currConns++
		s.stats.totalConns++
		return appnet.Callbacks{
			OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
				sc.onData(c, conn, payload)
			},
			OnClose: func(c *event.Ctx, conn appnet.Conn, err error) {
				if !sc.counted {
					sc.counted = true
					s.stats.currConns--
				}
			},
		}
	})
}

// Prepopulate loads the store directly (the warmup the load generator
// would otherwise have to perform over the network).
func (s *Server) Prepopulate(keys [][]byte, values [][]byte) {
	for i := range keys {
		s.Store.Set(string(keys[i]), &Entry{Value: values[i], Flags: 0, CAS: s.nextCAS()})
	}
}

// Per-connection protocol modes. A connection commits to a protocol on
// its first received byte and never switches.
const (
	modeDetect byte = iota // nothing received yet
	modeBinary             // first byte was MagicRequest
	modeText               // anything else: an ASCII command line
	modeClosed             // torn down (quit, or a binary framing error)
)

// serverConn accumulates stream bytes and processes complete requests.
type serverConn struct {
	srv     *Server
	rx      []byte
	mode    byte
	text    textSession
	counted bool // curr_connections already decremented for this conn
}

func (sc *serverConn) onData(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
	if sc.mode == modeClosed {
		return
	}
	// The paper's implementation parses requests directly from the IOBufs
	// the driver filled. We accumulate only when a request straddles
	// segment boundaries; the fast path processes in place.
	data := payload.CopyOut()
	if len(sc.rx) > 0 {
		sc.rx = append(sc.rx, data...)
		data = sc.rx
	}
	if len(data) == 0 {
		return
	}
	// Protocol auto-detection: the binary request magic 0x80 is not a
	// printable ASCII byte, so it can never begin a text command line.
	if sc.mode == modeDetect {
		if data[0] == MagicRequest {
			sc.mode = modeBinary
		} else {
			sc.mode = modeText
		}
	}
	if sc.mode == modeText {
		sc.onTextData(c, conn, data)
		return
	}
	// One coalesced response per delivery batch: responses to pipelined
	// requests aggregate into a single send, as the event-driven server
	// naturally does when multiple requests arrive in one interrupt.
	var resp []byte
	consumed := 0
	for {
		hdr, body, n, err := NextFrame(data[consumed:], MagicRequest)
		if err != nil {
			// Protocol error: drop the connection.
			sc.mode = modeClosed
			conn.Close(c)
			return
		}
		if n == 0 {
			break
		}
		resp = sc.srv.handle(c, hdr, body, resp)
		consumed += n
	}
	// Retain any partial request.
	if consumed < len(data) {
		sc.rx = append(sc.rx[:0], data[consumed:]...)
	} else {
		sc.rx = sc.rx[:0]
	}
	if len(resp) > 0 {
		conn.Send(c, iobuf.Wrap(resp))
	}
}

// onTextData runs the text-protocol state machine over the coalesced
// stream, with the same retain-the-tail and single-send-per-batch
// discipline as the binary path.
func (sc *serverConn) onTextData(c *event.Ctx, conn appnet.Conn, data []byte) {
	resp, consumed, quit := sc.srv.handleText(c, &sc.text, data)
	if consumed < len(data) && !quit {
		sc.rx = append(sc.rx[:0], data[consumed:]...)
	} else {
		sc.rx = sc.rx[:0]
	}
	if len(resp) > 0 {
		conn.Send(c, iobuf.Wrap(resp))
	}
	if quit {
		sc.mode = modeClosed
		conn.Close(c)
	}
}

// storeExpiry decodes the expiry a SET/ADD request carries: the stock
// 8-byte extras hold {flags, exptime u32} resolved under the stock
// relative/absolute rules, while the internal 12-byte dialect
// (SetAbsExpiryExtrasLen) carries an absolute virtual expiry verbatim.
func storeExpiry(hdr Header, body []byte, now sim.Time) sim.Time {
	if int(hdr.ExtrasLen) >= SetAbsExpiryExtrasLen {
		return sim.Time(int64(binary.BigEndian.Uint64(body[4:12])))
	}
	if hdr.ExtrasLen >= 8 {
		return AbsoluteExpiry(int64(binary.BigEndian.Uint32(body[4:8])), now)
	}
	return 0
}

// handle executes one request, appending any response bytes to resp.
func (s *Server) handle(c *event.Ctx, hdr Header, body []byte, resp []byte) []byte {
	s.Requests++
	c.Charge(s.RequestCPU + s.Store.OpCost(s.Cores))
	now := c.Now()
	s.maybeApplyFlush(now)
	keyStart := int(hdr.ExtrasLen)
	key := string(body[keyStart : keyStart+int(hdr.KeyLen)])

	switch hdr.Opcode {
	case OpGet, OpGetQ:
		e, ok := s.getForRead(key, now)
		if !ok {
			if hdr.Opcode == OpGetQ {
				return resp // quiet get suppresses misses
			}
			return appendResponse(resp, hdr, StatusKeyNotFound, nil, nil)
		}
		var extras [GetResponseExtrasLen]byte
		binary.BigEndian.PutUint32(extras[:4], e.Flags)
		binary.BigEndian.PutUint64(extras[4:], uint64(int64(e.Expires)))
		return appendResponseCAS(resp, hdr, StatusOK, extras[:], e.Value, e.CAS)

	case OpSet, OpSetQ:
		s.stats.cmdSet++
		var flags uint32
		if hdr.ExtrasLen >= 4 {
			flags = binary.BigEndian.Uint32(body)
		}
		value := append([]byte(nil), body[keyStart+int(hdr.KeyLen):]...)
		expires := storeExpiry(hdr, body, now)
		if hdr.CAS != 0 {
			// Replica-stamped store: the coordinator (the cluster client)
			// assigned this write's version stamp once, and every replica
			// stores that exact stamp - never a locally minted one, which
			// is what made R>1 stamps incomparable. Apply last-writer-wins
			// by stamp so replicas converge on the same {value, stamp}
			// regardless of delivery order; echo the winning stamp so the
			// coordinator can detect that its write was superseded. An
			// expired loser does not block the stamp comparison: the dead
			// entry's stamp still orders writes.
			win := hdr.CAS
			if cur, ok := s.Store.Get(key); ok && cur.CAS >= hdr.CAS {
				win = cur.CAS
			} else if !s.Store.Set(key, &Entry{Value: value, Flags: flags, CAS: hdr.CAS, Expires: expires, StoredAt: now}) {
				return appendResponse(resp, hdr, StatusOutOfMemory, nil, nil)
			} else {
				s.stats.totalItems++
			}
			if hdr.Opcode == OpSetQ {
				return resp
			}
			return appendResponseCAS(resp, hdr, StatusOK, nil, nil, win)
		}
		cur, _ := s.Store.Get(key)
		cas := s.mintCAS(cur)
		if !s.Store.Set(key, &Entry{Value: value, Flags: flags, CAS: cas, Expires: expires, StoredAt: now}) {
			return appendResponse(resp, hdr, StatusOutOfMemory, nil, nil)
		}
		s.stats.totalItems++
		if hdr.Opcode == OpSetQ {
			return resp
		}
		// As in stock memcached, a successful store echoes the entry's
		// newly stamped CAS in the response header.
		return appendResponseCAS(resp, hdr, StatusOK, nil, nil, cas)

	case OpAdd, OpAddQ:
		s.stats.cmdSet++
		var flags uint32
		if hdr.ExtrasLen >= 4 {
			flags = binary.BigEndian.Uint32(body)
		}
		value := append([]byte(nil), body[keyStart+int(hdr.KeyLen):]...)
		expires := storeExpiry(hdr, body, now)
		// A stamped ADD (migration stream, nonzero request CAS) preserves
		// the sender's version stamp; a plain ADD mints a local one. An
		// expired occupant does not defeat an ADD: it is reclaimed first,
		// as in stock memcached.
		if e, ok := s.Store.Get(key); ok && !s.EntryLive(e, now) {
			s.Store.Delete(key)
			s.ExpiredReclaimed++
		}
		cas := hdr.CAS
		if cas == 0 {
			cas = s.nextCAS()
		}
		if !s.Store.Add(key, &Entry{Value: value, Flags: flags, CAS: cas, Expires: expires, StoredAt: now}) {
			// Losing the race to an existing entry is an error response
			// even for the quiet opcode, as in stock memcached; quiet
			// suppresses only successes.
			return appendResponse(resp, hdr, StatusKeyExists, nil, nil)
		}
		s.stats.totalItems++
		if hdr.Opcode == OpAddQ {
			return resp
		}
		return appendResponseCAS(resp, hdr, StatusOK, nil, nil, cas)

	case OpAppend, OpPrepend:
		s.stats.cmdSet++
		value := body[keyStart+int(hdr.KeyLen):]
		e, cas, ok := s.applyConcat(key, value, hdr.Opcode == OpAppend, now)
		if !ok {
			// Stock memcached answers NOT_STORED when there is nothing to
			// concatenate onto.
			return appendResponse(resp, hdr, StatusNotStored, nil, nil)
		}
		if e == nil {
			return appendResponse(resp, hdr, StatusOutOfMemory, nil, nil)
		}
		return appendResponseCAS(resp, hdr, StatusOK, nil, nil, cas)

	case OpIncrement, OpDecrement:
		if hdr.ExtrasLen < CounterExtrasLen {
			return appendResponse(resp, hdr, StatusUnknownCmd, nil, nil)
		}
		delta := binary.BigEndian.Uint64(body[:8])
		initial := binary.BigEndian.Uint64(body[8:16])
		exptime := binary.BigEndian.Uint32(body[16:20])
		newVal, cas, status := s.applyDelta(key, delta, initial, exptime, hdr.Opcode == OpIncrement, now)
		if status != StatusOK {
			return appendResponse(resp, hdr, uint16(status), nil, nil)
		}
		var out [8]byte
		binary.BigEndian.PutUint64(out[:], newVal)
		return appendResponseCAS(resp, hdr, StatusOK, nil, out[:], cas)

	case OpTouch:
		if hdr.ExtrasLen < 4 {
			return appendResponse(resp, hdr, StatusUnknownCmd, nil, nil)
		}
		exptime := int64(binary.BigEndian.Uint32(body[:4]))
		if !s.applyTouch(key, AbsoluteExpiry(exptime, now), now) {
			return appendResponse(resp, hdr, StatusKeyNotFound, nil, nil)
		}
		return appendResponse(resp, hdr, StatusOK, nil, nil)

	case OpFlush:
		var delay int64
		if hdr.ExtrasLen >= 4 {
			delay = int64(binary.BigEndian.Uint32(body[:4]))
		}
		s.applyFlushAll(delay, now)
		return appendResponse(resp, hdr, StatusOK, nil, nil)

	case OpDelete:
		if s.applyDelete(key, now) {
			return appendResponse(resp, hdr, StatusOK, nil, nil)
		}
		return appendResponse(resp, hdr, StatusKeyNotFound, nil, nil)

	case OpNoop:
		return appendResponse(resp, hdr, StatusOK, nil, nil)

	case OpStat:
		// One response packet per statistic - name in the key field, value
		// in the value field - terminated by an empty-key, empty-value
		// packet, per the stock binary protocol. The request's key selects
		// the group ("" general, "items", "slabs").
		lines, ok := s.statLines(key, now)
		if !ok {
			return appendResponse(resp, hdr, StatusKeyNotFound, nil, nil)
		}
		for _, st := range lines {
			resp = appendStatResponse(resp, hdr, st.name, st.value)
		}
		return appendStatResponse(resp, hdr, "", "")

	default:
		return appendResponse(resp, hdr, StatusUnknownCmd, nil, nil)
	}
}

// applyConcat implements append/prepend, shared by both protocols.
// ok=false means there was no live entry to concatenate onto
// (NOT_STORED); ok=true with e==nil means the bounded store could not
// fit the grown value. Concatenation keeps the entry's flags and expiry
// (stock memcached ignores the ones on the request line) but mints a
// fresh CAS: the value changed, and the hot-key cache's newest-wins rule
// needs to see that.
func (s *Server) applyConcat(key string, value []byte, atEnd bool, now sim.Time) (e *Entry, cas uint64, ok bool) {
	cur, ok := s.getLive(key, now)
	if !ok {
		return nil, 0, false
	}
	grown := make([]byte, 0, len(cur.Value)+len(value))
	if atEnd {
		grown = append(append(grown, cur.Value...), value...)
	} else {
		grown = append(append(grown, value...), cur.Value...)
	}
	cas = s.mintCAS(cur)
	ne := &Entry{Value: grown, Flags: cur.Flags, CAS: cas, Expires: cur.Expires, StoredAt: now}
	if !s.Store.Set(key, ne) {
		return nil, 0, true
	}
	s.stats.totalItems++
	return ne, cas, true
}

// Counter statuses applyDelta reports (a subset of the binary response
// statuses; the text layer maps them onto its CLIENT_ERROR lines).
//
// applyDelta implements incr/decr, shared by both protocols. The stored
// value must be an ASCII decimal uint64 - anything else (including a
// value with leading/trailing junk) is StatusDeltaBadval. incr wraps at
// 2^64, decr clamps at 0, both as stock memcached does. On a miss the
// binary protocol may seed the counter with initial (exptime !=
// CounterNoCreate); the text protocol always passes CounterNoCreate so
// a miss is NOT_FOUND.
func (s *Server) applyDelta(key string, delta, initial uint64, exptime uint32, incr bool, now sim.Time) (newVal, cas uint64, status int) {
	cur, ok := s.getLive(key, now)
	if !ok {
		// A miss counts as one even when the binary protocol then seeds
		// the counter from initial, matching stock's incr_misses.
		if incr {
			s.stats.incrMisses++
		} else {
			s.stats.decrMisses++
		}
		if exptime == CounterNoCreate {
			return 0, 0, StatusKeyNotFound
		}
		cas = s.nextCAS()
		e := &Entry{Value: []byte(strconv.FormatUint(initial, 10)), CAS: cas,
			Expires: AbsoluteExpiry(int64(exptime), now), StoredAt: now}
		if !s.Store.Set(key, e) {
			return 0, 0, StatusOutOfMemory
		}
		s.stats.totalItems++
		return initial, cas, StatusOK
	}
	v, err := parseCounterValue(cur.Value)
	if err != nil {
		return 0, 0, StatusDeltaBadval
	}
	if incr {
		v += delta // wraps at 2^64
	} else if v < delta {
		v = 0 // decr clamps at zero
	} else {
		v -= delta
	}
	cas = s.mintCAS(cur)
	e := &Entry{Value: []byte(strconv.FormatUint(v, 10)), Flags: cur.Flags, CAS: cas,
		Expires: cur.Expires, StoredAt: now}
	if !s.Store.Set(key, e) {
		return 0, 0, StatusOutOfMemory
	}
	if incr {
		s.stats.incrHits++
	} else {
		s.stats.decrHits++
	}
	return v, cas, StatusOK
}

// parseCounterValue parses a stored value as the decimal uint64 the
// counter commands operate on.
func parseCounterValue(v []byte) (uint64, error) {
	if len(v) == 0 || len(v) > 20 {
		return 0, strconv.ErrSyntax
	}
	return strconv.ParseUint(string(v), 10, 64)
}

// applyTouch updates a live entry's expiry in place without changing
// its value or CAS (stock touch does not bump CAS).
func (s *Server) applyTouch(key string, expires sim.Time, now sim.Time) bool {
	s.stats.cmdTouch++
	cur, ok := s.getLive(key, now)
	if !ok {
		s.stats.touchMisses++
		return false
	}
	s.Store.Set(key, &Entry{Value: cur.Value, Flags: cur.Flags, CAS: cur.CAS,
		Expires: expires, StoredAt: cur.StoredAt})
	s.stats.touchHits++
	return true
}

// applyFlushAll arms the flush deadline: delay 0 kills everything
// stored up to now immediately, delay > 0 schedules the cut delay
// seconds out (stock flush_all's oldest_live). A later flush_all
// supersedes a pending one.
func (s *Server) applyFlushAll(delay int64, now sim.Time) {
	s.stats.cmdFlush++
	if delay < 0 {
		delay = 0
	}
	if delay == 0 {
		// "Everything stored up to and including now" - entries stored at
		// exactly this instant die too, so the cut sits just past it.
		s.flushAt = now + 1
		s.maybeApplyFlush(now + 1)
		return
	}
	s.flushAt = now + sim.Time(delay)*sim.Second
}

// appendResponse serializes a response packet onto resp.
func appendResponse(resp []byte, req Header, status uint16, extras, value []byte) []byte {
	return appendResponseCAS(resp, req, status, extras, value, 0)
}

// appendResponseCAS is appendResponse carrying the entry's CAS in the
// response header (GET responses report it, as stock memcached does).
func appendResponseCAS(resp []byte, req Header, status uint16, extras, value []byte, cas uint64) []byte {
	body := len(extras) + len(value)
	off := len(resp)
	resp = append(resp, make([]byte, HeaderLen+body)...)
	WriteHeader(resp[off:], Header{
		Magic:     MagicResponse,
		Opcode:    req.Opcode,
		ExtrasLen: byte(len(extras)),
		Status:    status,
		BodyLen:   uint32(body),
		Opaque:    req.Opaque,
		CAS:       cas,
	})
	copy(resp[off+HeaderLen:], extras)
	copy(resp[off+HeaderLen+len(extras):], value)
	return resp
}

// appendStatResponse serializes one binary STAT response packet: the
// statistic's name travels in the key field and its value in the value
// field, no extras. An empty name/value pair is the sequence terminator.
func appendStatResponse(resp []byte, req Header, name, value string) []byte {
	body := len(name) + len(value)
	off := len(resp)
	resp = append(resp, make([]byte, HeaderLen+body)...)
	WriteHeader(resp[off:], Header{
		Magic:   MagicResponse,
		Opcode:  req.Opcode,
		KeyLen:  uint16(len(name)),
		Status:  StatusOK,
		BodyLen: uint32(body),
		Opaque:  req.Opaque,
	})
	copy(resp[off+HeaderLen:], name)
	copy(resp[off+HeaderLen+len(name):], value)
	return resp
}
