package memcached

import (
	"testing"

	"ebbrt/internal/event"
)

// TestStampedSetStoreRule: a SET carrying a nonzero request CAS stores
// that exact stamp under last-writer-wins - an older stamp arriving
// after a newer one (replica deliveries have no ordering guarantee)
// must neither overwrite the value nor be echoed back as the winner.
func TestStampedSetStoreRule(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv,
			BuildSetStamped([]byte("k"), []byte("v1"), 0, 1, 100), // absent: stored
			BuildSetStamped([]byte("k"), []byte("v0"), 0, 2, 90),  // older stamp: dropped
			BuildSetStamped([]byte("k"), []byte("v2"), 0, 3, 120), // newer stamp: stored
			BuildSetStamped([]byte("k"), []byte("vX"), 0, 4, 120), // equal stamp: dropped (idempotent redelivery)
		)
		hdrs, _ := parseResponses(t, fc.out)
		if len(hdrs) != 4 {
			t.Fatalf("%d responses, want 4", len(hdrs))
		}
		wantCAS := []uint64{100, 100, 120, 120}
		for i, w := range wantCAS {
			if hdrs[i].Status != StatusOK || hdrs[i].CAS != w {
				t.Errorf("response %d: status %#x CAS %d, want OK/%d",
					i, hdrs[i].Status, hdrs[i].CAS, w)
			}
		}
		e, ok := srv.Store.Get("k")
		if !ok || string(e.Value) != "v2" || e.CAS != 120 {
			t.Fatalf("store holds %+v, want v2 at stamp 120", e)
		}
	})
}

// TestStampedSetDoesNotMixWithMinted: a plain SET still mints from the
// server-local counter, and a stamped SET never advances that counter -
// the two CAS spaces stay independent.
func TestStampedSetDoesNotMixWithMinted(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv,
			BuildSetStamped([]byte("stamped"), []byte("s"), 0, 1, 5000),
			BuildSet([]byte("plain-a"), []byte("a"), 0, 2),
			BuildSet([]byte("plain-b"), []byte("b"), 0, 3),
		)
		hdrs, _ := parseResponses(t, fc.out)
		if len(hdrs) != 3 {
			t.Fatalf("%d responses, want 3", len(hdrs))
		}
		if hdrs[0].CAS != 5000 {
			t.Fatalf("stamped set echoed %d, want 5000", hdrs[0].CAS)
		}
		// Minted CAS values are sequential from the server's own counter,
		// unperturbed by the stamped store before them.
		if hdrs[1].CAS+1 != hdrs[2].CAS || hdrs[1].CAS >= 5000 {
			t.Fatalf("plain sets minted CAS %d, %d - counter perturbed by the stamped store",
				hdrs[1].CAS, hdrs[2].CAS)
		}
	})
}

// TestStampedAddPreservesStamp: the migration stream's ADD carries the
// source entry's stamp and the restored copy must keep it exactly; a
// plain ADD still mints locally.
func TestStampedAddPreservesStamp(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		feed(c, srv,
			BuildAddStamped([]byte("migrated"), []byte("v"), 3, 1, true, 777),
			BuildAdd([]byte("plain"), []byte("v"), 0, 2, true),
		)
		e, ok := srv.Store.Get("migrated")
		if !ok || e.CAS != 777 || e.Flags != 3 {
			t.Fatalf("stamped add stored %+v, want CAS 777 flags 3 - stream re-minted the version", e)
		}
		p, ok := srv.Store.Get("plain")
		if !ok || p.CAS == 0 || p.CAS == 777 {
			t.Fatalf("plain add stored CAS %d, want a freshly minted local value", p.CAS)
		}
	})
}

// TestStampedSetQuiet: the quiet variant applies the same stamped store
// rule, silently.
func TestStampedSetQuiet(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		newer := BuildSetStamped([]byte("q"), []byte("new"), 0, 1, 200)
		newer[0+1] = byte(OpSetQ) // rewrite opcode in place: header byte 1
		older := BuildSetStamped([]byte("q"), []byte("old"), 0, 2, 150)
		older[0+1] = byte(OpSetQ)
		_, fc := feed(c, srv, newer, older, BuildNoop(3))
		hdrs, _ := parseResponses(t, fc.out)
		if len(hdrs) != 1 || hdrs[0].Opcode != OpNoop {
			t.Fatalf("quiet stamped sets answered: %d responses", len(hdrs))
		}
		e, ok := srv.Store.Get("q")
		if !ok || string(e.Value) != "new" || e.CAS != 200 {
			t.Fatalf("store holds %+v, want new at stamp 200 - quiet path broke the stamp rule", e)
		}
	})
}
