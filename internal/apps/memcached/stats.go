package memcached

import (
	"strconv"

	"ebbrt/internal/mem"
	"ebbrt/internal/sim"
)

// The `stats` surface: both protocols render the same counters - the
// text protocol as `STAT <name> <value>` lines ending in END, the
// binary protocol as one OpStat response packet per line ending in an
// empty-key terminator. Everything reported is driven by live server
// and store state; nothing here is synthesized for looks except `pid`
// (the simulation has no processes) and `pointer_size`.

// statLine is one rendered statistic.
type statLine struct {
	name  string
	value string
}

// statPid is what `pid` reports: the simulation has no OS processes, so
// every server claims the classic first user pid.
const statPid = 1

// statLines renders one stats group: "" is the general group, "items"
// and "slabs" the per-size-class groups (meaningful for the bounded
// slab-classed store; the unbounded tables have no classes and report
// the empty set, as stock does before any item is stored). ok=false
// means the group name is not recognized.
func (s *Server) statLines(group string, now sim.Time) ([]statLine, bool) {
	switch group {
	case "":
		return s.generalStats(now), true
	case "items":
		return s.itemsStats(), true
	case "slabs":
		return s.slabsStats(), true
	}
	return nil, false
}

func u(v uint64) string { return strconv.FormatUint(v, 10) }
func d(v int) string    { return strconv.Itoa(v) }

// generalStats renders the top-level counter block in stock field
// order. cmd_get is get_hits+get_misses by construction (every
// retrieval key lands in exactly one).
func (s *Server) generalStats(now sim.Time) []statLine {
	st := &s.stats
	var bytes, evictions, reclaimed, limit uint64
	if bs, ok := s.Store.(*BoundedStore); ok {
		bst := bs.Stats()
		bytes = bst.ItemBytes
		evictions = bst.Evictions
		reclaimed = s.ExpiredReclaimed + bst.Expired
		limit = bst.BudgetBytes
	} else {
		// The unbounded tables track no footprint; sum the live entries.
		// `stats` is an operator command, not a data-path one, so the scan
		// cost is acceptable.
		s.Store.Scan(func(k string, e *Entry) bool {
			bytes += uint64(chargeBytes(k, e))
			return true
		})
		reclaimed = s.ExpiredReclaimed
	}
	secs := uint64(now / sim.Second)
	return []statLine{
		{"pid", d(statPid)},
		{"uptime", u(secs)},
		{"time", u(secs)},
		{"version", TextVersionString},
		{"pointer_size", "64"},
		{"curr_connections", u(st.currConns)},
		{"total_connections", u(st.totalConns)},
		{"cmd_get", u(st.getHits + st.getMisses)},
		{"cmd_set", u(st.cmdSet)},
		{"cmd_flush", u(st.cmdFlush)},
		{"cmd_touch", u(st.cmdTouch)},
		{"get_hits", u(st.getHits)},
		{"get_misses", u(st.getMisses)},
		{"get_expired", u(st.getExpired)},
		{"delete_misses", u(st.deleteMisses)},
		{"delete_hits", u(st.deleteHits)},
		{"incr_misses", u(st.incrMisses)},
		{"incr_hits", u(st.incrHits)},
		{"decr_misses", u(st.decrMisses)},
		{"decr_hits", u(st.decrHits)},
		{"touch_hits", u(st.touchHits)},
		{"touch_misses", u(st.touchMisses)},
		{"curr_items", d(s.Store.Len())},
		{"total_items", u(st.totalItems)},
		{"bytes", u(bytes)},
		{"evictions", u(evictions)},
		{"reclaimed", u(reclaimed)},
		{"limit_maxbytes", u(limit)},
		{"threads", d(s.Cores)},
	}
}

// itemsStats renders `stats items`: per-class occupancy and reclaim
// history under stock's items:<class>:<field> naming.
func (s *Server) itemsStats() []statLine {
	bs, ok := s.Store.(*BoundedStore)
	if !ok {
		return nil
	}
	var out []statLine
	for _, c := range bs.ClassStats() {
		p := "items:" + d(c.Id) + ":"
		out = append(out,
			statLine{p + "number", d(c.Items)},
			statLine{p + "mem_requested", u(c.UsedBytes)},
			statLine{p + "evicted", u(c.Evicted)},
			statLine{p + "expired_unfetched", u(c.Expired)},
		)
	}
	return out
}

// slabsStats renders `stats slabs`: per-class chunk geometry plus the
// aggregate trailer stock appends after the classes.
func (s *Server) slabsStats() []statLine {
	bs, ok := s.Store.(*BoundedStore)
	if !ok {
		return nil
	}
	classes := bs.ClassStats()
	var out []statLine
	for _, c := range classes {
		p := d(c.Id) + ":"
		out = append(out,
			statLine{p + "chunk_size", d(c.ChunkSize)},
			statLine{p + "chunks_per_page", d(mem.PageSize / c.ChunkSize)},
			statLine{p + "used_chunks", d(c.Items)},
			statLine{p + "free_chunks", d(c.FreeChunks)},
		)
	}
	st := bs.Stats()
	out = append(out,
		statLine{"active_slabs", d(len(classes))},
		statLine{"total_malloced", u(st.UsedBytes)},
	)
	return out
}

// appendTextStats renders a stats group as text-protocol lines:
// `STAT <name> <value>` per statistic, closed by END.
func appendTextStats(resp []byte, lines []statLine) []byte {
	for _, st := range lines {
		resp = append(resp, "STAT "...)
		resp = append(resp, st.name...)
		resp = append(resp, ' ')
		resp = append(resp, st.value...)
		resp = append(resp, '\r', '\n')
	}
	return append(resp, respEnd...)
}
