package memcached

import (
	"strings"
	"testing"

	"ebbrt/internal/event"
	"ebbrt/internal/mem"
)

// The stats surface tests: byte-exact golden transcripts in the text
// protocol (including the every-offset split sweep), binary STAT
// multi-response framing with the empty-key terminator, text/binary
// parity, and the items/slabs groups against a bounded store that has
// really evicted.

// generalStatsGolden is the full `stats` transcript for a server that
// has processed: one set (k=hello), one get hit, one get miss, one
// delete miss — all at sim time < 1s over an unconnected (fed) conn.
const generalStatsGolden = "STAT pid 1\r\n" +
	"STAT uptime 0\r\n" +
	"STAT time 0\r\n" +
	"STAT version " + TextVersionString + "\r\n" +
	"STAT pointer_size 64\r\n" +
	"STAT curr_connections 0\r\n" +
	"STAT total_connections 0\r\n" +
	"STAT cmd_get 2\r\n" +
	"STAT cmd_set 1\r\n" +
	"STAT cmd_flush 0\r\n" +
	"STAT cmd_touch 0\r\n" +
	"STAT get_hits 1\r\n" +
	"STAT get_misses 1\r\n" +
	"STAT get_expired 0\r\n" +
	"STAT delete_misses 1\r\n" +
	"STAT delete_hits 0\r\n" +
	"STAT incr_misses 0\r\n" +
	"STAT incr_hits 0\r\n" +
	"STAT decr_misses 0\r\n" +
	"STAT decr_hits 0\r\n" +
	"STAT touch_hits 0\r\n" +
	"STAT touch_misses 0\r\n" +
	"STAT curr_items 1\r\n" +
	"STAT total_items 1\r\n" +
	"STAT bytes 62\r\n" + // len("k") + len("hello") + 56 overhead
	"STAT evictions 0\r\n" +
	"STAT reclaimed 0\r\n" +
	"STAT limit_maxbytes 0\r\n" +
	"STAT threads 1\r\n" +
	"END\r\n"

func TestTextStatsByteExact(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv, []byte(
			"set k 0 0 5\r\nhello\r\n"+
				"get k\r\n"+
				"get missing\r\n"+
				"delete nope\r\n"+
				"stats\r\n"))
		want := "STORED\r\n" +
			"VALUE k 0 5\r\nhello\r\nEND\r\n" +
			"END\r\n" +
			"NOT_FOUND\r\n" +
			generalStatsGolden
		if string(fc.out) != want {
			t.Fatalf("stats session:\n got %q\nwant %q", fc.out, want)
		}
		if fc.closed {
			t.Fatal("connection closed during a stats session")
		}
	})
}

// TestTextStatsSplitSweep re-runs the same session with the byte stream
// cut at every offset: reassembly must never corrupt or duplicate the
// multi-line stats response.
func TestTextStatsSplitSweep(t *testing.T) {
	session := []byte("set k 0 0 5\r\nhello\r\n" +
		"get k\r\nget missing\r\ndelete nope\r\nstats\r\n")
	want := "STORED\r\n" +
		"VALUE k 0 5\r\nhello\r\nEND\r\n" +
		"END\r\nNOT_FOUND\r\n" + generalStatsGolden
	for cut := 1; cut < len(session); cut++ {
		cut := cut
		protoHarness(t, func(c *event.Ctx) {
			srv := NewServer(NewRCUStore(), 1)
			_, fc := feed(c, srv, session[:cut], session[cut:])
			if string(fc.out) != want {
				t.Fatalf("cut=%d:\n got %q\nwant %q", cut, fc.out, want)
			}
		})
	}
}

func TestTextStatsErrors(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv, []byte(
			"stats bogus\r\n"+ // unknown group
				"stats items extra\r\n"+ // too many tokens
				"version\r\n")) // connection survives
		want := "ERROR\r\nERROR\r\nVERSION " + TextVersionString + "\r\n"
		if string(fc.out) != want {
			t.Fatalf("stats errors:\n got %q\nwant %q", fc.out, want)
		}
	})
}

// statPairs decodes a binary STAT response stream into name/value pairs,
// asserting the per-packet framing and the empty terminator.
func statPairs(t *testing.T, raw []byte, opaque uint32) []statLine {
	t.Helper()
	hdrs, bodies := parseResponses(t, raw)
	if len(hdrs) == 0 {
		t.Fatal("no STAT responses")
	}
	var pairs []statLine
	for i, h := range hdrs {
		if h.Opcode != OpStat || h.Status != StatusOK || h.Opaque != opaque || h.ExtrasLen != 0 {
			t.Fatalf("packet %d framing: %+v", i, h)
		}
		last := i == len(hdrs)-1
		if last {
			if h.KeyLen != 0 || h.BodyLen != 0 {
				t.Fatalf("final packet is not the empty terminator: %+v", h)
			}
			break
		}
		if h.KeyLen == 0 {
			t.Fatalf("empty-key packet %d before the end of the stream", i)
		}
		body := bodies[i]
		pairs = append(pairs, statLine{
			name:  string(body[:h.KeyLen]),
			value: string(body[h.KeyLen:]),
		})
	}
	return pairs
}

func TestBinaryStatFraming(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		// Same traffic as the text golden, via the binary protocol.
		_, fc := feed(c, srv,
			BuildSet([]byte("k"), []byte("hello"), 0, 1),
			BuildGet([]byte("k"), 2),
			BuildGet([]byte("missing"), 3),
			BuildDelete([]byte("nope"), 4),
			BuildStat(nil, 0x99))
		hdrs, _ := parseResponses(t, fc.out)
		// set + get + miss + delete-miss, then the STAT packets.
		raw := fc.out
		for i := 0; i < 4; i++ {
			raw = raw[HeaderLen+int(hdrs[i].BodyLen):]
		}
		pairs := statPairs(t, raw, 0x99)
		byName := map[string]string{}
		for _, p := range pairs {
			byName[p.name] = p.value
		}
		for name, want := range map[string]string{
			"cmd_get": "2", "cmd_set": "1",
			"get_hits": "1", "get_misses": "1",
			"delete_misses": "1", "curr_items": "1",
			"total_items": "1", "bytes": "62",
		} {
			if byName[name] != want {
				t.Errorf("STAT %s = %q, want %q", name, byName[name], want)
			}
		}
	})
}

// TestStatsTextBinaryParity renders the general group both ways on
// identically-prepared servers and requires identical name/value pairs.
func TestStatsTextBinaryParity(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		prep := func() *Server {
			srv := NewServer(NewRCUStore(), 2)
			srv.Store.Set("a", &Entry{Value: []byte("12345")})
			srv.Store.Set("b", &Entry{Value: []byte("6789")})
			return srv
		}
		_, tfc := feed(c, prep(), []byte("stats\r\n"))
		_, bfc := feed(c, prep(), BuildStat(nil, 7))
		pairs := statPairs(t, bfc.out, 7)
		var text strings.Builder
		for _, p := range pairs {
			text.WriteString("STAT " + p.name + " " + p.value + "\r\n")
		}
		text.WriteString("END\r\n")
		if got := string(tfc.out); got != text.String() {
			t.Fatalf("text and binary stats disagree:\n text   %q\n binary %q", got, text.String())
		}
	})
}

func TestBinaryStatUnknownGroup(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv, BuildStat([]byte("bogus"), 5))
		hdrs, _ := parseResponses(t, fc.out)
		if len(hdrs) != 1 || hdrs[0].Status != StatusKeyNotFound || hdrs[0].Opaque != 5 {
			t.Fatalf("unknown group: %+v", hdrs)
		}
	})
}

// TestStatsItemsSlabsUnboundedEmpty pins the empty-group shape for
// stores with no slab classes.
func TestStatsItemsSlabsUnboundedEmpty(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv, []byte("stats items\r\nstats slabs\r\n"))
		if want := "END\r\nEND\r\n"; string(fc.out) != want {
			t.Fatalf("unbounded items/slabs:\n got %q\nwant %q", fc.out, want)
		}
		_, bfc := feed(c, srv, BuildStat([]byte("items"), 1))
		hdrs, _ := parseResponses(t, bfc.out)
		if len(hdrs) != 1 || hdrs[0].KeyLen != 0 || hdrs[0].BodyLen != 0 {
			t.Fatalf("binary empty group should be just the terminator: %+v", hdrs)
		}
	})
}

// TestStatsItemsSlabsBounded drives a bounded store past its budget and
// checks the per-class groups byte-exactly against the store's own
// class snapshot, plus the semantic facts: one occupied class, real
// evictions reported.
func TestStatsItemsSlabsBounded(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		bs := NewBoundedStore(boundedTestBudget, EvictLRU, nil)
		srv := NewServer(bs, 1)
		fillToCapacity(t, bs)

		classes := bs.ClassStats()
		if len(classes) != 1 {
			t.Fatalf("fill landed in %d classes, want 1", len(classes))
		}
		cl := classes[0]
		if cl.ChunkSize != 1024 || cl.Evicted == 0 || cl.Items == 0 {
			t.Fatalf("class after fill: %+v", cl)
		}

		var items strings.Builder
		p := "items:" + d(cl.Id) + ":"
		items.WriteString("STAT " + p + "number " + d(cl.Items) + "\r\n")
		items.WriteString("STAT " + p + "mem_requested " + u(cl.UsedBytes) + "\r\n")
		items.WriteString("STAT " + p + "evicted " + u(cl.Evicted) + "\r\n")
		items.WriteString("STAT " + p + "expired_unfetched " + u(cl.Expired) + "\r\n")
		items.WriteString("END\r\n")
		_, fc := feed(c, srv, []byte("stats items\r\n"))
		if got := string(fc.out); got != items.String() {
			t.Fatalf("stats items:\n got %q\nwant %q", got, items.String())
		}

		var slabs strings.Builder
		sp := d(cl.Id) + ":"
		slabs.WriteString("STAT " + sp + "chunk_size " + d(cl.ChunkSize) + "\r\n")
		slabs.WriteString("STAT " + sp + "chunks_per_page " + d(mem.PageSize/cl.ChunkSize) + "\r\n")
		slabs.WriteString("STAT " + sp + "used_chunks " + d(cl.Items) + "\r\n")
		slabs.WriteString("STAT " + sp + "free_chunks " + d(cl.FreeChunks) + "\r\n")
		slabs.WriteString("STAT active_slabs 1\r\n")
		slabs.WriteString("STAT total_malloced " + u(bs.Stats().UsedBytes) + "\r\n")
		slabs.WriteString("END\r\n")
		_, sfc := feed(c, srv, []byte("stats slabs\r\n"))
		if got := string(sfc.out); got != slabs.String() {
			t.Fatalf("stats slabs:\n got %q\nwant %q", got, slabs.String())
		}

		// The general group reflects the bounded footprint.
		_, gfc := feed(c, srv, []byte("stats\r\n"))
		out := string(gfc.out)
		st := bs.Stats()
		for _, want := range []string{
			"STAT evictions " + u(st.Evictions) + "\r\n",
			"STAT limit_maxbytes " + u(st.BudgetBytes) + "\r\n",
			"STAT bytes " + u(st.ItemBytes) + "\r\n",
			"STAT curr_items " + d(st.Items) + "\r\n",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("general stats missing %q in:\n%s", want, out)
			}
		}
	})
}

// TestStatsLiveSession exercises the acceptance transcript: a real
// connection through the simulated network, so the connection counters
// move and `stats` reports them.
func TestStatsLiveSession(t *testing.T) {
	resp := serveAndExchange(t, [][]byte{
		[]byte("set k 0 0 5\r\nhello\r\nget k\r\nstats\r\n"),
	})
	out := string(resp)
	if !strings.HasPrefix(out, "STORED\r\nVALUE k 0 5\r\nhello\r\nEND\r\n") {
		t.Fatalf("live session preamble wrong: %q", out)
	}
	for _, want := range []string{
		"STAT pid 1\r\n",
		"STAT curr_connections 1\r\n",
		"STAT total_connections 1\r\n",
		"STAT cmd_get 1\r\n",
		"STAT cmd_set 1\r\n",
		"STAT get_hits 1\r\n",
		"STAT curr_items 1\r\n",
		"STAT threads 1\r\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("live stats missing %q", want)
		}
	}
	if !strings.HasSuffix(out, "END\r\n") {
		t.Fatalf("live stats not END-terminated: %q", out[len(out)-32:])
	}
	// Re-parse the whole iobuf flow: responses may arrive in several
	// TCP segments but must concatenate to exactly one stats block.
	if got := strings.Count(out, "STAT pid "); got != 1 {
		t.Fatalf("stats block rendered %d times", got)
	}
}

func TestExpiredGetCountsAsExpiredAndMiss(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		srv.Store.Set("gone", &Entry{Value: []byte("v"), Expires: ExpiredImmediately})
		_, fc := feed(c, srv, []byte("get gone\r\nstats\r\n"))
		out := string(fc.out)
		if !strings.HasPrefix(out, "END\r\n") {
			t.Fatalf("expired entry served: %q", out)
		}
		for _, want := range []string{
			"STAT get_misses 1\r\n",
			"STAT get_expired 1\r\n",
			"STAT get_hits 0\r\n",
			"STAT reclaimed 1\r\n",
			"STAT curr_items 0\r\n",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("expired-get stats missing %q in:\n%s", want, out)
			}
		}
	})
}
