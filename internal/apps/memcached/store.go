package memcached

import (
	"sync"

	"ebbrt/internal/rcu"
	"ebbrt/internal/sim"
)

// Entry is one stored key-value pair.
type Entry struct {
	Value []byte
	Flags uint32
}

// Store abstracts the key-value backing so the harness can compare the RCU
// table against a conventional locked table (the paper attributes
// memcached's poor multicore scaling to lock contention, §4.2).
type Store interface {
	Get(key string) (*Entry, bool)
	Set(key string, e *Entry)
	Delete(key string) bool
	Len() int
	// OpCost reports the extra virtual CPU charged per operation when
	// invoked with the given number of actively serving cores (models
	// synchronization cost the structure imposes).
	OpCost(activeCores int) sim.Time
	Name() string
}

// RCUStore stores entries in the RCU hash table: reads are lock-free, so
// the per-operation cost does not grow with core count.
type RCUStore struct {
	t *rcu.Table[string, *Entry]
}

// NewRCUStore creates the default store.
func NewRCUStore() *RCUStore {
	return &RCUStore{t: rcu.NewTable[string, *Entry](rcu.StringHash, 1024)}
}

// Name implements Store.
func (s *RCUStore) Name() string { return "rcu" }

// Get implements Store.
func (s *RCUStore) Get(key string) (*Entry, bool) { return s.t.Get(key) }

// Set implements Store.
func (s *RCUStore) Set(key string, e *Entry) { s.t.Put(key, e) }

// Delete implements Store.
func (s *RCUStore) Delete(key string) bool { return s.t.Delete(key) }

// Len implements Store.
func (s *RCUStore) Len() int { return s.t.Len() }

// OpCost implements Store: hash plus unsynchronized traversal.
func (s *RCUStore) OpCost(activeCores int) sim.Time { return 60 * sim.Nanosecond }

// LockedStore is the conventional globally-locked table (stock memcached's
// cache_lock), for the ablation benchmark: per-op cost includes the atomic
// and grows with contention.
type LockedStore struct {
	mu sync.Mutex
	m  map[string]*Entry
}

// NewLockedStore creates the ablation store.
func NewLockedStore() *LockedStore { return &LockedStore{m: map[string]*Entry{}} }

// Name implements Store.
func (s *LockedStore) Name() string { return "locked" }

// Get implements Store.
func (s *LockedStore) Get(key string) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	return e, ok
}

// Set implements Store.
func (s *LockedStore) Set(key string, e *Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = e
}

// Delete implements Store.
func (s *LockedStore) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[key]
	delete(s.m, key)
	return ok
}

// Len implements Store.
func (s *LockedStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// OpCost implements Store: an uncontended atomic plus contention that
// scales with the number of cores hammering the one lock.
func (s *LockedStore) OpCost(activeCores int) sim.Time {
	base := 120 * sim.Nanosecond
	if activeCores > 1 {
		base += sim.Time(activeCores) * 90 * sim.Nanosecond
	}
	return base
}
