package memcached

import (
	"sync"

	"ebbrt/internal/rcu"
	"ebbrt/internal/sim"
)

// Entry is one stored key-value pair.
type Entry struct {
	Value []byte
	Flags uint32
	// CAS is the entry's version token, reported by the text protocol's
	// `gets` and the binary GET response header. Plain stores mint it
	// from the server-local counter (Server.nextCAS), as stock memcached
	// does. Stores carrying a nonzero request CAS instead keep that
	// exact value - the cluster's replica-wide version stamps, assigned
	// once per write by the coordinating client so every replica of a
	// key (including read-repaired and migrated copies) holds the same
	// stamp. Coordinator stamps live above any server-minted value, so
	// the two spaces never conflict on a mixed-history entry.
	CAS uint64
	// Expires is the absolute virtual time the entry dies at: 0 means
	// never, ExpiredImmediately means it was stored already dead, and
	// anything else is compared lazily against the clock on every lookup
	// (expiry.go has the wire-exptime resolution rules).
	Expires sim.Time
	// StoredAt is when the entry was written, the timestamp flush_all's
	// oldest-live rule compares against: a flush at time T kills every
	// entry stored before T once T arrives.
	StoredAt sim.Time
}

// Store abstracts the key-value backing so the harness can compare the RCU
// table against a conventional locked table (the paper attributes
// memcached's poor multicore scaling to lock contention, §4.2).
type Store interface {
	Get(key string) (*Entry, bool)
	// Set stores the entry, reporting whether it was stored: the
	// unbounded stores always succeed, the bounded store reports false
	// when the entry cannot fit its memory budget even after eviction.
	Set(key string, e *Entry) bool
	// Add stores the entry only if the key is absent, reporting whether it
	// was stored. The migration stream applies transferred entries with Add
	// so a fresher value dual-written during handoff is never clobbered by
	// the source's older snapshot.
	Add(key string, e *Entry) bool
	Delete(key string) bool
	Len() int
	// Scan invokes fn over a point-in-time snapshot of the store taken
	// when Scan is called: concurrent Sets and Deletes affect neither the
	// visited set nor its values, and fn may itself mutate the store. A
	// false return stops the scan. This is what the migrator iterates to
	// stream a key range to a new owner.
	Scan(fn func(key string, e *Entry) bool)
	// Keys returns the keys of a point-in-time snapshot.
	Keys() []string
	// OpCost reports the extra virtual CPU charged per operation when
	// invoked with the given number of actively serving cores (models
	// synchronization cost the structure imposes).
	OpCost(activeCores int) sim.Time
	Name() string
}

// RCUStore stores entries in the RCU hash table: reads are lock-free, so
// the per-operation cost does not grow with core count.
type RCUStore struct {
	t *rcu.Table[string, *Entry]
}

// NewRCUStore creates the default store.
func NewRCUStore() *RCUStore {
	return &RCUStore{t: rcu.NewTable[string, *Entry](rcu.StringHash, 1024)}
}

// Name implements Store.
func (s *RCUStore) Name() string { return "rcu" }

// Get implements Store.
func (s *RCUStore) Get(key string) (*Entry, bool) { return s.t.Get(key) }

// Set implements Store.
func (s *RCUStore) Set(key string, e *Entry) bool { s.t.Put(key, e); return true }

// Add implements Store.
func (s *RCUStore) Add(key string, e *Entry) bool { return s.t.PutIfAbsent(key, e) }

// Delete implements Store.
func (s *RCUStore) Delete(key string) bool { return s.t.Delete(key) }

// Len implements Store.
func (s *RCUStore) Len() int { return s.t.Len() }

// Scan implements Store: the snapshot is collected under the table's
// writer lock (one consistent point in time), then fn runs lock-free so
// it may Set/Delete without deadlocking.
func (s *RCUStore) Scan(fn func(key string, e *Entry) bool) {
	snap := snapshotTable(s.t)
	for _, kv := range snap {
		if !fn(kv.k, kv.v) {
			return
		}
	}
}

// Keys implements Store.
func (s *RCUStore) Keys() []string {
	snap := snapshotTable(s.t)
	keys := make([]string, len(snap))
	for i, kv := range snap {
		keys[i] = kv.k
	}
	return keys
}

type storePair struct {
	k string
	v *Entry
}

func snapshotTable(t *rcu.Table[string, *Entry]) []storePair {
	snap := make([]storePair, 0, t.Len())
	t.ForEach(func(k string, v *Entry) bool {
		snap = append(snap, storePair{k: k, v: v})
		return true
	})
	return snap
}

// OpCost implements Store: hash plus unsynchronized traversal.
func (s *RCUStore) OpCost(activeCores int) sim.Time { return 60 * sim.Nanosecond }

// LockedStore is the conventional globally-locked table (stock memcached's
// cache_lock), for the ablation benchmark: per-op cost includes the atomic
// and grows with contention.
type LockedStore struct {
	mu sync.Mutex
	m  map[string]*Entry
}

// NewLockedStore creates the ablation store.
func NewLockedStore() *LockedStore { return &LockedStore{m: map[string]*Entry{}} }

// Name implements Store.
func (s *LockedStore) Name() string { return "locked" }

// Get implements Store.
func (s *LockedStore) Get(key string) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	return e, ok
}

// Set implements Store.
func (s *LockedStore) Set(key string, e *Entry) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = e
	return true
}

// Add implements Store.
func (s *LockedStore) Add(key string, e *Entry) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; ok {
		return false
	}
	s.m[key] = e
	return true
}

// Delete implements Store.
func (s *LockedStore) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[key]
	delete(s.m, key)
	return ok
}

// Len implements Store.
func (s *LockedStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Scan implements Store: the snapshot is copied out under the lock, then
// fn runs unlocked so it may mutate the store.
func (s *LockedStore) Scan(fn func(key string, e *Entry) bool) {
	s.mu.Lock()
	snap := make([]storePair, 0, len(s.m))
	for k, v := range s.m {
		snap = append(snap, storePair{k: k, v: v})
	}
	s.mu.Unlock()
	for _, kv := range snap {
		if !fn(kv.k, kv.v) {
			return
		}
	}
}

// Keys implements Store.
func (s *LockedStore) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	return keys
}

// OpCost implements Store: an uncontended atomic plus contention that
// scales with the number of cores hammering the one lock.
func (s *LockedStore) OpCost(activeCores int) sim.Time {
	base := 120 * sim.Nanosecond
	if activeCores > 1 {
		base += sim.Time(activeCores) * 90 * sim.Nanosecond
	}
	return base
}
