package memcached

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func stores() map[string]func() Store {
	return map[string]func() Store{
		"rcu":    func() Store { return NewRCUStore() },
		"locked": func() Store { return NewLockedStore() },
	}
}

// TestScanSnapshotIsolation: a Scan sees exactly the store as it was
// when the scan started - mutations made from inside the scan callback
// (or, equivalently, concurrently) affect neither the visited set nor
// the visited values, and a key deleted before the scan never appears.
func TestScanSnapshotIsolation(t *testing.T) {
	for name, mk := range stores() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			const n = 200
			for i := 0; i < n; i++ {
				s.Set(fmt.Sprintf("stable-%d", i), &Entry{Value: []byte("v")})
				s.Set(fmt.Sprintf("doomed-%d", i), &Entry{Value: []byte("d")})
			}
			for i := 0; i < n; i++ {
				s.Delete(fmt.Sprintf("doomed-%d", i))
			}

			seen := map[string]int{}
			i := 0
			s.Scan(func(key string, e *Entry) bool {
				seen[key]++
				// Mutate mid-scan: new inserts, and deletion of a key the
				// snapshot already contains.
				s.Set(fmt.Sprintf("mid-scan-%d", i), &Entry{Value: []byte("m")})
				s.Delete(fmt.Sprintf("stable-%d", (i+1)%n))
				i++
				return true
			})

			if len(seen) != n {
				t.Fatalf("scan yielded %d keys, want the %d-key snapshot", len(seen), n)
			}
			for k, c := range seen {
				if c != 1 {
					t.Errorf("key %q yielded %d times", k, c)
				}
				if len(k) < 7 || k[:7] != "stable-" {
					t.Errorf("scan yielded %q: deleted-before-scan or inserted-mid-scan key", k)
				}
			}
		})
	}
}

// TestScanStopsEarly: a false return ends the scan.
func TestScanStopsEarly(t *testing.T) {
	for name, mk := range stores() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			for i := 0; i < 50; i++ {
				s.Set(fmt.Sprintf("k-%d", i), &Entry{})
			}
			visited := 0
			s.Scan(func(string, *Entry) bool {
				visited++
				return visited < 10
			})
			if visited != 10 {
				t.Fatalf("visited %d entries after stopping at 10", visited)
			}
		})
	}
}

// TestKeysSnapshot: Keys matches the store contents at the call.
func TestKeysSnapshot(t *testing.T) {
	for name, mk := range stores() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			want := map[string]bool{}
			for i := 0; i < 64; i++ {
				k := fmt.Sprintf("k-%d", i)
				s.Set(k, &Entry{})
				want[k] = true
			}
			s.Set("gone", &Entry{})
			s.Delete("gone")
			keys := s.Keys()
			if len(keys) != len(want) {
				t.Fatalf("Keys returned %d keys, want %d", len(keys), len(want))
			}
			for _, k := range keys {
				if !want[k] {
					t.Errorf("Keys returned unexpected %q", k)
				}
			}
		})
	}
}

// TestScanUnderConcurrentMutation hammers the store from writer
// goroutines while scanning: the scan must never panic, must always
// yield every key written-and-never-deleted before it started, and must
// never yield a key deleted before it started. Run under -race in CI,
// this is also the store's concurrency-safety check for the migration
// path (a source streams its snapshot while serving writes).
func TestScanUnderConcurrentMutation(t *testing.T) {
	for name, mk := range stores() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			const stable = 300
			for i := 0; i < stable; i++ {
				s.Set(fmt.Sprintf("stable-%d", i), &Entry{Value: []byte("v")})
				s.Set(fmt.Sprintf("doomed-%d", i), &Entry{Value: []byte("d")})
			}
			for i := 0; i < stable; i++ {
				s.Delete(fmt.Sprintf("doomed-%d", i))
			}

			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; !stop.Load(); i++ {
						k := fmt.Sprintf("volatile-%d-%d", w, i%128)
						s.Set(k, &Entry{Value: []byte("x")})
						if i%3 == 0 {
							s.Delete(k)
						}
						if _, ok := s.Get(fmt.Sprintf("stable-%d", i%stable)); !ok {
							t.Errorf("stable key vanished under concurrent scan")
							return
						}
					}
				}()
			}

			for round := 0; round < 20; round++ {
				got := map[string]bool{}
				s.Scan(func(key string, e *Entry) bool {
					if len(key) >= 7 && key[:7] == "doomed-" {
						t.Fatalf("scan yielded %q, deleted before the scan", key)
					}
					got[key] = true
					return true
				})
				for i := 0; i < stable; i++ {
					if k := fmt.Sprintf("stable-%d", i); !got[k] {
						t.Fatalf("round %d: scan missed pre-existing key %q", round, k)
					}
				}
			}
			stop.Store(true)
			wg.Wait()
		})
	}
}

// TestAddIfAbsent: Add stores only when the key is absent and reports
// which happened - the semantics the migration stream relies on to
// never clobber a dual-written fresher value.
func TestAddIfAbsent(t *testing.T) {
	for name, mk := range stores() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			if !s.Add("k", &Entry{Value: []byte("old")}) {
				t.Fatal("Add to empty store did not insert")
			}
			if s.Add("k", &Entry{Value: []byte("stale")}) {
				t.Fatal("Add over an existing key reported insertion")
			}
			if e, _ := s.Get("k"); string(e.Value) != "old" {
				t.Fatalf("Add overwrote existing value: %q", e.Value)
			}
			s.Delete("k")
			if !s.Add("k", &Entry{Value: []byte("new")}) {
				t.Fatal("Add after delete did not insert")
			}
			if s.Len() != 1 {
				t.Fatalf("Len %d after add/delete/add", s.Len())
			}
		})
	}
}
