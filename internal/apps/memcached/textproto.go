package memcached

import (
	"bytes"
	"strconv"

	"ebbrt/internal/event"
	"ebbrt/internal/sim"
)

// The ASCII text protocol: the line-oriented wire format stock memcached
// clients and load generators speak (docs/PROTOCOL.md is the reference
// for the grammar implemented here). The server auto-detects the
// protocol per connection - a first byte of 0x80 is the binary request
// magic, anything else is a text command line - so one listener serves
// both, and both run against the same Store.
//
// The parser is a streaming state machine: a command line may arrive
// split at any byte offset, a storage command's data block may straddle
// deliveries, and malformed input answers CLIENT_ERROR and resynchronizes
// rather than killing the connection (only `quit` and a binary-side
// framing error close it).

// Limits mirroring stock memcached's defaults.
const (
	// MaxTextKey is the longest key the text protocol accepts.
	MaxTextKey = 250
	// MaxTextLine bounds one command line (including arguments). A
	// longer line answers CLIENT_ERROR and is discarded through its
	// terminating newline.
	MaxTextLine = 2048
	// MaxTextValue bounds one data block (stock memcached's default 1 MB
	// item limit). A larger announced block answers SERVER_ERROR and is
	// swallowed without buffering.
	MaxTextValue = 1 << 20
)

// TextVersionString is what `version` reports.
const TextVersionString = "1.6.0-ebbrt"

// Canonical response lines (byte-exact stock memcached).
const (
	respStored       = "STORED\r\n"
	respNotStored    = "NOT_STORED\r\n"
	respDeleted      = "DELETED\r\n"
	respNotFound     = "NOT_FOUND\r\n"
	respTouched      = "TOUCHED\r\n"
	respOK           = "OK\r\n"
	respEnd          = "END\r\n"
	respError        = "ERROR\r\n"
	respBadLine      = "CLIENT_ERROR bad command line format\r\n"
	respBadDataChunk = "CLIENT_ERROR bad data chunk\r\n"
	respTooLarge     = "SERVER_ERROR object too large for cache\r\n"
	respOOM          = "SERVER_ERROR out of memory storing object\r\n"
	respNonNumeric   = "CLIENT_ERROR cannot increment or decrement non-numeric value\r\n"
	respBadDelta     = "CLIENT_ERROR invalid numeric delta argument\r\n"
)

// maxTextSwallow bounds the resync swallow after a refused storage
// command: only a plausibly-sized announced block is skipped. An absurd
// <bytes> value (including ones where need+2 would overflow) is not
// skipped at all - the connection survives, with the block's bytes
// surfacing as (failing) command lines until the stream happens back
// into sync, which is also what stock memcached degrades to.
const maxTextSwallow = 8 << 20

// textParsePerByte models the cost of tokenizing one ASCII command-line
// byte (scan, delimit, integer conversion), the per-request overhead the
// TextVsBinary experiment measures against the binary header's
// fixed-offset field decode.
const textParsePerByte = 2 * sim.Nanosecond

// textState is the parser position within the request stream.
type textState uint8

const (
	// textLine: reading a command line up to its newline.
	textLine textState = iota
	// textData: reading a storage command's <bytes>-long data block plus
	// its trailing CRLF.
	textData
	// textSwallowLine: discarding an oversized command line through its
	// newline (the error was already answered).
	textSwallowLine
	// textSwallowData: discarding an announced data block we refused to
	// buffer (oversized, or its command line was malformed), counting
	// bytes rather than buffering them.
	textSwallowData
)

// textSession is the per-connection text-protocol parser state.
type textSession struct {
	state   textState
	swallow int // bytes left to discard in textSwallowData

	// Pending storage command, valid in textData.
	cmd     byte // 's'et, 'a'dd, 'r'eplace, '+' append, '-' prepend
	key     string
	flags   uint32
	exptime int64 // wire exptime, resolved when the data block completes
	need    int   // announced data block length
	noreply bool
}

// reply appends msg unless the in-progress command was marked noreply:
// noreply suppresses every response to that command, success or error,
// exactly as stock memcached does (the client is not reading).
func (ts *textSession) reply(resp []byte, msg string) []byte {
	if ts.noreply {
		return resp
	}
	return append(resp, msg...)
}

// handleText consumes as much of data as currently parses, appending
// response bytes. It reports how many bytes were consumed (the caller
// retains the tail for the next delivery) and whether the client asked
// to quit.
func (s *Server) handleText(c *event.Ctx, ts *textSession, data []byte) (resp []byte, consumed int, quit bool) {
	for consumed < len(data) {
		switch ts.state {
		case textSwallowData:
			n := len(data) - consumed
			if n > ts.swallow {
				n = ts.swallow
			}
			consumed += n
			ts.swallow -= n
			if ts.swallow == 0 {
				ts.state = textLine
			}

		case textSwallowLine:
			idx := bytes.IndexByte(data[consumed:], '\n')
			if idx < 0 {
				return resp, len(data), false
			}
			consumed += idx + 1
			ts.state = textLine

		case textData:
			if len(data)-consumed < ts.need+2 {
				return resp, consumed, false
			}
			block := data[consumed : consumed+ts.need]
			termOK := data[consumed+ts.need] == '\r' && data[consumed+ts.need+1] == '\n'
			consumed += ts.need + 2
			ts.state = textLine
			s.Requests++
			s.stats.cmdSet++
			c.Charge(s.RequestCPU + s.Store.OpCost(s.Cores))
			if !termOK {
				// The block was not CRLF-terminated where <bytes> said it
				// would be: the value is not stored, but the stream stays
				// in sync (the announced length was still consumed).
				resp = ts.reply(resp, respBadDataChunk)
				continue
			}
			now := c.Now()
			s.maybeApplyFlush(now)
			value := append([]byte(nil), block...)
			// Here is where the command line's exptime finally lands on
			// the entry - resolved against the completion instant, which
			// is when stock memcached stamps it too.
			expires := AbsoluteExpiry(ts.exptime, now)
			switch ts.cmd {
			case 's':
				cur, _ := s.Store.Get(ts.key)
				e := &Entry{Value: value, Flags: ts.flags, CAS: s.mintCAS(cur), Expires: expires, StoredAt: now}
				if s.Store.Set(ts.key, e) {
					s.stats.totalItems++
					resp = ts.reply(resp, respStored)
				} else {
					resp = ts.reply(resp, respOOM)
				}
			case 'a':
				// An expired occupant does not defeat an add; reclaim it
				// first, as the binary path does.
				if cur, ok := s.Store.Get(ts.key); ok && !s.EntryLive(cur, now) {
					s.Store.Delete(ts.key)
					s.ExpiredReclaimed++
				}
				e := &Entry{Value: value, Flags: ts.flags, CAS: s.nextCAS(), Expires: expires, StoredAt: now}
				if s.Store.Add(ts.key, e) {
					s.stats.totalItems++
					resp = ts.reply(resp, respStored)
				} else {
					resp = ts.reply(resp, respNotStored)
				}
			case 'r':
				// Store-only-if-present. The get/set pair is atomic here:
				// the simulation kernel runs one event at a time, so no
				// other request interleaves between the check and the set.
				if cur, ok := s.getLive(ts.key, now); ok {
					e := &Entry{Value: value, Flags: ts.flags, CAS: s.mintCAS(cur), Expires: expires, StoredAt: now}
					if s.Store.Set(ts.key, e) {
						s.stats.totalItems++
						resp = ts.reply(resp, respStored)
					} else {
						resp = ts.reply(resp, respOOM)
					}
				} else {
					resp = ts.reply(resp, respNotStored)
				}
			case '+', '-':
				// append/prepend ignore the line's flags and exptime and
				// keep the entry's own, per stock memcached.
				e, _, ok := s.applyConcat(ts.key, value, ts.cmd == '+', now)
				switch {
				case !ok:
					resp = ts.reply(resp, respNotStored)
				case e == nil:
					resp = ts.reply(resp, respOOM)
				default:
					resp = ts.reply(resp, respStored)
				}
			}

		case textLine:
			idx := bytes.IndexByte(data[consumed:], '\n')
			if idx < 0 {
				// A legal line is at most MaxTextLine bytes plus CRLF, so an
				// unterminated buffer may legitimately hold MaxTextLine+1
				// bytes (the CR arrived, the LF has not). Beyond that the
				// eventual line must be oversized whatever follows: answer
				// the error now and discard input through the newline.
				if len(data)-consumed > MaxTextLine+1 {
					resp = append(resp, respBadLine...)
					ts.state = textSwallowLine
					return resp, len(data), false
				}
				return resp, consumed, false
			}
			line := data[consumed : consumed+idx]
			consumed += idx + 1
			if len(line) > 0 && line[len(line)-1] == '\r' {
				line = line[:len(line)-1]
			}
			if len(line) > MaxTextLine {
				resp = ts.rejectLongLine(line, resp)
				continue
			}
			var q bool
			resp, q = s.execTextLine(c, ts, line, resp)
			if q {
				return resp, consumed, true
			}
		}
	}
	return resp, consumed, false
}

// execTextLine dispatches one complete command line.
func (s *Server) execTextLine(c *event.Ctx, ts *textSession, line []byte, resp []byte) (out []byte, quit bool) {
	toks := splitTextTokens(line)
	if len(toks) == 0 {
		return append(resp, respError...), false
	}
	now := c.Now()
	s.maybeApplyFlush(now)
	switch {
	case tokIs(toks[0], "get"), tokIs(toks[0], "gets"):
		s.Requests++
		c.Charge(s.RequestCPU + sim.Time(len(line))*textParsePerByte)
		if len(toks) < 2 {
			return append(resp, respError...), false
		}
		for _, kt := range toks[1:] {
			if len(kt) > MaxTextKey {
				return append(resp, respBadLine...), false
			}
		}
		withCAS := tokIs(toks[0], "gets")
		for _, kt := range toks[1:] {
			c.Charge(s.Store.OpCost(s.Cores))
			if e, ok := s.getForRead(string(kt), now); ok {
				resp = appendTextValue(resp, kt, e, withCAS)
			}
		}
		return append(resp, respEnd...), false

	case tokIs(toks[0], "set"), tokIs(toks[0], "add"), tokIs(toks[0], "replace"),
		tokIs(toks[0], "append"), tokIs(toks[0], "prepend"):
		c.Charge(sim.Time(len(line)) * textParsePerByte)
		return s.parseTextStorage(ts, toks, resp), false

	case tokIs(toks[0], "incr"), tokIs(toks[0], "decr"):
		// incr <key> <delta> [noreply]
		s.Requests++
		c.Charge(s.RequestCPU + sim.Time(len(line))*textParsePerByte + s.Store.OpCost(s.Cores))
		ts.noreply = len(toks) == 4 && tokIs(toks[3], "noreply")
		if len(toks) < 3 || len(toks) > 4 || (len(toks) == 4 && !ts.noreply) || len(toks[1]) > MaxTextKey {
			return ts.reply(resp, respBadLine), false
		}
		delta, err := strconv.ParseUint(string(toks[2]), 10, 64)
		if err != nil {
			return ts.reply(resp, respBadDelta), false
		}
		// CounterNoCreate: the text protocol never seeds a missing key.
		newVal, _, status := s.applyDelta(string(toks[1]), delta, 0, CounterNoCreate, tokIs(toks[0], "incr"), now)
		switch status {
		case StatusKeyNotFound:
			return ts.reply(resp, respNotFound), false
		case StatusDeltaBadval:
			return ts.reply(resp, respNonNumeric), false
		case StatusOutOfMemory:
			return ts.reply(resp, respOOM), false
		}
		if ts.noreply {
			return resp, false
		}
		resp = strconv.AppendUint(resp, newVal, 10)
		return append(resp, '\r', '\n'), false

	case tokIs(toks[0], "touch"):
		// touch <key> <exptime> [noreply]
		s.Requests++
		c.Charge(s.RequestCPU + sim.Time(len(line))*textParsePerByte + s.Store.OpCost(s.Cores))
		ts.noreply = len(toks) == 4 && tokIs(toks[3], "noreply")
		if len(toks) < 3 || len(toks) > 4 || (len(toks) == 4 && !ts.noreply) || len(toks[1]) > MaxTextKey {
			return ts.reply(resp, respBadLine), false
		}
		exptime, err := strconv.ParseInt(string(toks[2]), 10, 64)
		if err != nil {
			return ts.reply(resp, respBadLine), false
		}
		if !s.applyTouch(string(toks[1]), AbsoluteExpiry(exptime, now), now) {
			return ts.reply(resp, respNotFound), false
		}
		return ts.reply(resp, respTouched), false

	case tokIs(toks[0], "flush_all"):
		// flush_all [delay] [noreply]
		s.Requests++
		c.Charge(s.RequestCPU + sim.Time(len(line))*textParsePerByte)
		args := toks[1:]
		ts.noreply = len(args) > 0 && tokIs(args[len(args)-1], "noreply")
		if ts.noreply {
			args = args[:len(args)-1]
		}
		var delay int64
		if len(args) > 1 {
			return ts.reply(resp, respBadLine), false
		}
		if len(args) == 1 {
			var err error
			if delay, err = strconv.ParseInt(string(args[0]), 10, 64); err != nil {
				return ts.reply(resp, respBadLine), false
			}
		}
		s.applyFlushAll(delay, now)
		return ts.reply(resp, respOK), false

	case tokIs(toks[0], "delete"):
		s.Requests++
		c.Charge(s.RequestCPU + sim.Time(len(line))*textParsePerByte + s.Store.OpCost(s.Cores))
		noreply := len(toks) == 3 && tokIs(toks[2], "noreply")
		if len(toks) < 2 || len(toks) > 3 || (len(toks) == 3 && !noreply) || len(toks[1]) > MaxTextKey {
			return append(resp, respBadLine...), false
		}
		ok := s.applyDelete(string(toks[1]), now)
		if noreply {
			return resp, false
		}
		if ok {
			return append(resp, respDeleted...), false
		}
		return append(resp, respNotFound...), false

	case tokIs(toks[0], "stats"):
		// stats [items|slabs] - stats.go renders the groups; an
		// unrecognized group answers ERROR, as stock does for unsupported
		// stats arguments.
		s.Requests++
		c.Charge(s.RequestCPU + sim.Time(len(line))*textParsePerByte)
		if len(toks) > 2 {
			return append(resp, respError...), false
		}
		group := ""
		if len(toks) == 2 {
			group = string(toks[1])
		}
		lines, ok := s.statLines(group, now)
		if !ok {
			return append(resp, respError...), false
		}
		return appendTextStats(resp, lines), false

	case tokIs(toks[0], "version"):
		s.Requests++
		c.Charge(s.RequestCPU)
		return append(resp, "VERSION "+TextVersionString+"\r\n"...), false

	case tokIs(toks[0], "quit"):
		return resp, true

	default:
		s.Requests++
		c.Charge(s.RequestCPU + sim.Time(len(line))*textParsePerByte)
		return append(resp, respError...), false
	}
}

// storageCmdCode maps a storage command name onto the one-byte code the
// data-block state dispatches on ('+'/'-' for append/prepend, since
// "append" and "add" share a first letter). Zero means not a storage
// command.
func storageCmdCode(tok []byte) byte {
	switch {
	case tokIs(tok, "set"):
		return 's'
	case tokIs(tok, "add"):
		return 'a'
	case tokIs(tok, "replace"):
		return 'r'
	case tokIs(tok, "append"):
		return '+'
	case tokIs(tok, "prepend"):
		return '-'
	}
	return 0
}

// parseTextStorage validates a `set`/`add`/`replace`/`append`/`prepend`
// command line and arms the data-block state. A malformed line whose
// <bytes> argument still parses swallows the announced block so the
// stream resynchronizes at the next command line; if <bytes> itself is
// unreadable there is nothing to skip and the block's bytes will
// surface as (failing) command lines - the same recovery stock
// memcached performs.
func (s *Server) parseTextStorage(ts *textSession, toks [][]byte, resp []byte) []byte {
	// <cmd> <key> <flags> <exptime> <bytes> [noreply]
	ts.noreply = false
	if len(toks) < 5 {
		return append(resp, respBadLine...)
	}
	bad := false
	if len(toks) == 6 && tokIs(toks[5], "noreply") {
		ts.noreply = true
	} else if len(toks) != 5 {
		bad = true
	}
	need, needErr := strconv.Atoi(string(toks[4]))
	flags, flagsErr := strconv.ParseUint(string(toks[2]), 10, 32)
	exptime, expErr := strconv.ParseInt(string(toks[3]), 10, 64)
	if needErr != nil || need < 0 || flagsErr != nil || expErr != nil || len(toks[1]) > MaxTextKey {
		bad = true
	}
	if bad {
		if needErr == nil && need >= 0 && need <= maxTextSwallow {
			ts.state = textSwallowData
			ts.swallow = need + 2
		}
		return ts.reply(resp, respBadLine)
	}
	if need > MaxTextValue {
		if need <= maxTextSwallow {
			ts.state = textSwallowData
			ts.swallow = need + 2
		}
		return ts.reply(resp, respTooLarge)
	}
	ts.cmd = storageCmdCode(toks[0])
	ts.key = string(toks[1])
	ts.flags = uint32(flags)
	ts.exptime = exptime
	ts.need = need
	ts.state = textData
	return resp
}

// rejectLongLine answers CLIENT_ERROR for a complete command line over
// MaxTextLine and, when the line is a storage command whose <bytes>
// argument still parses, swallows the announced data block - the same
// resynchronization parseTextStorage performs, so the block's bytes are
// not misread as command lines.
func (ts *textSession) rejectLongLine(line []byte, resp []byte) []byte {
	toks := splitTextTokens(line)
	if len(toks) >= 5 && storageCmdCode(toks[0]) != 0 {
		if need, err := strconv.Atoi(string(toks[4])); err == nil && need >= 0 && need <= maxTextSwallow {
			ts.state = textSwallowData
			ts.swallow = need + 2
		}
	}
	return append(resp, respBadLine...)
}

// appendTextValue serializes one retrieval hit:
// VALUE <key> <flags> <bytes>[ <cas>]\r\n<data block>\r\n
func appendTextValue(resp, key []byte, e *Entry, withCAS bool) []byte {
	resp = append(resp, "VALUE "...)
	resp = append(resp, key...)
	resp = append(resp, ' ')
	resp = strconv.AppendUint(resp, uint64(e.Flags), 10)
	resp = append(resp, ' ')
	resp = strconv.AppendInt(resp, int64(len(e.Value)), 10)
	if withCAS {
		resp = append(resp, ' ')
		resp = strconv.AppendUint(resp, e.CAS, 10)
	}
	resp = append(resp, '\r', '\n')
	resp = append(resp, e.Value...)
	return append(resp, '\r', '\n')
}

// splitTextTokens splits a command line on spaces, skipping runs of
// them, without allocating per token.
func splitTextTokens(line []byte) [][]byte {
	var toks [][]byte
	for len(line) > 0 {
		for len(line) > 0 && line[0] == ' ' {
			line = line[1:]
		}
		if len(line) == 0 {
			break
		}
		end := bytes.IndexByte(line, ' ')
		if end < 0 {
			end = len(line)
		}
		toks = append(toks, line[:end])
		line = line[end:]
	}
	return toks
}

// tokIs reports whether the token equals the literal.
func tokIs(tok []byte, lit string) bool { return string(tok) == lit }
