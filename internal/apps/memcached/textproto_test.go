package memcached

import (
	"bytes"
	"sort"
	"strconv"
	"strings"
	"testing"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/sim"
	"ebbrt/internal/testbed"
)

// The text-protocol mirror of protocol_edge_test.go: the same fakeConn +
// protoHarness machinery drives the real serverConn state machine, so
// reassembly (every-byte-offset splits), error recovery (CLIENT_ERROR
// without killing the connection), noreply suppression, and the
// binary/text parity invariant all run at unit speed.

func TestTextSetGetDeleteByteExact(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv, []byte(
			"set k 7 0 5\r\nhello\r\n"+
				"get k\r\n"+
				"gets k\r\n"+
				"delete k\r\n"+
				"delete k\r\n"+
				"get k\r\n"))
		want := "STORED\r\n" +
			"VALUE k 7 5\r\nhello\r\nEND\r\n" +
			"VALUE k 7 5 1\r\nhello\r\nEND\r\n" +
			"DELETED\r\n" +
			"NOT_FOUND\r\n" +
			"END\r\n"
		if string(fc.out) != want {
			t.Fatalf("session output:\n got %q\nwant %q", fc.out, want)
		}
		if fc.closed {
			t.Fatal("connection closed during a clean session")
		}
	})
}

func TestTextMultiKeyGet(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		srv.Store.Set("a", &Entry{Value: []byte("1"), Flags: 10})
		srv.Store.Set("c", &Entry{Value: []byte("333"), Flags: 30})
		_, fc := feed(c, srv, []byte("get a b c\r\n"))
		want := "VALUE a 10 1\r\n1\r\nVALUE c 30 3\r\n333\r\nEND\r\n"
		if string(fc.out) != want {
			t.Fatalf("multi-key get:\n got %q\nwant %q", fc.out, want)
		}
	})
}

func TestTextNoreplySemantics(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		srv.Store.Set("taken", &Entry{Value: []byte("v")})
		_, fc := feed(c, srv, []byte(
			"set sk 0 0 2 noreply\r\nsv\r\n"+ // success: silent
				"add taken 0 0 1 noreply\r\nx\r\n"+ // NOT_STORED: silent too
				"delete sk noreply\r\n"+ // DELETED: silent
				"delete sk noreply\r\n"+ // NOT_FOUND: silent
				"version\r\n"))
		if want := "VERSION " + TextVersionString + "\r\n"; string(fc.out) != want {
			t.Fatalf("noreply leaked responses: %q", fc.out)
		}
		if _, ok := srv.Store.Get("sk"); ok {
			t.Fatal("noreply delete not applied")
		}
		if e, _ := srv.Store.Get("taken"); string(e.Value) != "v" {
			t.Fatal("noreply add clobbered existing entry")
		}
	})
}

func TestTextMalformedLinesSurviveConnection(t *testing.T) {
	// Every malformed input answers an error line and the connection
	// keeps working - the next well-formed command succeeds.
	cases := []struct {
		name  string
		input string
		want  string
	}{
		{
			name:  "unknown command",
			input: "bogus\r\nversion\r\n",
			want:  "ERROR\r\nVERSION " + TextVersionString + "\r\n",
		},
		{
			name:  "empty line",
			input: "\r\nversion\r\n",
			want:  "ERROR\r\nVERSION " + TextVersionString + "\r\n",
		},
		{
			name:  "get without keys",
			input: "get\r\nversion\r\n",
			want:  "ERROR\r\nVERSION " + TextVersionString + "\r\n",
		},
		{
			name: "set with unparseable bytes",
			// No data block can follow (length unknown), so the parser
			// stays in line mode.
			input: "set k 0 0 abc\r\nversion\r\n",
			want:  "CLIENT_ERROR bad command line format\r\nVERSION " + TextVersionString + "\r\n",
		},
		{
			name: "set with bad flags swallows announced block",
			// <bytes> parsed, so the 5-byte block + CRLF is discarded and
			// the stream resynchronizes at the next command.
			input: "set k zz 0 5\r\nhello\r\nversion\r\n",
			want:  "CLIENT_ERROR bad command line format\r\nVERSION " + TextVersionString + "\r\n",
		},
		{
			name: "set with bad flags and zero bytes swallows the empty block",
			// need == 0 still announces a block (its bare CRLF); it must be
			// swallowed too, or it would echo a spurious second ERROR.
			input: "set k zz 0 0\r\n\r\nversion\r\n",
			want:  "CLIENT_ERROR bad command line format\r\nVERSION " + TextVersionString + "\r\n",
		},
		{
			name:  "set with missing arguments",
			input: "set k 0 0\r\nversion\r\n",
			want:  "CLIENT_ERROR bad command line format\r\nVERSION " + TextVersionString + "\r\n",
		},
		{
			name:  "delete with trailing junk",
			input: "delete k extra\r\nversion\r\n",
			want:  "CLIENT_ERROR bad command line format\r\nVERSION " + TextVersionString + "\r\n",
		},
		{
			name:  "bad data chunk terminator",
			input: "set k 0 0 5\r\nhelloXXversion\r\n",
			want:  "CLIENT_ERROR bad data chunk\r\nVERSION " + TextVersionString + "\r\n",
		},
		{
			name:  "oversized key",
			input: "get " + strings.Repeat("k", MaxTextKey+1) + "\r\nversion\r\n",
			want:  "CLIENT_ERROR bad command line format\r\nVERSION " + TextVersionString + "\r\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			protoHarness(t, func(c *event.Ctx) {
				srv := NewServer(NewRCUStore(), 1)
				_, fc := feed(c, srv, []byte(tc.input))
				if string(fc.out) != tc.want {
					t.Fatalf("output:\n got %q\nwant %q", fc.out, tc.want)
				}
				if fc.closed {
					t.Fatal("malformed input killed the connection")
				}
			})
		})
	}
}

func TestTextBadDataChunkDoesNotStore(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		feed(c, srv, []byte("set k 0 0 5\r\nhelloXX"))
		if _, ok := srv.Store.Get("k"); ok {
			t.Fatal("value stored despite bad terminator")
		}
	})
}

func TestTextOversizedLineAnsweredOnceAndSwallowed(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		// An unterminated line beyond MaxTextLine: one CLIENT_ERROR, then
		// everything through the eventual newline is discarded and the
		// connection resumes.
		long := "get " + strings.Repeat("x", 2*MaxTextLine)
		sc, fc := feed(c, srv, []byte(long))
		if string(fc.out) != respBadLine {
			t.Fatalf("oversized line answered %q", fc.out)
		}
		sc.onData(c, fc, iobuf.Wrap([]byte(strings.Repeat("y", 100)+"\r\nversion\r\n")))
		want := respBadLine + "VERSION " + TextVersionString + "\r\n"
		if string(fc.out) != want {
			t.Fatalf("after swallow:\n got %q\nwant %q", fc.out, want)
		}
		if fc.closed {
			t.Fatal("oversized line killed the connection")
		}
	})
}

// TestTextMaxLengthLineAcceptedAcrossSplits: a command line of exactly
// MaxTextLine bytes is legal and must parse identically however the
// stream is segmented - including the adversarial split after its CR,
// which leaves MaxTextLine+1 unterminated bytes in the buffer.
func TestTextMaxLengthLineAcceptedAcrossSplits(t *testing.T) {
	line := "get"
	for len(line)+11 <= MaxTextLine-10 {
		line += " " + strings.Repeat("k", 10)
	}
	line += " " + strings.Repeat("k", MaxTextLine-len(line)-1)
	if len(line) != MaxTextLine {
		t.Fatalf("constructed line is %d bytes, want %d", len(line), MaxTextLine)
	}
	frame := line + "\r\nversion\r\n"
	want := respEnd + "VERSION " + TextVersionString + "\r\n"
	for _, cut := range []int{MaxTextLine - 1, MaxTextLine, MaxTextLine + 1} {
		protoHarness(t, func(c *event.Ctx) {
			srv := NewServer(NewRCUStore(), 1)
			_, fc := feed(c, srv, []byte(frame[:cut]), []byte(frame[cut:]))
			if string(fc.out) != want {
				t.Fatalf("cut=%d:\n got %q\nwant %q", cut, fc.out, want)
			}
		})
	}
}

// TestTextOversizedStorageLineSwallowsBlock: a complete storage command
// line over MaxTextLine still swallows its announced data block, so the
// block's bytes do not surface as spurious command lines.
func TestTextOversizedStorageLineSwallowsBlock(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		long := "set k 0 0 5 " + strings.Repeat("x", MaxTextLine) + "\r\nhello\r\nversion\r\n"
		_, fc := feed(c, srv, []byte(long))
		want := respBadLine + "VERSION " + TextVersionString + "\r\n"
		if string(fc.out) != want {
			t.Fatalf("oversized storage line:\n got %q\nwant %q", fc.out, want)
		}
		if srv.Store.Len() != 0 {
			t.Fatal("oversized storage line stored a value")
		}
	})
}

func TestTextOversizedValueSwallowedWithoutBuffering(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		need := MaxTextValue + 1
		sc, fc := feed(c, srv, []byte("set big 0 0 "+itoa(need)+"\r\n"))
		if string(fc.out) != respTooLarge {
			t.Fatalf("oversized value answered %q", fc.out)
		}
		// Deliver the announced block in chunks; the parser must not
		// accumulate it (rx stays bounded) and must resync after it.
		chunk := bytes.Repeat([]byte("z"), 64<<10)
		sent := 0
		for sent < need {
			n := need - sent
			if n > len(chunk) {
				n = len(chunk)
			}
			sc.onData(c, fc, iobuf.Wrap(chunk[:n]))
			if len(sc.rx) > 4096 {
				t.Fatalf("parser buffered %d bytes of a refused value", len(sc.rx))
			}
			sent += n
		}
		sc.onData(c, fc, iobuf.Wrap([]byte("\r\nversion\r\n")))
		want := respTooLarge + "VERSION " + TextVersionString + "\r\n"
		if string(fc.out) != want {
			t.Fatalf("after swallow:\n got %q\nwant %q", fc.out, want)
		}
		if srv.Store.Len() != 0 {
			t.Fatal("oversized value stored")
		}
	})
}

// TestTextAbsurdBytesDoesNotCrash: a <bytes> value near MaxInt64 must
// not overflow the swallow arithmetic (need+2 wrapping negative once
// drove the parser's index negative and panicked). No block that large
// is skipped; the connection answers and survives.
func TestTextAbsurdBytesDoesNotCrash(t *testing.T) {
	for _, n := range []string{"9223372036854775807", "9223372036854775806", "99999999999"} {
		protoHarness(t, func(c *event.Ctx) {
			srv := NewServer(NewRCUStore(), 1)
			_, fc := feed(c, srv, []byte("set k 0 0 "+n+"\r\nversion\r\n"))
			want := respTooLarge + "VERSION " + TextVersionString + "\r\n"
			if string(fc.out) != want {
				t.Fatalf("bytes=%s:\n got %q\nwant %q", n, fc.out, want)
			}
			if fc.closed {
				t.Fatalf("bytes=%s killed the connection", n)
			}
		})
	}
}

func TestTextQuitClosesConnection(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		sc, fc := feed(c, srv, []byte("set k 0 0 1\r\nv\r\nquit\r\nget k\r\n"))
		if !fc.closed {
			t.Fatal("quit did not close the connection")
		}
		if string(fc.out) != respStored {
			t.Fatalf("output %q; nothing after quit should be served", fc.out)
		}
		// Data arriving after the close must be ignored.
		sc.onData(c, fc, iobuf.Wrap([]byte("get k\r\n")))
		if string(fc.out) != respStored {
			t.Fatalf("post-quit data served: %q", fc.out)
		}
	})
}

func TestTextSplitAtEveryOffset(t *testing.T) {
	// A pipelined text frame - storage, retrieval, noreply, errors, data
	// blocks - must produce byte-identical output no matter where the
	// stream is split in two.
	frame := []byte(
		"set alpha 7 0 5\r\nhello\r\n" +
			"set beta 0 0 3 noreply\r\nxyz\r\n" +
			"get alpha beta\r\n" +
			"gets alpha\r\n" +
			"bogus\r\n" +
			"add alpha 0 0 2\r\nno\r\n" +
			"replace gamma 0 0 2\r\nno\r\n" +
			"delete beta\r\n" +
			"get beta\r\n" +
			"version\r\n")

	// One harness serves the whole sweep: each cut gets a fresh server
	// and connection, which is all the parser state there is.
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv, frame)
		want := append([]byte(nil), fc.out...)
		wantReqs := srv.Requests
		if !bytes.Contains(want, []byte("VALUE alpha 7 5\r\nhello\r\nVALUE beta 0 3\r\nxyz\r\nEND\r\n")) {
			t.Fatalf("reference output unexpected: %q", want)
		}

		for cut := 1; cut < len(frame); cut++ {
			srv := NewServer(NewRCUStore(), 1)
			_, fc := feed(c, srv, frame[:cut], frame[cut:])
			if !bytes.Equal(fc.out, want) {
				t.Fatalf("cut=%d: output diverged:\n got %q\nwant %q", cut, fc.out, want)
			}
			if srv.Requests != wantReqs {
				t.Fatalf("cut=%d: served %d requests, want %d", cut, srv.Requests, wantReqs)
			}
		}
	})
}

func TestTextByteAtATime(t *testing.T) {
	frame := []byte("set k 3 0 5\r\nworld\r\nget k\r\ndelete k\r\n")
	var want []byte
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv, frame)
		want = append([]byte(nil), fc.out...)
	})
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		sc := &serverConn{srv: srv}
		fc := &fakeConn{}
		for _, b := range frame {
			sc.onData(c, fc, iobuf.Wrap([]byte{b}))
		}
		if !bytes.Equal(fc.out, want) {
			t.Fatalf("byte-at-a-time output diverged:\n got %q\nwant %q", fc.out, want)
		}
	})
}

// TestBinaryTextParity applies one logical operation sequence through
// each protocol's parser and asserts the two stores end up identical -
// the text grammar and the binary opcodes are two encodings of the same
// Store semantics.
func TestBinaryTextParity(t *testing.T) {
	type op struct {
		verb        string // set, add, delete
		key, value  string
		flags       uint32
		expectExist bool
	}
	ops := []op{
		{verb: "set", key: "alpha", value: "one", flags: 1},
		{verb: "set", key: "beta", value: "two", flags: 2},
		{verb: "add", key: "alpha", value: "CLOBBER", flags: 9}, // exists: rejected
		{verb: "add", key: "gamma", value: "three", flags: 3},   // absent: stored
		{verb: "set", key: "beta", value: "two-v2", flags: 22},  // overwrite
		{verb: "delete", key: "gamma"},
		{verb: "delete", key: "missing"},
	}

	binSrv := NewServer(NewRCUStore(), 1)
	txtSrv := NewServer(NewRCUStore(), 1)
	protoHarness(t, func(c *event.Ctx) {
		var binFrame, txtFrame []byte
		for i, o := range ops {
			switch o.verb {
			case "set":
				binFrame = append(binFrame, BuildSet([]byte(o.key), []byte(o.value), o.flags, uint32(i))...)
				txtFrame = append(txtFrame, []byte("set "+o.key+" "+utoa(o.flags)+" 0 "+itoa(len(o.value))+"\r\n"+o.value+"\r\n")...)
			case "add":
				binFrame = append(binFrame, BuildAdd([]byte(o.key), []byte(o.value), o.flags, uint32(i), false)...)
				txtFrame = append(txtFrame, []byte("add "+o.key+" "+utoa(o.flags)+" 0 "+itoa(len(o.value))+"\r\n"+o.value+"\r\n")...)
			case "delete":
				binFrame = append(binFrame, BuildDelete([]byte(o.key), uint32(i))...)
				txtFrame = append(txtFrame, []byte("delete "+o.key+"\r\n")...)
			}
		}
		feed(c, binSrv, binFrame)
		feed(c, txtSrv, txtFrame)
	})

	binKeys, txtKeys := binSrv.Store.Keys(), txtSrv.Store.Keys()
	sort.Strings(binKeys)
	sort.Strings(txtKeys)
	if len(binKeys) != len(txtKeys) {
		t.Fatalf("store sizes diverged: binary %v, text %v", binKeys, txtKeys)
	}
	for i, k := range binKeys {
		if txtKeys[i] != k {
			t.Fatalf("key sets diverged: binary %v, text %v", binKeys, txtKeys)
		}
		be, _ := binSrv.Store.Get(k)
		te, _ := txtSrv.Store.Get(k)
		if string(be.Value) != string(te.Value) || be.Flags != te.Flags {
			t.Fatalf("entry %q diverged: binary (%q,%d), text (%q,%d)",
				k, be.Value, be.Flags, te.Value, te.Flags)
		}
	}
}

// TestProtocolAutoDetection: two connections to the same server commit
// to different protocols from their first byte, and both are served.
func TestProtocolAutoDetection(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		srv.Store.Set("k", &Entry{Value: []byte("v"), Flags: 5})

		_, binFC := feed(c, srv, BuildGet([]byte("k"), 1))
		hdrs, bodies := parseResponses(t, binFC.out)
		if len(hdrs) != 1 || hdrs[0].Status != StatusOK || string(bodies[0][GetResponseExtrasLen:]) != "v" {
			t.Fatalf("binary connection misparsed: %+v", hdrs)
		}

		_, txtFC := feed(c, srv, []byte("get k\r\n"))
		if want := "VALUE k 5 1\r\nv\r\nEND\r\n"; string(txtFC.out) != want {
			t.Fatalf("text connection: got %q, want %q", txtFC.out, want)
		}
	})
}

func TestTextGetsCASAdvances(t *testing.T) {
	protoHarness(t, func(c *event.Ctx) {
		srv := NewServer(NewRCUStore(), 1)
		_, fc := feed(c, srv, []byte(
			"set k 0 0 2\r\nv1\r\ngets k\r\nset k 0 0 2\r\nv2\r\ngets k\r\n"))
		want := "STORED\r\nVALUE k 0 2 1\r\nv1\r\nEND\r\n" +
			"STORED\r\nVALUE k 0 2 2\r\nv2\r\nEND\r\n"
		if string(fc.out) != want {
			t.Fatalf("gets CAS sequence:\n got %q\nwant %q", fc.out, want)
		}
	})
}

// TestTextSessionOverNetwork runs the byte-exactness check end-to-end:
// a text-mode client against a live server over the simulated testbed
// network, including a noreply round.
func TestTextSessionOverNetwork(t *testing.T) {
	pair := testbed.NewPair(testbed.EbbRT, 1, 2)
	srv := NewServer(NewRCUStore(), 1)
	if err := srv.Serve(pair.Server); err != nil {
		t.Fatal(err)
	}
	var responses []byte
	pair.Client.Mgrs()[0].Spawn(func(c *event.Ctx) {
		pair.Client.Dial(c, testbed.ServerIP, Port, appnet.Callbacks{
			OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
				responses = append(responses, payload.CopyOut()...)
			},
		}, func(c *event.Ctx, conn appnet.Conn) {
			conn.Send(c, iobuf.Wrap([]byte(
				"set net:key 42 0 9\r\nnet-value\r\n"+
					"set net:quiet 0 0 2 noreply\r\nhi\r\n"+
					"get net:key net:quiet\r\n"+
					"delete net:quiet\r\n"+
					"get net:quiet\r\n")))
		})
	})
	pair.K.RunUntil(100 * sim.Millisecond)

	want := "STORED\r\n" +
		"VALUE net:key 42 9\r\nnet-value\r\nVALUE net:quiet 0 2\r\nhi\r\nEND\r\n" +
		"DELETED\r\n" +
		"END\r\n"
	if string(responses) != want {
		t.Fatalf("network session:\n got %q\nwant %q", responses, want)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

func utoa(n uint32) string { return strconv.FormatUint(uint64(n), 10) }
