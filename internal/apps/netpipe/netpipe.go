// Package netpipe ports the NetPIPE ping-pong benchmark (paper §4.1.3,
// Figure 4): the client sends a fixed-size message, the server echoes it
// back after receiving it completely, and the harness reports one-way
// latency and goodput as a function of message size.
package netpipe

import (
	"fmt"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/sim"
	"ebbrt/internal/testbed"
)

// Port is the NetPIPE server port.
const Port = 5002

// Point is one measurement of the Figure 4 curve.
type Point struct {
	Size        int
	OneWay      sim.Time
	GoodputMbps float64
}

// Serve installs the echo-on-complete-message server.
func Serve(rt appnet.Runtime, sizes []int) error {
	return rt.Listen(Port, func(conn appnet.Conn) appnet.Callbacks {
		s := &serverConn{expect: -1}
		return appnet.Callbacks{
			OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
				s.onData(c, conn, payload)
			},
		}
	})
}

// serverConn accumulates one message and echoes it. The message size is
// carried in the first 4 bytes of each message (NetPIPE peers agree on the
// schedule; an explicit length keeps the port self-describing).
type serverConn struct {
	expect int // -1: awaiting header
	have   int
	hdr    []byte
}

func (s *serverConn) onData(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
	n := payload.ComputeChainDataLength()
	r := payload.Reader()
	for n > 0 {
		if s.expect < 0 {
			// Collect the 4-byte length header (may straddle deliveries).
			need := 4 - len(s.hdr)
			take := need
			if take > n {
				take = n
			}
			b, _ := r.ReadBytes(take)
			s.hdr = append(s.hdr, b...)
			n -= take
			if len(s.hdr) < 4 {
				return
			}
			s.expect = int(uint32(s.hdr[0])<<24 | uint32(s.hdr[1])<<16 | uint32(s.hdr[2])<<8 | uint32(s.hdr[3]))
			s.hdr = s.hdr[:0]
			s.have = 0
		}
		take := s.expect - s.have
		if take > n {
			take = n
		}
		if take > 0 {
			_ = r.Skip(take)
			s.have += take
			n -= take
		}
		if s.have == s.expect {
			// Complete message: echo it (header + body).
			size := s.expect
			s.expect = -1
			s.have = 0
			conn.Send(c, buildMessage(size))
		}
	}
}

// buildMessage creates a length-prefixed message of the given body size.
func buildMessage(size int) *iobuf.IOBuf {
	buf := iobuf.New(4 + size)
	hdr := buf.Append(4)
	hdr[0], hdr[1], hdr[2], hdr[3] = byte(size>>24), byte(size>>16), byte(size>>8), byte(size)
	body := buf.Append(size)
	for i := range body {
		body[i] = byte(i)
	}
	return buf
}

// client drives the ping-pong schedule.
type client struct {
	conn    appnet.Conn
	sizes   []int
	reps    int
	warmup  int
	sizeIdx int
	rep     int
	expect  int
	have    int
	hdr     []byte
	sentAt  sim.Time
	rec     []*sim.Recorder
	done    bool
}

func (cl *client) nextPing(c *event.Ctx) {
	if cl.sizeIdx >= len(cl.sizes) {
		cl.done = true
		cl.conn.Close(c)
		return
	}
	size := cl.sizes[cl.sizeIdx]
	cl.expect = size
	cl.have = 0
	cl.sentAt = c.Now()
	cl.conn.Send(c, buildMessage(size))
}

func (cl *client) onData(c *event.Ctx, payload *iobuf.IOBuf) {
	n := payload.ComputeChainDataLength()
	r := payload.Reader()
	for n > 0 {
		if len(cl.hdr) < 4 {
			need := 4 - len(cl.hdr)
			take := need
			if take > n {
				take = n
			}
			b, _ := r.ReadBytes(take)
			cl.hdr = append(cl.hdr, b...)
			n -= take
			if len(cl.hdr) < 4 {
				return
			}
		}
		take := cl.expect - cl.have
		if take > n {
			take = n
		}
		if take > 0 {
			_ = r.Skip(take)
			cl.have += take
			n -= take
		}
		if cl.have == cl.expect {
			rtt := c.Now() - cl.sentAt
			cl.hdr = cl.hdr[:0]
			if cl.rep >= cl.warmup {
				cl.rec[cl.sizeIdx].Add(rtt / 2)
			}
			cl.rep++
			if cl.rep == cl.reps+cl.warmup {
				cl.rep = 0
				cl.sizeIdx++
			}
			cl.nextPing(c)
		}
	}
}

// Run executes the NetPIPE sweep on a symmetric testbed of the given kind
// and returns one point per message size.
func Run(kind testbed.ServerKind, sizes []int, reps int) ([]Point, error) {
	return RunWithStack(kind, sizes, reps, 0)
}

// RunWithStack is Run with the zero-copy ablation knob: a non-zero
// forceCopyPerByte (ns/B) makes the native stack pay an application-
// boundary copy in each direction, like a conventional socket layer.
func RunWithStack(kind testbed.ServerKind, sizes []int, reps int, forceCopyPerByte float64) ([]Point, error) {
	pair := testbed.NewSymmetricPair(kind, 1)
	if forceCopyPerByte > 0 {
		for _, rt := range []appnet.Runtime{pair.Client, pair.Server} {
			if native, ok := rt.(*appnet.Native); ok {
				native.Stack.Cfg.ForceCopyPerByte = forceCopyPerByte
			}
		}
	}
	if err := Serve(pair.Server, sizes); err != nil {
		return nil, err
	}
	cl := &client{
		sizes:  sizes,
		reps:   reps,
		warmup: 2,
		rec:    make([]*sim.Recorder, len(sizes)),
	}
	for i := range cl.rec {
		cl.rec[i] = sim.NewRecorder(reps)
	}
	var dialErr error
	pair.Client.Mgrs()[0].Spawn(func(c *event.Ctx) {
		pair.Client.Dial(c, testbed.ServerIP, Port, appnet.Callbacks{
			OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
				cl.onData(c, payload)
			},
			OnClose: func(c *event.Ctx, conn appnet.Conn, err error) {
				if err != nil && !cl.done {
					dialErr = err
				}
			},
		}, func(c *event.Ctx, conn appnet.Conn) {
			cl.conn = conn
			cl.nextPing(c)
		})
	})
	// Generous bound: the largest size at the slowest profile.
	pair.K.RunUntil(60 * sim.Second)
	if dialErr != nil {
		return nil, dialErr
	}
	if !cl.done {
		return nil, fmt.Errorf("netpipe: sweep did not finish (size index %d/%d)", cl.sizeIdx, len(sizes))
	}
	points := make([]Point, len(sizes))
	for i, size := range sizes {
		oneWay := cl.rec[i].Mean()
		points[i] = Point{
			Size:        size,
			OneWay:      oneWay,
			GoodputMbps: float64(size*8) / (float64(oneWay) / 1e9) / 1e6,
		}
	}
	return points, nil
}

// DefaultSizes is the Figure 4 sweep: 64 B through 800 kB.
func DefaultSizes() []int {
	return []int{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768,
		65536, 131072, 196608, 262144, 393216, 524288, 655360, 786432}
}
