package netpipe

import (
	"testing"

	"ebbrt/internal/sim"
	"ebbrt/internal/testbed"
)

func TestSmallMessageLatencyOrdering(t *testing.T) {
	sizes := []int{64}
	ebb, err := Run(testbed.EbbRT, sizes, 10)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := Run(testbed.LinuxVM, sizes, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ebb[0].OneWay <= 0 || lin[0].OneWay <= 0 {
		t.Fatal("non-positive latency")
	}
	// Paper: 9.7us (EbbRT) vs 15.9us (Linux) one way for 64B. The shape
	// requirement: EbbRT clearly faster.
	if ebb[0].OneWay >= lin[0].OneWay {
		t.Fatalf("EbbRT %v should beat Linux %v at 64B", ebb[0].OneWay, lin[0].OneWay)
	}
	t.Logf("64B one-way: EbbRT=%v Linux=%v", ebb[0].OneWay, lin[0].OneWay)
}

func TestLargeMessageGoodputOrdering(t *testing.T) {
	sizes := []int{262144}
	ebb, err := Run(testbed.EbbRT, sizes, 4)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := Run(testbed.LinuxVM, sizes, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ebb[0].GoodputMbps <= lin[0].GoodputMbps {
		t.Fatalf("EbbRT %.0f Mbps should beat Linux %.0f Mbps at 256kB",
			ebb[0].GoodputMbps, lin[0].GoodputMbps)
	}
	if ebb[0].GoodputMbps > 10000 {
		t.Fatalf("goodput %.0f Mbps exceeds the 10GbE line rate", ebb[0].GoodputMbps)
	}
	t.Logf("256kB goodput: EbbRT=%.0f Linux=%.0f Mbps", ebb[0].GoodputMbps, lin[0].GoodputMbps)
}

func TestGoodputMonotoneInSize(t *testing.T) {
	sizes := []int{64, 1024, 16384, 131072}
	pts, err := Run(testbed.EbbRT, sizes, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].GoodputMbps <= pts[i-1].GoodputMbps {
			t.Fatalf("goodput not increasing with size: %+v", pts)
		}
	}
}

func TestEchoCorrectAcrossProfiles(t *testing.T) {
	for _, kind := range []testbed.ServerKind{testbed.EbbRT, testbed.LinuxVM, testbed.OSv} {
		pts, err := Run(kind, []int{64, 4096}, 3)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for _, p := range pts {
			if p.OneWay <= 0 || p.OneWay > sim.Time(100*sim.Millisecond) {
				t.Fatalf("%v: implausible latency %v for %d B", kind, p.OneWay, p.Size)
			}
		}
	}
}
