// Package audit is the cluster's typed event pipeline: every state
// machine that used to change state silently - TCP connections, the
// health monitor, the migrator, the quorum client, the hot-key cache -
// publishes its transitions as typed events through a shared Log with
// pluggable sinks.
//
// Two sinks cover the two consumers: a bounded in-memory Ring that
// chaos tests assert causal sequences against (expect.go's matcher
// DSL), and a JSON-lines FileSink that CI runs upload as an artifact so
// a failed run's fault timeline can be read without re-running it.
//
// Emission is nil-safe and cheap when disabled: a nil *Log ignores
// Emit, and every hot-path call site guards with `if a := x.Audit; a !=
// nil` so no Fields map is ever built unless a sink is listening.
package audit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"ebbrt/internal/sim"
)

// Kind names one event type. The dotted prefix groups kinds by the
// emitting subsystem.
type Kind string

// Event kinds, one block per emitting subsystem.
const (
	// internal/netstack: TCP connection state machine and loss recovery.
	TCPState          Kind = "tcp.state"
	TCPRetransmit     Kind = "tcp.retransmit"
	TCPFastRetransmit Kind = "tcp.fast_retransmit"
	TCPPersistProbe   Kind = "tcp.persist_probe"

	// internal/cluster/health.go and cluster.go: failure detection and
	// ring membership. Missed beats come from the monitor; evictions and
	// restores are emitted by the membership change itself, so they are
	// observed whether the monitor or an operator triggered them.
	HealthMissedBeat Kind = "health.missed_beat"
	HealthEvicted    Kind = "health.evicted"
	HealthRestored   Kind = "health.restored"

	// internal/cluster/migrate.go: the migration job state machine.
	MigrationStart   Kind = "migration.start"
	MigrationFence   Kind = "migration.fence"
	MigrationCutover Kind = "migration.cutover"
	MigrationAbort   Kind = "migration.abort"
	MigrationDone    Kind = "migration.done"

	// internal/cluster/client.go: quorum and failover outcomes.
	QuorumWriteFail Kind = "client.quorum_fail"
	ReadRepair      Kind = "client.read_repair"
	FailoverRead    Kind = "client.failover_read"

	// internal/cluster/batch.go: one multi-op read round left a
	// frontend core for a backend (fields: backend, ops, bytes).
	FrontendBatchFlush Kind = "frontend.batch_flush"

	// internal/cluster/client.go hot-key cache coherence.
	HotKeyPromoted    Kind = "hotkey.promoted"
	HotKeyInvalidated Kind = "hotkey.invalidated"

	// Fault-injection markers: tests and experiment harnesses record the
	// faults they inject into the same timeline they assert over, so a
	// sequence can anchor at its cause.
	NodeKilled  Kind = "chaos.kill"
	NodeRevived Kind = "chaos.revive"
)

// Fields carries an event's kind-specific payload. Values must be
// JSON-encodable; keep them small (ints, short strings).
type Fields map[string]any

// Event is one state change: when (virtual time), where (hosted node
// id; -1 when no node owns the event), what, and the kind-specific
// details.
type Event struct {
	Time   sim.Time `json:"t"`
	Node   int      `json:"node"`
	Kind   Kind     `json:"kind"`
	Fields Fields   `json:"fields,omitempty"`
}

// Sink consumes emitted events. Implementations used from tests that
// read concurrently with the simulation must synchronize internally
// (Ring does).
type Sink interface {
	Emit(e Event)
}

// Log fans emitted events out to its sinks. A nil *Log drops
// everything, so subsystems hold one unconditionally and never branch.
// Attach sinks before the simulation runs; emission itself takes no
// lock.
type Log struct {
	sinks []Sink
}

// NewLog creates a log over the given sinks.
func NewLog(sinks ...Sink) *Log { return &Log{sinks: sinks} }

// Attach adds a sink. Not safe concurrently with Emit; wire sinks at
// setup time.
func (l *Log) Attach(s Sink) { l.sinks = append(l.sinks, s) }

// Emit publishes one event to every sink. Nil-safe.
func (l *Log) Emit(t sim.Time, node int, kind Kind, fields Fields) {
	if l == nil {
		return
	}
	e := Event{Time: t, Node: node, Kind: kind, Fields: fields}
	for _, s := range l.sinks {
		s.Emit(e)
	}
}

// Ring is the bounded in-memory sink tests assert against: the last
// `cap` events, oldest overwritten first. All methods are
// mutex-guarded, so a test goroutine may snapshot while the simulation
// goroutine emits.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	start   int    // index of the oldest buffered event
	n       int    // buffered count
	total   uint64 // events ever emitted
	dropped uint64 // events overwritten
}

// NewRing creates a ring holding the most recent capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == len(r.buf) {
		r.buf[r.start] = e
		r.start = (r.start + 1) % len(r.buf)
		r.dropped++
	} else {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
	}
	r.total++
}

// Len reports the buffered event count.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Total reports how many events were ever emitted into the ring; use it
// as the mark for SnapshotSince.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped reports how many events were overwritten before being read.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Snapshot copies the buffered events, oldest first.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked(0)
}

// SnapshotSince copies the buffered events emitted at or after the
// given Total() mark, oldest first. Events already overwritten are
// gone; callers polling promptly (RunUntilMatch) never miss any.
func (r *Ring) SnapshotSince(mark uint64) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	skip := 0
	if first := r.total - uint64(r.n); mark > first {
		skip = int(mark - first)
		if skip > r.n {
			skip = r.n
		}
	}
	return r.snapshotLocked(skip)
}

func (r *Ring) snapshotLocked(skip int) []Event {
	out := make([]Event, 0, r.n-skip)
	for i := skip; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

// FileSink writes events as JSON lines - one object per event, in
// emission order - the artifact format CI uploads next to the
// BENCH_*.json reports.
type FileSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	err error
}

// NewFileSink wraps an open writer.
func NewFileSink(w io.Writer) *FileSink {
	return &FileSink{w: bufio.NewWriter(w)}
}

// CreateFileSink creates (truncating) the file at path.
func CreateFileSink(path string) (*FileSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s := NewFileSink(f)
	s.c = f
	return s, nil
}

// Emit implements Sink. The first write error sticks and is reported by
// Close; later events are dropped.
func (s *FileSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(append(b, '\n')); err != nil {
		s.err = err
	}
}

// Close flushes and closes the underlying file, reporting the first
// error seen anywhere in the sink's lifetime.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if s.c != nil {
		if err := s.c.Close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// ReadEvents parses a JSON-lines event stream back into events - the
// round-trip benchguard uses to gate on a run's event log.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("audit: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
