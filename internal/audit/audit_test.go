package audit

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"ebbrt/internal/sim"
)

func mkEvent(t sim.Time, node int, kind Kind) Event {
	return Event{Time: t, Node: node, Kind: kind}
}

func TestRingOverwritesOldestWhenFull(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(mkEvent(sim.Time(i), i, TCPState))
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len() = %d, want 4", got)
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("Total() = %d, want 10", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped() = %d, want 6", got)
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot() has %d events, want 4", len(snap))
	}
	for i, e := range snap {
		if want := 6 + i; e.Node != want {
			t.Errorf("snap[%d].Node = %d, want %d (oldest-first, newest retained)", i, e.Node, want)
		}
	}
}

func TestRingSnapshotSince(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Emit(mkEvent(sim.Time(i), i, TCPState))
	}
	mark := r.Total()
	for i := 5; i < 8; i++ {
		r.Emit(mkEvent(sim.Time(i), i, TCPState))
	}
	snap := r.SnapshotSince(mark)
	if len(snap) != 3 {
		t.Fatalf("SnapshotSince(%d) has %d events, want 3", mark, len(snap))
	}
	for i, e := range snap {
		if want := 5 + i; e.Node != want {
			t.Errorf("snap[%d].Node = %d, want %d", i, e.Node, want)
		}
	}
	// A mark older than the retained window degrades to the full buffer.
	for i := 8; i < 30; i++ {
		r.Emit(mkEvent(sim.Time(i), i, TCPState))
	}
	if got := len(r.SnapshotSince(mark)); got != 8 {
		t.Fatalf("stale-mark SnapshotSince returned %d events, want the full buffer of 8", got)
	}
}

// TestRingConcurrentEmit drives emitters against snapshotters under the
// race detector: the Ring is the one sink read from test goroutines
// while the simulation goroutine emits.
func TestRingConcurrentEmit(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Emit(mkEvent(sim.Time(i), g, HealthMissedBeat))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			r.Snapshot()
			r.SnapshotSince(uint64(i))
			r.Len()
			r.Dropped()
		}
	}()
	wg.Wait()
	if got := r.Total(); got != 2000 {
		t.Fatalf("Total() = %d, want 2000", got)
	}
}

func TestNilLogAndEmptyLogAreSafe(t *testing.T) {
	var l *Log
	l.Emit(0, 0, TCPState, nil) // must not panic
	NewLog().Emit(0, 0, TCPState, nil)
}

func TestLogFansOutToAllSinks(t *testing.T) {
	r1, r2 := NewRing(4), NewRing(4)
	l := NewLog(r1)
	l.Attach(r2)
	l.Emit(7, 3, HealthEvicted, Fields{"backend": 1})
	for i, r := range []*Ring{r1, r2} {
		snap := r.Snapshot()
		if len(snap) != 1 || snap[0].Kind != HealthEvicted || snap[0].Node != 3 {
			t.Fatalf("sink %d got %+v, want one health.evicted on node 3", i, snap)
		}
	}
}

// TestFileSinkGoldenFormat pins the JSON-lines artifact format: one
// compact object per line with t/node/kind and optional fields.
func TestFileSinkGoldenFormat(t *testing.T) {
	var buf bytes.Buffer
	s := NewFileSink(&buf)
	s.Emit(Event{Time: 1500, Node: 2, Kind: HealthEvicted, Fields: Fields{"backend": 1}})
	s.Emit(Event{Time: 2000, Node: 0, Kind: MigrationDone})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	want := `{"t":1500,"node":2,"kind":"health.evicted","fields":{"backend":1}}
{"t":2000,"node":0,"kind":"migration.done"}
`
	if got := buf.String(); got != want {
		t.Fatalf("file sink output:\n%s\nwant:\n%s", got, want)
	}
}

func TestFileSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewFileSink(&buf)
	in := []Event{
		{Time: 1, Node: 0, Kind: NodeKilled, Fields: Fields{"backend": float64(2)}},
		{Time: 2, Node: 1, Kind: HealthMissedBeat, Fields: Fields{"misses": float64(1)}},
		{Time: 3, Node: 1, Kind: HealthEvicted},
	}
	for _, e := range in {
		s.Emit(e)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	out, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip returned %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Time != in[i].Time || out[i].Node != in[i].Node || out[i].Kind != in[i].Kind {
			t.Errorf("event %d round-tripped to %+v, want %+v", i, out[i], in[i])
		}
		for k, v := range in[i].Fields {
			if out[i].Fields[k] != v {
				t.Errorf("event %d field %q = %v, want %v", i, k, out[i].Fields[k], v)
			}
		}
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	if _, err := ReadEvents(strings.NewReader("{\"t\":1}\nnot json\n")); err == nil {
		t.Fatal("ReadEvents accepted a malformed line")
	}
}

func seqRing(events ...Event) *Ring {
	r := NewRing(len(events) + 1)
	for _, e := range events {
		r.Emit(e)
	}
	return r
}

func TestSeqMatchesOrderedSubsequence(t *testing.T) {
	r := seqRing(
		mkEvent(1, 0, NodeKilled),
		mkEvent(2, 9, TCPRetransmit), // unrelated noise is skipped
		mkEvent(3, 1, HealthMissedBeat),
		mkEvent(4, 1, HealthMissedBeat),
		mkEvent(5, 9, TCPState),
		mkEvent(6, 1, HealthMissedBeat),
		mkEvent(7, 1, HealthEvicted),
		mkEvent(8, 0, FailoverRead),
	)
	err := Expect(r).Seq(
		On(NodeKilled),
		On(HealthMissedBeat).OnNode(1).Times(3),
		On(HealthEvicted),
		On(FailoverRead),
	)
	if err != nil {
		t.Fatalf("Seq: %v", err)
	}
}

func TestSeqRejectsOutOfOrder(t *testing.T) {
	r := seqRing(
		mkEvent(1, 1, HealthEvicted),
		mkEvent(2, 0, NodeKilled),
	)
	err := Expect(r).Seq(On(NodeKilled), On(HealthEvicted))
	if err == nil {
		t.Fatal("Seq accepted an eviction that preceded the kill")
	}
	if !strings.Contains(err.Error(), "step 1") || !strings.Contains(err.Error(), string(HealthEvicted)) {
		t.Fatalf("Seq error does not name the failing step: %v", err)
	}
}

func TestSeqRejectsMissingRepetition(t *testing.T) {
	r := seqRing(
		mkEvent(1, 1, HealthMissedBeat),
		mkEvent(2, 1, HealthMissedBeat),
	)
	err := Expect(r).Seq(On(HealthMissedBeat).Times(3))
	if err == nil {
		t.Fatal("Seq accepted 2 missed beats where 3 were required")
	}
	if !strings.Contains(err.Error(), "repetition 3/3") {
		t.Fatalf("Seq error does not report the repetition: %v", err)
	}
}

func TestMatcherFilterAndCounts(t *testing.T) {
	r := seqRing(
		Event{Time: 1, Node: 1, Kind: HealthMissedBeat, Fields: Fields{"misses": 1}},
		Event{Time: 2, Node: 1, Kind: HealthMissedBeat, Fields: Fields{"misses": 2}},
		Event{Time: 3, Node: 2, Kind: HealthMissedBeat, Fields: Fields{"misses": 1}},
	)
	x := Expect(r)
	if got := x.Count(On(HealthMissedBeat)); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	if got := x.Count(On(HealthMissedBeat).OnNode(1)); got != 2 {
		t.Fatalf("Count(node 1) = %d, want 2", got)
	}
	twice := On(HealthMissedBeat).Filter(func(e Event) bool {
		v, _ := e.Fields["misses"].(int)
		return v == 2
	})
	e, ok := x.First(twice)
	if !ok || e.Time != 2 {
		t.Fatalf("First(misses=2) = %+v ok=%v, want the t=2 event", e, ok)
	}
	last, ok := x.Last(On(HealthMissedBeat))
	if !ok || last.Time != 3 {
		t.Fatalf("Last = %+v ok=%v, want the t=3 event", last, ok)
	}
}

func TestSeqErrorDumpsTrace(t *testing.T) {
	r := seqRing(mkEvent(1, 4, TCPRetransmit))
	err := Expect(r).Seq(On(MigrationAbort))
	if err == nil {
		t.Fatal("Seq matched a kind that never occurred")
	}
	if !strings.Contains(err.Error(), "tcp.retransmit") {
		t.Fatalf("failure should dump the trace timeline, got: %v", err)
	}
}

func TestExpectEventsOverParsedLog(t *testing.T) {
	var buf bytes.Buffer
	s := NewFileSink(&buf)
	s.Emit(mkEvent(1, 0, NodeKilled))
	s.Emit(mkEvent(2, 1, HealthEvicted))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := ExpectEvents(events).Seq(On(NodeKilled), On(HealthEvicted)); err != nil {
		t.Fatalf("Seq over a parsed events.jsonl: %v", err)
	}
}

func TestMatcherString(t *testing.T) {
	got := On(HealthMissedBeat).OnNode(3).Times(2).String()
	want := fmt.Sprintf("%s@node3×2", HealthMissedBeat)
	if got != want {
		t.Fatalf("Matcher.String() = %q, want %q", got, want)
	}
}
