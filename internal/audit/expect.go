package audit

import (
	"fmt"
	"strings"

	"ebbrt/internal/sim"
)

// Matcher selects events by kind and, optionally, node, repetition and
// an arbitrary predicate. Build one with On and refine it fluently:
//
//	audit.On(audit.HealthMissedBeat).OnNode(3).Times(3)
type Matcher struct {
	// Kind to match ("" matches any kind).
	Kind Kind
	// Node to match (AnyNode matches any).
	Node int
	// Count is the consecutive repetition Seq requires (0 means 1).
	Count int
	// Where, when non-nil, further restricts matching events.
	Where func(Event) bool
}

// AnyNode is the Matcher.Node wildcard.
const AnyNode = -1 << 30

// On starts a matcher for the given kind on any node.
func On(kind Kind) Matcher { return Matcher{Kind: kind, Node: AnyNode} }

// OnNode restricts the matcher to events stamped with the node id.
func (m Matcher) OnNode(node int) Matcher {
	m.Node = node
	return m
}

// Times requires n matching events in sequence (not necessarily
// adjacent; Seq skips unrelated events between them).
func (m Matcher) Times(n int) Matcher {
	m.Count = n
	return m
}

// Filter adds a predicate over the event's fields.
func (m Matcher) Filter(fn func(Event) bool) Matcher {
	m.Where = fn
	return m
}

// Match reports whether the matcher accepts the event.
func (m Matcher) Match(e Event) bool {
	if m.Kind != "" && e.Kind != m.Kind {
		return false
	}
	if m.Node != AnyNode && e.Node != m.Node {
		return false
	}
	return m.Where == nil || m.Where(e)
}

func (m Matcher) String() string {
	s := string(m.Kind)
	if m.Node != AnyNode {
		s += fmt.Sprintf("@node%d", m.Node)
	}
	if m.Count > 1 {
		s += fmt.Sprintf("×%d", m.Count)
	}
	return s
}

// Expectation matches event sequences over a snapshot of a run's
// events.
type Expectation struct {
	events []Event
}

// Expect snapshots the ring for sequence assertions:
//
//	if err := audit.Expect(ring).Seq(
//	        audit.On(audit.NodeKilled),
//	        audit.On(audit.HealthMissedBeat).Times(3),
//	        audit.On(audit.HealthEvicted),
//	        audit.On(audit.FailoverRead),
//	); err != nil {
//	        t.Fatal(err)
//	}
func Expect(r *Ring) Expectation { return Expectation{events: r.Snapshot()} }

// ExpectEvents builds an expectation over an explicit event slice (a
// parsed events.jsonl, or a SnapshotSince window).
func ExpectEvents(events []Event) Expectation { return Expectation{events: events} }

// Seq asserts that the matchers occur in order as a subsequence of the
// event stream: each matcher (expanded by Times) must match an event
// strictly after the previous matcher's match; unrelated events in
// between are ignored. The returned error names the first unsatisfied
// matcher and dumps the trace tail so the failure reads as a timeline.
func (x Expectation) Seq(ms ...Matcher) error {
	pos := 0
	for mi, m := range ms {
		count := m.Count
		if count <= 0 {
			count = 1
		}
		for rep := 0; rep < count; rep++ {
			found := -1
			for i := pos; i < len(x.events); i++ {
				if m.Match(x.events[i]) {
					found = i
					break
				}
			}
			if found < 0 {
				return fmt.Errorf("audit: sequence broke at step %d (%s), repetition %d/%d: no matching event after index %d\ntrace:\n%s",
					mi, m, rep+1, count, pos, x.dump())
			}
			pos = found + 1
		}
	}
	return nil
}

// Count reports how many events match m.
func (x Expectation) Count(m Matcher) int {
	n := 0
	for _, e := range x.events {
		if m.Match(e) {
			n++
		}
	}
	return n
}

// First returns the earliest matching event.
func (x Expectation) First(m Matcher) (Event, bool) {
	for _, e := range x.events {
		if m.Match(e) {
			return e, true
		}
	}
	return Event{}, false
}

// Last returns the latest matching event.
func (x Expectation) Last(m Matcher) (Event, bool) {
	for i := len(x.events) - 1; i >= 0; i-- {
		if m.Match(x.events[i]) {
			return x.events[i], true
		}
	}
	return Event{}, false
}

// dump renders the snapshot compactly for sequence-failure messages.
func (x Expectation) dump() string {
	var b strings.Builder
	const tail = 64
	start := 0
	if len(x.events) > tail {
		start = len(x.events) - tail
		fmt.Fprintf(&b, "  ... %d earlier events elided ...\n", start)
	}
	for i := start; i < len(x.events); i++ {
		e := x.events[i]
		fmt.Fprintf(&b, "  [%d] t=%dus node=%d %s %v\n", i, int64(e.Time)/1000, e.Node, e.Kind, e.Fields)
	}
	if len(x.events) == 0 {
		b.WriteString("  (no events)\n")
	}
	return b.String()
}

// RunUntilMatch advances the kernel in fine-grained steps until an
// event matching m is emitted into the ring at or after the Total()
// mark, or the deadline passes. It returns the matching event and
// whether one arrived. This is how chaos tests wait for "the eviction
// happened" instead of sleeping a fixed slack window: the kernel stops
// within one step of the event, and a suppressed event fails the test
// at the deadline instead of silently passing.
func RunUntilMatch(k *sim.Kernel, r *Ring, m Matcher, mark uint64, deadline sim.Time) (Event, bool) {
	const step = 250 * sim.Microsecond
	for {
		for _, e := range r.SnapshotSince(mark) {
			if m.Match(e) {
				return e, true
			}
		}
		now := k.Now()
		if now >= deadline {
			return Event{}, false
		}
		next := now + step
		if next > deadline {
			next = deadline
		}
		k.RunUntil(next)
	}
}
