package cluster

import (
	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/audit"
	"ebbrt/internal/event"
)

// DefaultMaxBatch is the per-backend coalescing limit: a backend's
// pending reads flush early once this many have queued, bounding both
// the round's wire size and the latency the last-enqueued key waits.
const DefaultMaxBatch = 16

// BatchOptions tunes the client's read-submission queue. Every read -
// Get, GetMulti, failover retries, revalidation probes - passes through
// one per-core, per-backend coalescing queue; these options decide how
// aggressively same-backend reads share a wire round.
type BatchOptions struct {
	// MaxBatch caps one backend's reads per pipelined round (default
	// DefaultMaxBatch). 1 disables coalescing entirely - every read goes
	// out as its own plain GET, the pre-batching behavior - which is the
	// per-op ablation arm of the FrontendScaling experiment.
	MaxBatch int
	// FlushEndOfTurn delays the flush to a spawned event at the end of
	// the current event-loop turn, so independent submissions arriving
	// within one turn coalesce. The default (false) flushes when the
	// outermost public call completes: only keys of one GetMulti share a
	// round, and a bare Get is wire-identical to the per-op spine.
	FlushEndOfTurn bool
}

// WithDefaults resolves unset fields.
func (o BatchOptions) WithDefaults() BatchOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	return o
}

// BatchStats counts the submission queue's behavior, summed across the
// client's per-core representatives by Client.BatchStats.
type BatchStats struct {
	// Ops counts reads submitted through the queue.
	Ops uint64
	// Rounds counts wire rounds issued (flushes of a non-empty backend
	// queue); Singles of those were 1-op rounds (plain GET, no fence)
	// and Batches were multi-op GETQ+Noop rounds.
	Rounds  uint64
	Singles uint64
	Batches uint64
	// QuietMisses counts batched reads resolved as misses by the round's
	// fence - the server stayed quiet about them.
	QuietMisses uint64
	// OpsPerBatch is a histogram of round sizes: 1, 2-3, 4-7, 8-15, 16+.
	OpsPerBatch [5]uint64
}

// OpsPerBatchLabels names BatchStats.OpsPerBatch's buckets.
var OpsPerBatchLabels = [5]string{"1", "2-3", "4-7", "8-15", "16+"}

func (s *BatchStats) noteRound(n int) {
	s.Rounds++
	switch {
	case n == 1:
		s.Singles++
		s.OpsPerBatch[0]++
	case n <= 3:
		s.Batches++
		s.OpsPerBatch[1]++
	case n <= 7:
		s.Batches++
		s.OpsPerBatch[2]++
	case n <= 15:
		s.Batches++
		s.OpsPerBatch[3]++
	default:
		s.Batches++
		s.OpsPerBatch[4]++
	}
}

// Accumulate folds another counter group into s (summing per-core or
// per-client stats).
func (s *BatchStats) Accumulate(o BatchStats) {
	s.Ops += o.Ops
	s.Rounds += o.Rounds
	s.Singles += o.Singles
	s.Batches += o.Batches
	s.QuietMisses += o.QuietMisses
	for i := range s.OpsPerBatch {
		s.OpsPerBatch[i] += o.OpsPerBatch[i]
	}
}

// pendingRead is one read waiting in a core's coalescing queue.
type pendingRead struct {
	key []byte
	cb  Callback
}

// readQueue is one core's read-submission queue: reads accumulate per
// backend while a batch scope (an outermost Get/GetMulti call) is open,
// then flush as one pipelined round per backend. Per-core state like
// everything else in the representative - no locks.
type readQueue struct {
	opt     BatchOptions
	pending map[int][]pendingRead
	order   []int // backends with queued reads, in first-enqueue order
	depth   int   // open batch scopes
	armed   bool  // an end-of-turn flush event is already spawned
	stats   BatchStats
}

func newReadQueue(opt BatchOptions) *readQueue {
	return &readQueue{opt: opt, pending: map[int][]pendingRead{}}
}

// beginBatch opens a batch scope: reads submitted until the matching
// endBatch coalesce instead of flushing individually. Scopes nest
// (failover inside a GetMulti member), so only the outermost close
// triggers the flush.
func (r *clientRep) beginBatch() { r.queue.depth++ }

func (r *clientRep) endBatch(c *event.Ctx) {
	r.queue.depth--
	if r.queue.depth == 0 && !r.queue.opt.FlushEndOfTurn {
		r.flushReads(c)
	}
}

// submitRead is the single entry point for every read the client issues:
// it queues the key toward its backend and flushes per BatchOptions.
// Reads submitted outside any batch scope (failover retries, repair
// probes landing from response callbacks) flush immediately, so a
// retry's latency is never held hostage to a future batch.
func (r *clientRep) submitRead(c *event.Ctx, backend int, key []byte, cb Callback) {
	q := r.queue
	q.stats.Ops++
	if _, ok := q.pending[backend]; !ok {
		q.order = append(q.order, backend)
	}
	q.pending[backend] = append(q.pending[backend], pendingRead{key: append([]byte(nil), key...), cb: cb})
	if len(q.pending[backend]) >= q.opt.MaxBatch {
		r.flushBackend(c, backend)
		return
	}
	if q.opt.FlushEndOfTurn {
		if !q.armed {
			q.armed = true
			r.mgr.Spawn(func(c *event.Ctx) {
				q.armed = false
				r.flushReads(c)
			})
		}
		return
	}
	if q.depth == 0 {
		r.flushReads(c)
	}
}

// flushReads drains every backend's queue. Callbacks fired inside a
// flush (a dead backend failing its members synchronously) may enqueue
// and recursively flush; flushBackend removes its backend from the
// order list before invoking any callback, so the loop converges.
func (r *clientRep) flushReads(c *event.Ctx) {
	for len(r.queue.order) > 0 {
		r.flushBackend(c, r.queue.order[0])
	}
}

// flushBackend issues one backend's queued reads as a single wire
// round: a plain GET for a 1-op round (no fence needed - a GET always
// answers), a GETQ per key fenced by a Noop for anything larger.
func (r *clientRep) flushBackend(c *event.Ctx, backend int) {
	q := r.queue
	ops := q.pending[backend]
	delete(q.pending, backend)
	for i, b := range q.order {
		if b == backend {
			q.order = append(q.order[:i], q.order[i+1:]...)
			break
		}
	}
	if len(ops) == 0 {
		return
	}
	q.stats.noteRound(len(ops))
	if !r.cli.cl.Servable(backend) {
		// Same fast-fail as the write path: the backend was evicted after
		// these reads' replica sets were computed, so fail the whole round
		// as network errors and let each member's failover move on.
		for _, op := range ops {
			if op.cb != nil {
				op.cb(c, Response{Status: StatusNetworkError})
			}
		}
		return
	}
	cc := r.connFor(c, backend)
	bytes := cc.sendRound(c, ops, &q.stats)
	if len(ops) >= 2 {
		if a := r.cli.cl.Audit; a != nil {
			a.Emit(c.Now(), int(r.cli.node.Id), audit.FrontendBatchFlush, audit.Fields{
				"backend": backend, "ops": len(ops), "bytes": bytes,
			})
		}
	}
}

// readRound tracks one multi-op GETQ round in flight: which opaques
// belong to it, so the fence's response can resolve the still-silent
// members as misses. Hits (and individual timeouts, and connection
// failure) remove members from the inflight map before the fence
// answers; whatever remains when the fence reports OK is a key the
// server saw and stayed quiet about - a definitive miss.
type readRound struct {
	cc      *clientConn
	members []uint32
	stats   *BatchStats
}

func (rr *readRound) resolve(c *event.Ctx, r Response) {
	if !r.OK() {
		// The fence failed (timeout, teardown): the members fail through
		// their own timers or the connection's fail(), each as a network
		// error. Resolving misses here would fabricate false misses out of
		// a dead backend - exactly the conflation the client exists to
		// avoid.
		return
	}
	for _, opaque := range rr.members {
		op, ok := rr.cc.inflight[opaque]
		if !ok {
			continue // answered (hit) or already failed
		}
		delete(rr.cc.inflight, opaque)
		if op.timer != nil {
			op.timer.Cancel()
		}
		rr.stats.QuietMisses++
		if op.cb != nil {
			op.cb(c, Response{Status: memcached.StatusKeyNotFound})
		}
	}
}

// sendRound transmits one backend's reads as a single pipelined round
// on this connection and returns the round's wire size in bytes.
func (cc *clientConn) sendRound(c *event.Ctx, ops []pendingRead, stats *BatchStats) int {
	if len(ops) == 1 {
		pkt := memcached.BuildGet(ops[0].key, cc.register(c, ops[0].cb))
		cc.transmit(c, pkt)
		return len(pkt)
	}
	round := &readRound{cc: cc, stats: stats}
	var pkt []byte
	for _, op := range ops {
		opaque := cc.register(c, op.cb)
		round.members = append(round.members, opaque)
		pkt = append(pkt, memcached.BuildGetQ(op.key, opaque)...)
	}
	pkt = append(pkt, memcached.BuildNoop(cc.register(c, round.resolve))...)
	cc.transmit(c, pkt)
	return len(pkt)
}
