package cluster

import (
	"fmt"
	"sync"
	"testing"

	"ebbrt/internal/audit"
	"ebbrt/internal/event"
	"ebbrt/internal/sim"
)

// The event-driven chaos tests: instead of running the kernel a fixed
// slack window past each fault and probing state, they wait on the
// audit ring for the exact transition events and assert the full
// sequence (kill -> missed beats -> eviction -> failover reads, revive
// -> restore). A suppressed event fails the test at the deadline
// rather than passing silently; TestChaosSchedules stays timing-based
// as the regression control for the old style.

// auditedCluster builds a cluster whose state machines report into a
// ring sink, with a running health monitor.
func auditedCluster(backends, replicas int) (*Cluster, *Client, *HealthMonitor, *audit.Ring) {
	ring := audit.NewRing(8192)
	cl := NewCluster(backends, Options{Replicas: replicas, Audit: audit.NewLog(ring)})
	front := cl.Sys.Frontend()
	cli := NewClientWithOptions(cl, front, ClientOptions{RequestTimeout: 8 * sim.Millisecond})
	mon := NewHealthMonitor(cl, front, HealthConfig{})
	mon.Start()
	return cl, cli, mon, ring
}

// killMarked / reviveMarked emit the chaos marker the fault injector
// owes the log, then apply the fault. The marker is what lets tests
// (and the benchguard gate) anchor detection-latency measurements.
func killMarked(cl *Cluster, i int) {
	cl.Audit.Emit(cl.Sys.K.Now(), int(cl.Backends[i].Node.Id), audit.NodeKilled, audit.Fields{"backend": i})
	cl.Backends[i].Node.Kill()
}

func reviveMarked(cl *Cluster, i int) {
	cl.Audit.Emit(cl.Sys.K.Now(), int(cl.Backends[i].Node.Id), audit.NodeRevived, audit.Fields{"backend": i})
	cl.Backends[i].Node.Revive()
}

// startChaosPump issues a get of the durable population every 200us
// until the cutoff, counting false misses.
func startChaosPump(cl *Cluster, cli *Client, keys [][]byte, until sim.Time) *int {
	falseMisses := new(int)
	mgr := cl.Sys.Frontend().Runtime.Mgrs()[0]
	seq := 0
	var pump func(c *event.Ctx)
	pump = func(c *event.Ctx) {
		if c.Now() >= until {
			return
		}
		seq++
		cli.Get(c, keys[seq%len(keys)], func(c *event.Ctx, r Response) {
			if !r.OK() && !r.NetworkError() {
				*falseMisses++
			}
		})
		mgr.After(200*sim.Microsecond, pump)
	}
	mgr.Spawn(pump)
	return falseMisses
}

func chaosKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("chaos-key-%d", i))
	}
	return keys
}

// monotonicPerNode asserts the recorded trace never goes backwards in
// sim time for any node: emission happens at the instant of the
// transition, so a reordering would mean a sink-level bug.
func monotonicPerNode(t *testing.T, events []audit.Event) {
	t.Helper()
	last := map[int]sim.Time{}
	for i, e := range events {
		if prev, ok := last[e.Node]; ok && e.Time < prev {
			t.Fatalf("event %d (%s@node%d t=%d) precedes an earlier event at t=%d", i, e.Kind, e.Node, e.Time, prev)
		}
		last[e.Node] = e.Time
	}
}

// TestChaosEvictionEventSequence kills a backend under live load and
// waits on the events themselves: the kill marker, three missed beats,
// the eviction, and a failover read served from a surviving replica.
func TestChaosEvictionEventSequence(t *testing.T) {
	cl, cli, _, ring := auditedCluster(4, 2)
	k := cl.Sys.K
	keys := chaosKeys(150)
	populateChaos(t, cl, cli, keys)

	const victim = 1
	victimNode := int(cl.Backends[victim].Node.Id)
	mark := ring.Total()
	killedAt := k.Now()
	killMarked(cl, victim)
	falseMisses := startChaosPump(cl, cli, keys, killedAt+80*sim.Millisecond)

	evicted, ok := audit.RunUntilMatch(k, ring,
		audit.On(audit.HealthEvicted).OnNode(victimNode), mark, killedAt+80*sim.Millisecond)
	if !ok {
		t.Fatalf("backend %d never evicted; trace:\n%v", victim, ring.SnapshotSince(mark))
	}
	// Detection latency: three missed 5ms beats. The CI gate holds this
	// at <= 25ms cluster-wide; the unit test pins the same bound.
	if lat := evicted.Time - killedAt; lat > 25*sim.Millisecond {
		t.Errorf("eviction took %v after the kill, want <= 25ms", lat)
	}
	if _, ok := audit.RunUntilMatch(k, ring,
		audit.On(audit.FailoverRead), mark, k.Now()+30*sim.Millisecond); !ok {
		t.Fatal("no failover read ever served from a surviving replica")
	}

	x := audit.ExpectEvents(ring.SnapshotSince(mark))
	if err := x.Seq(
		audit.On(audit.NodeKilled).OnNode(victimNode),
		audit.On(audit.HealthMissedBeat).OnNode(victimNode).Times(3),
		audit.On(audit.HealthEvicted).OnNode(victimNode),
	); err != nil {
		t.Fatalf("eviction sequence: %v", err)
	}
	if err := x.Seq(
		audit.On(audit.NodeKilled).OnNode(victimNode),
		audit.On(audit.FailoverRead),
	); err != nil {
		t.Fatalf("failover sequence: %v", err)
	}
	// The monitor must not double-report: exactly one eviction, and no
	// restore for a backend that never came back.
	if n := x.Count(audit.On(audit.HealthEvicted).OnNode(victimNode)); n != 1 {
		t.Errorf("%d eviction events for one kill", n)
	}
	if n := x.Count(audit.On(audit.HealthRestored)); n != 0 {
		t.Errorf("%d restore events without a revive", n)
	}
	if *falseMisses != 0 {
		t.Errorf("%d false misses during failover", *falseMisses)
	}
	monotonicPerNode(t, ring.Snapshot())
}

// TestChaosRestoreEventSequence takes a backend through the full
// kill -> evict -> revive -> restore cycle, waiting on each transition
// event and asserting the complete ordered sequence at the end.
func TestChaosRestoreEventSequence(t *testing.T) {
	cl, cli, _, ring := auditedCluster(4, 2)
	k := cl.Sys.K
	keys := chaosKeys(150)
	populateChaos(t, cl, cli, keys)

	const victim = 2
	victimNode := int(cl.Backends[victim].Node.Id)
	mark := ring.Total()
	killMarked(cl, victim)
	if _, ok := audit.RunUntilMatch(k, ring,
		audit.On(audit.HealthEvicted).OnNode(victimNode), mark, k.Now()+80*sim.Millisecond); !ok {
		t.Fatal("kill never produced an eviction event")
	}

	revivedAt := k.Now()
	reviveMarked(cl, victim)
	restored, ok := audit.RunUntilMatch(k, ring,
		audit.On(audit.HealthRestored).OnNode(victimNode), mark, revivedAt+80*sim.Millisecond)
	if !ok {
		t.Fatal("revived backend never restored to the ring")
	}
	if lat := restored.Time - revivedAt; lat > 25*sim.Millisecond {
		t.Errorf("restore took %v after the revive, want <= 25ms", lat)
	}

	// The moment the restore event fires, membership is already back:
	// the event is emitted at the membership change, not after it.
	if !cl.Live(victim) {
		t.Error("restore event fired but Live() still reports the backend down")
	}
	onRing := false
	for _, m := range cl.Ring.Members() {
		if m == victim {
			onRing = true
		}
	}
	if !onRing {
		t.Error("restore event fired but the backend is not on the ring")
	}

	if err := audit.ExpectEvents(ring.SnapshotSince(mark)).Seq(
		audit.On(audit.NodeKilled).OnNode(victimNode),
		audit.On(audit.HealthMissedBeat).OnNode(victimNode).Times(3),
		audit.On(audit.HealthEvicted).OnNode(victimNode),
		audit.On(audit.NodeRevived).OnNode(victimNode),
		audit.On(audit.HealthRestored).OnNode(victimNode),
	); err != nil {
		t.Fatalf("kill/revive sequence: %v", err)
	}
	monotonicPerNode(t, ring.Snapshot())
}

// TestHealthMonitorAccessorsRaceFree is the regression test for the
// bare-map data race on the eviction/restore timestamps: a test
// goroutine polls the accessors while the simulation mutates them.
// Run under -race this fails on the old unguarded maps.
func TestHealthMonitorAccessorsRaceFree(t *testing.T) {
	cl, _, mon, ring := auditedCluster(4, 2)
	k := cl.Sys.K
	// Let the cluster boot and the first heartbeats land before the kill.
	k.RunUntil(10 * sim.Millisecond)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < len(cl.Backends); i++ {
				mon.EvictedAt(i)
				mon.RestoredAt(i)
			}
		}
	}()

	const victim = 1
	killMarked(cl, victim)
	if _, ok := audit.RunUntilMatch(k, ring,
		audit.On(audit.HealthEvicted), 0, k.Now()+80*sim.Millisecond); !ok {
		t.Fatal("no eviction")
	}
	reviveMarked(cl, victim)
	if _, ok := audit.RunUntilMatch(k, ring,
		audit.On(audit.HealthRestored), 0, k.Now()+80*sim.Millisecond); !ok {
		t.Fatal("no restore")
	}
	close(stop)
	wg.Wait()

	et, ok := mon.EvictedAt(victim)
	if !ok {
		t.Fatal("no eviction timestamp recorded")
	}
	rt, ok := mon.RestoredAt(victim)
	if !ok {
		t.Fatal("no restore timestamp recorded")
	}
	if rt <= et {
		t.Fatalf("restore at %d not after eviction at %d", rt, et)
	}
}
