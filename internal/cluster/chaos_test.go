package cluster

import (
	"fmt"
	"testing"

	"ebbrt/internal/audit"
	"ebbrt/internal/event"
	"ebbrt/internal/sim"
)

// chaosStep is one scheduled fault.
type chaosStep struct {
	at      sim.Time
	backend int
	revive  bool // false = kill, true = revive
}

// TestChaosSchedules drives client load while killing and reviving
// backends on a deterministic schedule, asserting the three fault-
// tolerance invariants: no false misses (a get for a durably written
// key never reports KeyNotFound), quorum-write durability (every set
// acked OK during the chaos is readable afterwards), and ring
// convergence (the ring's membership matches the surviving backends
// once the health monitor has caught up).
func TestChaosSchedules(t *testing.T) {
	cases := []struct {
		name     string
		backends int
		replicas int
		steps    []chaosStep
		// wantZeroSetFails asserts no write ever failed quorum - holds
		// when a majority of every replica set stays alive throughout.
		wantZeroSetFails bool
	}{
		{
			name:     "kill-one-R2",
			backends: 4,
			replicas: 2,
			steps:    []chaosStep{{at: 40 * sim.Millisecond, backend: 1}},
		},
		{
			name:     "kill-revive-R2",
			backends: 4,
			replicas: 2,
			steps: []chaosStep{
				{at: 40 * sim.Millisecond, backend: 2},
				{at: 110 * sim.Millisecond, backend: 2, revive: true},
			},
		},
		{
			name:     "kill-one-R3-writes-never-fail",
			backends: 5,
			replicas: 3,
			steps:    []chaosStep{{at: 40 * sim.Millisecond, backend: 0}},
			// R=3 quorum is 2: one dead replica never blocks a write.
			wantZeroSetFails: true,
		},
		{
			name:     "sequential-kills-R3",
			backends: 5,
			replicas: 3,
			steps: []chaosStep{
				{at: 40 * sim.Millisecond, backend: 1},
				{at: 100 * sim.Millisecond, backend: 4},
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) { runChaos(t, tc.backends, tc.replicas, tc.steps, tc.wantZeroSetFails) })
	}
}

// TestMigrationChaosSourceKill kills a backend that is actively
// sourcing a migration stream. The migrator must restart the affected
// transfers from a surviving replica and complete; throughout, no get
// of a durably written key may report a miss and no acked write may be
// lost. Completion is awaited on the migration.done event and the
// whole fault timeline is asserted as a sequence.
func TestMigrationChaosSourceKill(t *testing.T) {
	ring := audit.NewRing(8192)
	cl := NewCluster(4, Options{Replicas: 2, Audit: audit.NewLog(ring)})
	front := cl.Sys.Frontend()
	cli := NewClientWithOptions(cl, front, ClientOptions{RequestTimeout: 8 * sim.Millisecond})
	// Slow the stream down (per-entry CPU) so the kill lands mid-transfer.
	m := NewMigrator(cl, front, MigratorConfig{
		PerEntryCPU: 30 * sim.Microsecond,
		JobTimeout:  15 * sim.Millisecond,
	})
	k := cl.Sys.K

	const nKeys = 600
	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("mig-src-%d-%d", i, i*2654435761))
	}
	populateChaos(t, cl, cli, keys)

	mark := ring.Total()
	joinAt := k.Now() + 2*sim.Millisecond
	victim := -1
	k.At(joinAt, func() { m.Join(1) })
	k.At(joinAt+1*sim.Millisecond, func() {
		if m.cur == nil {
			t.Fatal("migration already finished before the kill - stream too fast for the test")
		}
		// Kill a source of a still-unfinished transfer.
		for j, job := range m.cur.jobs {
			if !m.cur.done[j] {
				victim = job.sources[0]
				break
			}
		}
		if victim < 0 {
			t.Fatal("no unfinished job to sabotage")
		}
		cl.Audit.Emit(k.Now(), int(cl.Backends[victim].Node.Id), audit.NodeKilled, audit.Fields{"backend": victim})
		cl.Backends[victim].Node.Kill()
	})
	// The health monitor would evict the dead source ~15ms later.
	k.At(joinAt+8*sim.Millisecond, func() {
		if victim >= 0 {
			cl.EvictBackend(victim)
		}
	})

	falseMisses, durable := pumpChaosLoad(t, cl, cli, keys, joinAt, joinAt+120*sim.Millisecond)
	if _, ok := audit.RunUntilMatch(k, ring,
		audit.On(audit.MigrationDone), mark, k.Now()+300*sim.Millisecond); !ok {
		t.Fatal("migration never completed after the source kill")
	}
	if err := audit.ExpectEvents(ring.SnapshotSince(mark)).Seq(
		audit.On(audit.MigrationStart),
		audit.On(audit.NodeKilled),
		audit.On(audit.HealthEvicted),
		audit.On(audit.MigrationDone),
	); err != nil {
		t.Fatalf("source-kill sequence: %v", err)
	}
	if n := audit.Expect(ring).Count(audit.On(audit.MigrationAbort)); n != 0 {
		t.Fatalf("migration aborted instead of restarting from a surviving replica (%d abort events)", n)
	}
	mig := m.Last()
	if mig == nil || mig.Aborted {
		t.Fatal("migrator state disagrees with the event log")
	}
	if mig.Lost != 0 {
		t.Fatalf("%d ranges lost despite surviving replicas", mig.Lost)
	}
	if *falseMisses != 0 {
		t.Errorf("%d false misses during source-kill migration", *falseMisses)
	}
	verifyDurable(t, cl, cli, keys, durable)
}

// TestMigrationChaosDestKill kills the joining backend mid-stream. The
// migrator must abort once the destination is evicted, the handoff
// window must close, and - as ever - no durable key may read as a miss
// and no acked write may be lost.
func TestMigrationChaosDestKill(t *testing.T) {
	ring := audit.NewRing(8192)
	cl := NewCluster(4, Options{Replicas: 2, Audit: audit.NewLog(ring)})
	front := cl.Sys.Frontend()
	cli := NewClientWithOptions(cl, front, ClientOptions{RequestTimeout: 8 * sim.Millisecond})
	m := NewMigrator(cl, front, MigratorConfig{
		PerEntryCPU: 30 * sim.Microsecond,
		JobTimeout:  15 * sim.Millisecond,
	})
	k := cl.Sys.K

	const nKeys = 600
	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("mig-dst-%d-%d", i, i*2654435761))
	}
	populateChaos(t, cl, cli, keys)

	mark := ring.Total()
	joinAt := k.Now() + 2*sim.Millisecond
	k.At(joinAt, func() { m.Join(1) })
	dest := -1
	k.At(joinAt+1*sim.Millisecond, func() {
		if m.cur == nil {
			t.Fatal("migration already finished before the kill - stream too fast for the test")
		}
		dest = len(cl.Backends) - 1
		cl.Audit.Emit(k.Now(), int(cl.Backends[dest].Node.Id), audit.NodeKilled, audit.Fields{"backend": dest})
		cl.Backends[dest].Node.Kill()
	})
	// Eviction of the dead newcomer (the monitor's job) aborts the
	// migration and restores write availability for its ranges.
	k.At(joinAt+8*sim.Millisecond, func() {
		if dest >= 0 {
			cl.EvictBackend(dest)
		}
	})

	falseMisses, durable := pumpChaosLoad(t, cl, cli, keys, joinAt, joinAt+120*sim.Millisecond)
	abort, ok := audit.RunUntilMatch(k, ring,
		audit.On(audit.MigrationAbort), mark, k.Now()+300*sim.Millisecond)
	if !ok {
		t.Fatal("migration to a dead destination never emitted migration.abort")
	}
	// The abort event fires at the teardown itself: the handoff window
	// is already closed when it is observed.
	if cl.Migrating() {
		t.Fatal("handoff window still open after the abort event")
	}
	if err := audit.ExpectEvents(ring.SnapshotSince(mark)).Seq(
		audit.On(audit.MigrationStart),
		audit.On(audit.NodeKilled),
		audit.On(audit.HealthEvicted),
		audit.On(audit.MigrationAbort),
	); err != nil {
		t.Fatalf("dest-kill sequence: %v", err)
	}
	// An aborted run must not also claim completion, and no cutover may
	// land after the abort.
	x := audit.ExpectEvents(ring.SnapshotSince(mark))
	if n := x.Count(audit.On(audit.MigrationDone)); n != 0 {
		t.Fatalf("aborted migration emitted %d migration.done events", n)
	}
	if last, ok := x.Last(audit.On(audit.MigrationCutover)); ok && last.Time > abort.Time {
		t.Fatalf("cutover at %d after the abort at %d", last.Time, abort.Time)
	}
	if mig := m.Last(); mig == nil || !mig.Aborted {
		t.Fatal("migrator state disagrees with the event log")
	}
	if *falseMisses != 0 {
		t.Errorf("%d false misses during dest-kill migration", *falseMisses)
	}
	verifyDurable(t, cl, cli, keys, durable)

	// The cluster is whole again: writes reach quorum on the old ring.
	acked := 0
	front.Spawn(func(c *event.Ctx) {
		for i := 0; i < 32; i++ {
			cli.Set(c, []byte(fmt.Sprintf("post-abort-%d", i)), []byte("w"), 0, func(c *event.Ctx, r Response) {
				if r.OK() {
					acked++
				}
			})
		}
	})
	deadline := k.Now() + 20*sim.Millisecond
	for acked < 32 && k.Now() < deadline {
		k.RunFor(250 * sim.Microsecond)
	}
	if acked != 32 {
		t.Fatalf("only %d of 32 writes acked after the aborted join", acked)
	}
}

// populateChaos quorum-writes the key population, failing on any nack.
func populateChaos(t *testing.T, cl *Cluster, cli *Client, keys [][]byte) {
	t.Helper()
	acked := 0
	cl.Sys.Frontend().Spawn(func(c *event.Ctx) {
		for i, key := range keys {
			cli.Set(c, key, []byte(fmt.Sprintf("v0-%d", i)), 0, func(c *event.Ctx, r Response) {
				if r.OK() {
					acked++
				}
			})
		}
	})
	k := cl.Sys.K
	deadline := k.Now() + 30*sim.Millisecond
	for acked < len(keys) && k.Now() < deadline {
		k.RunFor(250 * sim.Microsecond)
	}
	if acked != len(keys) {
		t.Fatalf("populate: %d of %d quorum writes acked", acked, len(keys))
	}
}

// pumpChaosLoad drives mixed load from `from` to `to` and runs the
// kernel through it: gets of the durable population (counting false
// misses) plus fresh writes whose acks are recorded in the returned
// durable map.
func pumpChaosLoad(t *testing.T, cl *Cluster, cli *Client, keys [][]byte, from, to sim.Time) (*int, map[string][]byte) {
	t.Helper()
	falseMisses := new(int)
	durable := map[string][]byte{}
	mgr := cl.Sys.Frontend().Runtime.Mgrs()[0]
	seq := 0
	var pump func(c *event.Ctx)
	pump = func(c *event.Ctx) {
		if c.Now() >= to {
			return
		}
		seq++
		cli.Get(c, keys[seq%len(keys)], func(c *event.Ctx, r Response) {
			if !r.OK() && !r.NetworkError() {
				*falseMisses++
			}
		})
		if seq%10 == 0 {
			wkey := []byte(fmt.Sprintf("mig-new-%d", seq))
			wval := []byte(fmt.Sprintf("nv-%d", seq))
			cli.Set(c, wkey, wval, 0, func(c *event.Ctx, r Response) {
				if r.OK() {
					durable[string(wkey)] = wval
				}
			})
		}
		mgr.After(200*sim.Microsecond, pump)
	}
	cl.Sys.K.At(from, func() { mgr.Spawn(pump) })
	// Run only to the end of the load window; callers wait on the audit
	// events for whatever the chaos was supposed to trigger, instead of
	// a fixed slack window.
	cl.Sys.K.RunUntil(to)
	return falseMisses, durable
}

// verifyDurable reads the population plus every mid-chaos acked write
// and requires all of them served.
func verifyDurable(t *testing.T, cl *Cluster, cli *Client, keys [][]byte, durable map[string][]byte) {
	t.Helper()
	all := append([][]byte(nil), keys...)
	for key := range durable {
		all = append(all, []byte(key))
	}
	ok, miss, netErr := readAll(cl, cli, all)
	if ok != len(all) || miss != 0 || netErr != 0 {
		t.Errorf("durability: %d/%d keys verified, %d misses, %d network errors", ok, len(all), miss, netErr)
	}
	if len(durable) == 0 {
		t.Error("no writes acked during the chaos window - durability check vacuous")
	}
}

func runChaos(t *testing.T, backends, replicas int, steps []chaosStep, wantZeroSetFails bool) {
	cl := NewCluster(backends, Options{Replicas: replicas})
	front := cl.Sys.Frontend()
	cli := NewClientWithOptions(cl, front, ClientOptions{RequestTimeout: 8 * sim.Millisecond})
	mon := NewHealthMonitor(cl, front, HealthConfig{})
	mon.Start()
	k := cl.Sys.K
	mgr := front.Runtime.Mgrs()[0]

	// Phase 1: populate a durable key set through quorum writes.
	const nKeys = 150
	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("chaos-key-%d", i))
	}
	acked := 0
	front.Spawn(func(c *event.Ctx) {
		for i, key := range keys {
			cli.Set(c, key, []byte(fmt.Sprintf("v0-%d", i)), 0, func(c *event.Ctx, r Response) {
				if r.OK() {
					acked++
				}
			})
		}
	})
	k.RunUntil(20 * sim.Millisecond)
	if acked != nKeys {
		t.Fatalf("populate: %d of %d quorum writes acked", acked, nKeys)
	}

	// Phase 2: continuous mixed load across the fault schedule. Gets hit
	// the durable population (any miss is a false miss); sets write
	// fresh keys whose acks feed the durability check.
	endLoad := 160 * sim.Millisecond
	var falseMisses, getNetErrs, setFails int
	durable := map[string][]byte{}
	seq := 0
	var pump func(c *event.Ctx)
	pump = func(c *event.Ctx) {
		if c.Now() >= endLoad {
			return
		}
		seq++
		key := keys[seq%nKeys]
		cli.Get(c, key, func(c *event.Ctx, r Response) {
			switch {
			case r.OK():
			case r.NetworkError():
				getNetErrs++
			default:
				falseMisses++
			}
		})
		if seq%10 == 0 {
			wkey := []byte(fmt.Sprintf("chaos-new-%d", seq))
			wval := []byte(fmt.Sprintf("nv-%d", seq))
			cli.Set(c, wkey, wval, 0, func(c *event.Ctx, r Response) {
				if r.OK() {
					durable[string(wkey)] = wval
				} else {
					setFails++
				}
			})
		}
		mgr.After(200*sim.Microsecond, pump)
	}
	mgr.Spawn(pump)

	// Schedule the faults.
	for _, s := range steps {
		s := s
		k.At(s.at, func() {
			if s.revive {
				cl.Backends[s.backend].Node.Revive()
			} else {
				cl.Backends[s.backend].Node.Kill()
			}
		})
	}

	// Run through the load window plus settle time for the monitor to
	// converge (detection ~15ms: three missed 5ms beats; restoration
	// ~10-15ms: fresh-connection probes answered for two beats).
	k.RunUntil(endLoad + 60*sim.Millisecond)

	if falseMisses != 0 {
		t.Errorf("%d false misses during chaos (gets of durable keys reported KeyNotFound)", falseMisses)
	}
	if wantZeroSetFails && setFails != 0 {
		t.Errorf("%d quorum writes failed despite a live majority in every replica set", setFails)
	}

	// Ring convergence: membership must match the backends that are
	// alive now (killed-and-revived backends restored, dead ones out).
	alive := map[int]bool{}
	for i, b := range cl.Backends {
		alive[i] = b.Node.Alive()
	}
	members := map[int]bool{}
	for _, m := range cl.Ring.Members() {
		members[m] = true
	}
	for i := range cl.Backends {
		if alive[i] != members[i] {
			t.Errorf("ring did not converge: backend %d alive=%v on-ring=%v", i, alive[i], members[i])
		}
		if alive[i] != cl.Live(i) {
			t.Errorf("Live(%d)=%v disagrees with node state %v", i, cl.Live(i), alive[i])
		}
	}

	// Phase 3: durability. Every key acked at quorum - the original
	// population and everything acked mid-chaos - must still be served.
	verified, misses, netErrs := 0, 0, 0
	front.Spawn(func(c *event.Ctx) {
		check := func(key []byte) {
			cli.Get(c, key, func(c *event.Ctx, r Response) {
				switch {
				case r.OK():
					verified++
				case r.NetworkError():
					netErrs++
				default:
					misses++
				}
			})
		}
		for _, key := range keys {
			check(key)
		}
		for key := range durable {
			check([]byte(key))
		}
	})
	k.RunUntil(k.Now() + 40*sim.Millisecond)
	want := nKeys + len(durable)
	if verified != want || misses != 0 || netErrs != 0 {
		t.Errorf("durability: %d/%d keys verified, %d misses, %d network errors",
			verified, want, misses, netErrs)
	}
	if len(durable) == 0 {
		t.Error("no writes acked during chaos - durability check vacuous")
	}
}
