package cluster

import (
	"encoding/binary"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/core"
	"ebbrt/internal/event"
	"ebbrt/internal/hosted"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/sim"
)

// StatusNetworkError is the client-synthesized status reporting that an
// operation could not be completed because the connection failed, the
// request timed out, or a write could not reach its quorum. It lives
// outside the server's status space: a network failure is not a cache
// miss, and conflating the two (as the client once did) turns every
// backend crash into a burst of false misses instead of failovers.
const StatusNetworkError uint16 = 0xff00

// Response is the outcome of one cluster operation.
type Response struct {
	Status uint16
	Flags  uint32
	Value  []byte
}

// OK reports protocol success.
func (r Response) OK() bool { return r.Status == memcached.StatusOK }

// NetworkError reports that the operation failed in the network or at a
// quorum, not at the store; the caller may retry.
func (r Response) NetworkError() bool { return r.Status == StatusNetworkError }

// Callback receives an operation's response on the submitting core.
type Callback func(c *event.Ctx, r Response)

// DefaultPoolSize is the per-core, per-backend connection count.
const DefaultPoolSize = 2

// ClientOptions tunes the client Ebb beyond the defaults.
type ClientOptions struct {
	// PoolSize is the per-core, per-backend connection count (default
	// DefaultPoolSize).
	PoolSize int
	// RequestTimeout bounds one replica operation; on expiry the
	// operation fails with StatusNetworkError and, for reads, fails over
	// to the next replica. Zero disables timeouts: operations then fail
	// only on connection teardown or ring eviction. Keep it well above
	// the netstack RTO when frame loss (rather than node death) is
	// expected, or retransmitted requests will be reported dead.
	RequestTimeout sim.Time
	// NoReadRepair disables the asynchronous re-set of a key onto
	// replicas that missed it when a later replica served the read.
	NoReadRepair bool
}

// Client is the cluster-aware memcached client Ebb. Its id lives in the
// deployment-wide namespace (allocated by the frontend); each core that
// touches it faults in its own representative holding private
// connection pools to every backend, so request submission never
// crosses cores - the Ebb pattern of paper §3.1 applied client-side.
//
// Under replication (Cluster.Replicas > 1) the client is where fault
// tolerance lives: writes fan out to every replica and ack on a
// majority quorum; reads try the primary and fail over along the
// replica set on network error or miss. When the cluster evicts a dead
// backend, every representative aborts its pooled connections to it so
// in-flight operations fail over immediately instead of waiting out TCP
// retransmission.
type Client struct {
	cl   *Cluster
	node *hosted.Node
	ref  core.Ref[clientRep]
	opt  ClientOptions
}

// NewClient installs a client Ebb for the cluster on the given node
// (typically the hosted frontend). poolSize <= 0 selects
// DefaultPoolSize connections per core per backend.
func NewClient(cl *Cluster, node *hosted.Node, poolSize int) *Client {
	return NewClientWithOptions(cl, node, ClientOptions{PoolSize: poolSize})
}

// NewClientWithOptions installs a client Ebb with explicit options.
func NewClientWithOptions(cl *Cluster, node *hosted.Node, opt ClientOptions) *Client {
	if opt.PoolSize <= 0 {
		opt.PoolSize = DefaultPoolSize
	}
	cli := &Client{cl: cl, node: node, opt: opt}
	id := cl.Sys.AllocateEbbId()
	mgrs := node.Runtime.Mgrs()
	cli.ref = core.Attach(node.Domain, id, func(corei int) *clientRep {
		return &clientRep{cli: cli, mgr: mgrs[corei], pools: map[int]*backendPool{}}
	})
	cl.Watch(func(backend int, up bool) {
		if up {
			return // pools to a restored backend re-dial lazily
		}
		for corei := range mgrs {
			corei := corei
			mgrs[corei].Spawn(func(c *event.Ctx) {
				if rep, ok := cli.ref.GetIfPresent(corei); ok {
					rep.dropBackend(c, backend)
				}
			})
		}
	})
	return cli
}

// Id returns the Ebb id the client occupies in the shared namespace.
func (cli *Client) Id() core.Id { return cli.ref.Id() }

// Get fetches key, trying each replica in successor order: network
// errors and genuine misses both fall through to the next replica, so a
// key served by any live replica is found. When a later replica serves
// the read, replicas that missed it are repaired asynchronously. During
// a migration handoff the read set for a still-moving range is the old
// owners followed by the new ones, so the key is served wherever it
// currently lives.
func (cli *Client) Get(c *event.Ctx, key []byte, cb Callback) {
	cli.getFrom(c, key, cli.cl.ReadSet(key), 0, nil, cb)
}

func (cli *Client) getFrom(c *event.Ctx, key []byte, reps []int, i int, missed []int, cb Callback) {
	cli.rep(c).submit(c, reps[i], func(opaque uint32) []byte {
		return memcached.BuildGet(key, opaque)
	}, func(c *event.Ctx, r Response) {
		switch {
		case r.OK():
			if len(missed) > 0 && !cli.opt.NoReadRepair {
				cli.readRepair(c, key, missed, r)
			}
			if cb != nil {
				cb(c, r)
			}
		case i+1 < len(reps):
			if r.Status == memcached.StatusKeyNotFound {
				missed = append(missed, reps[i])
			}
			cli.getFrom(c, key, reps, i+1, missed, cb)
		default:
			if cb != nil {
				cb(c, r)
			}
		}
	})
}

// readRepair re-sets the value onto replicas that reported a miss while
// a successor held the key (a restored backend catching up, or a
// replica that lost a racing write). Fire-and-forget: repair is an
// optimization, not a durability mechanism.
func (cli *Client) readRepair(c *event.Ctx, key []byte, missed []int, r Response) {
	value := append([]byte(nil), r.Value...)
	for _, backend := range missed {
		cli.rep(c).submit(c, backend, func(opaque uint32) []byte {
			return memcached.BuildSet(key, value, r.Flags, opaque)
		}, nil)
	}
}

// Set stores key=value on every replica and invokes cb once the write
// quorum (a majority of the replica set) has acknowledged. A write that
// cannot reach quorum reports StatusNetworkError; it may still have
// landed on a minority of replicas - the usual leaderless-write
// semantics, converged by read repair. During a migration handoff the
// write is delivered to the union of old and new owners but the quorum
// is counted over the new owners, so an acked write is guaranteed to
// survive the range's cutover.
func (cli *Client) Set(c *event.Ctx, key, value []byte, flags uint32, cb Callback) {
	cli.cl.noteSet(key)
	cli.quorumWrite(c, key, cb, func(opaque uint32) []byte {
		return memcached.BuildSet(key, value, flags, opaque)
	}, func(r Response) bool { return r.OK() })
}

// Delete removes key from every replica, acking on quorum. A replica
// that never held the key counts as acknowledged - absence is the state
// the operation establishes. A delete landing inside a still-migrating
// range is additionally recorded so the migrator scrubs any copy the
// in-flight stream's pre-delete snapshot resurrects at the destination.
func (cli *Client) Delete(c *event.Ctx, key []byte, cb Callback) {
	cli.cl.noteDelete(key)
	cli.quorumWrite(c, key, cb, func(opaque uint32) []byte {
		return memcached.BuildDelete(key, opaque)
	}, func(r Response) bool { return r.OK() || r.Status == memcached.StatusKeyNotFound })
}

// quorumWrite fans a write out per the cluster's write plan: every
// target receives it, only quorum members' acknowledgments decide the
// outcome.
func (cli *Client) quorumWrite(c *event.Ctx, key []byte, cb Callback, build func(opaque uint32) []byte, acked func(Response) bool) {
	targets, quorum := cli.cl.WritePlan(key)
	q := newQuorumCall(len(quorum), cb)
	for _, backend := range targets {
		var done Callback
		if containsBackend(quorum, backend) {
			done = func(c *event.Ctx, r Response) { q.add(c, r, acked(r)) }
		}
		cli.rep(c).submit(c, backend, build, done)
	}
}

func (cli *Client) rep(c *event.Ctx) *clientRep { return cli.ref.Get(c.Core().ID) }

// quorumCall aggregates one write's per-replica acknowledgments into a
// single callback: success at a majority of the replica set, failure as
// soon as a majority can no longer be reached. Late responses after the
// verdict are ignored.
type quorumCall struct {
	need  int
	total int
	acks  int
	fails int
	done  bool
	first Response // first acknowledged response, reported on success
	sawOK bool
	cb    Callback
}

func newQuorumCall(total int, cb Callback) *quorumCall {
	return &quorumCall{need: total/2 + 1, total: total, cb: cb}
}

func (q *quorumCall) add(c *event.Ctx, r Response, ack bool) {
	if q.done {
		return
	}
	if ack {
		if q.acks == 0 {
			q.first = r
		}
		if r.OK() {
			q.sawOK = true
			q.first = r
		}
		q.acks++
	} else {
		q.fails++
	}
	if q.acks >= q.need {
		q.done = true
		if q.cb != nil {
			q.cb(c, q.first)
		}
		return
	}
	if q.fails > q.total-q.need {
		q.done = true
		if q.cb != nil {
			q.cb(c, Response{Status: StatusNetworkError})
		}
	}
}

// clientRep is one core's representative: private pools, no locks.
type clientRep struct {
	cli   *Client
	mgr   *event.Manager
	pools map[int]*backendPool
}

// backendPool is one core's connections to one backend.
type backendPool struct {
	conns []*clientConn
	next  int
}

// submit routes one request onto a pooled connection.
func (r *clientRep) submit(c *event.Ctx, backend int, build func(opaque uint32) []byte, cb Callback) {
	if !r.cli.cl.Servable(backend) {
		// The backend was evicted after this operation's replica set was
		// computed. Fail fast so the caller's failover moves on, rather
		// than re-dialing a dead node (which, with timeouts disabled,
		// would park the operation behind minutes of SYN backoff).
		if cb != nil {
			cb(c, Response{Status: StatusNetworkError})
		}
		return
	}
	pool, ok := r.pools[backend]
	if !ok {
		pool = &backendPool{}
		r.pools[backend] = pool
	}
	// Grow the pool to its target size before multiplexing; drop
	// connections that closed under us and replace them.
	live := pool.conns[:0]
	for _, cc := range pool.conns {
		if !cc.closed {
			live = append(live, cc)
		}
	}
	pool.conns = live
	var cc *clientConn
	if len(pool.conns) < r.cli.opt.PoolSize {
		cc = r.dial(c, backend)
		pool.conns = append(pool.conns, cc)
	} else {
		cc = pool.conns[pool.next%len(pool.conns)]
		pool.next++
	}
	cc.send(c, build, cb)
}

// dropBackend aborts every pooled connection to an evicted backend,
// failing its in-flight operations with StatusNetworkError so their
// callers fail over now rather than after TCP gives up.
func (r *clientRep) dropBackend(c *event.Ctx, backend int) {
	pool, ok := r.pools[backend]
	if !ok {
		return
	}
	delete(r.pools, backend)
	for _, cc := range pool.conns {
		cc.abort(c)
	}
}

// dial opens one connection to the backend's memcached port.
func (r *clientRep) dial(c *event.Ctx, backend int) *clientConn {
	cc := &clientConn{
		mgr:      r.mgr,
		timeout:  r.cli.opt.RequestTimeout,
		inflight: map[uint32]inflightOp{},
	}
	node := r.cli.cl.Backends[backend].Node
	r.cli.node.Runtime.Dial(c, node.IP(), memcached.Port, appnet.Callbacks{
		OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
			cc.onData(c, payload)
		},
		OnClose: func(c *event.Ctx, conn appnet.Conn, err error) {
			cc.fail(c)
		},
	}, func(c *event.Ctx, conn appnet.Conn) {
		cc.conn = conn
		cc.connected = true
		for _, pkt := range cc.pendingTx {
			conn.Send(c, iobuf.Wrap(pkt))
		}
		cc.pendingTx = nil
	})
	return cc
}

// inflightOp is one outstanding request: its completion callback plus
// the timeout timer that fires it as a network error if no response
// arrives in time.
type inflightOp struct {
	cb    Callback
	timer *sim.Event
}

// clientConn multiplexes requests over one TCP connection, matching
// responses to callbacks by opaque.
type clientConn struct {
	conn       appnet.Conn
	mgr        *event.Manager
	timeout    sim.Time
	connected  bool
	closed     bool
	pendingTx  [][]byte
	inflight   map[uint32]inflightOp
	nextOpaque uint32
	rx         []byte
}

func (cc *clientConn) send(c *event.Ctx, build func(opaque uint32) []byte, cb Callback) {
	opaque := cc.nextOpaque
	cc.nextOpaque++
	op := inflightOp{cb: cb}
	if cc.timeout > 0 && cc.mgr != nil {
		op.timer = cc.mgr.After(cc.timeout, func(c *event.Ctx) {
			cur, ok := cc.inflight[opaque]
			if !ok {
				return
			}
			delete(cc.inflight, opaque)
			if cur.cb != nil {
				cur.cb(c, Response{Status: StatusNetworkError})
			}
		})
	}
	cc.inflight[opaque] = op
	pkt := build(opaque)
	if !cc.connected {
		cc.pendingTx = append(cc.pendingTx, pkt)
		return
	}
	cc.conn.Send(c, iobuf.Wrap(pkt))
}

// fail reports every outstanding operation as a network error - NOT a
// miss: the keys may well exist, the backend is just unreachable - and
// retires the connection from its pool.
func (cc *clientConn) fail(c *event.Ctx) {
	cc.closed = true
	cc.connected = false
	cc.pendingTx = nil
	for opaque, op := range cc.inflight {
		delete(cc.inflight, opaque)
		if op.timer != nil {
			op.timer.Cancel()
		}
		if op.cb != nil {
			op.cb(c, Response{Status: StatusNetworkError})
		}
	}
}

// abort tears the connection down proactively (ring eviction of its
// backend), failing outstanding operations immediately.
func (cc *clientConn) abort(c *event.Ctx) {
	if cc.closed {
		return
	}
	cc.fail(c)
	if cc.conn != nil {
		cc.conn.Close(c)
	}
}

// onData reassembles the response stream and dispatches callbacks. A
// malformed or wrong-magic response means the stream is desynced and
// can never recover: the connection is torn down and every outstanding
// operation fails, rather than wedging silently.
func (cc *clientConn) onData(c *event.Ctx, payload *iobuf.IOBuf) {
	data := payload.CopyOut()
	if len(cc.rx) > 0 {
		cc.rx = append(cc.rx, data...)
		data = cc.rx
	}
	consumed := 0
	for {
		hdr, body, n, err := memcached.NextFrame(data[consumed:], memcached.MagicResponse)
		if err != nil {
			cc.rx = nil
			if cc.conn != nil {
				cc.conn.Close(c)
			}
			cc.fail(c)
			return
		}
		if n == 0 {
			break
		}
		consumed += n
		op, ok := cc.inflight[hdr.Opaque]
		if !ok {
			continue // timed out; the caller has already failed over
		}
		delete(cc.inflight, hdr.Opaque)
		if op.timer != nil {
			op.timer.Cancel()
		}
		if op.cb == nil {
			continue
		}
		resp := Response{Status: hdr.Status}
		if int(hdr.ExtrasLen) >= memcached.GetResponseExtrasLen {
			resp.Flags = binary.BigEndian.Uint32(body)
		}
		if len(body) > int(hdr.ExtrasLen) {
			resp.Value = append([]byte(nil), body[hdr.ExtrasLen:]...)
		}
		op.cb(c, resp)
	}
	if consumed < len(data) {
		cc.rx = append(cc.rx[:0], data[consumed:]...)
	} else {
		cc.rx = cc.rx[:0]
	}
}
