package cluster

import (
	"encoding/binary"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/audit"
	"ebbrt/internal/core"
	"ebbrt/internal/event"
	"ebbrt/internal/hosted"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/sim"
)

// StatusNetworkError is the client-synthesized status reporting that an
// operation could not be completed because the connection failed, the
// request timed out, or a write could not reach its quorum. It lives
// outside the server's status space: a network failure is not a cache
// miss, and conflating the two (as the client once did) turns every
// backend crash into a burst of false misses instead of failovers.
const StatusNetworkError uint16 = 0xff00

// Response is the outcome of one cluster operation.
type Response struct {
	Status uint16
	Flags  uint32
	Value  []byte
	// CAS is the entry's compare-and-swap stamp echoed in the server's
	// response header (the owner's Entry.CAS on reads, the newly stamped
	// value on stores). The hot-key cache uses it as the coherence
	// version for cached values.
	CAS uint64
	// ExpiresAt is the entry's absolute expiry carried in GET response
	// extras (0 = never expires). The hot-key cache stores it so a
	// cached value dies at the origin's deadline, not its own TTL.
	ExpiresAt sim.Time
}

// OK reports protocol success.
func (r Response) OK() bool { return r.Status == memcached.StatusOK }

// NetworkError reports that the operation failed in the network or at a
// quorum, not at the store; the caller may retry.
func (r Response) NetworkError() bool { return r.Status == StatusNetworkError }

// Callback receives an operation's response on the submitting core.
type Callback func(c *event.Ctx, r Response)

// DefaultPoolSize is the per-core, per-backend connection count.
const DefaultPoolSize = 2

// ClientOptions tunes the client Ebb beyond the defaults.
type ClientOptions struct {
	// PoolSize is the per-core, per-backend connection count (default
	// DefaultPoolSize).
	PoolSize int
	// RequestTimeout bounds one replica operation; on expiry the
	// operation fails with StatusNetworkError and, for reads, fails over
	// to the next replica. Zero disables timeouts: operations then fail
	// only on connection teardown or ring eviction. Keep it well above
	// the netstack RTO when frame loss (rather than node death) is
	// expected, or retransmitted requests will be reported dead.
	RequestTimeout sim.Time
	// NoReadRepair disables the asynchronous re-set of a key onto
	// replicas that missed it when a later replica served the read.
	NoReadRepair bool
	// HotKey configures the per-core hot-key read cache. When left
	// disabled the client inherits the cluster's Options.HotKey; set
	// HotKey.Disable to keep the cache off regardless.
	HotKey HotKeyOptions
	// Batch tunes the read-submission queue that coalesces same-backend
	// reads into pipelined GETQ+Noop rounds. The zero value batches only
	// within one GetMulti call (MaxBatch DefaultMaxBatch); MaxBatch 1
	// reverts every read to its own plain GET.
	Batch BatchOptions
}

// Client is the cluster-aware memcached client Ebb. Its id lives in the
// deployment-wide namespace (allocated by the frontend); each core that
// touches it faults in its own representative holding private
// connection pools to every backend, so request submission never
// crosses cores - the Ebb pattern of paper §3.1 applied client-side.
//
// Under replication (Cluster.Replicas > 1) the client is where fault
// tolerance lives: writes fan out to every replica and ack on a
// majority quorum; reads try the primary and fail over along the
// replica set on network error or miss. When the cluster evicts a dead
// backend, every representative aborts its pooled connections to it so
// in-flight operations fail over immediately instead of waiting out TCP
// retransmission.
type Client struct {
	cl   *Cluster
	node *hosted.Node
	ref  core.Ref[clientRep]
	opt  ClientOptions
	mgrs []*event.Manager
	// tombGen counts this client's Deletes. Hot-key fills and re-stamps
	// capture it when their operation is issued and stand down if it
	// moved by completion: a response racing any of this client's
	// Deletes - from any core - must not resurrect the deleted value
	// (absence has no CAS for the cache's monotonic put guard to
	// compare against). One client-wide counter rather than per-core
	// state: a Delete on core B must also stand down a re-stamp another
	// core's ack is about to spawn onto B.
	tombGen uint64
}

// NewClient installs a client Ebb for the cluster on the given node
// (typically the hosted frontend). poolSize <= 0 selects
// DefaultPoolSize connections per core per backend.
func NewClient(cl *Cluster, node *hosted.Node, poolSize int) *Client {
	return NewClientWithOptions(cl, node, ClientOptions{PoolSize: poolSize})
}

// NewClientWithOptions installs a client Ebb with explicit options.
func NewClientWithOptions(cl *Cluster, node *hosted.Node, opt ClientOptions) *Client {
	if opt.PoolSize <= 0 {
		opt.PoolSize = DefaultPoolSize
	}
	if !opt.HotKey.Enable && !opt.HotKey.Disable {
		opt.HotKey = cl.HotKey
	}
	if opt.HotKey.Disable {
		opt.HotKey = HotKeyOptions{}
	}
	if opt.HotKey.Enable {
		opt.HotKey = opt.HotKey.WithDefaults()
	}
	opt.Batch = opt.Batch.WithDefaults()
	cli := &Client{cl: cl, node: node, opt: opt}
	id := cl.Sys.AllocateEbbId()
	mgrs := node.Runtime.Mgrs()
	cli.mgrs = mgrs
	cli.ref = core.Attach(node.Domain, id, func(corei int) *clientRep {
		rep := &clientRep{cli: cli, mgr: mgrs[corei], pools: map[int]*backendPool{},
			queue: newReadQueue(cli.opt.Batch)}
		if cli.opt.HotKey.Enable {
			rep.hot = newHotKeyRep(cli.opt.HotKey)
		}
		return rep
	})
	if opt.HotKey.Enable {
		// A migration's dual-routing window must never serve a cached
		// value that predates it: flush every core's entries covered by
		// the moved ranges as the window opens (reads inside the window
		// additionally bypass the cache, closing the spawn race).
		cl.WatchHandoff(func(pending []MoveRange) {
			ranges := append([]MoveRange(nil), pending...)
			for corei := range mgrs {
				corei := corei
				mgrs[corei].Spawn(func(c *event.Ctx) {
					rep, ok := cli.ref.GetIfPresent(corei)
					if !ok || rep.hot == nil {
						return
					}
					n := rep.hot.cache.flushWhere(func(e *cacheEntry) bool {
						covered := func(h uint64) bool {
							for _, r := range ranges {
								if r.Contains(h) {
									return true
								}
							}
							return false
						}
						if covered(e.hash) {
							return true
						}
						// A write-spread key's salted shards hash elsewhere
						// than the entry itself; a moved shard also makes
						// the cached copy unsafe across the cutover.
						for s := 1; s < cli.cl.saltsOf([]byte(e.key)); s++ {
							if covered(ringHash(saltedKey([]byte(e.key), s))) {
								return true
							}
						}
						return false
					})
					rep.hot.stats.Flushes += uint64(n)
				})
			}
		})
	}
	cl.Watch(func(backend int, up bool) {
		if up {
			return // pools to a restored backend re-dial lazily
		}
		for corei := range mgrs {
			corei := corei
			mgrs[corei].Spawn(func(c *event.Ctx) {
				if rep, ok := cli.ref.GetIfPresent(corei); ok {
					rep.dropBackend(c, backend)
				}
			})
		}
	})
	return cli
}

// Id returns the Ebb id the client occupies in the shared namespace.
func (cli *Client) Id() core.Id { return cli.ref.Id() }

// Get fetches key, trying each replica in successor order: network
// errors and genuine misses both fall through to the next replica, so a
// key served by any live replica is found. When a later replica serves
// the read, replicas that missed it are repaired asynchronously. During
// a migration handoff the read set for a still-moving range is the old
// owners followed by the new ones, so the key is served wherever it
// currently lives.
//
// With the hot-key cache enabled, a key the frequency sketch has
// promoted is served from the core's local cache when a live (within
// TTL) copy is held, never touching the network; misses count the
// access toward promotion and fill the cache from the response once the
// key qualifies. Reads for ranges mid-migration bypass the cache
// entirely.
func (cli *Client) Get(c *event.Ctx, key []byte, cb Callback) {
	rep := cli.rep(c)
	rep.beginBatch()
	cli.getOne(c, rep, key, cb)
	rep.endBatch(c)
}

// BatchCallback receives a GetMulti's responses, index-aligned with the
// requested keys, once every key has resolved.
type BatchCallback func(c *event.Ctx, rs []Response)

// GetMulti fetches keys as one batch: each key takes the exact same
// path as Get - hot-key cache, handoff dual-read, replica failover,
// read repair - but keys bound for the same backend leave the core as
// one pipelined GETQ+Noop round instead of one GET apiece. cb fires
// once with all responses, index-aligned with keys; duplicate keys are
// answered independently. Failover retries for keys whose primary read
// failed go out immediately (as their own rounds) rather than waiting
// on the rest of the batch.
func (cli *Client) GetMulti(c *event.Ctx, keys [][]byte, cb BatchCallback) {
	if len(keys) == 0 {
		if cb != nil {
			cb(c, nil)
		}
		return
	}
	rep := cli.rep(c)
	out := make([]Response, len(keys))
	left := len(keys)
	rep.beginBatch()
	for i := range keys {
		i := i
		cli.getOne(c, rep, keys[i], func(c *event.Ctx, r Response) {
			out[i] = r
			if left--; left == 0 && cb != nil {
				cb(c, out)
			}
		})
	}
	rep.endBatch(c)
}

// getOne is the shared single-key read path behind Get and GetMulti:
// the hot-key cache consultation and promotion wrapping, then the
// replicated fetch. It runs inside an open batch scope, so the network
// reads it issues land in the core's coalescing queue.
func (cli *Client) getOne(c *event.Ctx, rep *clientRep, key []byte, cb Callback) {
	if hk := rep.hot; hk != nil {
		h := ringHash(key)
		if cli.handoffCoversKey(key) {
			hk.stats.HandoffBypass++
			hk.cache.invalidate(key)
			cli.fetch(c, key, cb)
			return
		}
		if e, ok := hk.cache.get(key, c.Now()); ok {
			hk.stats.Hits++
			if hk.opt.StalenessProbe {
				cli.probeStaleness(c, hk, key, e)
			}
			cli.maybeRevalidate(c, hk, key)
			if cb != nil {
				cb(c, Response{Status: memcached.StatusOK, Flags: e.flags, Value: e.value, CAS: e.cas})
			}
			return
		}
		hk.stats.Misses++
		if hk.sketch.touch(h) >= hk.opt.PromoteMin {
			// The key is hot: admit the response when it arrives, unless a
			// handoff opened over its range - or this client issued a
			// delete tombstone (read-your-own-delete) - in the meantime.
			keyCopy := append([]byte(nil), key...)
			gen := cli.tombGen
			inner := cb
			cb = func(c *event.Ctx, r Response) {
				if r.OK() && !cli.handoffCoversKey(keyCopy) && cli.tombGen == gen {
					hk.cache.put(string(keyCopy), h, append([]byte(nil), r.Value...), r.Flags, r.CAS, r.ExpiresAt, c.Now())
					if a := cli.cl.Audit; a != nil {
						a.Emit(c.Now(), int(cli.node.Id), audit.HotKeyPromoted, audit.Fields{
							"key": string(keyCopy), "core": c.Core().ID,
						})
					}
				}
				if inner != nil {
					inner(c, r)
				}
			}
		}
	}
	cli.fetch(c, key, cb)
}

// fetch reads key through the data path: a plain replica-failover read
// for an unsalted key. A write-spread key reads the shard that took the
// latest acknowledged write - one shard, not all of them - and verifies
// the served copy's stamp against the acked stamp (replica-wide stamps
// make that comparison exact). Only when verification fails - the shard
// lost its quorum majority, a delete reset the record, or nothing has
// acked since promotion - does the read fall back to the full fan-in.
// Without the targeted fast path every read of a promoted key would
// cost K network reads, and the hottest keys carry most of the skewed
// traffic: the fan-in amplification would cost more than the spreading
// saves.
func (cli *Client) fetch(c *event.Ctx, key []byte, cb Callback) {
	salts := cli.cl.saltsOf(key)
	if salts <= 1 {
		cli.getFrom(c, key, cli.cl.ReadSet(key), 0, nil, cb)
		return
	}
	cli.cl.hotWrite.SaltedReads++
	if salt, stamp, ok := cli.cl.saltTarget(key); ok {
		sk := saltedKey(key, salt)
		cli.getFrom(c, sk, cli.cl.ReadSet(sk), 0, nil, func(c *event.Ctx, r Response) {
			if r.OK() && r.CAS >= stamp {
				if cb != nil {
					cb(c, r)
				}
				return
			}
			cli.fanIn(c, key, salts, cb)
		})
		return
	}
	cli.fanIn(c, key, salts, cb)
}

// fanIn reads every salted shard of a spread key and folds to the
// newest stamp - the slow path behind fetch's targeted read.
func (cli *Client) fanIn(c *event.Ctx, key []byte, salts int, cb Callback) {
	cli.cl.hotWrite.SaltedFanIns++
	fold := &saltFold{left: salts, cb: cb}
	for s := 0; s < salts; s++ {
		sk := saltedKey(key, s)
		cli.getFrom(c, sk, cli.cl.ReadSet(sk), 0, nil, fold.add)
	}
}

// saltFold aggregates one fan-in read: writes round-robin the salts, so
// the salts hold successively older versions and the newest stamp wins
// (replica-wide stamps make that comparison exact). Misses on some
// salts are normal - fewer writes than salts since promotion - and a
// network error surfaces only when no salt could be served at all.
type saltFold struct {
	left      int
	best      Response
	sawOK     bool
	sawNetErr bool
	cb        Callback
}

func (f *saltFold) add(c *event.Ctx, r Response) {
	if r.OK() && (!f.sawOK || r.CAS > f.best.CAS) {
		f.best = r
		f.sawOK = true
	}
	if r.NetworkError() {
		f.sawNetErr = true
	}
	f.left--
	if f.left > 0 || f.cb == nil {
		return
	}
	switch {
	case f.sawOK:
		f.cb(c, f.best)
	case f.sawNetErr:
		f.cb(c, Response{Status: StatusNetworkError})
	default:
		f.cb(c, Response{Status: memcached.StatusKeyNotFound})
	}
}

// handoffCoversKey reports whether any of key's storage locations - the
// key itself, plus its salted shards when write-spread - sits in a
// still-pending moved range of an open migration window.
func (cli *Client) handoffCoversKey(key []byte) bool {
	ho := cli.cl.handoff
	if ho == nil {
		return false
	}
	if ho.covers(ringHash(key)) {
		return true
	}
	for s := 1; s < cli.cl.saltsOf(key); s++ {
		if ho.covers(ringHash(saltedKey(key, s))) {
			return true
		}
	}
	return false
}

// probeStaleness compares a served cache hit against the owner stores
// directly - simulation-level introspection (like Cluster.LiveHolders),
// recording how stale served values actually get so experiments can
// verify the TTL bound. It peeks every live replica of every salted
// shard: stamps are replica-wide, so the newest stamp any live owner
// holds is the latest durable version, and a served hit is stale
// exactly when that stamp is newer than the cached one (or the key was
// deleted everywhere).
func (cli *Client) probeStaleness(c *event.Ctx, hk *hotKeyRep, key []byte, e *cacheEntry) {
	var newest uint64
	found := false
	for s := 0; s < cli.cl.saltsOf(key); s++ {
		sk := saltedKey(key, s)
		for _, bi := range cli.cl.ReplicaSet(sk) {
			b := cli.cl.Backends[bi]
			if !cli.cl.Live(bi) || !b.Node.Alive() {
				continue
			}
			// An entry past its expiry (or behind a due flush) is not a
			// durable version: a hit matching only a dead copy is stale.
			if cur, ok := b.Srv.Store.Get(string(sk)); ok && b.Srv.EntryLive(cur, c.Now()) {
				found = true
				if cur.CAS > newest {
					newest = cur.CAS
				}
			}
		}
	}
	if found && newest <= e.cas {
		return
	}
	hk.stats.StaleServes++
	if age := c.Now() - e.storedAt; age > hk.stats.MaxStaleAge {
		hk.stats.MaxStaleAge = age
	}
}

// maybeRevalidate samples one in RevalidateEvery cache hits for an
// asynchronous CAS check against the replica set: if the owner's stamp
// moved, the cached copy is re-stamped with the fresh value (or dropped
// on a miss). Together with the TTL this bounds how long another
// client's write can go unseen.
func (cli *Client) maybeRevalidate(c *event.Ctx, hk *hotKeyRep, key []byte) {
	if hk.opt.RevalidateEvery <= 0 {
		return
	}
	hk.sinceReval++
	if hk.sinceReval < hk.opt.RevalidateEvery {
		return
	}
	hk.sinceReval = 0
	hk.stats.Revalidations++
	keyCopy := append([]byte(nil), key...)
	cli.fetch(c, keyCopy, func(c *event.Ctx, r Response) {
		cur, ok := hk.cache.m[string(keyCopy)]
		if !ok {
			return // evicted or invalidated while the check was in flight
		}
		switch {
		case r.OK() && r.CAS > cur.cas:
			// Stamps are monotonic (and, being replica-wide, comparable no
			// matter which replica answered), so only a strictly newer
			// response may replace the entry - a reordered older read
			// (overtaken by a write-path re-stamp) must not roll it back
			// or reset its TTL clock onto stale data.
			if cli.handoffCoversKey(keyCopy) {
				hk.cache.remove(cur)
				return
			}
			hk.stats.Refreshes++
			cur.value = append([]byte(nil), r.Value...)
			cur.flags = r.Flags
			cur.cas = r.CAS
			cur.expiresAt = r.ExpiresAt
			cur.storedAt = c.Now()
		case r.OK() && r.CAS == cur.cas:
			cur.storedAt = c.Now() // confirmed fresh: restart the TTL clock
		case r.Status == memcached.StatusKeyNotFound:
			hk.cache.remove(cur)
		}
	})
}

// forEachHotRep runs fn against every core's hot-key representative:
// synchronously on the submitting core (its state must change before
// the caller's next operation), via spawned events on the rest. fn
// receives the key bytes valid on its core (the spawned copies own
// their slice). Cores that never faulted the client in are skipped.
func (cli *Client) forEachHotRep(c *event.Ctx, key []byte, fn func(c *event.Ctx, hk *hotKeyRep, key []byte)) {
	self := c.Core().ID
	if rep, ok := cli.ref.GetIfPresent(self); ok && rep.hot != nil {
		fn(c, rep.hot, key)
	}
	keyCopy := append([]byte(nil), key...)
	for corei := range cli.mgrs {
		if corei == self {
			continue
		}
		corei := corei
		cli.mgrs[corei].Spawn(func(c *event.Ctx) {
			if rep, ok := cli.ref.GetIfPresent(corei); ok && rep.hot != nil {
				fn(c, rep.hot, keyCopy)
			}
		})
	}
}

// invalidateHot drops key's cached copy on every core of the client -
// the write-path half of the coherence rule. The submitting core is
// handled synchronously (its next read must not see the old value);
// other cores are invalidated via spawned events, a window also covered
// by the TTL bound.
//
// tombstone marks a Delete: those additionally bump the client's
// tombstone generation, standing down in-flight fills and re-stamps on
// every core that would otherwise resurrect the deleted value
// (overwrites don't need the generation because a re-stamp always
// carries a newer CAS than any racing stale fill).
func (cli *Client) invalidateHot(c *event.Ctx, key []byte, tombstone bool) {
	if !cli.opt.HotKey.Enable {
		return
	}
	if tombstone {
		cli.tombGen++
	}
	cli.forEachHotRep(c, key, func(c *event.Ctx, hk *hotKeyRep, kb []byte) {
		if hk.cache.invalidate(kb) {
			hk.stats.Invalidations++
			if a := cli.cl.Audit; a != nil {
				a.Emit(c.Now(), int(cli.node.Id), audit.HotKeyInvalidated, audit.Fields{
					"key": string(kb), "core": c.Core().ID,
				})
			}
		}
	})
}

// restampHot re-admits an acknowledged write into each core's cache,
// stamped with the CAS the server assigned it. Only keys the core's own
// sketch has promoted are admitted - a write to a cold key must not
// displace hot entries. Every re-stamp (the ack core's synchronous one
// and the spawned cross-core ones alike) stands down if its range went
// mid-migration or the client issued a delete tombstone after the write
// - gen is sampled at submit, so a Delete from ANY core during the
// write's flight suppresses resurrection everywhere.
func (cli *Client) restampHot(c *event.Ctx, key, value []byte, flags uint32, cas uint64, expiresAt sim.Time, gen uint64) {
	h := ringHash(key)
	cli.forEachHotRep(c, key, func(c *event.Ctx, hk *hotKeyRep, kb []byte) {
		if cli.tombGen != gen || cli.handoffCoversKey(kb) {
			return
		}
		if hk.sketch.estimate(h) < hk.opt.PromoteMin {
			return
		}
		hk.cache.put(string(kb), h, value, flags, cas, expiresAt, c.Now())
	})
}

// HotKeyStats sums the hot-key cache counters across the client's
// per-core representatives.
func (cli *Client) HotKeyStats() HotKeyStats {
	var out HotKeyStats
	for corei := range cli.mgrs {
		if rep, ok := cli.ref.GetIfPresent(corei); ok && rep.hot != nil {
			out.accumulate(rep.hot.stats)
		}
	}
	return out
}

// BatchStats sums the read-submission queue counters across the
// client's per-core representatives.
func (cli *Client) BatchStats() BatchStats {
	var out BatchStats
	for corei := range cli.mgrs {
		if rep, ok := cli.ref.GetIfPresent(corei); ok {
			out.Accumulate(rep.queue.stats)
		}
	}
	return out
}

// HotCached counts entries currently cached across the client's cores.
func (cli *Client) HotCached() int {
	n := 0
	for corei := range cli.mgrs {
		if rep, ok := cli.ref.GetIfPresent(corei); ok && rep.hot != nil {
			n += rep.hot.cache.len()
		}
	}
	return n
}

func (cli *Client) getFrom(c *event.Ctx, key []byte, reps []int, i int, missed []int, cb Callback) {
	cli.rep(c).submitRead(c, reps[i], key, func(c *event.Ctx, r Response) {
		switch {
		case r.OK():
			if i > 0 {
				if a := cli.cl.Audit; a != nil {
					a.Emit(c.Now(), int(cli.node.Id), audit.FailoverRead, audit.Fields{
						"backend": reps[i], "tried": i + 1, "key": string(key),
					})
				}
			}
			if len(missed) > 0 && !cli.opt.NoReadRepair {
				cli.readRepair(c, key, missed, r)
			}
			if cb != nil {
				cb(c, r)
			}
		case i+1 < len(reps):
			if r.Status == memcached.StatusKeyNotFound {
				missed = append(missed, reps[i])
			}
			cli.getFrom(c, key, reps, i+1, missed, cb)
		default:
			if cb != nil {
				cb(c, r)
			}
		}
	})
}

// readRepair re-sets the value onto replicas that reported a miss while
// a successor held the key (a restored backend catching up, or a
// replica that lost a racing write). Fire-and-forget: repair is an
// optimization, not a durability mechanism. The repair carries the
// serving replica's version stamp: the repaired copy must hold the SAME
// stamp as the survivors - a re-minted one would diverge the replica
// set and silently break the hot-key cache's cross-replica CAS
// comparisons - and the stamped store rule makes the repair a no-op on
// a replica that already holds something newer.
func (cli *Client) readRepair(c *event.Ctx, key []byte, missed []int, r Response) {
	if a := cli.cl.Audit; a != nil {
		a.Emit(c.Now(), int(cli.node.Id), audit.ReadRepair, audit.Fields{
			"key": string(key), "replicas": len(missed),
		})
	}
	value := append([]byte(nil), r.Value...)
	for _, backend := range missed {
		cli.rep(c).submit(c, backend, func(opaque uint32) []byte {
			// The repair carries the serving replica's absolute expiry
			// verbatim: re-encoding as whole relative seconds would shift
			// the repaired copy's deadline away from the survivors'.
			return memcached.BuildSetAbsExpiry(key, value, r.Flags, opaque, r.CAS, int64(r.ExpiresAt))
		}, nil)
	}
}

// Set stores key=value on every replica and invokes cb once the write
// quorum (a majority of the replica set) has acknowledged. A write that
// cannot reach quorum reports StatusNetworkError; it may still have
// landed on a minority of replicas - the usual leaderless-write
// semantics, converged by read repair. During a migration handoff the
// write is delivered to the union of old and new owners but the quorum
// is counted over the new owners, so an acked write is guaranteed to
// survive the range's cutover.
func (cli *Client) Set(c *event.Ctx, key, value []byte, flags uint32, cb Callback) {
	cli.SetWithExpiry(c, key, value, flags, 0, cb)
}

// SetWithExpiry is Set carrying a wire exptime (the stock rules: 0 =
// never, <= 30 days relative, > 30 days absolute unix time, negative =
// immediately expired). The coordinator resolves the exptime to an
// absolute virtual deadline ONCE, here, and every replica stores that
// exact instant - resolving per-replica would skew the deadline by each
// request's network delay, and replicas of one write must die together.
func (cli *Client) SetWithExpiry(c *event.Ctx, key, value []byte, flags uint32, exptime int64, cb Callback) {
	expires := memcached.AbsoluteExpiry(exptime, c.Now())
	// The write's version stamp is assigned HERE, once, by the
	// coordinator: every replica stores and echoes this exact stamp, so
	// any replica's answer to a later read carries a comparable version.
	// For a write-spread hot key the cluster also round-robins the salt,
	// spreading successive writes across distinct owner sets.
	stamp := cli.cl.nextStamp()
	skey, salt, spread := cli.cl.writeSaltFor(key)
	cli.cl.noteSet(skey)
	if spread {
		// On the quorum ack, record which salt now holds the newest acked
		// version (folded monotonically by stamp at the cluster): reads of
		// this key target that one shard instead of fanning in across all
		// of them.
		inner := cb
		cb = func(c *event.Ctx, r Response) {
			if r.OK() {
				cli.cl.noteSaltAck(key, salt, stamp)
			}
			if inner != nil {
				inner(c, r)
			}
		}
	}
	if cli.opt.HotKey.Enable {
		// Coherence, write path: drop every core's cached copy now (a
		// read racing the write must not see the old value from this
		// client), then re-stamp on the quorum ack. Pure invalidation
		// would instead evict the hottest keys ~10 times per second of
		// Zipf write traffic per core, capping the hit rate the cache
		// exists to provide.
		cli.invalidateHot(c, key, false)
		gen := cli.tombGen
		inner := cb
		valCopy := append([]byte(nil), value...)
		cb = func(c *event.Ctx, r Response) {
			// The quorum ack folds the maximum stamp any replica echoed.
			// Re-stamp the cache only when that fold is our own stamp: a
			// larger fold means a concurrent writer superseded this value
			// before it was even acked, and caching it - under either
			// stamp - would pin a stale value at the newer version number,
			// which revalidation could then never catch.
			if r.OK() && r.CAS == stamp {
				cli.restampHot(c, key, valCopy, flags, stamp, expires, gen)
			}
			if inner != nil {
				inner(c, r)
			}
		}
	}
	cli.quorumWrite(c, skey, cb, func(opaque uint32) []byte {
		return memcached.BuildSetAbsExpiry(skey, value, flags, opaque, stamp, int64(expires))
	}, func(r Response) bool { return r.OK() })
}

// Delete removes key from every replica, acking on quorum. A replica
// that never held the key counts as acknowledged - absence is the state
// the operation establishes. A delete landing inside a still-migrating
// range is additionally recorded so the migrator scrubs any copy the
// in-flight stream's pre-delete snapshot resurrects at the destination.
func (cli *Client) Delete(c *event.Ctx, key []byte, cb Callback) {
	if cli.opt.HotKey.Enable {
		cli.invalidateHot(c, key, true)
	}
	salts := cli.cl.saltsOf(key)
	if salts <= 1 {
		cli.cl.noteDelete(key)
		cli.quorumWrite(c, key, cb, func(opaque uint32) []byte {
			return memcached.BuildDelete(key, opaque)
		}, deleteAcked)
		return
	}
	// A write-spread key lives under every salt: absence must be
	// established at all of them, or a later fan-in read would fold the
	// surviving salt's copy right back. The targeted-read record stands
	// down too - there is no "latest written shard" to serve after a
	// delete, so reads fan in until a new write acks.
	cli.cl.noteSaltDelete(key)
	fold := &deleteFold{left: salts, cb: cb}
	for s := 0; s < salts; s++ {
		sk := saltedKey(key, s)
		cli.cl.noteDelete(sk)
		cli.quorumWrite(c, sk, fold.add, func(opaque uint32) []byte {
			return memcached.BuildDelete(sk, opaque)
		}, deleteAcked)
	}
}

// deleteAcked is the quorum-ack predicate for deletes: a replica that
// never held the key counts as acknowledged - absence is the state the
// operation establishes.
func deleteAcked(r Response) bool {
	return r.OK() || r.Status == memcached.StatusKeyNotFound
}

// deleteFold aggregates a write-spread key's per-salt quorum deletes:
// success once every salt's quorum established absence, network error
// if any salt's quorum could not be reached (some shard may still hold
// a copy).
type deleteFold struct {
	left   int
	sawOK  bool
	sawErr bool
	cb     Callback
}

func (f *deleteFold) add(c *event.Ctx, r Response) {
	if r.OK() {
		f.sawOK = true
	}
	if r.NetworkError() {
		f.sawErr = true
	}
	f.left--
	if f.left > 0 || f.cb == nil {
		return
	}
	switch {
	case f.sawErr:
		f.cb(c, Response{Status: StatusNetworkError})
	case f.sawOK:
		f.cb(c, Response{Status: memcached.StatusOK})
	default:
		f.cb(c, Response{Status: memcached.StatusKeyNotFound})
	}
}

// quorumWrite fans a write out per the cluster's write plan: every
// target receives it, only quorum members' acknowledgments decide the
// outcome.
func (cli *Client) quorumWrite(c *event.Ctx, key []byte, cb Callback, build func(opaque uint32) []byte, acked func(Response) bool) {
	targets, quorum := cli.cl.WritePlan(key)
	if cli.cl.Audit != nil {
		keyCopy := append([]byte(nil), key...)
		inner := cb
		cb = func(c *event.Ctx, r Response) {
			if r.NetworkError() {
				if a := cli.cl.Audit; a != nil {
					a.Emit(c.Now(), int(cli.node.Id), audit.QuorumWriteFail, audit.Fields{
						"key": string(keyCopy),
					})
				}
			}
			if inner != nil {
				inner(c, r)
			}
		}
	}
	q := newQuorumCall(len(quorum), cb)
	for _, backend := range targets {
		var done Callback
		if containsBackend(quorum, backend) {
			done = func(c *event.Ctx, r Response) { q.add(c, r, acked(r)) }
		}
		cli.rep(c).submit(c, backend, build, done)
	}
}

func (cli *Client) rep(c *event.Ctx) *clientRep { return cli.ref.Get(c.Core().ID) }

// quorumCall aggregates one write's per-replica acknowledgments into a
// single callback: success at a majority of the replica set, failure as
// soon as a majority can no longer be reached. Late responses after the
// verdict are ignored.
//
// The reported response's CAS is the MAXIMUM stamp echoed across the
// acknowledging replicas, folded monotonically as acks arrive: replicas
// echo the winning stamp under the stamped store rule, so a fold above
// the write's own stamp means some replica already held a newer
// concurrent write. The fold mirrors the cache's CAS-monotonic rule at
// the replica-stamp level - acks are network deliveries with no
// ordering guarantee, and an older stamp arriving after a newer one
// must never roll the fold back.
type quorumCall struct {
	need   int
	total  int
	acks   int
	fails  int
	done   bool
	first  Response // first acknowledged response, reported on success
	sawOK  bool
	maxCAS uint64 // monotonic max of acked replicas' echoed stamps
	cb     Callback
}

func newQuorumCall(total int, cb Callback) *quorumCall {
	return &quorumCall{need: total/2 + 1, total: total, cb: cb}
}

func (q *quorumCall) add(c *event.Ctx, r Response, ack bool) {
	if q.done {
		return
	}
	if ack {
		if r.CAS > q.maxCAS {
			q.maxCAS = r.CAS
		}
		if q.acks == 0 {
			q.first = r
		}
		if r.OK() {
			q.sawOK = true
			q.first = r
		}
		q.acks++
	} else {
		q.fails++
	}
	if q.acks >= q.need {
		q.done = true
		if q.cb != nil {
			resp := q.first
			if q.maxCAS > resp.CAS {
				resp.CAS = q.maxCAS
			}
			q.cb(c, resp)
		}
		return
	}
	if q.fails > q.total-q.need {
		q.done = true
		if q.cb != nil {
			q.cb(c, Response{Status: StatusNetworkError})
		}
	}
}

// clientRep is one core's representative: private pools, no locks.
type clientRep struct {
	cli   *Client
	mgr   *event.Manager
	pools map[int]*backendPool
	// queue is the core's read-submission queue (batch.go): every read
	// passes through it, coalescing same-backend keys into rounds.
	queue *readQueue
	// hot is the core's hot-key sketch + cache (nil when disabled).
	hot *hotKeyRep
}

// backendPool is one core's connections to one backend.
type backendPool struct {
	conns []*clientConn
	next  int
}

// submit routes one request onto a pooled connection. Writes (and any
// other always-answered op) go through here directly; reads go through
// submitRead, which lands them here - via the coalescing queue - as
// whole rounds.
func (r *clientRep) submit(c *event.Ctx, backend int, build func(opaque uint32) []byte, cb Callback) {
	if !r.cli.cl.Servable(backend) {
		// The backend was evicted after this operation's replica set was
		// computed. Fail fast so the caller's failover moves on, rather
		// than re-dialing a dead node (which, with timeouts disabled,
		// would park the operation behind minutes of SYN backoff).
		if cb != nil {
			cb(c, Response{Status: StatusNetworkError})
		}
		return
	}
	r.connFor(c, backend).send(c, build, cb)
}

// connFor picks the pooled connection the next request to backend rides
// on, dialing if the pool is below target size.
func (r *clientRep) connFor(c *event.Ctx, backend int) *clientConn {
	pool, ok := r.pools[backend]
	if !ok {
		pool = &backendPool{}
		r.pools[backend] = pool
	}
	// Grow the pool to its target size before multiplexing; drop
	// connections that closed under us and replace them.
	live := pool.conns[:0]
	for _, cc := range pool.conns {
		if !cc.closed {
			live = append(live, cc)
		}
	}
	pool.conns = live
	var cc *clientConn
	if len(pool.conns) < r.cli.opt.PoolSize {
		cc = r.dial(c, backend)
		pool.conns = append(pool.conns, cc)
	} else {
		cc = pool.conns[pool.next%len(pool.conns)]
		pool.next++
	}
	return cc
}

// dropBackend aborts every pooled connection to an evicted backend,
// failing its in-flight operations with StatusNetworkError so their
// callers fail over now rather than after TCP gives up.
func (r *clientRep) dropBackend(c *event.Ctx, backend int) {
	pool, ok := r.pools[backend]
	if !ok {
		return
	}
	delete(r.pools, backend)
	for _, cc := range pool.conns {
		cc.abort(c)
	}
}

// dial opens one connection to the backend's memcached port.
func (r *clientRep) dial(c *event.Ctx, backend int) *clientConn {
	cc := &clientConn{
		mgr:      r.mgr,
		timeout:  r.cli.opt.RequestTimeout,
		inflight: map[uint32]inflightOp{},
	}
	node := r.cli.cl.Backends[backend].Node
	r.cli.node.Runtime.Dial(c, node.IP(), memcached.Port, appnet.Callbacks{
		OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
			cc.onData(c, payload)
		},
		OnClose: func(c *event.Ctx, conn appnet.Conn, err error) {
			cc.fail(c)
		},
	}, func(c *event.Ctx, conn appnet.Conn) {
		cc.conn = conn
		cc.connected = true
		for _, pkt := range cc.pendingTx {
			conn.Send(c, iobuf.Wrap(pkt))
		}
		cc.pendingTx = nil
	})
	return cc
}

// inflightOp is one outstanding request: its completion callback plus
// the timeout timer that fires it as a network error if no response
// arrives in time.
type inflightOp struct {
	cb    Callback
	timer *sim.Event
}

// clientConn multiplexes requests over one TCP connection, matching
// responses to callbacks by opaque.
type clientConn struct {
	conn       appnet.Conn
	mgr        *event.Manager
	timeout    sim.Time
	connected  bool
	closed     bool
	pendingTx  [][]byte
	inflight   map[uint32]inflightOp
	nextOpaque uint32
	rx         []byte
}

func (cc *clientConn) send(c *event.Ctx, build func(opaque uint32) []byte, cb Callback) {
	cc.transmit(c, build(cc.register(c, cb)))
}

// register allocates an opaque for one request, installs its callback
// and timeout timer, and returns the opaque for the caller to encode.
// Splitting registration from transmission is what lets sendRound stamp
// a whole GETQ round's opaques before writing one coalesced packet.
func (cc *clientConn) register(c *event.Ctx, cb Callback) uint32 {
	opaque := cc.nextOpaque
	cc.nextOpaque++
	op := inflightOp{cb: cb}
	if cc.timeout > 0 && cc.mgr != nil {
		op.timer = cc.mgr.After(cc.timeout, func(c *event.Ctx) {
			cur, ok := cc.inflight[opaque]
			if !ok {
				return
			}
			delete(cc.inflight, opaque)
			if cur.cb != nil {
				cur.cb(c, Response{Status: StatusNetworkError})
			}
		})
	}
	cc.inflight[opaque] = op
	return opaque
}

// transmit writes one packet (one request, or one coalesced round),
// queueing it if the connection is still handshaking.
func (cc *clientConn) transmit(c *event.Ctx, pkt []byte) {
	if !cc.connected {
		cc.pendingTx = append(cc.pendingTx, pkt)
		return
	}
	cc.conn.Send(c, iobuf.Wrap(pkt))
}

// fail reports every outstanding operation as a network error - NOT a
// miss: the keys may well exist, the backend is just unreachable - and
// retires the connection from its pool.
func (cc *clientConn) fail(c *event.Ctx) {
	cc.closed = true
	cc.connected = false
	cc.pendingTx = nil
	for opaque, op := range cc.inflight {
		delete(cc.inflight, opaque)
		if op.timer != nil {
			op.timer.Cancel()
		}
		if op.cb != nil {
			op.cb(c, Response{Status: StatusNetworkError})
		}
	}
}

// abort tears the connection down proactively (ring eviction of its
// backend), failing outstanding operations immediately.
func (cc *clientConn) abort(c *event.Ctx) {
	if cc.closed {
		return
	}
	cc.fail(c)
	if cc.conn != nil {
		cc.conn.Close(c)
	}
}

// onData reassembles the response stream and dispatches callbacks. A
// malformed or wrong-magic response means the stream is desynced and
// can never recover: the connection is torn down and every outstanding
// operation fails, rather than wedging silently.
func (cc *clientConn) onData(c *event.Ctx, payload *iobuf.IOBuf) {
	data := payload.CopyOut()
	if len(cc.rx) > 0 {
		cc.rx = append(cc.rx, data...)
		data = cc.rx
	}
	consumed := 0
	for {
		hdr, body, n, err := memcached.NextFrame(data[consumed:], memcached.MagicResponse)
		if err != nil {
			cc.rx = nil
			if cc.conn != nil {
				cc.conn.Close(c)
			}
			cc.fail(c)
			return
		}
		if n == 0 {
			break
		}
		consumed += n
		op, ok := cc.inflight[hdr.Opaque]
		if !ok {
			continue // timed out; the caller has already failed over
		}
		delete(cc.inflight, hdr.Opaque)
		if op.timer != nil {
			op.timer.Cancel()
		}
		if op.cb == nil {
			continue
		}
		resp := Response{Status: hdr.Status, CAS: hdr.CAS}
		if hdr.ExtrasLen >= 4 {
			resp.Flags = binary.BigEndian.Uint32(body)
		}
		if int(hdr.ExtrasLen) >= memcached.GetResponseExtrasLen {
			resp.ExpiresAt = sim.Time(int64(binary.BigEndian.Uint64(body[4:12])))
		}
		if len(body) > int(hdr.ExtrasLen) {
			resp.Value = append([]byte(nil), body[hdr.ExtrasLen:]...)
		}
		op.cb(c, resp)
	}
	if consumed < len(data) {
		cc.rx = append(cc.rx[:0], data[consumed:]...)
	} else {
		cc.rx = cc.rx[:0]
	}
}
