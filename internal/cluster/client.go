package cluster

import (
	"encoding/binary"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/core"
	"ebbrt/internal/event"
	"ebbrt/internal/hosted"
	"ebbrt/internal/iobuf"
)

// Response is the outcome of one cluster operation.
type Response struct {
	Status uint16
	Flags  uint32
	Value  []byte
}

// OK reports protocol success.
func (r Response) OK() bool { return r.Status == memcached.StatusOK }

// Callback receives an operation's response on the submitting core.
type Callback func(c *event.Ctx, r Response)

// DefaultPoolSize is the per-core, per-backend connection count.
const DefaultPoolSize = 2

// Client is the cluster-aware memcached client Ebb. Its id lives in the
// deployment-wide namespace (allocated by the frontend); each core that
// touches it faults in its own representative holding private
// connection pools to every backend, so request submission never
// crosses cores - the Ebb pattern of paper §3.1 applied client-side.
type Client struct {
	cl       *Cluster
	node     *hosted.Node
	ref      core.Ref[clientRep]
	poolSize int
}

// NewClient installs a client Ebb for the cluster on the given node
// (typically the hosted frontend). poolSize <= 0 selects
// DefaultPoolSize connections per core per backend.
func NewClient(cl *Cluster, node *hosted.Node, poolSize int) *Client {
	if poolSize <= 0 {
		poolSize = DefaultPoolSize
	}
	cli := &Client{cl: cl, node: node, poolSize: poolSize}
	id := cl.Sys.AllocateEbbId()
	cli.ref = core.Attach(node.Domain, id, func(corei int) *clientRep {
		return &clientRep{cli: cli, pools: map[int]*backendPool{}}
	})
	return cli
}

// Id returns the Ebb id the client occupies in the shared namespace.
func (cli *Client) Id() core.Id { return cli.ref.Id() }

// Get fetches key from its shard.
func (cli *Client) Get(c *event.Ctx, key []byte, cb Callback) {
	cli.rep(c).submit(c, cli.route(key), func(opaque uint32) []byte {
		return memcached.BuildGet(key, opaque)
	}, cb)
}

// Set stores key=value on its shard.
func (cli *Client) Set(c *event.Ctx, key, value []byte, flags uint32, cb Callback) {
	cli.rep(c).submit(c, cli.route(key), func(opaque uint32) []byte {
		return memcached.BuildSet(key, value, flags, opaque)
	}, cb)
}

// Delete removes key from its shard.
func (cli *Client) Delete(c *event.Ctx, key []byte, cb Callback) {
	cli.rep(c).submit(c, cli.route(key), func(opaque uint32) []byte {
		return memcached.BuildDelete(key, opaque)
	}, cb)
}

func (cli *Client) rep(c *event.Ctx) *clientRep { return cli.ref.Get(c.Core().ID) }

func (cli *Client) route(key []byte) int { return cli.cl.Ring.Lookup(key) }

// clientRep is one core's representative: private pools, no locks.
type clientRep struct {
	cli   *Client
	pools map[int]*backendPool
}

// backendPool is one core's connections to one backend.
type backendPool struct {
	conns []*clientConn
	next  int
}

// submit routes one request onto a pooled connection.
func (r *clientRep) submit(c *event.Ctx, backend int, build func(opaque uint32) []byte, cb Callback) {
	pool, ok := r.pools[backend]
	if !ok {
		pool = &backendPool{}
		r.pools[backend] = pool
	}
	// Grow the pool to its target size before multiplexing; drop
	// connections that closed under us and replace them.
	live := pool.conns[:0]
	for _, cc := range pool.conns {
		if !cc.closed {
			live = append(live, cc)
		}
	}
	pool.conns = live
	var cc *clientConn
	if len(pool.conns) < r.cli.poolSize {
		cc = r.dial(c, backend)
		pool.conns = append(pool.conns, cc)
	} else {
		cc = pool.conns[pool.next%len(pool.conns)]
		pool.next++
	}
	cc.send(c, build, cb)
}

// dial opens one connection to the backend's memcached port.
func (r *clientRep) dial(c *event.Ctx, backend int) *clientConn {
	cc := &clientConn{inflight: map[uint32]Callback{}}
	node := r.cli.cl.Backends[backend].Node
	r.cli.node.Runtime.Dial(c, node.IP(), memcached.Port, appnet.Callbacks{
		OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
			cc.onData(c, payload)
		},
		OnClose: func(c *event.Ctx, conn appnet.Conn, err error) {
			cc.fail(c)
		},
	}, func(c *event.Ctx, conn appnet.Conn) {
		cc.conn = conn
		cc.connected = true
		for _, pkt := range cc.pendingTx {
			conn.Send(c, iobuf.Wrap(pkt))
		}
		cc.pendingTx = nil
	})
	return cc
}

// clientConn multiplexes requests over one TCP connection, matching
// responses to callbacks by opaque.
type clientConn struct {
	conn       appnet.Conn
	connected  bool
	closed     bool
	pendingTx  [][]byte
	inflight   map[uint32]Callback
	nextOpaque uint32
	rx         []byte
}

func (cc *clientConn) send(c *event.Ctx, build func(opaque uint32) []byte, cb Callback) {
	opaque := cc.nextOpaque
	cc.nextOpaque++
	cc.inflight[opaque] = cb
	pkt := build(opaque)
	if !cc.connected {
		cc.pendingTx = append(cc.pendingTx, pkt)
		return
	}
	cc.conn.Send(c, iobuf.Wrap(pkt))
}

// fail reports every outstanding operation as failed and retires the
// connection from its pool.
func (cc *clientConn) fail(c *event.Ctx) {
	cc.closed = true
	cc.connected = false
	for opaque, cb := range cc.inflight {
		delete(cc.inflight, opaque)
		if cb != nil {
			cb(c, Response{Status: memcached.StatusKeyNotFound})
		}
	}
}

// onData reassembles the response stream and dispatches callbacks. A
// malformed or wrong-magic response means the stream is desynced and
// can never recover: the connection is torn down and every outstanding
// operation fails, rather than wedging silently.
func (cc *clientConn) onData(c *event.Ctx, payload *iobuf.IOBuf) {
	data := payload.CopyOut()
	if len(cc.rx) > 0 {
		cc.rx = append(cc.rx, data...)
		data = cc.rx
	}
	consumed := 0
	for {
		hdr, body, n, err := memcached.NextFrame(data[consumed:], memcached.MagicResponse)
		if err != nil {
			cc.rx = nil
			if cc.conn != nil {
				cc.conn.Close(c)
			}
			cc.fail(c)
			return
		}
		if n == 0 {
			break
		}
		consumed += n
		cb, ok := cc.inflight[hdr.Opaque]
		if !ok {
			continue
		}
		delete(cc.inflight, hdr.Opaque)
		if cb == nil {
			continue
		}
		resp := Response{Status: hdr.Status}
		if int(hdr.ExtrasLen) >= memcached.GetResponseExtrasLen {
			resp.Flags = binary.BigEndian.Uint32(body)
		}
		if len(body) > int(hdr.ExtrasLen) {
			resp.Value = append([]byte(nil), body[hdr.ExtrasLen:]...)
		}
		cb(c, resp)
	}
	if consumed < len(data) {
		cc.rx = append(cc.rx[:0], data[consumed:]...)
	} else {
		cc.rx = cc.rx[:0]
	}
}
