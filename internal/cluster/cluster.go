package cluster

import (
	"fmt"

	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/audit"
	"ebbrt/internal/hosted"
	"ebbrt/internal/netstack"
)

// Backend is one native node running a memcached shard.
type Backend struct {
	Node *hosted.Node
	Srv  *memcached.Server
}

// Options configures a deployment beyond the defaults.
type Options struct {
	// CoresPerBackend sizes each native backend (default 1).
	CoresPerBackend int
	// Replicas is R, the number of ring successors each key is written
	// to (default 1: no replication, the pre-fault-tolerance behavior).
	Replicas int
	// FrontendCores sizes the hosted frontend (default 2), for
	// deployments that drive client load through the frontend itself.
	FrontendCores int
	// VNodes overrides the ring's virtual points per backend (default
	// DefaultVNodes).
	VNodes int
	// HotKey configures the client Ebb's hot-key read cache for every
	// client created on this cluster (a client's own ClientOptions.HotKey
	// takes precedence when enabled). See HotKeyOptions.
	HotKey HotKeyOptions
	// HotWrite configures salted hot-write spreading. Unlike HotKey it
	// is purely deployment-level: salting changes where data lives, so
	// every client - cached or not - must salt and fan in consistently.
	// See HotWriteOptions.
	HotWrite HotWriteOptions
	// Net is the network stack configuration every node boots with
	// (zero value: netstack.DefaultConfig()). The lossy-link experiment
	// uses it to compare the adaptive-RTO transport against the
	// fixed-RTO baseline on identical deployments.
	Net netstack.Config
	// Store builds each backend's store (nil: the unbounded RCU table).
	// The MemoryPressure experiment supplies memcached.NewBoundedStore
	// here to run every shard under a byte budget.
	Store func() memcached.Store
	// Audit, when non-nil, receives every typed event the deployment
	// emits: TCP transitions from every node's stack, health-monitor
	// beats, ring membership changes, migration phases, and client quorum
	// outcomes. See internal/audit.
	Audit *audit.Log
}

// Cluster is a sharded memcached deployment: the hosted frontend plus N
// native backends on one switched network, each key served by the R
// ring successors the Ring selects.
type Cluster struct {
	Sys      *hosted.System
	Backends []*Backend
	Ring     *Ring
	// Frontends is the hosted tier: node 0's frontend plus any extras
	// added by AddFrontend, each typically running its own client Ebb
	// and load source.
	Frontends []*hosted.Node
	// Replicas is the deployment's replication factor R. Writes go to
	// all R replicas and ack on a majority quorum; reads prefer the
	// primary and fail over along the successor list.
	Replicas int
	// HotKey is the deployment-wide hot-key cache configuration clients
	// inherit (Options.HotKey).
	HotKey HotKeyOptions
	// HotWrite is the deployment-wide write-spreading configuration
	// (Options.HotWrite, resolved to its defaults when enabled).
	HotWrite HotWriteOptions
	// Audit is the deployment's event log (Options.Audit; nil drops every
	// event). Subsystems emit through it unconditionally - a nil Log is
	// safe - but hot paths still guard so no Fields map is built unheard.
	Audit *audit.Log

	// stampSeq feeds nextStamp: the coordinator-assigned, replica-wide
	// version stamps every client write carries. One counter for the
	// deployment keeps stamps totally ordered across clients and cores.
	stampSeq uint64

	// newStore builds each backend's store (Options.Store; nil means the
	// unbounded RCU table).
	newStore func() memcached.Store

	// writeSketch and salted implement hot-write spreading: the sketch
	// counts writes per key cluster-wide; a key crossing
	// HotWrite.PromoteMin is entered into salted with a round-robin
	// cursor and its writes spread over HotWrite.Salts storage keys
	// from then on. Cluster-level (not per-client) on purpose: salting
	// changes placement, so a reader that disagreed with the writer
	// about a key's salt set would simply miss its newest value.
	writeSketch *cmSketch
	salted      map[string]*saltState
	hotWrite    HotWriteStats

	down            []bool // per backend: evicted from the ring
	draining        []bool // off the ring but still serving its old share (live decommission)
	decommissioned  []bool // permanently removed; never restored by the monitor
	watchers        []func(backend int, up bool)
	handoffWatchers []func(pending []MoveRange)

	// handoff, when non-nil, is an in-progress migration: reads and
	// writes for keys inside a still-pending moved range are dual-routed
	// across the old and new owner sets until the migrator cuts the
	// range over.
	handoff *handoffState
}

// handoffState is the dual-routing window of one migration: the ring as
// it was before the membership change, plus the moved ranges that have
// not yet been streamed to their new owners.
type handoffState struct {
	prev    *Ring
	pending []MoveRange
	// deleted records keys quorum-deleted while inside a pending moved
	// range. The migration stream carries a snapshot taken before those
	// deletes, so its add-if-absent application would resurrect them at
	// the destination; the migrator scrubs this set there after the
	// stream lands, before cutting the range over.
	deleted map[string]bool
}

func (ho *handoffState) covers(h uint64) bool {
	for _, r := range ho.pending {
		if r.Contains(h) {
			return true
		}
	}
	return false
}

// New boots a deployment with the given number of single-shard native
// backends, each with coresPerBackend cores, and no replication.
func New(backends, coresPerBackend int) *Cluster {
	return NewCluster(backends, Options{CoresPerBackend: coresPerBackend})
}

// NewCluster boots a deployment under the given options. The hosted
// frontend comes up first (it owns id allocation, as in the single-node
// system); the backends then join and immediately start serving.
func NewCluster(backends int, opt Options) *Cluster {
	if opt.CoresPerBackend <= 0 {
		opt.CoresPerBackend = 1
	}
	if opt.Replicas <= 0 {
		opt.Replicas = 1
	}
	if opt.Replicas > backends {
		panic(fmt.Sprintf("cluster: %d replicas exceed %d backends", opt.Replicas, backends))
	}
	cl := &Cluster{
		Sys:      hosted.NewSystemOpts(hosted.SystemOptions{FrontendCores: opt.FrontendCores, Net: opt.Net, Audit: opt.Audit}),
		Ring:     NewRing(opt.VNodes),
		Replicas: opt.Replicas,
		HotKey:   opt.HotKey,
		HotWrite: opt.HotWrite,
		newStore: opt.Store,
		Audit:    opt.Audit,
	}
	cl.Frontends = []*hosted.Node{cl.Sys.Frontend()}
	if cl.HotWrite.Enable {
		cl.HotWrite = cl.HotWrite.WithDefaults()
		cl.writeSketch = newCMSketch(cl.HotWrite.SketchWidth, cl.HotWrite.SketchDepth)
		cl.salted = map[string]*saltState{}
	}
	for i := 0; i < backends; i++ {
		cl.AddBackend(opt.CoresPerBackend)
	}
	return cl
}

// AddBackend boots one more native node, starts its memcached shard, and
// joins it to the ring. Keys that hash onto the new backend's points
// migrate to it; the consistent ring keeps that share bounded near
// 1/(n+1) of the keyspace. No store handoff is performed - as with real
// memcached, migrated keys fault in as cache misses. Migrator.Join is
// the streamed alternative that keeps the cache warm through the join.
func (cl *Cluster) AddBackend(cores int) *Backend {
	node := cl.Sys.AddNativeNode(cores)
	var store memcached.Store
	if cl.newStore != nil {
		store = cl.newStore()
	} else {
		store = memcached.NewRCUStore()
	}
	srv := memcached.NewServer(store, cores)
	if err := srv.Serve(node.Runtime); err != nil {
		panic(err)
	}
	b := &Backend{Node: node, Srv: srv}
	cl.Backends = append(cl.Backends, b)
	cl.down = append(cl.down, false)
	cl.draining = append(cl.draining, false)
	cl.decommissioned = append(cl.decommissioned, false)
	cl.Ring.Add(len(cl.Backends) - 1)
	return b
}

// AddFrontend boots one more hosted (GPOS) node for the frontend tier
// and returns it. The new node serves no shard and joins no ring - like
// node 0 it is pure client tier, but unlike node 0 it owns no Ebb id
// allocation. The FrontendScaling experiment runs one client Ebb and
// one load source per frontend.
func (cl *Cluster) AddFrontend(cores int) *hosted.Node {
	node := cl.Sys.AddHostedNode(cores)
	cl.Frontends = append(cl.Frontends, node)
	return node
}

// AddLoadGenerator boots an extra native node that serves nothing - a
// client machine for driving load at the shards directly, as the
// paper's mutilate host does. It is not added to the ring.
func (cl *Cluster) AddLoadGenerator(cores int) *hosted.Node {
	return cl.Sys.AddNativeNode(cores)
}

// Watch registers fn to be called whenever a backend's ring membership
// changes: up=false on eviction, up=true on restoration. Callbacks run
// synchronously inside EvictBackend/RestoreBackend.
func (cl *Cluster) Watch(fn func(backend int, up bool)) {
	cl.watchers = append(cl.watchers, fn)
}

// WatchHandoff registers fn to be called synchronously when a
// migration's dual-routing window opens, with the ranges about to
// move. The client Ebb uses it to flush hot-key cache entries covered
// by the migration before any dual-routed operation runs.
func (cl *Cluster) WatchHandoff(fn func(pending []MoveRange)) {
	cl.handoffWatchers = append(cl.handoffWatchers, fn)
}

// EvictBackend removes a backend from the ring, rerouting its keys to
// their ring successors (which, under replication, already hold them).
// The backend object and its node stay in place so a recovered machine
// can be restored. Eviction is idempotent.
func (cl *Cluster) EvictBackend(i int) {
	if cl.down[i] {
		return
	}
	cl.down[i] = true
	cl.Ring.Remove(i)
	// Emitted here, at the membership change itself, so the event fires
	// whether the health monitor, a migration, or a test evicted the
	// backend.
	if a := cl.Audit; a != nil {
		a.Emit(cl.Sys.K.Now(), int(cl.Backends[i].Node.Id), audit.HealthEvicted, audit.Fields{"backend": i})
	}
	for _, fn := range cl.watchers {
		fn(i, false)
	}
}

// RestoreBackend re-adds an evicted backend to the ring. Its store
// resumes serving whatever it held before the failure; keys written
// while it was out fault in from the surviving replicas via the
// client's read fall-through. Restoration is idempotent; a
// decommissioned backend is never restored.
func (cl *Cluster) RestoreBackend(i int) {
	if !cl.down[i] || cl.decommissioned[i] {
		return
	}
	cl.down[i] = false
	cl.Ring.Add(i)
	if a := cl.Audit; a != nil {
		a.Emit(cl.Sys.K.Now(), int(cl.Backends[i].Node.Id), audit.HealthRestored, audit.Fields{"backend": i})
	}
	for _, fn := range cl.watchers {
		fn(i, true)
	}
}

// Live reports whether backend i is on the ring.
func (cl *Cluster) Live(i int) bool { return !cl.down[i] }

// Decommissioned reports whether backend i has been permanently removed.
func (cl *Cluster) Decommissioned(i int) bool { return cl.decommissioned[i] }

// Servable reports whether the client may still submit operations to
// backend i: everything on the ring, plus a draining backend - off the
// ring but serving its old key share until the migrator finishes
// streaming it away.
func (cl *Cluster) Servable(i int) bool { return !cl.down[i] || cl.draining[i] }

// LiveBackends counts backends currently on the ring.
func (cl *Cluster) LiveBackends() int {
	n := 0
	for _, d := range cl.down {
		if !d {
			n++
		}
	}
	return n
}

// Route returns the backend owning key's primary.
func (cl *Cluster) Route(key []byte) *Backend {
	return cl.Backends[cl.Ring.Lookup(key)]
}

// ReplicaSet returns the backends holding key, primary first. The set
// shrinks below R only when fewer than R backends remain on the ring.
func (cl *Cluster) ReplicaSet(key []byte) []int {
	return cl.Ring.LookupN(key, cl.Replicas)
}

// ReadSet returns the backends a read should try, in preference order.
// Outside a handoff it is the replica set. For a key inside a pending
// moved range it is the old owners (who certainly hold warm data)
// followed by the new owners, deduplicated - the read falls through
// old to new, so the key is served wherever it currently lives.
func (cl *Cluster) ReadSet(key []byte) []int {
	h := ringHash(key)
	if ho := cl.handoff; ho != nil && ho.covers(h) {
		return dedupBackends(ho.prev.OwnersAt(h, cl.Replicas), cl.Ring.OwnersAt(h, cl.Replicas))
	}
	return cl.Ring.LookupN(key, cl.Replicas)
}

// WritePlan returns the backends a write must be delivered to, plus the
// subset whose acknowledgments count toward the quorum. Outside a
// handoff both are the replica set. During handoff a write in a pending
// moved range is delivered to the union of old and new owners, but the
// quorum is counted over the NEW owners only: an acked write is then
// guaranteed to survive the cutover (a majority of the future replica
// set holds it), while the old owners receive it best-effort so
// pre-cutover reads - which try them first - stay fresh.
func (cl *Cluster) WritePlan(key []byte) (targets, quorum []int) {
	h := ringHash(key)
	if ho := cl.handoff; ho != nil && ho.covers(h) {
		cur := cl.Ring.OwnersAt(h, cl.Replicas)
		return dedupBackends(cur, ho.prev.OwnersAt(h, cl.Replicas)), cur
	}
	reps := cl.Ring.LookupN(key, cl.Replicas)
	return reps, reps
}

// stampBase offsets coordinator-assigned version stamps above any
// server-minted CAS (Server.nextCAS counts up from 1): a stamped write
// must always supersede an entry that predates stamping (a direct
// Prepopulate, a text-protocol store), and the two counters must never
// produce the same number for different writes of one key.
const stampBase uint64 = 1 << 48

// nextStamp returns the next replica-wide version stamp. The client Ebb
// draws one per write at submit; every replica stores and echoes it
// verbatim, which is what makes CAS comparisons meaningful across a
// replica set. The counter is deployment-wide shared state like the
// ring - coordination the simulation models at the cluster object.
func (cl *Cluster) nextStamp() uint64 {
	cl.stampSeq++
	return stampBase + cl.stampSeq
}

// saltState is one promoted key's spreading state: the write
// round-robin cursor, plus the latest acknowledged salt and stamp -
// the shard a read targets first and the version it verifies against.
// Deployment-wide shared state like the ring (the simulation models the
// coordination at the cluster object): every client must round-robin
// and target consistently or reads would miss fresh writes.
type saltState struct {
	rr        int
	lastSalt  int
	lastStamp uint64
}

// writeSaltFor routes one write of key: it counts the write in the
// cluster's write-frequency sketch, promotes the key into the salted
// set when it crosses the threshold, and for a salted key returns the
// round-robin salt's storage key plus which salt was picked. Unsalted
// (or spreading disabled): the key itself, spread=false.
func (cl *Cluster) writeSaltFor(key []byte) (skey []byte, salt int, spread bool) {
	if cl.writeSketch == nil {
		return key, 0, false
	}
	st, ok := cl.salted[string(key)]
	if !ok {
		if cl.writeSketch.touch(ringHash(key)) < cl.HotWrite.PromoteMin {
			return key, 0, false
		}
		st = &saltState{}
		cl.salted[string(key)] = st
		cl.hotWrite.Promoted++
	}
	s := st.rr % cl.HotWrite.Salts
	st.rr++
	cl.hotWrite.SaltedWrites++
	return saltedKey(key, s), s, true
}

// noteSaltAck records a spread write's quorum acknowledgment: the salt
// now holding the newest acked version, folded monotonically by stamp -
// a slower older write acking after a newer one must not point reads at
// its shard.
func (cl *Cluster) noteSaltAck(key []byte, salt int, stamp uint64) {
	if st, ok := cl.salted[string(key)]; ok && stamp > st.lastStamp {
		st.lastStamp = stamp
		st.lastSalt = salt
	}
}

// saltTarget reports which salted shard holds a spread key's latest
// acked write, and that write's stamp for the read to verify against.
// ok is false when nothing has acked since promotion (or since a
// delete): the read must fan in across every salt instead.
func (cl *Cluster) saltTarget(key []byte) (salt int, stamp uint64, ok bool) {
	st, present := cl.salted[string(key)]
	if !present || st.lastStamp == 0 {
		return 0, 0, false
	}
	return st.lastSalt, st.lastStamp, true
}

// noteSaltDelete stands the targeted-read record down: after a delete
// there is no "latest written shard" to serve from, so reads fan in
// (and find absence everywhere) until a new write acks.
func (cl *Cluster) noteSaltDelete(key []byte) {
	if st, ok := cl.salted[string(key)]; ok {
		st.lastStamp = 0
	}
}

// saltsOf reports how many salted storage keys a read of key must fan
// in over: 1 for an unsalted key, HotWrite.Salts for a promoted one.
// Read-only - reads must not advance the write sketch.
func (cl *Cluster) saltsOf(key []byte) int {
	if cl.salted == nil {
		return 1
	}
	if _, ok := cl.salted[string(key)]; ok {
		return cl.HotWrite.Salts
	}
	return 1
}

// HotWriteStats reports the deployment's write-spreading counters.
func (cl *Cluster) HotWriteStats() HotWriteStats {
	s := cl.hotWrite
	if cl.salted != nil {
		s.Promoted = len(cl.salted)
	}
	return s
}

// Migrating reports whether a handoff window is open.
func (cl *Cluster) Migrating() bool { return cl.handoff != nil }

// beginHandoff opens the dual-routing window for a migration.
func (cl *Cluster) beginHandoff(prev *Ring, plan []MoveRange) {
	cl.handoff = &handoffState{
		prev:    prev,
		pending: append([]MoveRange(nil), plan...),
		deleted: map[string]bool{},
	}
	for _, fn := range cl.handoffWatchers {
		fn(cl.handoff.pending)
	}
}

// noteDelete records a delete issued during the handoff window for a
// key still inside a pending moved range, so the migrator can scrub a
// resurrected pre-delete snapshot copy at the destination.
func (cl *Cluster) noteDelete(key []byte) {
	if ho := cl.handoff; ho != nil && ho.covers(ringHash(key)) {
		ho.deleted[string(key)] = true
	}
}

// noteSet clears a recorded delete: the key was re-created, and
// scrubbing it now would undo the newer write.
func (cl *Cluster) noteSet(key []byte) {
	if ho := cl.handoff; ho != nil && len(ho.deleted) > 0 {
		delete(ho.deleted, string(key))
	}
}

// peekDeleted returns the recorded deletes falling inside the given
// ranges, without consuming them - the scrub clears them only once it
// has verifiably applied at the destination.
func (cl *Cluster) peekDeleted(ranges []MoveRange) [][]byte {
	ho := cl.handoff
	if ho == nil || len(ho.deleted) == 0 {
		return nil
	}
	var out [][]byte
	for k := range ho.deleted {
		h := ringHash([]byte(k))
		for _, r := range ranges {
			if r.Contains(h) {
				out = append(out, []byte(k))
				break
			}
		}
	}
	return out
}

// clearDeleted drops recorded deletes that have been scrubbed.
func (cl *Cluster) clearDeleted(keys [][]byte) {
	if ho := cl.handoff; ho != nil {
		for _, k := range keys {
			delete(ho.deleted, string(k))
		}
	}
}

// completeRange cuts one moved range over: keys inside it now route
// purely by the live ring.
func (cl *Cluster) completeRange(r MoveRange) {
	ho := cl.handoff
	if ho == nil {
		return
	}
	keep := ho.pending[:0]
	for _, p := range ho.pending {
		if p.Lo != r.Lo || p.Hi != r.Hi || p.Dest != r.Dest {
			keep = append(keep, p)
		}
	}
	ho.pending = keep
}

// endHandoff closes the dual-routing window.
func (cl *Cluster) endHandoff() { cl.handoff = nil }

// startDrain begins a live decommission: backend i leaves the ring (new
// placement no longer includes it) but keeps serving its old share
// until the migrator finishes streaming it to the new owners. The
// backend is marked decommissioned immediately so the health monitor
// never restores it.
func (cl *Cluster) startDrain(i int) {
	cl.decommissioned[i] = true
	cl.draining[i] = true
	cl.Ring.Remove(i)
}

// finishDrain completes a decommission: the backend stops serving and
// clients tear down their pools to it.
func (cl *Cluster) finishDrain(i int) {
	cl.draining[i] = false
	if !cl.down[i] {
		cl.down[i] = true
		for _, fn := range cl.watchers {
			fn(i, false)
		}
	}
}

// cancelDrain aborts a live decommission, returning the backend to
// full membership.
func (cl *Cluster) cancelDrain(i int) {
	cl.draining[i] = false
	cl.decommissioned[i] = false
	if !cl.down[i] {
		cl.Ring.Add(i)
	}
}

// markDecommissioned records the permanent removal of an
// already-evicted backend (a dead node being re-replicated around).
func (cl *Cluster) markDecommissioned(i int) {
	cl.decommissioned[i] = true
	if !cl.down[i] {
		cl.down[i] = true
		cl.Ring.Remove(i)
		for _, fn := range cl.watchers {
			fn(i, false)
		}
	}
}

// LiveHolders counts the live, reachable backends whose store currently
// holds key - the key's actual replica count, as distinct from the
// ring's intended one. It peeks at the stores directly (a simulation-
// level introspection for experiments and tests, not a data-path
// operation).
func (cl *Cluster) LiveHolders(key []byte) int {
	n := 0
	for i, b := range cl.Backends {
		if !cl.Live(i) || !b.Node.Alive() {
			continue
		}
		// A dead copy (expired, or behind a due flush) does not hold the
		// key: no request path would serve it.
		if e, ok := b.Srv.Store.Get(string(key)); ok && b.Srv.EntryLive(e, cl.Sys.K.Now()) {
			n++
		}
	}
	return n
}

// dedupBackends concatenates the given backend lists preserving first
// occurrence order.
func dedupBackends(lists ...[]int) []int {
	var out []int
	for _, list := range lists {
		for _, b := range list {
			dup := false
			for _, seen := range out {
				if seen == b {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, b)
			}
		}
	}
	return out
}

// TotalRequests sums operations served across all shards.
func (cl *Cluster) TotalRequests() uint64 {
	var n uint64
	for _, b := range cl.Backends {
		n += b.Srv.Requests
	}
	return n
}
