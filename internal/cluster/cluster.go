package cluster

import (
	"fmt"

	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/hosted"
)

// Backend is one native node running a memcached shard.
type Backend struct {
	Node *hosted.Node
	Srv  *memcached.Server
}

// Options configures a deployment beyond the defaults.
type Options struct {
	// CoresPerBackend sizes each native backend (default 1).
	CoresPerBackend int
	// Replicas is R, the number of ring successors each key is written
	// to (default 1: no replication, the pre-fault-tolerance behavior).
	Replicas int
	// FrontendCores sizes the hosted frontend (default 2), for
	// deployments that drive client load through the frontend itself.
	FrontendCores int
	// VNodes overrides the ring's virtual points per backend (default
	// DefaultVNodes).
	VNodes int
}

// Cluster is a sharded memcached deployment: the hosted frontend plus N
// native backends on one switched network, each key served by the R
// ring successors the Ring selects.
type Cluster struct {
	Sys      *hosted.System
	Backends []*Backend
	Ring     *Ring
	// Replicas is the deployment's replication factor R. Writes go to
	// all R replicas and ack on a majority quorum; reads prefer the
	// primary and fail over along the successor list.
	Replicas int

	down     []bool // per backend: evicted from the ring
	watchers []func(backend int, up bool)
}

// New boots a deployment with the given number of single-shard native
// backends, each with coresPerBackend cores, and no replication.
func New(backends, coresPerBackend int) *Cluster {
	return NewCluster(backends, Options{CoresPerBackend: coresPerBackend})
}

// NewCluster boots a deployment under the given options. The hosted
// frontend comes up first (it owns id allocation, as in the single-node
// system); the backends then join and immediately start serving.
func NewCluster(backends int, opt Options) *Cluster {
	if opt.CoresPerBackend <= 0 {
		opt.CoresPerBackend = 1
	}
	if opt.Replicas <= 0 {
		opt.Replicas = 1
	}
	if opt.Replicas > backends {
		panic(fmt.Sprintf("cluster: %d replicas exceed %d backends", opt.Replicas, backends))
	}
	cl := &Cluster{
		Sys:      hosted.NewSystemCores(opt.FrontendCores),
		Ring:     NewRing(opt.VNodes),
		Replicas: opt.Replicas,
	}
	for i := 0; i < backends; i++ {
		cl.AddBackend(opt.CoresPerBackend)
	}
	return cl
}

// AddBackend boots one more native node, starts its memcached shard, and
// joins it to the ring. Keys that hash onto the new backend's points
// migrate to it; the consistent ring keeps that share bounded near
// 1/(n+1) of the keyspace (no store handoff is performed - as with real
// memcached, migrated keys fault in as cache misses).
func (cl *Cluster) AddBackend(cores int) *Backend {
	node := cl.Sys.AddNativeNode(cores)
	srv := memcached.NewServer(memcached.NewRCUStore(), cores)
	if err := srv.Serve(node.Runtime); err != nil {
		panic(err)
	}
	b := &Backend{Node: node, Srv: srv}
	cl.Backends = append(cl.Backends, b)
	cl.down = append(cl.down, false)
	cl.Ring.Add(len(cl.Backends) - 1)
	return b
}

// AddLoadGenerator boots an extra native node that serves nothing - a
// client machine for driving load at the shards directly, as the
// paper's mutilate host does. It is not added to the ring.
func (cl *Cluster) AddLoadGenerator(cores int) *hosted.Node {
	return cl.Sys.AddNativeNode(cores)
}

// Watch registers fn to be called whenever a backend's ring membership
// changes: up=false on eviction, up=true on restoration. Callbacks run
// synchronously inside EvictBackend/RestoreBackend.
func (cl *Cluster) Watch(fn func(backend int, up bool)) {
	cl.watchers = append(cl.watchers, fn)
}

// EvictBackend removes a backend from the ring, rerouting its keys to
// their ring successors (which, under replication, already hold them).
// The backend object and its node stay in place so a recovered machine
// can be restored. Eviction is idempotent.
func (cl *Cluster) EvictBackend(i int) {
	if cl.down[i] {
		return
	}
	cl.down[i] = true
	cl.Ring.Remove(i)
	for _, fn := range cl.watchers {
		fn(i, false)
	}
}

// RestoreBackend re-adds an evicted backend to the ring. Its store
// resumes serving whatever it held before the failure; keys written
// while it was out fault in from the surviving replicas via the
// client's read fall-through. Restoration is idempotent.
func (cl *Cluster) RestoreBackend(i int) {
	if !cl.down[i] {
		return
	}
	cl.down[i] = false
	cl.Ring.Add(i)
	for _, fn := range cl.watchers {
		fn(i, true)
	}
}

// Live reports whether backend i is on the ring.
func (cl *Cluster) Live(i int) bool { return !cl.down[i] }

// LiveBackends counts backends currently on the ring.
func (cl *Cluster) LiveBackends() int {
	n := 0
	for _, d := range cl.down {
		if !d {
			n++
		}
	}
	return n
}

// Route returns the backend owning key's primary.
func (cl *Cluster) Route(key []byte) *Backend {
	return cl.Backends[cl.Ring.Lookup(key)]
}

// ReplicaSet returns the backends holding key, primary first. The set
// shrinks below R only when fewer than R backends remain on the ring.
func (cl *Cluster) ReplicaSet(key []byte) []int {
	return cl.Ring.LookupN(key, cl.Replicas)
}

// TotalRequests sums operations served across all shards.
func (cl *Cluster) TotalRequests() uint64 {
	var n uint64
	for _, b := range cl.Backends {
		n += b.Srv.Requests
	}
	return n
}
