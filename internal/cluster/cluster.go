package cluster

import (
	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/hosted"
)

// Backend is one native node running a memcached shard.
type Backend struct {
	Node *hosted.Node
	Srv  *memcached.Server
}

// Cluster is a sharded memcached deployment: the hosted frontend plus N
// native backends on one switched network, each backend serving an
// independent shard of the keyspace selected by the Ring.
type Cluster struct {
	Sys      *hosted.System
	Backends []*Backend
	Ring     *Ring
}

// New boots a deployment with the given number of single-shard native
// backends, each with coresPerBackend cores. The hosted frontend comes
// up first (it owns id allocation, as in the single-node system); the
// backends then join and immediately start serving.
func New(backends, coresPerBackend int) *Cluster {
	cl := &Cluster{Sys: hosted.NewSystem(), Ring: NewRing(0)}
	for i := 0; i < backends; i++ {
		cl.AddBackend(coresPerBackend)
	}
	return cl
}

// AddBackend boots one more native node, starts its memcached shard, and
// joins it to the ring. Keys that hash onto the new backend's points
// migrate to it; the consistent ring keeps that share bounded near
// 1/(n+1) of the keyspace (no store handoff is performed - as with real
// memcached, migrated keys fault in as cache misses).
func (cl *Cluster) AddBackend(cores int) *Backend {
	node := cl.Sys.AddNativeNode(cores)
	srv := memcached.NewServer(memcached.NewRCUStore(), cores)
	if err := srv.Serve(node.Runtime); err != nil {
		panic(err)
	}
	b := &Backend{Node: node, Srv: srv}
	cl.Backends = append(cl.Backends, b)
	cl.Ring.Add(len(cl.Backends) - 1)
	return b
}

// AddLoadGenerator boots an extra native node that serves nothing - a
// client machine for driving load at the shards directly, as the
// paper's mutilate host does. It is not added to the ring.
func (cl *Cluster) AddLoadGenerator(cores int) *hosted.Node {
	return cl.Sys.AddNativeNode(cores)
}

// Route returns the backend owning key.
func (cl *Cluster) Route(key []byte) *Backend {
	return cl.Backends[cl.Ring.Lookup(key)]
}

// TotalRequests sums operations served across all shards.
func (cl *Cluster) TotalRequests() uint64 {
	var n uint64
	for _, b := range cl.Backends {
		n += b.Srv.Requests
	}
	return n
}
