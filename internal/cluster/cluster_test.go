package cluster

import (
	"fmt"
	"testing"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/machine"
	"ebbrt/internal/sim"
)

// TestClusterEndToEnd drives set/get/delete through the hosted
// frontend's client Ebb against 4 native backends and verifies both the
// results and that every backend actually served a share.
func TestClusterEndToEnd(t *testing.T) {
	cl := New(4, 1)
	front := cl.Sys.Frontend()
	cli := NewClient(cl, front, 0)

	const nKeys = 64
	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("e2e-key-%d", i))
	}

	got := map[string]string{}
	var setFails, deleted, missAfterDelete int
	front.Spawn(func(c *event.Ctx) {
		for i := range keys {
			key := keys[i]
			val := []byte(fmt.Sprintf("val-%d", i))
			cli.Set(c, key, val, 0, func(c *event.Ctx, r Response) {
				if !r.OK() {
					setFails++
					return
				}
				cli.Get(c, key, func(c *event.Ctx, r Response) {
					if r.OK() {
						got[string(key)] = string(r.Value)
					}
					// Delete every fourth key and confirm it misses.
					if len(key) > 0 && key[len(key)-1] == '0' {
						cli.Delete(c, key, func(c *event.Ctx, r Response) {
							if r.OK() {
								deleted++
							}
							cli.Get(c, key, func(c *event.Ctx, r Response) {
								if !r.OK() {
									missAfterDelete++
								}
							})
						})
					}
				})
			})
		}
	})
	cl.Sys.K.RunUntil(5 * sim.Second)

	if setFails != 0 {
		t.Fatalf("%d sets failed", setFails)
	}
	if len(got) != nKeys {
		t.Fatalf("got %d of %d values back", len(got), nKeys)
	}
	for i := range keys {
		want := fmt.Sprintf("val-%d", i)
		if got[string(keys[i])] != want {
			t.Errorf("key %s: got %q want %q", keys[i], got[string(keys[i])], want)
		}
	}
	if deleted == 0 || deleted != missAfterDelete {
		t.Errorf("delete path broken: deleted=%d missAfterDelete=%d", deleted, missAfterDelete)
	}
	// The keyspace must actually be sharded: every backend served
	// requests, and the sum matches what the stores hold.
	var totalHeld int
	for i, b := range cl.Backends {
		if b.Srv.Requests == 0 {
			t.Errorf("backend %d served no requests - keys not sharded", i)
		}
		totalHeld += b.Srv.Store.Len()
	}
	if want := nKeys - deleted; totalHeld != want {
		t.Errorf("stores hold %d keys, want %d", totalHeld, want)
	}
}

// nullConn is an appnet.Conn that swallows sends (for unit-testing the
// client connection's stream handling without a network).
type nullConn struct{ closed bool }

func (n *nullConn) Send(c *event.Ctx, p *iobuf.IOBuf) {}
func (n *nullConn) Close(c *event.Ctx)                { n.closed = true }
func (n *nullConn) Core() int                         { return 0 }

// TestClientConnDesyncFailsOutstanding: a malformed or wrong-magic
// response must tear the connection down and fail every in-flight
// operation, not wedge the parser forever.
func TestClientConnDesyncFailsOutstanding(t *testing.T) {
	k := sim.NewKernel()
	m := machine.New(k, machine.DefaultConfig("c", 1))
	mgr := event.NewManager(m.Cores[0], event.DefaultCosts())
	done := false
	mgr.Spawn(func(c *event.Ctx) {
		nc := &nullConn{}
		cc := &clientConn{conn: nc, connected: true, inflight: map[uint32]inflightOp{}}
		failures := 0
		cc.inflight[1] = inflightOp{cb: func(c *event.Ctx, r Response) {
			if r.OK() {
				t.Error("desynced op reported success")
			}
			failures++
		}}
		junk := make([]byte, memcached.HeaderLen)
		junk[0] = memcached.MagicRequest // request magic on the response path
		cc.onData(c, iobuf.Wrap(junk))
		if failures != 1 {
			t.Errorf("%d callbacks failed, want 1", failures)
		}
		if !cc.closed || !nc.closed {
			t.Errorf("connection not torn down: cc.closed=%v conn.closed=%v", cc.closed, nc.closed)
		}
		if len(cc.rx) != 0 {
			t.Errorf("rx buffer retained %d bytes after desync", len(cc.rx))
		}
		done = true
	})
	k.RunUntil(1 * sim.Second)
	if !done {
		t.Fatal("event did not run")
	}
}

var _ appnet.Conn = (*nullConn)(nil)

// TestClientConnFailReportsNetworkError: connection failure must surface
// as StatusNetworkError, never as a cache miss - the regression that
// once made every backend crash look like a burst of misses and left
// failover nothing to react to.
func TestClientConnFailReportsNetworkError(t *testing.T) {
	k := sim.NewKernel()
	m := machine.New(k, machine.DefaultConfig("c", 1))
	mgr := event.NewManager(m.Cores[0], event.DefaultCosts())
	done := false
	mgr.Spawn(func(c *event.Ctx) {
		cc := &clientConn{conn: &nullConn{}, connected: true, inflight: map[uint32]inflightOp{}}
		var got []Response
		for op := uint32(0); op < 3; op++ {
			cc.inflight[op] = inflightOp{cb: func(c *event.Ctx, r Response) { got = append(got, r) }}
		}
		cc.fail(c)
		if len(got) != 3 {
			t.Fatalf("%d callbacks fired, want 3", len(got))
		}
		for _, r := range got {
			if r.Status == memcached.StatusKeyNotFound {
				t.Error("connection failure reported as a cache miss")
			}
			if !r.NetworkError() {
				t.Errorf("status %#x, want StatusNetworkError", r.Status)
			}
		}
		if !cc.closed {
			t.Error("failed connection not retired")
		}
		done = true
	})
	k.RunUntil(1 * sim.Second)
	if !done {
		t.Fatal("event did not run")
	}
}

// TestHealthMonitorToleratesAddBackend: a backend added after the
// monitor was created is simply unmonitored - it must not crash the
// heartbeat loop, and the cluster keeps serving.
func TestHealthMonitorToleratesAddBackend(t *testing.T) {
	cl := NewCluster(2, Options{Replicas: 2})
	front := cl.Sys.Frontend()
	cli := NewClient(cl, front, 0)
	mon := NewHealthMonitor(cl, front, HealthConfig{})
	mon.Start()
	cl.Sys.K.RunUntil(20 * sim.Millisecond)

	cl.AddBackend(1)
	ok := 0
	front.Spawn(func(c *event.Ctx) {
		for i := 0; i < 32; i++ {
			cli.Set(c, []byte(fmt.Sprintf("post-add-%d", i)), []byte("v"), 0, func(c *event.Ctx, r Response) {
				if r.OK() {
					ok++
				}
			})
		}
	})
	cl.Sys.K.RunUntil(100 * sim.Millisecond) // several monitor ticks past the add
	if ok != 32 {
		t.Fatalf("only %d of 32 sets succeeded after AddBackend under monitoring", ok)
	}
}

// TestSubmitToEvictedBackendFailsFast: an operation whose replica set
// was computed before an eviction must fail over immediately when it
// reaches the evicted backend - not re-dial the dead node and wait out
// SYN backoff (fatal with timeouts disabled, the default).
func TestSubmitToEvictedBackendFailsFast(t *testing.T) {
	cl := NewCluster(2, Options{Replicas: 2})
	front := cl.Sys.Frontend()
	cli := NewClient(cl, front, 0) // RequestTimeout deliberately 0
	cl.Sys.K.RunUntil(5 * sim.Millisecond)

	cl.Backends[0].Node.Kill()
	cl.EvictBackend(0)
	var got *Response
	start := cl.Sys.K.Now()
	front.Spawn(func(c *event.Ctx) {
		// Stale replica set, as a mid-operation eviction would leave it.
		cli.rep(c).submit(c, 0, func(opaque uint32) []byte {
			return memcached.BuildGet([]byte("stale-key"), opaque)
		}, func(c *event.Ctx, r Response) { got = &r })
	})
	cl.Sys.K.RunUntil(start + 10*sim.Millisecond)
	if got == nil {
		t.Fatal("submit to evicted backend never completed (parked behind a dead dial)")
	}
	if !got.NetworkError() {
		t.Fatalf("status %#x, want StatusNetworkError", got.Status)
	}
}

// TestClusterRouteAgreesWithRing checks the convenience router.
func TestClusterRouteAgreesWithRing(t *testing.T) {
	cl := New(3, 1)
	for _, key := range sampleKeys(500) {
		want := cl.Backends[cl.Ring.Lookup(key)]
		if cl.Route(key) != want {
			t.Fatalf("Route disagrees with Ring for %q", key)
		}
	}
}

// TestClusterAddBackendWhileRunning adds a backend after traffic has
// been served and verifies new placements reach it.
func TestClusterAddBackendWhileRunning(t *testing.T) {
	cl := New(2, 1)
	front := cl.Sys.Frontend()
	cli := NewClient(cl, front, 0)

	front.Spawn(func(c *event.Ctx) {
		for i := 0; i < 16; i++ {
			cli.Set(c, []byte(fmt.Sprintf("pre-%d", i)), []byte("x"), 0, nil)
		}
	})
	cl.Sys.K.RunUntil(2 * sim.Second)

	cl.AddBackend(1)
	if len(cl.Backends) != 3 {
		t.Fatalf("backend count %d", len(cl.Backends))
	}
	// Drive enough fresh keys that the ring sends some to the newcomer.
	ok := 0
	front.Spawn(func(c *event.Ctx) {
		for i := 0; i < 64; i++ {
			key := []byte(fmt.Sprintf("post-%d", i))
			cli.Set(c, key, []byte("y"), 0, func(c *event.Ctx, r Response) {
				if r.OK() {
					ok++
				}
			})
		}
	})
	cl.Sys.K.RunUntil(4 * sim.Second)
	if ok != 64 {
		t.Fatalf("only %d of 64 sets succeeded after expansion", ok)
	}
	if cl.Backends[2].Srv.Requests == 0 {
		t.Error("new backend never served a request")
	}
}
