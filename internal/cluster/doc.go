// Package cluster implements the multi-backend memcached deployment of
// the paper's §3 heterogeneous model: a hosted frontend plus N native
// library-OS backends sharing one Ebb namespace, with the keyspace
// sharded across backends by consistent hashing.
//
// The package is organized around five cooperating pieces:
//
//   - Ring (ring.go): deterministic consistent hashing, 128 virtual
//     points per backend. Every node computes identical placement with
//     no coordination; LookupN yields a key's R distinct successors
//     (its replica set), and each membership change bumps an epoch so
//     migrations can diff exact before/after ownership.
//
//   - Cluster (cluster.go): boots the deployment over hosted.System and
//     tracks membership - live, evicted, draining, and decommissioned
//     backends - plus the dual-routing handoff window migrations open.
//
//   - Client (client.go): the cluster-aware client Ebb. Per-core
//     representatives own private connection pools to every backend
//     (submission never crosses cores, the paper's Ebb discipline
//     applied client-side). Writes go to all R replicas and ack on a
//     majority quorum; reads try the primary and fail over across the
//     replica set on miss or network error, healing stale replicas by
//     read repair. Failures surface as StatusNetworkError, never as
//     false misses.
//
//   - HealthMonitor (health.go): messenger-driven heartbeats from the
//     frontend; a backend missing three consecutive 5ms beats is
//     evicted from the ring, kept on probation over fresh-connection
//     probes, and restored after two answered beats. Decommissioned
//     backends are never restored.
//
//   - Migrator (migrate.go): the rebalancer. PlanMigration diffs an old
//     ring against the new one into exact MoveRanges; each range is
//     streamed from a live replica to its gaining owner through the
//     memcached binary protocol itself (snapshot Store.Scan, pipelined
//     quiet ADDs, a Noop fence), with the client dual-routing reads and
//     writes until the range cuts over. Join streams a newcomer's share
//     so it arrives warm; Decommission drains a live backend or
//     re-replicates a dead one back to R.
//
// docs/ARCHITECTURE.md diagrams the replication, failure-detection, and
// migration flows end to end; docs/PROTOCOL.md specifies the wire
// protocol the data path and migration stream speak.
package cluster
