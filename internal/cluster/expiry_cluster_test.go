package cluster

import (
	"fmt"
	"testing"

	"ebbrt/internal/event"
	"ebbrt/internal/sim"
)

// Cluster-level expiry regressions: a value that expires at its origin
// must not be served anywhere - not from any core's hot-key cache, and
// not resurrected into a new backend by the migration stream.

// TestHotKeyCacheExpiredAtOriginMisses: the hot-key cache's own TTL is
// set far beyond the horizon, so only the origin-expiry carried in the
// GET response extras can stop the cached copies. Every core promotes
// and fills the key before its 1-second deadline; after the deadline
// every core must miss, with revalidation disabled so nothing else can
// rescue the reads.
func TestHotKeyCacheExpiredAtOriginMisses(t *testing.T) {
	cl, cli := newHotCluster(1, HotKeyOptions{
		PromoteMin:      1,
		TTL:             time10s,
		RevalidateEvery: -1,
	})
	front := cl.Sys.Frontend()
	mgrs := front.Runtime.Mgrs()
	key, val := []byte("expiring-hot-key"), []byte("short-lived")

	setOK := false
	front.Spawn(func(c *event.Ctx) {
		cli.SetWithExpiry(c, key, val, 0, 1, func(c *event.Ctx, r Response) {
			setOK = r.OK()
		})
	})

	// Before the deadline: promote and fill on every core.
	preHits := make([]int, len(mgrs))
	for corei := range mgrs {
		corei := corei
		mgrs[corei].After(100*sim.Millisecond, func(c *event.Ctx) {
			var next func(c *event.Ctx, n int)
			next = func(c *event.Ctx, n int) {
				if n == 0 {
					return
				}
				cli.Get(c, key, func(c *event.Ctx, r Response) {
					if r.OK() && string(r.Value) == string(val) {
						preHits[corei]++
					}
					next(c, n-1)
				})
			}
			next(c, 3)
		})
	}

	// After the deadline (1s) but far inside the cache TTL (10s): every
	// core's read must miss.
	postMiss := make([]int, len(mgrs))
	for corei := range mgrs {
		corei := corei
		mgrs[corei].After(2*sim.Second, func(c *event.Ctx) {
			cli.Get(c, key, func(c *event.Ctx, r Response) {
				if !r.OK() {
					postMiss[corei]++
				} else {
					t.Errorf("core %d read expired key: %q", corei, r.Value)
				}
			})
		})
	}

	cl.Sys.K.RunUntil(3 * sim.Second)

	if !setOK {
		t.Fatal("setup write not acked")
	}
	for corei := range mgrs {
		if preHits[corei] != 3 {
			t.Fatalf("core %d: %d of 3 pre-expiry reads served", corei, preHits[corei])
		}
		if postMiss[corei] != 1 {
			t.Fatalf("core %d: post-expiry read did not miss", corei)
		}
	}
	st := cli.HotKeyStats()
	if st.Hits == 0 {
		t.Fatalf("cache never engaged, test proves nothing: %+v", st)
	}
	if st.OriginExpired == 0 {
		t.Fatalf("no cached copy was dropped for origin expiry: %+v", st)
	}
}

// TestMigrationDoesNotResurrectExpired: entries that expired at the
// source - but are still physically resident there, expiry being lazy -
// must be filtered out of the migration stream, not handed to the new
// backend as live data.
func TestMigrationDoesNotResurrectExpired(t *testing.T) {
	cl := NewCluster(3, Options{})
	front := cl.Sys.Frontend()
	cli := NewClientWithOptions(cl, front, ClientOptions{RequestTimeout: 8 * sim.Millisecond})
	m := NewMigrator(cl, front, MigratorConfig{})
	k := cl.Sys.K

	const nKeys = 400
	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("exp-key-%d-%d", i, i*2654435761))
	}
	// Odd keys expire after 1 second; even keys never do.
	acked := 0
	front.Spawn(func(c *event.Ctx) {
		for i, key := range keys {
			var exptime int64
			if i%2 == 1 {
				exptime = 1
			}
			cli.SetWithExpiry(c, key, []byte(fmt.Sprintf("v-%d", i)), 0, exptime, func(c *event.Ctx, r Response) {
				if r.OK() {
					acked++
				}
			})
		}
	})
	k.RunUntil(k.Now() + 40*sim.Millisecond)
	if acked != nKeys {
		t.Fatalf("populate: %d of %d writes acked", acked, nKeys)
	}

	// Cross the deadline with no traffic: the expired entries stay
	// resident at their owners (lazy expiry never ran for them).
	k.RunUntil(k.Now() + 2*sim.Second)
	resident := 0
	for i, key := range keys {
		if i%2 == 0 {
			continue
		}
		for _, b := range cl.Backends {
			if _, has := b.Srv.Store.Get(string(key)); has {
				resident++
				break
			}
		}
	}
	if resident == 0 {
		t.Fatal("no expired entry still resident; the stream filter is not being exercised")
	}

	m.Join(1)
	mig := waitMigration(t, cl, m, 300*sim.Millisecond)
	if mig.Aborted || mig.Kind != "join" {
		t.Fatalf("migration %+v not a completed join", mig)
	}

	// The newcomer must hold its share of the live keys and not one
	// expired entry.
	newIdx := len(cl.Backends) - 1
	store := cl.Backends[newIdx].Srv.Store
	streamedLive := 0
	for i, key := range keys {
		_, has := store.Get(string(key))
		if i%2 == 1 {
			if has {
				t.Fatalf("expired key %q resurrected onto the new backend", key)
			}
			continue
		}
		owned := false
		for _, b := range cl.ReplicaSet(key) {
			if b == newIdx {
				owned = true
			}
		}
		if owned && !has {
			t.Fatalf("live key %q owned by the newcomer but not streamed", key)
		}
		if has {
			streamedLive++
		}
	}
	if streamedLive == 0 {
		t.Fatal("stream moved no live keys; filter test proves nothing")
	}

	// Through the client: live keys read OK, expired keys miss.
	var live, dead [][]byte
	for i, key := range keys {
		if i%2 == 0 {
			live = append(live, key)
		} else {
			dead = append(dead, key)
		}
	}
	ok, miss, netErr := readAll(cl, cli, live)
	if ok != len(live) || netErr != 0 {
		t.Fatalf("live reads after join: %d ok, %d misses, %d net errors", ok, miss, netErr)
	}
	ok, miss, netErr = readAll(cl, cli, dead)
	if miss != len(dead) || netErr != 0 {
		t.Fatalf("expired reads after join: %d ok, %d misses, %d net errors (want all misses)", ok, miss, netErr)
	}
}
