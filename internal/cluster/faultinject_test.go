package cluster

import (
	"fmt"
	"testing"

	"ebbrt/internal/event"
	"ebbrt/internal/machine"
	"ebbrt/internal/sim"
)

// TestClientDataPathUnderFrameLoss injects deterministic frame loss
// into the deployment's switch and drives Set/Get through the client
// Ebb: every operation must complete successfully via TCP
// retransmission - zero failed callbacks, zero misses - because frame
// loss is the transport's problem, not the application's.
func TestClientDataPathUnderFrameLoss(t *testing.T) {
	cases := []struct {
		name string
		mod  uint64 // drop one frame in every mod (~1/mod loss rate)
	}{
		{name: "loss-1pct", mod: 97},
		{name: "loss-5pct", mod: 19},
		{name: "loss-10pct", mod: 10},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cl := New(2, 1)
			front := cl.Sys.Frontend()
			// No request timeout: recovery must come from the transport,
			// and retransmission under loss can take multiples of the
			// 200ms RTO.
			cli := NewClient(cl, front, 0)
			dropped := 0
			cl.Sys.Switch.DropFn = func(index uint64, f machine.Frame) bool {
				if index%tc.mod == tc.mod-1 {
					dropped++
					return true
				}
				return false
			}

			const nOps = 60
			var setOK, getOK, failed int
			front.Spawn(func(c *event.Ctx) {
				for i := 0; i < nOps; i++ {
					key := []byte(fmt.Sprintf("lossy-key-%d", i))
					val := []byte(fmt.Sprintf("lossy-val-%d", i))
					cli.Set(c, key, val, 0, func(c *event.Ctx, r Response) {
						if !r.OK() {
							failed++
							return
						}
						setOK++
						cli.Get(c, key, func(c *event.Ctx, r Response) {
							if r.OK() && string(r.Value) == string(val) {
								getOK++
							} else {
								failed++
							}
						})
					})
				}
			})
			// Generous horizon: a lost frame costs at least one 200ms RTO,
			// and back-to-back losses back off exponentially.
			cl.Sys.K.RunUntil(120 * sim.Second)

			if dropped == 0 {
				t.Fatal("no frames dropped - loss injection vacuous")
			}
			if failed != 0 {
				t.Errorf("%d callbacks failed under %s frame loss", failed, tc.name)
			}
			if setOK != nOps || getOK != nOps {
				t.Errorf("completed %d sets, %d gets of %d under loss (dropped %d frames)",
					setOK, getOK, nOps, dropped)
			}
		})
	}
}
