package cluster

import (
	"encoding/binary"
	"sync"

	"ebbrt/internal/audit"
	"ebbrt/internal/core"
	"ebbrt/internal/event"
	"ebbrt/internal/hosted"
	"ebbrt/internal/sim"
)

// HealthConfig tunes failure detection. The defaults detect a dead
// backend in Interval*FailureThreshold (15ms) - far faster than the
// netstack's 200ms RTO, which is the point: clients fail over when the
// monitor evicts, not when TCP gives up.
type HealthConfig struct {
	// Interval is the heartbeat period (default 5ms). A backend is
	// considered to have missed a beat when no pong arrived during the
	// whole previous interval.
	Interval sim.Time
	// FailureThreshold is the consecutive missed beats that evict a
	// backend from the ring (default 3).
	FailureThreshold int
	// ReviveThreshold is the consecutive answered beats that restore an
	// evicted backend (default 2).
	ReviveThreshold int
}

func (cfg *HealthConfig) applyDefaults() {
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * sim.Millisecond
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 3
	}
	if cfg.ReviveThreshold <= 0 {
		cfg.ReviveThreshold = 2
	}
}

// heartbeat wire format: [kind byte][seq u64]
const (
	hbPing = 0x01
	hbPong = 0x02
)

// HealthMonitor is the failure detector: a messenger-driven heartbeat
// Ebb on the frontend (paper §3.3's inter-node representative
// communication put to operational use). Every Interval it pings each
// backend; a backend that misses FailureThreshold consecutive beats is
// evicted from the ring, rerouting its keys to the successors that
// already replicate them; an evicted backend that answers
// ReviveThreshold consecutive beats is restored.
//
// Backends present when the monitor is created are monitored; the
// monitor keeps pinging evicted backends so recovery is detected
// without operator action. Eviction never empties the ring: the last
// live backend is kept even if unresponsive, since routing to a
// possibly-dead backend beats routing to nothing.
type HealthMonitor struct {
	cl   *Cluster
	node *hosted.Node
	cfg  HealthConfig
	id   core.Id

	states []backendHealth
	byNode map[hosted.NodeId]int
	seq    uint64
	ticker *sim.Event
	// mu guards evictedAt/restoredAt: they are written from the monitor
	// callback on the simulation goroutine but read through the accessors
	// by experiment code and tests, possibly from other goroutines.
	mu         sync.Mutex
	evictedAt  map[int]sim.Time
	restoredAt map[int]sim.Time
}

type backendHealth struct {
	lastPong sim.Time
	misses   int
	streak   int
}

// NewHealthMonitor installs the heartbeat Ebb for the cluster on the
// given node (the hosted frontend). Call Start to begin monitoring.
func NewHealthMonitor(cl *Cluster, node *hosted.Node, cfg HealthConfig) *HealthMonitor {
	cfg.applyDefaults()
	h := &HealthMonitor{
		cl:         cl,
		node:       node,
		cfg:        cfg,
		id:         cl.Sys.AllocateEbbId(),
		states:     make([]backendHealth, len(cl.Backends)),
		byNode:     map[hosted.NodeId]int{},
		evictedAt:  map[int]sim.Time{},
		restoredAt: map[int]sim.Time{},
	}
	for i, b := range cl.Backends {
		h.byNode[b.Node.Id] = i
	}
	// Backends echo pings; the frontend collects pongs.
	for _, b := range cl.Backends {
		b := b
		b.Node.Messenger.Register(h.id, func(c *event.Ctx, src hosted.NodeId, payload []byte) {
			if len(payload) == 9 && payload[0] == hbPing {
				reply := append([]byte{hbPong}, payload[1:]...)
				b.Node.Messenger.Send(c, src, h.id, reply)
			}
		})
	}
	node.Messenger.Register(h.id, func(c *event.Ctx, src hosted.NodeId, payload []byte) {
		if len(payload) != 9 || payload[0] != hbPong {
			return
		}
		if i, ok := h.byNode[src]; ok {
			h.states[i].lastPong = c.Now()
		}
	})
	return h
}

// Start begins the heartbeat loop on the node's first core.
func (h *HealthMonitor) Start() {
	mgr := h.node.Runtime.Mgrs()[0]
	now := h.node.Runtime.Kernel().Now()
	for i := range h.states {
		h.states[i].lastPong = now // everyone starts healthy
	}
	mgr.Spawn(func(c *event.Ctx) { h.tick(c, mgr) })
}

// EvictedAt reports when the monitor last evicted backend i, if ever.
// Safe to call from any goroutine.
func (h *HealthMonitor) EvictedAt(i int) (sim.Time, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t, ok := h.evictedAt[i]
	return t, ok
}

// RestoredAt reports when the monitor last restored backend i, if ever.
// Safe to call from any goroutine.
func (h *HealthMonitor) RestoredAt(i int) (sim.Time, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t, ok := h.restoredAt[i]
	return t, ok
}

// Stop cancels the heartbeat loop.
func (h *HealthMonitor) Stop() {
	if h.ticker != nil {
		h.ticker.Cancel()
		h.ticker = nil
	}
}

func (h *HealthMonitor) tick(c *event.Ctx, mgr *event.Manager) {
	// Iterate the monitor's own state, not cl.Backends: backends added
	// after the monitor was created are unmonitored, not a crash.
	prev := c.Now() - h.cfg.Interval
	for i := range h.states {
		st := &h.states[i]
		if st.lastPong >= prev {
			st.streak++
			st.misses = 0
		} else {
			st.misses++
			st.streak = 0
			if a := h.cl.Audit; a != nil {
				a.Emit(c.Now(), int(h.cl.Backends[i].Node.Id), audit.HealthMissedBeat, audit.Fields{
					"backend": i, "misses": st.misses,
				})
			}
		}
		if h.cl.Live(i) && st.misses >= h.cfg.FailureThreshold && h.cl.LiveBackends() > 1 {
			h.mu.Lock()
			h.evictedAt[i] = c.Now()
			h.mu.Unlock()
			h.cl.EvictBackend(i)
		} else if !h.cl.Live(i) && st.streak >= h.cfg.ReviveThreshold && !h.cl.Decommissioned(i) {
			// A decommissioned backend answering pings (a live drain, or a
			// dead node that came back after being re-replicated around) is
			// never restored - its key share has moved on.
			h.mu.Lock()
			h.restoredAt[i] = c.Now()
			h.mu.Unlock()
			h.cl.RestoreBackend(i)
		}
	}
	// Ping everyone - including evicted backends, to notice recovery.
	// Evicted backends are probed over a fresh connection each beat: the
	// established stream is wedged behind the outage and would deliver
	// queued beats one RTO at a time, turning a revival the handshake
	// could confirm in microseconds into seconds of blindness.
	h.seq++
	var ping [9]byte
	ping[0] = hbPing
	binary.BigEndian.PutUint64(ping[1:], h.seq)
	for i := range h.states {
		b := h.cl.Backends[i]
		if !h.cl.Live(i) {
			h.node.Messenger.Reset(c, b.Node.Id)
		}
		h.node.Messenger.Send(c, b.Node.Id, h.id, ping[:])
	}
	h.ticker = mgr.After(h.cfg.Interval, func(c *event.Ctx) { h.tick(c, mgr) })
}
