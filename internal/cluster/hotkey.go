package cluster

import "ebbrt/internal/sim"

// Hot-key read caching (the ROADMAP's Zipf-aware-placement item).
//
// The ETC workload's Zipf skew concentrates the hottest keys on
// whichever shard owns them: past ~4 backends the owning shard
// saturates while added backends idle in the skewed tail. The classic
// front-cache move absorbs those reads before they reach the owner: a
// small, per-core LRU inside the client Ebb, admitting only keys a
// frequency sketch has seen often enough to sit at the top of the Zipf
// curve.
//
// Coherence is version-stamped: every cached value carries the CAS the
// owning server stamped on the entry (PR 4's Entry.CAS, echoed in
// binary response headers). Three mechanisms bound staleness:
//
//   - the client's own writes invalidate the cached copy on every core
//     before the write is even submitted;
//   - a hard TTL: an entry older than TTL is never served, so a read
//     can lag another client's write by at most TTL;
//   - sampled revalidation: every RevalidateEvery-th cache hit also
//     fetches the entry from its replica set and re-stamps (or drops)
//     the cached copy when the CAS moved.
//
// During a migration handoff the cache stands down for the moved
// ranges: entries covered by a pending MoveRange are flushed when the
// dual-routing window opens, and reads inside the window bypass the
// cache entirely, so a cutover can never serve a hit that predates it.
//
// CAS scope: stamps are replica-wide. The client assigns each write's
// version stamp once at submit (Cluster.nextStamp, a coordinator
// counter in a space above any server-minted CAS) and every replica
// stores and echoes that same stamp; read-repair and the migration
// stream preserve stamps rather than re-minting them. A fill served by
// one replica and a revalidation served by another therefore compare
// the same numbers, so the monotonic-CAS guards hold at any R - the
// R=1-only scoping this cache shipped with is closed. The quorum ack
// additionally folds the maximum stamp seen across replicas: a write
// that was superseded by a concurrent newer stamp is detected there and
// never re-enters the cache under the newer version's number.
//
// The write half of the skew - which a read cache cannot absorb - is
// attacked separately by salted hot-write spreading (HotWriteOptions):
// a key the cluster's write sketch promotes is split across K salted
// storage keys, writes round-robin the salts, and reads fan in across
// them, folding by stamp. Replica-wide stamps are what make the fan-in
// fold (and the staleness probe's all-owner peek) well defined.

// HotKeyOptions tunes the client Ebb's hot-key cache. The zero value
// disables it; Enable with everything else zero selects the defaults.
type HotKeyOptions struct {
	// Enable turns the cache on. Coherence holds at any replication
	// factor: version stamps are replica-wide (coordinator-assigned at
	// the client, stored and echoed verbatim by every replica), so
	// fills, revalidations, and write-path re-stamps compare the same
	// numbers no matter which replica answered (see the package comment
	// at the top of this file).
	Enable bool
	// Disable, on a ClientOptions.HotKey, keeps the cache off for that
	// client even when the cluster's Options.HotKey enables it for
	// clients generally (e.g. a writer that must not spend events on
	// cache maintenance). Meaningless on a cluster's options.
	Disable bool
	// Capacity bounds the cached entries per core (default 128).
	Capacity int
	// TTL is the hard staleness bound: an entry older than this is
	// never served (default 2ms).
	TTL sim.Time
	// PromoteMin is the sketch estimate at which a key qualifies as hot
	// and its next read fills the cache (default 8).
	PromoteMin uint32
	// SketchWidth and SketchDepth size the count-min sketch (defaults
	// 1024 x 4: ~16KB per core, collision error well under PromoteMin
	// for the workloads the experiments drive).
	SketchWidth int
	SketchDepth int
	// RevalidateEvery samples one in N cache hits for asynchronous CAS
	// revalidation against the replica set (default 16; negative
	// disables sampling).
	RevalidateEvery int
	// StalenessProbe, for experiments and tests, compares every served
	// hit against the owning shard's store directly (a simulation-level
	// peek, not a data-path operation) and records how stale served
	// values actually get. See HotKeyStats.StaleServes/MaxStaleAge.
	StalenessProbe bool
}

// WithDefaults returns o with every unset field at its default, as
// NewClientWithOptions resolves it (exported so experiments can report
// the effective configuration).
func (o HotKeyOptions) WithDefaults() HotKeyOptions {
	if o.Capacity <= 0 {
		o.Capacity = 128
	}
	if o.TTL <= 0 {
		o.TTL = 2 * sim.Millisecond
	}
	if o.PromoteMin == 0 {
		o.PromoteMin = 8
	}
	if o.SketchWidth <= 0 {
		o.SketchWidth = 1024
	}
	if o.SketchDepth <= 0 {
		o.SketchDepth = 4
	}
	if o.RevalidateEvery == 0 {
		o.RevalidateEvery = 16
	}
	return o
}

// HotKeyStats counts the cache's behavior, summed across the client's
// per-core representatives by Client.HotKeyStats.
type HotKeyStats struct {
	// Hits and Misses partition lookups on the read path (Misses counts
	// only lookups eligible for caching, not handoff bypasses).
	Hits, Misses uint64
	// Fills counts entries admitted after sketch promotion; Evictions
	// counts LRU displacements.
	Fills, Evictions uint64
	// Invalidations counts entries dropped by the client's own writes;
	// Flushes counts entries dropped when a migration handoff opened
	// over their range.
	Invalidations, Flushes uint64
	// Revalidations counts sampled CAS checks; Refreshes counts the
	// subset that found a moved CAS and re-stamped the entry.
	Revalidations, Refreshes uint64
	// Expired counts lookups that found an entry past its TTL.
	Expired uint64
	// OriginExpired counts lookups that found an entry past the origin
	// server's expiry deadline (carried in GET response extras) - dropped
	// even though the cache's own TTL had not run out.
	OriginExpired uint64
	// HandoffBypass counts reads that skipped the cache because their
	// key's range was mid-migration.
	HandoffBypass uint64
	// StaleServes and MaxStaleAge are filled only under StalenessProbe:
	// hits whose served CAS no longer matched the owner's store, and
	// the oldest age at which any such hit was served. The TTL is the
	// hard bound: MaxStaleAge <= TTL always holds.
	StaleServes uint64
	MaxStaleAge sim.Time
}

func (s *HotKeyStats) accumulate(o HotKeyStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Fills += o.Fills
	s.Evictions += o.Evictions
	s.Invalidations += o.Invalidations
	s.Flushes += o.Flushes
	s.Revalidations += o.Revalidations
	s.Refreshes += o.Refreshes
	s.Expired += o.Expired
	s.OriginExpired += o.OriginExpired
	s.HandoffBypass += o.HandoffBypass
	s.StaleServes += o.StaleServes
	if o.MaxStaleAge > s.MaxStaleAge {
		s.MaxStaleAge = o.MaxStaleAge
	}
}

// HitRate is served hits over cache-eligible lookups.
func (s HotKeyStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// cmSketch is a count-min frequency sketch with conservative update:
// an increment raises only the cells at the current minimum, tightening
// the overestimate. Purely deterministic - the same key stream always
// produces the same estimates, which is what makes cache admission
// reproducible run-to-run.
type cmSketch struct {
	width uint64
	rows  [][]uint32
}

func newCMSketch(width, depth int) *cmSketch {
	s := &cmSketch{width: uint64(width), rows: make([][]uint32, depth)}
	for i := range s.rows {
		s.rows[i] = make([]uint32, width)
	}
	return s
}

// cell computes row i's probe index by double hashing: (h1 + i*h2) mod
// width. h2 is derived once per operation (sketchH2) - touch probes
// every row twice, and this sits on the read hot path.
func (s *cmSketch) cell(h, h2 uint64, row int) uint32 {
	return uint32((h + uint64(row)*h2) % s.width)
}

func sketchH2(h uint64) uint64 { return mix64(h ^ 0xa5a5a5a5a5a5a5a5) }

// estimate returns the sketch's count for the key hash.
func (s *cmSketch) estimate(h uint64) uint32 {
	h2 := sketchH2(h)
	est := s.rows[0][s.cell(h, h2, 0)]
	for i := 1; i < len(s.rows); i++ {
		if v := s.rows[i][s.cell(h, h2, i)]; v < est {
			est = v
		}
	}
	return est
}

// touch counts one access and returns the updated estimate
// (conservative update: only cells at the minimum are raised).
func (s *cmSketch) touch(h uint64) uint32 {
	est := s.estimate(h) + 1
	h2 := sketchH2(h)
	for i := range s.rows {
		if c := s.cell(h, h2, i); s.rows[i][c] < est {
			s.rows[i][c] = est
		}
	}
	return est
}

// cacheEntry is one cached value on the LRU list (head = most recent).
type cacheEntry struct {
	key      string
	hash     uint64 // ringHash(key), for range-scoped flushes
	value    []byte
	flags    uint32
	cas      uint64 // the owner's Entry.CAS stamp at fill time
	storedAt sim.Time
	// expiresAt is the origin entry's absolute expiry (0 = never),
	// carried in the GET response extras. A cached copy must die at the
	// origin's deadline even when the cache's own TTL has time left.
	expiresAt sim.Time
	prev      *cacheEntry
	next      *cacheEntry
}

// hotCache is the per-core, size-bounded LRU. It is representative
// state: only its owning core touches it, so there are no locks - the
// Ebb pattern applied to the cache itself.
type hotCache struct {
	cap   int
	ttl   sim.Time
	m     map[string]*cacheEntry
	head  *cacheEntry
	tail  *cacheEntry
	stats *HotKeyStats
}

func newHotCache(cap int, ttl sim.Time, stats *HotKeyStats) *hotCache {
	return &hotCache{cap: cap, ttl: ttl, m: make(map[string]*cacheEntry, cap), stats: stats}
}

func (hc *hotCache) len() int { return len(hc.m) }

// get returns the live cached entry for key, bumping it to MRU. An
// entry past its TTL is dropped and reported absent - the hard
// staleness bound.
func (hc *hotCache) get(key []byte, now sim.Time) (*cacheEntry, bool) {
	e, ok := hc.m[string(key)]
	if !ok {
		return nil, false
	}
	if now-e.storedAt > hc.ttl {
		hc.stats.Expired++
		hc.remove(e)
		return nil, false
	}
	if e.expiresAt != 0 && e.expiresAt <= now {
		hc.stats.OriginExpired++
		hc.remove(e)
		return nil, false
	}
	hc.bump(e)
	return e, true
}

// put admits (or refreshes) an entry, evicting from the LRU tail when
// over capacity. CAS stamps from one server are monotonic, so a put
// carrying an older stamp than the cached one is a reordered delivery
// (a read response overtaken by a write-path re-stamp) and is dropped
// rather than letting it roll the entry back.
func (hc *hotCache) put(key string, hash uint64, value []byte, flags uint32, cas uint64, expiresAt, now sim.Time) {
	if e, ok := hc.m[key]; ok {
		if cas < e.cas {
			return
		}
		e.value = value
		e.flags = flags
		e.cas = cas
		e.storedAt = now
		e.expiresAt = expiresAt
		hc.bump(e)
		return
	}
	e := &cacheEntry{key: key, hash: hash, value: value, flags: flags, cas: cas,
		storedAt: now, expiresAt: expiresAt}
	hc.m[key] = e
	hc.pushFront(e)
	hc.stats.Fills++
	for len(hc.m) > hc.cap {
		hc.stats.Evictions++
		hc.remove(hc.tail)
	}
}

// invalidate drops key's entry, reporting whether one was present.
func (hc *hotCache) invalidate(key []byte) bool {
	e, ok := hc.m[string(key)]
	if !ok {
		return false
	}
	hc.remove(e)
	return true
}

// flushWhere drops every entry satisfying pred, returning how many were
// dropped. The handoff watcher uses it to clear the ranges a migration
// is about to move (pred gets the whole entry: a write-spread key's
// salted shards hash elsewhere than e.hash, and the watcher must flush
// when any of them is covered).
func (hc *hotCache) flushWhere(pred func(e *cacheEntry) bool) int {
	n := 0
	for e := hc.head; e != nil; {
		next := e.next
		if pred(e) {
			hc.remove(e)
			n++
		}
		e = next
	}
	return n
}

func (hc *hotCache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = hc.head
	if hc.head != nil {
		hc.head.prev = e
	}
	hc.head = e
	if hc.tail == nil {
		hc.tail = e
	}
}

func (hc *hotCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		hc.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		hc.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (hc *hotCache) remove(e *cacheEntry) {
	hc.unlink(e)
	delete(hc.m, e.key)
}

func (hc *hotCache) bump(e *cacheEntry) {
	if hc.head == e {
		return
	}
	hc.unlink(e)
	hc.pushFront(e)
}

// keysMRU returns the cached keys in LRU order (most recent first) -
// determinism tests compare two runs' exact cache states.
func (hc *hotCache) keysMRU() []string {
	out := make([]string, 0, len(hc.m))
	for e := hc.head; e != nil; e = e.next {
		out = append(out, e.key)
	}
	return out
}

// hotKeyRep is one core's hot-key machinery: its own sketch, its own
// LRU, its own counters. Created lazily with the clientRep it belongs
// to.
type hotKeyRep struct {
	opt        HotKeyOptions
	sketch     *cmSketch
	cache      *hotCache
	stats      HotKeyStats
	sinceReval int
}

func newHotKeyRep(opt HotKeyOptions) *hotKeyRep {
	hk := &hotKeyRep{opt: opt}
	hk.sketch = newCMSketch(opt.SketchWidth, opt.SketchDepth)
	hk.cache = newHotCache(opt.Capacity, opt.TTL, &hk.stats)
	return hk
}

// HotWriteOptions tunes salted hot-write spreading, the write half of
// the hot-key fix: the read cache absorbs a hot key's reads, but every
// one of its writes still lands on the one owner set the ring picks.
// With spreading on, a key the cluster's write-frequency sketch promotes
// is split across Salts salted storage keys - each hashing to its own
// owner set - writes round-robin the salts, and reads fan in across
// them, folding to the newest version by replica-wide stamp. Promotion
// is cluster-level state (like the ring), so every client salts and
// fans in consistently; it is sticky for the deployment's lifetime.
// The zero value disables spreading.
type HotWriteOptions struct {
	// Enable turns write spreading on for the deployment.
	Enable bool
	// Salts is the number of shards a promoted key's writes are spread
	// over, including the unsalted base key (default 4).
	Salts int
	// PromoteMin is the cluster write-sketch estimate at which a key's
	// writes start round-robining (default 16).
	PromoteMin uint32
	// SketchWidth and SketchDepth size the cluster-wide write-frequency
	// sketch (defaults 1024 x 4).
	SketchWidth int
	SketchDepth int
}

// WithDefaults returns o with every unset field at its default.
func (o HotWriteOptions) WithDefaults() HotWriteOptions {
	if o.Salts <= 1 {
		o.Salts = 4
	}
	if o.Salts > 9 {
		o.Salts = 9 // single-byte salt suffix; 9 owner sets spread any hot key
	}
	if o.PromoteMin == 0 {
		o.PromoteMin = 16
	}
	if o.SketchWidth <= 0 {
		o.SketchWidth = 1024
	}
	if o.SketchDepth <= 0 {
		o.SketchDepth = 4
	}
	return o
}

// HotWriteStats counts the deployment's write-spreading activity.
type HotWriteStats struct {
	// Promoted counts keys the write sketch has split across salts.
	Promoted int
	// SaltedWrites and SaltedReads count operations against spread keys:
	// writes that round-robined a salt, reads that went through the
	// targeted-shard path.
	SaltedWrites, SaltedReads uint64
	// SaltedFanIns counts reads that fell back to the full fan-in across
	// every salt - no acked write on record, or the targeted shard served
	// a copy older than the acked stamp.
	SaltedFanIns uint64
}

// saltedKey returns the storage key for one shard of a spread key: salt
// 0 is the key itself (so pre-promotion data stays reachable), salt i>0
// appends a suffix starting with NUL - a byte no text-protocol key can
// contain, so salted shards can never collide with client keys.
func saltedKey(key []byte, salt int) []byte {
	if salt == 0 {
		return key
	}
	return append(append(append([]byte(nil), key...), 0, '#'), byte('0'+salt))
}
