package cluster

import (
	"fmt"
	"testing"

	"ebbrt/internal/event"
	"ebbrt/internal/sim"
)

// newHotCluster boots a cluster with the hot-key cache enabled on every
// client, tuned so tests promote keys immediately.
func newHotCluster(backends int, hot HotKeyOptions) (*Cluster, *Client) {
	hot.Enable = true
	cl := NewCluster(backends, Options{
		Replicas:      1,
		FrontendCores: 4,
		HotKey:        hot,
	})
	cli := NewClientWithOptions(cl, cl.Sys.Frontend(), ClientOptions{})
	return cl, cli
}

// TestHotKeyCacheServesLocally: once a key is promoted and filled,
// further reads are answered from the core's cache without touching the
// backend.
func TestHotKeyCacheServesLocally(t *testing.T) {
	cl, cli := newHotCluster(1, HotKeyOptions{PromoteMin: 2, TTL: sim.Second})
	front := cl.Sys.Frontend()
	key, val := []byte("the-hot-key"), []byte("the-value")

	var got []string
	front.Spawn(func(c *event.Ctx) {
		cli.Set(c, key, val, 0, func(c *event.Ctx, r Response) {
			var next func(c *event.Ctx, n int)
			next = func(c *event.Ctx, n int) {
				if n == 0 {
					return
				}
				cli.Get(c, key, func(c *event.Ctx, r Response) {
					if r.OK() {
						got = append(got, string(r.Value))
					}
					next(c, n-1)
				})
			}
			next(c, 10)
		})
	})
	cl.Sys.K.RunUntil(sim.Second)

	if len(got) != 10 {
		t.Fatalf("%d of 10 reads completed", len(got))
	}
	for i, v := range got {
		if v != string(val) {
			t.Fatalf("read %d: got %q want %q", i, v, val)
		}
	}
	st := cli.HotKeyStats()
	if st.Fills == 0 || st.Hits == 0 {
		t.Fatalf("cache never engaged: %+v", st)
	}
	// The chain ran on one core: after promotion (2 misses) and one
	// fill, the remaining reads must be hits.
	if st.Hits < 7 {
		t.Fatalf("only %d cache hits across 10 reads", st.Hits)
	}
}

// TestHotKeyWriteInvalidationCoherence: a Get issued after a Set's
// acknowledgment, on any core, must observe the written value - the
// write path invalidates synchronously on submit and re-stamps the
// cache from the ack, so an acked write is never shadowed by an older
// cached copy. Runs a read-modify-write chain per core concurrently
// (every core hammering its own key) plus all cores hammering one
// shared key, which is what -race exercises against the cross-core
// invalidation broadcasts.
func TestHotKeyWriteInvalidationCoherence(t *testing.T) {
	cl, cli := newHotCluster(2, HotKeyOptions{PromoteMin: 1, TTL: sim.Second})
	front := cl.Sys.Frontend()
	mgrs := front.Runtime.Mgrs()
	shared := []byte("shared-hot-key")
	sharedWritten := map[string]bool{}

	const rounds = 30
	type coreResult struct {
		reads  int
		stale  int
		shared int
	}
	results := make([]coreResult, len(mgrs))
	for corei := range mgrs {
		corei := corei
		key := []byte(fmt.Sprintf("core-key-%d", corei))
		var round func(c *event.Ctx, n int)
		round = func(c *event.Ctx, n int) {
			if n >= rounds {
				return
			}
			want := fmt.Sprintf("v-%d-%d", corei, n)
			cli.Set(c, key, []byte(want), 0, func(c *event.Ctx, r Response) {
				if !r.OK() {
					t.Errorf("core %d round %d: set failed %x", corei, n, r.Status)
					return
				}
				cli.Get(c, key, func(c *event.Ctx, r Response) {
					results[corei].reads++
					if !r.OK() || string(r.Value) != want {
						results[corei].stale++
					}
					// Interleave a shared-key write+read: concurrent writers
					// race, so the read must see *a* written value (never a
					// torn one), not necessarily this core's.
					sv := fmt.Sprintf("s-%d-%d", corei, n)
					sharedWritten[sv] = true
					cli.Set(c, shared, []byte(sv), 0, func(c *event.Ctx, r Response) {
						cli.Get(c, shared, func(c *event.Ctx, r Response) {
							if r.OK() && sharedWritten[string(r.Value)] {
								results[corei].shared++
							}
							round(c, n+1)
						})
					})
				})
			})
		}
		mgrs[corei].Spawn(func(c *event.Ctx) { round(c, 0) })
	}
	cl.Sys.K.RunUntil(2 * sim.Second)

	for corei, res := range results {
		if res.reads != rounds {
			t.Fatalf("core %d: %d of %d rounds completed", corei, res.reads, rounds)
		}
		if res.stale != 0 {
			t.Fatalf("core %d: %d reads missed their own acked write", corei, res.stale)
		}
		if res.shared != rounds {
			t.Fatalf("core %d: %d of %d shared reads returned a written value", corei, res.shared, rounds)
		}
	}
	st := cli.HotKeyStats()
	if st.Invalidations == 0 {
		t.Fatalf("writes never invalidated the cache: %+v", st)
	}
}

// TestNoStaleHitAcrossHandoff: entries cached before a migration must
// not be served across the cutover. The TTL is set far beyond the test
// horizon so only the handoff flush + bypass can protect the reads:
// another (uncached) client overwrites every key during the
// dual-routing window, and every key the plan moved must read back the
// new value afterwards.
func TestNoStaleHitAcrossHandoff(t *testing.T) {
	cl, cli := newHotCluster(2, HotKeyOptions{
		PromoteMin:      1,
		TTL:             time10s,
		RevalidateEvery: -1, // revalidation must not mask a missing flush
	})
	front := cl.Sys.Frontend()
	rogue := NewClientWithOptions(cl, front, ClientOptions{HotKey: HotKeyOptions{Disable: true}})
	m := NewMigrator(cl, front, MigratorConfig{})

	const nKeys = 300
	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("handoff-key-%d-%d", i, i*2654435761))
	}
	populate(t, cl, cli, keys, func(i int) []byte { return []byte(fmt.Sprintf("old-%d", i)) })

	// Warm the cache: two read passes so every key is promoted and
	// filled on the issuing core.
	for pass := 0; pass < 2; pass++ {
		if ok, miss, netErr := readAll(cl, cli, keys); ok != nKeys || miss != 0 || netErr != 0 {
			t.Fatalf("warm pass %d: %d ok %d miss %d netErr", pass, ok, miss, netErr)
		}
	}
	if cli.HotKeyStats().Fills == 0 {
		t.Fatal("warm passes filled nothing")
	}

	// Capture the migration plan as the window opens, to know which
	// keys actually moved.
	var moved []MoveRange
	cl.WatchHandoff(func(pending []MoveRange) {
		moved = append([]MoveRange(nil), pending...)
	})
	m.Join(1)
	if len(moved) == 0 {
		t.Fatal("join opened no handoff window")
	}

	// Mid-window: the rogue client overwrites every key (dual-routed,
	// so both old and new owners see it).
	acked := 0
	front.Spawn(func(c *event.Ctx) {
		for i, key := range keys {
			val := []byte(fmt.Sprintf("new-%d", i))
			rogue.Set(c, key, val, 0, func(c *event.Ctx, r Response) {
				if r.OK() {
					acked++
				}
			})
		}
	})
	cl.Sys.K.RunFor(20 * sim.Millisecond)
	if acked != nKeys {
		t.Fatalf("mid-window rewrites: %d of %d acked", acked, nKeys)
	}
	waitMigration(t, cl, m, 300*sim.Millisecond)

	// Post-cutover reads: a key inside a moved range served from a
	// pre-handoff cache entry would still read "old-<i>".
	coveredKeys, staleMoved := 0, 0
	got := make([]string, nKeys)
	front.Spawn(func(c *event.Ctx) {
		for i, key := range keys {
			i := i
			cli.Get(c, key, func(c *event.Ctx, r Response) {
				if r.OK() {
					got[i] = string(r.Value)
				}
			})
		}
	})
	cl.Sys.K.RunFor(20 * sim.Millisecond)
	for i, key := range keys {
		h := ringHash(key)
		covered := false
		for _, r := range moved {
			if r.Contains(h) {
				covered = true
				break
			}
		}
		if !covered {
			continue
		}
		coveredKeys++
		if got[i] != fmt.Sprintf("new-%d", i) {
			staleMoved++
			t.Errorf("moved key %q read %q after cutover, want %q", key, got[i], fmt.Sprintf("new-%d", i))
		}
	}
	if coveredKeys == 0 {
		t.Fatal("no test key fell inside a moved range")
	}
	st := cli.HotKeyStats()
	if st.Flushes == 0 {
		t.Fatalf("handoff flushed nothing: %+v", st)
	}
	t.Logf("%d keys moved, %d flushed cache entries, %d handoff bypasses", coveredKeys, st.Flushes, st.HandoffBypass)
}

const time10s = 10 * sim.Second

// TestHotKeyDeleteNotResurrectedByRacingFill: a GET whose response is
// still in flight when the same core deletes the key must not fill the
// cache with the pre-delete value - the delete tombstone generation
// stands the fill down, so read-your-own-delete holds even though a
// deleted key has no CAS for the monotonic put guard to compare.
func TestHotKeyDeleteNotResurrectedByRacingFill(t *testing.T) {
	cl := NewCluster(1, Options{
		FrontendCores: 2,
		HotKey:        HotKeyOptions{Enable: true, PromoteMin: 1, TTL: time10s, RevalidateEvery: -1},
	})
	// PoolSize 1 forces the GET and the DELETE onto one connection, so
	// the server answers the GET (with the value) before applying the
	// delete - the exact interleaving that used to resurrect the value.
	cli := NewClientWithOptions(cl, cl.Sys.Frontend(), ClientOptions{PoolSize: 1})
	front := cl.Sys.Frontend()
	key := []byte("doomed-key")

	var final *Response
	front.Spawn(func(c *event.Ctx) {
		cli.Set(c, key, []byte("v"), 0, func(c *event.Ctx, r Response) {
			if !r.OK() {
				t.Error("set failed")
				return
			}
			// GET (fill armed: PromoteMin 1) and DELETE back to back; the
			// GET's OK response arrives after the tombstone.
			cli.Get(c, key, nil)
			cli.Delete(c, key, func(c *event.Ctx, r Response) {
				if !r.OK() {
					t.Errorf("delete failed: %x", r.Status)
				}
			})
		})
	})
	cl.Sys.K.RunFor(50 * sim.Millisecond)
	front.Spawn(func(c *event.Ctx) {
		cli.Get(c, key, func(c *event.Ctx, r Response) { final = &r })
	})
	cl.Sys.K.RunFor(50 * sim.Millisecond)

	if final == nil {
		t.Fatal("final read never completed")
	}
	if final.Status != 0x0001 { // memcached.StatusKeyNotFound
		t.Fatalf("deleted key served status %#x value %q - racing fill resurrected it", final.Status, final.Value)
	}
}

// TestHotKeyCrossCoreDeleteVsRacingRestamp: a Delete issued on one core
// while another core's Set is still in flight must not be undone by the
// Set's ack re-stamping the deleted value into the deleter's cache -
// the tombstone generation is client-wide, so a delete from ANY core
// stands down every re-stamp sampled before it. The invariant checked
// is cache-vs-store agreement: whatever order the two writes reached
// the server in, the deleter core's next read must match the
// authoritative store, never a cache-resurrected value.
func TestHotKeyCrossCoreDeleteVsRacingRestamp(t *testing.T) {
	cl, cli := newHotCluster(1, HotKeyOptions{PromoteMin: 1, TTL: time10s, RevalidateEvery: -1})
	front := cl.Sys.Frontend()
	mgrs := front.Runtime.Mgrs()
	k := cl.Sys.K

	// The damaging interleaving needs the delete to hit the wire after
	// the SET reached the server but before the SET's ack returns; the
	// exact offset depends on modeled link and stack latencies, so sweep
	// the delete across the round trip - every round must agree with the
	// authoritative store whichever side of the race it lands on.
	for delayUs := 1; delayUs <= 14; delayUs++ {
		key := []byte(fmt.Sprintf("cross-core-key-%d", delayUs))

		// Warm the key hot on core 1 (the deleter) so a re-stamp would be
		// admitted there, and open core 0's pool so its SET goes straight
		// out instead of waiting behind a TCP dial.
		warmed := 0
		mgrs[1].Spawn(func(c *event.Ctx) {
			cli.Set(c, key, []byte("v1"), 0, func(c *event.Ctx, r Response) {
				cli.Get(c, key, func(c *event.Ctx, r Response) {
					if r.OK() {
						warmed++
					}
				})
			})
		})
		k.RunFor(10 * sim.Millisecond)
		mgrs[0].Spawn(func(c *event.Ctx) {
			cli.Get(c, key, func(c *event.Ctx, r Response) {
				if r.OK() {
					warmed++
				}
			})
		})
		k.RunFor(10 * sim.Millisecond)
		if warmed != 2 {
			t.Fatalf("delay %dus: warmup %d of 2 reads ok", delayUs, warmed)
		}

		mgrs[0].Spawn(func(c *event.Ctx) { cli.Set(c, key, []byte("v2"), 0, nil) })
		delay := sim.Time(delayUs) * sim.Microsecond
		k.After(delay, func() {
			mgrs[1].Spawn(func(c *event.Ctx) { cli.Delete(c, key, nil) })
		})
		k.RunFor(10 * sim.Millisecond)

		var got *Response
		mgrs[1].Spawn(func(c *event.Ctx) {
			cli.Get(c, key, func(c *event.Ctx, r Response) { got = &r })
		})
		k.RunFor(10 * sim.Millisecond)
		if got == nil {
			t.Fatalf("delay %dus: final read never completed", delayUs)
		}
		stored, inStore := cl.Backends[0].Srv.Store.Get(string(key))
		switch {
		case inStore && (!got.OK() || string(got.Value) != string(stored.Value)):
			t.Fatalf("delay %dus: store holds %q but core 1 read status %#x value %q",
				delayUs, stored.Value, got.Status, got.Value)
		case !inStore && got.OK():
			t.Fatalf("delay %dus: store is empty but core 1 read %q - racing re-stamp resurrected the deleted value",
				delayUs, got.Value)
		}
	}
}

// TestHotKeyClientDisableOverridesCluster: a client asking for
// HotKey.Disable on a cache-enabled cluster must run with no cache
// machinery at all.
func TestHotKeyClientDisableOverridesCluster(t *testing.T) {
	cl, cached := newHotCluster(1, HotKeyOptions{PromoteMin: 1, TTL: time10s})
	front := cl.Sys.Frontend()
	plain := NewClientWithOptions(cl, front, ClientOptions{HotKey: HotKeyOptions{Disable: true}})
	key := []byte("shared-key")

	front.Spawn(func(c *event.Ctx) {
		plain.Set(c, key, []byte("v"), 0, func(c *event.Ctx, r Response) {
			plain.Get(c, key, func(c *event.Ctx, r Response) {
				plain.Get(c, key, nil)
			})
		})
	})
	cl.Sys.K.RunFor(50 * sim.Millisecond)

	if st := plain.HotKeyStats(); st != (HotKeyStats{}) {
		t.Fatalf("disabled client ran cache machinery: %+v", st)
	}
	_ = cached
}
