package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"ebbrt/internal/sim"
)

func TestCMSketchCountsAndConservativeUpdate(t *testing.T) {
	s := newCMSketch(1024, 4)
	h := ringHash([]byte("hot-key"))
	for i := 1; i <= 20; i++ {
		if got := s.touch(h); got != uint32(i) {
			t.Fatalf("touch %d: estimate %d", i, got)
		}
	}
	if got := s.estimate(h); got != 20 {
		t.Fatalf("estimate after 20 touches: %d", got)
	}
	if got := s.estimate(ringHash([]byte("never-seen"))); got > 20 {
		t.Fatalf("unseen key estimated %d (row collision should stay <= hottest count)", got)
	}
	// A cold key's estimate must not be inflated past its own touch
	// count plus collisions; with one hot key in a 1024-wide, 4-deep
	// sketch a disjoint key should estimate 0.
	cold := ringHash([]byte("cold-key"))
	if got := s.estimate(cold); got != 0 {
		t.Fatalf("cold key pre-touch estimate %d, want 0", got)
	}
}

func TestHotCacheLRUEvictionOrder(t *testing.T) {
	var stats HotKeyStats
	hc := newHotCache(3, sim.Second, &stats)
	now := sim.Time(0)
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		hc.put(k, uint64(i), []byte(k), 0, uint64(i+1), 0, now)
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := hc.get([]byte("k0"), now); !ok {
		t.Fatal("k0 missing")
	}
	hc.put("k3", 3, []byte("k3"), 0, 10, 0, now)
	if stats.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", stats.Evictions)
	}
	if _, ok := hc.get([]byte("k1"), now); ok {
		t.Fatal("k1 survived eviction despite being LRU")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := hc.get([]byte(k), now); !ok {
			t.Fatalf("%s evicted, want it cached", k)
		}
	}
}

func TestHotCacheTTLExpiry(t *testing.T) {
	var stats HotKeyStats
	ttl := 2 * sim.Millisecond
	hc := newHotCache(8, ttl, &stats)
	hc.put("k", 1, []byte("v"), 0, 1, 0, 0)
	if _, ok := hc.get([]byte("k"), ttl); !ok {
		t.Fatal("entry at exactly TTL age should still serve")
	}
	if _, ok := hc.get([]byte("k"), ttl+1); ok {
		t.Fatal("entry past TTL served")
	}
	if stats.Expired != 1 {
		t.Fatalf("expired %d, want 1", stats.Expired)
	}
	if hc.len() != 0 {
		t.Fatal("expired entry not dropped")
	}
}

func TestHotCachePutCASMonotonic(t *testing.T) {
	var stats HotKeyStats
	hc := newHotCache(8, sim.Second, &stats)
	hc.put("k", 1, []byte("new"), 7, 5, 0, 0)
	// A reordered older response must not roll the entry back.
	hc.put("k", 1, []byte("old"), 0, 3, 0, 1)
	e, ok := hc.get([]byte("k"), 1)
	if !ok || string(e.value) != "new" || e.cas != 5 {
		t.Fatalf("entry rolled back to %+v", e)
	}
	hc.put("k", 1, []byte("newer"), 1, 9, 0, 2)
	if e, _ := hc.get([]byte("k"), 2); string(e.value) != "newer" || e.cas != 9 {
		t.Fatalf("newer CAS not applied: %+v", e)
	}
}

// TestSketchPromotionEvictionDeterminism feeds the same seeded Zipf
// stream through two independent hot-key representatives applying the
// read-path admission rule, and requires byte-identical cache state -
// promotion and eviction must be a pure function of the op stream.
func TestSketchPromotionEvictionDeterminism(t *testing.T) {
	run := func() ([]string, HotKeyStats) {
		hk := newHotKeyRep(HotKeyOptions{Enable: true, Capacity: 32, PromoteMin: 4}.WithDefaults())
		rng := sim.NewRng(99)
		zipf := sim.NewZipf(rng, 1.2, 2000)
		now := sim.Time(0)
		for i := 0; i < 50000; i++ {
			now += 10 * sim.Microsecond
			keyIdx := zipf.Next()
			key := []byte(fmt.Sprintf("zipf-key-%d", keyIdx))
			h := ringHash(key)
			if _, ok := hk.cache.get(key, now); ok {
				hk.stats.Hits++
				continue
			}
			hk.stats.Misses++
			if hk.sketch.touch(h) >= hk.opt.PromoteMin {
				hk.cache.put(string(key), h, []byte("v"), 0, uint64(i), 0, now)
			}
		}
		return hk.cache.keysMRU(), hk.stats
	}
	keysA, statsA := run()
	keysB, statsB := run()
	if !reflect.DeepEqual(keysA, keysB) {
		t.Fatalf("cache contents diverged:\n%v\n%v", keysA, keysB)
	}
	if statsA != statsB {
		t.Fatalf("stats diverged:\n%+v\n%+v", statsA, statsB)
	}
	if len(keysA) != 32 {
		t.Fatalf("cache holds %d entries, want full capacity 32", len(keysA))
	}
	if statsA.Evictions == 0 || statsA.Hits == 0 {
		t.Fatalf("stream did not exercise eviction and hits: %+v", statsA)
	}
}
