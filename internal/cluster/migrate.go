package cluster

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/audit"
	"ebbrt/internal/core"
	"ebbrt/internal/event"
	"ebbrt/internal/hosted"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/netstack"
	"ebbrt/internal/sim"
)

// This file is the rebalancer: the machinery that moves key shares
// between backends when the ring's membership changes, instead of
// letting them fault in as cache misses (join) or letting the replica
// count stay degraded (permanent loss).
//
// It has three parts:
//
//   - PlanMigration diffs two rings into the exact set of moved hash
//     ranges: for every arc of the keyspace whose owner set gained a
//     backend, a MoveRange naming the gaining backend and the old
//     owners that hold the data.
//   - Migrator executes a plan: a coordinator Ebb on the frontend asks
//     a live source replica (over the messenger) to stream each moved
//     range to its new owner over the memcached binary protocol
//     (pipelined AddQ fenced by a Noop), retrying from surviving
//     replicas on failure.
//   - The Cluster's handoff state (cluster.go) dual-routes the client
//     during the window: writes reach old and new owners, reads fall
//     through old to new, and each range cuts over the moment its
//     stream completes.

// MoveRange is one migrated arc of the hash ring: the keys whose hash
// lies in (Lo, Hi] (wrapping when Lo >= Hi) gained Dest as an owner.
// Sources are the pre-change owners holding the data, in ring
// preference order.
type MoveRange struct {
	Lo, Hi  uint64
	Dest    int
	Sources []int
}

// Contains reports whether hash h falls inside the range's arc.
func (r MoveRange) Contains(h uint64) bool {
	if r.Lo < r.Hi {
		return h > r.Lo && h <= r.Hi
	}
	// Wrapped (or full-circle, Lo == Hi) arc.
	return h > r.Lo || h <= r.Hi
}

// PlanMigration computes the exact ownership delta between two rings
// under R-way replication: one MoveRange per (arc, gaining backend)
// pair, covering precisely the keys whose replica set changed. Segment
// boundaries are the union of both rings' virtual points, so within
// each emitted arc both the old and new owner sets are constant; arcs
// with identical transfer endpoints are merged. Keys outside the plan
// are untouched - the consistent-hashing bound (~1/N of the keyspace
// per membership change) carries over to the bytes on the wire.
func PlanMigration(old, new *Ring, replicas int) []MoveRange {
	if old.Size() == 0 || new.Size() == 0 {
		return nil
	}
	if replicas <= 0 {
		replicas = 1
	}
	bounds := make([]uint64, 0, len(old.points)+len(new.points))
	for _, p := range old.points {
		bounds = append(bounds, p.hash)
	}
	for _, p := range new.points {
		bounds = append(bounds, p.hash)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:0]
	for i, b := range bounds {
		if i == 0 || b != bounds[i-1] {
			uniq = append(uniq, b)
		}
	}
	bounds = uniq

	var plan []MoveRange
	for i, hi := range bounds {
		lo := bounds[(i+len(bounds)-1)%len(bounds)]
		oldSet := old.OwnersAt(hi, replicas)
		newSet := new.OwnersAt(hi, replicas)
		for _, d := range newSet {
			if !containsBackend(oldSet, d) {
				plan = append(plan, MoveRange{
					Lo: lo, Hi: hi, Dest: d,
					Sources: append([]int(nil), oldSet...),
				})
			}
		}
	}
	return mergeAdjacent(plan)
}

// mergeAdjacent coalesces consecutive plan entries that share endpoints
// and abut on the ring, shrinking both the plan and the per-operation
// handoff lookups.
func mergeAdjacent(plan []MoveRange) []MoveRange {
	if len(plan) == 0 {
		return plan
	}
	out := plan[:1]
	for _, r := range plan[1:] {
		last := &out[len(out)-1]
		if last.Hi == r.Lo && last.Dest == r.Dest && equalBackends(last.Sources, r.Sources) {
			last.Hi = r.Hi
			continue
		}
		out = append(out, r)
	}
	return out
}

func containsBackend(s []int, b int) bool {
	for _, x := range s {
		if x == b {
			return true
		}
	}
	return false
}

func equalBackends(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MigratorConfig tunes the rebalancer beyond the defaults.
type MigratorConfig struct {
	// JobTimeout bounds one transfer attempt before the coordinator
	// retries from the next live source (default 25ms - generously above
	// a stream of a full key share, well below the netstack giving up on
	// a dead peer).
	JobTimeout sim.Time
	// RetryDelay spaces retries after an explicitly reported transfer
	// failure (default 2ms).
	RetryDelay sim.Time
	// MaxAttempts bounds per-job attempts before the whole migration is
	// aborted (default 6).
	MaxAttempts int
	// PerEntryCPU is the virtual CPU a source charges per streamed entry
	// - the scan/serialize cost the hot path pays for rebalancing
	// (default 200ns).
	PerEntryCPU sim.Time
	// ChunkBytes caps one Send of the migration stream (default 16KB).
	ChunkBytes int
}

func (cfg *MigratorConfig) applyDefaults() {
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 25 * sim.Millisecond
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 2 * sim.Millisecond
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 6
	}
	if cfg.PerEntryCPU <= 0 {
		cfg.PerEntryCPU = 200 * sim.Nanosecond
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 16 * 1024
	}
}

// Migration is the record of one rebalance.
type Migration struct {
	Id    uint64
	Kind  string // "join" or "decommission"
	Epoch uint64 // the ring epoch whose diff this migration streams
	// Ranges and Jobs size the plan: ranges are cutover units, jobs are
	// transfer units (ranges grouped by identical endpoints).
	Ranges int
	Jobs   int
	// Moved counts entries streamed to new owners.
	Moved int
	// Lost counts ranges that had no live source (permanent loss at
	// R=1): they cut over empty and their keys fault in as misses.
	Lost      int
	StartedAt sim.Time
	// DoneAt is set when the migration finishes or aborts (-1 while
	// running).
	DoneAt  sim.Time
	Aborted bool
}

// migration wire format, carried over the messenger:
//
//	mgXfer (coordinator -> source):
//	  [kind u8][migId u64][job u32][attempt u32][destNode u32]
//	  [nRanges u32]{[lo u64][hi u64]}*
//	mgDone / mgFail (source -> coordinator):
//	  [kind u8][migId u64][job u32][attempt u32][moved u32]
const (
	mgXfer = 0x01
	mgDone = 0x02
	mgFail = 0x03
)

const mgAckLen = 1 + 8 + 4 + 4 + 4

// noopFence is the opaque of the Noop fencing a migration stream.
const noopFence = 0xffffffff

// xferJob is one transfer unit: every moved range sharing a destination
// and source set, streamed over a single connection.
type xferJob struct {
	dest    int
	sources []int
	ranges  []MoveRange
}

// migrationRun is the coordinator's state for the active migration.
type migrationRun struct {
	mig       *Migration
	jobs      []xferJob
	done      []bool
	attempt   []int
	scrubbing []bool
	timers    []*sim.Event
	left      int
	drain     int // backend being drained (live decommission), -1 otherwise
}

// Migrator is the rebalancing coordinator Ebb, installed on the hosted
// frontend. Join and Decommission change the ring's membership and
// stream the resulting ownership delta; while a migration runs, the
// cluster's handoff state dual-routes the affected key ranges. One
// migration runs at a time.
type Migrator struct {
	cl   *Cluster
	node *hosted.Node
	cfg  MigratorConfig
	id   core.Id
	mgr  *event.Manager

	nextId     uint64
	cur        *migrationRun
	last       *Migration
	onDone     []func(*Migration)
	registered map[int]bool
}

// NewMigrator installs the rebalancer for the cluster on the given node
// (the hosted frontend).
func NewMigrator(cl *Cluster, node *hosted.Node, cfg MigratorConfig) *Migrator {
	cfg.applyDefaults()
	m := &Migrator{
		cl:         cl,
		node:       node,
		cfg:        cfg,
		id:         cl.Sys.AllocateEbbId(),
		mgr:        node.Runtime.Mgrs()[0],
		registered: map[int]bool{},
	}
	// The coordinator collects transfer acknowledgments.
	node.Messenger.Register(m.id, func(c *event.Ctx, src hosted.NodeId, payload []byte) {
		m.onAck(c, payload)
	})
	for i := range cl.Backends {
		m.register(i)
	}
	// A migration whose destination leaves the ring can never complete;
	// abort so the handoff window closes (the ring's own rerouting
	// already covers the keys).
	cl.Watch(func(b int, up bool) {
		if up || m.cur == nil {
			return
		}
		for j, job := range m.cur.jobs {
			if job.dest == b && !m.cur.done[j] {
				m.abort()
				return
			}
		}
	})
	return m
}

// Active reports whether a migration is in progress.
func (m *Migrator) Active() bool { return m.cur != nil }

// Last returns the most recently finished (or aborted) migration, nil
// if none has run.
func (m *Migrator) Last() *Migration { return m.last }

// OnComplete registers fn to run when a migration finishes or aborts.
func (m *Migrator) OnComplete(fn func(*Migration)) {
	m.onDone = append(m.onDone, fn)
}

// Join boots a new backend and streams its key share to it: the ring
// gains the backend immediately (new placement routes to it), and until
// every moved range has been streamed from a live replica the client
// dual-routes those ranges, so the hit rate never sees the join.
func (m *Migrator) Join(cores int) *Backend {
	if m.cur != nil {
		panic("cluster: migration already in progress")
	}
	prev := m.cl.Ring.Clone()
	b := m.cl.AddBackend(cores)
	m.register(len(m.cl.Backends) - 1)
	plan := PlanMigration(prev, m.cl.Ring, m.cl.Replicas)
	m.start("join", prev, plan, -1)
	return b
}

// Decommission permanently removes backend i, restoring every affected
// key to R live replicas:
//
//   - A live backend is drained: it leaves the ring but keeps serving
//     its old share while the migrator streams that share (from the
//     backend itself, or any replica) to the new owners; only then do
//     clients drop it.
//   - An already-evicted (dead) backend is re-replicated around: the
//     ranges it co-owned are streamed from surviving replicas to the
//     ring successors that were promoted into the replica sets, closing
//     the degraded-R window a permanent failure used to leave behind.
func (m *Migrator) Decommission(i int) {
	if m.cur != nil {
		panic("cluster: migration already in progress")
	}
	if m.cl.Decommissioned(i) {
		return
	}
	var prev *Ring
	drain := -1
	if m.cl.Live(i) {
		prev = m.cl.Ring.Clone()
		m.cl.startDrain(i)
		drain = i
	} else {
		// Already off the ring: rebuild the pre-eviction ring (placement
		// is a pure function of membership) to diff against.
		prev = m.cl.Ring.Clone()
		prev.Add(i)
		m.cl.markDecommissioned(i)
	}
	plan := PlanMigration(prev, m.cl.Ring, m.cl.Replicas)
	m.start("decommission", prev, plan, drain)
}

func (m *Migrator) start(kind string, prev *Ring, plan []MoveRange, drain int) {
	m.nextId++
	mig := &Migration{
		Id:        m.nextId,
		Kind:      kind,
		Epoch:     m.cl.Ring.Epoch(),
		Ranges:    len(plan),
		StartedAt: m.cl.Sys.K.Now(),
		DoneAt:    -1,
	}
	jobs := buildJobs(plan)
	mig.Jobs = len(jobs)
	if a := m.cl.Audit; a != nil {
		a.Emit(mig.StartedAt, int(m.node.Id), audit.MigrationStart, audit.Fields{
			"id": mig.Id, "kind": kind, "epoch": mig.Epoch,
			"ranges": mig.Ranges, "jobs": mig.Jobs,
		})
	}
	if len(jobs) == 0 {
		// Nothing moved (e.g. R already spans the membership).
		if drain >= 0 {
			m.cl.finishDrain(drain)
		}
		m.conclude(mig)
		return
	}
	m.cl.beginHandoff(prev, plan)
	run := &migrationRun{
		mig:       mig,
		jobs:      jobs,
		done:      make([]bool, len(jobs)),
		attempt:   make([]int, len(jobs)),
		scrubbing: make([]bool, len(jobs)),
		timers:    make([]*sim.Event, len(jobs)),
		left:      len(jobs),
		drain:     drain,
	}
	m.cur = run
	for j := range jobs {
		m.launch(j)
	}
}

// buildJobs groups the plan's ranges by transfer endpoints: all ranges
// bound for one destination from one source set travel on one
// connection.
func buildJobs(plan []MoveRange) []xferJob {
	var jobs []xferJob
	index := map[string]int{}
	for _, r := range plan {
		key := fmt.Sprintf("%d|%v", r.Dest, r.Sources)
		j, ok := index[key]
		if !ok {
			j = len(jobs)
			index[key] = j
			jobs = append(jobs, xferJob{dest: r.Dest, sources: r.Sources})
		}
		jobs[j].ranges = append(jobs[j].ranges, r)
	}
	return jobs
}

// launch starts (or retries) one transfer job: pick the next live
// source, send it the transfer request, and arm the retry timer.
func (m *Migrator) launch(j int) {
	run := m.cur
	if run == nil || run.done[j] {
		return
	}
	if run.attempt[j] >= m.cfg.MaxAttempts {
		m.abort()
		return
	}
	if run.timers[j] != nil {
		run.timers[j].Cancel()
		run.timers[j] = nil
	}
	run.attempt[j]++
	job := run.jobs[j]
	src := -1
	for k := 0; k < len(job.sources); k++ {
		cand := job.sources[(run.attempt[j]-1+k)%len(job.sources)]
		if m.cl.Backends[cand].Node.Alive() {
			src = cand
			break
		}
	}
	if src < 0 {
		// No live source holds the data (permanent loss at R=1). Cut the
		// ranges over empty - the keys fault in as misses, which is the
		// pre-migration behavior - and record the loss.
		m.completeJob(j, 0, true)
		return
	}
	// Backends added by plain AddBackend (outside Join) have no transfer
	// handler yet; install it before asking them to stream.
	m.register(src)
	payload := encodeXfer(run.mig.Id, uint32(j), uint32(run.attempt[j]),
		m.cl.Backends[job.dest].Node.Id, job.ranges)
	srcNode := m.cl.Backends[src].Node.Id
	attempt := run.attempt[j]
	m.mgr.Spawn(func(c *event.Ctx) {
		if m.cur != run || run.done[j] || run.attempt[j] != attempt {
			return
		}
		m.node.Messenger.Send(c, srcNode, m.id, payload)
		run.timers[j] = m.mgr.After(m.cfg.JobTimeout, func(c *event.Ctx) {
			if m.cur != run || run.done[j] {
				return
			}
			m.launch(j)
		})
	})
}

// onAck handles a source's transfer acknowledgment on the coordinator.
func (m *Migrator) onAck(c *event.Ctx, payload []byte) {
	if len(payload) != mgAckLen {
		return
	}
	kind := payload[0]
	migId := binary.BigEndian.Uint64(payload[1:9])
	j := int(binary.BigEndian.Uint32(payload[9:13]))
	attempt := int(binary.BigEndian.Uint32(payload[13:17]))
	moved := int(binary.BigEndian.Uint32(payload[17:21]))
	run := m.cur
	if run == nil || run.mig.Id != migId || j >= len(run.jobs) || run.done[j] {
		return
	}
	switch kind {
	case mgDone:
		if attempt != run.attempt[j] {
			// Only the live attempt may cut the job over: a stale
			// attempt's fence returning while a newer (re-launched)
			// stream is still unfenced must not trigger the cutover,
			// or the newer stream's late adds could resurrect keys
			// deleted after it. (A stale stream that never fences at
			// all can in principle still trickle adds past the live
			// attempt's cutover - closing that fully needs dest-side
			// epochs, which the simulated failure model doesn't reach.)
			return
		}
		if run.scrubbing[j] {
			return // a scrub is already finishing this job
		}
		// The fence returned: every entry of this job's stream is applied
		// at the destination.
		if a := m.cl.Audit; a != nil {
			a.Emit(c.Now(), int(m.node.Id), audit.MigrationFence, audit.Fields{
				"id": run.mig.Id, "job": j, "moved": moved,
			})
		}
		// Keys quorum-deleted while this job streamed may have been
		// resurrected at the destination by the stream's pre-delete
		// snapshot; scrub them there before cutting the ranges over.
		if tombs := m.cl.peekDeleted(run.jobs[j].ranges); len(tombs) > 0 {
			m.scrub(c, run, j, moved, tombs)
			return
		}
		m.completeJob(j, moved, false)
	case mgFail:
		if attempt != run.attempt[j] {
			return // a newer attempt owns the job
		}
		if run.timers[j] != nil {
			run.timers[j].Cancel()
		}
		run.timers[j] = m.mgr.After(m.cfg.RetryDelay, func(c *event.Ctx) {
			if m.cur != run || run.done[j] {
				return
			}
			m.launch(j)
		})
	}
}

// fencedPipeline dials a shard's memcached port, lets send() pipeline
// requests whose tail is a Noop with the noopFence opaque, and reports
// exactly once: fenced() when the fence's response arrives - at which
// point every earlier request on the connection has been applied - or
// failed() if the connection dies first. Both the migration stream and
// the tombstone scrub ride on it.
func fencedPipeline(c *event.Ctx, rt appnet.Runtime, ip netstack.Ipv4Addr,
	send func(c *event.Ctx, conn appnet.Conn), fenced, failed func(c *event.Ctx)) {
	done, dead := false, false
	var rx []byte
	rt.Dial(c, ip, memcached.Port, appnet.Callbacks{
		OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
			rx = append(rx, payload.CopyOut()...)
			consumed := 0
			for {
				hdr, _, n, err := memcached.NextFrame(rx[consumed:], memcached.MagicResponse)
				if err != nil {
					conn.Close(c) // OnClose reports the failure
					return
				}
				if n == 0 {
					break
				}
				consumed += n
				// Per-request responses (a quiet ADD losing to a fresher
				// dual-written value, a scrubbed key already absent) don't
				// matter; only the fence does.
				if hdr.Opcode == memcached.OpNoop && hdr.Opaque == noopFence && !done {
					done = true
					conn.Close(c)
					fenced(c)
					return
				}
			}
			rx = rx[consumed:]
		},
		OnClose: func(c *event.Ctx, conn appnet.Conn, err error) {
			if done || dead {
				return
			}
			dead = true
			failed(c)
		},
	}, send)
}

// scrub deletes, at a job's destination, keys that were quorum-deleted
// while the stream was in flight: the stream's snapshot predates those
// deletes and its add-if-absent application resurrected them. The job
// cuts over only once the fence confirms the scrub applied. On failure
// the job's retry timer is still armed: the re-streamed attempt re-acks
// and scrubs again (tombstones are consumed only on success).
func (m *Migrator) scrub(c *event.Ctx, run *migrationRun, j, moved int, tombs [][]byte) {
	run.scrubbing[j] = true
	dest := m.cl.Backends[run.jobs[j].dest].Node
	fencedPipeline(c, m.node.Runtime, dest.IP(), func(c *event.Ctx, conn appnet.Conn) {
		var buf []byte
		for i, key := range tombs {
			buf = append(buf, memcached.BuildDelete(key, uint32(i))...)
		}
		buf = append(buf, memcached.BuildNoop(noopFence)...)
		conn.Send(c, iobuf.Wrap(buf))
	}, func(c *event.Ctx) {
		if m.cur != run || run.done[j] {
			return
		}
		run.scrubbing[j] = false
		// A key re-created (noteSet cleared its tombstone) after this
		// scrub captured its set may have had the new value deleted by
		// the in-flight scrub. Re-stream the job: the sources hold the
		// re-created value (union delivery) and add-if-absent restores
		// it at the destination; tombstones still standing are consumed.
		var still, vanished [][]byte
		remaining := map[string]bool{}
		for _, k := range m.cl.peekDeleted(run.jobs[j].ranges) {
			remaining[string(k)] = true
		}
		for _, k := range tombs {
			if remaining[string(k)] {
				still = append(still, k)
			} else {
				vanished = append(vanished, k)
			}
		}
		m.cl.clearDeleted(still)
		if len(vanished) > 0 {
			m.launch(j)
			return
		}
		m.completeJob(j, moved, false)
	}, func(c *event.Ctx) {
		run.scrubbing[j] = false // let a retried stream's ack re-scrub
	})
}

// completeJob cuts a finished job's ranges over and, when it was the
// last one, concludes the migration.
func (m *Migrator) completeJob(j int, moved int, lost bool) {
	run := m.cur
	run.done[j] = true
	if run.timers[j] != nil {
		run.timers[j].Cancel()
		run.timers[j] = nil
	}
	for _, r := range run.jobs[j].ranges {
		m.cl.completeRange(r)
	}
	if a := m.cl.Audit; a != nil {
		a.Emit(m.cl.Sys.K.Now(), int(m.node.Id), audit.MigrationCutover, audit.Fields{
			"id": run.mig.Id, "job": j, "ranges": len(run.jobs[j].ranges), "lost": lost,
		})
	}
	run.mig.Moved += moved
	if lost {
		run.mig.Lost += len(run.jobs[j].ranges)
	}
	run.left--
	if run.left == 0 {
		m.cl.endHandoff()
		if run.drain >= 0 {
			m.cl.finishDrain(run.drain)
		}
		m.cur = nil
		m.conclude(run.mig)
	}
}

// abort cancels the active migration: the handoff window closes and
// routing reverts to the plain ring. An aborted join leaves the new
// backend on the ring serving what it received (read fall-through
// covers the rest); an aborted drain returns the backend to full
// membership.
func (m *Migrator) abort() {
	run := m.cur
	if run == nil {
		return
	}
	for _, t := range run.timers {
		if t != nil {
			t.Cancel()
		}
	}
	m.cl.endHandoff()
	if run.drain >= 0 {
		m.cl.cancelDrain(run.drain)
	}
	run.mig.Aborted = true
	if a := m.cl.Audit; a != nil {
		a.Emit(m.cl.Sys.K.Now(), int(m.node.Id), audit.MigrationAbort, audit.Fields{"id": run.mig.Id})
	}
	m.cur = nil
	m.conclude(run.mig)
}

func (m *Migrator) conclude(mig *Migration) {
	if mig.DoneAt < 0 {
		mig.DoneAt = m.cl.Sys.K.Now()
	}
	if !mig.Aborted {
		if a := m.cl.Audit; a != nil {
			a.Emit(mig.DoneAt, int(m.node.Id), audit.MigrationDone, audit.Fields{
				"id": mig.Id, "moved": mig.Moved, "lost": mig.Lost,
			})
		}
	}
	m.last = mig
	for _, fn := range m.onDone {
		fn(mig)
	}
}

// register installs the source-side transfer handler on backend bi's
// node: asked for a range set, it scans its store snapshot and streams
// the matching entries to the destination over the memcached protocol.
// The handler touches only the backend's own state and the network -
// the same inter-node discipline the health monitor follows.
func (m *Migrator) register(bi int) {
	if m.registered[bi] {
		return
	}
	m.registered[bi] = true
	b := m.cl.Backends[bi]
	b.Node.Messenger.Register(m.id, func(c *event.Ctx, src hosted.NodeId, payload []byte) {
		if req, ok := decodeXfer(payload); ok {
			m.stream(c, b, src, req)
		}
	})
}

type xferReq struct {
	migId    uint64
	job      uint32
	attempt  uint32
	destNode hosted.NodeId
	ranges   []MoveRange
}

// stream executes one transfer on the source backend: snapshot-scan the
// store for keys hashing into the requested ranges, pipeline them to
// the destination shard as quiet ADDs (add-if-absent, so a fresher
// value dual-written during the handoff is never clobbered), fence with
// a Noop, and acknowledge the coordinator once the fence returns - at
// which point every entry is applied at the destination.
func (m *Migrator) stream(c *event.Ctx, b *Backend, coord hosted.NodeId, req xferReq) {
	type kv struct {
		key string
		e   *memcached.Entry
	}
	var entries []kv
	now := c.Now()
	b.Srv.Store.Scan(func(k string, e *memcached.Entry) bool {
		// Expiry is lazy: the store may still physically hold entries
		// whose deadline (or a flush_all cut) has passed. Filter them at
		// stream time - copying one to the destination would resurrect it
		// as live data under a fresh owner.
		if !b.Srv.EntryLive(e, now) {
			return true
		}
		h := ringHash([]byte(k))
		for _, r := range req.ranges {
			if r.Contains(h) {
				entries = append(entries, kv{key: k, e: e})
				break
			}
		}
		return true
	})
	c.Charge(sim.Time(len(entries)) * m.cfg.PerEntryCPU)
	ack := encodeAck(mgDone, req.migId, req.job, req.attempt, uint32(len(entries)))
	if len(entries) == 0 {
		b.Node.Messenger.Send(c, coord, m.id, ack)
		return
	}
	dest := b.Node.Sys.Nodes[req.destNode]
	fencedPipeline(c, b.Node.Runtime, dest.IP(), func(c *event.Ctx, conn appnet.Conn) {
		var buf []byte
		for i, kv := range entries {
			// The ADD carries the entry's version stamp: the restored copy
			// must hold the SAME stamp as the surviving replicas, or later
			// cross-replica CAS comparisons (hot-key revalidation, fan-in
			// folds) would see the migrated copy as a different version.
			// Likewise the absolute expiry travels verbatim so the entry
			// keeps its exact deadline at the new owner.
			buf = append(buf, memcached.BuildAddStampedAbs([]byte(kv.key), kv.e.Value, kv.e.Flags, uint32(i), true, kv.e.CAS, int64(kv.e.Expires))...)
			if len(buf) >= m.cfg.ChunkBytes {
				conn.Send(c, iobuf.Wrap(buf))
				buf = nil
			}
		}
		buf = append(buf, memcached.BuildNoop(noopFence)...)
		conn.Send(c, iobuf.Wrap(buf))
	}, func(c *event.Ctx) {
		b.Node.Messenger.Send(c, coord, m.id, ack)
	}, func(c *event.Ctx) {
		b.Node.Messenger.Send(c, coord, m.id,
			encodeAck(mgFail, req.migId, req.job, req.attempt, 0))
	})
}

func encodeXfer(migId uint64, job, attempt uint32, dest hosted.NodeId, ranges []MoveRange) []byte {
	b := make([]byte, 1+8+4+4+4+4+16*len(ranges))
	b[0] = mgXfer
	binary.BigEndian.PutUint64(b[1:9], migId)
	binary.BigEndian.PutUint32(b[9:13], job)
	binary.BigEndian.PutUint32(b[13:17], attempt)
	binary.BigEndian.PutUint32(b[17:21], uint32(dest))
	binary.BigEndian.PutUint32(b[21:25], uint32(len(ranges)))
	off := 25
	for _, r := range ranges {
		binary.BigEndian.PutUint64(b[off:], r.Lo)
		binary.BigEndian.PutUint64(b[off+8:], r.Hi)
		off += 16
	}
	return b
}

func decodeXfer(b []byte) (xferReq, bool) {
	if len(b) < 25 || b[0] != mgXfer {
		return xferReq{}, false
	}
	n := int(binary.BigEndian.Uint32(b[21:25]))
	if len(b) != 25+16*n {
		return xferReq{}, false
	}
	req := xferReq{
		migId:    binary.BigEndian.Uint64(b[1:9]),
		job:      binary.BigEndian.Uint32(b[9:13]),
		attempt:  binary.BigEndian.Uint32(b[13:17]),
		destNode: hosted.NodeId(binary.BigEndian.Uint32(b[17:21])),
	}
	off := 25
	for i := 0; i < n; i++ {
		req.ranges = append(req.ranges, MoveRange{
			Lo: binary.BigEndian.Uint64(b[off:]),
			Hi: binary.BigEndian.Uint64(b[off+8:]),
		})
		off += 16
	}
	return req, true
}

func encodeAck(kind byte, migId uint64, job, attempt uint32, moved uint32) []byte {
	b := make([]byte, mgAckLen)
	b[0] = kind
	binary.BigEndian.PutUint64(b[1:9], migId)
	binary.BigEndian.PutUint32(b[9:13], job)
	binary.BigEndian.PutUint32(b[13:17], attempt)
	binary.BigEndian.PutUint32(b[17:21], moved)
	return b
}
