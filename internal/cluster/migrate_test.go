package cluster

import (
	"fmt"
	"testing"

	"ebbrt/internal/audit"
	"ebbrt/internal/event"
	"ebbrt/internal/sim"
)

// planKeys samples keys for plan-exactness checks.
func planKeys(n int) [][]byte { return sampleKeys(n) }

// gained computes the set of backends newly owning key under the given
// rings - the ground truth a migration plan must reproduce exactly.
func gained(old, new *Ring, key []byte, replicas int) map[int]bool {
	oldSet := map[int]bool{}
	for _, b := range old.LookupN(key, replicas) {
		oldSet[b] = true
	}
	out := map[int]bool{}
	for _, b := range new.LookupN(key, replicas) {
		if !oldSet[b] {
			out[b] = true
		}
	}
	return out
}

// checkPlanExact asserts, for every sampled key, that the plan's
// coverage equals the old-vs-new owner diff: each gaining backend is
// covered by exactly one range (nothing migrated twice), and no key
// outside the diff is covered (nothing migrated spuriously), and every
// range's sources are the key's old owners (the data is actually
// there).
func checkPlanExact(t *testing.T, old, new *Ring, plan []MoveRange, replicas int, keys [][]byte) int {
	t.Helper()
	moved := 0
	for _, key := range keys {
		h := ringHash(key)
		want := gained(old, new, key, replicas)
		got := map[int]int{}
		for _, r := range plan {
			if r.Contains(h) {
				got[r.Dest]++
				oldSet := old.LookupN(key, replicas)
				if !equalBackends(r.Sources, oldSet) {
					t.Fatalf("key %q: range sources %v != old owners %v", key, r.Sources, oldSet)
				}
			}
		}
		for d, n := range got {
			if n > 1 {
				t.Fatalf("key %q migrated to backend %d by %d distinct ranges", key, d, n)
			}
			if !want[d] {
				t.Fatalf("key %q migrated to backend %d which it did not gain", key, d)
			}
		}
		for d := range want {
			if got[d] == 0 {
				t.Fatalf("key %q gained backend %d but no range covers it (dropped)", key, d)
			}
		}
		if len(want) > 0 {
			moved++
		}
	}
	return moved
}

// TestMigrationPlanExactRandomRings: over randomized ring shapes, the
// plan of an add (and of a remove) is exactly the ownership diff - no
// key migrated twice, none dropped - and an R=1 add moves a key share
// bounded near 1/(n+1), the consistent-hashing bound
// TestRingMigrationBounded asserts for raw lookups.
func TestMigrationPlanExactRandomRings(t *testing.T) {
	rng := sim.NewRng(7)
	keys := planKeys(4000)
	for trial := 0; trial < 12; trial++ {
		n := rng.IntRange(1, 8)
		vnodes := rng.IntRange(8, 160)
		replicas := rng.IntRange(1, 3)
		if replicas > n {
			replicas = n
		}
		old := NewRing(vnodes)
		for b := 0; b < n; b++ {
			old.Add(b)
		}

		// Add a backend.
		added := old.Clone()
		added.Add(n)
		plan := PlanMigration(old, added, replicas)
		moved := checkPlanExact(t, old, added, plan, replicas, keys)
		if moved == 0 {
			t.Fatalf("trial %d (n=%d vnodes=%d R=%d): add moved no keys", trial, n, vnodes, replicas)
		}
		if replicas == 1 {
			ideal := float64(len(keys)) / float64(n+1)
			if float64(moved) > 2*ideal {
				t.Errorf("trial %d (n=%d vnodes=%d): add plan moves %d keys, more than 2x ideal %.0f",
					trial, n, vnodes, moved, ideal)
			}
		}

		// Remove a backend (skip when it would empty the ring).
		if n < 2 {
			continue
		}
		victim := rng.IntRange(0, n-1)
		removed := old.Clone()
		removed.Remove(victim)
		rplan := PlanMigration(old, removed, replicas)
		if checkPlanExact(t, old, removed, rplan, replicas, keys) == 0 && replicas <= n-1 {
			t.Fatalf("trial %d: remove of backend %d moved no keys", trial, victim)
		}
	}
}

// TestMigrationPlanEpochAndClone: membership changes bump the ring
// epoch, and a clone is independent of the original.
func TestMigrationPlanEpochAndClone(t *testing.T) {
	r := NewRing(0)
	if r.Epoch() != 0 {
		t.Fatalf("fresh ring epoch %d", r.Epoch())
	}
	r.Add(0)
	r.Add(1)
	if r.Epoch() != 2 {
		t.Fatalf("epoch %d after two adds", r.Epoch())
	}
	snap := r.Clone()
	r.Remove(1)
	if r.Epoch() != 3 || snap.Epoch() != 2 {
		t.Fatalf("epochs: live %d snap %d", r.Epoch(), snap.Epoch())
	}
	if len(snap.Members()) != 2 || len(r.Members()) != 1 {
		t.Fatalf("clone not independent: snap members %v live %v", snap.Members(), r.Members())
	}
}

// populate writes keys through the client at quorum and fails the test
// unless every write acked.
func populate(t *testing.T, cl *Cluster, cli *Client, keys [][]byte, val func(i int) []byte) {
	t.Helper()
	front := cl.Sys.Frontend()
	acked := 0
	front.Spawn(func(c *event.Ctx) {
		for i, key := range keys {
			cli.Set(c, key, val(i), 0, func(c *event.Ctx, r Response) {
				if r.OK() {
					acked++
				}
			})
		}
	})
	cl.Sys.K.RunUntil(cl.Sys.K.Now() + 40*sim.Millisecond)
	if acked != len(keys) {
		t.Fatalf("populate: %d of %d quorum writes acked", acked, len(keys))
	}
}

// waitMigration runs the kernel until the migrator goes idle.
func waitMigration(t *testing.T, cl *Cluster, m *Migrator, limit sim.Time) *Migration {
	t.Helper()
	k := cl.Sys.K
	deadline := k.Now() + limit
	for m.Active() && k.Now() < deadline {
		k.RunFor(1 * sim.Millisecond)
	}
	if m.Active() {
		t.Fatalf("migration still active after %v", limit)
	}
	if m.Last() == nil {
		t.Fatal("no migration ran")
	}
	return m.Last()
}

// readAll gets every key through the client and reports
// (hits, misses, network errors).
func readAll(cl *Cluster, cli *Client, keys [][]byte) (ok, miss, netErr int) {
	front := cl.Sys.Frontend()
	front.Spawn(func(c *event.Ctx) {
		for _, key := range keys {
			cli.Get(c, key, func(c *event.Ctx, r Response) {
				switch {
				case r.OK():
					ok++
				case r.NetworkError():
					netErr++
				default:
					miss++
				}
			})
		}
	})
	k := cl.Sys.K
	deadline := k.Now() + 40*sim.Millisecond
	for ok+miss+netErr < len(keys) && k.Now() < deadline {
		k.RunFor(250 * sim.Microsecond)
	}
	return ok, miss, netErr
}

// TestJoinStreamsKeyShare: joining through the migrator moves the new
// backend's exact key share onto it - afterwards every key reads OK
// with the handoff window closed, the newcomer's store holds precisely
// its ring share, and the stream moved a bounded fraction of the
// keyspace.
func TestJoinStreamsKeyShare(t *testing.T) {
	ring := audit.NewRing(4096)
	cl := NewCluster(3, Options{Audit: audit.NewLog(ring)})
	front := cl.Sys.Frontend()
	cli := NewClientWithOptions(cl, front, ClientOptions{RequestTimeout: 8 * sim.Millisecond})
	m := NewMigrator(cl, front, MigratorConfig{})

	const nKeys = 600
	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("join-key-%d-%d", i, i*2654435761))
	}
	populate(t, cl, cli, keys, func(i int) []byte { return []byte(fmt.Sprintf("v-%d", i)) })

	epochBefore := cl.Ring.Epoch()
	m.Join(1)
	if cl.Ring.Epoch() != epochBefore+1 {
		t.Fatalf("join did not bump the ring epoch: %d -> %d", epochBefore, cl.Ring.Epoch())
	}
	if !cl.Migrating() {
		t.Fatal("no handoff window open right after Join")
	}
	mig := waitMigration(t, cl, m, 200*sim.Millisecond)
	if mig.Aborted || mig.Kind != "join" {
		t.Fatalf("migration %+v not a completed join", mig)
	}
	if cl.Migrating() {
		t.Fatal("handoff window still open after migration completed")
	}
	if mig.Moved == 0 {
		t.Fatal("join streamed no entries")
	}
	if mig.Moved > nKeys {
		t.Fatalf("join streamed %d entries for a %d-key population", mig.Moved, nKeys)
	}

	// The audit trail tells the same story, in order: the run started,
	// every job fenced and cut over, and the migration concluded clean.
	x := audit.Expect(ring)
	if err := x.Seq(
		audit.On(audit.MigrationStart),
		audit.On(audit.MigrationFence),
		audit.On(audit.MigrationCutover),
		audit.On(audit.MigrationDone),
	); err != nil {
		t.Fatalf("join sequence: %v", err)
	}
	if fences, cuts := x.Count(audit.On(audit.MigrationFence)), x.Count(audit.On(audit.MigrationCutover)); fences != cuts {
		t.Fatalf("%d fence events vs %d cutover events", fences, cuts)
	}
	if n := x.Count(audit.On(audit.MigrationAbort)); n != 0 {
		t.Fatalf("clean join emitted %d abort events", n)
	}
	if done, ok := x.Last(audit.On(audit.MigrationDone)); !ok || done.Fields["moved"] != mig.Moved {
		t.Fatalf("migration.done fields %v disagree with Moved=%d", done.Fields, mig.Moved)
	}

	// Every key still reads OK, with no dual-routing left to help.
	ok, miss, netErr := readAll(cl, cli, keys)
	if ok != nKeys || miss != 0 || netErr != 0 {
		t.Fatalf("post-join reads: %d ok, %d misses, %d net errors (want %d/0/0)", ok, miss, netErr, nKeys)
	}

	// The newcomer holds exactly the keys the new ring assigns it.
	newIdx := len(cl.Backends) - 1
	store := cl.Backends[newIdx].Srv.Store
	for _, key := range keys {
		_, has := store.Get(string(key))
		owned := false
		for _, b := range cl.ReplicaSet(key) {
			if b == newIdx {
				owned = true
			}
		}
		if owned && !has {
			t.Fatalf("key %q owned by the newcomer but not streamed to it", key)
		}
		if !owned && has {
			t.Fatalf("key %q streamed to the newcomer without ownership", key)
		}
	}
}

// TestDeleteDuringHandoffNotResurrected: a key quorum-deleted while its
// range is still streaming must stay deleted after the cutover, even
// though the migration stream carries a pre-delete snapshot of it - the
// migrator scrubs the destination before completing the range. A key
// deleted and then re-set during the window must keep its new value
// (the scrub must not undo the newer write).
func TestDeleteDuringHandoffNotResurrected(t *testing.T) {
	cl := NewCluster(3, Options{})
	front := cl.Sys.Frontend()
	cli := NewClientWithOptions(cl, front, ClientOptions{RequestTimeout: 8 * sim.Millisecond})
	// Slow the stream so the deletes land while it is in flight.
	m := NewMigrator(cl, front, MigratorConfig{
		PerEntryCPU: 30 * sim.Microsecond,
		JobTimeout:  15 * sim.Millisecond,
	})
	k := cl.Sys.K

	const nKeys = 600
	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("del-key-%d-%d", i, i*2654435761))
	}
	populate(t, cl, cli, keys, func(i int) []byte { return []byte(fmt.Sprintf("v-%d", i)) })

	var deleted [][]byte
	var reset []byte
	joinAt := k.Now() + 2*sim.Millisecond
	k.At(joinAt, func() { m.Join(1) })
	k.At(joinAt+300*sim.Microsecond, func() {
		if cl.handoff == nil {
			t.Fatal("migration already finished before the deletes - stream too fast for the test")
		}
		// Pick keys still inside pending moved ranges: the stream's
		// snapshot has them, the deletes race it.
		for _, key := range keys {
			if cl.handoff.covers(ringHash(key)) {
				deleted = append(deleted, key)
				if len(deleted) == 12 {
					break
				}
			}
		}
		if len(deleted) < 2 {
			t.Fatalf("only %d keys in pending ranges", len(deleted))
		}
		reset = deleted[len(deleted)-1]
		front.Spawn(func(c *event.Ctx) {
			for _, key := range deleted[:len(deleted)-1] {
				cli.Delete(c, key, nil)
			}
			// One key is re-created once its delete has acked: the scrub
			// must spare the newer value.
			cli.Delete(c, reset, func(c *event.Ctx, r Response) {
				cli.Set(c, reset, []byte("fresh-after-delete"), 0, nil)
			})
		})
	})

	k.RunUntil(joinAt + 500*sim.Microsecond) // past the join and the racing deletes
	mig := waitMigration(t, cl, m, 300*sim.Millisecond)
	if mig.Aborted {
		t.Fatal("migration aborted")
	}
	gone := map[string]bool{}
	for _, key := range deleted[:len(deleted)-1] {
		gone[string(key)] = true
	}
	misses, resurrected, freshOK := 0, 0, false
	front.Spawn(func(c *event.Ctx) {
		for key := range gone {
			key := key
			cli.Get(c, []byte(key), func(c *event.Ctx, r Response) {
				if r.OK() {
					resurrected++
				} else if !r.NetworkError() {
					misses++
				}
			})
		}
		cli.Get(c, reset, func(c *event.Ctx, r Response) {
			freshOK = r.OK() && string(r.Value) == "fresh-after-delete"
		})
	})
	k.RunUntil(k.Now() + 30*sim.Millisecond)
	if resurrected != 0 {
		t.Errorf("%d deleted keys resurrected by the migration stream", resurrected)
	}
	if misses != len(gone) {
		t.Errorf("%d of %d deleted keys read as missing", misses, len(gone))
	}
	if !freshOK {
		t.Error("key re-set after its delete lost the new value (scrub undid a newer write)")
	}
	// The destination's store must not quietly hold the deleted keys
	// either (a stale copy there would resurface on later ring changes).
	dest := cl.Backends[len(cl.Backends)-1].Srv.Store
	for key := range gone {
		if _, ok := dest.Get(key); ok {
			t.Errorf("deleted key %q still present in the destination store", key)
		}
	}
}

// TestDecommissionRestoresReplicas is the re-replication regression:
// after a permanent backend loss and DecommissionBackend, every key is
// back to exactly R live replicas and reads succeed with the original
// quorum.
func TestDecommissionRestoresReplicas(t *testing.T) {
	const replicas = 2
	cl := NewCluster(4, Options{Replicas: replicas})
	front := cl.Sys.Frontend()
	cli := NewClientWithOptions(cl, front, ClientOptions{RequestTimeout: 8 * sim.Millisecond})
	m := NewMigrator(cl, front, MigratorConfig{})

	const nKeys = 400
	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("decom-key-%d-%d", i, i*2654435761))
	}
	populate(t, cl, cli, keys, func(i int) []byte { return []byte(fmt.Sprintf("dv-%d", i)) })

	// Permanent loss: the node dies and is evicted (as the health
	// monitor would); its keys are now at R-1 live replicas.
	cl.Backends[0].Node.Kill()
	cl.EvictBackend(0)
	degraded := 0
	for _, key := range keys {
		if n := cl.LiveHolders(key); n < replicas {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("eviction degraded no key - test vacuous")
	}

	m.Decommission(0)
	mig := waitMigration(t, cl, m, 300*sim.Millisecond)
	if mig.Aborted || mig.Kind != "decommission" {
		t.Fatalf("migration %+v not a completed decommission", mig)
	}
	if mig.Lost != 0 {
		t.Fatalf("%d ranges lost despite surviving replicas", mig.Lost)
	}

	// Every key is back to exactly R live replicas...
	for _, key := range keys {
		if n := cl.LiveHolders(key); n != replicas {
			t.Fatalf("key %q has %d live replicas after re-replication, want %d", key, n, replicas)
		}
	}
	// ...reads succeed...
	ok, miss, netErr := readAll(cl, cli, keys)
	if ok != nKeys || miss != 0 || netErr != 0 {
		t.Fatalf("post-decommission reads: %d ok, %d misses, %d net errors", ok, miss, netErr)
	}
	// ...and writes reach the original quorum (R live replicas ack).
	acked := 0
	front.Spawn(func(c *event.Ctx) {
		for i := 0; i < 32; i++ {
			cli.Set(c, []byte(fmt.Sprintf("post-decom-%d", i)), []byte("w"), 0, func(c *event.Ctx, r Response) {
				if r.OK() {
					acked++
				}
			})
		}
	})
	cl.Sys.K.RunUntil(cl.Sys.K.Now() + 20*sim.Millisecond)
	if acked != 32 {
		t.Fatalf("only %d of 32 quorum writes acked after decommission", acked)
	}
	if cl.Decommissioned(0) != true || cl.Live(0) {
		t.Fatal("backend 0 not permanently removed")
	}
}

// TestLiveDecommissionDrains: decommissioning a healthy backend streams
// its share away (from the backend itself) before clients drop it; at
// R=1 this is the only way its keys survive at all.
func TestLiveDecommissionDrains(t *testing.T) {
	cl := NewCluster(3, Options{})
	front := cl.Sys.Frontend()
	cli := NewClientWithOptions(cl, front, ClientOptions{RequestTimeout: 8 * sim.Millisecond})
	m := NewMigrator(cl, front, MigratorConfig{})

	const nKeys = 500
	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("drain-key-%d-%d", i, i*2654435761))
	}
	populate(t, cl, cli, keys, func(i int) []byte { return []byte(fmt.Sprintf("lv-%d", i)) })

	held := cl.Backends[1].Srv.Store.Len()
	if held == 0 {
		t.Fatal("victim holds no keys - test vacuous")
	}
	m.Decommission(1)
	mig := waitMigration(t, cl, m, 300*sim.Millisecond)
	if mig.Aborted || mig.Lost != 0 {
		t.Fatalf("live drain did not complete cleanly: %+v", mig)
	}
	if mig.Moved < held {
		t.Errorf("drain moved %d entries, victim held %d", mig.Moved, held)
	}
	ok, miss, netErr := readAll(cl, cli, keys)
	if ok != nKeys || miss != 0 || netErr != 0 {
		t.Fatalf("post-drain reads: %d ok, %d misses, %d net errors - drained keys lost", ok, miss, netErr)
	}
	for _, key := range keys {
		if n := cl.LiveHolders(key); n != 1 {
			t.Fatalf("key %q has %d live replicas after drain, want 1", key, n)
		}
	}
}
