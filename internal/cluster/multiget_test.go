package cluster

import (
	"fmt"
	"testing"

	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/audit"
	"ebbrt/internal/event"
	"ebbrt/internal/sim"
)

// getMultiWait drives one GetMulti from the frontend and runs the
// kernel until its callback fires.
func getMultiWait(t *testing.T, cl *Cluster, cli *Client, keys [][]byte) []Response {
	t.Helper()
	var out []Response
	cl.Sys.Frontend().Spawn(func(c *event.Ctx) {
		cli.GetMulti(c, keys, func(c *event.Ctx, rs []Response) { out = rs })
	})
	k := cl.Sys.K
	deadline := k.Now() + 50*sim.Millisecond
	for out == nil && k.Now() < deadline {
		k.RunFor(250 * sim.Microsecond)
	}
	if out == nil {
		t.Fatal("GetMulti never completed")
	}
	return out
}

// TestGetMultiIndexAlignedHitsAndMisses: one batch mixing present and
// absent keys must come back index-aligned - hits carry their values,
// misses report StatusKeyNotFound (resolved quietly by the fence, never
// as an error) - and the submission queue must actually have coalesced
// the reads into multi-op rounds.
func TestGetMultiIndexAlignedHitsAndMisses(t *testing.T) {
	cl := NewCluster(2, Options{})
	cli := NewClientWithOptions(cl, cl.Sys.Frontend(), ClientOptions{})

	var present [][]byte
	for i := 0; i < 6; i++ {
		present = append(present, []byte(fmt.Sprintf("mg-present-%d", i)))
	}
	populate(t, cl, cli, present, func(i int) []byte { return []byte(fmt.Sprintf("mg-val-%d", i)) })

	// Interleave hits and misses so neither backend's round is uniform.
	var keys [][]byte
	for i, key := range present {
		keys = append(keys, key, []byte(fmt.Sprintf("mg-absent-%d", i)))
	}
	rs := getMultiWait(t, cl, cli, keys)
	if len(rs) != len(keys) {
		t.Fatalf("%d responses for %d keys", len(rs), len(keys))
	}
	for i, r := range rs {
		if i%2 == 0 { // present slots
			want := fmt.Sprintf("mg-val-%d", i/2)
			if !r.OK() || string(r.Value) != want {
				t.Fatalf("slot %d (%s): status %#x value %q, want %q", i, keys[i], r.Status, r.Value, want)
			}
		} else if r.Status != memcached.StatusKeyNotFound {
			t.Fatalf("slot %d (%s): status %#x, want StatusKeyNotFound", i, keys[i], r.Status)
		}
	}
	bs := cli.BatchStats()
	if bs.Batches == 0 {
		t.Fatalf("12-key GetMulti formed no multi-op round: %+v", bs)
	}
	if bs.QuietMisses != 6 {
		t.Fatalf("%d quiet misses, want 6: %+v", bs.QuietMisses, bs)
	}
}

// TestGetMultiDuplicateKeysAnsweredIndependently: the same key listed
// several times in one batch occupies several slots of one pipelined
// round (distinct opaques on one GETQ each) and every slot must resolve
// on its own - duplicates of a hit all carry the value, duplicates of a
// miss all resolve through the fence.
func TestGetMultiDuplicateKeysAnsweredIndependently(t *testing.T) {
	cl := NewCluster(2, Options{})
	cli := NewClientWithOptions(cl, cl.Sys.Frontend(), ClientOptions{})
	key := []byte("mg-dup-key")
	populate(t, cl, cli, [][]byte{key}, func(int) []byte { return []byte("dup-val") })

	gone := []byte("mg-dup-gone")
	rs := getMultiWait(t, cl, cli, [][]byte{key, gone, key, gone, key})
	for _, i := range []int{0, 2, 4} {
		if !rs[i].OK() || string(rs[i].Value) != "dup-val" {
			t.Fatalf("duplicate slot %d: status %#x value %q", i, rs[i].Status, rs[i].Value)
		}
	}
	for _, i := range []int{1, 3} {
		if rs[i].Status != memcached.StatusKeyNotFound {
			t.Fatalf("duplicate miss slot %d: status %#x, want StatusKeyNotFound", i, rs[i].Status)
		}
	}
	if bs := cli.BatchStats(); bs.QuietMisses != 2 {
		t.Fatalf("%d quiet misses for 2 duplicated absent slots: %+v", bs.QuietMisses, bs)
	}
}

// TestGetMultiMixedHotCacheHitsAndMisses: a batch whose members split
// between the core's hot-key cache and the network must answer the
// cached key locally (no backend read) while the rest coalesce into one
// round, misses resolving quietly through the fence.
func TestGetMultiMixedHotCacheHitsAndMisses(t *testing.T) {
	cl, cli := newHotCluster(1, HotKeyOptions{PromoteMin: 1, TTL: sim.Second})
	front := cl.Sys.Frontend()
	hot, cold := []byte("mg-hot-key"), []byte("mg-cold-key")
	populate(t, cl, cli, [][]byte{hot, cold}, func(i int) []byte { return []byte(fmt.Sprintf("hv-%d", i)) })

	// Warm the hot key on core 0: promote (first read) then fill.
	warm := 0
	front.Spawn(func(c *event.Ctx) {
		cli.Get(c, hot, func(c *event.Ctx, r Response) {
			cli.Get(c, hot, func(c *event.Ctx, r Response) {
				if r.OK() {
					warm++
				}
			})
		})
	})
	cl.Sys.K.RunFor(20 * sim.Millisecond)
	if warm != 1 || cli.HotKeyStats().Fills == 0 {
		t.Fatalf("warmup did not fill the cache: warm=%d stats=%+v", warm, cli.HotKeyStats())
	}
	hitsBefore, opsBefore := cli.HotKeyStats().Hits, cli.BatchStats().Ops

	rs := getMultiWait(t, cl, cli, [][]byte{hot, []byte("mg-absent-a"), cold, []byte("mg-absent-b")})
	if !rs[0].OK() || string(rs[0].Value) != "hv-0" {
		t.Fatalf("hot slot: status %#x value %q", rs[0].Status, rs[0].Value)
	}
	if !rs[2].OK() || string(rs[2].Value) != "hv-1" {
		t.Fatalf("cold slot: status %#x value %q", rs[2].Status, rs[2].Value)
	}
	for _, i := range []int{1, 3} {
		if rs[i].Status != memcached.StatusKeyNotFound {
			t.Fatalf("absent slot %d: status %#x", i, rs[i].Status)
		}
	}
	if hits := cli.HotKeyStats().Hits; hits != hitsBefore+1 {
		t.Fatalf("hot slot not served from cache: hits %d -> %d", hitsBefore, hits)
	}
	// The cached member never reached the queue: 3 network reads, one
	// 3-op round on the single backend.
	bs := cli.BatchStats()
	if bs.Ops-opsBefore != 3 {
		t.Fatalf("%d reads submitted, want 3 (cache hit must not hit the network)", bs.Ops-opsBefore)
	}
	if bs.OpsPerBatch[1] == 0 { // the 2-3 bucket
		t.Fatalf("mixed round not coalesced: %+v", bs)
	}
}

// TestGetMultiBackendDeathNoFalseMisses: a backend dying while batched
// rounds are in flight must fail the whole round over to the replicas -
// every key still reads back its value, and none of the interrupted
// round's members may be reported as a cache miss (the fence only
// resolves misses when it returns OK, so a torn-down round fails as a
// network error and retries).
func TestGetMultiBackendDeathNoFalseMisses(t *testing.T) {
	cl := NewCluster(4, Options{Replicas: 2})
	front := cl.Sys.Frontend()
	cli := NewClientWithOptions(cl, front, ClientOptions{RequestTimeout: 8 * sim.Millisecond})
	k := cl.Sys.K

	const nKeys = 64
	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("mg-death-%d", i))
	}
	populate(t, cl, cli, keys, func(i int) []byte { return []byte(fmt.Sprintf("dv-%d", i)) })

	// Waves of 8-key batches every 500us; the victim dies mid-stream, so
	// some rounds are interrupted in flight and later waves fail fast on
	// the evicted entry.
	var ok, miss, netErr, bad int
	issued := 0
	for w := 0; w < 10; w++ {
		w := w
		k.After(sim.Time(w)*500*sim.Microsecond, func() {
			front.Spawn(func(c *event.Ctx) {
				batch := make([][]byte, 8)
				idx := make([]int, 8)
				for j := 0; j < 8; j++ {
					idx[j] = (w*8 + j) % nKeys
					batch[j] = keys[idx[j]]
				}
				issued += 8
				cli.GetMulti(c, batch, func(c *event.Ctx, rs []Response) {
					for j, r := range rs {
						switch {
						case r.OK():
							ok++
							if string(r.Value) != fmt.Sprintf("dv-%d", idx[j]) {
								bad++
							}
						case r.NetworkError():
							netErr++
						default:
							miss++
						}
					}
				})
			})
		})
	}
	k.After(2200*sim.Microsecond, func() {
		cl.Backends[0].Node.Kill()
		cl.EvictBackend(0)
	})
	k.RunFor(100 * sim.Millisecond)

	if issued != 80 || ok+miss+netErr != issued {
		t.Fatalf("%d of %d batched reads completed (ok=%d miss=%d netErr=%d)", ok+miss+netErr, issued, ok, miss, netErr)
	}
	// The invariant under test: death never manufactures a miss, and
	// with a live replica for every key, every read must recover.
	if miss != 0 {
		t.Fatalf("%d false misses after backend death (ok=%d netErr=%d)", miss, ok, netErr)
	}
	if netErr != 0 || ok != issued {
		t.Fatalf("reads did not fail over: ok=%d netErr=%d of %d", ok, netErr, issued)
	}
	if bad != 0 {
		t.Fatalf("%d reads returned the wrong value", bad)
	}
}

// TestGetMultiAcrossHandoffWindow: batches issued while a migration's
// handoff window is open must read every key correctly - members inside
// a pending moved range consult the dual read set (old owners first,
// then new) instead of trusting either ring alone, so a batch spanning
// the window sees neither false misses nor stale routing.
func TestGetMultiAcrossHandoffWindow(t *testing.T) {
	cl := NewCluster(2, Options{FrontendCores: 2})
	front := cl.Sys.Frontend()
	cli := NewClientWithOptions(cl, front, ClientOptions{})
	m := NewMigrator(cl, front, MigratorConfig{})

	const nKeys = 120
	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("mg-window-%d-%d", i, i*2654435761))
	}
	populate(t, cl, cli, keys, func(i int) []byte { return []byte(fmt.Sprintf("wv-%d", i)) })

	var moved []MoveRange
	cl.WatchHandoff(func(pending []MoveRange) {
		moved = append([]MoveRange(nil), pending...)
	})
	m.Join(1)
	if len(moved) == 0 {
		t.Fatal("join opened no handoff window")
	}

	// Mid-window: every key read through batched multigets; count how
	// many members actually route through the dual read set.
	got := make([]string, nKeys)
	completed, dualReads := 0, 0
	windowOpen := false
	front.Spawn(func(c *event.Ctx) {
		windowOpen = cl.handoff != nil
		for _, key := range keys {
			if len(cl.ReadSet(key)) > 1 {
				dualReads++
			}
		}
		for at := 0; at < nKeys; at += 8 {
			at := at
			cli.GetMulti(c, keys[at:at+8], func(c *event.Ctx, rs []Response) {
				for j, r := range rs {
					if r.OK() {
						got[at+j] = string(r.Value)
					} else {
						got[at+j] = fmt.Sprintf("status-%#x", r.Status)
					}
					completed++
				}
			})
		}
	})
	cl.Sys.K.RunFor(20 * sim.Millisecond)
	waitMigration(t, cl, m, 300*sim.Millisecond)

	if !windowOpen {
		t.Fatal("batches did not run inside the handoff window")
	}
	if dualReads == 0 {
		t.Fatal("no batch member fell inside a moved range (dual read set never consulted)")
	}
	if completed != nKeys {
		t.Fatalf("%d of %d mid-window batched reads completed", completed, nKeys)
	}
	for i, v := range got {
		if want := fmt.Sprintf("wv-%d", i); v != want {
			t.Fatalf("mid-window key %d read %q, want %q", i, v, want)
		}
	}
	// After cutover the same batches must still read clean off the new ring.
	if ok, miss, netErr := readAll(cl, cli, keys); ok != nKeys || miss != 0 || netErr != 0 {
		t.Fatalf("post-cutover: %d ok %d miss %d netErr", ok, miss, netErr)
	}
}

// TestGetMultiBatchFlushAudited: every multi-op round the submission
// queue flushes surfaces as a frontend.batch_flush audit event carrying
// the backend, the op count, and the bytes written - so batch formation
// is assertable in the same event-sequence style as the chaos tests.
func TestGetMultiBatchFlushAudited(t *testing.T) {
	ring := audit.NewRing(4096)
	cl := NewCluster(2, Options{Audit: audit.NewLog(ring)})
	cli := NewClientWithOptions(cl, cl.Sys.Frontend(), ClientOptions{})

	keys := make([][]byte, 12)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("mg-audit-%d", i))
	}
	populate(t, cl, cli, keys, func(i int) []byte { return []byte("av") })

	mark := ring.Total()
	getMultiWait(t, cl, cli, keys)

	x := audit.ExpectEvents(ring.SnapshotSince(mark))
	flushes := x.Count(audit.On(audit.FrontendBatchFlush))
	if flushes == 0 {
		t.Fatal("batched GetMulti emitted no frontend.batch_flush event")
	}
	// Single-op rounds are the plain GET spine and must NOT be audited
	// as flushes: every event is multi-op with a real payload, on a
	// backend that exists.
	wellFormed := x.Count(audit.On(audit.FrontendBatchFlush).Filter(func(e audit.Event) bool {
		ops, okOps := e.Fields["ops"].(int)
		bytes, okBytes := e.Fields["bytes"].(int)
		backend, okB := e.Fields["backend"].(int)
		return okOps && okBytes && okB && ops >= 2 && bytes > ops*memcached.HeaderLen && backend >= 0 && backend < 2
	}))
	if wellFormed != flushes {
		ev, _ := x.First(audit.On(audit.FrontendBatchFlush))
		t.Fatalf("%d of %d flush events well-formed; first: %+v", wellFormed, flushes, ev)
	}
	// The rounds seen on the wire are the rounds the queue says it
	// flushed.
	if bs := cli.BatchStats(); int(bs.Batches) != flushes {
		t.Fatalf("audit saw %d flushes, queue counted %d multi-op rounds", flushes, bs.Batches)
	}
}
