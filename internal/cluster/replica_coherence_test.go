package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/event"
	"ebbrt/internal/sim"
)

// newReplicatedHotCluster boots an R-replicated cluster with the hot-key
// cache enabled on every client.
func newReplicatedHotCluster(backends, replicas int, hot HotKeyOptions) (*Cluster, *Client) {
	hot.Enable = true
	cl := NewCluster(backends, Options{
		Replicas:      replicas,
		FrontendCores: 4,
		HotKey:        hot,
	})
	cli := NewClientWithOptions(cl, cl.Sys.Frontend(), ClientOptions{})
	return cl, cli
}

// TestReplicaStampsUniform: every replica of a written key must hold the
// identical coordinator-assigned version stamp - the invariant that makes
// cross-replica CAS comparisons (cache revalidation, fan-in folds, the
// staleness probe) meaningful at R>1.
func TestReplicaStampsUniform(t *testing.T) {
	cl := NewCluster(5, Options{Replicas: 3, FrontendCores: 2})
	cli := NewClientWithOptions(cl, cl.Sys.Frontend(), ClientOptions{})

	const nKeys = 120
	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("stamp-key-%d-%d", i, i*2654435761))
	}
	populate(t, cl, cli, keys, func(i int) []byte { return []byte(fmt.Sprintf("v-%d", i)) })

	for _, key := range keys {
		reps := cl.ReplicaSet(key)
		if len(reps) != 3 {
			t.Fatalf("key %q: replica set %v, want 3 backends", key, reps)
		}
		var stamp uint64
		for j, bi := range reps {
			e, ok := cl.Backends[bi].Srv.Store.Get(string(key))
			if !ok {
				t.Fatalf("key %q missing on replica %d (backend %d)", key, j, bi)
			}
			if e.CAS < stampBase {
				t.Fatalf("key %q on backend %d holds server-minted CAS %d, want a coordinator stamp",
					key, bi, e.CAS)
			}
			if j == 0 {
				stamp = e.CAS
			} else if e.CAS != stamp {
				t.Fatalf("key %q: backend %d holds stamp %d, primary holds %d - replicas diverged",
					key, bi, e.CAS, stamp)
			}
		}
	}
}

// TestReadRepairPreservesStamp: a repaired replica must receive the
// surviving replicas' exact stamp. A repair that re-minted from the
// repaired server's local counter would diverge the replica set and
// silently break every cross-replica CAS comparison afterwards.
func TestReadRepairPreservesStamp(t *testing.T) {
	cl := NewCluster(6, Options{Replicas: 3, FrontendCores: 2})
	cli := NewClientWithOptions(cl, cl.Sys.Frontend(), ClientOptions{})
	key := []byte("repair-stamp-key")
	populate(t, cl, cli, [][]byte{key}, func(int) []byte { return []byte("v") })

	primary := cl.Backends[cl.ReplicaSet(key)[0]]
	orig, ok := primary.Srv.Store.Get(string(key))
	if !ok {
		t.Fatal("primary never stored the key")
	}
	primary.Srv.Store.Delete(string(key))

	// The read falls through the primary's miss to a successor, which
	// serves it and triggers the fire-and-forget repair back onto the
	// primary.
	if ok, miss, netErr := readAll(cl, cli, [][]byte{key}); ok != 1 {
		t.Fatalf("read after induced loss: %d ok %d miss %d netErr", ok, miss, netErr)
	}
	cl.Sys.K.RunFor(20 * sim.Millisecond)

	repaired, ok := primary.Srv.Store.Get(string(key))
	if !ok {
		t.Fatal("read repair never restored the primary's copy")
	}
	if repaired.CAS != orig.CAS {
		t.Fatalf("repaired copy holds stamp %d, survivors hold %d - repair re-minted the version",
			repaired.CAS, orig.CAS)
	}
	if string(repaired.Value) != "v" {
		t.Fatalf("repaired value %q", repaired.Value)
	}
}

// TestMigrationStreamPreservesStamp: entries streamed to a joining
// backend must arrive holding their source stamps, not values re-minted
// by the destination's local counter.
func TestMigrationStreamPreservesStamp(t *testing.T) {
	cl := NewCluster(3, Options{FrontendCores: 2})
	front := cl.Sys.Frontend()
	cli := NewClientWithOptions(cl, front, ClientOptions{})
	m := NewMigrator(cl, front, MigratorConfig{})

	const nKeys = 400
	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("mig-stamp-%d-%d", i, i*2654435761))
	}
	populate(t, cl, cli, keys, func(i int) []byte { return []byte(fmt.Sprintf("v-%d", i)) })

	stamps := make(map[string]uint64, nKeys)
	for _, key := range keys {
		e, ok := cl.Route(key).Srv.Store.Get(string(key))
		if !ok {
			t.Fatalf("key %q not on its primary before the join", key)
		}
		stamps[string(key)] = e.CAS
	}

	nb := m.Join(1)
	waitMigration(t, cl, m, 500*sim.Millisecond)

	moved := 0
	for _, key := range keys {
		e, ok := nb.Srv.Store.Get(string(key))
		if !ok {
			continue
		}
		moved++
		if e.CAS != stamps[string(key)] {
			t.Fatalf("migrated key %q holds stamp %d, source held %d - the stream re-minted the version",
				key, e.CAS, stamps[string(key)])
		}
	}
	if moved == 0 {
		t.Fatal("no test key moved to the joined backend")
	}
	t.Logf("%d keys streamed with stamps intact", moved)
}

// TestQuorumFoldShuffledAcks: the quorum verdict's folded stamp must be
// the maximum over the acks that formed it, whatever order the network
// delivered them in - an older ack arriving after a newer one must never
// roll the reported stamp back.
func TestQuorumFoldShuffledAcks(t *testing.T) {
	const stamp = stampBase + 500
	acks := []Response{
		// One replica already held a newer concurrent write and echoed
		// its winning stamp; the others stored ours.
		{Status: memcached.StatusOK, CAS: stamp + 7},
		{Status: memcached.StatusOK, CAS: stamp},
		{Status: memcached.StatusOK, CAS: stamp},
	}
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 300; round++ {
		order := rng.Perm(len(acks))
		var got *Response
		q := newQuorumCall(len(acks), func(c *event.Ctx, r Response) { got = &r })
		for _, i := range order {
			q.add(nil, acks[i], true)
		}
		if got == nil {
			t.Fatal("quorum never completed")
		}
		// The verdict fires at the second ack: whichever two arrived
		// first, the fold is their maximum.
		want := max(acks[order[0]].CAS, acks[order[1]].CAS)
		if got.CAS != want {
			t.Fatalf("delivery order %v: reported stamp %d, want %d", order, got.CAS, want)
		}
	}
}

// TestHotWriteSpreadSplitsLoad: once the cluster's write sketch promotes
// a key, its writes round-robin salted shards on distinct owner sets,
// reads fan in to the newest stamp, and a delete establishes absence at
// every shard.
func TestHotWriteSpreadSplitsLoad(t *testing.T) {
	cl := NewCluster(8, Options{
		FrontendCores: 2,
		HotWrite:      HotWriteOptions{Enable: true, Salts: 3, PromoteMin: 4},
	})
	front := cl.Sys.Frontend()
	cli := NewClientWithOptions(cl, front, ClientOptions{})
	key := []byte("write-hot-key")

	const writes = 40
	acked := 0
	var lastVal string
	front.Spawn(func(c *event.Ctx) {
		var round func(c *event.Ctx, n int)
		round = func(c *event.Ctx, n int) {
			if n == writes {
				return
			}
			v := fmt.Sprintf("v-%d", n)
			cli.Set(c, key, []byte(v), 0, func(c *event.Ctx, r Response) {
				if r.OK() {
					acked++
					lastVal = v
				}
				round(c, n+1)
			})
		}
		round(c, 0)
	})
	cl.Sys.K.RunFor(200 * sim.Millisecond)
	if acked != writes {
		t.Fatalf("%d of %d writes acked", acked, writes)
	}

	st := cl.HotWriteStats()
	if st.Promoted != 1 || st.SaltedWrites == 0 {
		t.Fatalf("write spreading never engaged: %+v", st)
	}

	// Every salted shard must exist, and they must not all share one
	// primary owner - that spread is the point.
	owners := map[int]bool{}
	shards := 0
	for s := 0; s < 3; s++ {
		sk := saltedKey(key, s)
		bi := cl.Ring.Lookup(sk)
		if _, ok := cl.Backends[bi].Srv.Store.Get(string(sk)); ok {
			shards++
			owners[bi] = true
		}
	}
	if shards != 3 {
		t.Fatalf("%d of 3 salted shards stored", shards)
	}
	if len(owners) < 2 {
		t.Fatal("all salted shards landed on one backend - no spread")
	}

	// A fan-in read folds to the newest stamp: the last acked write.
	var got *Response
	front.Spawn(func(c *event.Ctx) {
		cli.Get(c, key, func(c *event.Ctx, r Response) { got = &r })
	})
	cl.Sys.K.RunFor(50 * sim.Millisecond)
	if got == nil || !got.OK() || string(got.Value) != lastVal {
		t.Fatalf("fan-in read got %+v, want %q", got, lastVal)
	}
	if cl.HotWriteStats().SaltedReads == 0 {
		t.Fatal("read did not fan in")
	}

	// Delete must establish absence at every salt, or a later fan-in
	// folds the surviving shard's copy straight back.
	var del, after *Response
	front.Spawn(func(c *event.Ctx) {
		cli.Delete(c, key, func(c *event.Ctx, r Response) {
			del = &r
			cli.Get(c, key, func(c *event.Ctx, r Response) { after = &r })
		})
	})
	cl.Sys.K.RunFor(50 * sim.Millisecond)
	if del == nil || !del.OK() {
		t.Fatalf("spread delete: %+v", del)
	}
	if after == nil || after.Status != memcached.StatusKeyNotFound {
		t.Fatalf("deleted spread key still reads %+v - a salted shard survived", after)
	}
}

// TestReadYourAckedWriteReplicated: the write-invalidate + re-stamp
// coherence chain at R=3. Before stamps were replica-wide this was the
// R>1 hole: the re-stamp carried whichever replica's local counter
// happened to ack first, incomparable with the fill's stamp from another
// replica, so acked writes could be shadowed by older cached copies
// until the TTL expired.
func TestReadYourAckedWriteReplicated(t *testing.T) {
	cl, cli := newReplicatedHotCluster(5, 3, HotKeyOptions{PromoteMin: 1, TTL: sim.Second})
	front := cl.Sys.Frontend()
	mgrs := front.Runtime.Mgrs()

	const rounds = 25
	type coreResult struct{ reads, stale int }
	results := make([]coreResult, len(mgrs))
	for corei := range mgrs {
		corei := corei
		key := []byte(fmt.Sprintf("r3-core-key-%d", corei))
		var round func(c *event.Ctx, n int)
		round = func(c *event.Ctx, n int) {
			if n >= rounds {
				return
			}
			want := fmt.Sprintf("v-%d-%d", corei, n)
			cli.Set(c, key, []byte(want), 0, func(c *event.Ctx, r Response) {
				if !r.OK() {
					t.Errorf("core %d round %d: set failed %x", corei, n, r.Status)
					return
				}
				cli.Get(c, key, func(c *event.Ctx, r Response) {
					results[corei].reads++
					if !r.OK() || string(r.Value) != want {
						results[corei].stale++
					}
					round(c, n+1)
				})
			})
		}
		mgrs[corei].Spawn(func(c *event.Ctx) { round(c, 0) })
	}
	cl.Sys.K.RunUntil(2 * sim.Second)

	for corei, res := range results {
		if res.reads != rounds {
			t.Fatalf("core %d: %d of %d rounds completed", corei, res.reads, rounds)
		}
		if res.stale != 0 {
			t.Fatalf("core %d: %d reads missed their own acked write at R=3", corei, res.stale)
		}
	}
	st := cli.HotKeyStats()
	if st.Hits == 0 {
		t.Fatalf("cache never served at R=3 - hits collapsed to the network path: %+v", st)
	}
}

// TestReplicaCoherentNoStaleHit: a rogue (uncached) writer hammers the
// hot keys at R=3 while a cached client reads them under the staleness
// probe, which peeks every live owner of every shard. Replica-wide
// stamps make that peek exact, and the TTL stays the hard bound: no hit
// may be served from an entry older than TTL, however hard the rogue
// writes.
func TestReplicaCoherentNoStaleHit(t *testing.T) {
	const ttl = 2 * sim.Millisecond
	cl, cli := newReplicatedHotCluster(6, 3, HotKeyOptions{
		PromoteMin:      1,
		TTL:             ttl,
		RevalidateEvery: 8,
		StalenessProbe:  true,
	})
	front := cl.Sys.Frontend()
	rogue := NewClientWithOptions(cl, front, ClientOptions{HotKey: HotKeyOptions{Disable: true}})
	k := cl.Sys.K

	const nHot = 4
	keys := make([][]byte, nHot)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("contested-key-%d", i))
	}
	populate(t, cl, cli, keys, func(i int) []byte { return []byte(fmt.Sprintf("init-%d", i)) })

	// Rogue writer: one overwrite every 300us, round-robin over the hot
	// keys, invisible to the cached client's invalidation machinery.
	wi := 0
	var writeTick func()
	writeTick = func() {
		key := keys[wi%nHot]
		val := []byte(fmt.Sprintf("rogue-%d", wi))
		wi++
		front.Spawn(func(c *event.Ctx) { rogue.Set(c, key, val, 0, nil) })
		if wi < 600 {
			k.After(300*sim.Microsecond, writeTick)
		}
	}
	k.After(sim.Microsecond, writeTick)

	// Cached reader: one read every 50us across the same keys.
	reads, ri := 0, 0
	var readTick func()
	readTick = func() {
		key := keys[ri%nHot]
		ri++
		front.Spawn(func(c *event.Ctx) {
			cli.Get(c, key, func(c *event.Ctx, r Response) {
				if r.OK() {
					reads++
				}
			})
		})
		if ri < 3000 {
			k.After(50*sim.Microsecond, readTick)
		}
	}
	k.After(sim.Microsecond, readTick)

	k.RunFor(250 * sim.Millisecond)

	if reads < 2900 {
		t.Fatalf("only %d of 3000 contested reads served", reads)
	}
	st := cli.HotKeyStats()
	if st.Hits == 0 {
		t.Fatalf("cache never engaged under contention at R=3: %+v", st)
	}
	if st.MaxStaleAge > ttl {
		t.Fatalf("hit served %v past its fill - beyond the TTL staleness bound %v (%d stale serves)",
			st.MaxStaleAge, ttl, st.StaleServes)
	}
	if st.Revalidations == 0 {
		t.Fatalf("sampled revalidation never ran: %+v", st)
	}

	// The reader's own writes stay read-your-write even mid-contention.
	var final *Response
	want := []byte("own-write")
	front.Spawn(func(c *event.Ctx) {
		cli.Set(c, keys[0], want, 0, func(c *event.Ctx, r Response) {
			if !r.OK() {
				t.Error("own write failed under contention")
				return
			}
			cli.Get(c, keys[0], func(c *event.Ctx, r Response) { final = &r })
		})
	})
	k.RunFor(20 * sim.Millisecond)
	if final == nil || !final.OK() || string(final.Value) != string(want) {
		t.Fatalf("own acked write not read back: %+v", final)
	}
	t.Logf("hits=%d misses=%d staleServes=%d maxStaleAge=%v revalidations=%d refreshes=%d",
		st.Hits, st.Misses, st.StaleServes, st.MaxStaleAge, st.Revalidations, st.Refreshes)
}
