package cluster

import (
	"encoding/binary"
	"sort"
)

// Ring is a consistent-hash ring over backend indices. Each backend
// contributes VNodes virtual points; a key is served by the backend
// owning the first point at or after the key's hash (wrapping). The
// placement is a pure function of the backend set, so every node of the
// deployment - and every rebuild of the same deployment - computes an
// identical routing table without coordination.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	epoch  uint64      // bumped on every membership change
}

type ringPoint struct {
	hash    uint64
	backend int
}

// DefaultVNodes balances shard evenness against lookup-table size; 128
// points per backend keeps the max/min key share within ~30% for the
// backend counts the scaling experiment sweeps.
const DefaultVNodes = 128

// NewRing creates an empty ring with the given virtual nodes per
// backend (0 selects DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes}
}

// ringHash is FNV-1a (stable across processes, unlike maphash) with a
// splitmix64-style finalizer. The finalizer matters: raw FNV-1a moves a
// key by less than one ring segment when only its trailing bytes change,
// which would pin whole families of sequentially-named keys ("key-1",
// "key-2", ...) to a single backend.
func ringHash(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer: full-avalanche bit mixing.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// vnodeHash positions one virtual point for (backend, replica).
func vnodeHash(backend, replica int) uint64 {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(backend))
	binary.BigEndian.PutUint64(buf[8:16], uint64(replica))
	return ringHash(buf[:])
}

// Add inserts a backend's virtual points. Adding backend b moves only
// the keys that land on b's new points - roughly a 1/(n+1) share -
// which is the consistent-hashing migration bound the tests assert.
func (r *Ring) Add(backend int) {
	r.epoch++
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: vnodeHash(backend, i), backend: backend})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].backend < r.points[j].backend
	})
}

// Remove deletes a backend's points; its keys redistribute to the ring
// successors.
func (r *Ring) Remove(backend int) {
	r.epoch++
	keep := r.points[:0]
	for _, p := range r.points {
		if p.backend != backend {
			keep = append(keep, p)
		}
	}
	r.points = keep
}

// Size reports the number of virtual points currently placed.
func (r *Ring) Size() int { return len(r.points) }

// Epoch reports the ring's membership version: every Add or Remove bumps
// it, so two placement decisions made at different epochs are known to
// have used (possibly) different rings. The migrator stamps each
// migration with the epoch whose diff it is streaming.
func (r *Ring) Epoch() uint64 { return r.epoch }

// Clone returns an independent copy of the ring. The migrator snapshots
// the ring before a membership change so the old-vs-new owner diff (and
// the dual-routing read path) can consult pre-change placement while the
// live ring already routes new traffic.
func (r *Ring) Clone() *Ring {
	return &Ring{
		vnodes: r.vnodes,
		points: append([]ringPoint(nil), r.points...),
		epoch:  r.epoch,
	}
}

// Lookup routes a key to a backend index. It panics on an empty ring -
// routing before any backend exists is a deployment bug, not a
// recoverable condition.
func (r *Ring) Lookup(key []byte) int {
	if len(r.points) == 0 {
		panic("cluster: lookup on empty ring")
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.points[i].backend
}

// LookupN returns the key's replica set: up to n distinct backends in
// ring-successor order, starting with the primary (what Lookup
// returns). When n exceeds the number of distinct backends on the ring,
// every backend is returned - the caller gets the whole membership in
// preference order. Like Lookup, an empty ring panics.
//
// Successor-order replica sets are what make failure handling cheap:
// removing a backend promotes each of its keys' next successors, which
// by construction already hold the keys' replicas.
func (r *Ring) LookupN(key []byte, n int) []int {
	return r.OwnersAt(ringHash(key), n)
}

// OwnersAt returns the replica set for a position in hash space: the
// owners of any key whose hash is h. LookupN is OwnersAt of the key's
// hash; the migration planner calls OwnersAt directly on segment
// boundaries to diff ownership between two rings without materializing
// keys.
func (r *Ring) OwnersAt(h uint64, n int) []int {
	if len(r.points) == 0 {
		panic("cluster: lookup on empty ring")
	}
	if n <= 0 {
		return nil
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, n)
	for j := 0; j < len(r.points) && len(out) < n; j++ {
		b := r.points[(i+j)%len(r.points)].backend
		dup := false
		for _, seen := range out {
			if seen == b {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, b)
		}
	}
	return out
}

// Members returns the distinct backends currently on the ring, sorted.
func (r *Ring) Members() []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range r.points {
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, p.backend)
		}
	}
	sort.Ints(out)
	return out
}
