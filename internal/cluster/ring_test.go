package cluster

import (
	"fmt"
	"testing"
)

// sampleKeys generates a deterministic key population for ring tests.
func sampleKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%d-%d", i, i*2654435761))
	}
	return keys
}

func TestRingDeterministicPlacement(t *testing.T) {
	// Two independently built rings over the same backend set must route
	// every key identically - placement is a pure function of the set.
	build := func() *Ring {
		r := NewRing(0)
		for b := 0; b < 5; b++ {
			r.Add(b)
		}
		return r
	}
	a, b := build(), build()
	for _, key := range sampleKeys(5000) {
		if a.Lookup(key) != b.Lookup(key) {
			t.Fatalf("rings disagree on %q: %d vs %d", key, a.Lookup(key), b.Lookup(key))
		}
	}
}

func TestRingAdditionOrderIrrelevant(t *testing.T) {
	fwd, rev := NewRing(0), NewRing(0)
	for b := 0; b < 4; b++ {
		fwd.Add(b)
	}
	for b := 3; b >= 0; b-- {
		rev.Add(b)
	}
	for _, key := range sampleKeys(2000) {
		if fwd.Lookup(key) != rev.Lookup(key) {
			t.Fatalf("insertion order changed placement of %q", key)
		}
	}
}

func TestRingDistributionBalanced(t *testing.T) {
	const backends = 4
	r := NewRing(0)
	for b := 0; b < backends; b++ {
		r.Add(b)
	}
	counts := make([]int, backends)
	keys := sampleKeys(20000)
	for _, key := range keys {
		counts[r.Lookup(key)]++
	}
	ideal := len(keys) / backends
	for b, n := range counts {
		if n < ideal/2 || n > 2*ideal {
			t.Errorf("backend %d owns %d of %d keys (ideal %d) - ring badly unbalanced: %v",
				b, n, len(keys), ideal, counts)
		}
	}
}

func TestRingMigrationBounded(t *testing.T) {
	// Adding one backend to an n-backend ring must move only keys the new
	// backend now owns - about 1/(n+1) of the keyspace, and far less than
	// the wholesale reshuffle of modulo hashing.
	for _, n := range []int{1, 2, 4, 8} {
		r := NewRing(0)
		for b := 0; b < n; b++ {
			r.Add(b)
		}
		keys := sampleKeys(20000)
		before := make([]int, len(keys))
		for i, key := range keys {
			before[i] = r.Lookup(key)
		}
		r.Add(n)
		moved := 0
		for i, key := range keys {
			after := r.Lookup(key)
			if after != before[i] {
				if after != n {
					t.Fatalf("n=%d: key %q moved between old backends (%d -> %d)", n, key, before[i], after)
				}
				moved++
			}
		}
		ideal := float64(len(keys)) / float64(n+1)
		if float64(moved) > 2*ideal {
			t.Errorf("n=%d: %d keys moved, more than 2x the ideal %.0f", n, moved, ideal)
		}
		if moved == 0 {
			t.Errorf("n=%d: new backend received no keys", n)
		}
	}
}

func TestRingRemoveRedistributes(t *testing.T) {
	r := NewRing(0)
	for b := 0; b < 3; b++ {
		r.Add(b)
	}
	keys := sampleKeys(5000)
	before := make([]int, len(keys))
	for i, key := range keys {
		before[i] = r.Lookup(key)
	}
	r.Remove(1)
	if r.Size() != 2*r.vnodes {
		t.Fatalf("ring size %d after removal, want %d", r.Size(), 2*r.vnodes)
	}
	for i, key := range keys {
		after := r.Lookup(key)
		if after == 1 {
			t.Fatalf("key %q still routes to removed backend", key)
		}
		if before[i] != 1 && after != before[i] {
			t.Fatalf("key %q on surviving backend %d moved to %d", key, before[i], after)
		}
	}
}

func TestRingLookupNDistinctAndOrdered(t *testing.T) {
	const backends = 5
	r := NewRing(0)
	for b := 0; b < backends; b++ {
		r.Add(b)
	}
	for _, key := range sampleKeys(2000) {
		for n := 1; n <= backends; n++ {
			reps := r.LookupN(key, n)
			if len(reps) != n {
				t.Fatalf("LookupN(%q, %d) returned %d backends", key, n, len(reps))
			}
			seen := map[int]bool{}
			for _, b := range reps {
				if b < 0 || b >= backends {
					t.Fatalf("LookupN returned unknown backend %d", b)
				}
				if seen[b] {
					t.Fatalf("LookupN(%q, %d) repeated backend %d: %v", key, n, b, reps)
				}
				seen[b] = true
			}
			// The primary is what Lookup returns, and each shorter set is
			// a prefix of the longer one (successor order is stable).
			if reps[0] != r.Lookup(key) {
				t.Fatalf("LookupN primary %d != Lookup %d", reps[0], r.Lookup(key))
			}
			if n > 1 {
				prev := r.LookupN(key, n-1)
				for i := range prev {
					if prev[i] != reps[i] {
						t.Fatalf("LookupN(%d) not a prefix of LookupN(%d): %v vs %v", n-1, n, prev, reps)
					}
				}
			}
		}
		// Asking beyond the membership returns everyone, once.
		all := r.LookupN(key, backends+3)
		if len(all) != backends {
			t.Fatalf("LookupN beyond membership returned %d backends", len(all))
		}
	}
}

func TestRingLookupNMinimalChangeOnAdd(t *testing.T) {
	// Adding a backend may only insert itself into a key's replica set
	// (pushing the tail out); it must never reorder the surviving
	// members. Formally: the new set with the newcomer filtered out is a
	// prefix of the old set.
	const replicas = 3
	for _, n := range []int{replicas, 4, 8} {
		r := NewRing(0)
		for b := 0; b < n; b++ {
			r.Add(b)
		}
		keys := sampleKeys(5000)
		before := make([][]int, len(keys))
		for i, key := range keys {
			before[i] = r.LookupN(key, replicas)
		}
		r.Add(n)
		changed := 0
		for i, key := range keys {
			after := r.LookupN(key, replicas)
			var survivors []int
			for _, b := range after {
				if b != n {
					survivors = append(survivors, b)
				}
			}
			if len(survivors) != len(after) {
				changed++
			}
			for j, b := range survivors {
				if before[i][j] != b {
					t.Fatalf("n=%d key %q: add reordered survivors: before %v after %v",
						n, key, before[i], after)
				}
			}
		}
		// The newcomer lands in roughly replicas/(n+1) of the sets; a
		// wholesale reshuffle would put it in nearly all of them.
		ideal := float64(len(keys)) * float64(replicas) / float64(n+1)
		if float64(changed) > 2*ideal {
			t.Errorf("n=%d: newcomer entered %d replica sets, more than 2x ideal %.0f", n, changed, ideal)
		}
		if changed == 0 {
			t.Errorf("n=%d: newcomer entered no replica sets", n)
		}
	}
}

func TestRingLookupNRemoveRedistributesToSuccessors(t *testing.T) {
	// Removing a backend must (a) leave each key's surviving replicas in
	// order, extended by fresh successors at the tail, and (b) hand each
	// of the dead backend's primaries to the key's old second replica -
	// which is the property replication relies on: the new primary
	// already holds the key.
	const backends, replicas = 5, 3
	const dead = 2
	r := NewRing(0)
	for b := 0; b < backends; b++ {
		r.Add(b)
	}
	keys := sampleKeys(5000)
	before := make([][]int, len(keys))
	for i, key := range keys {
		before[i] = r.LookupN(key, replicas)
	}
	r.Remove(dead)
	promoted := 0
	for i, key := range keys {
		after := r.LookupN(key, replicas)
		var survivors []int
		for _, b := range before[i] {
			if b != dead {
				survivors = append(survivors, b)
			}
		}
		for j, b := range survivors {
			if after[j] != b {
				t.Fatalf("key %q: remove disturbed survivors: before %v after %v", key, before[i], after)
			}
		}
		if before[i][0] == dead {
			promoted++
			if after[0] != before[i][1] {
				t.Fatalf("key %q: primary did not pass to old second replica: before %v after %v",
					key, before[i], after)
			}
		}
	}
	if promoted == 0 {
		t.Fatal("dead backend was primary for no keys - test vacuous")
	}
}

func TestRingMembers(t *testing.T) {
	r := NewRing(0)
	if got := r.Members(); len(got) != 0 {
		t.Fatalf("empty ring has members %v", got)
	}
	for _, b := range []int{3, 0, 7} {
		r.Add(b)
	}
	want := []int{0, 3, 7}
	got := r.Members()
	if len(got) != len(want) {
		t.Fatalf("members %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("members %v, want %v", got, want)
		}
	}
	r.Remove(3)
	if got := r.Members(); len(got) != 2 || got[0] != 0 || got[1] != 7 {
		t.Fatalf("members after remove %v", got)
	}
}

func TestRingEmptyLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("lookup on empty ring did not panic")
		}
	}()
	NewRing(0).Lookup([]byte("k"))
}
