package cluster

import (
	"fmt"
	"testing"
)

// sampleKeys generates a deterministic key population for ring tests.
func sampleKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%d-%d", i, i*2654435761))
	}
	return keys
}

func TestRingDeterministicPlacement(t *testing.T) {
	// Two independently built rings over the same backend set must route
	// every key identically - placement is a pure function of the set.
	build := func() *Ring {
		r := NewRing(0)
		for b := 0; b < 5; b++ {
			r.Add(b)
		}
		return r
	}
	a, b := build(), build()
	for _, key := range sampleKeys(5000) {
		if a.Lookup(key) != b.Lookup(key) {
			t.Fatalf("rings disagree on %q: %d vs %d", key, a.Lookup(key), b.Lookup(key))
		}
	}
}

func TestRingAdditionOrderIrrelevant(t *testing.T) {
	fwd, rev := NewRing(0), NewRing(0)
	for b := 0; b < 4; b++ {
		fwd.Add(b)
	}
	for b := 3; b >= 0; b-- {
		rev.Add(b)
	}
	for _, key := range sampleKeys(2000) {
		if fwd.Lookup(key) != rev.Lookup(key) {
			t.Fatalf("insertion order changed placement of %q", key)
		}
	}
}

func TestRingDistributionBalanced(t *testing.T) {
	const backends = 4
	r := NewRing(0)
	for b := 0; b < backends; b++ {
		r.Add(b)
	}
	counts := make([]int, backends)
	keys := sampleKeys(20000)
	for _, key := range keys {
		counts[r.Lookup(key)]++
	}
	ideal := len(keys) / backends
	for b, n := range counts {
		if n < ideal/2 || n > 2*ideal {
			t.Errorf("backend %d owns %d of %d keys (ideal %d) - ring badly unbalanced: %v",
				b, n, len(keys), ideal, counts)
		}
	}
}

func TestRingMigrationBounded(t *testing.T) {
	// Adding one backend to an n-backend ring must move only keys the new
	// backend now owns - about 1/(n+1) of the keyspace, and far less than
	// the wholesale reshuffle of modulo hashing.
	for _, n := range []int{1, 2, 4, 8} {
		r := NewRing(0)
		for b := 0; b < n; b++ {
			r.Add(b)
		}
		keys := sampleKeys(20000)
		before := make([]int, len(keys))
		for i, key := range keys {
			before[i] = r.Lookup(key)
		}
		r.Add(n)
		moved := 0
		for i, key := range keys {
			after := r.Lookup(key)
			if after != before[i] {
				if after != n {
					t.Fatalf("n=%d: key %q moved between old backends (%d -> %d)", n, key, before[i], after)
				}
				moved++
			}
		}
		ideal := float64(len(keys)) / float64(n+1)
		if float64(moved) > 2*ideal {
			t.Errorf("n=%d: %d keys moved, more than 2x the ideal %.0f", n, moved, ideal)
		}
		if moved == 0 {
			t.Errorf("n=%d: new backend received no keys", n)
		}
	}
}

func TestRingRemoveRedistributes(t *testing.T) {
	r := NewRing(0)
	for b := 0; b < 3; b++ {
		r.Add(b)
	}
	keys := sampleKeys(5000)
	before := make([]int, len(keys))
	for i, key := range keys {
		before[i] = r.Lookup(key)
	}
	r.Remove(1)
	if r.Size() != 2*r.vnodes {
		t.Fatalf("ring size %d after removal, want %d", r.Size(), 2*r.vnodes)
	}
	for i, key := range keys {
		after := r.Lookup(key)
		if after == 1 {
			t.Fatalf("key %q still routes to removed backend", key)
		}
		if before[i] != 1 && after != before[i] {
			t.Fatalf("key %q on surviving backend %d moved to %d", key, before[i], after)
		}
	}
}

func TestRingEmptyLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("lookup on empty ring did not panic")
		}
	}()
	NewRing(0).Lookup([]byte("k"))
}
