// Package core implements the paper's primary contribution: Elastic
// Building Blocks (Ebbs, §2.2 and §3.3).
//
// An Ebb is a distributed, multi-core fragmented object. Invoking an Ebb
// dereferences its EbbId to a per-core representative; in the common case
// this is a table lookup plus one predictable conditional branch. When no
// representative exists on the invoking core, a type-specific miss handler
// constructs one on demand - short-lived Ebbs touched on one core never pay
// for representatives elsewhere.
//
// The native environment backs the translation table with a per-core array
// (standing in for the per-core virtual-memory region of the C++ system);
// the hosted environment, which lacks per-core virtual memory, uses
// per-core hash tables - measurably slower, reproduced in Table 1.
package core

import (
	"fmt"
)

// Id is a system-wide unique Ebb identifier (32 bits, paper §3.3). The
// namespace is shared across all machines of an application.
type Id uint32

// firstAllocatableId leaves room for well-known static ids.
const firstAllocatableId Id = 32

// TableKind selects the per-core representative lookup structure.
type TableKind int

const (
	// NativeTable is the array-backed fast path of the native library OS.
	NativeTable TableKind = iota
	// HostedTable is the hash-table path of the hosted user-space library.
	HostedTable
)

// Domain is one machine's view of the Ebb namespace: per-core translation
// tables plus the registered miss handlers. Ids are global; a Domain holds
// only the local representatives.
//
// In the native domain each Ref owns a typed per-core representative array
// (the analogue of the per-core virtual-memory region the C++ system
// derefs into), so the fast path is one load, one nil check, and the call.
// The hosted domain lacks that region and goes through per-core hash
// tables - the slower path Table 1 quantifies.
type Domain struct {
	kind     TableKind
	cores    int
	hashes   []map[Id]any // [core] for HostedTable
	miss     map[Id]func(core int) any
	clear    map[Id]func(core int)
	nextId   Id
	installs uint64
}

// NewDomain creates a Domain for a machine with the given core count.
func NewDomain(cores int, kind TableKind) *Domain {
	d := &Domain{
		kind:   kind,
		cores:  cores,
		miss:   map[Id]func(int) any{},
		clear:  map[Id]func(int){},
		nextId: firstAllocatableId,
	}
	if kind == HostedTable {
		d.hashes = make([]map[Id]any, cores)
		for i := range d.hashes {
			d.hashes[i] = map[Id]any{}
		}
	}
	return d
}

// Cores reports the number of per-core tables.
func (d *Domain) Cores() int { return d.cores }

// AllocateId reserves a fresh EbbId. In multi-node deployments the hosted
// frontend owns allocation and natives receive ids through the messenger;
// a single allocator per system keeps the namespace collision-free.
func (d *Domain) AllocateId() Id {
	id := d.nextId
	d.nextId++
	return id
}

// ReserveThrough advances the allocator past id, used when attaching to an
// id assigned by another node.
func (d *Domain) ReserveThrough(id Id) {
	if d.nextId <= id {
		d.nextId = id + 1
	}
}

// Installs reports how many representative constructions (miss-handler
// invocations) have occurred, a measure of the lazy-initialization the
// paper calls out.
func (d *Domain) Installs() uint64 { return d.installs }

// Drop removes the representative for id on one core (elasticity: reps can
// be released under memory pressure and reconstructed on demand).
func (d *Domain) Drop(core int, id Id) {
	if fn, ok := d.clear[id]; ok {
		fn(core)
	}
	if d.kind == HostedTable {
		delete(d.hashes[core], id)
	}
}

// Ref is the typed handle used to invoke an Ebb, the analogue of the C++
// EbbRef template. Copies are cheap; dereferencing is the fast path the
// paper measures in Table 1.
type Ref[T any] struct {
	id   Id
	d    *Domain
	reps []*T // native per-core table; nil in hosted domains
}

// Allocate creates a new Ebb in the domain with a per-core miss handler
// that constructs representatives on demand.
func Allocate[T any](d *Domain, miss func(core int) *T) Ref[T] {
	id := d.AllocateId()
	return Attach(d, id, miss)
}

// Attach binds an existing (possibly remotely allocated) id to a miss
// handler in this domain and returns the typed reference.
func Attach[T any](d *Domain, id Id, miss func(core int) *T) Ref[T] {
	if _, dup := d.miss[id]; dup {
		panic(fmt.Sprintf("core: duplicate miss handler for Ebb %d", id))
	}
	d.ReserveThrough(id)
	d.miss[id] = func(core int) any {
		rep := miss(core)
		if rep == nil {
			panic(fmt.Sprintf("core: miss handler for Ebb %d returned nil", id))
		}
		return rep
	}
	r := Ref[T]{id: id, d: d}
	if d.kind == NativeTable {
		reps := make([]*T, d.cores)
		r.reps = reps
		d.clear[id] = func(core int) { reps[core] = nil }
	}
	return r
}

// Id returns the Ebb's system-wide id.
func (r Ref[T]) Id() Id { return r.id }

// Get dereferences the Ebb on the given core: the common case is a table
// load and one conditional branch (small enough for the compiler to inline
// into the call site, the property Table 1 depends on); a miss invokes the
// type-specific fault handler, installs the new representative, and
// retries the fast path. Hosted domains always take the slower path.
func (r Ref[T]) Get(core int) *T {
	// A nil reps slice (hosted domain) has length zero, so one bounds
	// comparison covers both the domain-kind test and the index check.
	if reps := r.reps; core < len(reps) {
		if rep := reps[core]; rep != nil {
			return rep
		}
	}
	return r.getSlow(core)
}

// getSlow handles hosted hash-table lookup and representative faulting.
//
//go:noinline
func (r Ref[T]) getSlow(core int) *T {
	if r.reps == nil {
		if rep, ok := r.d.hashes[core][r.id]; ok {
			return rep.(*T)
		}
	}
	return r.fault(core)
}

// fault constructs and installs the representative.
func (r Ref[T]) fault(core int) *T {
	miss, ok := r.d.miss[r.id]
	if !ok {
		panic(fmt.Sprintf("core: Ebb %d dereferenced with no miss handler", r.id))
	}
	rep := miss(core).(*T)
	r.install(core, rep)
	return rep
}

func (r Ref[T]) install(core int, rep *T) {
	r.d.installs++
	if r.reps != nil {
		r.reps[core] = rep
		return
	}
	r.d.hashes[core][r.id] = rep
}

// GetIfPresent returns the core's representative without faulting one in.
func (r Ref[T]) GetIfPresent(core int) (*T, bool) {
	if r.reps != nil {
		rep := r.reps[core]
		return rep, rep != nil
	}
	rep, ok := r.d.hashes[core][r.id]
	if !ok {
		return nil, false
	}
	return rep.(*T), true
}

// SetRep installs a representative explicitly, used by Ebbs whose reps are
// created eagerly or by communication with other nodes.
func (r Ref[T]) SetRep(core int, rep *T) { r.install(core, rep) }

// ForEachRep visits every installed representative (for aggregation
// operations such as gathering per-core statistics).
func (r Ref[T]) ForEachRep(fn func(core int, rep *T)) {
	for c := 0; c < r.d.cores; c++ {
		if rep, ok := r.GetIfPresent(c); ok {
			fn(c, rep)
		}
	}
}
