package core

import (
	"testing"
	"testing/quick"
)

type counter struct {
	core int
	n    int
}

func TestLazyRepresentativeConstruction(t *testing.T) {
	d := NewDomain(4, NativeTable)
	built := 0
	ref := Allocate(d, func(core int) *counter {
		built++
		return &counter{core: core}
	})
	if built != 0 {
		t.Fatal("representative built eagerly")
	}
	r0 := ref.Get(0)
	if built != 1 || r0.core != 0 {
		t.Fatalf("built=%d core=%d", built, r0.core)
	}
	// Second deref on the same core is the fast path: no construction.
	if ref.Get(0) != r0 {
		t.Fatal("fast path returned different rep")
	}
	if built != 1 {
		t.Fatal("fast path invoked miss handler")
	}
	// Other core builds its own rep.
	r2 := ref.Get(2)
	if built != 2 || r2.core != 2 || r2 == r0 {
		t.Fatalf("per-core reps wrong: built=%d", built)
	}
	if d.Installs() != 2 {
		t.Fatalf("Installs = %d", d.Installs())
	}
}

func TestHostedTableSemanticsMatchNative(t *testing.T) {
	for _, kind := range []TableKind{NativeTable, HostedTable} {
		d := NewDomain(2, kind)
		ref := Allocate(d, func(core int) *counter { return &counter{core: core} })
		a, b := ref.Get(0), ref.Get(1)
		if a.core != 0 || b.core != 1 {
			t.Fatalf("kind %v: wrong cores", kind)
		}
		if got, ok := ref.GetIfPresent(0); !ok || got != a {
			t.Fatalf("kind %v: GetIfPresent broken", kind)
		}
		if _, ok := ref.GetIfPresent(1); !ok {
			t.Fatalf("kind %v: rep missing", kind)
		}
	}
}

func TestGetIfPresentDoesNotFault(t *testing.T) {
	d := NewDomain(1, NativeTable)
	ref := Allocate(d, func(core int) *counter { return &counter{} })
	if _, ok := ref.GetIfPresent(0); ok {
		t.Fatal("GetIfPresent faulted in a rep")
	}
	if d.Installs() != 0 {
		t.Fatal("install happened")
	}
}

func TestSetRepOverridesMiss(t *testing.T) {
	d := NewDomain(2, NativeTable)
	ref := Allocate(d, func(core int) *counter {
		t.Fatal("miss handler ran despite explicit rep")
		return nil
	})
	explicit := &counter{n: 7}
	ref.SetRep(0, explicit)
	if ref.Get(0) != explicit {
		t.Fatal("explicit rep not returned")
	}
}

func TestDropReconstructs(t *testing.T) {
	d := NewDomain(1, NativeTable)
	built := 0
	ref := Allocate(d, func(core int) *counter {
		built++
		return &counter{}
	})
	first := ref.Get(0)
	d.Drop(0, ref.Id())
	second := ref.Get(0)
	if built != 2 || first == second {
		t.Fatalf("Drop did not force reconstruction: built=%d", built)
	}
}

func TestForEachRep(t *testing.T) {
	d := NewDomain(4, NativeTable)
	ref := Allocate(d, func(core int) *counter { return &counter{core: core, n: core * 10} })
	ref.Get(1)
	ref.Get(3)
	sum := 0
	visits := 0
	ref.ForEachRep(func(core int, rep *counter) {
		visits++
		sum += rep.n
	})
	if visits != 2 || sum != 40 {
		t.Fatalf("visits=%d sum=%d", visits, sum)
	}
}

func TestIdAllocationUnique(t *testing.T) {
	d := NewDomain(1, NativeTable)
	seen := map[Id]bool{}
	for i := 0; i < 1000; i++ {
		id := d.AllocateId()
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestAttachRemoteId(t *testing.T) {
	d := NewDomain(1, NativeTable)
	ref := Attach(d, 100, func(core int) *counter { return &counter{n: 1} })
	if ref.Id() != 100 {
		t.Fatalf("id = %d", ref.Id())
	}
	if ref.Get(0).n != 1 {
		t.Fatal("attached miss handler not used")
	}
	// Allocation must now skip past the attached id.
	if next := d.AllocateId(); next <= 100 {
		t.Fatalf("AllocateId returned %d, collides with attached id", next)
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	d := NewDomain(1, NativeTable)
	Attach(d, 50, func(int) *counter { return &counter{} })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attach did not panic")
		}
	}()
	Attach(d, 50, func(int) *counter { return &counter{} })
}

func TestUnregisteredDerefPanics(t *testing.T) {
	d := NewDomain(1, NativeTable)
	ref := Ref[counter]{id: 999, d: d}
	defer func() {
		if recover() == nil {
			t.Fatal("deref of unknown id did not panic")
		}
	}()
	ref.Get(0)
}

func TestNilMissResultPanics(t *testing.T) {
	d := NewDomain(1, NativeTable)
	ref := Allocate(d, func(int) *counter { return nil })
	defer func() {
		if recover() == nil {
			t.Fatal("nil rep did not panic")
		}
	}()
	ref.Get(0)
}

// Property: for any sequence of (core, op) pairs, each core observes exactly
// one stable representative and constructions equal distinct cores touched.
func TestPerCoreRepStability(t *testing.T) {
	prop := func(ops []uint8) bool {
		const cores = 8
		d := NewDomain(cores, NativeTable)
		built := 0
		ref := Allocate(d, func(core int) *counter {
			built++
			return &counter{core: core}
		})
		first := map[int]*counter{}
		touched := map[int]bool{}
		for _, op := range ops {
			c := int(op) % cores
			rep := ref.Get(c)
			if rep.core != c {
				return false
			}
			if prev, ok := first[c]; ok && prev != rep {
				return false
			}
			first[c] = rep
			touched[c] = true
		}
		return built == len(touched)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
