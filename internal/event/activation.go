package event

// Event activations: each executing event runs on a goroutine so it can
// suspend mid-execution (the paper's save/restore of stack and register
// state). Determinism is preserved because the kernel goroutine and the
// activation goroutine run strictly alternately - the kernel always waits
// on act.state while the activation runs, so exactly one goroutine is ever
// active.

type actState int

const (
	actDone actState = iota
	actBlocked
)

type activation struct {
	in     chan Handler
	state  chan actState
	resume chan struct{}
	ctx    *Ctx
}

func (m *Manager) getActivation() *activation {
	if n := len(m.pool); n > 0 {
		act := m.pool[n-1]
		m.pool = m.pool[:n-1]
		return act
	}
	act := &activation{
		in:     make(chan Handler),
		state:  make(chan actState),
		resume: make(chan struct{}),
	}
	go act.loop()
	return act
}

func (m *Manager) putActivation(act *activation) {
	act.ctx = nil
	if len(m.pool) < 64 {
		m.pool = append(m.pool, act)
	} else {
		close(act.in) // let the goroutine exit
	}
}

func (a *activation) loop() {
	for fn := range a.in {
		fn(a.ctx)
		a.state <- actDone
	}
}
