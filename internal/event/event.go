// Package event implements EbbRT's non-preemptive event-driven execution
// environment (paper §2.3, §3.2).
//
// One event loop runs per core. A registered handler is invoked with
// interrupts disabled and runs to completion without preemption. When an
// event completes the manager (1) opens a brief interrupt window and
// dispatches any pending hardware interrupts, (2) dispatches one synthetic
// (Spawned) event, (3) invokes all IdleHandlers, and (4) enables interrupts
// and halts - restarting the loop whenever any step invoked a handler. This
// gives hardware interrupts and synthetic events priority over repeatedly
// invoked idle handlers, which is what lets device drivers implement
// adaptive polling.
//
// Handlers account for the virtual CPU time they consume via Ctx.Charge;
// the core is busy for that long before the loop continues. The paper's
// save/restore event mechanism (used to give blocking semantics on top of
// events) is implemented with parked goroutines that the deterministic
// simulation kernel resumes one at a time.
package event

import (
	"fmt"

	"ebbrt/internal/machine"
	"ebbrt/internal/sim"
)

// Reserved interrupt vectors.
const (
	// VecIPI is the inter-processor interrupt used to kick a halted core
	// when another core spawns an event on it.
	VecIPI = 0
	// VecTimer is the per-core timer interrupt.
	VecTimer = 1
	// vecFirstAllocatable is the first vector handed to devices.
	vecFirstAllocatable = 32
)

// Costs are the runtime-level costs of the native environment. They are
// deliberately small: the paper's point is that the path from interrupt to
// application is short.
type Costs struct {
	// EventDispatch is charged per handler invocation (loop bookkeeping,
	// branch to handler).
	EventDispatch sim.Time
	// IdlePoll is the minimum charge for one pass over the idle handlers,
	// bounding the virtual-time cost of a polling spin.
	IdlePoll sim.Time
	// ContextSave is charged when an event saves its state to block, and
	// again when it is reactivated (paper §3.2 save/restore).
	ContextSave sim.Time
}

// DefaultCosts returns the calibrated native runtime costs.
func DefaultCosts() Costs {
	return Costs{
		EventDispatch: 60 * sim.Nanosecond,
		IdlePoll:      80 * sim.Nanosecond,
		ContextSave:   120 * sim.Nanosecond,
	}
}

// Handler is an event handler. It runs non-preemptively on one core.
type Handler func(*Ctx)

// synthItem is one entry of the synthetic event queue: either a fresh
// spawned handler or the resumption of a blocked event context.
type synthItem struct {
	fn  Handler
	act *activation
}

// Manager is the per-core EventManager Ebb.
type Manager struct {
	core  *machine.Core
	k     *sim.Kernel
	costs Costs

	handlers map[int]Handler
	nextVec  int

	synth      []synthItem
	idle       []*IdleHandler
	timerReady []Handler

	pool []*activation

	// Dispatched counts handler invocations, for tests and stats.
	Dispatched uint64
}

// IdleHandler is a registered idle callback; keep the pointer to remove it.
type IdleHandler struct {
	fn      Handler
	removed bool
}

// NewManager creates the event manager for a core and installs itself as
// the core's interrupt dispatcher. The core starts halted with interrupts
// enabled, awaiting its first event.
func NewManager(core *machine.Core, costs Costs) *Manager {
	m := &Manager{
		core:     core,
		k:        core.M.K,
		costs:    costs,
		handlers: map[int]Handler{},
		nextVec:  vecFirstAllocatable,
	}
	m.handlers[VecIPI] = func(*Ctx) {}
	m.handlers[VecTimer] = func(c *Ctx) {
		ready := m.timerReady
		m.timerReady = nil
		for _, fn := range ready {
			fn(c)
		}
	}
	core.SetDispatcher(m.onIRQ)
	core.EnableInterrupts()
	core.Halt()
	return m
}

// Core returns the core this manager drives.
func (m *Manager) Core() *machine.Core { return m.core }

// Kernel returns the simulation kernel.
func (m *Manager) Kernel() *sim.Kernel { return m.k }

// AllocateVector allocates a fresh interrupt vector bound to h, the
// interface device drivers use (paper §3.2).
func (m *Manager) AllocateVector(h Handler) int {
	v := m.nextVec
	m.nextVec++
	m.handlers[v] = h
	return v
}

// Bind replaces the handler for an existing vector.
func (m *Manager) Bind(vec int, h Handler) { m.handlers[vec] = h }

// Spawn queues fn to run as a synthetic event on this core. Spawned events
// run once; for recurring work install an IdleHandler.
func (m *Manager) Spawn(fn Handler) {
	m.synth = append(m.synth, synthItem{fn: fn})
	m.kick()
}

// After schedules fn to run as a timer event after d of virtual time.
func (m *Manager) After(d sim.Time, fn Handler) *sim.Event {
	return m.k.After(d, func() {
		m.timerReady = append(m.timerReady, fn)
		m.core.RaiseIRQ(VecTimer)
	})
}

// AddIdleHandler installs fn to be invoked on every pass of the event loop
// when the core would otherwise halt - the polling building block.
func (m *Manager) AddIdleHandler(fn Handler) *IdleHandler {
	ih := &IdleHandler{fn: fn}
	m.idle = append(m.idle, ih)
	m.kick()
	return ih
}

// RemoveIdleHandler uninstalls a previously added idle handler.
func (m *Manager) RemoveIdleHandler(ih *IdleHandler) {
	ih.removed = true
	for i, cur := range m.idle {
		if cur == ih {
			m.idle = append(m.idle[:i], m.idle[i+1:]...)
			return
		}
	}
}

// IdleHandlerCount reports installed idle handlers (drivers use it to tell
// whether they are in polling mode; tests too).
func (m *Manager) IdleHandlerCount() int { return len(m.idle) }

// kick wakes a halted core so the loop notices queued synthetic work.
func (m *Manager) kick() {
	if m.core.Halted() {
		m.core.RaiseIRQ(VecIPI)
	}
}

// onIRQ is the interrupt entry point: the core was halted with interrupts
// enabled and vector vec fired.
func (m *Manager) onIRQ(vec int) {
	m.core.DisableInterrupts()
	m.runHandler(vec, m.core.M.Cfg.Costs.InterruptEntry)
}

// runHandler executes the handler for vec, charging base cost plus whatever
// the handler itself charges, then continues the loop at completion time.
func (m *Manager) runHandler(vec int, base sim.Time) {
	h, ok := m.handlers[vec]
	if !ok {
		panic(fmt.Sprintf("event: core %d received unbound vector %d", m.core.ID, vec))
	}
	m.exec(h, base+m.costs.EventDispatch)
}

// exec runs fn on an activation goroutine, then schedules the next loop
// step after the charged time. If fn blocks, the loop continues at the
// charge accumulated so far and the activation resumes later.
func (m *Manager) exec(fn Handler, base sim.Time) {
	m.Dispatched++
	act := m.getActivation()
	ctx := &Ctx{m: m, act: act, charge: base}
	act.ctx = ctx
	act.in <- fn
	m.awaitActivation(act)
}

// resumeActivation continues a previously blocked activation as an event.
func (m *Manager) resumeActivation(act *activation) {
	m.Dispatched++
	ctx := act.ctx
	ctx.charge = m.costs.EventDispatch + m.costs.ContextSave
	act.resume <- struct{}{}
	m.awaitActivation(act)
}

// awaitActivation waits for the activation to finish or block, then
// schedules the next loop step at the event's completion time.
func (m *Manager) awaitActivation(act *activation) {
	st := <-act.state
	ctx := act.ctx
	switch st {
	case actDone:
		m.putActivation(act)
	case actBlocked:
		ctx.charge += m.costs.ContextSave
	}
	m.k.After(ctx.charge, m.process)
}

// process is the event loop: it runs each time the core finishes an event.
func (m *Manager) process() {
	// (1) pending hardware interrupts get priority.
	if m.core.HasPending() {
		p := m.core.TakePending()
		vec := p[0]
		for _, rest := range p[1:] {
			m.core.RaiseIRQ(rest) // re-latch the remainder in order
		}
		m.runHandler(vec, m.core.M.Cfg.Costs.InterruptEntry)
		return
	}
	// (2) one synthetic event (spawn or blocked-context resumption).
	if len(m.synth) > 0 {
		item := m.synth[0]
		m.synth = m.synth[1:]
		if item.act != nil {
			m.resumeActivation(item.act)
		} else {
			m.exec(item.fn, 0)
		}
		return
	}
	// (3) all idle handlers, as one pass.
	if len(m.idle) > 0 {
		snapshot := append([]*IdleHandler(nil), m.idle...)
		m.exec(func(c *Ctx) {
			for _, ih := range snapshot {
				if !ih.removed {
					ih.fn(c)
				}
			}
			if c.charge < m.costs.IdlePoll {
				c.charge = m.costs.IdlePoll
			}
		}, 0)
		return
	}
	// (4) nothing to do: enable interrupts and halt.
	m.core.EnableInterrupts()
	m.core.Halt()
}

// Ctx is the context of the currently executing event. It provides virtual
// CPU accounting and the save/restore blocking facility. A Ctx is only
// valid during its event's execution.
type Ctx struct {
	m      *Manager
	act    *activation
	charge sim.Time
}

// Manager returns the event manager for the executing core.
func (c *Ctx) Manager() *Manager { return c.m }

// Core returns the executing core.
func (c *Ctx) Core() *machine.Core { return c.m.core }

// Now reports the virtual time at which the current event was dispatched.
func (c *Ctx) Now() sim.Time { return c.m.k.Now() }

// Charge accounts d of CPU time to the current event.
func (c *Ctx) Charge(d sim.Time) {
	if d > 0 {
		c.charge += d
	}
}

// ChargeCycles accounts n CPU cycles at the core's clock rate.
func (c *Ctx) ChargeCycles(n float64) { c.Charge(c.m.core.Cycles(n)) }

// Charged reports the total accounted so far (for tests).
func (c *Ctx) Charged() sim.Time { return c.charge }

// Block suspends the current event (the paper's "save event state"),
// letting the core process other events. register receives a resume
// function; invoking it reactivates this event as if by ActivateContext.
// Block satisfies future.Blocker, so f.Block(ctx) awaits a future with
// blocking semantics.
func (c *Ctx) Block(register func(resume func())) {
	act := c.act
	resumed := false
	register(func() {
		if resumed {
			panic("event: context resumed twice")
		}
		resumed = true
		c.m.synth = append(c.m.synth, synthItem{act: act})
		c.m.kick()
	})
	act.state <- actBlocked
	<-act.resume
}
