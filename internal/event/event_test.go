package event

import (
	"testing"

	"ebbrt/internal/future"
	"ebbrt/internal/machine"
	"ebbrt/internal/sim"
)

func newTestEnv(cores int) (*sim.Kernel, *machine.Machine, []*Manager) {
	k := sim.NewKernel()
	m := machine.New(k, machine.DefaultConfig("test", cores))
	mgrs := make([]*Manager, cores)
	for i := range mgrs {
		mgrs[i] = NewManager(m.Cores[i], DefaultCosts())
	}
	return k, m, mgrs
}

func TestSpawnRunsOnce(t *testing.T) {
	k, _, mgrs := newTestEnv(1)
	count := 0
	mgrs[0].Spawn(func(*Ctx) { count++ })
	k.Run()
	if count != 1 {
		t.Fatalf("spawned event ran %d times", count)
	}
	if !mgrs[0].Core().Halted() {
		t.Fatal("core did not halt after draining")
	}
}

func TestSpawnFIFO(t *testing.T) {
	k, _, mgrs := newTestEnv(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		mgrs[0].Spawn(func(*Ctx) { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestChargeAdvancesTime(t *testing.T) {
	k, _, mgrs := newTestEnv(1)
	var doneAt sim.Time
	mgrs[0].Spawn(func(c *Ctx) { c.Charge(5 * sim.Microsecond) })
	mgrs[0].Spawn(func(c *Ctx) { doneAt = c.Now() })
	k.Run()
	if doneAt < 5*sim.Microsecond {
		t.Fatalf("second event at %v, want >= 5us (first event's charge)", doneAt)
	}
}

func TestChargeCycles(t *testing.T) {
	k, _, mgrs := newTestEnv(1)
	var charged sim.Time
	mgrs[0].Spawn(func(c *Ctx) {
		before := c.Charged()
		c.ChargeCycles(2600) // 1us at 2.6GHz
		charged = c.Charged() - before
	})
	k.Run()
	if charged != 1*sim.Microsecond {
		t.Fatalf("2600 cycles charged %v, want 1us", charged)
	}
}

func TestInterruptPriorityOverSynthetic(t *testing.T) {
	k, _, mgrs := newTestEnv(1)
	m := mgrs[0]
	var order []string
	vec := m.AllocateVector(func(*Ctx) { order = append(order, "irq") })
	m.Spawn(func(c *Ctx) {
		// While this event runs (interrupts disabled), both an IRQ and a
		// spawn arrive. The IRQ must dispatch first.
		m.Spawn(func(*Ctx) { order = append(order, "synth") })
		c.Core().RaiseIRQ(vec)
	})
	k.Run()
	if len(order) != 2 || order[0] != "irq" || order[1] != "synth" {
		t.Fatalf("order = %v, want [irq synth]", order)
	}
}

func TestPendingIRQOrderPreserved(t *testing.T) {
	k, _, mgrs := newTestEnv(1)
	m := mgrs[0]
	var order []int
	v1 := m.AllocateVector(func(*Ctx) { order = append(order, 1) })
	v2 := m.AllocateVector(func(*Ctx) { order = append(order, 2) })
	v3 := m.AllocateVector(func(*Ctx) { order = append(order, 3) })
	m.Spawn(func(c *Ctx) {
		c.Core().RaiseIRQ(v1)
		c.Core().RaiseIRQ(v2)
		c.Core().RaiseIRQ(v3)
	})
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestIdleHandlerPolling(t *testing.T) {
	k, _, mgrs := newTestEnv(1)
	m := mgrs[0]
	polls := 0
	var ih *IdleHandler
	ih = m.AddIdleHandler(func(c *Ctx) {
		polls++
		if polls == 10 {
			m.RemoveIdleHandler(ih)
		}
	})
	k.RunUntil(1 * sim.Millisecond)
	if polls != 10 {
		t.Fatalf("idle handler polled %d times, want exactly 10 (then removed)", polls)
	}
	if !m.Core().Halted() {
		t.Fatal("core did not halt after idle handler removed")
	}
	if m.IdleHandlerCount() != 0 {
		t.Fatal("idle handler still installed")
	}
}

func TestIdlePollConsumesVirtualTime(t *testing.T) {
	k, _, mgrs := newTestEnv(1)
	m := mgrs[0]
	m.AddIdleHandler(func(*Ctx) {})
	// If polling were free the kernel would loop forever at t=0.
	k.RunUntil(10 * sim.Microsecond)
	if k.Now() != 10*sim.Microsecond {
		t.Fatalf("now = %v", k.Now())
	}
	if m.Dispatched == 0 || m.Dispatched > 1000 {
		t.Fatalf("dispatched = %d, want bounded spinning", m.Dispatched)
	}
}

func TestIdleHandlerYieldsToInterrupt(t *testing.T) {
	k, _, mgrs := newTestEnv(1)
	m := mgrs[0]
	var order []string
	vec := m.AllocateVector(func(*Ctx) { order = append(order, "irq") })
	polls := 0
	m.AddIdleHandler(func(*Ctx) {
		polls++
		if len(order) < 3 {
			order = append(order, "poll")
		}
	})
	k.After(1*sim.Microsecond, func() { m.Core().RaiseIRQ(vec) })
	k.RunUntil(5 * sim.Microsecond)
	// The interrupt must have been dispatched even though idle handlers
	// keep the core busy.
	found := false
	for _, s := range order {
		if s == "irq" {
			found = true
		}
	}
	if !found {
		t.Fatalf("interrupt starved by idle handlers: %v", order)
	}
}

func TestTimer(t *testing.T) {
	k, _, mgrs := newTestEnv(1)
	m := mgrs[0]
	var firedAt sim.Time
	m.After(100*sim.Microsecond, func(c *Ctx) { firedAt = c.Now() })
	k.Run()
	if firedAt < 100*sim.Microsecond || firedAt > 102*sim.Microsecond {
		t.Fatalf("timer fired at %v", firedAt)
	}
}

func TestTimerCancel(t *testing.T) {
	k, _, mgrs := newTestEnv(1)
	m := mgrs[0]
	ev := m.After(100*sim.Microsecond, func(*Ctx) { t.Fatal("cancelled timer fired") })
	ev.Cancel()
	k.Run()
}

func TestBlockAndResume(t *testing.T) {
	k, _, mgrs := newTestEnv(1)
	m := mgrs[0]
	p := future.NewPromise[int]()
	var got int
	var resumedAt sim.Time
	m.Spawn(func(c *Ctx) {
		v, err := p.Future().Block(c)
		if err != nil {
			t.Errorf("Block error: %v", err)
		}
		got = v
		resumedAt = c.Now()
	})
	m.After(50*sim.Microsecond, func(*Ctx) { p.SetValue(42) })
	k.Run()
	if got != 42 {
		t.Fatalf("got %d", got)
	}
	if resumedAt < 50*sim.Microsecond {
		t.Fatalf("resumed at %v, before fulfillment", resumedAt)
	}
}

func TestBlockDoesNotStallOtherEvents(t *testing.T) {
	k, _, mgrs := newTestEnv(1)
	m := mgrs[0]
	p := future.NewPromise[future.Unit]()
	var order []string
	m.Spawn(func(c *Ctx) {
		order = append(order, "blocker-start")
		_, _ = p.Future().Block(c)
		order = append(order, "blocker-end")
	})
	m.Spawn(func(*Ctx) { order = append(order, "other") })
	m.After(10*sim.Microsecond, func(*Ctx) { p.SetValue(future.Unit{}) })
	k.Run()
	want := []string{"blocker-start", "other", "blocker-end"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestNestedBlocks(t *testing.T) {
	k, _, mgrs := newTestEnv(1)
	m := mgrs[0]
	p1 := future.NewPromise[int]()
	p2 := future.NewPromise[int]()
	total := 0
	m.Spawn(func(c *Ctx) {
		a, _ := p1.Future().Block(c)
		b, _ := p2.Future().Block(c)
		total = a + b
	})
	m.After(10*sim.Microsecond, func(*Ctx) { p1.SetValue(1) })
	m.After(20*sim.Microsecond, func(*Ctx) { p2.SetValue(2) })
	k.Run()
	if total != 3 {
		t.Fatalf("total = %d", total)
	}
}

func TestCrossCoreSpawnWakesHaltedCore(t *testing.T) {
	k, _, mgrs := newTestEnv(2)
	ran := -1
	mgrs[0].Spawn(func(*Ctx) {
		mgrs[1].Spawn(func(c *Ctx) { ran = c.Core().ID })
	})
	k.Run()
	if ran != 1 {
		t.Fatalf("event ran on core %d, want 1", ran)
	}
}

func TestManyEventsDeterministic(t *testing.T) {
	run := func() []int {
		k, _, mgrs := newTestEnv(4)
		var order []int
		for i := 0; i < 100; i++ {
			i := i
			core := i % 4
			mgrs[core].After(sim.Time(i%7)*sim.Microsecond, func(*Ctx) {
				order = append(order, i)
			})
		}
		k.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("two identical runs diverged: nondeterminism")
		}
	}
}

func TestUnboundVectorPanics(t *testing.T) {
	k, _, mgrs := newTestEnv(1)
	defer func() {
		if recover() == nil {
			t.Fatal("unbound vector did not panic")
		}
	}()
	mgrs[0].Core().RaiseIRQ(99)
	k.Run()
}
