package experiments

import (
	"fmt"

	"ebbrt/internal/audit"
	"ebbrt/internal/cluster"
	"ebbrt/internal/event"
	"ebbrt/internal/load"
	"ebbrt/internal/sim"
)

// AvailabilityOptions tunes the failure-under-load experiment. The zero
// value selects a 4-backend, R=2 deployment killed mid-measurement.
type AvailabilityOptions struct {
	// Backends is the native backend count (default 4).
	Backends int
	// CoresPerBackend sizes each backend (default 1).
	CoresPerBackend int
	// Replicas is the replication factor R (default 2).
	Replicas int
	// FrontendCores sizes the hosted frontend driving the load
	// (default 4: the frontend is the client here, not a bottleneck
	// under study).
	FrontendCores int
	// TargetRPS is the offered load (default 40000).
	TargetRPS float64
	// Duration is the measured window (default 160ms).
	Duration sim.Time
	// KillAt is when the victim loses its network, relative to
	// measurement start (default 60ms).
	KillAt sim.Time
	// ReviveAt, when positive, revives the victim at that offset.
	ReviveAt sim.Time
	// KillBackend selects the victim (default 0).
	KillBackend int
	// Bucket is the timeline resolution (default 2ms).
	Bucket sim.Time
	// RequestTimeout bounds one replica operation at the client
	// (default 4ms) so reads fail over before the monitor evicts.
	RequestTimeout sim.Time
	// Health tunes the failure detector (defaults per HealthConfig).
	Health cluster.HealthConfig
	// KeySpace sizes the ETC key population (default 4000, smaller
	// than the full workload so prepopulation stays cheap).
	KeySpace int
	// Audit, when non-nil, receives the run's typed event stream:
	// chaos.kill/chaos.revive markers from the fault injector here plus
	// everything the cluster's state machines emit (missed beats,
	// evictions, restores, TCP transitions). Wire a FileSink to get a
	// CI-greppable events.jsonl artifact.
	Audit *audit.Log
}

func (o *AvailabilityOptions) applyDefaults() {
	if o.Backends <= 0 {
		o.Backends = 4
	}
	if o.CoresPerBackend <= 0 {
		o.CoresPerBackend = 1
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.FrontendCores <= 0 {
		o.FrontendCores = 4
	}
	if o.TargetRPS <= 0 {
		o.TargetRPS = 40000
	}
	if o.Duration <= 0 {
		o.Duration = 160 * sim.Millisecond
	}
	if o.KillAt <= 0 {
		o.KillAt = 60 * sim.Millisecond
	}
	if o.Bucket <= 0 {
		o.Bucket = 2 * sim.Millisecond
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 4 * sim.Millisecond
	}
	if o.KeySpace <= 0 {
		o.KeySpace = 4000
	}
}

// AvailabilityResult reports throughput and hit rate through a backend
// failure: before the kill, during the failure window (kill to ring
// eviction), and after the ring has rerouted.
type AvailabilityResult struct {
	Opt  AvailabilityOptions
	Load load.ClusterLoadResult
	// EvictedAt/RestoredAt are offsets from measurement start (-1 if
	// the event never happened).
	EvictedAt  sim.Time
	RestoredAt sim.Time
	// Phase throughputs (completed operations per second).
	PreKillRPS   float64
	FailureRPS   float64
	RecoveredRPS float64
	// Phase read hit rates.
	PreKillHitRate   float64
	FailureHitRate   float64
	RecoveredHitRate float64
}

// clusterKV adapts the replicated client Ebb to the load generator's
// KVClient interface.
type clusterKV struct{ cli *cluster.Client }

func outcome(r cluster.Response) load.OpOutcome {
	switch {
	case r.OK():
		return load.OpOutcome{OK: true}
	case r.NetworkError():
		return load.OpOutcome{NetErr: true}
	default:
		return load.OpOutcome{Miss: true}
	}
}

func (a clusterKV) Get(c *event.Ctx, key []byte, done func(c *event.Ctx, o load.OpOutcome)) {
	a.cli.Get(c, key, func(c *event.Ctx, r cluster.Response) { done(c, outcome(r)) })
}

func (a clusterKV) Set(c *event.Ctx, key, value []byte, done func(c *event.Ctx, o load.OpOutcome)) {
	a.cli.Set(c, key, value, 0, func(c *event.Ctx, r cluster.Response) { done(c, outcome(r)) })
}

func (a clusterKV) GetMulti(c *event.Ctx, keys [][]byte, done func(c *event.Ctx, outs []load.OpOutcome)) {
	a.cli.GetMulti(c, keys, func(c *event.Ctx, rs []cluster.Response) {
		outs := make([]load.OpOutcome, len(rs))
		for i, r := range rs {
			outs[i] = outcome(r)
		}
		done(c, outs)
	})
}

// Availability boots a replicated cluster with health monitoring,
// drives the ETC workload through the frontend's client Ebb, kills a
// backend mid-measurement (and optionally revives it), and reports
// throughput and hit rate through the failure: the multi-backend
// extension of the paper's §4.2 methodology aimed at the question the
// scaling experiment cannot answer - what happens when hardware goes
// away under load.
func Availability(opt AvailabilityOptions) AvailabilityResult {
	opt.applyDefaults()
	cl := cluster.NewCluster(opt.Backends, cluster.Options{
		CoresPerBackend: opt.CoresPerBackend,
		Replicas:        opt.Replicas,
		FrontendCores:   opt.FrontendCores,
		Audit:           opt.Audit,
	})
	front := cl.Sys.Frontend()
	cli := cluster.NewClientWithOptions(cl, front, cluster.ClientOptions{
		RequestTimeout: opt.RequestTimeout,
	})
	mon := cluster.NewHealthMonitor(cl, front, opt.Health)
	k := cl.Sys.K
	evictedAt, restoredAt := sim.Time(-1), sim.Time(-1)
	cl.Watch(func(b int, up bool) {
		if b != opt.KillBackend {
			return
		}
		if up {
			restoredAt = k.Now()
		} else {
			evictedAt = k.Now()
		}
	})
	mon.Start()

	etc := load.DefaultETC()
	etc.KeySpace = opt.KeySpace
	victimNode := int(cl.Backends[opt.KillBackend].Node.Id)
	events := []load.ChaosEvent{{
		At: opt.KillAt,
		Fn: func() {
			if a := opt.Audit; a != nil {
				a.Emit(k.Now(), victimNode, audit.NodeKilled, audit.Fields{"backend": opt.KillBackend})
			}
			cl.Backends[opt.KillBackend].Node.Kill()
		},
	}}
	if opt.ReviveAt > 0 {
		events = append(events, load.ChaosEvent{
			At: opt.ReviveAt,
			Fn: func() {
				if a := opt.Audit; a != nil {
					a.Emit(k.Now(), victimNode, audit.NodeRevived, audit.Fields{"backend": opt.KillBackend})
				}
				cl.Backends[opt.KillBackend].Node.Revive()
			},
		})
	}
	res := load.RunClusterLoad(front.Runtime, clusterKV{cli: cli}, load.ClusterLoadConfig{
		TargetRPS: opt.TargetRPS,
		Warmup:    10 * sim.Millisecond,
		Duration:  opt.Duration,
		Bucket:    opt.Bucket,
		Seed:      42,
		ETC:       etc,
		Events:    events,
	})

	out := AvailabilityResult{Opt: opt, Load: res, EvictedAt: -1, RestoredAt: -1}
	if evictedAt >= 0 {
		out.EvictedAt = evictedAt - res.MeasuredFrom
	}
	if restoredAt >= 0 {
		out.RestoredAt = restoredAt - res.MeasuredFrom
	}

	// Phase boundaries. The failure window runs from the kill to ring
	// eviction; if eviction never happened, assume a generous window so
	// the numbers still mean something.
	failEnd := out.EvictedAt
	if failEnd < 0 {
		failEnd = opt.KillAt + 25*sim.Millisecond
	}
	if failEnd-opt.KillAt < opt.Bucket {
		failEnd = opt.KillAt + opt.Bucket
	}
	recoverFrom := failEnd + 2*opt.Bucket // settle past the eviction bucket
	recoverTo := opt.Duration
	if opt.ReviveAt > 0 && opt.ReviveAt < recoverTo {
		recoverTo = opt.ReviveAt
	}
	out.PreKillRPS, out.PreKillHitRate = res.WindowStats(0, opt.KillAt)
	out.FailureRPS, out.FailureHitRate = res.WindowStats(opt.KillAt, failEnd)
	out.RecoveredRPS, out.RecoveredHitRate = res.WindowStats(recoverFrom, recoverTo)
	return out
}

// FormatAvailability renders the run: phase summary plus the timeline.
func FormatAvailability(r AvailabilityResult) string {
	out := fmt.Sprintf("Availability: %d backends, R=%d, %.0f RPS offered, kill backend %d at %.0fms\n",
		r.Opt.Backends, r.Opt.Replicas, r.Opt.TargetRPS, r.Opt.KillBackend, float64(r.Opt.KillAt)/1e6)
	if r.EvictedAt >= 0 {
		out += fmt.Sprintf("  evicted at %.1fms (detection latency %.1fms)\n",
			float64(r.EvictedAt)/1e6, float64(r.EvictedAt-r.Opt.KillAt)/1e6)
	} else {
		out += "  never evicted\n"
	}
	if r.Opt.ReviveAt > 0 {
		if r.RestoredAt >= 0 {
			out += fmt.Sprintf("  revived at %.0fms, restored to ring at %.1fms\n",
				float64(r.Opt.ReviveAt)/1e6, float64(r.RestoredAt)/1e6)
		} else {
			out += fmt.Sprintf("  revived at %.0fms, never restored\n", float64(r.Opt.ReviveAt)/1e6)
		}
	}
	out += fmt.Sprintf("  pre-kill:  %8.0f RPS  hit rate %.4f\n", r.PreKillRPS, r.PreKillHitRate)
	out += fmt.Sprintf("  failure:   %8.0f RPS  hit rate %.4f  (%.0f%% of pre-kill)\n",
		r.FailureRPS, r.FailureHitRate, pct(r.FailureRPS, r.PreKillRPS))
	out += fmt.Sprintf("  recovered: %8.0f RPS  hit rate %.4f  (%.0f%% of pre-kill)\n",
		r.RecoveredRPS, r.RecoveredHitRate, pct(r.RecoveredRPS, r.PreKillRPS))
	out += fmt.Sprintf("  totals: %d completed, %d misses, %d network errors, mean %.1fus p99 %.1fus\n",
		r.Load.Completed, r.Load.Misses, r.Load.NetErrs, r.Load.Mean.Micros(), r.Load.P99.Micros())
	out += fmt.Sprintf("  %-8s %10s %8s %8s %8s\n", "t(ms)", "RPS", "hits", "misses", "netErrs")
	for _, b := range r.Load.Timeline {
		rps := float64(b.Completed) / (float64(r.Load.BucketWidth) / 1e9)
		out += fmt.Sprintf("  %-8.1f %10.0f %8d %8d %8d\n",
			float64(b.Start)/1e6, rps, b.Hits, b.Misses, b.NetErrs)
	}
	return out
}

func pct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * a / b
}
