package experiments

import (
	"testing"

	"ebbrt/internal/sim"
)

// TestAvailabilityFailover is the acceptance check for the
// fault-tolerant cluster: with R=2 replication on a 4-backend
// deployment, killing one backend mid-run must leave aggregate
// achieved throughput at >= 60% of the pre-kill rate during the
// failure window (kill to ring eviction) and fully recover once the
// ring has rerouted - with zero false misses throughout, since every
// key the dead backend held has a live replica.
func TestAvailabilityFailover(t *testing.T) {
	res := Availability(AvailabilityOptions{})
	t.Logf("\n%s", FormatAvailability(res))

	if res.EvictedAt < 0 {
		t.Fatal("dead backend was never evicted from the ring")
	}
	if lat := res.EvictedAt - res.Opt.KillAt; lat <= 0 || lat > 50*sim.Millisecond {
		t.Errorf("eviction latency %v outside (0, 50ms]", lat)
	}
	if res.Load.Misses != 0 {
		t.Errorf("%d false misses: replicated reads must be served by surviving replicas", res.Load.Misses)
	}
	if res.PreKillRPS < 0.8*res.Opt.TargetRPS {
		t.Fatalf("pre-kill throughput %.0f RPS below 80%% of offered %.0f - cluster unhealthy before the fault",
			res.PreKillRPS, res.Opt.TargetRPS)
	}
	if res.FailureRPS < 0.6*res.PreKillRPS {
		t.Errorf("failure-window throughput %.0f RPS is %.0f%% of pre-kill %.0f, want >= 60%%",
			res.FailureRPS, pct(res.FailureRPS, res.PreKillRPS), res.PreKillRPS)
	}
	if res.RecoveredRPS < 0.9*res.PreKillRPS {
		t.Errorf("recovered throughput %.0f RPS is %.0f%% of pre-kill %.0f, want >= 90%%",
			res.RecoveredRPS, pct(res.RecoveredRPS, res.PreKillRPS), res.PreKillRPS)
	}
}

// TestAvailabilityReviveRestores: a killed backend that comes back is
// restored to the ring by the health monitor, and the run stays free
// of false misses across both transitions (eviction reroutes reads to
// replicas; restoration's stale primary is healed by read fall-through
// and repair).
func TestAvailabilityReviveRestores(t *testing.T) {
	res := Availability(AvailabilityOptions{
		Duration: 200 * sim.Millisecond,
		KillAt:   50 * sim.Millisecond,
		ReviveAt: 110 * sim.Millisecond,
	})
	t.Logf("\n%s", FormatAvailability(res))

	if res.EvictedAt < 0 {
		t.Fatal("dead backend was never evicted")
	}
	if res.RestoredAt < 0 {
		t.Fatal("revived backend was never restored to the ring")
	}
	if res.RestoredAt <= res.Opt.ReviveAt {
		t.Errorf("restored at %v, before the revive at %v", res.RestoredAt, res.Opt.ReviveAt)
	}
	if lat := res.RestoredAt - res.Opt.ReviveAt; lat > 50*sim.Millisecond {
		t.Errorf("restoration latency %v exceeds 50ms", lat)
	}
	if res.Load.Misses != 0 {
		t.Errorf("%d false misses across kill/revive", res.Load.Misses)
	}
}
