// Package experiments contains one harness per measured result: the
// tables and figures of the paper's evaluation (§4), and the
// cluster-era experiments the repository has grown beyond them. The
// cmd/ binaries and the repository's testing.B benchmarks are thin
// wrappers over these functions.
//
// Paper reproductions: Table 1 (Ebb dispatch), Figure 3 (memory
// allocation), Figures 4-6 (NetPIPE, memcached latency/throughput,
// multicore scaling), Figure 7 and Table 2 (the node.js-style runtime).
//
// Cluster experiments, each driving the sharded deployment in
// internal/cluster under the ETC workload from internal/load:
//
//   - ClusterScaling (scaling.go): aggregate achieved throughput vs
//     backend count; the keyspace shards by consistent hashing and each
//     shard is driven over its own connection pool.
//
//   - Availability (availability.go): a backend is killed (and
//     optionally revived) mid-run; the timeline reports detection
//     latency, throughput, and hit rate through the failure under R-way
//     replication.
//
//   - Elasticity (elasticity.go): a backend joins and another is
//     decommissioned mid-run, with and without the Migrator streaming
//     moved key shares; reports the hit-rate cliff the rebalancer
//     removes and the time to restore full replication.
//
//   - TextVsBinary (textproto.go): the same load driven over the ASCII
//     text protocol and the binary protocol against identical clusters;
//     reports what text-mode compatibility costs at cluster scale.
//
// The experiments run on the deterministic simulation kernel, so every
// number is exactly reproducible for a given seed.
package experiments
