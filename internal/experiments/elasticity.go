package experiments

import (
	"fmt"

	"ebbrt/internal/cluster"
	"ebbrt/internal/load"
	"ebbrt/internal/sim"
)

// ElasticityOptions tunes the elasticity-under-load experiment: a
// cluster serving the ETC workload while a backend joins mid-run and
// another is decommissioned later. The zero value selects a 3-backend,
// R=1 deployment - the setting where elasticity hurts most, since
// without replication a moved key has exactly one home and a removed
// backend's keys have none.
type ElasticityOptions struct {
	// Backends is the initial native backend count (default 3).
	Backends int
	// CoresPerBackend sizes each backend (default 1).
	CoresPerBackend int
	// Replicas is the replication factor R (default 1).
	Replicas int
	// FrontendCores sizes the hosted frontend driving the load
	// (default 4).
	FrontendCores int
	// TargetRPS is the offered load (default 30000).
	TargetRPS float64
	// Duration is the measured window (default 240ms).
	Duration sim.Time
	// JoinAt is when the new backend joins, relative to measurement
	// start (default 60ms).
	JoinAt sim.Time
	// DecommissionAt, when positive, removes DecommissionBackend at that
	// offset (default 150ms; set negative to skip).
	DecommissionAt sim.Time
	// DecommissionBackend selects the backend to remove (default 0).
	DecommissionBackend int
	// KillBeforeDecommission makes the removal a permanent loss: the
	// node dies and is evicted first, so re-replication must stream from
	// surviving replicas instead of draining the node itself.
	KillBeforeDecommission bool
	// Bucket is the timeline resolution (default 2ms).
	Bucket sim.Time
	// RequestTimeout bounds one replica operation at the client
	// (default 4ms).
	RequestTimeout sim.Time
	// KeySpace sizes the ETC key population (default 3000).
	KeySpace int
	// Stream selects the migration engine: true streams moved key shares
	// through the rebalancer, false is the miss-faulting baseline
	// (AddBackend / EvictBackend - what the cluster did before the
	// migrator existed).
	Stream bool
}

func (o *ElasticityOptions) applyDefaults() {
	if o.Backends <= 0 {
		o.Backends = 3
	}
	if o.CoresPerBackend <= 0 {
		o.CoresPerBackend = 1
	}
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	if o.FrontendCores <= 0 {
		o.FrontendCores = 4
	}
	if o.TargetRPS <= 0 {
		o.TargetRPS = 30000
	}
	if o.Duration <= 0 {
		o.Duration = 240 * sim.Millisecond
	}
	if o.JoinAt <= 0 {
		o.JoinAt = 60 * sim.Millisecond
	}
	if o.DecommissionAt == 0 {
		o.DecommissionAt = 150 * sim.Millisecond
	}
	if o.Bucket <= 0 {
		o.Bucket = 2 * sim.Millisecond
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 4 * sim.Millisecond
	}
	if o.KeySpace <= 0 {
		o.KeySpace = 3000
	}
}

// ElasticityResult reports hit rate and throughput through a mid-run
// join and decommission, plus the migration engine's own numbers.
type ElasticityResult struct {
	Opt  ElasticityOptions
	Load load.ClusterLoadResult
	// Phase stats: before the join, after the join (to the
	// decommission), and after the decommission.
	PreJoinRPS, PreJoinHitRate       float64
	PostJoinRPS, PostJoinHitRate     float64
	PostDecommRPS, PostDecommHitRate float64
	// JoinStreamTime is how long the join migration streamed (-1 when
	// the baseline faulted the share in as misses instead). JoinMoved
	// counts streamed entries.
	JoinStreamTime sim.Time
	JoinMoved      int
	// RestoreRTime is the time from DecommissionBackend to every moved
	// range being re-replicated - the time to restore R (-1 for the
	// baseline, which never restores it). DecommMoved counts entries.
	RestoreRTime sim.Time
	DecommMoved  int
	// MinLiveReplicas is, over the whole key population after the run,
	// the fewest live replicas any key has; FullyReplicated reports
	// whether that equals the intended R.
	MinLiveReplicas int
	FullyReplicated bool
}

// Elasticity boots a cluster, drives the ETC workload through the
// client Ebb, joins a backend mid-measurement and decommissions another
// later, and reports hit rate through both transitions. With
// opt.Stream the rebalancer migrates key shares (join) and
// re-replicates (decommission); without it the cluster does what stock
// memcached deployments do - fault moved keys in as misses and abandon
// a removed backend's keys. The paper's case for keeping the cache warm
// (§4.2: memcached performance is the hit rate) extends here to
// elasticity: the miss-faulting cliff is exactly what the migration
// engine exists to remove.
func Elasticity(opt ElasticityOptions) ElasticityResult {
	opt.applyDefaults()
	cl := cluster.NewCluster(opt.Backends, cluster.Options{
		CoresPerBackend: opt.CoresPerBackend,
		Replicas:        opt.Replicas,
		FrontendCores:   opt.FrontendCores,
	})
	front := cl.Sys.Frontend()
	cli := cluster.NewClientWithOptions(cl, front, cluster.ClientOptions{
		RequestTimeout: opt.RequestTimeout,
	})

	joinStream, restoreR := sim.Time(-1), sim.Time(-1)
	joinMoved, decommMoved := 0, 0
	var mig *cluster.Migrator
	if opt.Stream {
		mig = cluster.NewMigrator(cl, front, cluster.MigratorConfig{})
		mig.OnComplete(func(m *cluster.Migration) {
			if m.Aborted {
				return
			}
			switch m.Kind {
			case "join":
				joinStream = m.DoneAt - m.StartedAt
				joinMoved = m.Moved
			case "decommission":
				restoreR = m.DoneAt - m.StartedAt
				decommMoved = m.Moved
			}
		})
	}

	events := []load.ChaosEvent{{
		At: opt.JoinAt,
		Fn: func() {
			if opt.Stream {
				mig.Join(opt.CoresPerBackend)
			} else {
				cl.AddBackend(opt.CoresPerBackend)
			}
		},
	}}
	if opt.DecommissionAt > 0 {
		victim := opt.DecommissionBackend
		if opt.KillBeforeDecommission {
			events = append(events, load.ChaosEvent{
				At: opt.DecommissionAt - 5*sim.Millisecond,
				Fn: func() {
					cl.Backends[victim].Node.Kill()
					cl.EvictBackend(victim)
				},
			})
		}
		events = append(events, load.ChaosEvent{
			At: opt.DecommissionAt,
			Fn: func() {
				if !opt.Stream {
					// The baseline has no re-replication: removal is an
					// eviction, and the backend's key share is simply lost.
					if cl.Live(victim) {
						cl.EvictBackend(victim)
					}
					return
				}
				if mig.Active() {
					// The join migration is still streaming (a tight
					// schedule or a retry loop): decommission as soon as
					// it concludes rather than panicking on overlap.
					mig.OnComplete(func(*cluster.Migration) {
						if !mig.Active() && !cl.Decommissioned(victim) {
							mig.Decommission(victim)
						}
					})
					return
				}
				mig.Decommission(victim)
			},
		})
	}

	etc := load.DefaultETC()
	etc.KeySpace = opt.KeySpace
	res := load.RunClusterLoad(front.Runtime, clusterKV{cli: cli}, load.ClusterLoadConfig{
		TargetRPS: opt.TargetRPS,
		Warmup:    10 * sim.Millisecond,
		Duration:  opt.Duration,
		Bucket:    opt.Bucket,
		Seed:      42,
		ETC:       etc,
		Events:    events,
	})

	out := ElasticityResult{
		Opt: opt, Load: res,
		JoinStreamTime: joinStream, JoinMoved: joinMoved,
		RestoreRTime: restoreR, DecommMoved: decommMoved,
	}
	postJoinEnd := opt.Duration
	if opt.DecommissionAt > 0 {
		postJoinEnd = opt.DecommissionAt
	}
	out.PreJoinRPS, out.PreJoinHitRate = res.WindowStats(0, opt.JoinAt)
	out.PostJoinRPS, out.PostJoinHitRate = res.WindowStats(opt.JoinAt, postJoinEnd)
	if opt.DecommissionAt > 0 {
		out.PostDecommRPS, out.PostDecommHitRate = res.WindowStats(opt.DecommissionAt, opt.Duration)
	}

	// Replica census over the whole population: the fewest live replicas
	// any key ended the run with.
	work := load.NewWorkload(etc, 42)
	out.MinLiveReplicas = -1
	for _, key := range work.Keys {
		n := cl.LiveHolders(key)
		if out.MinLiveReplicas < 0 || n < out.MinLiveReplicas {
			out.MinLiveReplicas = n
		}
	}
	out.FullyReplicated = out.MinLiveReplicas >= opt.Replicas
	return out
}

// ElasticityCompare runs the experiment twice - streamed migration and
// miss-faulting baseline - over identical workloads and schedules.
func ElasticityCompare(opt ElasticityOptions) (streamed, baseline ElasticityResult) {
	opt.Stream = true
	streamed = Elasticity(opt)
	opt.Stream = false
	baseline = Elasticity(opt)
	return streamed, baseline
}

// FormatElasticity renders one run.
func FormatElasticity(r ElasticityResult) string {
	mode := "baseline (miss-faulting)"
	if r.Opt.Stream {
		mode = "streamed migration"
	}
	out := fmt.Sprintf("Elasticity [%s]: %d backends, R=%d, %.0f RPS offered, join at %.0fms",
		mode, r.Opt.Backends, r.Opt.Replicas, r.Opt.TargetRPS, float64(r.Opt.JoinAt)/1e6)
	if r.Opt.DecommissionAt > 0 {
		kind := "drain"
		if r.Opt.KillBeforeDecommission {
			kind = "dead"
		}
		out += fmt.Sprintf(", decommission backend %d (%s) at %.0fms",
			r.Opt.DecommissionBackend, kind, float64(r.Opt.DecommissionAt)/1e6)
	}
	out += "\n"
	out += fmt.Sprintf("  pre-join:    %8.0f RPS  hit rate %.4f\n", r.PreJoinRPS, r.PreJoinHitRate)
	out += fmt.Sprintf("  post-join:   %8.0f RPS  hit rate %.4f", r.PostJoinRPS, r.PostJoinHitRate)
	if r.JoinStreamTime >= 0 {
		out += fmt.Sprintf("  (share streamed in %.2fms, %d entries)", float64(r.JoinStreamTime)/1e6, r.JoinMoved)
	}
	out += "\n"
	if r.Opt.DecommissionAt > 0 {
		out += fmt.Sprintf("  post-decomm: %8.0f RPS  hit rate %.4f", r.PostDecommRPS, r.PostDecommHitRate)
		if r.RestoreRTime >= 0 {
			out += fmt.Sprintf("  (R restored in %.2fms, %d entries)", float64(r.RestoreRTime)/1e6, r.DecommMoved)
		} else {
			out += "  (R never restored)"
		}
		out += "\n"
	}
	out += fmt.Sprintf("  replicas: min %d live of R=%d intended; fully replicated: %v\n",
		r.MinLiveReplicas, r.Opt.Replicas, r.FullyReplicated)
	out += fmt.Sprintf("  totals: %d completed, %d misses, %d network errors, mean %.1fus p99 %.1fus\n",
		r.Load.Completed, r.Load.Misses, r.Load.NetErrs, r.Load.Mean.Micros(), r.Load.P99.Micros())
	return out
}
