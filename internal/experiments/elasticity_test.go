package experiments

import (
	"testing"

	"ebbrt/internal/sim"
)

// TestElasticityStreamedBeatsBaseline is the acceptance check for the
// migration engine: over an identical workload and schedule, streaming
// the joining backend's key share must keep the post-join hit rate
// strictly above the miss-faulting baseline, and a streamed (live)
// decommission must leave every key fully replicated where the baseline
// eviction abandons the victim's share.
func TestElasticityStreamedBeatsBaseline(t *testing.T) {
	streamed, baseline := ElasticityCompare(ElasticityOptions{})
	t.Logf("\n%s\n%s", FormatElasticity(streamed), FormatElasticity(baseline))

	// The join actually moved data, promptly.
	if streamed.JoinStreamTime < 0 || streamed.JoinMoved == 0 {
		t.Fatal("streamed join did not run a migration")
	}
	if streamed.JoinStreamTime > 50*sim.Millisecond {
		t.Errorf("join share took %v to stream", streamed.JoinStreamTime)
	}

	// Hit rate through the join: streamed strictly above baseline, and
	// the comparison must not be vacuous - the baseline has to show the
	// miss-faulting cliff the migration removes.
	if streamed.PostJoinHitRate <= baseline.PostJoinHitRate {
		t.Errorf("post-join hit rate: streamed %.4f <= baseline %.4f",
			streamed.PostJoinHitRate, baseline.PostJoinHitRate)
	}
	if baseline.PostJoinHitRate > 0.995 {
		t.Errorf("baseline post-join hit rate %.4f shows no miss-faulting cliff - comparison vacuous",
			baseline.PostJoinHitRate)
	}
	if streamed.PostJoinHitRate < 0.99 {
		t.Errorf("streamed post-join hit rate %.4f: migration did not keep the cache warm",
			streamed.PostJoinHitRate)
	}

	// Decommission: the drain restores full replication; the baseline
	// eviction leaves the victim's keys with no live home.
	if streamed.RestoreRTime < 0 {
		t.Fatal("streamed decommission never completed")
	}
	if !streamed.FullyReplicated {
		t.Errorf("streamed run not fully replicated: min %d live replicas of R=%d",
			streamed.MinLiveReplicas, streamed.Opt.Replicas)
	}
	if baseline.FullyReplicated {
		t.Error("baseline eviction reports full replication - replica census broken")
	}
	if streamed.PostDecommHitRate <= baseline.PostDecommHitRate {
		t.Errorf("post-decommission hit rate: streamed %.4f <= baseline %.4f",
			streamed.PostDecommHitRate, baseline.PostDecommHitRate)
	}

	// Throughput sanity: the cluster was healthy before any transition.
	if streamed.PreJoinRPS < 0.8*streamed.Opt.TargetRPS {
		t.Fatalf("pre-join throughput %.0f below 80%% of offered %.0f", streamed.PreJoinRPS, streamed.Opt.TargetRPS)
	}
}

// TestElasticityRestoresRAfterPermanentLoss: with R=2 and the
// decommissioned backend killed first, re-replication from surviving
// replicas returns every key to R live replicas - the ROADMAP follow-on
// from the fault-tolerance PR - and the run records a restore-R time.
func TestElasticityRestoresRAfterPermanentLoss(t *testing.T) {
	res := Elasticity(ElasticityOptions{
		Backends:               4,
		Replicas:               2,
		KillBeforeDecommission: true,
		Stream:                 true,
	})
	t.Logf("\n%s", FormatElasticity(res))

	if res.RestoreRTime < 0 {
		t.Fatal("re-replication never completed")
	}
	if res.RestoreRTime > 100*sim.Millisecond {
		t.Errorf("restore-R took %v", res.RestoreRTime)
	}
	if !res.FullyReplicated || res.MinLiveReplicas != 2 {
		t.Errorf("replica count not restored: min %d live replicas, want 2", res.MinLiveReplicas)
	}
	// With R=2 every read has a live replica throughout: the kill window
	// surfaces as failovers, never as misses.
	if res.Load.Misses != 0 {
		t.Errorf("%d false misses across join + permanent loss", res.Load.Misses)
	}
}
