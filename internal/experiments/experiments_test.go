package experiments

import (
	"testing"

	"ebbrt/internal/sim"
	"ebbrt/internal/testbed"
)

func TestTable1Shape(t *testing.T) {
	rows := Table1(2_000_000)
	byName := map[string]float64{}
	for _, r := range rows {
		if r.Cycles <= 0 {
			t.Fatalf("%s: non-positive cycles", r.Method)
		}
		byName[r.Method] = r.Cycles
	}
	// Shape requirements (see EXPERIMENTS.md for the deviation notes):
	// inlined dispatch is clearly cheapest; Ebb dispatch costs a small
	// constant over a plain call - competitive with virtual dispatch in
	// Go (the C++ system gets it under a non-inlined call; Go's bounds
	// checks put it at virtual-call cost) - and the hosted hash-table
	// path is a multiple of the native path.
	if byName["Inline"] >= byName["No Inline"] {
		t.Errorf("Inline (%v) should beat No Inline (%v)", byName["Inline"], byName["No Inline"])
	}
	if byName["Inline"] >= byName["Inline Ebb"] {
		t.Errorf("Inline (%v) should beat Inline Ebb (%v)", byName["Inline"], byName["Inline Ebb"])
	}
	if byName["Inline Ebb"] > 1.6*byName["Virtual"] {
		t.Errorf("Inline Ebb (%v) should be competitive with Virtual (%v)", byName["Inline Ebb"], byName["Virtual"])
	}
	if byName["Hosted Ebb"] < 2*byName["Inline Ebb"] {
		t.Errorf("Hosted Ebb (%v) should be a multiple of Inline Ebb (%v)", byName["Hosted Ebb"], byName["Inline Ebb"])
	}
	t.Logf("\n%s", FormatTable1(rows))
}

func TestFigure3Shape(t *testing.T) {
	rows := Figure3([]int{1, 2, 4, 8, 12, 24}, 0)
	if len(rows) != 6 {
		t.Fatal("wrong row count")
	}
	one, twentyFour := rows[0], rows[5]
	// EbbRT scales linearly: flat per-core latency.
	if twentyFour.Cycles["EbbRT"] != one.Cycles["EbbRT"] {
		t.Errorf("EbbRT latency changed with cores: %v -> %v",
			one.Cycles["EbbRT"], twentyFour.Cycles["EbbRT"])
	}
	// jemalloc linear but slower than EbbRT (paper: 42% slower).
	ratio := twentyFour.Cycles["jemalloc"] / twentyFour.Cycles["EbbRT"]
	if ratio < 1.2 || ratio > 1.7 {
		t.Errorf("jemalloc/EbbRT ratio %.2f, paper reports ~1.42", ratio)
	}
	// glibc degrades toward the paper's 3.8x at 24 cores.
	deg := twentyFour.Cycles["glibc"] / twentyFour.Cycles["EbbRT"]
	if deg < 3.0 || deg > 5.0 {
		t.Errorf("glibc/EbbRT at 24 cores = %.2f, paper reports 3.8", deg)
	}
	// Monotone degradation for glibc.
	for i := 1; i < len(rows); i++ {
		if rows[i].Cycles["glibc"] < rows[i-1].Cycles["glibc"] {
			t.Errorf("glibc latency not monotone in cores: %+v", rows)
		}
	}
	t.Logf("\n%s", FormatFigure3(rows))
}

func TestFigure3RealModeRuns(t *testing.T) {
	// The real-goroutine mode must function on any host (absolute values
	// are only meaningful with enough CPUs; here we check it runs and
	// produces positive numbers).
	rows := Figure3Real([]int{1, 2}, 5_000)
	for _, r := range rows {
		for name, v := range r.Cycles {
			if v <= 0 {
				t.Fatalf("%s at %d cores: non-positive %v", name, r.Cores, v)
			}
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	series, err := Figure4([]int{64, 65536}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatal("want 2 systems")
	}
	ebb, lin := series[0], series[1]
	if ebb.Points[0].OneWay >= lin.Points[0].OneWay {
		t.Error("EbbRT should win 64B latency")
	}
	if ebb.Points[1].GoodputMbps <= lin.Points[1].GoodputMbps {
		t.Error("EbbRT should win 64kB goodput")
	}
	t.Logf("\n%s", FormatFigure4(series))
}

func TestMemcachedSLAOrdering(t *testing.T) {
	rates := []float64{50000, 100000, 150000}
	opt := MemcachedOptions{Cores: 1, Duration: 60 * sim.Millisecond}
	ebb := MemcachedCurve(testbed.EbbRT, rates, opt)
	lin := MemcachedCurve(testbed.LinuxVM, rates, opt)
	sla := 500 * sim.Microsecond
	ebbSLA := SLAThroughput(ebb.Points, sla)
	linSLA := SLAThroughput(lin.Points, sla)
	if ebbSLA <= linSLA {
		t.Errorf("EbbRT SLA throughput %.0f should beat Linux VM %.0f", ebbSLA, linSLA)
	}
	t.Logf("SLA@500us: EbbRT=%.0f LinuxVM=%.0f\n%s", ebbSLA, linSLA,
		FormatMemcached([]MemcachedSeries{ebb, lin}))
}

func TestFigure7Shape(t *testing.T) {
	rows := Figure7()
	if len(rows) != 9 { // 8 benchmarks + overall
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.EbbRTScore <= 1.0 {
			t.Errorf("%s: EbbRT score %.4f does not beat Linux", r.Name, r.EbbRTScore)
		}
	}
	overall := rows[len(rows)-1]
	if overall.Name != "Overall" {
		t.Fatal("missing overall row")
	}
	if overall.EbbRTScore < 1.01 || overall.EbbRTScore > 1.12 {
		t.Errorf("overall %.4f outside band around paper's 1.0409", overall.EbbRTScore)
	}
	t.Logf("\n%s", FormatFigure7(rows))
}

func TestTable2Shape(t *testing.T) {
	rows := Table2(6000)
	if len(rows) != 2 {
		t.Fatal("want 2 rows")
	}
	ebb, lin := rows[0], rows[1]
	if ebb.Result.Mean >= lin.Result.Mean {
		t.Error("EbbRT mean should beat Linux")
	}
	if ebb.Result.P99 >= lin.Result.P99 {
		t.Error("EbbRT p99 should beat Linux")
	}
	t.Logf("\n%s", FormatTable2(rows))
}

func TestAblationPollingHelpsUnderLoad(t *testing.T) {
	rates := []float64{150000}
	on := MemcachedCurve(testbed.EbbRT, rates, MemcachedOptions{Cores: 1, Duration: 60 * sim.Millisecond})
	off := MemcachedCurve(testbed.EbbRT, rates, MemcachedOptions{Cores: 1, Duration: 60 * sim.Millisecond, DisablePolling: true})
	// Both must complete; detailed comparison is recorded by the harness.
	if on.Points[0].Samples == 0 || off.Points[0].Samples == 0 {
		t.Fatal("ablation produced no samples")
	}
	t.Logf("polling on : %v", on.Points[0])
	t.Logf("polling off: %v", off.Points[0])
}

func TestAblationLockedStore(t *testing.T) {
	rates := []float64{400000}
	rcu := MemcachedCurve(testbed.EbbRT, rates, MemcachedOptions{Cores: 4, Store: "rcu", Duration: 50 * sim.Millisecond})
	locked := MemcachedCurve(testbed.EbbRT, rates, MemcachedOptions{Cores: 4, Store: "locked", Duration: 50 * sim.Millisecond})
	if rcu.Points[0].Mean >= locked.Points[0].Mean {
		t.Errorf("RCU store mean %v should beat locked store %v under 4-core load",
			rcu.Points[0].Mean, locked.Points[0].Mean)
	}
	t.Logf("rcu: %v | locked: %v", rcu.Points[0], locked.Points[0])
}
