package experiments

import (
	"fmt"
	"sync"
	"time"

	"ebbrt/internal/mem"
	"ebbrt/internal/sim"
)

// Figure3Row is one point of the allocator-scalability figure: mean cycles
// to allocate and free an 8 B object ten times, per core, at a given core
// count.
type Figure3Row struct {
	Cores  int
	Cycles map[string]float64
}

// AllocatorNames lists the Figure 3 contenders in legend order.
var AllocatorNames = []string{"EbbRT", "glibc", "jemalloc"}

// Figure 3 contention model. The paper's experiment needs 24 physical
// cores; this reproduction host may have as few as one, so the default
// harness runs a deterministic queueing model over the allocators'
// synchronization structure (the real-goroutine mode remains available as
// Figure3Real for multi-core hosts):
//
//   - EbbRT: per-core free lists, no shared resource on the fast path -
//     constant per-operation cost (the slab's rare node refill amortizes
//     to noise). Scales linearly.
//   - jemalloc: per-thread caches, so no queueing either, but every
//     operation performs atomic statistics updates - constant, ~40%
//     higher cost. Scales linearly.
//   - glibc: one arena lock serializes a slice of every operation; with
//     n cores the lock becomes an FCFS queue and the mean operation time
//     degrades toward n times the lock-hold time.
//
// Per-pair costs are calibrated so one core lands near the paper's
// absolute numbers (measurement = ten alloc/free pairs):
// EbbRT ~680 cycles, jemalloc ~960, glibc from ~740 to ~2800 at 24 cores.
const (
	ebbrtPairNs    = 26.0
	jemallocPairNs = 37.0
	glibcLocalNs   = 24.0
	glibcHoldNs    = 4.5
)

// Figure3 reproduces the allocator scalability figure with the queueing
// model described above.
func Figure3(coreCounts []int, measurementsPerCore int) []Figure3Row {
	if len(coreCounts) == 0 {
		coreCounts = []int{1, 2, 4, 8, 12, 24}
	}
	if measurementsPerCore <= 0 {
		measurementsPerCore = 2000 // the queueing model converges quickly
	}
	var rows []Figure3Row
	for _, n := range coreCounts {
		rows = append(rows, Figure3Row{
			Cores: n,
			Cycles: map[string]float64{
				"EbbRT":    ebbrtPairNs * 10 * PaperGHz,
				"jemalloc": jemallocPairNs * 10 * PaperGHz,
				"glibc":    glibcModel(n, measurementsPerCore),
			},
		})
	}
	return rows
}

// glibcModel simulates n cores contending for the single arena lock and
// returns mean cycles per ten-pair measurement. Exact FCFS queueing: the
// earliest-in-time core acquires the lock next.
func glibcModel(n, measurements int) float64 {
	clock := make([]sim.Time, n) // per-core virtual time
	var lockBusy sim.Time        // lock occupied until
	totalOps := n * measurements * 10
	hold := sim.Time(glibcHoldNs * 10)   // fixed-point: tenths of ns
	local := sim.Time(glibcLocalNs * 10) // fixed-point: tenths of ns
	for op := 0; op < totalOps; op++ {
		// Pick the core whose clock is earliest.
		c := 0
		for i := 1; i < n; i++ {
			if clock[i] < clock[c] {
				c = i
			}
		}
		start := clock[c]
		if lockBusy > start {
			start = lockBusy // queue for the lock
		}
		lockBusy = start + hold
		clock[c] = start + hold + local
	}
	var sum sim.Time
	for _, t := range clock {
		sum += t
	}
	// sum is in tenths of nanoseconds across n cores, each of which
	// performed measurements*10 pairs.
	meanNsPerPair := float64(sum) / 10.0 / float64(n) / (float64(measurements) * 10)
	return meanNsPerPair * 10 * PaperGHz
}

// Figure3Real runs the allocators under real goroutine parallelism -
// meaningful only on hosts with at least as many CPUs as the largest core
// count requested. The allocator implementations themselves (package mem)
// are the real data structures either way.
func Figure3Real(coreCounts []int, measurementsPerCore int) []Figure3Row {
	if len(coreCounts) == 0 {
		coreCounts = []int{1, 2, 4, 8, 12, 24}
	}
	if measurementsPerCore <= 0 {
		measurementsPerCore = 200_000
	}
	var rows []Figure3Row
	for _, n := range coreCounts {
		row := Figure3Row{Cores: n, Cycles: map[string]float64{}}
		for _, name := range AllocatorNames {
			alloc := makeAllocator(name, n)
			row.Cycles[name] = runAllocBench(alloc, n, measurementsPerCore)
		}
		rows = append(rows, row)
	}
	return rows
}

func makeAllocator(name string, cores int) mem.Allocator {
	switch name {
	case "EbbRT":
		pages := mem.NewPageAllocator(2, 512<<20)
		coreNode := func(c int) int { return c * 2 / cores }
		return &mem.EbbRTAllocator{M: mem.NewMalloc(pages, cores, coreNode)}
	case "glibc":
		return mem.NewGlibcStyle()
	case "jemalloc":
		return mem.NewJemallocStyle(cores)
	}
	panic("unknown allocator " + name)
}

// runAllocBench returns the mean cycles per measurement (ten alloc/free
// pairs) across all cores.
func runAllocBench(alloc mem.Allocator, cores, measurements int) float64 {
	// Warm the per-core caches.
	var warm sync.WaitGroup
	for c := 0; c < cores; c++ {
		warm.Add(1)
		go func(core int) {
			defer warm.Done()
			for i := 0; i < 1000; i++ {
				alloc.AllocFree(core)
			}
		}(c)
	}
	warm.Wait()

	totals := make([]time.Duration, cores)
	var wg sync.WaitGroup
	for c := 0; c < cores; c++ {
		wg.Add(1)
		go func(core int) {
			defer wg.Done()
			start := time.Now()
			for m := 0; m < measurements; m++ {
				for i := 0; i < 10; i++ {
					alloc.AllocFree(core)
				}
			}
			totals[core] = time.Since(start)
		}(c)
	}
	wg.Wait()
	var sum float64
	for _, d := range totals {
		sum += float64(d.Nanoseconds())
	}
	meanNsPerMeasurement := sum / float64(cores) / float64(measurements)
	return meanNsPerMeasurement * PaperGHz
}

// FormatFigure3 renders the series like the paper's axes.
func FormatFigure3(rows []Figure3Row) string {
	out := fmt.Sprintf("%-6s", "Cores")
	for _, n := range AllocatorNames {
		out += fmt.Sprintf(" %10s", n)
	}
	out += "\n"
	for _, r := range rows {
		out += fmt.Sprintf("%-6d", r.Cores)
		for _, n := range AllocatorNames {
			out += fmt.Sprintf(" %10.0f", r.Cycles[n])
		}
		out += "\n"
	}
	return out
}
