package experiments

import (
	"fmt"
	"math"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/apps/httpd"
	"ebbrt/internal/event"
	"ebbrt/internal/jsvm"
	"ebbrt/internal/load"
	"ebbrt/internal/testbed"
)

// Figure7Row is one benchmark of the V8 suite with normalized scores
// (inverse runtime, normalized to Linux = 1.0, as the paper plots).
type Figure7Row struct {
	Name       string
	EbbRTScore float64
	LinuxScore float64
}

// Figure7 runs the suite under both environments and normalizes.
func Figure7() []Figure7Row {
	ebb := jsvm.RunSuite(jsvm.EbbRTEnv())
	lin := jsvm.RunSuite(jsvm.LinuxEnv())
	rows := make([]Figure7Row, 0, len(ebb)+1)
	prodE, prodL := 1.0, 1.0
	for i := range ebb {
		e := 1 / float64(ebb[i].Elapsed)
		l := 1 / float64(lin[i].Elapsed)
		rows = append(rows, Figure7Row{Name: ebb[i].Name, EbbRTScore: e / l, LinuxScore: 1})
		prodE *= e
		prodL *= l
	}
	n := float64(len(ebb))
	rows = append(rows, Figure7Row{
		Name:       "Overall",
		EbbRTScore: math.Pow(prodE, 1/n) / math.Pow(prodL, 1/n),
		LinuxScore: 1,
	})
	return rows
}

// FormatFigure7 renders normalized scores like the paper's bar chart.
func FormatFigure7(rows []Figure7Row) string {
	out := fmt.Sprintf("%-14s %10s %10s\n", "Benchmark", "EbbRT", "Linux")
	for _, r := range rows {
		out += fmt.Sprintf("%-14s %10.4f %10.4f\n", r.Name, r.EbbRTScore, r.LinuxScore)
	}
	return out
}

// Table2Row is one system's webserver latency row.
type Table2Row struct {
	System string
	Result load.WrkResult
}

// Table2 reproduces the node.js webserver latency measurement: the static
// 148-byte response under moderate wrk load (closed loop, as wrk runs),
// EbbRT vs Linux (VM). A non-zero rps switches to open-loop pacing.
func Table2(rps float64) []Table2Row {
	var rows []Table2Row
	for _, kind := range []testbed.ServerKind{testbed.EbbRT, testbed.LinuxVM} {
		pair := testbed.NewPair(kind, 1, 4)
		srv := httpd.NewServer()
		if err := srv.Serve(pair.Server); err != nil {
			panic(err)
		}
		cfg := load.DefaultWrk()
		cfg.TargetRPS = rps
		dial := func(c *event.Ctx, cb appnet.Callbacks, onConnect func(*event.Ctx, appnet.Conn)) {
			pair.Client.Dial(c, testbed.ServerIP, httpd.Port, cb, onConnect)
		}
		rows = append(rows, Table2Row{System: kind.String(), Result: load.RunWrk(pair.Client, dial, cfg)})
	}
	return rows
}

// FormatTable2 renders the table like the paper's Table 2.
func FormatTable2(rows []Table2Row) string {
	out := fmt.Sprintf("%-14s %12s %16s\n", "System", "Mean", "99th Percentile")
	for _, r := range rows {
		out += fmt.Sprintf("%-14s %10.2fus %14.2fus\n",
			r.System, r.Result.Mean.Micros(), r.Result.P99.Micros())
	}
	return out
}
