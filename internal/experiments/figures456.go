package experiments

import (
	"fmt"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/apps/netpipe"
	"ebbrt/internal/event"
	"ebbrt/internal/load"
	"ebbrt/internal/sim"
	"ebbrt/internal/testbed"
)

// Figure4Series is one system's NetPIPE curve.
type Figure4Series struct {
	System string
	Points []netpipe.Point
}

// Figure4 reproduces the NetPIPE experiment for EbbRT and Linux (both
// virtualized, same system on both ends).
func Figure4(sizes []int, reps int) ([]Figure4Series, error) {
	if len(sizes) == 0 {
		sizes = netpipe.DefaultSizes()
	}
	if reps <= 0 {
		reps = 10
	}
	var out []Figure4Series
	for _, kind := range []testbed.ServerKind{testbed.EbbRT, testbed.LinuxVM} {
		pts, err := netpipe.Run(kind, sizes, reps)
		if err != nil {
			return nil, fmt.Errorf("netpipe %v: %w", kind, err)
		}
		out = append(out, Figure4Series{System: kind.String(), Points: pts})
	}
	return out, nil
}

// FormatFigure4 renders goodput vs message size per system.
func FormatFigure4(series []Figure4Series) string {
	out := fmt.Sprintf("%-10s %12s %12s %12s\n", "System", "Size(B)", "OneWay(us)", "Goodput(Mbps)")
	for _, s := range series {
		for _, p := range s.Points {
			out += fmt.Sprintf("%-10s %12d %12.2f %12.0f\n", s.System, p.Size, p.OneWay.Micros(), p.GoodputMbps)
		}
	}
	return out
}

// MemcachedOptions tunes the Figure 5/6 sweeps. The zero value is the
// paper's configuration: one core, RCU store, adaptive polling on.
type MemcachedOptions struct {
	Cores          int
	Store          string // "rcu" (default) or "locked" ablation
	DisablePolling bool   // ablation: leave the driver interrupt-driven
	Connections    int
	Duration       sim.Time
}

// MemcachedSeries is one system's latency-vs-throughput curve.
type MemcachedSeries struct {
	System string
	Points []load.MutilateResult
}

// MemcachedCurve sweeps offered load for one system and returns the
// latency/throughput points of Figures 5 and 6.
func MemcachedCurve(kind testbed.ServerKind, rates []float64, opt MemcachedOptions) MemcachedSeries {
	if opt.Cores <= 0 {
		opt.Cores = 1
	}
	series := MemcachedSeries{System: kind.String()}
	for _, rate := range rates {
		series.Points = append(series.Points, memcachedPoint(kind, rate, opt))
	}
	return series
}

func memcachedPoint(kind testbed.ServerKind, rate float64, opt MemcachedOptions) load.MutilateResult {
	pair := testbed.NewPair(kind, opt.Cores, 8)
	if opt.DisablePolling {
		if native, ok := pair.Server.(*appnet.Native); ok {
			native.Stack.Cfg.AdaptivePolling = false
		}
	}
	var store memcached.Store
	if opt.Store == "locked" {
		store = memcached.NewLockedStore()
	} else {
		store = memcached.NewRCUStore()
	}
	srv := memcached.NewServer(store, opt.Cores)
	if err := srv.Serve(pair.Server); err != nil {
		panic(err)
	}
	cfg := load.DefaultMutilate(rate)
	if opt.Connections > 0 {
		cfg.Connections = opt.Connections
	}
	if opt.Duration > 0 {
		cfg.Duration = opt.Duration
	}
	dial := func(c *event.Ctx, cb appnet.Callbacks, onConnect func(*event.Ctx, appnet.Conn)) {
		pair.Client.Dial(c, testbed.ServerIP, memcached.Port, cb, onConnect)
	}
	return load.RunMutilate(pair.Client, dial, srv, cfg)
}

// SLAThroughput reports the highest achieved throughput whose p99 latency
// meets the given SLA - the paper's headline comparison at a 500 us 99th
// percentile SLA.
func SLAThroughput(points []load.MutilateResult, sla sim.Time) float64 {
	best := 0.0
	for _, p := range points {
		if p.P99 <= sla && p.AchievedRPS > best {
			best = p.AchievedRPS
		}
	}
	return best
}

// FormatMemcached renders curves like the paper's Figures 5/6.
func FormatMemcached(series []MemcachedSeries) string {
	out := fmt.Sprintf("%-14s %12s %12s %12s %12s\n", "System", "Target(RPS)", "Achieved", "Mean(us)", "p99(us)")
	for _, s := range series {
		for _, p := range s.Points {
			out += fmt.Sprintf("%-14s %12.0f %12.0f %12.1f %12.1f\n",
				s.System, p.TargetRPS, p.AchievedRPS, p.Mean.Micros(), p.P99.Micros())
		}
	}
	return out
}

// DefaultRatesSingleCore is the Figure 5 sweep (single-core servers).
func DefaultRatesSingleCore() []float64 {
	return []float64{25000, 50000, 75000, 100000, 125000, 150000, 175000, 200000, 250000, 300000, 350000}
}

// DefaultRatesFourCore is the Figure 6 sweep (four-core servers).
func DefaultRatesFourCore() []float64 {
	return []float64{100000, 200000, 300000, 400000, 500000, 600000, 700000, 800000, 900000, 1000000}
}
