package experiments

import (
	"fmt"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/cluster"
	"ebbrt/internal/load"
	"ebbrt/internal/sim"
)

// FrontendScalingOptions drives the frontend-tier scale-out matrix: N
// hosted frontends x M native backends, with the batched submission
// queue ablated against the per-op spine. The hosted tier is the
// bottleneck under study, so its nodes are deliberately small and the
// backends generously provisioned.
type FrontendScalingOptions struct {
	// FrontendCounts are the N values swept (default {1, 2, 3}).
	FrontendCounts []int
	// Backends is M, the native backend count (default 4).
	Backends int
	// CoresPerBackend sizes each backend (default 2: the backends must
	// not be the ceiling being measured).
	CoresPerBackend int
	// FrontendCores sizes each hosted node (default 1, so the frontend
	// saturates at smoke scale).
	FrontendCores int
	// PerFrontendRPS is each frontend's offered Poisson arrival rate
	// (default 50000, just past the per-op spine's single-frontend
	// ceiling at the other defaults). A read arrival expands to
	// MultiGet key-reads, so the offered key-op rate is higher.
	PerFrontendRPS float64
	// MultiGet is the keys per read arrival (default 8).
	MultiGet int
	// MaxBatch caps one backend's reads per pipelined round in the
	// batched arm (default cluster.DefaultMaxBatch). The per-op arm
	// always runs MaxBatch 1.
	MaxBatch int
	// Duration is each point's measured window (default 40ms).
	Duration sim.Time
	// KeySpace sizes the ETC key population (default 3000).
	KeySpace int
	// Seed feeds the workload and arrival processes.
	Seed uint64
}

func (o *FrontendScalingOptions) applyDefaults() {
	if len(o.FrontendCounts) == 0 {
		o.FrontendCounts = []int{1, 2, 3}
	}
	if o.Backends <= 0 {
		o.Backends = 4
	}
	if o.CoresPerBackend <= 0 {
		o.CoresPerBackend = 2
	}
	if o.FrontendCores <= 0 {
		o.FrontendCores = 1
	}
	if o.PerFrontendRPS <= 0 {
		o.PerFrontendRPS = 50000
	}
	if o.MultiGet <= 0 {
		o.MultiGet = 8
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = cluster.DefaultMaxBatch
	}
	if o.Duration <= 0 {
		o.Duration = 40 * sim.Millisecond
	}
	if o.KeySpace <= 0 {
		o.KeySpace = 3000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// FrontendCeilingPoint is one offered-vs-achieved sample of the
// single-frontend profile.
type FrontendCeilingPoint struct {
	OfferedRPS  float64 // arrival rate offered
	AchievedRPS float64 // key-operations completed per second
	P99         sim.Time
}

// FrontendScalingRow is one N-frontends matrix point: the same offered
// load driven through the per-op spine (MaxBatch 1) and the batched
// submission queue.
type FrontendScalingRow struct {
	Frontends int
	// OfferedRPS is the tier-wide arrival rate (PerFrontendRPS x N).
	OfferedRPS float64
	PerOp      load.ClusterLoadResult
	Batched    load.ClusterLoadResult
	// Ratio is batched/per-op achieved key-op throughput.
	Ratio float64
	// Stats is the batched arm's submission-queue counters summed over
	// every frontend's client.
	Stats cluster.BatchStats
}

// FrontendScalingResult is the full matrix run.
type FrontendScalingResult struct {
	Opt     FrontendScalingOptions
	Ceiling []FrontendCeilingPoint
	Rows    []FrontendScalingRow
	// Ratio is the batched/per-op throughput ratio at N=1 - the
	// ablation benchguard gates.
	Ratio float64
	// ScaleOut is batched throughput at max N over batched throughput
	// at N=1.
	ScaleOut float64
	// NetErrs counts failed callbacks across every arm of every row.
	NetErrs uint64
}

// frontendPoint runs one matrix point: a fresh cluster with nFront
// hosted frontends, one client Ebb and one load source per frontend,
// the multiget ETC workload at the tier-wide rate.
func frontendPoint(opt FrontendScalingOptions, nFront int, batch cluster.BatchOptions) (load.ClusterLoadResult, cluster.BatchStats) {
	cl := cluster.NewCluster(opt.Backends, cluster.Options{
		CoresPerBackend: opt.CoresPerBackend,
		FrontendCores:   opt.FrontendCores,
	})
	for len(cl.Frontends) < nFront {
		cl.AddFrontend(opt.FrontendCores)
	}
	clis := make([]*cluster.Client, nFront)
	kvs := make([]load.KVClient, nFront)
	rtl := make([]appnet.Runtime, nFront)
	for i, front := range cl.Frontends[:nFront] {
		clis[i] = cluster.NewClientWithOptions(cl, front, cluster.ClientOptions{Batch: batch})
		kvs[i] = clusterKV{cli: clis[i]}
		rtl[i] = front.Runtime
	}
	etc := load.DefaultETC()
	etc.KeySpace = opt.KeySpace
	res := load.RunClusterLoadMulti(rtl, kvs, load.ClusterLoadConfig{
		TargetRPS: opt.PerFrontendRPS * float64(nFront),
		Warmup:    5 * sim.Millisecond,
		Duration:  opt.Duration,
		Seed:      opt.Seed,
		ETC:       etc,
		MultiGet:  opt.MultiGet,
	})
	var stats cluster.BatchStats
	for _, cli := range clis {
		stats.Accumulate(cli.BatchStats())
	}
	return res, stats
}

// FrontendScaling profiles the hosted frontend tier: first the
// single-frontend ceiling (offered load swept past saturation on one
// batched frontend), then the NxM matrix with the batched submission
// queue ablated against the per-op spine at every N. The paper scales
// the native side (Figure 6); this is the same question asked of the
// hosted side, where per-op syscall pricing is exactly what the
// coalesced GETQ+Noop rounds amortize.
func FrontendScaling(opt FrontendScalingOptions) FrontendScalingResult {
	opt.applyDefaults()
	out := FrontendScalingResult{Opt: opt}
	batched := cluster.BatchOptions{MaxBatch: opt.MaxBatch}
	perOp := cluster.BatchOptions{MaxBatch: 1}

	// Phase 1: the single-frontend ceiling, batched arm.
	for _, mult := range []float64{0.5, 1.0, 1.5} {
		o := opt
		o.PerFrontendRPS = opt.PerFrontendRPS * mult
		res, _ := frontendPoint(o, 1, batched)
		out.Ceiling = append(out.Ceiling, FrontendCeilingPoint{
			OfferedRPS:  o.PerFrontendRPS,
			AchievedRPS: res.AchievedRPS,
			P99:         res.P99,
		})
		out.NetErrs += res.NetErrs
	}

	// Phase 2: the NxM matrix, per-op vs batched at each N.
	for _, n := range opt.FrontendCounts {
		po, _ := frontendPoint(opt, n, perOp)
		ba, stats := frontendPoint(opt, n, batched)
		row := FrontendScalingRow{
			Frontends:  n,
			OfferedRPS: opt.PerFrontendRPS * float64(n),
			PerOp:      po,
			Batched:    ba,
			Stats:      stats,
		}
		if po.AchievedRPS > 0 {
			row.Ratio = ba.AchievedRPS / po.AchievedRPS
		}
		out.Rows = append(out.Rows, row)
		out.NetErrs += po.NetErrs + ba.NetErrs
	}
	if len(out.Rows) > 0 {
		out.Ratio = out.Rows[0].Ratio
		first, last := out.Rows[0].Batched.AchievedRPS, out.Rows[len(out.Rows)-1].Batched.AchievedRPS
		if first > 0 {
			out.ScaleOut = last / first
		}
	}
	return out
}

// FormatFrontendScaling renders the matrix for the command-line driver.
func FormatFrontendScaling(r FrontendScalingResult) string {
	o := r.Opt
	out := fmt.Sprintf("FrontendScaling: %d backends x %d cores, frontends x%d cores, %.0f arrivals/s per frontend, multiget %d, max batch %d\n",
		o.Backends, o.CoresPerBackend, o.FrontendCores, o.PerFrontendRPS, o.MultiGet, o.MaxBatch)
	out += "  single-frontend ceiling (batched):\n"
	out += fmt.Sprintf("  %-12s %12s %10s\n", "offered/s", "achieved/s", "p99(us)")
	for _, p := range r.Ceiling {
		out += fmt.Sprintf("  %-12.0f %12.0f %10.1f\n", p.OfferedRPS, p.AchievedRPS, p.P99.Micros())
	}
	out += "  matrix (key-ops/s):\n"
	out += fmt.Sprintf("  %-10s %12s %12s %7s %10s %10s %12s\n",
		"frontends", "per-op", "batched", "ratio", "rounds", "quiet", "p99 b(us)")
	for _, row := range r.Rows {
		out += fmt.Sprintf("  %-10d %12.0f %12.0f %7.2f %10d %10d %12.1f\n",
			row.Frontends, row.PerOp.AchievedRPS, row.Batched.AchievedRPS, row.Ratio,
			row.Stats.Rounds, row.Stats.QuietMisses, row.Batched.P99.Micros())
	}
	if len(r.Rows) > 0 {
		row := r.Rows[0]
		total := float64(row.Stats.Rounds)
		if total > 0 {
			out += "  batched round sizes (N=1): "
			for i, label := range cluster.OpsPerBatchLabels {
				out += fmt.Sprintf("%s:%d ", label, row.Stats.OpsPerBatch[i])
			}
			out += "\n"
		}
	}
	out += fmt.Sprintf("  batched/per-op at N=1: %.2fx; batched scale-out across the sweep: %.2fx; net errors: %d\n",
		r.Ratio, r.ScaleOut, r.NetErrs)
	return out
}
