package experiments

import (
	"fmt"

	"ebbrt/internal/cluster"
	"ebbrt/internal/event"
	"ebbrt/internal/load"
	"ebbrt/internal/sim"
)

// HotKeyOptions tunes the hot-key caching experiment: the skewed-tail
// scaling sweep with the client Ebb's hot-key cache off vs on. The zero
// value selects the experiment's defaults.
type HotKeyOptions struct {
	// BackendCounts is the sweep (default {1, 2, 4, 8}).
	BackendCounts []int
	// PerBackendRPS is the offered load per backend; the aggregate for
	// a point is PerBackendRPS x backends (default 280000 - high enough
	// that the hot shard saturates in the uncached skewed tail).
	PerBackendRPS float64
	// CoresPerBackend sizes each backend (default 1).
	CoresPerBackend int
	// FrontendCores sizes the hosted frontend driving the client Ebb
	// (default 12: the frontend must not be the uncached bottleneck).
	FrontendCores int
	// Duration is the measured window per point (default 60ms).
	Duration sim.Time
	// KeySpace sizes the ETC population (default 6000).
	KeySpace int
	// ZipfSkew is the workload's key-popularity exponent (default 1.2:
	// the skewed tail the ROADMAP describes, where the top key alone
	// draws ~20% of accesses).
	ZipfSkew float64
	// RequestTimeout bounds one replica operation at the client. The
	// default (0) disables timeouts: this experiment drives healthy
	// backends into saturation, where a timeout would turn honest
	// queueing into bursts of failed operations instead of letting the
	// uncached curve cap at the hot shard's service rate.
	RequestTimeout sim.Time
	// Cache carries the hot-key cache knobs for the cache-on runs
	// (Enable is forced; zero fields select cluster defaults).
	Cache cluster.HotKeyOptions
	// RogueRPS, when positive, runs an independent, uncached writer
	// client alongside the cache-on runs, overwriting the hottest keys
	// at this rate - the staleness adversary the TTL and sampled
	// revalidation must bound (default 2000; negative disables).
	RogueRPS float64
	// RogueKeys is how many of the hottest keys the rogue writer
	// targets (default 32).
	RogueKeys int
	// Seed feeds the workload (default 42).
	Seed uint64
}

func (o *HotKeyOptions) applyDefaults() {
	if len(o.BackendCounts) == 0 {
		o.BackendCounts = []int{1, 2, 4, 8}
	}
	if o.PerBackendRPS <= 0 {
		o.PerBackendRPS = 280000
	}
	if o.CoresPerBackend <= 0 {
		o.CoresPerBackend = 1
	}
	if o.FrontendCores <= 0 {
		o.FrontendCores = 12
	}
	if o.Duration <= 0 {
		o.Duration = 60 * sim.Millisecond
	}
	if o.KeySpace <= 0 {
		o.KeySpace = 6000
	}
	if o.ZipfSkew <= 0 {
		o.ZipfSkew = 1.2
	}
	if o.RequestTimeout < 0 {
		o.RequestTimeout = 0
	}
	if o.RogueRPS == 0 {
		o.RogueRPS = 2000
	}
	if o.RogueKeys <= 0 {
		o.RogueKeys = 32
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// HotKeyRow is one backend count measured with the cache off and on.
type HotKeyRow struct {
	Backends int
	Offered  float64
	Off      load.ClusterLoadResult
	On       load.ClusterLoadResult
	// OffSpeedup / OnSpeedup are each mode's achieved RPS over its own
	// single-backend baseline - the scaling curves being compared.
	OffSpeedup float64
	OnSpeedup  float64
	// Cache is the cache-on run's hot-key counters.
	Cache cluster.HotKeyStats
}

// HotKeyResult is the full sweep plus the headline numbers.
type HotKeyResult struct {
	Opt  HotKeyOptions
	Rows []HotKeyRow
	// Improvement is OnSpeedup over OffSpeedup at the largest backend
	// count - how much of the skewed tail the cache recovers (the
	// acceptance target is >= 1.5 at 8 backends).
	Improvement float64
	// HotShare is the measured top-K key share of the offered stream
	// (from the load generator's per-key stats), the skew the cache is
	// absorbing.
	HotShare float64
	// Probe aggregates the cache-on runs' staleness probe: StaleServes
	// counts hits whose CAS lagged the owner, MaxStaleAge the oldest
	// such serve. TTLBounded reports MaxStaleAge <= TTL - the
	// bounded-staleness guarantee.
	Probe      cluster.HotKeyStats
	TTL        sim.Time
	TTLBounded bool
}

// HotKey sweeps backend counts under the skewed ETC workload through
// the frontend's client Ebb, once with the hot-key cache off and once
// with it on, and reports both scaling curves. The uncached curve caps
// where the hottest keys' owning shard saturates (the ROADMAP's
// Zipf-aware-placement blocker); the cached curve shows the client Ebb
// absorbing those reads before they reach the owner. A rogue uncached
// writer hammers the hottest keys during the cache-on runs so the
// staleness probe exercises - and verifies - the TTL bound.
func HotKey(opt HotKeyOptions) HotKeyResult {
	opt.applyDefaults()
	cacheOpt := opt.Cache
	cacheOpt.Enable = true
	cacheOpt.StalenessProbe = true
	cacheOpt = cacheOpt.WithDefaults()
	opt.Cache = cacheOpt

	out := HotKeyResult{Opt: opt, TTL: cacheOpt.TTL, TTLBounded: true}
	for _, n := range opt.BackendCounts {
		row := HotKeyRow{Backends: n, Offered: opt.PerBackendRPS * float64(n)}
		row.Off = hotKeyPoint(opt, n, cluster.HotKeyOptions{}, nil)
		var stats cluster.HotKeyStats
		row.On = hotKeyPoint(opt, n, cacheOpt, &stats)
		row.Cache = stats
		out.Probe.StaleServes += stats.StaleServes
		if stats.MaxStaleAge > out.Probe.MaxStaleAge {
			out.Probe.MaxStaleAge = stats.MaxStaleAge
		}
		if stats.MaxStaleAge > cacheOpt.TTL {
			out.TTLBounded = false
		}
		out.Rows = append(out.Rows, row)
	}
	offBase := out.Rows[0].Off.AchievedRPS
	onBase := out.Rows[0].On.AchievedRPS
	for i := range out.Rows {
		if offBase > 0 {
			out.Rows[i].OffSpeedup = out.Rows[i].Off.AchievedRPS / offBase
		}
		if onBase > 0 {
			out.Rows[i].OnSpeedup = out.Rows[i].On.AchievedRPS / onBase
		}
	}
	last := out.Rows[len(out.Rows)-1]
	if last.OffSpeedup > 0 {
		out.Improvement = last.OnSpeedup / last.OffSpeedup
	}
	out.HotShare = last.On.Keys.TopShare
	return out
}

// hotKeyPoint measures one backend count with the given cache
// configuration (zero = disabled). When probeStats is non-nil the run
// is a cache-on run: the client's hot-key counters are collected into
// it and the rogue writer runs alongside.
func hotKeyPoint(opt HotKeyOptions, backends int, cacheOpt cluster.HotKeyOptions, probeStats *cluster.HotKeyStats) load.ClusterLoadResult {
	cl := cluster.NewCluster(backends, cluster.Options{
		CoresPerBackend: opt.CoresPerBackend,
		Replicas:        1,
		FrontendCores:   opt.FrontendCores,
		HotKey:          cacheOpt,
	})
	front := cl.Sys.Frontend()
	cli := cluster.NewClientWithOptions(cl, front, cluster.ClientOptions{
		RequestTimeout: opt.RequestTimeout,
	})

	etc := load.DefaultETC()
	etc.KeySpace = opt.KeySpace
	etc.ZipfSkew = opt.ZipfSkew

	var events []load.ChaosEvent
	if probeStats != nil && opt.RogueRPS > 0 {
		// The rogue writer: an independent client Ebb (no cache) on the
		// same frontend, overwriting the hottest keys behind the cached
		// client's back. Its writes move the owners' CAS stamps, so every
		// cached copy of a hot key goes stale until TTL expiry or sampled
		// revalidation catches it - exactly the window the probe measures.
		rogue := cluster.NewClientWithOptions(cl, front, cluster.ClientOptions{
			RequestTimeout: opt.RequestTimeout,
			HotKey:         cluster.HotKeyOptions{Disable: true},
		})
		work := load.NewWorkload(etc, opt.Seed)
		rng := sim.NewRng(opt.Seed ^ 0x5bd1e995)
		k := cl.Sys.K
		mgrs := front.Runtime.Mgrs()
		interval := sim.Time(1e9 / opt.RogueRPS)
		end := sim.Time(0) // filled when the event fires (measurement start + duration)
		var tick func()
		tick = func() {
			if end == 0 {
				end = k.Now() + opt.Duration
			}
			if k.Now() >= end {
				return
			}
			keyIdx := rng.Intn(opt.RogueKeys)
			val := []byte(fmt.Sprintf("rogue-%d-%d", keyIdx, k.Now()))
			mgrs[rng.Intn(len(mgrs))].Spawn(func(c *event.Ctx) {
				rogue.Set(c, work.Keys[keyIdx], val, 0, nil)
			})
			k.After(interval, tick)
		}
		events = append(events, load.ChaosEvent{At: 0, Fn: tick})
	}

	res := load.RunClusterLoad(front.Runtime, clusterKV{cli: cli}, load.ClusterLoadConfig{
		TargetRPS: opt.PerBackendRPS * float64(backends),
		Warmup:    10 * sim.Millisecond,
		Duration:  opt.Duration,
		Seed:      opt.Seed,
		ETC:       etc,
		Events:    events,
	})
	if probeStats != nil {
		*probeStats = cli.HotKeyStats()
	}
	return res
}

// FormatHotKey renders the sweep as the cache-off vs cache-on scaling
// comparison plus the staleness verdict.
func FormatHotKey(r HotKeyResult) string {
	out := fmt.Sprintf("HotKey: skew %.2f over %d keys, %.0f RPS/backend, hot-key cache %d entries/core, TTL %.1fms\n",
		r.Opt.ZipfSkew, r.Opt.KeySpace, r.Opt.PerBackendRPS,
		r.Opt.Cache.Capacity, float64(r.TTL)/1e6)
	out += fmt.Sprintf("%-9s %10s | %10s %8s | %10s %8s %7s | %8s\n",
		"Backends", "Offered", "off RPS", "speedup", "on RPS", "speedup", "hit%", "improve")
	for _, row := range r.Rows {
		improve := 0.0
		if row.OffSpeedup > 0 {
			improve = row.OnSpeedup / row.OffSpeedup
		}
		out += fmt.Sprintf("%-9d %10.0f | %10.0f %7.2fx | %10.0f %7.2fx %6.1f%% | %7.2fx\n",
			row.Backends, row.Offered,
			row.Off.AchievedRPS, row.OffSpeedup,
			row.On.AchievedRPS, row.OnSpeedup, 100*row.Cache.HitRate(), improve)
	}
	out += fmt.Sprintf("hot-key share (top %d keys): %.1f%% of offered ops\n",
		len(r.Rows[len(r.Rows)-1].On.Keys.TopK), 100*r.HotShare)
	out += fmt.Sprintf("skewed-tail improvement at %d backends: %.2fx\n",
		r.Rows[len(r.Rows)-1].Backends, r.Improvement)
	verdict := "PASS"
	if !r.TTLBounded {
		verdict = "FAIL"
	}
	out += fmt.Sprintf("staleness probe: %d stale serves, max stale age %.3fms <= TTL %.3fms: %s\n",
		r.Probe.StaleServes, float64(r.Probe.MaxStaleAge)/1e6, float64(r.TTL)/1e6, verdict)
	return out
}
