package experiments

import (
	"fmt"

	"ebbrt/internal/cluster"
	"ebbrt/internal/event"
	"ebbrt/internal/load"
	"ebbrt/internal/sim"
)

// ReplicatedHotKeyOptions tunes the replicated hot-key experiment: the
// skewed ETC workload at R>1 with the full hot-key fix - replica-wide
// version stamps, the client read cache, and salted hot-write spreading
// - measured against the cache-off, spread-off baseline on the same
// cluster shape. The zero value selects the defaults.
type ReplicatedHotKeyOptions struct {
	// Backends is the cluster size (default 8).
	Backends int
	// Replicas is the replication factor (default 3 - the configuration
	// whose CAS coherence hole this experiment reproduces closed).
	Replicas int
	// PerBackendRPS is the offered load per backend (default 280000).
	PerBackendRPS float64
	// CoresPerBackend sizes each backend (default 1).
	CoresPerBackend int
	// FrontendCores sizes the hosted frontend (default 12).
	FrontendCores int
	// Duration is the measured window per run (default 60ms).
	Duration sim.Time
	// KeySpace sizes the ETC population (default 6000).
	KeySpace int
	// ZipfSkew is the key-popularity exponent (default 1.2).
	ZipfSkew float64
	// RequestTimeout bounds one replica operation (0 disables - this
	// experiment saturates healthy backends).
	RequestTimeout sim.Time
	// Cache carries the hot-key cache knobs for the fixed run (Enable
	// and StalenessProbe are forced).
	Cache cluster.HotKeyOptions
	// HotWrite carries the salted write-spreading knobs for the fixed
	// run (Enable is forced).
	HotWrite cluster.HotWriteOptions
	// RogueRPS runs an independent uncached writer against the hottest
	// keys during the fixed run (default 2000; negative disables).
	RogueRPS float64
	// RogueKeys is how many of the hottest keys the rogue targets
	// (default 32).
	RogueKeys int
	// Seed feeds the workload (default 42).
	Seed uint64
}

func (o *ReplicatedHotKeyOptions) applyDefaults() {
	if o.Backends <= 0 {
		o.Backends = 8
	}
	if o.Replicas <= 0 {
		o.Replicas = 3
	}
	if o.PerBackendRPS <= 0 {
		o.PerBackendRPS = 280000
	}
	if o.CoresPerBackend <= 0 {
		o.CoresPerBackend = 1
	}
	if o.FrontendCores <= 0 {
		o.FrontendCores = 12
	}
	if o.Duration <= 0 {
		o.Duration = 60 * sim.Millisecond
	}
	if o.KeySpace <= 0 {
		o.KeySpace = 6000
	}
	if o.ZipfSkew <= 0 {
		o.ZipfSkew = 1.2
	}
	if o.RequestTimeout < 0 {
		o.RequestTimeout = 0
	}
	if o.RogueRPS == 0 {
		o.RogueRPS = 2000
	}
	if o.RogueKeys <= 0 {
		o.RogueKeys = 32
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// ReplicatedHotKeyResult is the R>1 comparison plus its verdicts.
type ReplicatedHotKeyResult struct {
	Opt ReplicatedHotKeyOptions
	// Off is the baseline: same cluster shape, no cache, no spreading.
	Off load.ClusterLoadResult
	// On is the fixed configuration: replica-coherent cache plus salted
	// write spreading, under the rogue writer.
	On load.ClusterLoadResult
	// Improvement is On over Off achieved RPS - the headline number (the
	// acceptance target is >= 1.5 at 8 backends, R=3).
	Improvement float64
	// Cache is the fixed run's hot-key cache counters; HotWrite the
	// deployment's write-spreading counters.
	Cache    cluster.HotKeyStats
	HotWrite cluster.HotWriteStats
	// OffMaxShare / OnMaxShare are the hottest backend's share of all
	// backend-served requests in each run - how concentrated the skew
	// leaves the cluster before and after the fix.
	OffMaxShare float64
	OnMaxShare  float64
	// HotShare is the offered top-K key share (the skew being absorbed).
	HotShare float64
	// Staleness verdict for the fixed run, under the rogue writer: the
	// probe peeks every live owner of every shard, and the TTL is the
	// hard bound.
	TTL        sim.Time
	TTLBounded bool
}

// ReplicatedHotKey measures the hot-key fix end to end at R>1: one
// cache-off, spread-off baseline run and one run with replica-coherent
// caching plus salted hot-write spreading, both on the same cluster
// shape under the same skewed workload. A rogue uncached writer hammers
// the hottest keys during the fixed run, so the staleness probe - which
// peeks every live replica of every salted shard, meaningful now that
// stamps are replica-wide - verifies the TTL bound under adversarial
// writes at R=3.
func ReplicatedHotKey(opt ReplicatedHotKeyOptions) ReplicatedHotKeyResult {
	opt.applyDefaults()
	cacheOpt := opt.Cache
	cacheOpt.Enable = true
	cacheOpt.StalenessProbe = true
	cacheOpt = cacheOpt.WithDefaults()
	opt.Cache = cacheOpt
	spreadOpt := opt.HotWrite
	spreadOpt.Enable = true
	spreadOpt = spreadOpt.WithDefaults()
	opt.HotWrite = spreadOpt

	out := ReplicatedHotKeyResult{Opt: opt, TTL: cacheOpt.TTL}
	out.Off, out.OffMaxShare, _, _ = replicatedPoint(opt, cluster.HotKeyOptions{}, cluster.HotWriteOptions{}, nil)
	var stats cluster.HotKeyStats
	out.On, out.OnMaxShare, out.HotWrite, out.HotShare = replicatedPoint(opt, cacheOpt, spreadOpt, &stats)
	out.Cache = stats
	out.TTLBounded = stats.MaxStaleAge <= cacheOpt.TTL
	if out.Off.AchievedRPS > 0 {
		out.Improvement = out.On.AchievedRPS / out.Off.AchievedRPS
	}
	return out
}

// replicatedPoint measures one run. When probeStats is non-nil the run
// is the fixed configuration: counters are collected and the rogue
// writer runs alongside. The returned maxShare is the hottest backend's
// fraction of all backend-served requests.
func replicatedPoint(opt ReplicatedHotKeyOptions, cacheOpt cluster.HotKeyOptions, spreadOpt cluster.HotWriteOptions, probeStats *cluster.HotKeyStats) (load.ClusterLoadResult, float64, cluster.HotWriteStats, float64) {
	cl := cluster.NewCluster(opt.Backends, cluster.Options{
		CoresPerBackend: opt.CoresPerBackend,
		Replicas:        opt.Replicas,
		FrontendCores:   opt.FrontendCores,
		HotKey:          cacheOpt,
		HotWrite:        spreadOpt,
	})
	front := cl.Sys.Frontend()
	cli := cluster.NewClientWithOptions(cl, front, cluster.ClientOptions{
		RequestTimeout: opt.RequestTimeout,
	})

	etc := load.DefaultETC()
	etc.KeySpace = opt.KeySpace
	etc.ZipfSkew = opt.ZipfSkew

	var events []load.ChaosEvent
	if probeStats != nil && opt.RogueRPS > 0 {
		// The rogue writer: an independent uncached client overwriting
		// the hottest keys behind the cached client's back. Its writes are
		// coordinator-stamped like any other, so every live owner's store
		// moves to a strictly newer replica-wide stamp - the staleness the
		// probe's all-owner peek measures against the TTL.
		rogue := cluster.NewClientWithOptions(cl, front, cluster.ClientOptions{
			RequestTimeout: opt.RequestTimeout,
			HotKey:         cluster.HotKeyOptions{Disable: true},
		})
		work := load.NewWorkload(etc, opt.Seed)
		rng := sim.NewRng(opt.Seed ^ 0x5bd1e995)
		k := cl.Sys.K
		mgrs := front.Runtime.Mgrs()
		interval := sim.Time(1e9 / opt.RogueRPS)
		end := sim.Time(0)
		var tick func()
		tick = func() {
			if end == 0 {
				end = k.Now() + opt.Duration
			}
			if k.Now() >= end {
				return
			}
			keyIdx := rng.Intn(opt.RogueKeys)
			val := []byte(fmt.Sprintf("rogue-%d-%d", keyIdx, k.Now()))
			mgrs[rng.Intn(len(mgrs))].Spawn(func(c *event.Ctx) {
				rogue.Set(c, work.Keys[keyIdx], val, 0, nil)
			})
			k.After(interval, tick)
		}
		events = append(events, load.ChaosEvent{At: 0, Fn: tick})
	}

	res := load.RunClusterLoad(front.Runtime, clusterKV{cli: cli}, load.ClusterLoadConfig{
		TargetRPS: opt.PerBackendRPS * float64(opt.Backends),
		Warmup:    10 * sim.Millisecond,
		Duration:  opt.Duration,
		Seed:      opt.Seed,
		ETC:       etc,
		Events:    events,
	})
	if probeStats != nil {
		*probeStats = cli.HotKeyStats()
	}
	var total, maxReq uint64
	for _, b := range cl.Backends {
		total += b.Srv.Requests
		if b.Srv.Requests > maxReq {
			maxReq = b.Srv.Requests
		}
	}
	maxShare := 0.0
	if total > 0 {
		maxShare = float64(maxReq) / float64(total)
	}
	return res, maxShare, cl.HotWriteStats(), res.Keys.TopShare
}

// FormatReplicatedHotKey renders the R>1 comparison.
func FormatReplicatedHotKey(r ReplicatedHotKeyResult) string {
	out := fmt.Sprintf("ReplicatedHotKey: %d backends, R=%d, skew %.2f over %d keys, %.0f RPS/backend\n",
		r.Opt.Backends, r.Opt.Replicas, r.Opt.ZipfSkew, r.Opt.KeySpace, r.Opt.PerBackendRPS)
	out += fmt.Sprintf("%-22s %12s %10s %10s %12s\n",
		"", "achieved RPS", "p99 (us)", "netErrs", "hottest-node")
	out += fmt.Sprintf("%-22s %12.0f %10.1f %10d %11.1f%%\n",
		"baseline (no fix)", r.Off.AchievedRPS, r.Off.P99.Micros(), r.Off.NetErrs, 100*r.OffMaxShare)
	out += fmt.Sprintf("%-22s %12.0f %10.1f %10d %11.1f%%\n",
		"cache + write spread", r.On.AchievedRPS, r.On.P99.Micros(), r.On.NetErrs, 100*r.OnMaxShare)
	out += fmt.Sprintf("improvement at %d backends, R=%d: %.2fx (hit rate %.1f%%, hot share %.1f%%)\n",
		r.Opt.Backends, r.Opt.Replicas, r.Improvement, 100*r.Cache.HitRate(), 100*r.HotShare)
	out += fmt.Sprintf("write spreading: %d keys promoted, %d salted writes, %d targeted reads (%d fan-in fallbacks)\n",
		r.HotWrite.Promoted, r.HotWrite.SaltedWrites, r.HotWrite.SaltedReads, r.HotWrite.SaltedFanIns)
	verdict := "PASS"
	if !r.TTLBounded {
		verdict = "FAIL"
	}
	out += fmt.Sprintf("staleness probe (all owners, all shards): %d stale serves, max stale age %.3fms <= TTL %.3fms: %s\n",
		r.Cache.StaleServes, float64(r.Cache.MaxStaleAge)/1e6, float64(r.TTL)/1e6, verdict)
	return out
}
