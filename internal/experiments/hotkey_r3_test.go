package experiments

import (
	"testing"

	"ebbrt/internal/cluster"
	"ebbrt/internal/sim"
)

// TestReplicatedHotKeySmoke is the R>1 experiment's smoke-scale
// acceptance: at 8 backends with R=3, the replica-coherent cache plus
// salted write spreading must beat the unfixed baseline by the
// committed 1.5x floor (benchguard and the CI smoke gate on the same
// number), genuinely engage the spread path, leave the cluster less
// concentrated on its hottest node, and never serve a hit staler than
// the TTL even with the rogue writer moving every replica's stamp
// behind the cache's back.
func TestReplicatedHotKeySmoke(t *testing.T) {
	res := ReplicatedHotKey(ReplicatedHotKeyOptions{
		Duration: 40 * sim.Millisecond,
		KeySpace: 4000,
		Cache:    cluster.HotKeyOptions{PromoteMin: 4},
	})
	t.Log("\n" + FormatReplicatedHotKey(res))

	if res.Improvement < 1.5 {
		t.Fatalf("R=%d improvement %.2fx at %d backends, want >= 1.5x",
			res.Opt.Replicas, res.Improvement, res.Opt.Backends)
	}
	if hr := res.Cache.HitRate(); hr < 0.3 {
		t.Fatalf("cache hit rate %.2f, want >= 0.3 under skew %.2f", hr, res.Opt.ZipfSkew)
	}
	// The spread path must actually carry load: promoted keys taking
	// round-robined writes, reads going through the targeted-shard path.
	if res.HotWrite.Promoted == 0 || res.HotWrite.SaltedWrites == 0 {
		t.Fatalf("write spreading never engaged: %d promoted, %d salted writes",
			res.HotWrite.Promoted, res.HotWrite.SaltedWrites)
	}
	if res.HotWrite.SaltedReads == 0 {
		t.Fatal("no reads went through the spread-key path")
	}
	// Targeted reads exist to keep spread reads ~1x cost; if most reads
	// fall back to the K-way fan-in the optimization has regressed.
	if res.HotWrite.SaltedFanIns*4 > res.HotWrite.SaltedReads {
		t.Fatalf("fan-in fallbacks %d out of %d spread reads - targeted path not holding",
			res.HotWrite.SaltedFanIns, res.HotWrite.SaltedReads)
	}
	if res.OnMaxShare >= res.OffMaxShare {
		t.Fatalf("hottest-node share %.3f not below baseline %.3f - spreading had no balancing effect",
			res.OnMaxShare, res.OffMaxShare)
	}
	// The rogue writer guarantees the probe sees genuinely stale hits;
	// the TTL guarantees none of them - on any replica of any shard - is
	// older than the bound.
	if res.Cache.StaleServes == 0 {
		t.Fatal("staleness probe never fired despite the rogue writer")
	}
	if !res.TTLBounded {
		t.Fatalf("stale serve exceeded TTL: max age %v > %v", res.Cache.MaxStaleAge, res.TTL)
	}
}
