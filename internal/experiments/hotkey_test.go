package experiments

import (
	"testing"

	"ebbrt/internal/cluster"
	"ebbrt/internal/sim"
)

// TestHotKeyCacheImprovesSkewedTail is the experiment's smoke-scale
// acceptance: at 4 backends under the skewed workload, the hot-key
// cache must recover a measurable share of the tail (the full 8-backend
// sweep in CI shows ~1.8x; the floor here is conservative for a short
// window), serve a real fraction of reads locally, and never serve a
// hit staler than the TTL even with the rogue writer hammering the
// hottest keys.
func TestHotKeyCacheImprovesSkewedTail(t *testing.T) {
	res := HotKey(HotKeyOptions{
		BackendCounts: []int{1, 4},
		Duration:      40 * sim.Millisecond,
		KeySpace:      4000,
		Cache:         cluster.HotKeyOptions{PromoteMin: 4},
	})
	t.Log("\n" + FormatHotKey(res))

	tail := res.Rows[len(res.Rows)-1]
	if res.Improvement < 1.1 {
		t.Fatalf("skewed-tail improvement %.2fx at %d backends, want >= 1.1x", res.Improvement, tail.Backends)
	}
	if tail.OnSpeedup <= tail.OffSpeedup {
		t.Fatalf("cache-on speedup %.2fx not above cache-off %.2fx", tail.OnSpeedup, tail.OffSpeedup)
	}
	if hr := tail.Cache.HitRate(); hr < 0.3 {
		t.Fatalf("cache hit rate %.2f, want >= 0.3 under skew %.2f", hr, res.Opt.ZipfSkew)
	}
	if res.HotShare < 0.3 {
		t.Fatalf("measured hot-key share %.2f - workload not skewed as configured", res.HotShare)
	}
	// The rogue writer guarantees the probe sees genuinely stale hits;
	// the TTL guarantees none of them is older than the bound.
	if res.Probe.StaleServes == 0 {
		t.Fatal("staleness probe never fired despite the rogue writer")
	}
	if !res.TTLBounded {
		t.Fatalf("stale serve exceeded TTL: max age %v > %v", res.Probe.MaxStaleAge, res.TTL)
	}
}
