package experiments

import (
	"fmt"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/cluster"
	"ebbrt/internal/gpos"
	"ebbrt/internal/load"
	"ebbrt/internal/machine"
	"ebbrt/internal/netstack"
	"ebbrt/internal/sim"
)

// LossyOptions tunes the lossy-link experiment: the same sharded
// workload as the scaling runs, but with uniform random frame loss
// injected at the switch, comparing the self-tuning TCP data path
// (adaptive RTO + fast retransmit) against the fixed-RTO baseline.
type LossyOptions struct {
	// Backends is the native backend count (default 4).
	Backends int
	// CoresPerBackend sizes each backend (default 1).
	CoresPerBackend int
	// Replicas is the replication factor R (default 2).
	Replicas int
	// FrontendCores sizes the hosted frontend (default 4).
	FrontendCores int
	// TargetRPS is the offered load (default 20000).
	TargetRPS float64
	// Duration is the measured window (default 100ms).
	Duration sim.Time
	// LossRates are the frame-loss probabilities swept (default
	// 1%, 5%, 10%). Loss applies to every frame crossing the switch
	// once measurement starts; prepopulation and warmup run clean so
	// the comparison isolates steady-state loss recovery.
	LossRates []float64
	// KeySpace sizes the ETC key population (default 2000).
	KeySpace int
	// Seed feeds the workload, arrivals, and the loss process.
	Seed uint64
}

func (o *LossyOptions) applyDefaults() {
	if o.Backends <= 0 {
		o.Backends = 4
	}
	if o.CoresPerBackend <= 0 {
		o.CoresPerBackend = 1
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.FrontendCores <= 0 {
		o.FrontendCores = 4
	}
	if o.TargetRPS <= 0 {
		o.TargetRPS = 20000
	}
	if o.Duration <= 0 {
		o.Duration = 100 * sim.Millisecond
	}
	if len(o.LossRates) == 0 {
		o.LossRates = []float64{0.01, 0.05, 0.10}
	}
	if o.KeySpace <= 0 {
		o.KeySpace = 2000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// LossyRun is one cluster measurement under loss.
type LossyRun struct {
	Load load.ClusterLoadResult
	// Tcp aggregates retransmission activity across every node's stack.
	Tcp netstack.TcpStats
	// DroppedFrames counts frames the switch discarded during the run.
	DroppedFrames uint64
}

// LossyPoint compares the two retransmission policies at one loss rate.
type LossyPoint struct {
	LossRate float64
	Adaptive LossyRun
	Fixed    LossyRun
	// ThroughputRatio is adaptive / fixed completed throughput. When
	// the fixed baseline completes nothing inside the window the ratio
	// reports 999 (effectively infinite) rather than dividing by zero.
	ThroughputRatio float64
}

// LossyResult is the full sweep.
type LossyResult struct {
	Opt    LossyOptions
	Points []LossyPoint
}

// lossDropper returns a deterministic per-frame drop decision: a
// splitmix64 hash of the frame index against the loss probability, so
// a given (seed, rate) pair always drops the same frame sequence.
func lossDropper(seed uint64, rate float64) func(index uint64, f machine.Frame) bool {
	threshold := uint64(rate * float64(1<<63) * 2)
	return func(index uint64, f machine.Frame) bool {
		x := index + seed + 0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return x < threshold
	}
}

// aggregateTcpStats sums retransmission counters across every node in
// the deployment (native backends and the GPOS frontend alike).
func aggregateTcpStats(cl *cluster.Cluster) netstack.TcpStats {
	var sum netstack.TcpStats
	for _, n := range cl.Sys.Nodes {
		var itf *netstack.Interface
		switch rt := n.Runtime.(type) {
		case *appnet.Native:
			itf = rt.Itf
		case *gpos.Runtime:
			itf = rt.Itf
		}
		if itf == nil {
			continue
		}
		s := itf.TcpStats()
		sum.Retransmits += s.Retransmits
		sum.FastRetransmits += s.FastRetransmits
		sum.PersistProbes += s.PersistProbes
	}
	return sum
}

// runLossy boots a fresh cluster with the given stack configuration and
// measures the ETC workload with frame loss starting at measurement
// start. The client runs without request timeouts: recovery is the
// transport's job, which is exactly what is under test.
func runLossy(opt LossyOptions, rate float64, net netstack.Config) LossyRun {
	cl := cluster.NewCluster(opt.Backends, cluster.Options{
		CoresPerBackend: opt.CoresPerBackend,
		Replicas:        opt.Replicas,
		FrontendCores:   opt.FrontendCores,
		Net:             net,
	})
	front := cl.Sys.Frontend()
	cli := cluster.NewClientWithOptions(cl, front, cluster.ClientOptions{
		RequestTimeout: 0, // transport-only recovery
	})

	var droppedFrames uint64
	drop := lossDropper(opt.Seed, rate)
	etc := load.DefaultETC()
	etc.KeySpace = opt.KeySpace
	res := load.RunClusterLoad(front.Runtime, clusterKV{cli: cli}, load.ClusterLoadConfig{
		TargetRPS: opt.TargetRPS,
		Warmup:    10 * sim.Millisecond,
		Duration:  opt.Duration,
		Seed:      opt.Seed,
		ETC:       etc,
		Events: []load.ChaosEvent{{
			At: 0, // loss begins exactly at measurement start
			Fn: func() {
				cl.Sys.Switch.DropFn = func(index uint64, f machine.Frame) bool {
					if drop(index, f) {
						droppedFrames++
						return true
					}
					return false
				}
			},
		}},
	})
	return LossyRun{Load: res, Tcp: aggregateTcpStats(cl), DroppedFrames: droppedFrames}
}

// AdaptiveNetConfig is the self-tuning data path (the default stack).
func AdaptiveNetConfig() netstack.Config { return netstack.DefaultConfig() }

// FixedNetConfig is the pre-self-tuning baseline: one static 200ms RTO,
// no RTT estimation, no fast retransmit.
func FixedNetConfig() netstack.Config {
	cfg := netstack.DefaultConfig()
	cfg.AdaptiveRTO = false
	cfg.FastRetransmit = false
	return cfg
}

// Lossy sweeps frame-loss rates over identical deployments, one pair of
// runs per rate: the adaptive data path versus the fixed-RTO baseline.
// On the simulated 10Gb/s datacenter link the RTT is microseconds, so a
// fixed 200ms RTO turns every lost segment into a five-orders-of-
// magnitude stall; the estimator retries at ~1ms and fast retransmit
// repairs windowed flows in one RTT. The gap widens with the loss rate
// because pooled connections serialize requests behind each stall.
func Lossy(opt LossyOptions) LossyResult {
	opt.applyDefaults()
	out := LossyResult{Opt: opt}
	for _, rate := range opt.LossRates {
		p := LossyPoint{
			LossRate: rate,
			Adaptive: runLossy(opt, rate, AdaptiveNetConfig()),
			Fixed:    runLossy(opt, rate, FixedNetConfig()),
		}
		if f := p.Fixed.Load.AchievedRPS; f > 0 {
			p.ThroughputRatio = p.Adaptive.Load.AchievedRPS / f
		} else {
			p.ThroughputRatio = 999
		}
		out.Points = append(out.Points, p)
	}
	return out
}

// FormatLossy renders the sweep as a comparison table.
func FormatLossy(r LossyResult) string {
	out := fmt.Sprintf("Lossy link: %d backends, R=%d, %.0f RPS offered, %.0fms window, loss at the switch\n",
		r.Opt.Backends, r.Opt.Replicas, r.Opt.TargetRPS, float64(r.Opt.Duration)/1e6)
	out += fmt.Sprintf("  %-6s | %10s %9s %9s | %10s %9s %9s | %7s\n",
		"loss", "adapt RPS", "p99(us)", "rexmit", "fixed RPS", "p99(us)", "rexmit", "ratio")
	for _, p := range r.Points {
		out += fmt.Sprintf("  %5.1f%% | %10.0f %9.1f %9d | %10.0f %9.1f %9d | %6.1fx\n",
			100*p.LossRate,
			p.Adaptive.Load.AchievedRPS, p.Adaptive.Load.P99.Micros(), p.Adaptive.Tcp.Retransmits,
			p.Fixed.Load.AchievedRPS, p.Fixed.Load.P99.Micros(), p.Fixed.Tcp.Retransmits,
			p.ThroughputRatio)
	}
	for _, p := range r.Points {
		out += fmt.Sprintf("  %4.1f%%: adaptive dropped %d frames, %d fast rexmit, %d persist probes; fixed dropped %d, %d net errors\n",
			100*p.LossRate,
			p.Adaptive.DroppedFrames, p.Adaptive.Tcp.FastRetransmits, p.Adaptive.Tcp.PersistProbes,
			p.Fixed.DroppedFrames, p.Fixed.Load.NetErrs)
	}
	return out
}
