package experiments

import (
	"testing"

	"ebbrt/internal/sim"
)

// TestLossyAdaptiveSurvivesLoss is the chaos acceptance check for the
// self-tuning data path: at 5% uniform frame loss the replicated
// workload (no client request timeouts - recovery is the transport's
// job) must complete with zero failed client callbacks, no stuck
// flows, and throughput within 10% of offered, while the fixed-RTO
// baseline on the identical deployment collapses behind 200ms
// head-of-line stalls.
func TestLossyAdaptiveSurvivesLoss(t *testing.T) {
	res := Lossy(LossyOptions{
		Backends:  2,
		Replicas:  2,
		TargetRPS: 10000,
		Duration:  80 * sim.Millisecond,
		LossRates: []float64{0.05},
	})
	t.Logf("\n%s", FormatLossy(res))
	p := res.Points[0]

	if p.Adaptive.DroppedFrames == 0 {
		t.Fatal("loss injection vacuous: the switch dropped nothing")
	}
	if p.Adaptive.Tcp.Retransmits == 0 {
		t.Fatal("no retransmissions despite 5% frame loss")
	}
	// Zero failed client callbacks: every operation either completed or
	// was still riding a live retransmitting connection at window end.
	if n := p.Adaptive.Load.NetErrs; n != 0 {
		t.Errorf("%d failed client callbacks under loss, want 0", n)
	}
	// No stuck flows: the last timeline bucket is still completing work
	// (a deadlocked connection pool would flatline the tail).
	last := p.Adaptive.Load.Timeline[len(p.Adaptive.Load.Timeline)-1]
	if last.Completed == 0 {
		t.Error("no completions in the final bucket: flows stuck at window end")
	}
	if got, want := p.Adaptive.Load.AchievedRPS, 0.9*res.Opt.TargetRPS; got < want {
		t.Errorf("adaptive achieved %.0f RPS under 5%% loss, want >= %.0f", got, want)
	}
	// Fast retransmit must be carrying part of the recovery: windowed
	// flows repair single drops in one RTT instead of waiting out RTO.
	if p.Adaptive.Tcp.FastRetransmits == 0 {
		t.Error("fast-retransmit path never exercised at 5% loss")
	}
	// The headline claim (also enforced as a benchguard floor): the
	// adaptive path beats the fixed 200ms RTO by >= 1.5x at 5% loss.
	if p.ThroughputRatio < 1.5 {
		t.Errorf("adaptive/fixed throughput ratio %.2f at 5%% loss, want >= 1.5", p.ThroughputRatio)
	}
}
