package experiments

import (
	"fmt"

	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/cluster"
	"ebbrt/internal/event"
	"ebbrt/internal/load"
	"ebbrt/internal/sim"
)

// MemoryPressureOptions tunes the bounded-store experiment: the ETC
// workload offered a dataset PressureFactor times the deployment's
// aggregate memory budget, so the slab-classed eviction policy - not
// the allocator - decides what stays resident. The zero value selects
// the defaults.
type MemoryPressureOptions struct {
	// Backends is the shard count (default 2).
	Backends int
	// CoresPerBackend sizes each backend (default 1).
	CoresPerBackend int
	// FrontendCores sizes the hosted frontend (default 4).
	FrontendCores int
	// BudgetBytes is each backend's store budget (default 8 MiB, the
	// page allocator's minimum block).
	BudgetBytes uint64
	// PressureFactor sizes the offered dataset relative to the aggregate
	// budget (default 2: half the population cannot be resident).
	PressureFactor float64
	// TargetRPS is the offered load (default 120000).
	TargetRPS float64
	// Duration is the measured window (default 60ms).
	Duration sim.Time
	// ValueMean is the ETC value-size mean (default 1200 - large enough
	// that the population actually spans the slab classes).
	ValueMean float64
	// ZipfSkew is the key-popularity exponent (default 1.2: a hot head
	// the LRU should keep resident and the hot-key cache should absorb).
	ZipfSkew float64
	// ExpireEvery marks every Nth key with a 1-second exptime (default
	// 10); the post-run probe advances past the deadline and verifies
	// not one of them is served from any layer.
	ExpireEvery int
	// Cache carries the hot-key cache knobs (Enable is forced on).
	Cache cluster.HotKeyOptions
	// Seed feeds the workload (default 42).
	Seed uint64
}

func (o *MemoryPressureOptions) applyDefaults() {
	if o.Backends <= 0 {
		o.Backends = 2
	}
	if o.CoresPerBackend <= 0 {
		o.CoresPerBackend = 1
	}
	if o.FrontendCores <= 0 {
		o.FrontendCores = 4
	}
	if o.BudgetBytes == 0 {
		o.BudgetBytes = 8 << 20
	}
	if o.PressureFactor <= 0 {
		o.PressureFactor = 2
	}
	if o.TargetRPS <= 0 {
		o.TargetRPS = 120000
	}
	if o.Duration <= 0 {
		o.Duration = 60 * sim.Millisecond
	}
	if o.ValueMean <= 0 {
		o.ValueMean = 1200
	}
	if o.ZipfSkew <= 0 {
		o.ZipfSkew = 1.2
	}
	if o.ExpireEvery <= 0 {
		o.ExpireEvery = 10
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// MemoryPressureRow is one eviction policy measured under pressure.
type MemoryPressureRow struct {
	Policy  string
	Load    load.ClusterLoadResult
	HitRate float64
	// Stores aggregates the backends' bounded-store counters; PeakBytes
	// and BudgetBytes are per-backend maxima (the bound being gated).
	Stores memcached.BoundedStoreStats
	// MemBounded reports PeakBytes <= BudgetBytes on every backend.
	MemBounded bool
	// Cache is the client's hot-key counters for this run.
	Cache cluster.HotKeyStats
	// ExpiredServed counts post-deadline reads of expiring keys that
	// still returned a value - from the store or any core's cache. The
	// acceptance gate is zero.
	ExpiredServed int
	// StoreLiveExpired counts expired entries a backend store still
	// reported as live after the deadline (must be zero; physically
	// resident-but-dead is fine, lazily reclaimed on touch).
	StoreLiveExpired int
	// ProbeKeys is how many expiring keys the probe checked.
	ProbeKeys int
}

// MemoryPressureResult is the LRU-vs-FIFO comparison.
type MemoryPressureResult struct {
	Opt  MemoryPressureOptions
	Rows []MemoryPressureRow
	// LRUAdvantage is the LRU row's hit rate minus the FIFO row's - what
	// recency tracking buys under a skewed workload at 2x pressure.
	LRUAdvantage float64
}

// mempKV adapts the client to the load generator, attaching an exptime
// to every write of a probe key so expiry runs under real pressure, and
// running the canonical cache-aside pattern: a read miss refills the
// key (the "database fetch + set" every memcached deployment does).
// The refill is what makes eviction policy observable - under demand
// fill, popularity drives insertion, so an LRU that keeps the re-read
// keys resident sustains a higher hit rate than a FIFO that ages them
// out regardless of use.
type mempKV struct {
	cli     *cluster.Client
	exptime map[string]int64
	fill    map[string][]byte
}

func (a mempKV) Get(c *event.Ctx, key []byte, done func(c *event.Ctx, o load.OpOutcome)) {
	a.cli.Get(c, key, func(c *event.Ctx, r cluster.Response) {
		o := outcome(r)
		if o.Miss {
			if v, ok := a.fill[string(key)]; ok {
				a.cli.SetWithExpiry(c, key, v, 0, a.exptime[string(key)], nil)
			}
		}
		done(c, o)
	})
}

func (a mempKV) Set(c *event.Ctx, key, value []byte, done func(c *event.Ctx, o load.OpOutcome)) {
	a.cli.SetWithExpiry(c, key, value, 0, a.exptime[string(key)], func(c *event.Ctx, r cluster.Response) {
		done(c, outcome(r))
	})
}

// MemoryPressure runs the ETC workload against bounded backend stores
// holding PressureFactor times less than the offered population, once
// per eviction policy, and reports hit rate, the memory bound, and the
// expiry probe. The hot-key cache stays on: under a Zipf head the cache
// absorbs the hottest reads, so the store's LRU capacity is spent on
// the warm middle - the "cache holds the tail" claim the README quotes.
func MemoryPressure(opt MemoryPressureOptions) MemoryPressureResult {
	opt.applyDefaults()
	cacheOpt := opt.Cache
	cacheOpt.Enable = true
	cacheOpt = cacheOpt.WithDefaults()
	opt.Cache = cacheOpt

	out := MemoryPressureResult{Opt: opt}
	for _, policy := range []memcached.EvictionPolicy{memcached.EvictLRU, memcached.EvictFIFO} {
		out.Rows = append(out.Rows, memoryPressurePoint(opt, policy))
	}
	out.LRUAdvantage = out.Rows[0].HitRate - out.Rows[1].HitRate
	return out
}

func memoryPressurePoint(opt MemoryPressureOptions, policy memcached.EvictionPolicy) MemoryPressureRow {
	row := MemoryPressureRow{Policy: policy.String()}

	// The store factory runs inside NewCluster, before the kernel
	// reference exists; the clock indirects through kern so eviction
	// scans see real sim time once the deployment is live.
	var kern *sim.Kernel
	clock := func() sim.Time {
		if kern == nil {
			return 0
		}
		return kern.Now()
	}
	var stores []*memcached.BoundedStore
	cl := cluster.NewCluster(opt.Backends, cluster.Options{
		CoresPerBackend: opt.CoresPerBackend,
		Replicas:        1,
		FrontendCores:   opt.FrontendCores,
		HotKey:          opt.Cache,
		Store: func() memcached.Store {
			s := memcached.NewBoundedStore(opt.BudgetBytes, policy, clock)
			stores = append(stores, s)
			return s
		},
	})
	kern = cl.Sys.K
	front := cl.Sys.Frontend()
	cli := cluster.NewClientWithOptions(cl, front, cluster.ClientOptions{})

	// Size the population to PressureFactor x the aggregate budget.
	etc := load.DefaultETC()
	etc.ValueMean = opt.ValueMean
	etc.ValueMax = 4096
	etc.ZipfSkew = opt.ZipfSkew
	perItem := opt.ValueMean + 45 + 56 // value + mean ETC key + item overhead
	etc.KeySpace = int(opt.PressureFactor * float64(opt.BudgetBytes) * float64(opt.Backends) / perItem)

	// Every ExpireEvery-th key writes with a 1-second exptime. The
	// population is rebuilt here (same config and seed as the run's) to
	// know the key bytes up front.
	work := load.NewWorkload(etc, opt.Seed)
	exptime := make(map[string]int64, len(work.Keys)/opt.ExpireEvery+1)
	fill := make(map[string][]byte, len(work.Keys))
	var probeKeys [][]byte
	for i, key := range work.Keys {
		fill[string(key)] = work.Values[i]
		if i%opt.ExpireEvery == 0 {
			exptime[string(key)] = 1
			probeKeys = append(probeKeys, key)
		}
	}

	row.Load = load.RunClusterLoad(front.Runtime, mempKV{cli: cli, exptime: exptime, fill: fill}, load.ClusterLoadConfig{
		TargetRPS: opt.TargetRPS,
		Warmup:    10 * sim.Millisecond,
		Duration:  opt.Duration,
		Seed:      opt.Seed,
		ETC:       etc,
	})
	if reads := row.Load.Hits + row.Load.Misses; reads > 0 {
		row.HitRate = float64(row.Load.Hits) / float64(reads)
	}
	row.Cache = cli.HotKeyStats()

	row.MemBounded = true
	for _, s := range stores {
		st := s.Stats()
		row.Stores.Items += st.Items
		row.Stores.ItemBytes += st.ItemBytes
		row.Stores.Evictions += st.Evictions
		row.Stores.Expired += st.Expired
		row.Stores.Rejected += st.Rejected
		if st.PeakBytes > row.Stores.PeakBytes {
			row.Stores.PeakBytes = st.PeakBytes
		}
		row.Stores.BudgetBytes = st.BudgetBytes
		if st.PeakBytes > st.BudgetBytes {
			row.MemBounded = false
		}
	}

	// Expiry probe: cross every probe key's deadline (their last write
	// was at latest the end of measurement, so +2s clears all of them),
	// then read each through the client - hot-key cache included - and
	// peek each backend store. Nothing may serve.
	k := cl.Sys.K
	k.RunUntil(k.Now() + 2*sim.Second)
	row.ProbeKeys = len(probeKeys)
	front.Spawn(func(c *event.Ctx) {
		for _, key := range probeKeys {
			cli.Get(c, key, func(c *event.Ctx, r cluster.Response) {
				if r.OK() {
					row.ExpiredServed++
				}
			})
		}
	})
	k.RunUntil(k.Now() + 50*sim.Millisecond)
	for _, key := range probeKeys {
		for _, b := range cl.Backends {
			if e, ok := b.Srv.Store.Get(string(key)); ok && b.Srv.EntryLive(e, k.Now()) {
				row.StoreLiveExpired++
			}
		}
	}
	return row
}

// FormatMemoryPressure renders the policy comparison and the gates.
func FormatMemoryPressure(r MemoryPressureResult) string {
	o := r.Opt
	out := fmt.Sprintf("MemoryPressure: %d backends x %d MiB budget, %.1fx offered dataset, skew %.2f, %.0f RPS\n",
		o.Backends, o.BudgetBytes>>20, o.PressureFactor, o.ZipfSkew, o.TargetRPS)
	out += fmt.Sprintf("%-6s %10s %7s | %9s %9s %9s | %7s %8s | %8s\n",
		"Policy", "RPS", "hit%", "evicted", "expired", "items", "cache%", "bounded", "expProbe")
	for _, row := range r.Rows {
		bounded := "PASS"
		if !row.MemBounded {
			bounded = "FAIL"
		}
		probe := "PASS"
		if row.ExpiredServed > 0 || row.StoreLiveExpired > 0 {
			probe = "FAIL"
		}
		out += fmt.Sprintf("%-6s %10.0f %6.1f%% | %9d %9d %9d | %6.1f%% %8s | %8s\n",
			row.Policy, row.Load.AchievedRPS, 100*row.HitRate,
			row.Stores.Evictions, row.Stores.Expired, row.Stores.Items,
			100*row.Cache.HitRate(), bounded, probe)
	}
	out += fmt.Sprintf("LRU over FIFO: %+.1f hit-rate points at %.1fx pressure\n", 100*r.LRUAdvantage, o.PressureFactor)
	out += fmt.Sprintf("peak footprint: %d of %d bytes per backend\n", r.Rows[0].Stores.PeakBytes, r.Rows[0].Stores.BudgetBytes)
	out += fmt.Sprintf("expiry probe: %d keys, %d served post-deadline, %d live-expired in stores\n",
		r.Rows[0].ProbeKeys, r.Rows[0].ExpiredServed+r.Rows[1].ExpiredServed,
		r.Rows[0].StoreLiveExpired+r.Rows[1].StoreLiveExpired)
	return out
}
