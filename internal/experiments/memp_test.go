package experiments

import (
	"testing"

	"ebbrt/internal/sim"
)

// TestMemoryPressureBoundsAndPolicy is the experiment's smoke-scale
// acceptance: under a 2x-budget offered dataset every backend must stay
// inside its byte budget, eviction must actually run, LRU must not lose
// to FIFO under the skewed workload, and the post-deadline expiry probe
// must find zero expired values served from any layer.
func TestMemoryPressureBoundsAndPolicy(t *testing.T) {
	res := MemoryPressure(MemoryPressureOptions{
		TargetRPS: 60000,
		Duration:  25 * sim.Millisecond,
	})
	t.Log("\n" + FormatMemoryPressure(res))

	if len(res.Rows) != 2 || res.Rows[0].Policy != "lru" || res.Rows[1].Policy != "fifo" {
		t.Fatalf("unexpected rows: %+v", res.Rows)
	}
	for _, row := range res.Rows {
		if !row.MemBounded {
			t.Fatalf("%s: peak %d exceeded budget %d", row.Policy, row.Stores.PeakBytes, row.Stores.BudgetBytes)
		}
		if row.Stores.Evictions == 0 {
			t.Fatalf("%s: 2x pressure caused no evictions", row.Policy)
		}
		if row.HitRate <= 0 || row.HitRate >= 1 {
			t.Fatalf("%s: hit rate %.3f not in (0, 1) - pressure not biting", row.Policy, row.HitRate)
		}
		if row.Cache.Hits == 0 {
			t.Fatalf("%s: hot-key cache never engaged", row.Policy)
		}
		if row.ProbeKeys == 0 {
			t.Fatalf("%s: expiry probe had no keys", row.Policy)
		}
		if row.ExpiredServed != 0 {
			t.Fatalf("%s: %d expired values served post-deadline", row.Policy, row.ExpiredServed)
		}
		if row.StoreLiveExpired != 0 {
			t.Fatalf("%s: %d expired entries still live in stores", row.Policy, row.StoreLiveExpired)
		}
	}
	if res.LRUAdvantage < 0 {
		t.Fatalf("LRU hit rate below FIFO by %.3f under skew %.2f", -res.LRUAdvantage, res.Opt.ZipfSkew)
	}
}
