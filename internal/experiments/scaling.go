package experiments

import (
	"fmt"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/cluster"
	"ebbrt/internal/event"
	"ebbrt/internal/load"
	"ebbrt/internal/sim"
)

// ScalingOptions tunes the cluster-scaling sweep. The zero value is the
// experiment's default configuration.
type ScalingOptions struct {
	// CoresPerBackend sizes each native backend (default 1).
	CoresPerBackend int
	// ConnsPerBackend sizes the per-backend connection pool (default 8).
	ConnsPerBackend int
	// Duration is the measured window per point (default 150 ms).
	Duration sim.Time
}

// withDefaults fills unset options with the experiments' shared
// defaults.
func (opt ScalingOptions) withDefaults() ScalingOptions {
	if opt.CoresPerBackend <= 0 {
		opt.CoresPerBackend = 1
	}
	if opt.ConnsPerBackend <= 0 {
		opt.ConnsPerBackend = 8
	}
	if opt.Duration <= 0 {
		opt.Duration = 150 * sim.Millisecond
	}
	return opt
}

// ScalingRow is one point of the cluster-scaling curve.
type ScalingRow struct {
	Backends int
	// OfferedRPS is the aggregate open-loop arrival rate for this point
	// (perBackendRPS x Backends).
	OfferedRPS float64
	Result     load.MutilateResult
}

// ClusterScaling sweeps backend counts under the ETC workload, offering
// perBackendRPS per backend, and reports aggregate achieved throughput -
// the multi-backend extension of the paper's Figure 5 methodology: the
// keyspace shards across native nodes by consistent hashing and the load
// generator (a separate machine on the same switch, like the paper's
// mutilate host) drives each shard over its own connection pool.
func ClusterScaling(backendCounts []int, perBackendRPS float64, opt ScalingOptions) []ScalingRow {
	opt = opt.withDefaults()
	var rows []ScalingRow
	for _, n := range backendCounts {
		rows = append(rows, scalingPoint(n, perBackendRPS, opt))
	}
	return rows
}

// newShardedTarget boots a fresh cluster of the given size plus a
// dedicated load-generator node, and wires one load.Shard per backend -
// the common target every sharded load experiment drives.
func newShardedTarget(backends int, opt ScalingOptions) (*cluster.Cluster, appnet.Runtime, []load.Shard) {
	cl := cluster.New(backends, opt.CoresPerBackend)
	// The load generator must never be the bottleneck: give it more
	// cores than the backends have in total.
	genCores := 2*backends*opt.CoresPerBackend + 2
	gen := cl.AddLoadGenerator(genCores)

	shards := make([]load.Shard, backends)
	for i, b := range cl.Backends {
		ip := b.Node.IP()
		shards[i] = load.Shard{
			Srv: b.Srv,
			Dial: func(c *event.Ctx, cb appnet.Callbacks, onConnect func(*event.Ctx, appnet.Conn)) {
				gen.Runtime.Dial(c, ip, memcached.Port, cb, onConnect)
			},
		}
	}
	return cl, gen.Runtime, shards
}

func scalingPoint(backends int, perBackendRPS float64, opt ScalingOptions) ScalingRow {
	cl, gen, shards := newShardedTarget(backends, opt)
	cfg := load.DefaultMutilate(perBackendRPS * float64(backends))
	cfg.Connections = opt.ConnsPerBackend
	cfg.Duration = opt.Duration
	res := load.RunMutilateSharded(gen, shards, cl.Ring.Lookup, cfg)
	return ScalingRow{Backends: backends, OfferedRPS: cfg.TargetRPS, Result: res}
}

// FormatScaling renders the scaling curve with per-row speedup over the
// first row.
func FormatScaling(rows []ScalingRow) string {
	out := fmt.Sprintf("%-9s %12s %12s %10s %10s %8s\n",
		"Backends", "Offered", "Achieved", "Mean", "p99", "Speedup")
	if len(rows) == 0 {
		return out
	}
	base := rows[0].Result.AchievedRPS
	for _, r := range rows {
		speedup := 0.0
		if base > 0 {
			speedup = r.Result.AchievedRPS / base
		}
		out += fmt.Sprintf("%-9d %12.0f %12.0f %8.1fus %8.1fus %7.2fx\n",
			r.Backends, r.OfferedRPS, r.Result.AchievedRPS,
			r.Result.Mean.Micros(), r.Result.P99.Micros(), speedup)
	}
	return out
}
