package experiments

import (
	"testing"

	"ebbrt/internal/sim"
)

// TestClusterScalingSpeedup is the regression check for the sharded
// deployment: aggregate achieved throughput at 4 backends must be at
// least 2x the single backend under the default mutilate workload.
// (Perfect 4x is not expected: the ETC workload's zipf skew
// concentrates hot keys on whichever shard owns them.)
func TestClusterScalingSpeedup(t *testing.T) {
	rows := ClusterScaling([]int{1, 4}, 300000, ScalingOptions{Duration: 60 * sim.Millisecond})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	one, four := rows[0], rows[1]
	if one.Result.Samples == 0 || four.Result.Samples == 0 {
		t.Fatalf("no samples: 1-backend %+v, 4-backend %+v", one.Result, four.Result)
	}
	if speedup := four.Result.AchievedRPS / one.Result.AchievedRPS; speedup < 2.0 {
		t.Errorf("4-backend speedup %.2fx, want >= 2x (1: %v, 4: %v)",
			speedup, one.Result, four.Result)
	}
	t.Logf("\n%s", FormatScaling(rows))
}
