package experiments

import (
	"fmt"
	"time"

	"ebbrt/internal/core"
)

// PaperGHz converts wall-clock nanoseconds to cycles at the paper's
// 2.6 GHz clock so Table 1 is comparable.
const PaperGHz = 2.6

// counterRep is the microbenchmark target: an object with an empty method.
type counterRep struct{ n int }

// Bump is the inlinable empty-ish method (a single field add keeps the
// compiler from eliding the loop entirely).
func (c *counterRep) Bump() { c.n++ }

// BumpNoInline is the same method with inlining disabled, the paper's
// "No Inline" row.
//
//go:noinline
func (c *counterRep) BumpNoInline() { c.n++ }

// bumper is the interface used for the "Virtual" row: dynamic dispatch
// through an interface, Go's analogue of a C++ virtual call with
// devirtualization disabled.
type bumper interface{ BumpVirtual() }

// BumpVirtual implements bumper.
func (c *counterRep) BumpVirtual() { c.n++ }

// secondRep exists so the call site is polymorphic and the compiler
// cannot devirtualize the interface call.
type secondRep struct{ n int }

// BumpVirtual implements bumper.
func (s *secondRep) BumpVirtual() { s.n++ }

// DispatchRow is one row of Table 1: cycles per 1000 invocations.
type DispatchRow struct {
	Method string
	Cycles float64
}

// The loop bodies are dedicated noinline functions so the measurement is
// the dispatch itself, not closure-call overhead, and so the compiler
// cannot hoist the dispatch out of the loop.

//go:noinline
func loopInline(rep *counterRep, iters int) {
	for i := 0; i < iters; i++ {
		rep.Bump()
	}
}

//go:noinline
func loopNoInline(rep *counterRep, iters int) {
	for i := 0; i < iters; i++ {
		rep.BumpNoInline()
	}
}

//go:noinline
func loopVirtual(targets []bumper, iters int) {
	for i := 0; i < iters; i++ {
		targets[i&1].BumpVirtual()
	}
}

//go:noinline
func loopEbb(ref core.Ref[counterRep], iters int) {
	for i := 0; i < iters; i++ {
		ref.Get(0).Bump()
	}
}

// timed runs fn (which contains its own iteration loop) several times and
// returns the best observed cycles per 1000 dispatches at the paper's
// clock. Taking the minimum filters scheduler noise, which matters on
// small virtualized hosts.
func timed(iters int, fn func(int)) float64 {
	const trials = 7
	best := 0.0
	for t := 0; t < trials; t++ {
		start := time.Now()
		fn(iters)
		ns := float64(time.Since(start).Nanoseconds())
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best / float64(iters) * 1000 * PaperGHz
}

// Table1 reproduces the object-dispatch cost table: the cost of 1000
// invocations for each dispatch flavour, including the Ebb fast path on
// the native table and on the hosted hash table (the paper reports the
// hosted path at roughly 19x the native one).
func Table1(iters int) []DispatchRow {
	if iters <= 0 {
		iters = 20_000_000
	}
	rep := &counterRep{}

	// Interface dispatch with a polymorphic call site.
	targets := []bumper{rep, &secondRep{}}

	nativeDom := core.NewDomain(1, core.NativeTable)
	nativeRef := core.Allocate(nativeDom, func(int) *counterRep { return &counterRep{} })
	nativeRef.Get(0) // fault in the representative

	hostedDom := core.NewDomain(1, core.HostedTable)
	hostedRef := core.Allocate(hostedDom, func(int) *counterRep { return &counterRep{} })
	hostedRef.Get(0)

	return []DispatchRow{
		{Method: "Inline", Cycles: timed(iters, func(n int) { loopInline(rep, n) })},
		{Method: "No Inline", Cycles: timed(iters, func(n int) { loopNoInline(rep, n) })},
		{Method: "Virtual", Cycles: timed(iters, func(n int) { loopVirtual(targets, n) })},
		{Method: "Inline Ebb", Cycles: timed(iters, func(n int) { loopEbb(nativeRef, n) })},
		{Method: "Hosted Ebb", Cycles: timed(iters, func(n int) { loopEbb(hostedRef, n) })},
	}
}

// FormatTable1 renders rows like the paper's Table 1.
func FormatTable1(rows []DispatchRow) string {
	out := fmt.Sprintf("%-12s %10s\n", "Method", "Cycles")
	for _, r := range rows {
		out += fmt.Sprintf("%-12s %10.0f\n", r.Method, r.Cycles)
	}
	return out
}
