package experiments

import (
	"fmt"

	"ebbrt/internal/load"
)

// TextVsBinary: the same sharded cluster and ETC load driven twice, once
// over the binary protocol and once over the ASCII text protocol. The
// two runs differ only in the wire format - the arrival process, key
// routing, connection pools, and backends are identical - so the gap
// between the curves is the text path's cost: per-byte command-line
// tokenization at the server (memcached.textParsePerByte) and the
// larger, line-framed responses. The ROADMAP's motivation for speaking
// text at all is compatibility (stock clients and benchmarks), so the
// experiment's question is what that compatibility costs at cluster
// scale.

// TextVsBinaryRow is one backend-count point measured under both
// protocols.
type TextVsBinaryRow struct {
	Backends int
	// OfferedRPS is the aggregate open-loop arrival rate for each run.
	OfferedRPS float64
	Binary     load.MutilateResult
	Text       load.MutilateResult
}

// Ratio is text achieved throughput over binary achieved throughput.
func (r TextVsBinaryRow) Ratio() float64 {
	if r.Binary.AchievedRPS == 0 {
		return 0
	}
	return r.Text.AchievedRPS / r.Binary.AchievedRPS
}

// TextVsBinary sweeps backend counts, measuring each point under the
// binary and then the text protocol against a fresh cluster each run
// (so neither run sees the other's store mutations or queue state).
func TextVsBinary(backendCounts []int, perBackendRPS float64, opt ScalingOptions) []TextVsBinaryRow {
	opt = opt.withDefaults()
	var rows []TextVsBinaryRow
	for _, n := range backendCounts {
		rows = append(rows, textVsBinaryPoint(n, perBackendRPS, opt))
	}
	return rows
}

func textVsBinaryPoint(backends int, perBackendRPS float64, opt ScalingOptions) TextVsBinaryRow {
	cfg := load.DefaultMutilate(perBackendRPS * float64(backends))
	cfg.Connections = opt.ConnsPerBackend
	cfg.Duration = opt.Duration

	cl, gen, shards := newShardedTarget(backends, opt)
	bin := load.RunMutilateSharded(gen, shards, cl.Ring.Lookup, cfg)

	cl, gen, shards = newShardedTarget(backends, opt)
	txt := load.RunMutilateText(gen, shards, cl.Ring.Lookup, cfg)

	return TextVsBinaryRow{
		Backends:   backends,
		OfferedRPS: cfg.TargetRPS,
		Binary:     bin,
		Text:       txt,
	}
}

// FormatTextVsBinary renders the comparison, one backend count per row.
func FormatTextVsBinary(rows []TextVsBinaryRow) string {
	out := fmt.Sprintf("%-9s %10s %12s %12s %9s %10s %10s\n",
		"Backends", "Offered", "Binary", "Text", "Text/Bin", "Bin p99", "Text p99")
	for _, r := range rows {
		out += fmt.Sprintf("%-9d %10.0f %12.0f %12.0f %8.2fx %8.1fus %8.1fus\n",
			r.Backends, r.OfferedRPS, r.Binary.AchievedRPS, r.Text.AchievedRPS,
			r.Ratio(), r.Binary.P99.Micros(), r.Text.P99.Micros())
	}
	return out
}
