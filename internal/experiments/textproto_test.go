package experiments

import (
	"testing"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/cluster"
	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/load"
	"ebbrt/internal/sim"
)

// TestTextVsBinaryThroughputParity pins the acceptance bound for the
// text path: at equal offered load against identical clusters, the
// ASCII protocol's achieved throughput stays within 2x of binary (the
// per-byte tokenization cost must not halve throughput), and both
// protocols serve ~all of the offered load at this modest rate.
func TestTextVsBinaryThroughputParity(t *testing.T) {
	rows := TextVsBinary([]int{2}, 30000, ScalingOptions{
		ConnsPerBackend: 4,
		Duration:        60 * sim.Millisecond,
	})
	r := rows[0]
	if r.Binary.AchievedRPS < 0.9*r.OfferedRPS {
		t.Fatalf("binary run underachieved: %.0f of %.0f offered", r.Binary.AchievedRPS, r.OfferedRPS)
	}
	if r.Text.AchievedRPS < 0.9*r.OfferedRPS {
		t.Fatalf("text run underachieved: %.0f of %.0f offered", r.Text.AchievedRPS, r.OfferedRPS)
	}
	if ratio := r.Ratio(); ratio < 0.5 {
		t.Fatalf("text throughput %.2fx of binary, want >= 0.5x", ratio)
	}
	if r.Text.Samples == 0 || r.Binary.Samples == 0 {
		t.Fatal("a run recorded no latency samples")
	}
}

// TestTextSessionAgainstCluster is the acceptance criterion's session
// check end-to-end: a text-mode client session (set/get/delete, with
// and without noreply) against a backend of the sharded cluster, over
// the simulated network, answered with byte-exact standard memcached
// responses.
func TestTextSessionAgainstCluster(t *testing.T) {
	cl := cluster.New(4, 1)
	gen := cl.AddLoadGenerator(2)

	key := "cluster:key"
	target := cl.Ring.Lookup([]byte(key))
	ip := cl.Backends[target].Node.IP()

	script := "set cluster:key 3 0 7\r\ncluster\r\n" +
		"get cluster:key\r\n" +
		"set cluster:quiet 0 0 1 noreply\r\nq\r\n" +
		"get cluster:quiet\r\n" +
		"delete cluster:quiet noreply\r\n" +
		"delete cluster:key\r\n" +
		"get cluster:key cluster:quiet\r\n"
	want := "STORED\r\n" +
		"VALUE cluster:key 3 7\r\ncluster\r\nEND\r\n" +
		"VALUE cluster:quiet 0 1\r\nq\r\nEND\r\n" +
		"DELETED\r\n" +
		"END\r\n"

	var got []byte
	gen.Spawn(func(c *event.Ctx) {
		gen.Runtime.Dial(c, ip, memcached.Port, appnet.Callbacks{
			OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
				got = append(got, payload.CopyOut()...)
			},
		}, func(c *event.Ctx, conn appnet.Conn) {
			conn.Send(c, iobuf.Wrap([]byte(script)))
		})
	})
	cl.Sys.K.RunUntil(100 * sim.Millisecond)

	if string(got) != want {
		t.Fatalf("cluster text session:\n got %q\nwant %q", got, want)
	}
	if cl.Backends[target].Srv.Requests == 0 {
		t.Fatal("target backend served nothing")
	}
}

// TestRunMutilateTextDrivesEveryShard asserts the text load generator
// routes and completes operations across all shards of a cluster, like
// the binary one does.
func TestRunMutilateTextDrivesEveryShard(t *testing.T) {
	cl, gen, shards := newShardedTarget(2, ScalingOptions{CoresPerBackend: 1, ConnsPerBackend: 2})
	cfg := load.DefaultMutilate(8000)
	cfg.Connections = 2
	cfg.Duration = 40 * sim.Millisecond
	res := load.RunMutilateText(gen, shards, cl.Ring.Lookup, cfg)
	if res.AchievedRPS < 0.8*cfg.TargetRPS {
		t.Fatalf("achieved %.0f of %.0f offered", res.AchievedRPS, cfg.TargetRPS)
	}
	for i, b := range cl.Backends {
		if b.Srv.Requests == 0 {
			t.Fatalf("backend %d served no requests", i)
		}
	}
}
