// Package future implements EbbRT's monadic futures (paper §3.5).
//
// A Future[T] represents a value produced asynchronously. Unlike the C++
// standard library future, callbacks can be chained with Then, and the
// returned future represents the chained function's result - hence
// "monadic". Errors flow through a chain exactly like exceptions flow
// through synchronous code: an intermediate link that does not inspect the
// error simply forwards it, and only the final consumer must handle it.
//
// Futures are safe for concurrent use; inside the deterministic simulation
// they are fulfilled from a single kernel goroutine, but the same
// implementation backs the hosted (real-concurrency) environment.
package future

import (
	"errors"
	"fmt"
	"sync"
)

// Result carries the outcome delivered to a Then callback: either a value
// or an error. Get mirrors the paper's Future::Get, which re-raises the
// captured exception; in Go it returns the error instead.
type Result[T any] struct {
	val T
	err error
}

// Get returns the value, or the error captured by the producing chain.
func (r Result[T]) Get() (T, error) { return r.val, r.err }

// Must returns the value and panics on error; for tests and examples where
// failure is a programming bug.
func (r Result[T]) Must() T {
	if r.err != nil {
		panic(fmt.Sprintf("future: Must on failed result: %v", r.err))
	}
	return r.val
}

// Err returns the captured error, if any.
func (r Result[T]) Err() error { return r.err }

type state[T any] struct {
	mu   sync.Mutex
	done bool
	res  Result[T]
	cbs  []func(Result[T])
}

func (s *state[T]) fulfill(res Result[T]) {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		panic("future: promise fulfilled twice")
	}
	s.done = true
	s.res = res
	cbs := s.cbs
	s.cbs = nil
	s.mu.Unlock()
	for _, cb := range cbs {
		cb(res)
	}
}

func (s *state[T]) onDone(cb func(Result[T])) {
	s.mu.Lock()
	if s.done {
		res := s.res
		s.mu.Unlock()
		cb(res)
		return
	}
	s.cbs = append(s.cbs, cb)
	s.mu.Unlock()
}

// Promise is the producing side of a future.
type Promise[T any] struct{ st *state[T] }

// NewPromise returns a promise and its associated future state.
func NewPromise[T any]() Promise[T] { return Promise[T]{st: &state[T]{}} }

// Future returns the consuming side.
func (p Promise[T]) Future() Future[T] { return Future[T]{st: p.st} }

// SetValue fulfills the future with a value. Fulfilling twice panics: it
// indicates a protocol bug in the producer.
func (p Promise[T]) SetValue(v T) { p.st.fulfill(Result[T]{val: v}) }

// SetError fulfills the future with an error.
func (p Promise[T]) SetError(err error) {
	if err == nil {
		err = errors.New("future: SetError with nil error")
	}
	var zero T
	p.st.fulfill(Result[T]{val: zero, err: err})
}

// Future is the consuming side of an asynchronously produced value.
type Future[T any] struct{ st *state[T] }

// Ready returns an already-fulfilled future; Then callbacks on it run
// synchronously, the fast path the paper highlights for cached ARP entries.
func Ready[T any](v T) Future[T] {
	p := NewPromise[T]()
	p.SetValue(v)
	return p.Future()
}

// Fail returns an already-failed future.
func Fail[T any](err error) Future[T] {
	p := NewPromise[T]()
	p.SetError(err)
	return p.Future()
}

// Done reports whether the future has been fulfilled.
func (f Future[T]) Done() bool {
	f.st.mu.Lock()
	defer f.st.mu.Unlock()
	return f.st.done
}

// Poll returns the result if fulfilled. The boolean reports readiness.
func (f Future[T]) Poll() (Result[T], bool) {
	f.st.mu.Lock()
	defer f.st.mu.Unlock()
	return f.st.res, f.st.done
}

// OnDone registers cb to run when the future fulfills (immediately if it
// already has). Callbacks run on the fulfilling goroutine, matching the
// event-driven execution model: continuation code runs on the event that
// produced the value.
func (f Future[T]) OnDone(cb func(Result[T])) { f.st.onDone(cb) }

// Blocker abstracts the event-manager facility for suspending the current
// event (paper §3.2 save/restore). register is called with a resume
// function to invoke when the awaited work completes.
type Blocker interface {
	Block(register func(resume func()))
}

// Block suspends the current event context until the future fulfills and
// returns its result. This is the hybrid model the paper describes for
// porting software with blocking semantics.
func (f Future[T]) Block(b Blocker) (T, error) {
	if res, ok := f.Poll(); ok {
		return res.Get()
	}
	var res Result[T]
	b.Block(func(resume func()) {
		f.OnDone(func(r Result[T]) {
			res = r
			resume()
		})
	})
	return res.Get()
}

// Then applies fn to the result once available and returns a future for
// fn's own result. fn receives the Result and may inspect the error -
// use this form to *handle* errors. Most code wants ThenOK.
func Then[T, U any](f Future[T], fn func(Result[T]) (U, error)) Future[U] {
	p := NewPromise[U]()
	f.OnDone(func(r Result[T]) {
		v, err := fn(r)
		if err != nil {
			p.SetError(err)
		} else {
			p.SetValue(v)
		}
	})
	return p.Future()
}

// ThenOK applies fn only on success; an upstream error propagates to the
// returned future untouched. This reproduces the paper's exception-like
// flow where only the final Then must handle errors.
func ThenOK[T, U any](f Future[T], fn func(T) (U, error)) Future[U] {
	return Then(f, func(r Result[T]) (U, error) {
		v, err := r.Get()
		if err != nil {
			var zero U
			return zero, err
		}
		return fn(v)
	})
}

// ThenFlat chains a future-returning function, flattening the result
// (monadic bind). Upstream errors propagate without invoking fn.
func ThenFlat[T, U any](f Future[T], fn func(T) Future[U]) Future[U] {
	p := NewPromise[U]()
	f.OnDone(func(r Result[T]) {
		v, err := r.Get()
		if err != nil {
			p.SetError(err)
			return
		}
		fn(v).OnDone(func(ru Result[U]) {
			u, err := ru.Get()
			if err != nil {
				p.SetError(err)
			} else {
				p.SetValue(u)
			}
		})
	})
	return p.Future()
}

// WhenAll returns a future that fulfills with all values once every input
// fulfills, or fails with the first error encountered.
func WhenAll[T any](fs []Future[T]) Future[[]T] {
	p := NewPromise[[]T]()
	n := len(fs)
	if n == 0 {
		p.SetValue(nil)
		return p.Future()
	}
	var mu sync.Mutex
	vals := make([]T, n)
	remaining := n
	failed := false
	for i, f := range fs {
		i := i
		f.OnDone(func(r Result[T]) {
			v, err := r.Get()
			mu.Lock()
			if failed {
				mu.Unlock()
				return
			}
			if err != nil {
				failed = true
				mu.Unlock()
				p.SetError(err)
				return
			}
			vals[i] = v
			remaining--
			done := remaining == 0
			mu.Unlock()
			if done {
				p.SetValue(vals)
			}
		})
	}
	return p.Future()
}

// Unit is the empty payload for futures that represent completion of an
// action with no data, the paper's Future<void>.
type Unit struct{}

// ReadyUnit is a fulfilled Future<void>.
func ReadyUnit() Future[Unit] { return Ready(Unit{}) }
