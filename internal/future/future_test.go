package future

import (
	"errors"
	"sync"
	"testing"
)

func TestReadyThenRunsSynchronously(t *testing.T) {
	f := Ready(21)
	ran := false
	g := ThenOK(f, func(v int) (int, error) {
		ran = true
		return v * 2, nil
	})
	if !ran {
		t.Fatal("Then on ready future did not run synchronously")
	}
	r, ok := g.Poll()
	if !ok {
		t.Fatal("chained future not done")
	}
	if v, err := r.Get(); err != nil || v != 42 {
		t.Fatalf("got %v, %v", v, err)
	}
}

func TestPromiseFulfillLater(t *testing.T) {
	p := NewPromise[string]()
	f := p.Future()
	if f.Done() {
		t.Fatal("future done before fulfill")
	}
	var got string
	f.OnDone(func(r Result[string]) { got = r.Must() })
	p.SetValue("hello")
	if got != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestErrorPropagationThroughChain(t *testing.T) {
	boom := errors.New("arp timeout")
	f := Fail[int](boom)
	mid := ThenOK(f, func(v int) (int, error) {
		t.Fatal("intermediate link ran despite error")
		return 0, nil
	})
	final := Then(mid, func(r Result[int]) (string, error) {
		if _, err := r.Get(); err != nil {
			return "handled:" + err.Error(), nil
		}
		return "no error", nil
	})
	r, _ := final.Poll()
	if v := r.Must(); v != "handled:arp timeout" {
		t.Fatalf("got %q", v)
	}
}

func TestThenProducesError(t *testing.T) {
	f := Ready(1)
	g := ThenOK(f, func(int) (int, error) { return 0, errors.New("downstream") })
	r, _ := g.Poll()
	if r.Err() == nil {
		t.Fatal("error not captured")
	}
}

func TestThenFlat(t *testing.T) {
	inner := NewPromise[int]()
	f := ThenFlat(Ready(10), func(v int) Future[int] { return inner.Future() })
	if f.Done() {
		t.Fatal("flattened future done before inner fulfilled")
	}
	inner.SetValue(32)
	r, ok := f.Poll()
	if !ok || r.Must() != 32 {
		t.Fatalf("got %+v ok=%v", r, ok)
	}
}

func TestThenFlatErrorShortCircuits(t *testing.T) {
	f := ThenFlat(Fail[int](errors.New("x")), func(v int) Future[int] {
		t.Fatal("fn ran on failed input")
		return Ready(0)
	})
	if r, ok := f.Poll(); !ok || r.Err() == nil {
		t.Fatal("error did not propagate")
	}
}

func TestWhenAll(t *testing.T) {
	ps := []Promise[int]{NewPromise[int](), NewPromise[int](), NewPromise[int]()}
	fs := make([]Future[int], len(ps))
	for i, p := range ps {
		fs[i] = p.Future()
	}
	all := WhenAll(fs)
	ps[2].SetValue(3)
	ps[0].SetValue(1)
	if all.Done() {
		t.Fatal("WhenAll done early")
	}
	ps[1].SetValue(2)
	r, ok := all.Poll()
	if !ok {
		t.Fatal("WhenAll not done")
	}
	vals := r.Must()
	if vals[0] != 1 || vals[1] != 2 || vals[2] != 3 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestWhenAllEmpty(t *testing.T) {
	if !WhenAll[int](nil).Done() {
		t.Fatal("WhenAll(nil) should be done")
	}
}

func TestWhenAllError(t *testing.T) {
	p1, p2 := NewPromise[int](), NewPromise[int]()
	all := WhenAll([]Future[int]{p1.Future(), p2.Future()})
	p1.SetError(errors.New("dead"))
	if r, ok := all.Poll(); !ok || r.Err() == nil {
		t.Fatal("WhenAll did not fail fast")
	}
	p2.SetValue(2) // must not panic or double-fulfill
}

func TestDoubleFulfillPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double fulfill did not panic")
		}
	}()
	p := NewPromise[int]()
	p.SetValue(1)
	p.SetValue(2)
}

func TestSetErrorNil(t *testing.T) {
	p := NewPromise[int]()
	p.SetError(nil)
	r, _ := p.Future().Poll()
	if r.Err() == nil {
		t.Fatal("nil SetError should still produce an error")
	}
}

type chanBlocker struct{ wg sync.WaitGroup }

func (c *chanBlocker) Block(register func(resume func())) {
	done := make(chan struct{})
	register(func() { close(done) })
	<-done
}

func TestBlock(t *testing.T) {
	p := NewPromise[int]()
	got := make(chan int)
	go func() {
		v, err := p.Future().Block(&chanBlocker{})
		if err != nil {
			t.Error(err)
		}
		got <- v
	}()
	p.SetValue(99)
	if v := <-got; v != 99 {
		t.Fatalf("Block got %d", v)
	}
}

func TestBlockOnReadyFastPath(t *testing.T) {
	v, err := Ready(7).Block(nil) // nil Blocker: must not be touched on fast path
	if err != nil || v != 7 {
		t.Fatalf("got %v, %v", v, err)
	}
}

func TestConcurrentOnDone(t *testing.T) {
	p := NewPromise[int]()
	f := p.Future()
	var wg sync.WaitGroup
	var mu sync.Mutex
	count := 0
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.OnDone(func(Result[int]) {
				mu.Lock()
				count++
				mu.Unlock()
			})
		}()
	}
	p.SetValue(1)
	wg.Wait()
	// Late registrations fire immediately; all 50 must have run.
	mu.Lock()
	defer mu.Unlock()
	if count != 50 {
		t.Fatalf("count = %d", count)
	}
}
