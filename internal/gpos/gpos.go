// Package gpos models a general-purpose operating system as the paper's
// comparison baselines: Linux (virtualized and native) and OSv.
//
// The baseline runs the *same* protocol stack as the native EbbRT runtime -
// correctness is shared - but wraps the application behind the costs a
// general-purpose OS imposes and EbbRT removes:
//
//   - receive: device interrupt -> softirq processing -> copy into socket
//     buffer -> scheduler wakeup (latency + context switch) -> read()
//     syscall -> copy to userspace -> application
//   - transmit: write() syscall -> copy to kernel -> stack -> device
//   - a periodic scheduler tick that steals CPU and pollutes caches
//
// The OSv profile removes the user/kernel copy and cheapens syscalls (a
// single address space library OS) but pays a less-optimized virtio path,
// coarse locking, and - as its published virtio-net driver did - supports
// only a single receive queue, which is what degrades its multicore
// scaling in Figure 6.
package gpos

import (
	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/machine"
	"ebbrt/internal/netstack"
	"ebbrt/internal/sim"
)

// Config carries the OS cost model.
type Config struct {
	// Label names the profile in experiment output.
	Label string
	// Syscall is the user->kernel->user crossing cost (virtualization
	// raises it slightly; calibrated per profile).
	Syscall sim.Time
	// CopyPerByte is the user/kernel copy cost each direction.
	CopyPerByte float64 // ns per byte
	// SoftirqPerPacket is the kernel receive-path cost beyond the shared
	// protocol logic (skb management, socket demux, locking).
	SoftirqPerPacket sim.Time
	// WakeupLatency is the time from data-ready to the task running
	// (scheduler decision, runqueue, IPI).
	WakeupLatency sim.Time
	// CtxSwitch is the context-switch CPU cost charged on wakeup.
	CtxSwitch sim.Time
	// TickInterval and TickCost model the periodic scheduler tick.
	TickInterval sim.Time
	TickCost     sim.Time
	// LockPerPacketPerCore adds per-packet cost proportional to active
	// cores, modelling coarse-grained locking (OSv profile).
	LockPerPacketPerCore sim.Time
	// WakeupJitterMean adds exponentially distributed scheduler noise to
	// every wakeup; TailSpikeProb/TailSpikeMean model the occasional
	// long delay when an unrelated kernel thread holds the CPU - the
	// source of the general-purpose OS's 99th-percentile tail.
	WakeupJitterMean sim.Time
	TailSpikeProb    float64
	TailSpikeMean    sim.Time
}

// LinuxConfig is the Linux guest/host cost profile (paper's Debian 8,
// kernel 3.16). The same profile serves virtualized and native runs; the
// virtualization delta lives in the machine's device cost model.
func LinuxConfig() Config {
	return Config{
		Label:            "Linux",
		Syscall:          400 * sim.Nanosecond,
		CopyPerByte:      0.12,
		SoftirqPerPacket: 1200 * sim.Nanosecond,
		WakeupLatency:    2500 * sim.Nanosecond,
		CtxSwitch:        2000 * sim.Nanosecond,
		TickInterval:     1 * sim.Millisecond,
		TickCost:         2500 * sim.Nanosecond,
		WakeupJitterMean: 4000 * sim.Nanosecond,
		TailSpikeProb:    0.02,
		TailSpikeMean:    90 * sim.Microsecond,
	}
}

// OSvConfig is the OSv profile: no user/kernel copies or hard syscalls,
// but a slower socket path and global locking; pair it with a single-queue
// NIC (machine.Config.NICQueues = 1).
func OSvConfig() Config {
	return Config{
		Label:                "OSv",
		Syscall:              80 * sim.Nanosecond,
		CopyPerByte:          0.02, // internal handoffs, no user crossing
		SoftirqPerPacket:     1500 * sim.Nanosecond,
		WakeupLatency:        2200 * sim.Nanosecond,
		CtxSwitch:            900 * sim.Nanosecond,
		TickInterval:         1 * sim.Millisecond,
		TickCost:             2000 * sim.Nanosecond,
		LockPerPacketPerCore: 500 * sim.Nanosecond,
		WakeupJitterMean:     3500 * sim.Nanosecond,
		TailSpikeProb:        0.02,
		TailSpikeMean:        80 * sim.Microsecond,
	}
}

// Runtime is a GPOS instance over a machine: the shared netstack plus the
// OS cost wrapper. It implements appnet.Runtime.
type Runtime struct {
	Cfg   Config
	Stack *netstack.Stack
	Itf   *netstack.Interface
	cores int
	rng   *sim.Rng
}

// NewRuntime boots the OS model: protocol stack, plus per-core scheduler
// ticks for the lifetime of the simulation.
func NewRuntime(m *machine.Machine, mgrs []*event.Manager, stackCfg netstack.Config, cfg Config, nic *machine.NIC, addr, mask netstack.Ipv4Addr) *Runtime {
	st := netstack.NewStack(m, mgrs, stackCfg)
	itf := st.AddInterface(nic, addr, mask)
	rt := &Runtime{Cfg: cfg, Stack: st, Itf: itf, cores: len(mgrs), rng: sim.NewRng(0x6b05)}
	if cfg.TickInterval > 0 {
		for _, mgr := range mgrs {
			rt.startTick(mgr)
		}
	}
	return rt
}

func (rt *Runtime) startTick(mgr *event.Manager) {
	var tick func(c *event.Ctx)
	tick = func(c *event.Ctx) {
		c.Charge(rt.Cfg.TickCost)
		mgr.After(rt.Cfg.TickInterval, tick)
	}
	mgr.After(rt.Cfg.TickInterval, tick)
}

// Name implements appnet.Runtime.
func (rt *Runtime) Name() string { return rt.Cfg.Label }

// Mgrs implements appnet.Runtime.
func (rt *Runtime) Mgrs() []*event.Manager { return rt.Stack.Mgrs }

// Kernel implements appnet.Runtime.
func (rt *Runtime) Kernel() *sim.Kernel { return rt.Stack.M.K }

// copyCost charges the user/kernel copy for n bytes.
func (rt *Runtime) copyCost(n int) sim.Time {
	return sim.Time(rt.Cfg.CopyPerByte * float64(n))
}

// lockCost models coarse locking scaled by core count.
func (rt *Runtime) lockCost() sim.Time {
	return rt.Cfg.LockPerPacketPerCore * sim.Time(rt.cores)
}

// Listen implements appnet.Runtime.
func (rt *Runtime) Listen(port uint16, accept func(conn appnet.Conn) appnet.Callbacks) error {
	_, err := rt.Itf.ListenTcp(port, func(c *event.Ctx, pcb *netstack.TcpPcb) netstack.ConnHandler {
		sock := &socket{rt: rt, pcb: pcb}
		cb := accept(sock)
		return sock.handler(cb)
	})
	return err
}

// Dial implements appnet.Runtime.
func (rt *Runtime) Dial(c *event.Ctx, ip netstack.Ipv4Addr, port uint16, cb appnet.Callbacks, onConnect func(c *event.Ctx, conn appnet.Conn)) {
	sock := &socket{rt: rt}
	h := sock.handler(cb)
	h.OnConnected = func(c *event.Ctx, pcb *netstack.TcpPcb) {
		if onConnect != nil {
			onConnect(c, sock)
		}
	}
	c.Charge(rt.Cfg.Syscall) // connect()
	pcb, err := rt.Itf.ConnectTcp(c, ip, port, h)
	if err != nil {
		if cb.OnClose != nil {
			cb.OnClose(c, sock, err)
		}
		return
	}
	sock.pcb = pcb
}

// socket is a kernel socket: buffered both directions, with the app on the
// far side of syscalls and a scheduler wakeup.
type socket struct {
	rt  *Runtime
	pcb *netstack.TcpPcb

	// Receive side: kernel socket buffer awaiting the task's read().
	rxPending   [][]byte
	wakePending bool

	// Send side: kernel send buffer beyond the remote window.
	txPending [][]byte

	closed         bool
	closeRequested bool
}

// Core implements appnet.Conn.
func (s *socket) Core() int {
	if s.pcb == nil {
		return 0
	}
	return s.pcb.Core()
}

func (s *socket) handler(cb appnet.Callbacks) netstack.ConnHandler {
	return netstack.ConnHandler{
		OnReceive: func(c *event.Ctx, pcb *netstack.TcpPcb, payload *iobuf.IOBuf) {
			// Softirq context: kernel-side processing and copy into the
			// socket buffer.
			data := payload.CopyOut()
			c.Charge(s.rt.Cfg.SoftirqPerPacket + s.rt.lockCost())
			s.rxPending = append(s.rxPending, data)
			s.scheduleWake(c, cb)
		},
		OnAcked: func(c *event.Ctx, pcb *netstack.TcpPcb, n int) {
			s.drainTx(c)
		},
		OnWindowOpen: func(c *event.Ctx, pcb *netstack.TcpPcb) {
			s.drainTx(c)
		},
		OnRemoteClosed: func(c *event.Ctx, pcb *netstack.TcpPcb) {
			s.Close(c)
		},
		OnClosed: func(c *event.Ctx, pcb *netstack.TcpPcb, err error) {
			s.closed = true
			if cb.OnClose != nil {
				cb.OnClose(c, s, err)
			}
		},
	}
}

// scheduleWake models the softirq -> task wakeup -> read() path.
func (s *socket) scheduleWake(c *event.Ctx, cb appnet.Callbacks) {
	if s.wakePending {
		return // task already runnable; data coalesces into one read
	}
	s.wakePending = true
	mgr := s.rt.Stack.Mgrs[s.Core()]
	delay := s.rt.Cfg.WakeupLatency
	if j := s.rt.Cfg.WakeupJitterMean; j > 0 {
		delay += sim.Time(s.rt.rng.Exp(float64(j)))
	}
	if p := s.rt.Cfg.TailSpikeProb; p > 0 && s.rt.rng.Float64() < p {
		delay += sim.Time(s.rt.rng.Exp(float64(s.rt.Cfg.TailSpikeMean)))
	}
	mgr.After(delay, func(c2 *event.Ctx) {
		s.wakePending = false
		if s.closed {
			return
		}
		pending := s.rxPending
		s.rxPending = nil
		total := 0
		for _, b := range pending {
			total += len(b)
		}
		// Context switch to the task, read() syscall, copy to userspace.
		c2.Charge(s.rt.Cfg.CtxSwitch + s.rt.Cfg.Syscall + s.rt.copyCost(total))
		if cb.OnData == nil || total == 0 {
			return
		}
		var head *iobuf.IOBuf
		for _, b := range pending {
			if head == nil {
				head = iobuf.Wrap(b)
			} else {
				head.AppendChain(iobuf.Wrap(b))
			}
		}
		cb.OnData(c2, s, head)
	})
}

// Send implements appnet.Conn: write() syscall semantics.
func (s *socket) Send(c *event.Ctx, payload *iobuf.IOBuf) {
	if s.closed || s.pcb == nil {
		return
	}
	n := payload.ComputeChainDataLength()
	// write(): syscall plus copy into the kernel send buffer.
	c.Charge(s.rt.Cfg.Syscall + s.rt.copyCost(n) + s.rt.lockCost())
	s.txPending = append(s.txPending, payload.CopyOut())
	s.drainTx(c)
}

// drainTx pushes kernel-buffered data as the window allows.
func (s *socket) drainTx(c *event.Ctx) {
	if s.closed || s.pcb == nil {
		return
	}
	for len(s.txPending) > 0 {
		head := s.txPending[0]
		w := s.pcb.SendWindowRemaining()
		if w == 0 {
			return
		}
		n := len(head)
		if n > w {
			n = w
		}
		if err := s.pcb.Send(c, iobuf.Wrap(head[:n])); err != nil {
			return
		}
		if n == len(head) {
			s.txPending = s.txPending[1:]
		} else {
			s.txPending[0] = head[n:]
		}
	}
	if s.closeRequested && len(s.txPending) == 0 {
		s.closeRequested = false
		s.pcb.Close(c)
	}
}

// Close implements appnet.Conn.
func (s *socket) Close(c *event.Ctx) {
	if s.closed || s.pcb == nil {
		return
	}
	c.Charge(s.rt.Cfg.Syscall)
	if len(s.txPending) > 0 {
		s.closeRequested = true
		return
	}
	s.pcb.Close(c)
}
