package gpos_test

import (
	"testing"

	"ebbrt/internal/gpos"
	"ebbrt/internal/sim"
	"ebbrt/internal/testbed"
)

func TestProfiles(t *testing.T) {
	lin := gpos.LinuxConfig()
	osv := gpos.OSvConfig()
	if lin.Label != "Linux" || osv.Label != "OSv" {
		t.Fatal("profile labels wrong")
	}
	// OSv's defining properties vs Linux: no user/kernel copy boundary,
	// cheap syscalls, coarse locking.
	if osv.CopyPerByte >= lin.CopyPerByte {
		t.Fatal("OSv should not pay the user/kernel copy")
	}
	if osv.Syscall >= lin.Syscall {
		t.Fatal("OSv syscalls should be cheap (single address space)")
	}
	if osv.LockPerPacketPerCore == 0 {
		t.Fatal("OSv profile should model coarse locking")
	}
	if lin.LockPerPacketPerCore != 0 {
		t.Fatal("Linux profile should not pay per-core lock scaling")
	}
}

func TestSchedulerTicksConsumeCPU(t *testing.T) {
	// A GPOS machine left idle still burns CPU on timer ticks; an EbbRT
	// machine is perfectly quiescent (paper §4.3: "prevents unnecessary
	// timer interrupts").
	pair := testbed.NewPair(testbed.LinuxVM, 1, 1)
	before := pair.K.Fired()
	pair.K.RunUntil(100 * sim.Millisecond)
	gposEvents := pair.K.Fired() - before

	ebb := testbed.NewPair(testbed.EbbRT, 1, 1)
	before = ebb.K.Fired()
	ebb.K.RunUntil(100 * sim.Millisecond)
	ebbEvents := ebb.K.Fired() - before

	// ~100 ticks per core per 100ms on the GPOS side (both machines of
	// the pair have cores; the client is native in both cases).
	if gposEvents < 100 {
		t.Fatalf("GPOS fired only %d events in 100ms idle", gposEvents)
	}
	if ebbEvents >= gposEvents {
		t.Fatalf("EbbRT idle events (%d) should be far below GPOS (%d)", ebbEvents, gposEvents)
	}
}

func TestOSvSingleQueueTopology(t *testing.T) {
	pair := testbed.NewPair(testbed.OSv, 4, 4)
	rtm, ok := pair.Server.(*gpos.Runtime)
	if !ok {
		t.Fatal("OSv server is not a GPOS runtime")
	}
	if got := len(rtm.Itf.NIC.Queues); got != 1 {
		t.Fatalf("OSv NIC has %d queues, want 1 (no multiqueue support)", got)
	}
	ebb := testbed.NewPair(testbed.EbbRT, 4, 4)
	type hasStack interface{ Name() string }
	_ = ebb.Server.(hasStack)
}

func TestLinuxNativeUnvirtualized(t *testing.T) {
	pair := testbed.NewPair(testbed.LinuxNative, 1, 1)
	rtm := pair.Server.(*gpos.Runtime)
	if rtm.Stack.M.Cfg.Virtualized {
		t.Fatal("Linux native machine should not be virtualized")
	}
	vm := testbed.NewPair(testbed.LinuxVM, 1, 1)
	if !vm.Server.(*gpos.Runtime).Stack.M.Cfg.Virtualized {
		t.Fatal("Linux VM machine should be virtualized")
	}
}
