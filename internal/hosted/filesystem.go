package hosted

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ebbrt/internal/core"
	"ebbrt/internal/event"
	"ebbrt/internal/future"
)

// FileSystem is the offload Ebb of paper §4.3: native representatives
// function-ship every call to the frontend representative, which serves an
// in-memory filesystem (the stand-in for the Linux filesystem the paper's
// hosted process provides). As the paper notes, this implementation is
// deliberately naive - every access pays a round trip; caching on local
// representatives is the natural extension.
type FileSystem struct {
	id  core.Id
	sys *System
}

// Filesystem wire operations.
const (
	fsOpRead = iota
	fsOpWrite
	fsOpStat
	fsOpList
	fsOpReply
)

// fsFrontendRep is the frontend's representative: the actual store.
type fsFrontendRep struct {
	files map[string][]byte
}

// fsNativeRep is a native node's representative: pending call table.
type fsNativeRep struct {
	nextReq uint32
	pending map[uint32]future.Promise[[]byte]
}

// NewFileSystem creates the FileSystem Ebb across all current nodes of the
// system. The frontend holds the store; every node (frontend included) can
// invoke the same interface.
func NewFileSystem(sys *System) *FileSystem {
	fs := &FileSystem{id: sys.AllocateEbbId(), sys: sys}
	frontRep := &fsFrontendRep{files: map[string][]byte{}}
	sys.frontFSRep = frontRep
	// The frontend handles requests.
	sys.Frontend().Messenger.Register(fs.id, func(c *event.Ctx, src NodeId, payload []byte) {
		fs.serveFrontend(c, frontRep, src, payload)
	})
	// Native nodes handle replies.
	for _, node := range sys.Nodes[1:] {
		fs.attachNative(node)
	}
	return fs
}

// attachNative wires the reply handler and representative for one node.
func (fs *FileSystem) attachNative(node *Node) {
	rep := &fsNativeRep{pending: map[uint32]future.Promise[[]byte]{}}
	node.Messenger.Register(fs.id, func(c *event.Ctx, src NodeId, payload []byte) {
		if len(payload) < 9 || payload[0] != fsOpReply {
			return
		}
		reqId := binary.BigEndian.Uint32(payload[1:5])
		status := binary.BigEndian.Uint32(payload[5:9])
		p, ok := rep.pending[reqId]
		if !ok {
			return
		}
		delete(rep.pending, reqId)
		if status != 0 {
			p.SetError(fmt.Errorf("hosted: filesystem error %d", status))
			return
		}
		p.SetValue(payload[9:])
	})
	node.fsRep = rep
}

// call ships one operation from node to the frontend and returns the reply
// future.
func (fs *FileSystem) call(c *event.Ctx, node *Node, op byte, path string, data []byte) future.Future[[]byte] {
	if node.Id == 0 {
		// Frontend-local invocation short-circuits the network.
		rep := fs.localServe(c, op, path, data)
		return rep
	}
	rep := node.fsRep
	reqId := rep.nextReq
	rep.nextReq++
	p := future.NewPromise[[]byte]()
	rep.pending[reqId] = p
	msg := make([]byte, 0, 7+len(path)+len(data))
	msg = append(msg, op)
	var rid [4]byte
	binary.BigEndian.PutUint32(rid[:], reqId)
	msg = append(msg, rid[:]...)
	var plen [2]byte
	binary.BigEndian.PutUint16(plen[:], uint16(len(path)))
	msg = append(msg, plen[:]...)
	msg = append(msg, path...)
	msg = append(msg, data...)
	node.Messenger.Send(c, 0, fs.id, msg)
	return p.Future()
}

// serveFrontend executes a shipped request and replies.
func (fs *FileSystem) serveFrontend(c *event.Ctx, rep *fsFrontendRep, src NodeId, payload []byte) {
	if len(payload) < 7 {
		return
	}
	op := payload[0]
	reqId := binary.BigEndian.Uint32(payload[1:5])
	plen := int(binary.BigEndian.Uint16(payload[5:7]))
	if len(payload) < 7+plen {
		return
	}
	path := string(payload[7 : 7+plen])
	data := payload[7+plen:]
	out, status := rep.execute(op, path, data)
	reply := make([]byte, 9+len(out))
	reply[0] = fsOpReply
	binary.BigEndian.PutUint32(reply[1:5], reqId)
	binary.BigEndian.PutUint32(reply[5:9], status)
	copy(reply[9:], out)
	fs.sys.Frontend().Messenger.Send(c, src, fs.id, reply)
}

// localServe executes an operation on the frontend without the messenger.
func (fs *FileSystem) localServe(c *event.Ctx, op byte, path string, data []byte) future.Future[[]byte] {
	rep := fs.frontRepOf()
	out, status := rep.execute(op, path, data)
	if status != 0 {
		return future.Fail[[]byte](fmt.Errorf("hosted: filesystem error %d", status))
	}
	return future.Ready(out)
}

func (fs *FileSystem) frontRepOf() *fsFrontendRep {
	// The frontend rep is captured by its messenger handler; reconstruct
	// access through a stashed pointer on the system.
	return fs.sys.frontFSRep
}

func (r *fsFrontendRep) execute(op byte, path string, data []byte) ([]byte, uint32) {
	switch op {
	case fsOpRead:
		content, ok := r.files[path]
		if !ok {
			return nil, 2 // ENOENT
		}
		return content, 0
	case fsOpWrite:
		r.files[path] = append([]byte(nil), data...)
		return nil, 0
	case fsOpStat:
		content, ok := r.files[path]
		if !ok {
			return nil, 2
		}
		var size [8]byte
		binary.BigEndian.PutUint64(size[:], uint64(len(content)))
		return size[:], 0
	case fsOpList:
		var names []string
		for name := range r.files {
			names = append(names, name)
		}
		sort.Strings(names)
		out := []byte{}
		for _, name := range names {
			out = append(out, name...)
			out = append(out, 0)
		}
		return out, 0
	}
	return nil, 1
}

// Read returns the file contents.
func (fs *FileSystem) Read(c *event.Ctx, node *Node, path string) future.Future[[]byte] {
	return fs.call(c, node, fsOpRead, path, nil)
}

// Write stores the file contents.
func (fs *FileSystem) Write(c *event.Ctx, node *Node, path string, data []byte) future.Future[future.Unit] {
	return future.ThenOK(fs.call(c, node, fsOpWrite, path, data), func([]byte) (future.Unit, error) {
		return future.Unit{}, nil
	})
}

// Stat returns the file size.
func (fs *FileSystem) Stat(c *event.Ctx, node *Node, path string) future.Future[uint64] {
	return future.ThenOK(fs.call(c, node, fsOpStat, path, nil), func(b []byte) (uint64, error) {
		if len(b) != 8 {
			return 0, fmt.Errorf("hosted: malformed stat reply")
		}
		return binary.BigEndian.Uint64(b), nil
	})
}

// List returns all file names.
func (fs *FileSystem) List(c *event.Ctx, node *Node) future.Future[[]string] {
	return future.ThenOK(fs.call(c, node, fsOpList, "", nil), func(b []byte) ([]string, error) {
		var names []string
		start := 0
		for i, ch := range b {
			if ch == 0 {
				names = append(names, string(b[start:i]))
				start = i + 1
			}
		}
		return names, nil
	})
}
