// Package hosted implements EbbRT's heterogeneous distributed structure
// (paper §2.1): an application deployed as a hosted process embedded in a
// general-purpose OS plus one or more native library-OS backends, all
// sharing one Ebb namespace and communicating over the local network.
//
// The hosted frontend provides what the native nodes deliberately omit:
// id allocation, naming (the GlobalIdMap), and legacy-interface offload
// (the FileSystem Ebb ships calls to the frontend, whose representative
// serves an in-memory filesystem standing in for the Linux one the paper
// offloads to). "The most maintainable software is that which was not
// written."
package hosted

import (
	"encoding/binary"
	"fmt"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/audit"
	"ebbrt/internal/core"
	"ebbrt/internal/event"
	"ebbrt/internal/gpos"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/machine"
	"ebbrt/internal/netstack"
	"ebbrt/internal/sim"
)

// iobufChain aliases the IOBuf type for brevity in callback signatures.
type iobufChain = iobuf.IOBuf

func wrapBytes(b []byte) *iobufChain { return iobuf.Wrap(b) }

// NodeId identifies a node within an application deployment. Node 0 is
// always the hosted frontend.
type NodeId int

// messengerPort is the TCP port the per-node messenger listens on.
const messengerPort = 9000

// System is one application deployment: the frontend plus native backends
// on an isolated switched network.
type System struct {
	K      *sim.Kernel
	Switch *machine.Switch
	Nodes  []*Node
	nextId core.Id

	netCfg     netstack.Config
	auditLog   *audit.Log
	frontFSRep *fsFrontendRep // FileSystem Ebb's frontend store
}

// Node is one machine of the deployment.
type Node struct {
	Sys       *System
	Id        NodeId
	Machine   *machine.Machine
	Runtime   appnet.Runtime
	Domain    *core.Domain
	Messenger *Messenger

	fsRep *fsNativeRep // FileSystem Ebb's per-node representative
}

// IP returns the node's address on the application network.
func (n *Node) IP() netstack.Ipv4Addr { return netstack.IP(10, 0, 0, byte(10+n.Id)) }

// Kill simulates machine failure by cutting every NIC: the node stops
// reaching the network and stops being reachable, instantly and
// silently. Nothing above the device layer is torn down - sockets,
// stores, and Ebb representatives stay in memory, exactly as on a
// machine that lost power to its network port - so peers learn of the
// failure only through their own timeouts and health checks.
func (n *Node) Kill() {
	for _, nic := range n.Machine.NICs {
		nic.SetUp(false)
	}
}

// Revive reconnects a killed node's NICs. In-flight state from before
// the failure (TCP connections mid-retransmission, the contents of the
// node's stores) resumes where it left off; frames dropped during the
// outage are recovered by the peers' retransmission.
func (n *Node) Revive() {
	for _, nic := range n.Machine.NICs {
		nic.SetUp(true)
	}
}

// Alive reports whether the node is connected to the network.
func (n *Node) Alive() bool {
	for _, nic := range n.Machine.NICs {
		if !nic.Up() {
			return false
		}
	}
	return true
}

// SystemOptions configures a deployment's shared infrastructure.
type SystemOptions struct {
	// FrontendCores sizes the hosted node (default 2).
	FrontendCores int
	// Net is the network stack configuration every node (frontend and
	// native) boots with. The zero value selects
	// netstack.DefaultConfig(); experiments override it to ablate
	// transport features (e.g. fixed- vs adaptive-RTO baselines).
	Net netstack.Config
	// Audit, when non-nil, is wired into every node's network stack so
	// TCP state transitions and loss-recovery actions are published as
	// typed events labeled with the node's id.
	Audit *audit.Log
}

// NewSystem creates the frontend (hosted) node with the default two
// cores.
func NewSystem() *System { return NewSystemCores(2) }

// NewSystemCores creates the frontend (hosted) node with the given core
// count, for deployments that drive heavy client load through the
// frontend itself.
func NewSystemCores(frontendCores int) *System {
	return NewSystemOpts(SystemOptions{FrontendCores: frontendCores})
}

// NewSystemOpts creates the frontend (hosted) node under full options.
func NewSystemOpts(opt SystemOptions) *System {
	if opt.FrontendCores <= 0 {
		opt.FrontendCores = 2
	}
	if opt.Net.MSS == 0 {
		opt.Net = netstack.DefaultConfig()
	}
	k := sim.NewKernel()
	s := &System{K: k, Switch: machine.NewSwitch(k), nextId: 1000, netCfg: opt.Net, auditLog: opt.Audit}
	s.addNode(true, opt.FrontendCores)
	return s
}

// AddNativeNode boots a native backend with the given core count and
// returns it. The paper's deployments launch backends on demand; here the
// caller does so explicitly.
func (s *System) AddNativeNode(cores int) *Node {
	return s.addNode(false, cores)
}

// AddHostedNode boots an additional hosted (GPOS) node: a second
// frontend-tier process paying the same syscall-priced networking as
// node 0. Ebb id allocation stays with node 0; extra hosted nodes are
// peers on the data path only, which is all a scaled frontend tier
// needs.
func (s *System) AddHostedNode(cores int) *Node {
	return s.addNode(true, cores)
}

// Frontend returns the hosted node.
func (s *System) Frontend() *Node { return s.Nodes[0] }

// AllocateEbbId reserves a system-wide id. Allocation is owned by the
// frontend, keeping the shared namespace collision-free.
func (s *System) AllocateEbbId() core.Id {
	id := s.nextId
	s.nextId++
	for _, n := range s.Nodes {
		n.Domain.ReserveThrough(id)
	}
	return id
}

func (s *System) addNode(frontend bool, cores int) *Node {
	id := NodeId(len(s.Nodes))
	name := fmt.Sprintf("native-%d", id)
	if frontend {
		name = "hosted-frontend"
		if id > 0 {
			name = fmt.Sprintf("hosted-%d", id)
		}
	}
	cfg := machine.DefaultConfig(name, cores)
	m := machine.New(s.K, cfg)
	nic := machine.NewNIC(m, machine.MAC{0x02, 0xeb, 0, 0, 0, byte(id + 1)})
	s.Switch.Connect(nic)
	mgrs := make([]*event.Manager, cores)
	for i, c := range m.Cores {
		mgrs[i] = event.NewManager(c, event.DefaultCosts())
	}
	node := &Node{Sys: s, Id: id, Machine: m}
	mask := netstack.IP(255, 255, 255, 0)
	if frontend {
		// The hosted library lives in a GPOS process: same Ebb model,
		// hash-table translation, syscall-priced networking.
		rt := gpos.NewRuntime(m, mgrs, s.netCfg, gpos.LinuxConfig(), nic, node.IP(), mask)
		rt.Stack.Audit, rt.Stack.AuditNode = s.auditLog, int(id)
		node.Runtime = rt
		node.Domain = core.NewDomain(cores, core.HostedTable)
	} else {
		st := netstack.NewStack(m, mgrs, s.netCfg)
		st.Audit, st.AuditNode = s.auditLog, int(id)
		itf := st.AddInterface(nic, node.IP(), mask)
		node.Runtime = appnet.NewNative(st, itf)
		node.Domain = core.NewDomain(cores, core.NativeTable)
	}
	node.Messenger = newMessenger(node)
	s.Nodes = append(s.Nodes, node)
	return node
}

// Spawn runs fn as an event on the node's first core.
func (n *Node) Spawn(fn event.Handler) { n.Runtime.Mgrs()[0].Spawn(fn) }

// MessageHandler receives a messenger payload addressed to an Ebb.
type MessageHandler func(c *event.Ctx, src NodeId, payload []byte)

// Messenger is the per-node Ebb carrying inter-node Ebb messages over TCP
// (paper §3.3: representatives communicate by internally serializing data
// over the network, hidden from Ebb clients).
type Messenger struct {
	node     *Node
	handlers map[core.Id]MessageHandler
	conns    map[NodeId]appnet.Conn
	dialing  map[NodeId][]pendingMsg
	rx       map[NodeId]*[]byte
	// dialAttempt numbers dial attempts per destination. Reset bumps it
	// to orphan an in-flight dial: a superseded dial's callbacks must
	// neither install its connection nor clear the state of the attempt
	// that replaced it.
	dialAttempt map[NodeId]uint64
}

type pendingMsg struct {
	ebb     core.Id
	payload []byte
}

func newMessenger(n *Node) *Messenger {
	m := &Messenger{
		node:        n,
		handlers:    map[core.Id]MessageHandler{},
		conns:       map[NodeId]appnet.Conn{},
		dialing:     map[NodeId][]pendingMsg{},
		rx:          map[NodeId]*[]byte{},
		dialAttempt: map[NodeId]uint64{},
	}
	// Accept inbound messenger connections.
	err := n.Runtime.Listen(messengerPort, func(conn appnet.Conn) appnet.Callbacks {
		var buf []byte
		var from NodeId = -1
		return appnet.Callbacks{
			OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobufChain) {
				buf = append(buf, payload.CopyOut()...)
				buf = m.process(c, &from, conn, buf)
			},
		}
	})
	if err != nil {
		panic(fmt.Sprintf("hosted: messenger listen: %v", err))
	}
	return m
}

// Register binds the handler invoked for messages addressed to ebb.
func (m *Messenger) Register(ebb core.Id, h MessageHandler) { m.handlers[ebb] = h }

// wire format: [srcNode u32][ebbId u32][len u32][payload]
const msgHeaderLen = 12

// Send delivers payload to the Ebb's representative on the destination
// node, establishing the TCP connection on first use.
func (m *Messenger) Send(c *event.Ctx, dst NodeId, ebb core.Id, payload []byte) {
	if dst == m.node.Id {
		// Local delivery stays local (and synchronous).
		if h, ok := m.handlers[ebb]; ok {
			h(c, m.node.Id, payload)
		}
		return
	}
	if conn, ok := m.conns[dst]; ok {
		conn.Send(c, wrapMsg(m.node.Id, ebb, payload))
		return
	}
	m.dialing[dst] = append(m.dialing[dst], pendingMsg{ebb: ebb, payload: payload})
	if len(m.dialing[dst]) > 1 {
		return // dial already in progress
	}
	attempt := m.dialAttempt[dst] + 1
	m.dialAttempt[dst] = attempt
	dstNode := m.node.Sys.Nodes[dst]
	var rxbuf []byte
	from := dst
	m.node.Runtime.Dial(c, dstNode.IP(), messengerPort, appnet.Callbacks{
		OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobufChain) {
			rxbuf = append(rxbuf, payload.CopyOut()...)
			rxbuf = m.process(c, &from, conn, rxbuf)
		},
		OnClose: func(c *event.Ctx, conn appnet.Conn, err error) {
			if m.dialAttempt[dst] != attempt {
				return // superseded by Reset; a newer attempt owns the state
			}
			delete(m.conns, dst)
			// If the dial itself failed, messages queued behind it would
			// otherwise wedge the destination forever (the next Send sees
			// a dial "in progress" that will never complete). Drop them -
			// the messenger is best-effort - so a later Send redials.
			delete(m.dialing, dst)
		},
	}, func(c *event.Ctx, conn appnet.Conn) {
		if m.dialAttempt[dst] != attempt {
			// A Reset orphaned this dial while its SYN was in flight;
			// close the late connection rather than clobbering the
			// current attempt's.
			conn.Close(c)
			return
		}
		m.conns[dst] = conn
		queued := m.dialing[dst]
		delete(m.dialing, dst)
		for _, msg := range queued {
			conn.Send(c, wrapMsg(m.node.Id, msg.ebb, msg.payload))
		}
	})
}

// Reset drops the cached connection to dst (closing it if open) along
// with any dial in progress, so the next Send dials from scratch. A
// stream wedged behind a dead peer recovers one lost segment per RTO
// once the peer returns - seconds of blackout; failure detectors
// instead Reset and probe over a fresh connection, whose handshake
// completes within microseconds of the peer reviving.
func (m *Messenger) Reset(c *event.Ctx, dst NodeId) {
	if conn, ok := m.conns[dst]; ok {
		delete(m.conns, dst)
		conn.Close(c)
	}
	delete(m.dialing, dst)
	// Orphan any in-flight dial: its callbacks check this counter and
	// stand down, so a stale dial completing later can neither install
	// its connection nor drop messages queued behind a newer attempt.
	m.dialAttempt[dst]++
}

// process parses complete messages from the stream and dispatches them.
func (m *Messenger) process(c *event.Ctx, from *NodeId, conn appnet.Conn, buf []byte) []byte {
	for len(buf) >= msgHeaderLen {
		src := NodeId(binary.BigEndian.Uint32(buf[0:4]))
		ebb := core.Id(binary.BigEndian.Uint32(buf[4:8]))
		n := int(binary.BigEndian.Uint32(buf[8:12]))
		if len(buf) < msgHeaderLen+n {
			break
		}
		payload := buf[msgHeaderLen : msgHeaderLen+n]
		buf = buf[msgHeaderLen+n:]
		if *from < 0 {
			// Learn the peer and keep the inbound connection for replies.
			*from = src
			m.conns[src] = conn
		}
		if h, ok := m.handlers[ebb]; ok {
			h(c, src, append([]byte(nil), payload...))
		}
	}
	return buf
}

func wrapMsg(src NodeId, ebb core.Id, payload []byte) *iobufChain {
	b := make([]byte, msgHeaderLen+len(payload))
	binary.BigEndian.PutUint32(b[0:4], uint32(src))
	binary.BigEndian.PutUint32(b[4:8], uint32(ebb))
	binary.BigEndian.PutUint32(b[8:12], uint32(len(payload)))
	copy(b[msgHeaderLen:], payload)
	return wrapBytes(b)
}
