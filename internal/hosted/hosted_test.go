package hosted

import (
	"testing"

	"ebbrt/internal/core"
	"ebbrt/internal/event"
	"ebbrt/internal/future"
	"ebbrt/internal/sim"
)

func TestMessengerRoundTrip(t *testing.T) {
	sys := NewSystem()
	native := sys.AddNativeNode(1)
	id := sys.AllocateEbbId()

	var atFrontend []byte
	var replied []byte
	sys.Frontend().Messenger.Register(id, func(c *event.Ctx, src NodeId, payload []byte) {
		atFrontend = payload
		sys.Frontend().Messenger.Send(c, src, id, append([]byte("re:"), payload...))
	})
	native.Messenger.Register(id, func(c *event.Ctx, src NodeId, payload []byte) {
		replied = payload
	})
	native.Spawn(func(c *event.Ctx) {
		native.Messenger.Send(c, 0, id, []byte("hello frontend"))
	})
	sys.K.RunUntil(2 * sim.Second)
	if string(atFrontend) != "hello frontend" {
		t.Fatalf("frontend got %q", atFrontend)
	}
	if string(replied) != "re:hello frontend" {
		t.Fatalf("native got %q", replied)
	}
}

func TestMessengerLocalDelivery(t *testing.T) {
	sys := NewSystem()
	id := sys.AllocateEbbId()
	got := ""
	sys.Frontend().Messenger.Register(id, func(c *event.Ctx, src NodeId, payload []byte) {
		got = string(payload)
	})
	sys.Frontend().Spawn(func(c *event.Ctx) {
		sys.Frontend().Messenger.Send(c, 0, id, []byte("local"))
	})
	sys.K.RunUntil(100 * sim.Millisecond)
	if got != "local" {
		t.Fatalf("got %q", got)
	}
}

func TestMessengerManyMessagesOrdered(t *testing.T) {
	sys := NewSystem()
	native := sys.AddNativeNode(1)
	id := sys.AllocateEbbId()
	var got []byte
	sys.Frontend().Messenger.Register(id, func(c *event.Ctx, src NodeId, payload []byte) {
		got = append(got, payload...)
	})
	native.Spawn(func(c *event.Ctx) {
		for i := 0; i < 50; i++ {
			native.Messenger.Send(c, 0, id, []byte{byte(i)})
		}
	})
	sys.K.RunUntil(2 * sim.Second)
	if len(got) != 50 {
		t.Fatalf("received %d of 50", len(got))
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("out of order at %d: %v", i, got[:10])
		}
	}
}

func TestNodeKillPartitionsAndReviveResumes(t *testing.T) {
	sys := NewSystem()
	native := sys.AddNativeNode(1)
	id := sys.AllocateEbbId()

	var got []string
	sys.Frontend().Messenger.Register(id, func(c *event.Ctx, src NodeId, payload []byte) {
		got = append(got, string(payload))
	})
	// Establish the messenger connection while the node is healthy.
	native.Spawn(func(c *event.Ctx) {
		native.Messenger.Send(c, 0, id, []byte("before"))
	})
	sys.K.RunUntil(1 * sim.Second)
	if len(got) != 1 || got[0] != "before" {
		t.Fatalf("pre-kill message lost: %v", got)
	}

	// Kill the node: messages sent while dead must not arrive.
	native.Kill()
	if native.Alive() {
		t.Fatal("killed node reports alive")
	}
	native.Spawn(func(c *event.Ctx) {
		native.Messenger.Send(c, 0, id, []byte("during"))
	})
	sys.K.RunUntil(sys.K.Now() + 50*sim.Millisecond)
	if len(got) != 1 {
		t.Fatalf("message escaped a killed node: %v", got)
	}

	// Revive: TCP retransmission recovers the partition-era message.
	native.Revive()
	if !native.Alive() {
		t.Fatal("revived node reports dead")
	}
	sys.K.RunUntil(sys.K.Now() + 2*sim.Second)
	if len(got) != 2 || got[1] != "during" {
		t.Fatalf("retransmission did not recover message: %v", got)
	}
}

func TestMessengerRedialsAfterFailedDial(t *testing.T) {
	// A dial to a dead node must not wedge the destination: once the
	// failed dial tears down, a later Send redials and succeeds.
	sys := NewSystem()
	native := sys.AddNativeNode(1)
	id := sys.AllocateEbbId()
	var got []string
	native.Messenger.Register(id, func(c *event.Ctx, src NodeId, payload []byte) {
		got = append(got, string(payload))
	})

	native.Kill()
	sys.Frontend().Spawn(func(c *event.Ctx) {
		sys.Frontend().Messenger.Send(c, native.Id, id, []byte("lost"))
	})
	// Long enough for the SYN retransmissions to give up (RTO 200ms with
	// exponential backoff through 9 doublings is ~205s of virtual time).
	sys.K.RunUntil(250 * sim.Second)
	native.Revive()
	got = got[:0] // only the post-revival send matters
	sys.Frontend().Spawn(func(c *event.Ctx) {
		sys.Frontend().Messenger.Send(c, native.Id, id, []byte("after"))
	})
	sys.K.RunUntil(sys.K.Now() + 2*sim.Second)
	if len(got) != 1 || got[0] != "after" {
		t.Fatalf("messenger wedged after failed dial: %v", got)
	}
}

func TestEbbIdAllocationSharedNamespace(t *testing.T) {
	sys := NewSystem()
	sys.AddNativeNode(1)
	a := sys.AllocateEbbId()
	b := sys.AllocateEbbId()
	if a == b {
		t.Fatal("duplicate system-wide ids")
	}
	// Ids allocated by the system must not collide with per-domain ones.
	for _, n := range sys.Nodes {
		if local := n.Domain.AllocateId(); local <= b {
			t.Fatalf("node %d local id %d collides with system ids", n.Id, local)
		}
	}
}

func TestFileSystemOffload(t *testing.T) {
	sys := NewSystem()
	native := sys.AddNativeNode(1)
	fs := NewFileSystem(sys)

	var readBack []byte
	var size uint64
	var names []string
	var readErr error
	native.Spawn(func(c *event.Ctx) {
		// Write via the native rep: function-ships to the frontend.
		fs.Write(c, native, "/etc/config", []byte("port=11211")).OnDone(func(r future.Result[future.Unit]) {
			if _, err := r.Get(); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			fs.Read(c, native, "/etc/config").OnDone(func(r future.Result[[]byte]) {
				readBack, readErr = r.Get()
			})
			fs.Stat(c, native, "/etc/config").OnDone(func(r future.Result[uint64]) {
				size, _ = r.Get()
			})
			fs.List(c, native).OnDone(func(r future.Result[[]string]) {
				names, _ = r.Get()
			})
		})
	})
	sys.K.RunUntil(5 * sim.Second)
	if readErr != nil {
		t.Fatalf("read: %v", readErr)
	}
	if string(readBack) != "port=11211" {
		t.Fatalf("read back %q", readBack)
	}
	if size != 10 {
		t.Fatalf("stat size %d", size)
	}
	if len(names) != 1 || names[0] != "/etc/config" {
		t.Fatalf("list %v", names)
	}
}

func TestFileSystemReadMissing(t *testing.T) {
	sys := NewSystem()
	native := sys.AddNativeNode(1)
	fs := NewFileSystem(sys)
	var err error
	done := false
	native.Spawn(func(c *event.Ctx) {
		fs.Read(c, native, "/does/not/exist").OnDone(func(r future.Result[[]byte]) {
			_, err = r.Get()
			done = true
		})
	})
	sys.K.RunUntil(5 * sim.Second)
	if !done || err == nil {
		t.Fatalf("missing file should error: done=%v err=%v", done, err)
	}
}

func TestFileSystemFrontendLocal(t *testing.T) {
	sys := NewSystem()
	fs := NewFileSystem(sys)
	front := sys.Frontend()
	var got []byte
	front.Spawn(func(c *event.Ctx) {
		fs.Write(c, front, "/a", []byte("x")).OnDone(func(future.Result[future.Unit]) {
			fs.Read(c, front, "/a").OnDone(func(r future.Result[[]byte]) {
				got = r.Must()
			})
		})
	})
	sys.K.RunUntil(1 * sim.Second)
	if string(got) != "x" {
		t.Fatalf("got %q", got)
	}
}

func TestBlockingOffloadFromEvent(t *testing.T) {
	// The paper's libuv port uses save/restore to give blocking semantics:
	// a native event blocks on a filesystem future.
	sys := NewSystem()
	native := sys.AddNativeNode(1)
	fs := NewFileSystem(sys)
	var got []byte
	var err error
	done := false
	native.Spawn(func(c *event.Ctx) {
		if _, werr := fs.Write(c, native, "/boot.cfg", []byte("cores=4")).Block(c); werr != nil {
			t.Errorf("write: %v", werr)
		}
		got, err = fs.Read(c, native, "/boot.cfg").Block(c)
		done = true
	})
	sys.K.RunUntil(5 * sim.Second)
	if !done {
		t.Fatal("blocked event never resumed")
	}
	if err != nil || string(got) != "cores=4" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestDomainKindsPerNode(t *testing.T) {
	sys := NewSystem()
	native := sys.AddNativeNode(2)
	// The frontend domain is hash-backed, natives array-backed; both must
	// serve the same Ebb API.
	for _, n := range []*Node{sys.Frontend(), native} {
		ref := core.Allocate(n.Domain, func(corei int) *struct{ v int } {
			return &struct{ v int }{v: corei}
		})
		if ref.Get(0).v != 0 {
			t.Fatal("rep wrong")
		}
	}
}
