// Package iobuf implements EbbRT's IOBuf primitive (paper §3.6): a
// descriptor that manages ownership of a region of memory plus a view of a
// portion of it, chainable into scatter/gather lists.
//
// IOBufs carry packet data from the device driver through the network stack
// to the application without copying: the stack adjusts the view (Advance,
// Retreat, TrimEnd) to strip or expose headers in place, and transmit paths
// hand chains of IOBufs to the device. Ownership is unique - a buffer is
// moved, never shared - mirroring the C++ unique_ptr discipline.
package iobuf

import (
	"encoding/binary"
	"fmt"
)

// IOBuf is one element of a circular doubly-linked chain. The zero value is
// not usable; construct with New, FromBytes, or Wrap.
type IOBuf struct {
	buf    []byte // backing storage (capacity)
	off    int    // start of the view within buf
	length int    // length of the view
	next   *IOBuf
	prev   *IOBuf
}

// New allocates a buffer with the given capacity and an empty view starting
// at offset 0. Use Append to extend the view as data is produced.
func New(capacity int) *IOBuf {
	b := &IOBuf{buf: make([]byte, capacity)}
	b.next = b
	b.prev = b
	return b
}

// FromBytes copies data into a fresh buffer whose view covers it entirely.
func FromBytes(data []byte) *IOBuf {
	b := New(len(data))
	copy(b.buf, data)
	b.length = len(data)
	return b
}

// Wrap takes ownership of data without copying; the view covers all of it.
func Wrap(data []byte) *IOBuf {
	b := &IOBuf{buf: data, length: len(data)}
	b.next = b
	b.prev = b
	return b
}

// Data returns the current view. The slice aliases the buffer; the network
// stack and applications read and write through it zero-copy.
func (b *IOBuf) Data() []byte { return b.buf[b.off : b.off+b.length] }

// Length reports the view length of this element only.
func (b *IOBuf) Length() int { return b.length }

// Capacity reports the total backing capacity of this element.
func (b *IOBuf) Capacity() int { return len(b.buf) }

// Headroom reports bytes available before the view, for prepending headers.
func (b *IOBuf) Headroom() int { return b.off }

// Tailroom reports bytes available after the view, for appending data.
func (b *IOBuf) Tailroom() int { return len(b.buf) - b.off - b.length }

// Advance moves the view start forward n bytes, shrinking the view; used to
// strip a header that has been consumed. It panics if n exceeds the view.
func (b *IOBuf) Advance(n int) {
	if n < 0 || n > b.length {
		panic(fmt.Sprintf("iobuf: Advance(%d) with view %d", n, b.length))
	}
	b.off += n
	b.length -= n
}

// Retreat moves the view start backward n bytes, exposing headroom; used to
// prepend a header in place. It panics if n exceeds the headroom.
func (b *IOBuf) Retreat(n int) {
	if n < 0 || n > b.off {
		panic(fmt.Sprintf("iobuf: Retreat(%d) with headroom %d", n, b.off))
	}
	b.off -= n
	b.length += n
}

// Append extends the view n bytes into the tailroom and returns the newly
// exposed region for the producer to fill. It panics on overflow.
func (b *IOBuf) Append(n int) []byte {
	if n < 0 || n > b.Tailroom() {
		panic(fmt.Sprintf("iobuf: Append(%d) with tailroom %d", n, b.Tailroom()))
	}
	start := b.off + b.length
	b.length += n
	return b.buf[start : start+n]
}

// TrimEnd shrinks the view by n bytes at the tail.
func (b *IOBuf) TrimEnd(n int) {
	if n < 0 || n > b.length {
		panic(fmt.Sprintf("iobuf: TrimEnd(%d) with view %d", n, b.length))
	}
	b.length -= n
}

// Next returns the following element of the chain (itself for a singleton).
func (b *IOBuf) Next() *IOBuf { return b.next }

// Prev returns the preceding element of the chain.
func (b *IOBuf) Prev() *IOBuf { return b.prev }

// IsChained reports whether the buffer is part of a multi-element chain.
func (b *IOBuf) IsChained() bool { return b.next != b }

// AppendChain links other's chain to the end of b's chain. After the call,
// iterating from b reaches every element of both chains. other must not
// already share a chain with b.
func (b *IOBuf) AppendChain(other *IOBuf) {
	if other == nil {
		return
	}
	bTail := b.prev
	oTail := other.prev
	bTail.next = other
	other.prev = bTail
	oTail.next = b
	b.prev = oTail
}

// Unlink removes b from its chain and returns the remainder's head (the
// element that followed b), or nil if b was a singleton.
func (b *IOBuf) Unlink() *IOBuf {
	if !b.IsChained() {
		return nil
	}
	next := b.next
	b.prev.next = b.next
	b.next.prev = b.prev
	b.next = b
	b.prev = b
	return next
}

// CountChainElements reports the number of elements in the chain.
func (b *IOBuf) CountChainElements() int {
	n := 1
	for cur := b.next; cur != b; cur = cur.next {
		n++
	}
	return n
}

// ComputeChainDataLength reports the total view length across the chain.
func (b *IOBuf) ComputeChainDataLength() int {
	total := b.length
	for cur := b.next; cur != b; cur = cur.next {
		total += cur.length
	}
	return total
}

// CopyOut copies the whole chain's data into a single contiguous slice.
// This is the explicit copy used only at simulation boundaries (and by the
// forced-copy ablation); the fast path never calls it.
func (b *IOBuf) CopyOut() []byte {
	out := make([]byte, 0, b.ComputeChainDataLength())
	out = append(out, b.Data()...)
	for cur := b.next; cur != b; cur = cur.next {
		out = append(out, cur.Data()...)
	}
	return out
}

// ForEach invokes fn on every element of the chain in order.
func (b *IOBuf) ForEach(fn func(*IOBuf)) {
	fn(b)
	for cur := b.next; cur != b; cur = cur.next {
		fn(cur)
	}
}

// DataPointer is a cursor over a chain, used to parse protocol headers that
// may straddle element boundaries. All multi-byte reads are big-endian
// (network byte order).
type DataPointer struct {
	head *IOBuf
	cur  *IOBuf
	pos  int  // position within cur's view
	done bool // cur has wrapped past the tail
}

// Reader returns a cursor positioned at the start of the chain.
func (b *IOBuf) Reader() *DataPointer { return &DataPointer{head: b, cur: b} }

// Remaining reports the bytes left between the cursor and the chain end.
func (p *DataPointer) Remaining() int {
	if p.done {
		return 0
	}
	n := p.cur.Length() - p.pos
	for cur := p.cur.next; cur != p.head; cur = cur.next {
		n += cur.Length()
	}
	return n
}

func (p *DataPointer) advanceElement() bool {
	for {
		if p.cur.next == p.head {
			p.done = true
			return false
		}
		p.cur = p.cur.next
		p.pos = 0
		if p.cur.Length() > 0 {
			return true
		}
	}
}

// ReadByte consumes one byte.
func (p *DataPointer) ReadByte() (byte, error) {
	for !p.done && p.pos >= p.cur.Length() {
		if !p.advanceElement() {
			break
		}
	}
	if p.done || p.pos >= p.cur.Length() {
		return 0, fmt.Errorf("iobuf: read past end of chain")
	}
	c := p.cur.Data()[p.pos]
	p.pos++
	return c, nil
}

// ReadBytes consumes n bytes. When the range lies within one element the
// returned slice aliases the buffer (zero-copy); otherwise it is assembled.
func (p *DataPointer) ReadBytes(n int) ([]byte, error) {
	for !p.done && p.pos >= p.cur.Length() && n > 0 {
		if !p.advanceElement() {
			break
		}
	}
	if n == 0 {
		return nil, nil
	}
	if !p.done && p.cur.Length()-p.pos >= n {
		out := p.cur.Data()[p.pos : p.pos+n]
		p.pos += n
		return out, nil
	}
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		c, err := p.ReadByte()
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// Skip consumes n bytes without returning them.
func (p *DataPointer) Skip(n int) error {
	for n > 0 {
		if p.done {
			return fmt.Errorf("iobuf: skip past end of chain")
		}
		avail := p.cur.Length() - p.pos
		if avail >= n {
			p.pos += n
			return nil
		}
		n -= avail
		p.pos = p.cur.Length()
		if !p.advanceElement() {
			return fmt.Errorf("iobuf: skip past end of chain")
		}
	}
	return nil
}

// ReadUint16 consumes a big-endian uint16.
func (p *DataPointer) ReadUint16() (uint16, error) {
	b, err := p.ReadBytes(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

// ReadUint32 consumes a big-endian uint32.
func (p *DataPointer) ReadUint32() (uint32, error) {
	b, err := p.ReadBytes(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

// ReadUint64 consumes a big-endian uint64.
func (p *DataPointer) ReadUint64() (uint64, error) {
	b, err := p.ReadBytes(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}
