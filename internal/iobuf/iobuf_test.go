package iobuf

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestViewManipulation(t *testing.T) {
	b := New(100)
	if b.Length() != 0 || b.Capacity() != 100 || b.Tailroom() != 100 {
		t.Fatal("fresh buffer geometry wrong")
	}
	region := b.Append(10)
	copy(region, "0123456789")
	if string(b.Data()) != "0123456789" {
		t.Fatalf("Data = %q", b.Data())
	}
	b.Advance(4)
	if string(b.Data()) != "456789" || b.Headroom() != 4 {
		t.Fatalf("after Advance: %q headroom=%d", b.Data(), b.Headroom())
	}
	b.Retreat(2)
	if string(b.Data()) != "23456789" {
		t.Fatalf("after Retreat: %q", b.Data())
	}
	b.TrimEnd(3)
	if string(b.Data()) != "23456" {
		t.Fatalf("after TrimEnd: %q", b.Data())
	}
}

func TestViewPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(*IOBuf)
	}{
		{"advance-overflow", func(b *IOBuf) { b.Advance(11) }},
		{"retreat-overflow", func(b *IOBuf) { b.Retreat(1) }},
		{"append-overflow", func(b *IOBuf) { b.Append(1000) }},
		{"trim-overflow", func(b *IOBuf) { b.TrimEnd(11) }},
		{"advance-negative", func(b *IOBuf) { b.Advance(-1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := New(20)
			b.Append(10)
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.fn(b)
		})
	}
}

func TestFromBytesCopies(t *testing.T) {
	src := []byte("hello")
	b := FromBytes(src)
	src[0] = 'X'
	if string(b.Data()) != "hello" {
		t.Fatal("FromBytes did not copy")
	}
}

func TestWrapAliases(t *testing.T) {
	src := []byte("hello")
	b := Wrap(src)
	src[0] = 'X'
	if string(b.Data()) != "Xello" {
		t.Fatal("Wrap should alias")
	}
}

func TestChaining(t *testing.T) {
	a := FromBytes([]byte("aa"))
	b := FromBytes([]byte("bb"))
	c := FromBytes([]byte("cc"))
	a.AppendChain(b)
	a.AppendChain(c)
	if a.CountChainElements() != 3 {
		t.Fatalf("elements = %d", a.CountChainElements())
	}
	if a.ComputeChainDataLength() != 6 {
		t.Fatalf("chain length = %d", a.ComputeChainDataLength())
	}
	if got := a.CopyOut(); !bytes.Equal(got, []byte("aabbcc")) {
		t.Fatalf("CopyOut = %q", got)
	}
	if a.Next() != b || b.Next() != c || c.Next() != a {
		t.Fatal("next pointers wrong")
	}
	if a.Prev() != c {
		t.Fatal("prev pointer wrong")
	}
}

func TestAppendChainOfChains(t *testing.T) {
	a := FromBytes([]byte("a"))
	b := FromBytes([]byte("b"))
	a.AppendChain(b)
	c := FromBytes([]byte("c"))
	d := FromBytes([]byte("d"))
	c.AppendChain(d)
	a.AppendChain(c)
	if got := a.CopyOut(); !bytes.Equal(got, []byte("abcd")) {
		t.Fatalf("CopyOut = %q", got)
	}
	if a.CountChainElements() != 4 {
		t.Fatalf("elements = %d", a.CountChainElements())
	}
}

func TestUnlink(t *testing.T) {
	a := FromBytes([]byte("a"))
	b := FromBytes([]byte("b"))
	c := FromBytes([]byte("c"))
	a.AppendChain(b)
	a.AppendChain(c)
	rest := b.Unlink()
	if rest != c {
		t.Fatal("Unlink should return following element")
	}
	if b.IsChained() {
		t.Fatal("unlinked element still chained")
	}
	if got := a.CopyOut(); !bytes.Equal(got, []byte("ac")) {
		t.Fatalf("after unlink chain = %q", got)
	}
	if a.Unlink(); a.IsChained() {
		t.Fatal("unlink pair failed")
	}
	if FromBytes([]byte("x")).Unlink() != nil {
		t.Fatal("Unlink singleton should return nil")
	}
}

func TestForEachOrder(t *testing.T) {
	a := FromBytes([]byte("1"))
	a.AppendChain(FromBytes([]byte("2")))
	a.AppendChain(FromBytes([]byte("3")))
	var out []byte
	a.ForEach(func(e *IOBuf) { out = append(out, e.Data()...) })
	if string(out) != "123" {
		t.Fatalf("ForEach order %q", out)
	}
}

func TestDataPointerSingleElement(t *testing.T) {
	b := FromBytes([]byte{0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 0x01, 0x02})
	p := b.Reader()
	if p.Remaining() != 10 {
		t.Fatalf("Remaining = %d", p.Remaining())
	}
	v16, err := p.ReadUint16()
	if err != nil || v16 != 0x1234 {
		t.Fatalf("ReadUint16 = %x, %v", v16, err)
	}
	v32, err := p.ReadUint32()
	if err != nil || v32 != 0x56789abc {
		t.Fatalf("ReadUint32 = %x, %v", v32, err)
	}
	if err := p.Skip(2); err != nil {
		t.Fatal(err)
	}
	c, err := p.ReadByte()
	if err != nil || c != 0x01 {
		t.Fatalf("ReadByte = %x, %v", c, err)
	}
	if p.Remaining() != 1 {
		t.Fatalf("Remaining = %d", p.Remaining())
	}
}

func TestDataPointerAcrossChain(t *testing.T) {
	a := FromBytes([]byte{0xde, 0xad})
	a.AppendChain(FromBytes([]byte{0xbe}))
	a.AppendChain(FromBytes([]byte{0xef, 0x12, 0x34, 0x56, 0x78, 0x9a}))
	p := a.Reader()
	v, err := p.ReadUint32()
	if err != nil || v != 0xdeadbeef {
		t.Fatalf("straddling ReadUint32 = %x, %v", v, err)
	}
	v64buf, err := p.ReadBytes(5)
	if err != nil || !bytes.Equal(v64buf, []byte{0x12, 0x34, 0x56, 0x78, 0x9a}) {
		t.Fatalf("ReadBytes = %x, %v", v64buf, err)
	}
	if _, err := p.ReadByte(); err == nil {
		t.Fatal("read past end should fail")
	}
}

func TestDataPointerEmptyElements(t *testing.T) {
	a := FromBytes([]byte("ab"))
	a.AppendChain(New(10)) // empty view
	a.AppendChain(FromBytes([]byte("cd")))
	p := a.Reader()
	got, err := p.ReadBytes(4)
	if err != nil || string(got) != "abcd" {
		t.Fatalf("ReadBytes = %q, %v", got, err)
	}
}

func TestDataPointerSkipPastEnd(t *testing.T) {
	b := FromBytes([]byte("abc"))
	p := b.Reader()
	if err := p.Skip(4); err == nil {
		t.Fatal("Skip past end should fail")
	}
}

func TestDataPointerUint64(t *testing.T) {
	b := FromBytes([]byte{0, 0, 0, 0, 0, 0, 0x12, 0x34})
	v, err := b.Reader().ReadUint64()
	if err != nil || v != 0x1234 {
		t.Fatalf("ReadUint64 = %x, %v", v, err)
	}
}

// Property: any split of a byte string into chain elements preserves the
// data under CopyOut and DataPointer traversal.
func TestChainSplitProperty(t *testing.T) {
	prop := func(data []byte, cuts []uint8) bool {
		head := New(0)
		rest := data
		for _, c := range cuts {
			if len(rest) == 0 {
				break
			}
			n := int(c)%len(rest) + 1
			head.AppendChain(FromBytes(rest[:n]))
			rest = rest[n:]
		}
		if len(rest) > 0 {
			head.AppendChain(FromBytes(rest))
		}
		if head.ComputeChainDataLength() != len(data) {
			return false
		}
		if !bytes.Equal(head.CopyOut(), data) {
			return false
		}
		p := head.Reader()
		got, err := p.ReadBytes(len(data))
		if len(data) == 0 {
			return err == nil
		}
		return err == nil && bytes.Equal(got, data) && p.Remaining() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
