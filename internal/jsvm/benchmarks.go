package jsvm

import (
	"fmt"

	"ebbrt/internal/sim"
)

// Benchmark is one workload of the V8 suite (version 7), re-implemented
// against the runtime's allocation API so its allocation, GC, and paging
// behaviour is real while its arithmetic is charged as abstract work.
type Benchmark struct {
	Name string
	Run  func(rt *Runtime)
}

// Suite returns the eight benchmarks of Figure 7 in the paper's order.
func Suite() []Benchmark {
	return []Benchmark{
		{Name: "Crypto", Run: runCrypto},
		{Name: "DeltaBlue", Run: runDeltaBlue},
		{Name: "EarleyBoyer", Run: runEarleyBoyer},
		{Name: "NavierStokes", Run: runNavierStokes},
		{Name: "RayTrace", Run: runRayTrace},
		{Name: "RegExp", Run: runRegExp},
		{Name: "Richards", Run: runRichards},
		{Name: "Splay", Run: runSplay},
	}
}

// Score is one benchmark result under one environment.
type Score struct {
	Name    string
	Elapsed sim.Time
	Stats   string
}

// RunSuite executes the whole suite under env.
func RunSuite(env Env) []Score {
	var out []Score
	for _, b := range Suite() {
		rt := New(env)
		b.Run(rt)
		out = append(out, Score{Name: b.Name, Elapsed: rt.Elapsed(), Stats: rt.Stats()})
	}
	return out
}

// ---------------------------------------------------------------- Crypto

// runCrypto models RSA-style bignum arithmetic: multi-precision multiply
// and modular reduction over digit arrays. Compute-bound, tiny heap.
func runCrypto(rt *Runtime) {
	const digits = 64
	a := rt.NewObject(digits)
	b := rt.NewObject(digits)
	rt.AddRoot(a)
	rt.AddRoot(b)
	for i := 0; i < digits; i++ {
		a.Slots[i] = Num(float64((i*2654435761 + 12345) & 0xffff))
		b.Slots[i] = Num(float64((i*40503 + 6789) & 0xffff))
	}
	acc := 0.0
	for round := 0; round < 2500; round++ {
		// Schoolbook multiply with modular reduction: digits^2 work.
		prod := rt.NewObject(2 * digits)
		rt.AddRoot(prod)
		for i := 0; i < digits; i++ {
			carry := 0.0
			ai := a.Slots[i].Num
			for j := 0; j < digits; j++ {
				t := prod.Slots[i+j].Num + ai*b.Slots[j].Num + carry
				carry = float64(int64(t) >> 16)
				prod.Slots[i+j] = Num(float64(int64(t) & 0xffff))
			}
			rt.Work(digits * 6)
		}
		// Reduction pass.
		for i := 2*digits - 1; i >= digits; i-- {
			acc += prod.Slots[i].Num
			rt.Work(8)
		}
		rt.RemoveRoot(prod)
	}
	if acc == 0 {
		panic("jsvm: crypto accumulator degenerate")
	}
}

// -------------------------------------------------------------- DeltaBlue

// DeltaBlue slot layout for constraint objects.
const (
	dbValue = iota
	dbStay
	dbDetermined
	dbSlotCount
)

// runDeltaBlue models the incremental constraint solver: chains of
// variables connected by equality constraints, re-planned and executed
// repeatedly. Object-graph heavy with moderate garbage.
func runDeltaBlue(rt *Runtime) {
	const chainLen = 200
	for round := 0; round < 2500; round++ {
		// Build a fresh constraint chain (the benchmark re-creates its
		// graph each projection test).
		vars := rt.NewObject(chainLen)
		rt.AddRoot(vars)
		for i := 0; i < chainLen; i++ {
			v := rt.NewObject(dbSlotCount)
			v.Slots[dbValue] = Num(0)
			v.Slots[dbStay] = Num(1)
			vars.Slots[i] = Obj(v)
			rt.Work(12)
		}
		// Plan: walk the chain determining each variable from its
		// upstream neighbour; execute the plan several times.
		for exec := 0; exec < 6; exec++ {
			val := float64(round)
			for i := 0; i < chainLen; i++ {
				v := vars.Slots[i].Obj
				v.Slots[dbValue] = Num(val)
				v.Slots[dbDetermined] = Num(1)
				val = val*0.999 + 1
				rt.Work(9)
			}
		}
		rt.RemoveRoot(vars)
	}
}

// ------------------------------------------------------------ EarleyBoyer

// Cons-cell layout.
const (
	consCar = iota
	consCdr
	consTag
	consSlots
)

// runEarleyBoyer models the symbolic rewrite workload: build s-expression
// trees, rewrite them by rule application, discard. Allocation heavy with
// short-lived structures.
func runEarleyBoyer(rt *Runtime) {
	var build func(rt *Runtime, depth, seed int) *Object
	build = func(rt *Runtime, depth, seed int) *Object {
		c := rt.NewObject(consSlots)
		c.Slots[consTag] = Num(float64(seed % 7))
		if depth > 0 {
			c.Slots[consCar] = Obj(build(rt, depth-1, seed*31+1))
			c.Slots[consCdr] = Obj(build(rt, depth-1, seed*17+2))
		}
		rt.Work(7)
		return c
	}
	var rewrite func(rt *Runtime, o *Object, depth int) *Object
	rewrite = func(rt *Runtime, o *Object, depth int) *Object {
		rt.Work(5)
		if o == nil || depth == 0 {
			return o
		}
		// Rule: swap children and bump the tag - allocating a new cell,
		// as the Scheme original's rewriting does.
		n := rt.NewObject(consSlots)
		n.Slots[consTag] = Num(float64(int(o.Slots[consTag].Num+1) % 7))
		if o.Slots[consCar].Kind == KindObject {
			n.Slots[consCdr] = Obj(rewrite(rt, o.Slots[consCar].Obj, depth-1))
		}
		if o.Slots[consCdr].Kind == KindObject {
			n.Slots[consCar] = Obj(rewrite(rt, o.Slots[consCdr].Obj, depth-1))
		}
		return n
	}
	for round := 0; round < 1000; round++ {
		tree := build(rt, 9, round)
		rt.AddRoot(tree)
		out := rewrite(rt, tree, 9)
		rt.RemoveRoot(tree)
		if out == nil {
			panic("jsvm: earley-boyer degenerate")
		}
	}
}

// ----------------------------------------------------------- NavierStokes

// runNavierStokes models the fluid solver: stencil sweeps over dense
// float arrays. Nearly pure compute; the grid is allocated once.
func runNavierStokes(rt *Runtime) {
	const n = 128
	grid := rt.NewObject(n * n)
	next := rt.NewObject(n * n)
	rt.AddRoot(grid)
	rt.AddRoot(next)
	for i := range grid.Slots {
		grid.Slots[i] = Num(float64(i%97) * 0.01)
	}
	for step := 0; step < 700; step++ {
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				i := y*n + x
				v := (grid.Slots[i-1].Num + grid.Slots[i+1].Num +
					grid.Slots[i-n].Num + grid.Slots[i+n].Num) * 0.25
				next.Slots[i] = Num(v*0.99 + grid.Slots[i].Num*0.01)
			}
			rt.Work((n - 2) * 7)
		}
		grid, next = next, grid
	}
}

// --------------------------------------------------------------- RayTrace

// Vector slot layout.
const (
	vecX = iota
	vecY
	vecZ
	vecSlots
)

func (rt *Runtime) vec(x, y, z float64) *Object {
	v := rt.NewObject(vecSlots)
	v.Slots[vecX] = Num(x)
	v.Slots[vecY] = Num(y)
	v.Slots[vecZ] = Num(z)
	return v
}

// runRayTrace models the ray tracer: per-ray temporary vector objects
// (the V8 original is notorious for temporary allocation pressure).
func runRayTrace(rt *Runtime) {
	const width, height = 96, 96
	// Scene: a few spheres held live.
	scene := rt.NewObject(8)
	rt.AddRoot(scene)
	for i := 0; i < 8; i++ {
		s := rt.NewObject(4)
		s.Slots[0] = Num(float64(i) - 4)     // x
		s.Slots[1] = Num(float64(i % 3))     // y
		s.Slots[2] = Num(5 + float64(i))     // z
		s.Slots[3] = Num(0.5 + float64(i%2)) // r
		scene.Slots[i] = Obj(s)
	}
	shade := 0.0
	for frame := 0; frame < 25; frame++ {
		for py := 0; py < height; py++ {
			for px := 0; px < width; px++ {
				// Ray direction and per-sphere intersection temporaries.
				dir := rt.vec(float64(px)/width-0.5, float64(py)/height-0.5, 1)
				bestT := 1e18
				for i := 0; i < 8; i++ {
					s := scene.Slots[i].Obj
					oc := rt.vec(-s.Slots[0].Num, -s.Slots[1].Num, -s.Slots[2].Num)
					b := oc.Slots[vecX].Num*dir.Slots[vecX].Num +
						oc.Slots[vecY].Num*dir.Slots[vecY].Num +
						oc.Slots[vecZ].Num*dir.Slots[vecZ].Num
					cc := oc.Slots[vecX].Num*oc.Slots[vecX].Num +
						oc.Slots[vecY].Num*oc.Slots[vecY].Num +
						oc.Slots[vecZ].Num*oc.Slots[vecZ].Num -
						s.Slots[3].Num*s.Slots[3].Num
					disc := b*b - cc
					if disc > 0 && -b < bestT {
						bestT = -b
					}
					rt.Work(22)
				}
				if bestT < 1e18 {
					shade += 1 / bestT
				}
			}
		}
	}
	_ = shade
}

// ----------------------------------------------------------------- RegExp

// runRegExp models the regexp workload: NFA simulation over generated
// strings. String allocation plus scanning work.
func runRegExp(rt *Runtime) {
	// Pattern: (ab|ba)*c - a tiny NFA with 4 states.
	type edge struct {
		from, to int
		ch       byte
	}
	nfa := []edge{{0, 1, 'a'}, {1, 0, 'b'}, {0, 2, 'b'}, {2, 0, 'a'}, {0, 3, 'c'}}
	rng := sim.NewRng(1234)
	matches := 0
	for round := 0; round < 50000; round++ {
		// Generate a subject string (allocated in the VM heap).
		n := 64 + rng.Intn(192)
		raw := make([]byte, n)
		for i := range raw {
			raw[i] = "abc"[rng.Intn(3)]
		}
		sv := rt.NewString(string(raw))
		subject := sv.Str
		// Simulate the NFA at every start offset.
		for start := 0; start < len(subject); start += 4 {
			state := 0
			for i := start; i < len(subject); i++ {
				moved := false
				for _, e := range nfa {
					if e.from == state && e.ch == subject[i] {
						state = e.to
						moved = true
						break
					}
				}
				rt.Work(6)
				if !moved {
					break
				}
				if state == 3 {
					matches++
					break
				}
			}
		}
	}
	if matches == 0 {
		panic("jsvm: regexp matched nothing")
	}
}

// --------------------------------------------------------------- Richards

// Task slot layout for the Richards OS-kernel simulation.
const (
	taskID = iota
	taskPri
	taskState
	taskWork
	taskSlots
)

// runRichards models the task scheduler benchmark: a handful of long-lived
// task objects exchanging packet objects.
func runRichards(rt *Runtime) {
	const nTasks = 6
	tasks := rt.NewObject(nTasks)
	rt.AddRoot(tasks)
	for i := 0; i < nTasks; i++ {
		task := rt.NewObject(taskSlots)
		task.Slots[taskID] = Num(float64(i))
		task.Slots[taskPri] = Num(float64(nTasks - i))
		task.Slots[taskState] = Num(0)
		tasks.Slots[i] = Obj(task)
	}
	queue := rt.NewObject(64) // packet ring
	rt.AddRoot(queue)
	head, tail := 0, 0
	enq := func(pkt *Object) {
		queue.Slots[tail%64] = Obj(pkt)
		tail++
	}
	for i := 0; i < 8; i++ {
		p := rt.NewObject(3)
		p.Slots[0] = Num(float64(i % nTasks))
		enq(p)
	}
	for iter := 0; iter < 1200000; iter++ {
		if head == tail {
			break
		}
		pkt := queue.Slots[head%64].Obj
		queue.Slots[head%64] = Undefined
		head++
		dst := int(pkt.Slots[0].Num)
		task := tasks.Slots[dst].Obj
		task.Slots[taskWork] = Num(task.Slots[taskWork].Num + 1)
		rt.Work(95)
		// Forward the packet (allocate a successor ~1/4 of the time,
		// reuse otherwise - packets are mostly recycled in the original).
		if iter%4 == 0 {
			np := rt.NewObject(3)
			np.Slots[0] = Num(float64((dst + 1) % nTasks))
			enq(np)
		} else {
			pkt.Slots[0] = Num(float64((dst + 3) % nTasks))
			enq(pkt)
		}
	}
}

// ------------------------------------------------------------------ Splay

// Splay tree node layout.
const (
	splayKey = iota
	splayLeft
	splayRight
	splayPayloadA
	splayPayloadB
	splaySlots
)

// runSplay is the memory-management stress of the suite: a large resident
// population of payload-bearing tree nodes with constant churn - the
// benchmark where the paper reports EbbRT's largest win (13.9%). Each
// insert allocates a node plus its payload tree (as the original's
// GeneratePayloadTree does) and retires the oldest resident node, so the
// working set stays around ten megabytes while allocation streams through
// it - precisely the pattern that makes the guest OS fault on heap growth.
func runSplay(rt *Runtime) {
	const resident = 25000
	const churn = 200000
	const payloadSlots = 20
	rng := sim.NewRng(555)

	registry := rt.NewObject(resident) // the live population, round-robin
	rt.AddRoot(registry)

	newNode := func(key float64) *Object {
		n := rt.NewObject(splaySlots)
		n.Slots[splayKey] = Num(key)
		pay := rt.NewObject(payloadSlots)
		for i := 0; i < payloadSlots; i++ {
			pay.Slots[i] = Num(key + float64(i))
		}
		n.Slots[splayPayloadA] = Obj(pay)
		n.Slots[splayPayloadB] = rt.NewString(fmt.Sprintf("String for key %d in leaf node", int(key)))
		return n
	}

	// insertAndSplay links the new node under a pseudo-random path of
	// resident nodes (BST walk by key) and rotates it up - charging the
	// traversal and rotation work of the original's splay operation.
	slot := 0
	insertAndSplay := func(key float64) {
		nn := newNode(key)
		rt.Work(60)
		// Walk a key-directed path through the resident registry,
		// splicing child links, like descending the splay tree.
		idx := int(uint32(key)) % resident
		for depth := 0; depth < 14; depth++ {
			rt.Work(14)
			cur := registry.Slots[idx]
			if cur.Kind != KindObject {
				break
			}
			side := splayLeft
			if key > cur.Obj.Slots[splayKey].Num {
				side = splayRight
			}
			cur.Obj.Slots[side] = Obj(nn)
			idx = (idx*31 + 7) % resident
		}
		rt.Work(40) // rotations to the root
		// The new node replaces the oldest resident, which becomes
		// garbage together with its payload tree.
		registry.Slots[slot] = Obj(nn)
		slot = (slot + 1) % resident
	}

	for i := 0; i < resident; i++ {
		insertAndSplay(float64(rng.Intn(1 << 30)))
	}
	for i := 0; i < churn; i++ {
		insertAndSplay(float64(rng.Intn(1 << 30)))
	}
}
