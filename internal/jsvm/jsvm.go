// Package jsvm is the managed-runtime substitute for the V8 JavaScript
// engine in the paper's node.js evaluation (§4.3, Figure 7).
//
// The paper attributes EbbRT's advantage on the pure-JavaScript V8
// benchmark suite to the *environment*, not the engine: EbbRT aggressively
// maps memory the engine allocates (no page faults), and its
// non-preemptive execution eliminates timer interrupts and their cache
// pollution. We therefore build a small managed runtime - tagged values,
// slot-based objects, a mark/sweep collector over a bump-allocated heap -
// and run the eight suite workloads (re-implemented against the runtime's
// allocation API) under two environment models. Real allocation, tracing,
// and operation counts come from executing the workloads; the environment
// charges page-fault and scheduler-tick costs exactly where a guest OS
// would impose them.
package jsvm

import (
	"fmt"

	"ebbrt/internal/sim"
)

// Env models the operating environment the engine runs in.
type Env struct {
	// Label names the environment ("EbbRT", "Linux").
	Label string
	// PageFault is charged per fresh 4 KiB page the heap touches. EbbRT
	// pre-maps the regions V8 reserves, so it never faults.
	PageFault sim.Time
	// TickInterval is the scheduler timer period (0 disables ticks).
	TickInterval sim.Time
	// TickCost is the direct cost of one tick (interrupt + scheduler).
	TickCost sim.Time
	// TickPollution is the indirect cost of one tick: cache and TLB
	// refill imposed on the application afterwards.
	TickPollution sim.Time
}

// EbbRTEnv is the native library OS environment.
func EbbRTEnv() Env {
	return Env{Label: "EbbRT"}
}

// LinuxEnv is the general-purpose OS environment.
func LinuxEnv() Env {
	return Env{
		Label:         "Linux",
		PageFault:     2300 * sim.Nanosecond,
		TickInterval:  1 * sim.Millisecond,
		TickCost:      1800 * sim.Nanosecond,
		TickPollution: 9500 * sim.Nanosecond,
	}
}

// heapPageSize is the allocation-arena page granularity.
const heapPageSize = 4096

// Kind tags a Value.
type Kind byte

// Value kinds.
const (
	KindUndefined Kind = iota
	KindNumber
	KindObject
	KindString
)

// Value is a tagged VM value.
type Value struct {
	Kind Kind
	Num  float64
	Obj  *Object
	Str  string
}

// Undefined is the undefined value.
var Undefined = Value{}

// Num makes a number value.
func Num(f float64) Value { return Value{Kind: KindNumber, Num: f} }

// Obj makes an object value.
func Obj(o *Object) Value { return Value{Kind: KindObject, Obj: o} }

// Str makes a string value.
func Str(s string) Value { return Value{Kind: KindString, Str: s} }

// Object is a slot-based heap object (V8's fast-mode objects are likewise
// fixed layouts; named properties map to slot indices at "compile" time).
type Object struct {
	Slots []Value
	mark  bool
	size  int
	prev  *Object // heap intrusive list for sweeping
	next  *Object
}

// Runtime is one engine instance executing under an environment model.
type Runtime struct {
	env Env

	// Virtual-time accounting.
	elapsed      sim.Time
	sinceTick    sim.Time
	heapBytes    int64 // bytes allocated since last GC
	totalAlloc   int64
	arenaPos     int64 // bump pointer; resets to live bytes at GC
	highWater    int64 // largest arena extent ever touched
	liveBytes    int64
	stringBytes  int64 // untraced string storage since last GC
	touchedPages int64
	live         int64

	// GC bookkeeping.
	objects   *Object // doubly-linked list of all objects
	roots     []*Object
	gcTrigger int64
	GCCount   int64
	Faults    int64
	Ticks     int64
}

// minGCTrigger is the smallest allocation volume between collections.
const minGCTrigger = 1 << 20

// New creates a runtime under the given environment.
func New(env Env) *Runtime {
	return &Runtime{env: env, gcTrigger: minGCTrigger}
}

// Elapsed reports the virtual time the program has consumed.
func (rt *Runtime) Elapsed() sim.Time { return rt.elapsed }

// charge adds CPU time and fires environment ticks as virtual time passes.
func (rt *Runtime) charge(d sim.Time) {
	rt.elapsed += d
	if rt.env.TickInterval == 0 {
		return
	}
	rt.sinceTick += d
	for rt.sinceTick >= rt.env.TickInterval {
		rt.sinceTick -= rt.env.TickInterval
		rt.Ticks++
		rt.elapsed += rt.env.TickCost + rt.env.TickPollution
	}
}

// Work charges n abstract operations (1 op = 1 ns at the reference clock).
// Benchmarks call it for their compute phases; allocation charges itself.
func (rt *Runtime) Work(n int) { rt.charge(sim.Time(n)) }

// allocCost is the engine-side cost of a bump allocation.
const allocCost = 4 * sim.Nanosecond

// NewObject allocates an object with n slots.
func (rt *Runtime) NewObject(n int) *Object {
	size := 16 + 16*n
	o := &Object{Slots: make([]Value, n), size: size}
	rt.account(int64(size))
	// Intrusive list insert.
	o.next = rt.objects
	if rt.objects != nil {
		rt.objects.prev = o
	}
	rt.objects = o
	rt.live++
	return o
}

// NewString allocates a string of the given length and returns its value.
// Strings are not traced: the collector treats string storage as
// reclaimable each cycle (flat payloads dominate string lifetimes in the
// suite's workloads).
func (rt *Runtime) NewString(s string) Value {
	size := int64(16 + len(s))
	rt.account(size)
	rt.stringBytes += size
	return Str(s)
}

// account charges allocation costs, page touches, and possibly GC.
//
// The arena is a bump allocator that resets to the live size at each
// collection, so the OS-visible footprint is the high-water mark of the
// working set: the engine faults (under Linux) only when the heap grows
// past memory it has already touched - EbbRT pre-maps the reservation and
// never faults (paper §4.3).
func (rt *Runtime) account(size int64) {
	rt.charge(allocCost)
	rt.totalAlloc += size
	rt.heapBytes += size
	rt.liveBytes += size
	rt.arenaPos += size
	if rt.arenaPos > rt.highWater {
		fresh := (rt.arenaPos + heapPageSize - 1) / heapPageSize * heapPageSize
		prev := (rt.highWater + heapPageSize - 1) / heapPageSize * heapPageSize
		pages := (fresh - prev) / heapPageSize
		rt.highWater = rt.arenaPos
		if pages > 0 {
			rt.touchedPages += pages
			if rt.env.PageFault > 0 {
				rt.Faults += pages
				rt.charge(sim.Time(pages) * rt.env.PageFault)
			}
		}
	}
	if rt.heapBytes >= rt.gcTrigger {
		rt.gc()
	}
}

// AddRoot registers a GC root.
func (rt *Runtime) AddRoot(o *Object) { rt.roots = append(rt.roots, o) }

// RemoveRoot unregisters the most recently added instance of o.
func (rt *Runtime) RemoveRoot(o *Object) {
	for i := len(rt.roots) - 1; i >= 0; i-- {
		if rt.roots[i] == o {
			rt.roots = append(rt.roots[:i], rt.roots[i+1:]...)
			return
		}
	}
}

// gc runs a stop-the-world mark/sweep collection.
func (rt *Runtime) gc() {
	rt.GCCount++
	// Mark.
	var stack []*Object
	for _, r := range rt.roots {
		if r != nil && !r.mark {
			r.mark = true
			stack = append(stack, r)
		}
	}
	marked := int64(0)
	for len(stack) > 0 {
		o := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		marked++
		for _, v := range o.Slots {
			if v.Kind == KindObject && v.Obj != nil && !v.Obj.mark {
				v.Obj.mark = true
				stack = append(stack, v.Obj)
			}
		}
	}
	// Sweep.
	swept := int64(0)
	sweptBytes := int64(0)
	for o := rt.objects; o != nil; {
		next := o.next
		if o.mark {
			o.mark = false
		} else {
			swept++
			sweptBytes += int64(o.size)
			if o.prev != nil {
				o.prev.next = o.next
			} else {
				rt.objects = o.next
			}
			if o.next != nil {
				o.next.prev = o.prev
			}
			o.prev, o.next = nil, nil
		}
		o = next
	}
	rt.live -= swept
	rt.liveBytes -= sweptBytes + rt.stringBytes
	rt.stringBytes = 0
	rt.heapBytes = 0
	// The arena compacts down to the survivors; pages beyond the high
	// water mark stay mapped. The next collection triggers after the heap
	// grows by the live size again (V8-style adaptive limit).
	rt.arenaPos = rt.liveBytes
	rt.gcTrigger = rt.liveBytes
	if rt.gcTrigger < minGCTrigger {
		rt.gcTrigger = minGCTrigger
	}
	// Collection cost: tracing live objects plus sweeping dead ones.
	rt.charge(sim.Time(marked*14 + swept*6))
}

// Stats summarizes a run for EXPERIMENTS.md.
func (rt *Runtime) Stats() string {
	return fmt.Sprintf("alloc=%dMB pages=%d faults=%d gcs=%d ticks=%d live=%d",
		rt.totalAlloc>>20, rt.touchedPages, rt.Faults, rt.GCCount, rt.Ticks, rt.live)
}
