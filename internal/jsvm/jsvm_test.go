package jsvm

import (
	"math"
	"testing"

	"ebbrt/internal/sim"
)

func TestGCCollectsGarbage(t *testing.T) {
	rt := New(EbbRTEnv())
	root := rt.NewObject(1)
	rt.AddRoot(root)
	// Allocate far past the GC trigger with everything unreachable.
	for i := 0; i < 200000; i++ {
		o := rt.NewObject(8)
		o.Slots[0] = Num(float64(i))
	}
	if rt.GCCount == 0 {
		t.Fatal("GC never ran")
	}
	// Garbage allocated after the last automatic collection is still
	// unswept; a final explicit collection must leave only the root.
	rt.gc()
	if rt.live > 1 {
		t.Fatalf("%d objects survive with only one root", rt.live)
	}
}

func TestGCPreservesReachable(t *testing.T) {
	rt := New(EbbRTEnv())
	root := rt.NewObject(100)
	rt.AddRoot(root)
	for i := 0; i < 100; i++ {
		o := rt.NewObject(2)
		o.Slots[0] = Num(float64(i))
		root.Slots[i] = Obj(o)
	}
	// Deep chain reachable through slot 0.
	cur := root.Slots[0].Obj
	for i := 0; i < 50; i++ {
		n := rt.NewObject(2)
		n.Slots[0] = Num(float64(i))
		cur.Slots[1] = Obj(n)
		cur = n
	}
	before := rt.live
	rt.gc()
	if rt.live != before {
		t.Fatalf("GC freed reachable objects: %d -> %d", before, rt.live)
	}
	// Values intact.
	for i := 0; i < 100; i++ {
		if root.Slots[i].Obj.Slots[0].Num != float64(i) {
			t.Fatal("object corrupted by GC")
		}
	}
}

func TestRemoveRootFreesSubgraph(t *testing.T) {
	rt := New(EbbRTEnv())
	a := rt.NewObject(1)
	rt.AddRoot(a)
	b := rt.NewObject(1)
	rt.AddRoot(b)
	rt.RemoveRoot(a)
	rt.gc()
	if rt.live != 1 {
		t.Fatalf("live = %d after removing one of two roots", rt.live)
	}
}

func TestLinuxEnvChargesFaultsAndTicks(t *testing.T) {
	run := func(env Env) (*Runtime, sim.Time) {
		rt := New(env)
		root := rt.NewObject(1)
		rt.AddRoot(root)
		for i := 0; i < 100000; i++ {
			rt.NewObject(16)
			rt.Work(100)
		}
		return rt, rt.Elapsed()
	}
	ebb, ebbTime := run(EbbRTEnv())
	lin, linTime := run(LinuxEnv())
	if ebb.Faults != 0 || ebb.Ticks != 0 {
		t.Fatalf("EbbRT env charged faults=%d ticks=%d", ebb.Faults, ebb.Ticks)
	}
	if lin.Faults == 0 || lin.Ticks == 0 {
		t.Fatalf("Linux env charged faults=%d ticks=%d", lin.Faults, lin.Ticks)
	}
	if linTime <= ebbTime {
		t.Fatalf("Linux %v should exceed EbbRT %v", linTime, ebbTime)
	}
}

func TestHighWaterFaultModel(t *testing.T) {
	rt := New(LinuxEnv())
	root := rt.NewObject(1)
	rt.AddRoot(root)
	// Churn garbage within a bounded working set: after the first trigger
	// the arena recycles, so faults must be far below total allocation.
	for i := 0; i < 500000; i++ {
		rt.NewObject(8)
	}
	totalPages := rt.totalAlloc / heapPageSize
	if rt.Faults*10 > totalPages {
		t.Fatalf("faults %d not bounded by working set (total pages %d)", rt.Faults, totalPages)
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a := RunSuite(EbbRTEnv())
	b := RunSuite(EbbRTEnv())
	for i := range a {
		if a[i].Elapsed != b[i].Elapsed {
			t.Fatalf("%s nondeterministic: %v vs %v", a[i].Name, a[i].Elapsed, b[i].Elapsed)
		}
	}
}

func TestSuiteShapeMatchesPaper(t *testing.T) {
	ebb := RunSuite(EbbRTEnv())
	lin := RunSuite(LinuxEnv())
	if len(ebb) != 8 {
		t.Fatalf("suite has %d benchmarks", len(ebb))
	}
	product := 1.0
	var splayGain float64
	for i := range ebb {
		gain := float64(lin[i].Elapsed)/float64(ebb[i].Elapsed) - 1
		t.Logf("%-14s EbbRT=%8.1fms Linux=%8.1fms gain=%5.2f%%  [%s]",
			ebb[i].Name, float64(ebb[i].Elapsed)/1e6, float64(lin[i].Elapsed)/1e6, gain*100, lin[i].Stats)
		if gain <= 0 {
			t.Errorf("%s: EbbRT does not win (gain %.2f%%)", ebb[i].Name, gain*100)
		}
		product *= 1 + gain
		if ebb[i].Name == "Splay" {
			splayGain = gain
		}
	}
	overall := math.Pow(product, 1.0/8) - 1
	t.Logf("overall geometric-mean gain: %.2f%% (paper: 4.09%%)", overall*100)
	if overall < 0.01 || overall > 0.12 {
		t.Errorf("overall gain %.2f%% outside plausible band around the paper's 4.09%%", overall*100)
	}
	if splayGain < 0.06 {
		t.Errorf("Splay gain %.2f%% too small; paper reports the largest gain there (13.9%%)", splayGain*100)
	}
	// Splay must be the biggest winner.
	for i := range ebb {
		gain := float64(lin[i].Elapsed)/float64(ebb[i].Elapsed) - 1
		if ebb[i].Name != "Splay" && gain > splayGain {
			t.Errorf("%s gain %.2f%% exceeds Splay's %.2f%%", ebb[i].Name, gain*100, splayGain*100)
		}
	}
}
