package load

import (
	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/event"
	"ebbrt/internal/sim"
)

// OpOutcome classifies one replicated-cluster operation as the load
// generator scores it.
type OpOutcome struct {
	// OK: the operation succeeded (write reached quorum / read was
	// served by some replica).
	OK bool
	// Miss: a read was answered authoritatively with key-not-found.
	Miss bool
	// NetErr: the operation failed in the network or at a quorum.
	NetErr bool
}

// KVClient abstracts the replicated client Ebb for the load generator,
// keeping this package decoupled from the cluster package (the
// experiment harness adapts cluster.Client to it).
type KVClient interface {
	Get(c *event.Ctx, key []byte, done func(c *event.Ctx, o OpOutcome))
	Set(c *event.Ctx, key, value []byte, done func(c *event.Ctx, o OpOutcome))
}

// KVBatchClient is a KVClient that can read several keys as one batch.
// When ClusterLoadConfig.MultiGet > 1 and the client implements it,
// read arrivals are issued through GetMulti; outs is index-aligned with
// keys.
type KVBatchClient interface {
	KVClient
	GetMulti(c *event.Ctx, keys [][]byte, done func(c *event.Ctx, outs []OpOutcome))
}

// ChaosEvent is a scheduled fault (or any side effect) injected during
// a measured run; At is relative to measurement start.
type ChaosEvent struct {
	At sim.Time
	Fn func()
}

// ClusterLoadConfig drives one client-Ebb load run.
type ClusterLoadConfig struct {
	// TargetRPS is the open-loop Poisson arrival rate.
	TargetRPS float64
	// Warmup runs load before measurement begins.
	Warmup sim.Time
	// Duration is the measured window.
	Duration sim.Time
	// Bucket is the timeline resolution (default Duration/50).
	Bucket sim.Time
	// Seed feeds the workload and arrival processes.
	Seed uint64
	// ETC is the workload shape; the zero value selects DefaultETC.
	ETC ETCConfig
	// Events are faults injected at fixed offsets into the measurement.
	Events []ChaosEvent
	// StatsTopK is how many keys the per-key frequency summary keeps
	// (default DefaultStatsTopK).
	StatsTopK int
	// MultiGet, when > 1, turns each read arrival into a batch of that
	// many keys (the first from NextOp, the rest drawn from the same
	// popularity distribution), issued through KVBatchClient.GetMulti
	// when the client supports it and as independent Gets otherwise.
	// Every key scores as one operation, so throughput stays comparable
	// with single-key runs.
	MultiGet int
}

// LoadBucket is one timeline slot of a measured run.
type LoadBucket struct {
	// Start is the bucket's offset from measurement start.
	Start sim.Time
	// Completed counts operations that finished (successfully) in this
	// bucket, by completion time.
	Completed uint64
	// Hits and Misses partition completed reads.
	Hits, Misses uint64
	// NetErrs counts operations that failed with a network/quorum error.
	NetErrs uint64
}

// ClusterLoadResult is one measured run through the client Ebb.
type ClusterLoadResult struct {
	TargetRPS   float64
	AchievedRPS float64
	Mean        sim.Time
	P99         sim.Time
	Completed   uint64
	Hits        uint64
	Misses      uint64
	NetErrs     uint64
	// Timeline is the per-bucket completion record, for locating a
	// failure window inside the run.
	Timeline []LoadBucket
	// BucketWidth is the timeline resolution used.
	BucketWidth sim.Time
	// MeasuredFrom is the absolute virtual time measurement started,
	// for correlating external events (evictions) with the timeline.
	MeasuredFrom sim.Time
	// Populated counts keys successfully written during prepopulation.
	Populated int
	// Keys is the measured window's per-key frequency summary (the
	// offered hot-key share).
	Keys KeyStats
	// PerSource is each load source's completed-operation count (one
	// entry per frontend in a RunClusterLoadMulti run; a single entry
	// for RunClusterLoad).
	PerSource []uint64
}

// WindowStats aggregates the timeline buckets fully inside [from, to)
// - offsets from measurement start - into throughput (completed
// operations per second) and read hit rate. Experiments use it to
// compare phases of one run: before/after a kill, a join, or a
// decommission.
func (r ClusterLoadResult) WindowStats(from, to sim.Time) (rps, hitRate float64) {
	var completed, hits, misses uint64
	var covered sim.Time
	for _, b := range r.Timeline {
		if b.Start >= from && b.Start+r.BucketWidth <= to {
			completed += b.Completed
			hits += b.Hits
			misses += b.Misses
			covered += r.BucketWidth
		}
	}
	if covered == 0 {
		return 0, 0
	}
	rps = float64(completed) / (float64(covered) / 1e9)
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	return rps, hitRate
}

// loadSource is one frontend's arrival process: its own client, cores,
// and RNG, offering an equal slice of the target rate.
type loadSource struct {
	kv        KVClient
	mgrs      []*event.Manager
	arrRng    *sim.Rng
	rate      float64
	completed uint64
}

// clusterLoad is one running generator.
type clusterLoad struct {
	cfg       ClusterLoadConfig
	work      *Workload
	sources   []*loadSource
	rec       *sim.Recorder
	keyFreq   *keyCounter
	measStart sim.Time
	measEnd   sim.Time
	timeline  []LoadBucket
	completed uint64
	hits      uint64
	misses    uint64
	netErrs   uint64
}

// RunClusterLoad drives the ETC workload through a replicated cluster
// client: prepopulates the keyspace with acknowledged (quorum) writes,
// then offers open-loop Poisson arrivals for Warmup+Duration,
// recording a completion timeline. Unlike RunMutilateSharded - which
// aims raw connections at each shard - every operation here takes the
// full replicated data path: ring lookup, write fan-out, read
// failover. cfg.Events inject faults mid-measurement, which is how the
// availability experiment kills a backend under load.
func RunClusterLoad(rt appnet.Runtime, kv KVClient, cfg ClusterLoadConfig) ClusterLoadResult {
	return RunClusterLoadMulti([]appnet.Runtime{rt}, []KVClient{kv}, cfg)
}

// RunClusterLoadMulti is RunClusterLoad over a frontend tier: one load
// source per (runtime, client) pair, each offering TargetRPS/N Poisson
// arrivals from its own cores through its own client Ebb, all sharing
// one workload and scored into one aggregated timeline. All runtimes
// must live on one simulation kernel.
func RunClusterLoadMulti(rts []appnet.Runtime, kvs []KVClient, cfg ClusterLoadConfig) ClusterLoadResult {
	if len(rts) == 0 || len(rts) != len(kvs) {
		panic("load: RunClusterLoadMulti needs one runtime per client")
	}
	if cfg.ETC.KeySpace == 0 {
		cfg.ETC = DefaultETC()
	}
	if cfg.Bucket <= 0 {
		cfg.Bucket = cfg.Duration / 50
	}
	m := &clusterLoad{
		cfg:  cfg,
		work: NewWorkload(cfg.ETC, cfg.Seed),
		rec:  sim.NewRecorder(int(cfg.TargetRPS * float64(cfg.Duration) / 1e9)),
	}
	for i := range rts {
		m.sources = append(m.sources, &loadSource{
			kv:     kvs[i],
			mgrs:   rts[i].Mgrs(),
			arrRng: sim.NewRng(cfg.Seed ^ 0x9e3779b9 ^ uint64(i)*0xbf58476d1ce4e5b9),
			rate:   cfg.TargetRPS / float64(len(rts)),
		})
	}
	m.keyFreq = newKeyCounter(len(m.work.Keys))
	k := rts[0].Kernel()

	// Prepopulate through the first client: every key lands on its full
	// replica set via acknowledged quorum writes, so reads during later
	// faults have live replicas to fail over to.
	populated := 0
	pop := m.sources[0]
	for i := range m.work.Keys {
		i := i
		pop.mgrs[i%len(pop.mgrs)].Spawn(func(c *event.Ctx) {
			pop.kv.Set(c, m.work.Keys[i], m.work.Values[i], func(c *event.Ctx, o OpOutcome) {
				if o.OK {
					populated++
				}
			})
		})
	}
	popDeadline := k.Now() + 2*sim.Second
	for populated < len(m.work.Keys) && k.Now() < popDeadline {
		k.RunFor(1 * sim.Millisecond)
	}

	m.measStart = k.Now() + cfg.Warmup
	m.measEnd = m.measStart + cfg.Duration
	nBuckets := int((cfg.Duration + cfg.Bucket - 1) / cfg.Bucket)
	m.timeline = make([]LoadBucket, nBuckets)
	for i := range m.timeline {
		m.timeline[i].Start = sim.Time(i) * cfg.Bucket
	}
	for _, ev := range cfg.Events {
		ev := ev
		k.At(m.measStart+ev.At, ev.Fn)
	}

	for _, src := range m.sources {
		m.scheduleNextArrival(k, src)
	}
	k.RunUntil(m.measEnd + 20*sim.Millisecond)

	perSource := make([]uint64, len(m.sources))
	for i, src := range m.sources {
		perSource[i] = src.completed
	}
	return ClusterLoadResult{
		TargetRPS:    cfg.TargetRPS,
		AchievedRPS:  float64(m.completed) / (float64(cfg.Duration) / 1e9),
		Mean:         m.rec.Mean(),
		P99:          m.rec.Percentile(99),
		Completed:    m.completed,
		Hits:         m.hits,
		Misses:       m.misses,
		NetErrs:      m.netErrs,
		Timeline:     m.timeline,
		BucketWidth:  cfg.Bucket,
		MeasuredFrom: m.measStart,
		Populated:    populated,
		Keys:         m.keyFreq.stats(cfg.StatsTopK),
		PerSource:    perSource,
	}
}

// scheduleNextArrival generates one source's open-loop Poisson process,
// spreading submissions round-robin across that source's cores.
func (m *clusterLoad) scheduleNextArrival(k *sim.Kernel, src *loadSource) {
	gap := src.arrRng.Exp(1e9 / src.rate)
	k.After(sim.Time(gap), func() {
		if k.Now() >= m.measEnd {
			return
		}
		keyIdx, isGet := m.work.NextOp()
		arrival := k.Now()
		if arrival >= m.measStart {
			m.keyFreq.note(keyIdx)
		}
		mgr := src.mgrs[int(arrival/sim.Microsecond)%len(src.mgrs)]
		if isGet && m.cfg.MultiGet > 1 {
			idxs := make([]int, m.cfg.MultiGet)
			idxs[0] = keyIdx
			for j := 1; j < len(idxs); j++ {
				idxs[j] = m.work.NextKey()
				if arrival >= m.measStart {
					m.keyFreq.note(idxs[j])
				}
			}
			mgr.Spawn(func(c *event.Ctx) { m.submitMulti(c, src, arrival, idxs) })
		} else {
			mgr.Spawn(func(c *event.Ctx) {
				done := func(c *event.Ctx, o OpOutcome) { m.record(c, src, arrival, isGet, o) }
				if isGet {
					src.kv.Get(c, m.work.Keys[keyIdx], done)
				} else {
					src.kv.Set(c, m.work.Keys[keyIdx], m.work.newValue(), done)
				}
			})
		}
		m.scheduleNextArrival(k, src)
	})
}

// submitMulti issues one multiget arrival: through the client's batched
// GetMulti when it has one, as independent Gets otherwise (the per-op
// baseline pays one round per key either way). Each key scores as its
// own operation.
func (m *clusterLoad) submitMulti(c *event.Ctx, src *loadSource, arrival sim.Time, idxs []int) {
	keys := make([][]byte, len(idxs))
	for j, idx := range idxs {
		keys[j] = m.work.Keys[idx]
	}
	if bkv, ok := src.kv.(KVBatchClient); ok {
		bkv.GetMulti(c, keys, func(c *event.Ctx, outs []OpOutcome) {
			for _, o := range outs {
				m.record(c, src, arrival, true, o)
			}
		})
		return
	}
	for _, key := range keys {
		src.kv.Get(c, key, func(c *event.Ctx, o OpOutcome) {
			m.record(c, src, arrival, true, o)
		})
	}
}

// record scores one completion into the timeline bucket it finished in.
func (m *clusterLoad) record(c *event.Ctx, src *loadSource, arrival sim.Time, isGet bool, o OpOutcome) {
	now := c.Now()
	if arrival < m.measStart || now > m.measEnd {
		return
	}
	idx := int((now - m.measStart) / m.cfg.Bucket)
	if idx < 0 || idx >= len(m.timeline) {
		return
	}
	b := &m.timeline[idx]
	switch {
	case o.NetErr:
		m.netErrs++
		b.NetErrs++
		return
	case isGet && o.Miss:
		m.misses++
		b.Misses++
		return
	}
	m.completed++
	b.Completed++
	src.completed++
	if isGet {
		m.hits++
		b.Hits++
	}
	m.rec.Add(now - arrival)
}
