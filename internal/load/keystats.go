package load

import "sort"

// Per-key frequency accounting. The ETC workload is Zipf-skewed by
// construction, but until now experiments could only infer the skew
// indirectly (from which shard saturated). Every generator now counts
// the measured window's per-key arrivals and exports the top of the
// distribution, so an experiment can report the hot-key share it
// actually offered.

// KeyFreq is one key's observed share of the measured op stream.
type KeyFreq struct {
	// KeyIdx indexes the workload's pre-generated key population.
	KeyIdx int
	// Count is the key's measured-window arrivals.
	Count uint64
	// Share is Count over the window's total arrivals.
	Share float64
}

// KeyStats is the per-key frequency summary of one measured run.
type KeyStats struct {
	// Total counts measured-window arrivals across all keys.
	Total uint64
	// TopK lists the most frequent keys, descending (ties broken by key
	// index, so the summary is deterministic).
	TopK []KeyFreq
	// TopShare is the summed share of TopK - the hot-key share a cache
	// of that many entries could absorb at best.
	TopShare float64
}

// DefaultStatsTopK is how many keys the generators summarize.
const DefaultStatsTopK = 10

// keyCounter tallies per-key arrivals inside the measured window.
type keyCounter struct {
	counts []uint64
	total  uint64
}

func newKeyCounter(keySpace int) *keyCounter {
	return &keyCounter{counts: make([]uint64, keySpace)}
}

func (kc *keyCounter) note(keyIdx int) {
	kc.counts[keyIdx]++
	kc.total++
}

// stats summarizes the top k keys by count.
func (kc *keyCounter) stats(k int) KeyStats {
	if k <= 0 {
		k = DefaultStatsTopK
	}
	idx := make([]int, 0, len(kc.counts))
	for i, n := range kc.counts {
		if n > 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		if kc.counts[idx[a]] != kc.counts[idx[b]] {
			return kc.counts[idx[a]] > kc.counts[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if len(idx) > k {
		idx = idx[:k]
	}
	out := KeyStats{Total: kc.total, TopK: make([]KeyFreq, len(idx))}
	for i, ki := range idx {
		f := KeyFreq{KeyIdx: ki, Count: kc.counts[ki]}
		if kc.total > 0 {
			f.Share = float64(f.Count) / float64(kc.total)
		}
		out.TopK[i] = f
		out.TopShare += f.Share
	}
	return out
}

// ShardLoad is one backend's measured completions - the per-backend
// breakdown of a sharded run's aggregate throughput.
type ShardLoad struct {
	// Shard indexes the run's shard list.
	Shard int
	// Completed counts measured-window completions served by the shard.
	Completed uint64
	// RPS is Completed over the measured duration.
	RPS float64
}
