package load

import (
	"reflect"
	"testing"

	"ebbrt/internal/sim"
)

func TestKeyCounterTopKDeterministic(t *testing.T) {
	kc := newKeyCounter(10)
	for i := 0; i < 10; i++ {
		for n := 0; n <= i; n++ {
			kc.note(i)
		}
	}
	st := kc.stats(3)
	if st.Total != 55 {
		t.Fatalf("total %d, want 55", st.Total)
	}
	if len(st.TopK) != 3 {
		t.Fatalf("topK len %d", len(st.TopK))
	}
	want := []KeyFreq{
		{KeyIdx: 9, Count: 10, Share: 10.0 / 55},
		{KeyIdx: 8, Count: 9, Share: 9.0 / 55},
		{KeyIdx: 7, Count: 8, Share: 8.0 / 55},
	}
	if !reflect.DeepEqual(st.TopK, want) {
		t.Fatalf("topK %+v, want %+v", st.TopK, want)
	}
	if st.TopShare <= 0.49 || st.TopShare >= 0.50 {
		t.Fatalf("topShare %f, want 27/55", st.TopShare)
	}
	// Ties break by key index so the summary is stable run to run.
	tie := newKeyCounter(4)
	tie.note(2)
	tie.note(1)
	tie.note(3)
	tst := tie.stats(2)
	if tst.TopK[0].KeyIdx != 1 || tst.TopK[1].KeyIdx != 2 {
		t.Fatalf("tie-break not by index: %+v", tst.TopK)
	}
}

// TestShardedExportsPerShardAndKeyStats: the sharded generator must
// report each backend's RPS alongside the aggregate and expose the
// measured hot-key share directly.
func TestShardedExportsPerShardAndKeyStats(t *testing.T) {
	n := newShardedNet(t, 2, 4)
	shards := []Shard{n.shard(0), n.shard(1)}
	route := func(key []byte) int { return int(key[len(key)-1]) % 2 }

	cfg := DefaultMutilate(40000)
	cfg.Warmup = 10 * sim.Millisecond
	cfg.Duration = 80 * sim.Millisecond
	res := RunMutilateSharded(n.client, shards, route, cfg)

	if len(res.PerShard) != 2 {
		t.Fatalf("per-shard breakdown has %d rows", len(res.PerShard))
	}
	var sum uint64
	for s, sl := range res.PerShard {
		if sl.Shard != s {
			t.Fatalf("shard %d labeled %d", s, sl.Shard)
		}
		if sl.Completed == 0 || sl.RPS <= 0 {
			t.Fatalf("shard %d reported no traffic: %+v", s, sl)
		}
		sum += sl.Completed
	}
	wantSum := uint64(res.AchievedRPS * float64(cfg.Duration) / 1e9)
	if sum != wantSum {
		t.Fatalf("per-shard completions sum %d != aggregate %d", sum, wantSum)
	}

	ks := res.Keys
	if ks.Total == 0 || len(ks.TopK) != DefaultStatsTopK {
		t.Fatalf("key stats empty: %+v", ks)
	}
	for i := 1; i < len(ks.TopK); i++ {
		if ks.TopK[i].Count > ks.TopK[i-1].Count {
			t.Fatalf("topK not sorted: %+v", ks.TopK)
		}
	}
	// The ETC workload is Zipf-skewed: the top 10 of 20000 keys must
	// carry far more than a uniform share (10/20000 = 0.05%).
	if ks.TopShare < 0.05 {
		t.Fatalf("top-10 share %.4f - skew not visible in key stats", ks.TopShare)
	}
}

// TestTextModePerShardStats: the text-protocol generator shares the
// accounting engine, so the per-shard breakdown must hold there too.
func TestTextModePerShardStats(t *testing.T) {
	n := newShardedNet(t, 2, 4)
	shards := []Shard{n.shard(0), n.shard(1)}
	route := func(key []byte) int { return int(key[len(key)-1]) % 2 }

	cfg := DefaultMutilate(20000)
	cfg.Warmup = 10 * sim.Millisecond
	cfg.Duration = 60 * sim.Millisecond
	res := RunMutilateText(n.client, shards, route, cfg)

	if len(res.PerShard) != 2 {
		t.Fatalf("per-shard breakdown has %d rows", len(res.PerShard))
	}
	for s, sl := range res.PerShard {
		if sl.Completed == 0 {
			t.Fatalf("text shard %d reported no traffic", s)
		}
	}
	if res.Keys.Total == 0 {
		t.Fatal("text run produced no key stats")
	}
}
