// Package load implements the evaluation's load generators: a
// mutilate-style memcached client generating the Facebook ETC workload
// (paper §4.2) - over the binary protocol (RunMutilate,
// RunMutilateSharded) or the ASCII text protocol (RunMutilateText) -
// a replicated-cluster client-Ebb runner with a failure timeline
// (RunClusterLoad), and a wrk-style HTTP client (paper §4.3, Table 2).
//
// All are open-loop: requests arrive by a Poisson process at a target
// rate regardless of completions, so server queueing shows up as latency -
// the methodology behind the paper's latency-vs-throughput curves.
package load

import (
	"encoding/binary"
	"fmt"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/sim"
)

// ETCConfig describes the Facebook ETC workload statistics the paper
// configures mutilate with: 20-70 byte keys, values mostly 1-1024 bytes,
// skewed key popularity, 90% GETs.
type ETCConfig struct {
	KeySpace  int
	KeyMin    int
	KeyMax    int
	ValueMax  int
	ValueMean float64
	GetRatio  float64
	ZipfSkew  float64
}

// DefaultETC returns the workload used throughout the harness.
func DefaultETC() ETCConfig {
	return ETCConfig{
		KeySpace:  20000,
		KeyMin:    20,
		KeyMax:    70,
		ValueMax:  1024,
		ValueMean: 220,
		GetRatio:  0.9,
		ZipfSkew:  1.05,
	}
}

// Workload is a pre-generated ETC key/value population plus samplers.
type Workload struct {
	cfg    ETCConfig
	Keys   [][]byte
	Values [][]byte
	zipf   *sim.Zipf
	rng    *sim.Rng
}

// NewWorkload builds a deterministic workload from a seed.
func NewWorkload(cfg ETCConfig, seed uint64) *Workload {
	rng := sim.NewRng(seed)
	w := &Workload{cfg: cfg, rng: rng}
	w.Keys = make([][]byte, cfg.KeySpace)
	w.Values = make([][]byte, cfg.KeySpace)
	for i := range w.Keys {
		klen := rng.IntRange(cfg.KeyMin, cfg.KeyMax)
		key := make([]byte, klen)
		// Distinct prefix guarantees uniqueness; the rest is filler.
		n := binary.PutUvarint(key, uint64(i)+1)
		for j := n; j < klen; j++ {
			key[j] = byte('a' + (i+j)%26)
		}
		w.Keys[i] = key
		w.Values[i] = w.newValue()
	}
	w.zipf = sim.NewZipf(rng, cfg.ZipfSkew, cfg.KeySpace)
	return w
}

func (w *Workload) newValue() []byte {
	vlen := int(w.rng.Exp(w.cfg.ValueMean)) + 1
	if vlen > w.cfg.ValueMax {
		vlen = w.cfg.ValueMax
	}
	v := make([]byte, vlen)
	for j := range v {
		v[j] = byte('0' + j%10)
	}
	return v
}

// NextOp samples the next operation: a key index and whether it is a GET.
func (w *Workload) NextOp() (int, bool) {
	return w.zipf.Next(), w.rng.Float64() < w.cfg.GetRatio
}

// NextKey samples one more key index from the popularity distribution -
// how a multiget arrival picks its remaining keys.
func (w *Workload) NextKey() int { return w.zipf.Next() }

// MutilateConfig drives one load point.
type MutilateConfig struct {
	Connections int
	Pipeline    int
	TargetRPS   float64
	Warmup      sim.Time
	Duration    sim.Time
	Seed        uint64
	ETC         ETCConfig
	// TextProtocol switches the generator from the binary protocol to
	// the ASCII text protocol (RunMutilateText): requests are command
	// lines, responses are matched in connection FIFO order rather than
	// by opaque.
	TextProtocol bool
	// StatsTopK is how many keys the per-key frequency summary keeps
	// (default DefaultStatsTopK).
	StatsTopK int
}

// DefaultMutilate mirrors the paper's setup: pipeline depth 4 over TCP.
func DefaultMutilate(targetRPS float64) MutilateConfig {
	return MutilateConfig{
		Connections: 16,
		Pipeline:    4,
		TargetRPS:   targetRPS,
		Warmup:      30 * sim.Millisecond,
		Duration:    250 * sim.Millisecond,
		Seed:        42,
		ETC:         DefaultETC(),
	}
}

// MutilateResult is one point of a Figure 5/6 curve.
type MutilateResult struct {
	TargetRPS   float64
	AchievedRPS float64
	Mean        sim.Time
	P99         sim.Time
	Samples     int
	// Keys is the measured window's per-key frequency summary: the
	// direct view of the workload's Zipf skew (hot-key share) that
	// experiments previously had to infer from shard imbalance.
	Keys KeyStats
	// PerShard breaks the aggregate down by backend: each shard's
	// measured completions and RPS, exposing exactly which shard the
	// skewed tail concentrates on.
	PerShard []ShardLoad
}

// String renders the point like the paper's axes.
func (r MutilateResult) String() string {
	return fmt.Sprintf("target=%.0f achieved=%.0f mean=%.1fus p99=%.1fus n=%d",
		r.TargetRPS, r.AchievedRPS, r.Mean.Micros(), r.P99.Micros(), r.Samples)
}

// pendingReq is a generated request waiting for or in flight to the server.
type pendingReq struct {
	arrival sim.Time
	keyIdx  int
	isGet   bool
}

// mconn is one load-generator connection.
type mconn struct {
	m           *mutilate
	conn        appnet.Conn
	mgr         *event.Manager
	shard       int
	queue       []pendingReq
	inflight    map[uint32]sim.Time // opaque -> arrival time
	nextOpaque  uint32
	outstanding int
	rx          []byte
	connected   bool

	// Text-protocol state (mutilate_text.go): the protocol has no opaque,
	// so responses complete the oldest outstanding op on the connection.
	textFifo []textPending
	tpSkip   int // bytes of a VALUE data block (+CRLF) still to skip
}

// Dial connects one client connection to a target (injected to avoid
// coupling the load generator to the testbed or cluster packages).
type Dial func(c *event.Ctx, cb appnet.Callbacks, onConnect func(*event.Ctx, appnet.Conn))

// Shard is one sharded-workload target: how to reach it and the server
// whose store should be prepopulated with the shard's keys.
type Shard struct {
	Dial Dial
	Srv  *memcached.Server
}

// mutilate is the running load generator.
type mutilate struct {
	cfg       MutilateConfig
	work      *Workload
	client    appnet.Runtime
	shards    [][]*mconn // per shard, its connection pool
	route     []int      // key index -> shard
	rrNext    []int      // per-shard round-robin cursor
	rec       *sim.Recorder
	completed uint64
	perShard  []uint64 // measured completions per shard
	keyFreq   *keyCounter
	measStart sim.Time
	measEnd   sim.Time
	arrRng    *sim.Rng
}

// RunMutilate drives one load point against a single memcached server
// already listening on the server runtime.
func RunMutilate(client appnet.Runtime, dial Dial, srv *memcached.Server, cfg MutilateConfig) MutilateResult {
	return RunMutilateSharded(client, []Shard{{Dial: dial, Srv: srv}}, nil, cfg)
}

// RunMutilateSharded drives one load point against a sharded cluster:
// each sampled key routes (via route, over the pre-generated key set) to
// one shard, which receives it on that shard's private connection pool.
// cfg.Connections is the pool size per shard, so client-side parallelism
// scales with the backend count as it does when mutilate agents are
// added per server. route may be nil when there is exactly one shard.
// Each shard's store is prepopulated with only the keys it owns.
func RunMutilateSharded(client appnet.Runtime, shards []Shard, route func(key []byte) int, cfg MutilateConfig) MutilateResult {
	work := NewWorkload(cfg.ETC, cfg.Seed)
	m := &mutilate{
		cfg:      cfg,
		work:     work,
		client:   client,
		route:    make([]int, len(work.Keys)),
		rrNext:   make([]int, len(shards)),
		rec:      sim.NewRecorder(int(cfg.TargetRPS * float64(cfg.Duration) / 1e9)),
		perShard: make([]uint64, len(shards)),
		keyFreq:  newKeyCounter(len(work.Keys)),
		arrRng:   sim.NewRng(cfg.Seed ^ 0x9e3779b9),
	}
	// Route the keyspace once, prepopulating each shard with its share.
	perShard := make([][][]byte, len(shards))
	perShardVals := make([][][]byte, len(shards))
	for i, key := range work.Keys {
		s := 0
		if route != nil {
			s = route(key)
		}
		m.route[i] = s
		perShard[s] = append(perShard[s], key)
		perShardVals[s] = append(perShardVals[s], work.Values[i])
	}
	for s, sh := range shards {
		sh.Srv.Prepopulate(perShard[s], perShardVals[s])
	}

	k := client.Kernel()
	mgrs := client.Mgrs()

	// Open each shard's pool, spreading connections round-robin across
	// client cores.
	m.shards = make([][]*mconn, len(shards))
	nextCore := 0
	for s, sh := range shards {
		dial := sh.Dial
		for i := 0; i < cfg.Connections; i++ {
			mc := &mconn{m: m, mgr: mgrs[nextCore%len(mgrs)], shard: s, inflight: map[uint32]sim.Time{}}
			nextCore++
			m.shards[s] = append(m.shards[s], mc)
			mc.mgr.Spawn(func(c *event.Ctx) {
				dial(c, appnet.Callbacks{
					OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
						mc.onData(c, payload)
					},
				}, func(c *event.Ctx, conn appnet.Conn) {
					mc.conn = conn
					mc.connected = true
				})
			})
		}
	}

	// Let handshakes finish, then start the arrival process.
	setup := 5 * sim.Millisecond
	m.measStart = setup + cfg.Warmup
	m.measEnd = m.measStart + cfg.Duration
	k.RunUntil(setup)
	m.scheduleNextArrival(k)
	k.RunUntil(m.measEnd + 20*sim.Millisecond)

	res := MutilateResult{
		TargetRPS:   cfg.TargetRPS,
		AchievedRPS: float64(m.completed) / (float64(cfg.Duration) / 1e9),
		Mean:        m.rec.Mean(),
		P99:         m.rec.Percentile(99),
		Samples:     m.rec.Count(),
		Keys:        m.keyFreq.stats(cfg.StatsTopK),
		PerShard:    make([]ShardLoad, len(shards)),
	}
	for s, n := range m.perShard {
		res.PerShard[s] = ShardLoad{
			Shard:     s,
			Completed: n,
			RPS:       float64(n) / (float64(cfg.Duration) / 1e9),
		}
	}
	return res
}

// scheduleNextArrival generates the open-loop Poisson arrivals. Each
// arrival routes to its key's shard and round-robins within that
// shard's pool.
func (m *mutilate) scheduleNextArrival(k *sim.Kernel) {
	gap := m.arrRng.Exp(1e9 / m.cfg.TargetRPS) // ns between arrivals
	k.After(sim.Time(gap), func() {
		if k.Now() >= m.measEnd {
			return
		}
		keyIdx, isGet := m.work.NextOp()
		if k.Now() >= m.measStart {
			m.keyFreq.note(keyIdx)
		}
		pool := m.shards[m.route[keyIdx]]
		mc := pool[m.rrNext[m.route[keyIdx]]%len(pool)]
		m.rrNext[m.route[keyIdx]]++
		req := pendingReq{arrival: k.Now(), keyIdx: keyIdx, isGet: isGet}
		mc.mgr.Spawn(func(c *event.Ctx) { mc.submit(c, req) })
		m.scheduleNextArrival(k)
	})
}

// submit queues a request and pumps the pipeline.
func (mc *mconn) submit(c *event.Ctx, req pendingReq) {
	mc.queue = append(mc.queue, req)
	mc.pump(c)
}

// pump sends queued requests up to the pipeline limit.
func (mc *mconn) pump(c *event.Ctx) {
	if !mc.connected {
		return
	}
	for mc.outstanding < mc.m.cfg.Pipeline && len(mc.queue) > 0 {
		req := mc.queue[0]
		mc.queue = mc.queue[1:]
		var packet []byte
		if mc.m.cfg.TextProtocol {
			packet = mc.encodeText(req)
		} else {
			opaque := mc.nextOpaque
			mc.nextOpaque++
			if req.isGet {
				packet = memcached.BuildGet(mc.m.work.Keys[req.keyIdx], opaque)
			} else {
				packet = memcached.BuildSet(mc.m.work.Keys[req.keyIdx], mc.m.work.newValue(), 0, opaque)
			}
			mc.inflight[opaque] = req.arrival
		}
		mc.outstanding++
		mc.conn.Send(c, iobuf.Wrap(packet))
	}
}

// onData parses responses and records latency.
func (mc *mconn) onData(c *event.Ctx, payload *iobuf.IOBuf) {
	data := payload.CopyOut()
	if len(mc.rx) > 0 {
		mc.rx = append(mc.rx, data...)
		data = mc.rx
	}
	if mc.m.cfg.TextProtocol {
		consumed := mc.decodeText(c, data)
		if consumed < len(data) {
			mc.rx = append(mc.rx[:0], data[consumed:]...)
		} else {
			mc.rx = mc.rx[:0]
		}
		mc.pump(c)
		return
	}
	consumed := 0
	for {
		hdr, _, n, err := memcached.NextFrame(data[consumed:], memcached.MagicResponse)
		if err != nil {
			// Desynced response stream: retire the connection (its
			// in-flight requests are lost; the run continues on the
			// remaining pool).
			mc.rx = nil
			mc.connected = false
			mc.conn.Close(c)
			return
		}
		if n == 0 {
			break
		}
		consumed += n
		arrival, ok := mc.inflight[hdr.Opaque]
		if !ok {
			continue
		}
		delete(mc.inflight, hdr.Opaque)
		mc.outstanding--
		now := c.Now()
		if arrival >= mc.m.measStart && now <= mc.m.measEnd {
			mc.m.rec.Add(now - arrival)
			mc.m.completed++
			mc.m.perShard[mc.shard]++
		}
	}
	if consumed < len(data) {
		mc.rx = append(mc.rx[:0], data[consumed:]...)
	} else {
		mc.rx = mc.rx[:0]
	}
	mc.pump(c)
}
