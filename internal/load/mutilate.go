// Package load implements the evaluation's load generators: a
// mutilate-style memcached client generating the Facebook ETC workload
// (paper §4.2) and a wrk-style HTTP client (paper §4.3, Table 2).
//
// Both are open-loop: requests arrive by a Poisson process at a target
// rate regardless of completions, so server queueing shows up as latency -
// the methodology behind the paper's latency-vs-throughput curves.
package load

import (
	"encoding/binary"
	"fmt"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/sim"
)

// ETCConfig describes the Facebook ETC workload statistics the paper
// configures mutilate with: 20-70 byte keys, values mostly 1-1024 bytes,
// skewed key popularity, 90% GETs.
type ETCConfig struct {
	KeySpace  int
	KeyMin    int
	KeyMax    int
	ValueMax  int
	ValueMean float64
	GetRatio  float64
	ZipfSkew  float64
}

// DefaultETC returns the workload used throughout the harness.
func DefaultETC() ETCConfig {
	return ETCConfig{
		KeySpace:  20000,
		KeyMin:    20,
		KeyMax:    70,
		ValueMax:  1024,
		ValueMean: 220,
		GetRatio:  0.9,
		ZipfSkew:  1.05,
	}
}

// Workload is a pre-generated ETC key/value population plus samplers.
type Workload struct {
	cfg    ETCConfig
	Keys   [][]byte
	Values [][]byte
	zipf   *sim.Zipf
	rng    *sim.Rng
}

// NewWorkload builds a deterministic workload from a seed.
func NewWorkload(cfg ETCConfig, seed uint64) *Workload {
	rng := sim.NewRng(seed)
	w := &Workload{cfg: cfg, rng: rng}
	w.Keys = make([][]byte, cfg.KeySpace)
	w.Values = make([][]byte, cfg.KeySpace)
	for i := range w.Keys {
		klen := rng.IntRange(cfg.KeyMin, cfg.KeyMax)
		key := make([]byte, klen)
		// Distinct prefix guarantees uniqueness; the rest is filler.
		n := binary.PutUvarint(key, uint64(i)+1)
		for j := n; j < klen; j++ {
			key[j] = byte('a' + (i+j)%26)
		}
		w.Keys[i] = key
		w.Values[i] = w.newValue()
	}
	w.zipf = sim.NewZipf(rng, cfg.ZipfSkew, cfg.KeySpace)
	return w
}

func (w *Workload) newValue() []byte {
	vlen := int(w.rng.Exp(w.cfg.ValueMean)) + 1
	if vlen > w.cfg.ValueMax {
		vlen = w.cfg.ValueMax
	}
	v := make([]byte, vlen)
	for j := range v {
		v[j] = byte('0' + j%10)
	}
	return v
}

// NextOp samples the next operation: a key index and whether it is a GET.
func (w *Workload) NextOp() (int, bool) {
	return w.zipf.Next(), w.rng.Float64() < w.cfg.GetRatio
}

// MutilateConfig drives one load point.
type MutilateConfig struct {
	Connections int
	Pipeline    int
	TargetRPS   float64
	Warmup      sim.Time
	Duration    sim.Time
	Seed        uint64
	ETC         ETCConfig
}

// DefaultMutilate mirrors the paper's setup: pipeline depth 4 over TCP.
func DefaultMutilate(targetRPS float64) MutilateConfig {
	return MutilateConfig{
		Connections: 16,
		Pipeline:    4,
		TargetRPS:   targetRPS,
		Warmup:      30 * sim.Millisecond,
		Duration:    250 * sim.Millisecond,
		Seed:        42,
		ETC:         DefaultETC(),
	}
}

// MutilateResult is one point of a Figure 5/6 curve.
type MutilateResult struct {
	TargetRPS   float64
	AchievedRPS float64
	Mean        sim.Time
	P99         sim.Time
	Samples     int
}

// String renders the point like the paper's axes.
func (r MutilateResult) String() string {
	return fmt.Sprintf("target=%.0f achieved=%.0f mean=%.1fus p99=%.1fus n=%d",
		r.TargetRPS, r.AchievedRPS, r.Mean.Micros(), r.P99.Micros(), r.Samples)
}

// pendingReq is a generated request waiting for or in flight to the server.
type pendingReq struct {
	arrival sim.Time
	keyIdx  int
	isGet   bool
}

// mconn is one load-generator connection.
type mconn struct {
	m           *mutilate
	conn        appnet.Conn
	mgr         *event.Manager
	queue       []pendingReq
	inflight    map[uint32]sim.Time // opaque -> arrival time
	nextOpaque  uint32
	outstanding int
	rx          []byte
	connected   bool
}

// mutilate is the running load generator.
type mutilate struct {
	cfg       MutilateConfig
	work      *Workload
	client    appnet.Runtime
	conns     []*mconn
	rec       *sim.Recorder
	completed uint64
	measStart sim.Time
	measEnd   sim.Time
	arrRng    *sim.Rng
	rrNext    int
}

// RunMutilate drives one load point against a memcached server already
// listening on the server runtime. dial connects one connection (injected
// to avoid coupling to the testbed package).
func RunMutilate(client appnet.Runtime, dial func(c *event.Ctx, cb appnet.Callbacks, onConnect func(*event.Ctx, appnet.Conn)), srv *memcached.Server, cfg MutilateConfig) MutilateResult {
	work := NewWorkload(cfg.ETC, cfg.Seed)
	srv.Prepopulate(work.Keys, work.Values)

	m := &mutilate{
		cfg:    cfg,
		work:   work,
		client: client,
		rec:    sim.NewRecorder(int(cfg.TargetRPS * float64(cfg.Duration) / 1e9)),
		arrRng: sim.NewRng(cfg.Seed ^ 0x9e3779b9),
	}
	k := client.Kernel()
	mgrs := client.Mgrs()

	// Open connections round-robin across client cores.
	for i := 0; i < cfg.Connections; i++ {
		mc := &mconn{m: m, mgr: mgrs[i%len(mgrs)], inflight: map[uint32]sim.Time{}}
		m.conns = append(m.conns, mc)
		mc.mgr.Spawn(func(c *event.Ctx) {
			dial(c, appnet.Callbacks{
				OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
					mc.onData(c, payload)
				},
			}, func(c *event.Ctx, conn appnet.Conn) {
				mc.conn = conn
				mc.connected = true
			})
		})
	}

	// Let handshakes finish, then start the arrival process.
	setup := 5 * sim.Millisecond
	m.measStart = setup + cfg.Warmup
	m.measEnd = m.measStart + cfg.Duration
	k.RunUntil(setup)
	m.scheduleNextArrival(k)
	k.RunUntil(m.measEnd + 20*sim.Millisecond)

	res := MutilateResult{
		TargetRPS:   cfg.TargetRPS,
		AchievedRPS: float64(m.completed) / (float64(cfg.Duration) / 1e9),
		Mean:        m.rec.Mean(),
		P99:         m.rec.Percentile(99),
		Samples:     m.rec.Count(),
	}
	return res
}

// scheduleNextArrival generates the open-loop Poisson arrivals.
func (m *mutilate) scheduleNextArrival(k *sim.Kernel) {
	gap := m.arrRng.Exp(1e9 / m.cfg.TargetRPS) // ns between arrivals
	k.After(sim.Time(gap), func() {
		if k.Now() >= m.measEnd {
			return
		}
		keyIdx, isGet := m.work.NextOp()
		mc := m.conns[m.rrNext%len(m.conns)]
		m.rrNext++
		req := pendingReq{arrival: k.Now(), keyIdx: keyIdx, isGet: isGet}
		mc.mgr.Spawn(func(c *event.Ctx) { mc.submit(c, req) })
		m.scheduleNextArrival(k)
	})
}

// submit queues a request and pumps the pipeline.
func (mc *mconn) submit(c *event.Ctx, req pendingReq) {
	mc.queue = append(mc.queue, req)
	mc.pump(c)
}

// pump sends queued requests up to the pipeline limit.
func (mc *mconn) pump(c *event.Ctx) {
	if !mc.connected {
		return
	}
	for mc.outstanding < mc.m.cfg.Pipeline && len(mc.queue) > 0 {
		req := mc.queue[0]
		mc.queue = mc.queue[1:]
		opaque := mc.nextOpaque
		mc.nextOpaque++
		var packet []byte
		if req.isGet {
			packet = memcached.BuildGet(mc.m.work.Keys[req.keyIdx], opaque)
		} else {
			packet = memcached.BuildSet(mc.m.work.Keys[req.keyIdx], mc.m.work.newValue(), 0, opaque)
		}
		mc.inflight[opaque] = req.arrival
		mc.outstanding++
		mc.conn.Send(c, iobuf.Wrap(packet))
	}
}

// onData parses responses and records latency.
func (mc *mconn) onData(c *event.Ctx, payload *iobuf.IOBuf) {
	data := payload.CopyOut()
	if len(mc.rx) > 0 {
		mc.rx = append(mc.rx, data...)
		data = mc.rx
	}
	consumed := 0
	for {
		rest := data[consumed:]
		if len(rest) < memcached.HeaderLen {
			break
		}
		hdr, err := memcached.ParseHeader(rest)
		if err != nil {
			break
		}
		total := memcached.HeaderLen + int(hdr.BodyLen)
		if len(rest) < total {
			break
		}
		consumed += total
		arrival, ok := mc.inflight[hdr.Opaque]
		if !ok {
			continue
		}
		delete(mc.inflight, hdr.Opaque)
		mc.outstanding--
		now := c.Now()
		if arrival >= mc.m.measStart && now <= mc.m.measEnd {
			mc.m.rec.Add(now - arrival)
			mc.m.completed++
		}
	}
	if consumed < len(data) {
		mc.rx = append(mc.rx[:0], data[consumed:]...)
	} else {
		mc.rx = mc.rx[:0]
	}
	mc.pump(c)
}
