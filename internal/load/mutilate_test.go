package load

import (
	"testing"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/event"
	"ebbrt/internal/sim"
	"ebbrt/internal/testbed"
)

func runPoint(t *testing.T, kind testbed.ServerKind, cores int, rps float64) MutilateResult {
	t.Helper()
	pair := testbed.NewPair(kind, cores, 8)
	srv := memcached.NewServer(memcached.NewRCUStore(), cores)
	if err := srv.Serve(pair.Server); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultMutilate(rps)
	cfg.Warmup = 10 * sim.Millisecond
	cfg.Duration = 80 * sim.Millisecond
	dial := func(c *event.Ctx, cb appnet.Callbacks, onConnect func(*event.Ctx, appnet.Conn)) {
		pair.Client.Dial(c, testbed.ServerIP, memcached.Port, cb, onConnect)
	}
	return RunMutilate(pair.Client, dial, srv, cfg)
}

func TestMutilateLowLoadLatency(t *testing.T) {
	res := runPoint(t, testbed.EbbRT, 1, 20000)
	if res.Samples < 1000 {
		t.Fatalf("too few samples: %+v", res)
	}
	// At 20k RPS a single EbbRT core is far from saturation: achieved
	// must track target and latency stays in tens of microseconds.
	if res.AchievedRPS < 0.9*res.TargetRPS {
		t.Fatalf("achieved %.0f of target %.0f at low load", res.AchievedRPS, res.TargetRPS)
	}
	if res.P99 > 500*sim.Microsecond {
		t.Fatalf("p99 %v too high at low load", res.P99)
	}
	t.Logf("EbbRT low load: %v", res)
}

func TestMutilateLatencyOrderingAcrossSystems(t *testing.T) {
	ebb := runPoint(t, testbed.EbbRT, 1, 30000)
	lin := runPoint(t, testbed.LinuxVM, 1, 30000)
	if ebb.Mean >= lin.Mean {
		t.Fatalf("EbbRT mean %v should beat Linux VM %v at equal load", ebb.Mean, lin.Mean)
	}
	t.Logf("mean at 30k: EbbRT=%v LinuxVM=%v", ebb.Mean, lin.Mean)
}

func TestMutilateOverloadSaturates(t *testing.T) {
	// Far beyond a single core's capacity: achieved < target and p99
	// blows up (the hockey stick).
	res := runPoint(t, testbed.LinuxVM, 1, 1000000)
	if res.AchievedRPS >= 0.9*res.TargetRPS {
		t.Fatalf("a single Linux core should not sustain 1M RPS: %+v", res)
	}
	low := runPoint(t, testbed.LinuxVM, 1, 20000)
	if res.P99 < 4*low.P99 {
		t.Fatalf("overload p99 %v should dwarf low-load p99 %v", res.P99, low.P99)
	}
}

func TestWorkloadETCShape(t *testing.T) {
	w := NewWorkload(DefaultETC(), 7)
	if len(w.Keys) != DefaultETC().KeySpace {
		t.Fatal("keyspace size wrong")
	}
	seen := map[string]bool{}
	for i, k := range w.Keys {
		if len(k) < 20 || len(k) > 70 {
			t.Fatalf("key %d length %d outside 20-70", i, len(k))
		}
		if seen[string(k)] {
			t.Fatal("duplicate key")
		}
		seen[string(k)] = true
	}
	for i, v := range w.Values {
		if len(v) < 1 || len(v) > 1024 {
			t.Fatalf("value %d length %d outside 1-1024", i, len(v))
		}
	}
	gets := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if _, isGet := w.NextOp(); isGet {
			gets++
		}
	}
	ratio := float64(gets) / n
	if ratio < 0.87 || ratio > 0.93 {
		t.Fatalf("get ratio %.3f, want ~0.9", ratio)
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	a := NewWorkload(DefaultETC(), 99)
	b := NewWorkload(DefaultETC(), 99)
	for i := range a.Keys {
		if string(a.Keys[i]) != string(b.Keys[i]) {
			t.Fatal("same seed produced different keys")
		}
	}
	for i := 0; i < 100; i++ {
		ka, ga := a.NextOp()
		kb, gb := b.NextOp()
		if ka != kb || ga != gb {
			t.Fatal("same seed produced different op stream")
		}
	}
}
