package load

import (
	"bytes"
	"strconv"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/event"
	"ebbrt/internal/sim"
)

// Text-mode mutilate: the same open-loop ETC load shaped as ASCII text
// protocol commands ("get <key>", "set <key> 0 0 <bytes>"), the way a
// stock text-mode client or load generator would drive the cluster. The
// text protocol carries no opaque, so each connection matches responses
// to requests in FIFO order - one "VALUE...END" or bare "END" unit per
// get, one status line per (loud) set.

// RunMutilateText drives one load point against a sharded cluster over
// the ASCII text protocol - the same sharding, arrival process, and
// measurement as RunMutilateSharded, so a run pair isolates the wire
// protocol as the only variable (the TextVsBinary experiment).
func RunMutilateText(client appnet.Runtime, shards []Shard, route func(key []byte) int, cfg MutilateConfig) MutilateResult {
	cfg.TextProtocol = true
	return RunMutilateSharded(client, shards, route, cfg)
}

// textPending is one outstanding text-protocol request.
type textPending struct {
	arrival sim.Time
	isGet   bool
}

// encodeText builds the command bytes for req and appends it to the
// connection's FIFO.
func (mc *mconn) encodeText(req pendingReq) []byte {
	key := mc.m.work.Keys[req.keyIdx]
	var b []byte
	if req.isGet {
		b = make([]byte, 0, 4+len(key)+2)
		b = append(b, "get "...)
		b = append(b, key...)
		b = append(b, '\r', '\n')
	} else {
		value := mc.m.work.newValue()
		b = make([]byte, 0, len(key)+len(value)+24)
		b = append(b, "set "...)
		b = append(b, key...)
		b = append(b, " 0 0 "...)
		b = strconv.AppendInt(b, int64(len(value)), 10)
		b = append(b, '\r', '\n')
		b = append(b, value...)
		b = append(b, '\r', '\n')
	}
	mc.textFifo = append(mc.textFifo, textPending{arrival: req.arrival, isGet: req.isGet})
	return b
}

// decodeText consumes complete response units from data, completing
// FIFO-head requests as their terminating line arrives. It returns the
// number of bytes consumed; the caller retains the tail.
func (mc *mconn) decodeText(c *event.Ctx, data []byte) int {
	consumed := 0
	for {
		// Mid data block: skip the announced VALUE payload (+CRLF).
		if mc.tpSkip > 0 {
			n := len(data) - consumed
			if n > mc.tpSkip {
				n = mc.tpSkip
			}
			consumed += n
			mc.tpSkip -= n
			if mc.tpSkip > 0 {
				return consumed
			}
		}
		idx := bytes.IndexByte(data[consumed:], '\n')
		if idx < 0 {
			return consumed
		}
		line := data[consumed : consumed+idx]
		consumed += idx + 1
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if len(mc.textFifo) == 0 {
			continue // stray line with nothing outstanding; drop it
		}
		head := mc.textFifo[0]
		if head.isGet && bytes.HasPrefix(line, []byte("VALUE ")) {
			// VALUE <key> <flags> <bytes>[ <cas>]: skip the data block and
			// keep reading the same response unit (more VALUEs or END).
			toks := bytes.Fields(line)
			if len(toks) >= 4 {
				if n, err := strconv.Atoi(string(toks[3])); err == nil && n >= 0 {
					mc.tpSkip = n + 2
					continue
				}
			}
			// Unparseable VALUE line: fall through and complete the get,
			// abandoning sync recovery to the stray-line path above.
		}
		// Any other line terminates the unit: END for gets, STORED (or an
		// error line) for sets.
		mc.textFifo = mc.textFifo[1:]
		mc.outstanding--
		now := c.Now()
		if head.arrival >= mc.m.measStart && now <= mc.m.measEnd {
			mc.m.rec.Add(now - head.arrival)
			mc.m.completed++
			mc.m.perShard[mc.shard]++
		}
	}
}
