package load

import (
	"testing"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/apps/memcached"
	"ebbrt/internal/event"
	"ebbrt/internal/machine"
	"ebbrt/internal/netstack"
	"ebbrt/internal/sim"
)

// shardedNet is a minimal multi-server topology: one native client
// machine and n native server machines on a switch (the load package
// must not depend on the cluster package, which has its own tests).
type shardedNet struct {
	k      *sim.Kernel
	client appnet.Runtime
	srvs   []*memcached.Server
	ips    []netstack.Ipv4Addr
}

func newShardedNet(t *testing.T, servers, clientCores int) *shardedNet {
	t.Helper()
	k := sim.NewKernel()
	sw := machine.NewSwitch(k)
	mask := netstack.IP(255, 255, 255, 0)

	build := func(name string, mac byte, ip netstack.Ipv4Addr, cores int) appnet.Runtime {
		m := machine.New(k, machine.DefaultConfig(name, cores))
		nic := machine.NewNIC(m, machine.MAC{0x02, 0xaa, 0, 0, 0, mac})
		sw.Connect(nic)
		mgrs := make([]*event.Manager, cores)
		for i, c := range m.Cores {
			mgrs[i] = event.NewManager(c, event.DefaultCosts())
		}
		st := netstack.NewStack(m, mgrs, netstack.DefaultConfig())
		itf := st.AddInterface(nic, ip, mask)
		return appnet.NewNative(st, itf)
	}

	n := &shardedNet{k: k}
	n.client = build("client", 1, netstack.IP(10, 0, 0, 1), clientCores)
	for s := 0; s < servers; s++ {
		ip := netstack.IP(10, 0, 0, byte(10+s))
		rt := build("server", byte(10+s), ip, 1)
		srv := memcached.NewServer(memcached.NewRCUStore(), 1)
		if err := srv.Serve(rt); err != nil {
			t.Fatal(err)
		}
		n.srvs = append(n.srvs, srv)
		n.ips = append(n.ips, ip)
	}
	return n
}

func (n *shardedNet) shard(s int) Shard {
	ip := n.ips[s]
	return Shard{
		Srv: n.srvs[s],
		Dial: func(c *event.Ctx, cb appnet.Callbacks, onConnect func(*event.Ctx, appnet.Conn)) {
			n.client.Dial(c, ip, memcached.Port, cb, onConnect)
		},
	}
}

func TestMutilateShardedRoutesAndCompletes(t *testing.T) {
	n := newShardedNet(t, 2, 4)
	shards := []Shard{n.shard(0), n.shard(1)}
	route := func(key []byte) int { return int(key[len(key)-1]) % 2 }

	cfg := DefaultMutilate(40000)
	cfg.Warmup = 10 * sim.Millisecond
	cfg.Duration = 80 * sim.Millisecond
	res := RunMutilateSharded(n.client, shards, route, cfg)

	if res.Samples < 1000 {
		t.Fatalf("too few samples: %+v", res)
	}
	if res.AchievedRPS < 0.9*res.TargetRPS {
		t.Fatalf("achieved %.0f of target %.0f", res.AchievedRPS, res.TargetRPS)
	}
	// Both shards must have carried traffic and hold disjoint key shares.
	for s, srv := range n.srvs {
		if srv.Requests == 0 {
			t.Errorf("shard %d served nothing", s)
		}
		if srv.Store.Len() == 0 {
			t.Errorf("shard %d store empty - prepopulation not split", s)
		}
	}
	work := NewWorkload(cfg.ETC, cfg.Seed)
	want := []int{0, 0}
	for _, key := range work.Keys {
		want[route(key)]++
	}
	for s, srv := range n.srvs {
		// Stores may exceed the prepopulated count only via SETs of new
		// values, never by holding another shard's keys: key counts must
		// exactly match the routed share.
		if srv.Store.Len() != want[s] {
			t.Errorf("shard %d holds %d keys, routed share is %d", s, srv.Store.Len(), want[s])
		}
	}
}

func TestMutilateSingleShardMatchesUnsharded(t *testing.T) {
	// The single-shard path is the compatibility wrapper; nil route must
	// behave identically to explicit shard-0 routing.
	a := newShardedNet(t, 1, 4)
	cfg := DefaultMutilate(30000)
	cfg.Warmup = 10 * sim.Millisecond
	cfg.Duration = 60 * sim.Millisecond
	resA := RunMutilateSharded(a.client, []Shard{a.shard(0)}, nil, cfg)

	b := newShardedNet(t, 1, 4)
	resB := RunMutilateSharded(b.client, []Shard{b.shard(0)}, func([]byte) int { return 0 }, cfg)

	if resA.Samples != resB.Samples || resA.AchievedRPS != resB.AchievedRPS || resA.Mean != resB.Mean {
		t.Fatalf("nil route diverged from explicit zero route:\n%v\n%v", resA, resB)
	}
}
