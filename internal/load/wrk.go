package load

import (
	"bytes"
	"fmt"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/apps/httpd"
	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/sim"
)

// WrkConfig drives the Table 2 webserver measurement. Like wrk itself the
// generator is closed-loop: each keep-alive connection keeps exactly one
// request outstanding, sending the next as soon as the response arrives.
// TargetRPS, when non-zero, paces each connection instead (open loop).
type WrkConfig struct {
	Connections int
	TargetRPS   float64
	Warmup      sim.Time
	Duration    sim.Time
	Seed        uint64
}

// DefaultWrk is the "moderate load" the paper applies: a handful of
// closed-loop connections against the single-core node server.
func DefaultWrk() WrkConfig {
	return WrkConfig{
		Connections: 1,
		Warmup:      30 * sim.Millisecond,
		Duration:    800 * sim.Millisecond,
		Seed:        7,
	}
}

// WrkResult is the Table 2 row.
type WrkResult struct {
	AchievedRPS float64
	Mean        sim.Time
	P99         sim.Time
	Samples     int
}

// String renders like the paper's table (microseconds).
func (r WrkResult) String() string {
	return fmt.Sprintf("mean=%.2fus p99=%.2fus achieved=%.0f n=%d",
		r.Mean.Micros(), r.P99.Micros(), r.AchievedRPS, r.Samples)
}

// wconn is one keep-alive connection with at most one request in flight
// (wrk's default behaviour); excess arrivals queue client-side.
type wconn struct {
	w         *wrk
	conn      appnet.Conn
	mgr       *event.Manager
	queue     []sim.Time
	inflight  []sim.Time
	rx        []byte
	connected bool
}

type wrk struct {
	cfg       WrkConfig
	conns     []*wconn
	rec       *sim.Recorder
	completed uint64
	measStart sim.Time
	measEnd   sim.Time
	rng       *sim.Rng
	rrNext    int
}

// RunWrk drives one webserver load point.
func RunWrk(client appnet.Runtime, dial func(c *event.Ctx, cb appnet.Callbacks, onConnect func(*event.Ctx, appnet.Conn)), cfg WrkConfig) WrkResult {
	w := &wrk{
		cfg: cfg,
		rec: sim.NewRecorder(int(cfg.TargetRPS * float64(cfg.Duration) / 1e9)),
		rng: sim.NewRng(cfg.Seed),
	}
	k := client.Kernel()
	mgrs := client.Mgrs()
	for i := 0; i < cfg.Connections; i++ {
		wc := &wconn{w: w, mgr: mgrs[i%len(mgrs)]}
		w.conns = append(w.conns, wc)
		wc.mgr.Spawn(func(c *event.Ctx) {
			dial(c, appnet.Callbacks{
				OnData: func(c *event.Ctx, conn appnet.Conn, payload *iobuf.IOBuf) {
					wc.onData(c, payload)
				},
			}, func(c *event.Ctx, conn appnet.Conn) {
				wc.conn = conn
				wc.connected = true
			})
		})
	}
	setup := 5 * sim.Millisecond
	w.measStart = setup + cfg.Warmup
	w.measEnd = w.measStart + cfg.Duration
	k.RunUntil(setup)
	if cfg.TargetRPS > 0 {
		w.scheduleNextArrival(k)
	} else {
		// Closed loop: prime one request per connection; completions
		// trigger the next send.
		for _, wc := range w.conns {
			wc := wc
			wc.mgr.Spawn(func(c *event.Ctx) {
				wc.queue = append(wc.queue, c.Now())
				wc.pump(c)
			})
		}
	}
	k.RunUntil(w.measEnd + 20*sim.Millisecond)
	return WrkResult{
		AchievedRPS: float64(w.completed) / (float64(cfg.Duration) / 1e9),
		Mean:        w.rec.Mean(),
		P99:         w.rec.Percentile(99),
		Samples:     w.rec.Count(),
	}
}

func (w *wrk) scheduleNextArrival(k *sim.Kernel) {
	gap := w.rng.Exp(1e9 / w.cfg.TargetRPS)
	k.After(sim.Time(gap), func() {
		if k.Now() >= w.measEnd {
			return
		}
		wc := w.conns[w.rrNext%len(w.conns)]
		w.rrNext++
		arrival := k.Now()
		wc.mgr.Spawn(func(c *event.Ctx) {
			wc.queue = append(wc.queue, arrival)
			wc.pump(c)
		})
		w.scheduleNextArrival(k)
	})
}

func (wc *wconn) pump(c *event.Ctx) {
	if !wc.connected {
		return
	}
	for len(wc.inflight) < 1 && len(wc.queue) > 0 {
		arrival := wc.queue[0]
		wc.queue = wc.queue[1:]
		wc.inflight = append(wc.inflight, arrival)
		wc.conn.Send(c, iobuf.Wrap(append([]byte(nil), httpd.Request...)))
	}
}

func (wc *wconn) onData(c *event.Ctx, payload *iobuf.IOBuf) {
	wc.rx = append(wc.rx, payload.CopyOut()...)
	for len(wc.rx) >= len(httpd.Response) {
		if !bytes.HasPrefix(wc.rx, httpd.Response[:17]) {
			// Desynchronized: drop connection state.
			wc.rx = nil
			return
		}
		wc.rx = wc.rx[len(httpd.Response):]
		if len(wc.inflight) == 0 {
			continue
		}
		arrival := wc.inflight[0]
		wc.inflight = wc.inflight[1:]
		now := c.Now()
		if arrival >= wc.w.measStart && now <= wc.w.measEnd {
			wc.w.rec.Add(now - arrival)
			wc.w.completed++
		}
		if wc.w.cfg.TargetRPS == 0 && now < wc.w.measEnd {
			// Closed loop: immediately issue the next request.
			wc.queue = append(wc.queue, now)
		}
	}
	wc.pump(c)
}
