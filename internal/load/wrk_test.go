package load

import (
	"testing"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/apps/httpd"
	"ebbrt/internal/event"
	"ebbrt/internal/sim"
	"ebbrt/internal/testbed"
)

func runWrkPoint(t *testing.T, kind testbed.ServerKind, rps float64) WrkResult {
	t.Helper()
	pair := testbed.NewPair(kind, 1, 4)
	srv := httpd.NewServer()
	if err := srv.Serve(pair.Server); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultWrk()
	cfg.TargetRPS = rps
	cfg.Duration = 150 * sim.Millisecond
	dial := func(c *event.Ctx, cb appnet.Callbacks, onConnect func(*event.Ctx, appnet.Conn)) {
		pair.Client.Dial(c, testbed.ServerIP, httpd.Port, cb, onConnect)
	}
	return RunWrk(pair.Client, dial, cfg)
}

func TestResponseIs148Bytes(t *testing.T) {
	if len(httpd.Response) != 148 {
		t.Fatalf("response is %d bytes, want 148", len(httpd.Response))
	}
}

func TestWebserverLatencyOrdering(t *testing.T) {
	ebb := runWrkPoint(t, testbed.EbbRT, 6000)
	lin := runWrkPoint(t, testbed.LinuxVM, 6000)
	if ebb.Samples < 300 || lin.Samples < 300 {
		t.Fatalf("too few samples: ebb=%d lin=%d", ebb.Samples, lin.Samples)
	}
	if ebb.Mean >= lin.Mean {
		t.Fatalf("EbbRT mean %v should beat Linux %v", ebb.Mean, lin.Mean)
	}
	if ebb.P99 >= lin.P99 {
		t.Fatalf("EbbRT p99 %v should beat Linux %v", ebb.P99, lin.P99)
	}
	t.Logf("Table2 shape: EbbRT %v | Linux %v", ebb, lin)
}

func TestWebserverServesAllAtModerateLoad(t *testing.T) {
	res := runWrkPoint(t, testbed.EbbRT, 5000)
	if res.AchievedRPS < 0.9*5000 {
		t.Fatalf("achieved %.0f of 5000", res.AchievedRPS)
	}
}
