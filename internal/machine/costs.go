package machine

import "ebbrt/internal/sim"

// CostModel holds the device and hypervisor path costs charged per packet.
// These are the knobs that reproduce the paper's Figure 4-6 environment:
// both EbbRT and Linux guests pay the virtio/vhost costs; only the guest OS
// path above the device differs (and is charged by the respective runtime).
//
// Defaults are calibrated so the NetPIPE experiment lands near the paper's
// absolute numbers (9.7 us one-way for 64 B under EbbRT); see EXPERIMENTS.md
// for calibration notes.
type CostModel struct {
	// VirtioKick is the guest-side cost to notify the host of a transmit
	// (MMIO exit).
	VirtioKick sim.Time
	// VhostPerPacket is the host-side vhost packet processing cost,
	// charged once on transmit and once on receive.
	VhostPerPacket sim.Time
	// IRQInject is the cost for the hypervisor to inject a receive
	// interrupt into the guest.
	IRQInject sim.Time
	// RxCopyPerByte is the hypervisor's unavoidable copy on packet
	// reception into guest memory (paper §4.1.3: "both systems must
	// suffer a copy on packet reception due to the hypervisor").
	RxCopyPerByte float64 // ns per byte
	// NICLatency is the physical NIC + wire PHY latency per direction.
	NICLatency sim.Time
	// InterruptEntry is the guest-visible exception dispatch cost (save
	// state, vector to handler); charged by runtimes on IRQ entry.
	InterruptEntry sim.Time
}

func (c *CostModel) applyDefaults() {
	if c.VirtioKick == 0 {
		c.VirtioKick = 900 * sim.Nanosecond
	}
	if c.VhostPerPacket == 0 {
		c.VhostPerPacket = 1100 * sim.Nanosecond
	}
	if c.IRQInject == 0 {
		c.IRQInject = 700 * sim.Nanosecond
	}
	if c.RxCopyPerByte == 0 {
		c.RxCopyPerByte = 0.06 // ~16 GB/s memcpy
	}
	if c.NICLatency == 0 {
		c.NICLatency = 600 * sim.Nanosecond
	}
	if c.InterruptEntry == 0 {
		c.InterruptEntry = 300 * sim.Nanosecond
	}
}

// RxCopy returns the hypervisor receive-copy cost for n bytes.
func (c *CostModel) RxCopy(n int) sim.Time {
	return sim.Time(c.RxCopyPerByte * float64(n))
}
