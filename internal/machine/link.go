package machine

import (
	"ebbrt/internal/sim"
)

// Link is a full-duplex point-to-point Ethernet link with finite bandwidth
// and propagation delay, like the directly-connected 10GbE pair in the
// paper's testbed. Each direction serializes frames independently.
type Link struct {
	K *sim.Kernel
	// BitsPerSecond is the line rate (default 10 Gb/s).
	BitsPerSecond float64
	// Propagation is the one-way flight time.
	Propagation sim.Time
	// DropFn, when set, is consulted per frame (with a monotonically
	// increasing index) and may drop it - fault injection for
	// retransmission tests. Deterministic by construction.
	DropFn func(index uint64, f Frame) bool

	a, b       Port
	aBusyUntil sim.Time // a -> b direction
	bBusyUntil sim.Time // b -> a direction
	frameIndex uint64
}

// NewLink creates a 10GbE-like link between two NICs and attaches both.
func NewLink(k *sim.Kernel, a, b *NIC) *Link {
	l := &Link{K: k, BitsPerSecond: 10e9, Propagation: 300 * sim.Nanosecond}
	l.a = PortOf(a)
	l.b = PortOf(b)
	a.Attach(linkEnd{l, true})
	b.Attach(linkEnd{l, false})
	return l
}

func (l *Link) serialization(bytes int) sim.Time {
	return sim.Time(float64(bytes*8) / l.BitsPerSecond * 1e9)
}

func (l *Link) send(f Frame, fromA bool) {
	idx := l.frameIndex
	l.frameIndex++
	if l.DropFn != nil && l.DropFn(idx, f) {
		return
	}
	now := l.K.Now()
	busy := &l.aBusyUntil
	dst := l.b
	if !fromA {
		busy = &l.bBusyUntil
		dst = l.a
	}
	start := now
	if *busy > start {
		start = *busy
	}
	txDone := start + l.serialization(f.Len())
	*busy = txDone
	l.K.At(txDone+l.Propagation, func() { dst.Send(f) })
}

// linkEnd is the Port a NIC transmits into.
type linkEnd struct {
	l     *Link
	fromA bool
}

func (e linkEnd) Send(f Frame) { e.l.send(f, e.fromA) }

// Switch is a learning Ethernet switch with per-output-port serialization.
// Multi-node deployments (hosted frontend plus native backends, paper §2.1)
// hang all machines off one switch.
type Switch struct {
	K *sim.Kernel
	// BitsPerSecond is each port's line rate.
	BitsPerSecond float64
	// Latency is the store-and-forward switching delay.
	Latency sim.Time
	// DropFn, when set, is consulted per ingress frame (with a
	// monotonically increasing index) and may drop it - the switch-level
	// analogue of Link.DropFn, for injecting frame loss into multi-node
	// deployments. Deterministic by construction.
	DropFn func(index uint64, f Frame) bool

	ports      []*switchPort
	table      map[MAC]*switchPort
	frameIndex uint64
}

// NewSwitch creates an empty switch.
func NewSwitch(k *sim.Kernel) *Switch {
	return &Switch{K: k, BitsPerSecond: 10e9, Latency: 500 * sim.Nanosecond, table: map[MAC]*switchPort{}}
}

// Connect attaches a NIC to a new switch port.
func (s *Switch) Connect(n *NIC) {
	p := &switchPort{sw: s, nic: n}
	s.ports = append(s.ports, p)
	n.Attach(p)
}

func (s *Switch) forward(f Frame, from *switchPort) {
	idx := s.frameIndex
	s.frameIndex++
	if s.DropFn != nil && s.DropFn(idx, f) {
		return
	}
	// Learn the source address.
	var src MAC
	r := f.Buf.Reader()
	if err := r.Skip(6); err == nil {
		if b, err := r.ReadBytes(6); err == nil {
			copy(src[:], b)
			s.table[src] = from
		}
	}
	dst := f.DstMAC()
	if out, ok := s.table[dst]; ok && !dst.IsBroadcast() {
		s.deliver(f, out)
		return
	}
	// Flood: broadcast or unknown destination.
	for _, p := range s.ports {
		if p != from {
			s.deliver(f, p)
		}
	}
}

func (s *Switch) deliver(f Frame, out *switchPort) {
	now := s.K.Now()
	start := now + s.Latency
	if out.busyUntil > start {
		start = out.busyUntil
	}
	done := start + sim.Time(float64(f.Len()*8)/s.BitsPerSecond*1e9)
	out.busyUntil = done
	s.K.At(done, func() { out.nic.Deliver(f) })
}

type switchPort struct {
	sw        *Switch
	nic       *NIC
	busyUntil sim.Time
}

func (p *switchPort) Send(f Frame) { p.sw.forward(f, p) }
