// Package machine models the hardware substrate EbbRT runs on: multicore
// machines with interrupt delivery and masking, virtio-style NICs with
// multi-queue receive-side scaling, point-to-point links, and a learning
// switch.
//
// This package is the substitution for the paper's physical testbed (two
// Xeon servers with Intel X520 10GbE NICs running KVM guests). The EbbRT
// runtime logic above it - event loops, drivers, network stack - is real
// code; only the silicon and the hypervisor's packet path are cost models.
// All behaviour is deterministic: the machine schedules everything on a
// sim.Kernel.
package machine

import (
	"fmt"

	"ebbrt/internal/sim"
)

// Config describes one machine.
type Config struct {
	// Name identifies the machine in logs and experiment output.
	Name string
	// Cores is the number of processor cores.
	Cores int
	// NumaNodes is the number of memory domains; cores are distributed
	// round-robin-contiguously (cores/nodes per node).
	NumaNodes int
	// GHz is the core clock, used to convert cycle costs to time. The
	// paper's server runs at 2.6 GHz.
	GHz float64
	// Virtualized adds the hypervisor's virtio/vhost costs to every
	// packet (paper §4: EbbRT targets KVM guests; Linux is measured both
	// virtualized and native).
	Virtualized bool
	// NICQueues is the number of NIC receive queues. Multiqueue enables
	// flow steering across cores; OSv's virtio-net lacked it (paper §4.2).
	NICQueues int
	// Costs is the device/hypervisor cost model. Zero-valued fields are
	// filled with defaults by New.
	Costs CostModel
}

// DefaultConfig returns a configuration resembling one guest of the paper's
// testbed: the given number of cores at 2.6 GHz on 2 NUMA nodes.
func DefaultConfig(name string, cores int) Config {
	return Config{
		Name:        name,
		Cores:       cores,
		NumaNodes:   2,
		GHz:         2.6,
		Virtualized: true,
		NICQueues:   cores,
	}
}

// Machine is a simulated host: cores plus devices.
type Machine struct {
	K     *sim.Kernel
	Cfg   Config
	Cores []*Core
	NICs  []*NIC
}

// New creates a machine attached to the kernel.
func New(k *sim.Kernel, cfg Config) *Machine {
	if cfg.Cores <= 0 {
		panic("machine: config needs at least one core")
	}
	if cfg.NumaNodes <= 0 {
		cfg.NumaNodes = 1
	}
	if cfg.GHz == 0 {
		cfg.GHz = 2.6
	}
	if cfg.NICQueues <= 0 {
		cfg.NICQueues = 1
	}
	cfg.Costs.applyDefaults()
	m := &Machine{K: k, Cfg: cfg}
	perNode := (cfg.Cores + cfg.NumaNodes - 1) / cfg.NumaNodes
	for i := 0; i < cfg.Cores; i++ {
		m.Cores = append(m.Cores, &Core{
			M:    m,
			ID:   i,
			Node: i / perNode,
		})
	}
	return m
}

// Cycles converts a cycle count into virtual time at this machine's clock.
func (m *Machine) Cycles(n float64) sim.Time {
	return sim.Time(n / m.Cfg.GHz)
}

// String identifies the machine.
func (m *Machine) String() string { return m.Cfg.Name }

// Core is one processor. The event manager (native) or scheduler model
// (GPOS baseline) installs a dispatcher and drives interrupt masking.
//
// Interrupt semantics: a raised vector is delivered immediately - by
// calling the dispatcher - only when interrupts are enabled and the core is
// halted. Otherwise it is latched and the runtime collects it with
// TakePending when it re-enables interrupts, exactly the window the paper's
// event loop opens between events.
type Core struct {
	M    *Machine
	ID   int
	Node int

	dispatcher  func(vec int)
	pending     []int
	intsEnabled bool
	halted      bool
}

// SetDispatcher installs the runtime's interrupt entry point.
func (c *Core) SetDispatcher(f func(vec int)) { c.dispatcher = f }

// RaiseIRQ delivers vector vec to the core. Devices call this from kernel
// events; delivery is synchronous when the core is halted with interrupts
// enabled, otherwise the vector is latched.
func (c *Core) RaiseIRQ(vec int) {
	if c.intsEnabled && c.halted {
		c.halted = false
		if c.dispatcher == nil {
			panic(fmt.Sprintf("machine %s core %d: IRQ %d with no dispatcher", c.M, c.ID, vec))
		}
		c.dispatcher(vec)
		return
	}
	c.pending = append(c.pending, vec)
}

// EnableInterrupts sets the interrupt flag (does not drain latched vectors;
// use TakePending for that, mirroring the explicit window in the event loop).
func (c *Core) EnableInterrupts() { c.intsEnabled = true }

// DisableInterrupts clears the interrupt flag.
func (c *Core) DisableInterrupts() { c.intsEnabled = false }

// InterruptsEnabled reports the interrupt flag.
func (c *Core) InterruptsEnabled() bool { return c.intsEnabled }

// Halt marks the core idle awaiting an interrupt. The next RaiseIRQ with
// interrupts enabled wakes it through the dispatcher.
func (c *Core) Halt() { c.halted = true }

// Halted reports whether the core is halted.
func (c *Core) Halted() bool { return c.halted }

// HasPending reports whether latched vectors await collection.
func (c *Core) HasPending() bool { return len(c.pending) > 0 }

// TakePending returns and clears all latched vectors in arrival order.
func (c *Core) TakePending() []int {
	p := c.pending
	c.pending = nil
	return p
}

// Cycles converts cycles to time at the machine's clock.
func (c *Core) Cycles(n float64) sim.Time { return c.M.Cycles(n) }
