package machine

import (
	"testing"

	"ebbrt/internal/iobuf"
	"ebbrt/internal/sim"
)

func testMachine(k *sim.Kernel, cores int) *Machine {
	cfg := DefaultConfig("test", cores)
	return New(k, cfg)
}

func TestCoreIRQDeliveryWhenHalted(t *testing.T) {
	k := sim.NewKernel()
	m := testMachine(k, 1)
	c := m.Cores[0]
	var got []int
	c.SetDispatcher(func(vec int) { got = append(got, vec) })
	c.EnableInterrupts()
	c.Halt()
	k.After(10, func() { c.RaiseIRQ(33) })
	k.Run()
	if len(got) != 1 || got[0] != 33 {
		t.Fatalf("dispatched %v", got)
	}
	if c.Halted() {
		t.Fatal("core still halted after dispatch")
	}
}

func TestCoreIRQLatchedWhenMasked(t *testing.T) {
	k := sim.NewKernel()
	m := testMachine(k, 1)
	c := m.Cores[0]
	c.SetDispatcher(func(vec int) { t.Fatalf("unexpected dispatch of %d", vec) })
	c.DisableInterrupts()
	c.Halt()
	c.RaiseIRQ(40)
	c.RaiseIRQ(41)
	if !c.HasPending() {
		t.Fatal("no pending vectors")
	}
	p := c.TakePending()
	if len(p) != 2 || p[0] != 40 || p[1] != 41 {
		t.Fatalf("pending = %v", p)
	}
	if c.HasPending() {
		t.Fatal("pending not cleared")
	}
}

func TestCoreIRQLatchedWhenRunning(t *testing.T) {
	k := sim.NewKernel()
	m := testMachine(k, 1)
	c := m.Cores[0]
	c.SetDispatcher(func(vec int) { t.Fatal("dispatched while not halted") })
	c.EnableInterrupts()
	// Not halted: simulates a core mid-event with the brief enabled window.
	c.RaiseIRQ(50)
	if got := c.TakePending(); len(got) != 1 || got[0] != 50 {
		t.Fatalf("pending = %v", got)
	}
}

func TestNumaAssignment(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, Config{Name: "n", Cores: 4, NumaNodes: 2, GHz: 2.6})
	want := []int{0, 0, 1, 1}
	for i, c := range m.Cores {
		if c.Node != want[i] {
			t.Fatalf("core %d on node %d, want %d", i, c.Node, want[i])
		}
	}
}

func TestCycles(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, Config{Name: "n", Cores: 1, GHz: 2.0})
	if got := m.Cycles(2000); got != 1000 {
		t.Fatalf("2000 cycles at 2GHz = %v ns, want 1000", got)
	}
}

func frameOf(src, dst MAC, payload int, hash uint32) Frame {
	b := iobuf.New(14 + payload)
	hdr := b.Append(14 + payload)
	copy(hdr[0:6], dst[:])
	copy(hdr[6:12], src[:])
	return Frame{Buf: b, Hash: hash}
}

func TestLinkDelivery(t *testing.T) {
	k := sim.NewKernel()
	ma := testMachine(k, 1)
	mb := testMachine(k, 1)
	na := NewNIC(ma, MAC{1})
	nb := NewNIC(mb, MAC{2})
	NewLink(k, na, nb)

	f := frameOf(MAC{1}, MAC{2}, 100, 7)
	na.Transmit(f, 0)
	k.Run()
	if nb.RxFrames.N != 1 {
		t.Fatalf("rx frames = %d", nb.RxFrames.N)
	}
	if nb.Queues[0].Len() != 1 {
		t.Fatal("frame not queued")
	}
	got, ok := nb.Queues[0].Pop()
	if !ok || got.Len() != 114 {
		t.Fatalf("popped %v %v", got, ok)
	}
}

func TestLinkSerializationOrdering(t *testing.T) {
	k := sim.NewKernel()
	ma := testMachine(k, 1)
	mb := testMachine(k, 1)
	na := NewNIC(ma, MAC{1})
	nb := NewNIC(mb, MAC{2})
	l := NewLink(k, na, nb)

	// Two back-to-back large frames: second must arrive after first by at
	// least the serialization time.
	var arrivals []sim.Time
	nb.Queues[0].SetIRQ(mb.Cores[0], 60)
	mb.Cores[0].SetDispatcher(func(int) {
		arrivals = append(arrivals, k.Now())
		for {
			if _, ok := nb.Queues[0].Pop(); !ok {
				break
			}
		}
		mb.Cores[0].Halt()
	})
	mb.Cores[0].EnableInterrupts()
	mb.Cores[0].Halt()

	na.Transmit(frameOf(MAC{1}, MAC{2}, 9000, 1), 0)
	na.Transmit(frameOf(MAC{1}, MAC{2}, 9000, 1), 0)
	k.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	ser := l.serialization(9014)
	if gap := arrivals[1] - arrivals[0]; gap < ser {
		t.Fatalf("gap %v < serialization %v: link did not serialize", gap, ser)
	}
}

func TestRSSQueueSelection(t *testing.T) {
	k := sim.NewKernel()
	ma := testMachine(k, 1)
	mb := testMachine(k, 4)
	na := NewNIC(ma, MAC{1})
	nb := NewNIC(mb, MAC{2})
	NewLink(k, na, nb)
	for h := uint32(0); h < 8; h++ {
		na.Transmit(frameOf(MAC{1}, MAC{2}, 64, h), 0)
	}
	k.Run()
	for q := 0; q < 4; q++ {
		if nb.Queues[q].Len() != 2 {
			t.Fatalf("queue %d has %d frames, want 2", q, nb.Queues[q].Len())
		}
	}
}

func TestQueueIRQMasking(t *testing.T) {
	k := sim.NewKernel()
	ma := testMachine(k, 1)
	mb := testMachine(k, 1)
	na := NewNIC(ma, MAC{1})
	nb := NewNIC(mb, MAC{2})
	NewLink(k, na, nb)

	fired := 0
	q := nb.Queues[0]
	q.SetIRQ(mb.Cores[0], 60)
	mb.Cores[0].SetDispatcher(func(int) { fired++; mb.Cores[0].Halt() })
	mb.Cores[0].EnableInterrupts()
	mb.Cores[0].Halt()
	q.DisableIRQ()

	na.Transmit(frameOf(MAC{1}, MAC{2}, 64, 0), 0)
	k.Run()
	if fired != 0 {
		t.Fatal("masked queue raised an interrupt")
	}
	if q.Len() != 1 {
		t.Fatal("frame lost while masked")
	}
	// Re-enabling with frames queued must fire immediately.
	q.EnableIRQ()
	k.Run()
	if fired != 1 {
		t.Fatalf("EnableIRQ with backlog fired %d times, want 1", fired)
	}
}

func TestSwitchLearningAndFlood(t *testing.T) {
	k := sim.NewKernel()
	machines := make([]*Machine, 3)
	nics := make([]*NIC, 3)
	sw := NewSwitch(k)
	for i := range machines {
		machines[i] = testMachine(k, 1)
		nics[i] = NewNIC(machines[i], MAC{byte(i + 1)})
		sw.Connect(nics[i])
	}
	// Unknown destination: flood to all but sender.
	nics[0].Transmit(frameOf(MAC{1}, MAC{2}, 64, 0), 0)
	k.Run()
	if nics[1].RxFrames.N != 1 || nics[2].RxFrames.N != 1 {
		t.Fatalf("flood delivered %d/%d", nics[1].RxFrames.N, nics[2].RxFrames.N)
	}
	// The switch has now learned MAC 1. Reply unicasts only to port 0.
	nics[1].Transmit(frameOf(MAC{2}, MAC{1}, 64, 0), 0)
	k.Run()
	if nics[0].RxFrames.N != 1 {
		t.Fatal("unicast to learned MAC not delivered")
	}
	if nics[2].RxFrames.N != 1 {
		t.Fatal("unicast flooded to unrelated port")
	}
	// Broadcast floods.
	nics[2].Transmit(frameOf(MAC{3}, Broadcast, 64, 0), 0)
	k.Run()
	if nics[0].RxFrames.N != 2 || nics[1].RxFrames.N != 2 {
		t.Fatal("broadcast not flooded")
	}
}

func TestNICDownDropsBothDirections(t *testing.T) {
	k := sim.NewKernel()
	ma := testMachine(k, 1)
	mb := testMachine(k, 1)
	na := NewNIC(ma, MAC{1})
	nb := NewNIC(mb, MAC{2})
	NewLink(k, na, nb)

	// Down NIC transmits nothing.
	nb.SetUp(false)
	if nb.Up() {
		t.Fatal("NIC reports up after SetUp(false)")
	}
	nb.Transmit(frameOf(MAC{2}, MAC{1}, 64, 0), 0)
	k.Run()
	if na.RxFrames.N != 0 {
		t.Fatal("frame escaped a down NIC")
	}
	// Down NIC receives nothing; the frame vanishes rather than queueing.
	na.Transmit(frameOf(MAC{1}, MAC{2}, 64, 0), 0)
	k.Run()
	if nb.RxFrames.N != 0 || nb.Queues[0].Len() != 0 {
		t.Fatal("down NIC accepted a frame")
	}
	if nb.DroppedFrames.N != 2 {
		t.Fatalf("dropped %d frames, want 2", nb.DroppedFrames.N)
	}
	// Revived NIC passes frames again.
	nb.SetUp(true)
	na.Transmit(frameOf(MAC{1}, MAC{2}, 64, 0), 0)
	k.Run()
	if nb.RxFrames.N != 1 {
		t.Fatal("revived NIC did not receive")
	}
}

func TestSwitchDropFn(t *testing.T) {
	k := sim.NewKernel()
	sw := NewSwitch(k)
	machines := make([]*Machine, 2)
	nics := make([]*NIC, 2)
	for i := range machines {
		machines[i] = testMachine(k, 1)
		nics[i] = NewNIC(machines[i], MAC{byte(i + 1)})
		sw.Connect(nics[i])
	}
	// Drop every other frame at ingress.
	sw.DropFn = func(index uint64, f Frame) bool { return index%2 == 1 }
	for i := 0; i < 10; i++ {
		nics[0].Transmit(frameOf(MAC{1}, MAC{2}, 64, 0), 0)
	}
	k.Run()
	if nics[1].RxFrames.N != 5 {
		t.Fatalf("received %d frames through lossy switch, want 5", nics[1].RxFrames.N)
	}
}

func TestVirtualizationCostsAffectLatency(t *testing.T) {
	oneWay := func(virt bool) sim.Time {
		k := sim.NewKernel()
		cfgA := DefaultConfig("a", 1)
		cfgA.Virtualized = virt
		cfgB := DefaultConfig("b", 1)
		cfgB.Virtualized = virt
		ma, mb := New(k, cfgA), New(k, cfgB)
		na, nb := NewNIC(ma, MAC{1}), NewNIC(mb, MAC{2})
		NewLink(k, na, nb)
		var arrival sim.Time
		nb.Queues[0].SetIRQ(mb.Cores[0], 60)
		mb.Cores[0].SetDispatcher(func(int) { arrival = k.Now() })
		mb.Cores[0].EnableInterrupts()
		mb.Cores[0].Halt()
		na.Transmit(frameOf(MAC{1}, MAC{2}, 64, 0), 0)
		k.Run()
		return arrival
	}
	virt, native := oneWay(true), oneWay(false)
	if virt <= native {
		t.Fatalf("virtualized %v should exceed native %v", virt, native)
	}
}
