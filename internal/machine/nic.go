package machine

import (
	"fmt"

	"ebbrt/internal/iobuf"
	"ebbrt/internal/sim"
)

// MAC is an Ethernet hardware address.
type MAC [6]byte

// Broadcast is the all-ones Ethernet broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String renders the address in colon-hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the address is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// Frame is one Ethernet frame in flight: the packet bytes (starting at the
// Ethernet header) plus the flow hash the sending NIC computed for
// receive-side scaling, standing in for the hardware Toeplitz hash.
type Frame struct {
	Buf  *iobuf.IOBuf
	Hash uint32
}

// DstMAC reads the destination address from the frame header.
func (f Frame) DstMAC() MAC {
	var m MAC
	b, err := f.Buf.Reader().ReadBytes(6)
	if err != nil {
		return m
	}
	copy(m[:], b)
	return m
}

// Len reports the frame's total byte length.
func (f Frame) Len() int { return f.Buf.ComputeChainDataLength() }

// Port is anywhere a NIC can hand a frame: the far NIC of a point-to-point
// link, or a switch port.
type Port interface {
	// Send transmits the frame; delivery latency is the port's concern.
	Send(f Frame)
}

// RxQueue is one NIC receive queue. The driver (EbbRT's virtio-net
// equivalent, or the GPOS model) pops frames from it, and may mask its
// interrupt to poll instead - the adaptive strategy of paper §3.2.
type RxQueue struct {
	nic        *NIC
	idx        int
	ring       []Frame
	irqEnabled bool
	vector     int
	core       *Core
}

// Len reports queued frames.
func (q *RxQueue) Len() int { return len(q.ring) }

// Pop removes and returns the oldest frame; ok is false when empty.
func (q *RxQueue) Pop() (Frame, bool) {
	if len(q.ring) == 0 {
		return Frame{}, false
	}
	f := q.ring[0]
	q.ring = q.ring[1:]
	return f, true
}

// SetIRQ binds the queue to an interrupt vector on a core. Drivers allocate
// the vector from their event manager and program it here.
func (q *RxQueue) SetIRQ(core *Core, vector int) {
	q.core = core
	q.vector = vector
	q.irqEnabled = true
}

// EnableIRQ re-enables the queue interrupt (leave polling mode). If frames
// are already queued, the interrupt fires immediately so none are stranded.
func (q *RxQueue) EnableIRQ() {
	q.irqEnabled = true
	if len(q.ring) > 0 && q.core != nil {
		q.core.RaiseIRQ(q.vector)
	}
}

// DisableIRQ masks the queue interrupt (enter polling mode).
func (q *RxQueue) DisableIRQ() { q.irqEnabled = false }

// IRQEnabled reports whether the interrupt is unmasked.
func (q *RxQueue) IRQEnabled() bool { return q.irqEnabled }

// NIC models a virtio-net device (or the bare-metal X520 when the machine
// is not virtualized - the virtio/vhost costs drop to zero contributions on
// that path is controlled by Machine.Cfg.Virtualized).
type NIC struct {
	M      *Machine
	Mac    MAC
	Queues []*RxQueue
	peer   Port
	down   bool

	// Stats
	TxFrames, RxFrames sim.Counter
	TxBytes, RxBytes   sim.Counter
	// DroppedFrames counts frames discarded in either direction while the
	// NIC was down.
	DroppedFrames sim.Counter
}

// NewNIC attaches a NIC with the configured number of receive queues.
func NewNIC(m *Machine, mac MAC) *NIC {
	n := &NIC{M: m, Mac: mac}
	for i := 0; i < m.Cfg.NICQueues; i++ {
		n.Queues = append(n.Queues, &RxQueue{nic: n, idx: i})
	}
	m.NICs = append(m.NICs, n)
	return n
}

// Attach connects the NIC to a port (link endpoint or switch port).
func (n *NIC) Attach(p Port) { n.peer = p }

// SetUp raises or cuts the NIC's connection to its port. A down NIC
// silently discards frames in both directions - the machine is
// unreachable, as after a crash or cable pull - without disturbing any
// state above it, so peers observe the failure only through timeouts.
// Bringing the NIC back up resumes delivery; nothing queued during the
// outage survives it.
func (n *NIC) SetUp(up bool) { n.down = !up }

// Up reports whether the NIC is passing frames.
func (n *NIC) Up() bool { return !n.down }

// Transmit sends a frame. extraDelay lets the caller account for CPU time
// already charged in the current event (the frame leaves when the event's
// virtual work completes, preserving causality in the one-shot event
// execution model). The guest pays the virtio kick; the host side charges
// vhost processing before the wire.
func (n *NIC) Transmit(f Frame, extraDelay sim.Time) {
	if n.peer == nil {
		panic("machine: NIC transmit with no attached port")
	}
	if n.down {
		n.DroppedFrames.Inc()
		return
	}
	n.TxFrames.Inc()
	n.TxBytes.AddN(uint64(f.Len()))
	costs := &n.M.Cfg.Costs
	d := extraDelay + costs.NICLatency
	if n.M.Cfg.Virtualized {
		d += costs.VirtioKick + costs.VhostPerPacket
	}
	n.M.K.After(d, func() { n.peer.Send(f) })
}

// TxCPUCost reports the CPU time the transmitting core spends in the device
// path (the virtio kick); runtimes charge this to the sending event.
func (n *NIC) TxCPUCost() sim.Time {
	if n.M.Cfg.Virtualized {
		return n.M.Cfg.Costs.VirtioKick
	}
	return 200 * sim.Nanosecond
}

// Deliver is called by the attached port when a frame arrives at this NIC.
// The hypervisor charges vhost processing plus the reception copy, selects
// a receive queue by flow hash, and injects an interrupt if the queue is
// unmasked. The frame is physically copied into fresh guest memory - the
// hypervisor copy both systems pay (paper §4.1.3) - so the receiver's view
// manipulation never aliases the sender's retransmission buffers.
func (n *NIC) Deliver(f Frame) {
	if n.down {
		n.DroppedFrames.Inc()
		return
	}
	f = Frame{Buf: iobuf.FromBytes(f.Buf.CopyOut()), Hash: f.Hash}
	costs := &n.M.Cfg.Costs
	d := costs.RxCopy(f.Len())
	if n.M.Cfg.Virtualized {
		d += costs.VhostPerPacket
	}
	n.M.K.After(d, func() {
		n.RxFrames.Inc()
		n.RxBytes.AddN(uint64(f.Len()))
		q := n.Queues[int(f.Hash)%len(n.Queues)]
		q.ring = append(q.ring, f)
		if q.irqEnabled && q.core != nil {
			if n.M.Cfg.Virtualized {
				n.M.K.After(costs.IRQInject, func() { q.core.RaiseIRQ(q.vector) })
			} else {
				q.core.RaiseIRQ(q.vector)
			}
		}
	})
}

// nicPort adapts a NIC as the receiving end of a Port.
type nicPort struct{ n *NIC }

func (p nicPort) Send(f Frame) { p.n.Deliver(f) }

// PortOf returns a Port that delivers into the NIC, for wiring links.
func PortOf(n *NIC) Port { return nicPort{n} }
