package mem

import (
	"fmt"
	"sync"
)

// sizeClasses are the slab object sizes behind the general-purpose
// allocator. A request is served by the smallest class that fits;
// anything larger goes straight to the page allocator through a virtual
// region (paper §3.4).
var sizeClasses = []int{8, 16, 32, 64, 96, 128, 192, 256, 512, 1024, 2048, 4096}

// classOf maps size-1 to its class index for O(1) routing - the analogue
// of the compile-time constant folding the paper notes lets a malloc with
// a known size lower into a direct slab invocation.
var classOf [PageSize]int8

func init() {
	ci := 0
	for sz := 1; sz <= PageSize; sz++ {
		if sz > sizeClasses[ci] {
			ci++
		}
		classOf[sz-1] = int8(ci)
	}
}

// Malloc is the general-purpose allocator Ebb: a family of slab allocators
// plus a large-object path. Because the class sizes are compile-time
// constants in the C++ system, calls with constant sizes optimize to a
// direct slab invocation; here the class lookup is a small search.
type Malloc struct {
	pages   *PageAllocator
	slabs   []*SlabAllocator
	largeMu sync.Mutex
	large   map[Addr]int // addr -> page order
}

// NewMalloc builds the allocator family for a machine with the given core
// count and core->node mapping.
func NewMalloc(pages *PageAllocator, cores int, coreNode func(int) int) *Malloc {
	m := &Malloc{pages: pages, large: map[Addr]int{}}
	for _, sz := range sizeClasses {
		m.slabs = append(m.slabs, NewSlabAllocator(pages, sz, cores, coreNode))
	}
	return m
}

// classFor returns the slab index serving size, or -1 for large requests.
func classFor(size int) int {
	if size > PageSize {
		return -1
	}
	return int(classOf[size-1])
}

// Alloc allocates size bytes on the given core.
func (m *Malloc) Alloc(core, size int) (Addr, bool) {
	if size <= 0 {
		panic(fmt.Sprintf("mem: malloc of %d bytes", size))
	}
	if ci := classFor(size); ci >= 0 {
		return m.slabs[ci].Alloc(core)
	}
	return m.allocLarge(core, size)
}

func (m *Malloc) allocLarge(core, size int) (Addr, bool) {
	order := 0
	for (PageSize << order) < size {
		order++
	}
	if order > MaxOrder {
		return 0, false
	}
	a, ok := m.pages.Alloc(order, 0)
	if !ok {
		return 0, false
	}
	m.largeMu.Lock()
	m.large[a] = order
	m.largeMu.Unlock()
	return a, true
}

// Free releases an allocation of the given size from the given core. Size
// must match the allocation (sized delete), which is how the slab owning
// the object is found without per-object headers.
func (m *Malloc) Free(core int, a Addr, size int) {
	if ci := classFor(size); ci >= 0 {
		m.slabs[ci].Free(core, a)
		return
	}
	m.largeMu.Lock()
	order, ok := m.large[a]
	if ok {
		delete(m.large, a)
	}
	m.largeMu.Unlock()
	if !ok {
		panic(fmt.Sprintf("mem: large free of unknown address %#x", a))
	}
	m.pages.Free(a, order)
}

// SlabFor exposes the slab serving a size class (the compile-time
// optimization path the paper describes, where a constant-size malloc
// lowers to a direct slab call).
func (m *Malloc) SlabFor(size int) *SlabAllocator {
	ci := classFor(size)
	if ci < 0 {
		return nil
	}
	return m.slabs[ci]
}
