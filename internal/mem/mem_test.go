package mem

import (
	"sync"
	"testing"
	"testing/quick"
)

func newTestPages() *PageAllocator {
	return NewPageAllocator(2, 64<<20) // 2 nodes x 64 MiB
}

func TestBuddyAllocFree(t *testing.T) {
	p := newTestPages()
	start := p.FreeBytes()
	a, ok := p.Alloc(0, 0)
	if !ok {
		t.Fatal("alloc failed")
	}
	if p.FreeBytes() != start-PageSize {
		t.Fatalf("free bytes %d", p.FreeBytes())
	}
	p.Free(a, 0)
	if p.FreeBytes() != start {
		t.Fatal("free did not restore")
	}
}

func TestBuddyAlignment(t *testing.T) {
	p := newTestPages()
	for order := 0; order <= MaxOrder; order++ {
		a, ok := p.Alloc(order, 0)
		if !ok {
			t.Fatalf("order %d alloc failed", order)
		}
		if uint64(a)%uint64(PageSize<<order) != 0 {
			t.Fatalf("order %d allocation %#x misaligned", order, a)
		}
		p.Free(a, order)
	}
}

func TestBuddyCoalescing(t *testing.T) {
	p := NewPageAllocator(1, 32<<20)
	start := p.FreeBytes()
	// Allocate every order-0 page of one max block, then free them all;
	// afterwards a max-order allocation must succeed again.
	n := 1 << MaxOrder
	addrs := make([]Addr, 0, n)
	for i := 0; i < n; i++ {
		a, ok := p.Alloc(0, 0)
		if !ok {
			t.Fatal("exhausted early")
		}
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		p.Free(a, 0)
	}
	if p.FreeBytes() != start {
		t.Fatal("bytes leaked")
	}
	if _, ok := p.Alloc(MaxOrder, 0); !ok {
		t.Fatal("coalescing failed: max-order alloc impossible after full free")
	}
}

func TestBuddyDistinctAddresses(t *testing.T) {
	p := newTestPages()
	seen := map[Addr]bool{}
	for i := 0; i < 1000; i++ {
		a, ok := p.Alloc(0, 0)
		if !ok {
			t.Fatal("alloc failed")
		}
		if seen[a] {
			t.Fatalf("address %#x handed out twice", a)
		}
		seen[a] = true
	}
}

func TestBuddyNodeFallback(t *testing.T) {
	p := NewPageAllocator(2, 32<<20)
	// Exhaust node 0.
	var got []Addr
	for {
		a, ok := p.nodes[0].alloc(MaxOrder)
		if !ok {
			break
		}
		got = append(got, a)
	}
	if len(got) == 0 {
		t.Fatal("node 0 empty at start")
	}
	// Alloc preferring node 0 must fall back to node 1.
	a, ok := p.Alloc(0, 0)
	if !ok {
		t.Fatal("fallback failed")
	}
	if a < p.nodes[1].base {
		t.Fatalf("allocation %#x not from node 1", a)
	}
}

func TestBuddyDoubleFreePanics(t *testing.T) {
	p := newTestPages()
	a, _ := p.Alloc(0, 0)
	p.Free(a, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	p.Free(a, 0)
}

func TestBuddyWrongOrderFreePanics(t *testing.T) {
	p := newTestPages()
	a, _ := p.Alloc(2, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-order free did not panic")
		}
	}()
	p.Free(a, 3)
}

func TestBuddyExhaustion(t *testing.T) {
	p := NewPageAllocator(1, 8<<20)
	var n int
	for {
		if _, ok := p.Alloc(MaxOrder, 0); !ok {
			break
		}
		n++
	}
	if n != 1 { // 8 MiB node = exactly one max-order block
		t.Fatalf("allocated %d max blocks from 8MiB", n)
	}
}

// Property: interleaved alloc/free sequences never hand out overlapping
// regions and always restore all bytes when everything is freed.
func TestBuddyNoOverlapProperty(t *testing.T) {
	type allocation struct {
		addr  Addr
		order int
	}
	prop := func(ops []uint8) bool {
		p := NewPageAllocator(1, 32<<20)
		start := p.FreeBytes()
		var live []allocation
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				order := int(op % (MaxOrder + 1))
				a, ok := p.Alloc(order, 0)
				if !ok {
					continue
				}
				// Overlap check against live allocations.
				lo, hi := a, a+orderBytes(order)
				for _, l := range live {
					llo, lhi := l.addr, l.addr+orderBytes(l.order)
					if lo < lhi && llo < hi {
						return false
					}
				}
				live = append(live, allocation{a, order})
			} else {
				i := int(op) % len(live)
				p.Free(live[i].addr, live[i].order)
				live = append(live[:i], live[i+1:]...)
			}
		}
		for _, l := range live {
			p.Free(l.addr, l.order)
		}
		return p.FreeBytes() == start
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func coreNode2(core int) int { return core % 2 }

func TestSlabAllocFree(t *testing.T) {
	p := newTestPages()
	s := NewSlabAllocator(p, 64, 4, coreNode2)
	a, ok := s.Alloc(0)
	if !ok {
		t.Fatal("alloc failed")
	}
	b, ok := s.Alloc(0)
	if !ok || a == b {
		t.Fatalf("second alloc %#x vs %#x", a, b)
	}
	s.Free(0, a)
	s.Free(0, b)
}

func TestSlabDistinctObjects(t *testing.T) {
	p := newTestPages()
	s := NewSlabAllocator(p, 8, 2, coreNode2)
	seen := map[Addr]bool{}
	for i := 0; i < 10000; i++ {
		a, ok := s.Alloc(i % 2)
		if !ok {
			t.Fatal("alloc failed")
		}
		if seen[a] {
			t.Fatalf("object %#x handed out twice", a)
		}
		seen[a] = true
	}
}

func TestSlabReuse(t *testing.T) {
	p := newTestPages()
	s := NewSlabAllocator(p, 8, 1, func(int) int { return 0 })
	a, _ := s.Alloc(0)
	s.Free(0, a)
	b, _ := s.Alloc(0)
	if a != b {
		t.Fatalf("LIFO reuse expected: %#x then %#x", a, b)
	}
}

func TestSlabSpillAndRefill(t *testing.T) {
	p := newTestPages()
	s := NewSlabAllocator(p, 8, 2, coreNode2)
	// Allocate far more than one batch on core 0, free all on core 0:
	// the spill path must bound the core list.
	var addrs []Addr
	for i := 0; i < 10*maxCoreFree; i++ {
		a, ok := s.Alloc(0)
		if !ok {
			t.Fatal("alloc failed")
		}
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		s.Free(0, a)
	}
	if got := len(s.cores[0].free); got >= 10*maxCoreFree {
		t.Fatalf("core list grew unbounded: %d", got)
	}
	if s.FreeObjects() < 10*maxCoreFree {
		t.Fatal("objects lost in spill")
	}
}

func TestSlabParallelPerCore(t *testing.T) {
	p := NewPageAllocator(2, 256<<20)
	const cores = 8
	s := NewSlabAllocator(p, 8, cores, coreNode2)
	var wg sync.WaitGroup
	for c := 0; c < cores; c++ {
		wg.Add(1)
		go func(core int) {
			defer wg.Done()
			var live []Addr
			for i := 0; i < 20000; i++ {
				a, ok := s.Alloc(core)
				if !ok {
					t.Error("alloc failed")
					return
				}
				live = append(live, a)
				if len(live) > 32 {
					s.Free(core, live[0])
					live = live[1:]
				}
			}
			for _, a := range live {
				s.Free(core, a)
			}
		}(c)
	}
	wg.Wait()
}

func TestMallocSizeClasses(t *testing.T) {
	p := newTestPages()
	m := NewMalloc(p, 2, coreNode2)
	for _, sz := range []int{1, 8, 9, 100, 1000, 4096} {
		a, ok := m.Alloc(0, sz)
		if !ok {
			t.Fatalf("alloc %d failed", sz)
		}
		m.Free(0, a, sz)
	}
	if m.SlabFor(8).ObjSize() != 8 {
		t.Fatal("SlabFor(8) wrong class")
	}
	if m.SlabFor(9).ObjSize() != 16 {
		t.Fatal("SlabFor(9) should round up to 16")
	}
	if m.SlabFor(100000) != nil {
		t.Fatal("large size should have no slab")
	}
}

func TestMallocLargePath(t *testing.T) {
	p := newTestPages()
	m := NewMalloc(p, 1, func(int) int { return 0 })
	a, ok := m.Alloc(0, 100000)
	if !ok {
		t.Fatal("large alloc failed")
	}
	m.Free(0, a, 100000)
	// Double free of a large allocation panics.
	defer func() {
		if recover() == nil {
			t.Fatal("large double free did not panic")
		}
	}()
	m.Free(0, a, 100000)
}

func TestMallocZeroPanics(t *testing.T) {
	p := newTestPages()
	m := NewMalloc(p, 1, func(int) int { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("malloc(0) did not panic")
		}
	}()
	m.Alloc(0, 0)
}

func TestRivalAllocatorsRun(t *testing.T) {
	p := NewPageAllocator(2, 256<<20)
	const cores = 4
	allocs := []Allocator{
		&EbbRTAllocator{M: NewMalloc(p, cores, coreNode2)},
		NewGlibcStyle(),
		NewJemallocStyle(cores),
	}
	for _, a := range allocs {
		var wg sync.WaitGroup
		for c := 0; c < cores; c++ {
			wg.Add(1)
			go func(core int) {
				defer wg.Done()
				for i := 0; i < 5000; i++ {
					a.AllocFree(core)
				}
			}(c)
		}
		wg.Wait()
	}
}
