// Package mem implements EbbRT's memory allocation subsystem (paper §3.4):
// a buddy page allocator with per-NUMA-node representatives, an SLQB-style
// slab allocator with per-core and per-node representatives, and the
// general-purpose allocator (malloc) built from slab allocators of
// graduated size classes.
//
// The allocators manage addresses within a simulated identity-mapped
// physical address space - the algorithms, metadata traffic, and
// synchronization behaviour are real; the backing bytes belong to the Go
// heap. For the Figure 3 reproduction the package also provides
// "glibc-style" (single arena + lock) and "jemalloc-style" (thread cache +
// locked central bins with atomic stats) rivals, exercised under real
// goroutine parallelism.
package mem

import (
	"fmt"
	"sync"
)

// Addr is a simulated physical address. The identity mapping the paper
// relies on for zero-copy DMA means an Addr is usable directly as a device
// address.
type Addr uint64

// PageSize is the base page size (order-0 allocation unit).
const PageSize = 4096

// MaxOrder is the largest buddy order: order 11 spans 8 MiB, like Linux.
const MaxOrder = 11

// PageAllocator is the lowest-level allocator Ebb: power-of-two pages from
// per-NUMA-node buddy allocators. Each node representative owns a disjoint
// region of the address space and its own lock, so allocations on
// different nodes never contend.
type PageAllocator struct {
	nodes []*buddy
}

// NewPageAllocator creates an allocator with the given number of NUMA
// nodes, each owning bytesPerNode of address space (rounded down to a
// multiple of the largest buddy block).
func NewPageAllocator(numaNodes int, bytesPerNode uint64) *PageAllocator {
	if numaNodes <= 0 {
		panic("mem: need at least one NUMA node")
	}
	blockBytes := uint64(PageSize) << MaxOrder
	bytesPerNode -= bytesPerNode % blockBytes
	if bytesPerNode == 0 {
		panic("mem: bytesPerNode smaller than the largest buddy block")
	}
	p := &PageAllocator{}
	for n := 0; n < numaNodes; n++ {
		base := Addr(uint64(n) * bytesPerNode)
		p.nodes = append(p.nodes, newBuddy(base, bytesPerNode))
	}
	return p
}

// Nodes reports the NUMA node count.
func (p *PageAllocator) Nodes() int { return len(p.nodes) }

// Alloc allocates 2^order pages from the given node, falling back to other
// nodes when the preferred node is exhausted. ok is false when no node can
// satisfy the request.
func (p *PageAllocator) Alloc(order, node int) (Addr, bool) {
	if order < 0 || order > MaxOrder {
		panic(fmt.Sprintf("mem: page order %d out of range", order))
	}
	n := len(p.nodes)
	for i := 0; i < n; i++ {
		b := p.nodes[(node+i)%n]
		if a, ok := b.alloc(order); ok {
			return a, true
		}
	}
	return 0, false
}

// Free returns 2^order pages to their owning node. Freeing an address that
// was not allocated (or double-freeing) panics: silent corruption of the
// free lists is the worst allocator failure mode.
func (p *PageAllocator) Free(a Addr, order int) {
	for _, b := range p.nodes {
		if a >= b.base && a < b.end {
			b.free(a, order)
			return
		}
	}
	panic(fmt.Sprintf("mem: free of address %#x outside any node", a))
}

// FreeBytes reports the total free space across nodes.
func (p *PageAllocator) FreeBytes() uint64 {
	var total uint64
	for _, b := range p.nodes {
		total += b.freeBytes
	}
	return total
}

// buddy is one NUMA node's buddy allocator.
type buddy struct {
	mu        sync.Mutex
	base, end Addr
	freeLists [MaxOrder + 1]map[Addr]struct{}
	allocated map[Addr]int // addr -> order, for double-free detection
	freeBytes uint64
}

func newBuddy(base Addr, bytes uint64) *buddy {
	b := &buddy{base: base, end: base + Addr(bytes), allocated: map[Addr]int{}, freeBytes: bytes}
	for i := range b.freeLists {
		b.freeLists[i] = map[Addr]struct{}{}
	}
	blockBytes := Addr(PageSize) << MaxOrder
	for a := base; a < b.end; a += blockBytes {
		b.freeLists[MaxOrder][a] = struct{}{}
	}
	return b
}

func orderBytes(order int) Addr { return Addr(PageSize) << order }

func (b *buddy) alloc(order int) (Addr, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	o := order
	for o <= MaxOrder && len(b.freeLists[o]) == 0 {
		o++
	}
	if o > MaxOrder {
		return 0, false
	}
	var a Addr
	for cand := range b.freeLists[o] {
		a = cand
		break
	}
	delete(b.freeLists[o], a)
	// Split down to the requested order, returning the upper halves.
	for o > order {
		o--
		buddyAddr := a + orderBytes(o)
		b.freeLists[o][buddyAddr] = struct{}{}
	}
	b.allocated[a] = order
	b.freeBytes -= uint64(orderBytes(order))
	return a, true
}

func (b *buddy) free(a Addr, order int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	got, ok := b.allocated[a]
	if !ok {
		panic(fmt.Sprintf("mem: free of unallocated address %#x", a))
	}
	if got != order {
		panic(fmt.Sprintf("mem: free of %#x with order %d, allocated order %d", a, order, got))
	}
	delete(b.allocated, a)
	b.freeBytes += uint64(orderBytes(order))
	// Coalesce with the buddy while possible.
	for order < MaxOrder {
		buddyAddr := a ^ orderBytes(order)
		if buddyAddr < b.base || buddyAddr >= b.end {
			break
		}
		if _, free := b.freeLists[order][buddyAddr]; !free {
			break
		}
		delete(b.freeLists[order], buddyAddr)
		if buddyAddr < a {
			a = buddyAddr
		}
		order++
	}
	b.freeLists[order][a] = struct{}{}
}
