package mem

import (
	"sync"
	"sync/atomic"
)

// This file implements the comparison allocators for the Figure 3
// reproduction. They are deliberately simplified but preserve the
// synchronization structure that produces the paper's scalability curves:
//
//   - GlibcStyle: one central arena protected by a lock, like ptmalloc's
//     main arena under per-core load - every operation contends.
//   - JemallocStyle: per-thread caches over locked central bins, with the
//     atomic statistics traffic jemalloc performs on its hot path. It
//     scales linearly but each operation carries atomic-operation cost.
//
// The EbbRT allocator (Malloc/SlabAllocator) needs neither: non-preemptive
// per-core execution makes its fast path a plain push/pop.

// Allocator is the interface the Figure 3 harness drives: allocate and
// free one fixed-size object on behalf of a core.
type Allocator interface {
	// AllocFree performs one allocate/free pair of an 8-byte object on
	// the given core and returns nothing; errors are programming bugs.
	AllocFree(core int)
	// Name identifies the allocator in experiment output.
	Name() string
}

// EbbRTAllocator adapts Malloc to the benchmark interface.
type EbbRTAllocator struct{ M *Malloc }

// Name implements Allocator.
func (e *EbbRTAllocator) Name() string { return "EbbRT" }

// AllocFree implements Allocator.
func (e *EbbRTAllocator) AllocFree(core int) {
	a, ok := e.M.Alloc(core, 8)
	if !ok {
		panic("mem: EbbRT allocator exhausted")
	}
	e.M.Free(core, a, 8)
}

// GlibcStyle models a single-arena allocator: one mutex serializes every
// operation, plus constant per-op bookkeeping (boundary tags, bin checks).
type GlibcStyle struct {
	mu   sync.Mutex
	free []Addr
	next Addr
	work [24]uint64 // touched per-op to model header/bin bookkeeping
}

// NewGlibcStyle returns the arena-with-lock rival.
func NewGlibcStyle() *GlibcStyle { return &GlibcStyle{} }

// Name implements Allocator.
func (g *GlibcStyle) Name() string { return "glibc" }

// AllocFree implements Allocator.
func (g *GlibcStyle) AllocFree(core int) {
	g.mu.Lock()
	var a Addr
	if n := len(g.free); n > 0 {
		a = g.free[n-1]
		g.free = g.free[:n-1]
	} else {
		a = g.next
		g.next += 16
	}
	// Boundary-tag style bookkeeping under the lock.
	for i := range g.work {
		g.work[i] += uint64(a)
	}
	g.free = append(g.free, a)
	g.mu.Unlock()
}

// JemallocStyle models a thread-caching allocator: per-core caches refill
// from central bins under a lock, and the hot path performs the atomic
// statistics updates jemalloc is known for.
type JemallocStyle struct {
	central struct {
		mu   sync.Mutex
		free []Addr
		next Addr
	}
	caches []jemCache
}

type jemCache struct {
	free []Addr
	// Per-thread statistics updated with atomics on every operation -
	// uncontended (own cache line) but not free, which is what keeps
	// jemalloc linear yet measurably slower than an allocator that needs
	// no atomics at all.
	allocStats atomic.Uint64
	binStats   atomic.Uint64
	_          [48]byte
}

// NewJemallocStyle returns the thread-cache rival for the given core count.
func NewJemallocStyle(cores int) *JemallocStyle {
	return &JemallocStyle{caches: make([]jemCache, cores)}
}

// Name implements Allocator.
func (j *JemallocStyle) Name() string { return "jemalloc" }

// AllocFree implements Allocator.
func (j *JemallocStyle) AllocFree(core int) {
	c := &j.caches[core]
	if len(c.free) == 0 {
		j.central.mu.Lock()
		for i := 0; i < batchSize; i++ {
			if n := len(j.central.free); n > 0 {
				c.free = append(c.free, j.central.free[n-1])
				j.central.free = j.central.free[:n-1]
			} else {
				c.free = append(c.free, j.central.next)
				j.central.next += 16
			}
		}
		j.central.mu.Unlock()
	}
	a := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	// Atomic stats on the hot path: alloc and dalloc events, bytes and
	// bin counters, as jemalloc's tcache accounting performs.
	c.allocStats.Add(uint64(a))
	c.allocStats.Add(1)
	c.binStats.Add(uint64(a) >> 4)
	c.binStats.Add(1)
	c.free = append(c.free, a)
	if len(c.free) > maxCoreFree {
		j.central.mu.Lock()
		j.central.free = append(j.central.free, c.free[len(c.free)-batchSize:]...)
		j.central.mu.Unlock()
		c.free = c.free[:len(c.free)-batchSize]
	}
}
