package mem

import (
	"fmt"
	"sync"
)

// SlabAllocator allocates fixed-size objects from pages, following the
// SLQB design the paper cites: per-core representatives hold object free
// lists (accessed without synchronization thanks to non-preemptive
// per-core execution), and per-NUMA-node representatives hold partially
// allocated pages refilled under a rarely-taken lock.
//
// Alloc and Free take the invoking core explicitly (the C++ system gets it
// implicitly from the per-core translation region). Calls for the same
// core must not race - exactly the guarantee the event model provides; the
// Figure 3 benchmark maps one goroutine per core to mirror it.
type SlabAllocator struct {
	objSize  int
	objsPer  int
	pages    *PageAllocator
	coreNode func(core int) int
	cores    []slabCore
	nodes    []slabNode
}

// slabCore is the per-core representative. The padding prevents false
// sharing between adjacent cores under real parallel benchmarking.
type slabCore struct {
	free []Addr
	_    [64]byte
}

// slabNode is the per-NUMA-node representative: a spill pool shared by the
// node's cores, plus the page provenance map for leak checking.
type slabNode struct {
	mu    sync.Mutex
	spill []Addr
	pages []Addr
	_     [64]byte
}

// batchSize is how many objects move between a core list and the node pool
// at a time; batching keeps the node lock off the fast path.
const batchSize = 64

// maxCoreFree bounds the per-core list; beyond it, objects spill to the
// node so one core cannot hoard the working set (the balancing problem the
// paper notes is simple because the core count is static).
const maxCoreFree = 4 * batchSize

// NewSlabAllocator creates a slab allocator for objSize-byte objects on a
// machine with the given core count. coreNode maps a core to its NUMA node.
func NewSlabAllocator(pages *PageAllocator, objSize, cores int, coreNode func(int) int) *SlabAllocator {
	if objSize <= 0 || objSize > PageSize {
		panic(fmt.Sprintf("mem: slab object size %d out of range", objSize))
	}
	return &SlabAllocator{
		objSize:  objSize,
		objsPer:  PageSize / objSize,
		pages:    pages,
		coreNode: coreNode,
		cores:    make([]slabCore, cores),
		nodes:    make([]slabNode, pages.Nodes()),
	}
}

// ObjSize reports the object size this slab serves.
func (s *SlabAllocator) ObjSize() int { return s.objSize }

// Alloc returns one object. The fast path is an unsynchronized pop from
// the core's free list.
func (s *SlabAllocator) Alloc(core int) (Addr, bool) {
	c := &s.cores[core]
	if n := len(c.free); n > 0 {
		a := c.free[n-1]
		c.free = c.free[:n-1]
		return a, true
	}
	return s.refill(core)
}

// refill pulls a batch from the node pool (or carves a fresh page).
func (s *SlabAllocator) refill(core int) (Addr, bool) {
	node := s.coreNode(core)
	n := &s.nodes[node]
	c := &s.cores[core]
	n.mu.Lock()
	if len(n.spill) == 0 {
		pageAddr, ok := s.pages.Alloc(0, node)
		if !ok {
			n.mu.Unlock()
			return 0, false
		}
		n.pages = append(n.pages, pageAddr)
		for i := 0; i < s.objsPer; i++ {
			n.spill = append(n.spill, pageAddr+Addr(i*s.objSize))
		}
	}
	take := batchSize
	if take > len(n.spill) {
		take = len(n.spill)
	}
	c.free = append(c.free, n.spill[len(n.spill)-take:]...)
	n.spill = n.spill[:len(n.spill)-take]
	n.mu.Unlock()

	last := len(c.free) - 1
	a := c.free[last]
	c.free = c.free[:last]
	return a, true
}

// Free returns an object from the given core. The fast path is an
// unsynchronized push; overflow spills a batch back to the node.
func (s *SlabAllocator) Free(core int, a Addr) {
	c := &s.cores[core]
	c.free = append(c.free, a)
	if len(c.free) >= maxCoreFree {
		node := s.coreNode(core)
		n := &s.nodes[node]
		n.mu.Lock()
		n.spill = append(n.spill, c.free[len(c.free)-batchSize:]...)
		n.mu.Unlock()
		c.free = c.free[:len(c.free)-batchSize]
	}
}

// FreeObjects reports objects currently sitting free in core lists and
// node pools (for tests).
func (s *SlabAllocator) FreeObjects() int {
	total := 0
	for i := range s.cores {
		total += len(s.cores[i].free)
	}
	for i := range s.nodes {
		s.nodes[i].mu.Lock()
		total += len(s.nodes[i].spill)
		s.nodes[i].mu.Unlock()
	}
	return total
}
