package mem

import (
	"fmt"
	"sync"
)

// Virtual memory regions (paper §3.4): while most of the address space is
// identity-mapped physical memory, applications can allocate virtual
// regions and install their own page-fault handlers, enabling arbitrary
// paging policies (the node.js port uses this for V8's reservations; the
// paper suggests GC tricks via direct page-table access as future work).
//
// The simulated MMU is a per-region page table: Touch faults on unmapped
// pages and invokes the owner's handler, which must map the page (usually
// by taking one from the PageAllocator).

// FaultHandler resolves a fault at the given page-aligned offset within
// its region. It returns the physical page to map or an error to make the
// access fail.
type FaultHandler func(region *VirtualRegion, offset uint64) (Addr, error)

// VirtualRegion is a reserved span of virtual address space with an
// application-owned paging policy.
type VirtualRegion struct {
	vm      *VirtualMemory
	Base    uint64
	Size    uint64
	handler FaultHandler

	mu     sync.Mutex
	pages  map[uint64]Addr // page-aligned offset -> physical page
	Faults uint64
}

// VirtualMemory hands out non-overlapping regions, standing in for the
// vast non-identity-mapped portion of the address space.
type VirtualMemory struct {
	mu      sync.Mutex
	next    uint64
	regions []*VirtualRegion
}

// NewVirtualMemory creates an empty virtual address space manager. The
// virtual span begins high, above any identity-mapped physical address.
func NewVirtualMemory() *VirtualMemory {
	return &VirtualMemory{next: 1 << 40}
}

// Allocate reserves size bytes (rounded up to pages) with the given fault
// handler. A nil handler makes any access to an unmapped page an error.
func (vm *VirtualMemory) Allocate(size uint64, handler FaultHandler) *VirtualRegion {
	if size == 0 {
		panic("mem: zero-size virtual region")
	}
	size = (size + PageSize - 1) / PageSize * PageSize
	vm.mu.Lock()
	defer vm.mu.Unlock()
	r := &VirtualRegion{
		vm:      vm,
		Base:    vm.next,
		Size:    size,
		handler: handler,
		pages:   map[uint64]Addr{},
	}
	vm.next += size + PageSize // guard page between regions
	vm.regions = append(vm.regions, r)
	return r
}

// RegionFor resolves a virtual address to its region.
func (vm *VirtualMemory) RegionFor(va uint64) (*VirtualRegion, bool) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	for _, r := range vm.regions {
		if va >= r.Base && va < r.Base+r.Size {
			return r, true
		}
	}
	return nil, false
}

// Touch accesses the page containing offset, faulting it in through the
// owner's handler if unmapped. It returns the backing physical address of
// the exact byte.
func (r *VirtualRegion) Touch(offset uint64) (Addr, error) {
	if offset >= r.Size {
		return 0, fmt.Errorf("mem: access at %#x beyond region size %#x", offset, r.Size)
	}
	pageOff := offset / PageSize * PageSize
	r.mu.Lock()
	phys, ok := r.pages[pageOff]
	r.mu.Unlock()
	if !ok {
		if r.handler == nil {
			return 0, fmt.Errorf("mem: fault at %#x in region with no handler", offset)
		}
		r.mu.Lock()
		r.Faults++
		r.mu.Unlock()
		mapped, err := r.handler(r, pageOff)
		if err != nil {
			return 0, err
		}
		r.mu.Lock()
		// A concurrent fault may have won; keep the first mapping.
		if existing, raced := r.pages[pageOff]; raced {
			mapped = existing
		} else {
			r.pages[pageOff] = mapped
		}
		phys = mapped
		r.mu.Unlock()
	}
	return phys + Addr(offset-pageOff), nil
}

// Map installs a mapping explicitly (eager population, as EbbRT does for
// the regions V8 reserves - the reason Figure 7's EbbRT runs fault-free).
func (r *VirtualRegion) Map(offset uint64, phys Addr) error {
	if offset%PageSize != 0 {
		return fmt.Errorf("mem: unaligned map at %#x", offset)
	}
	if offset >= r.Size {
		return fmt.Errorf("mem: map at %#x beyond region size %#x", offset, r.Size)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pages[offset] = phys
	return nil
}

// Unmap removes a page mapping (e.g. a madvise-style release); the next
// access faults again.
func (r *VirtualRegion) Unmap(offset uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.pages, offset/PageSize*PageSize)
}

// Mapped reports how many pages are currently populated.
func (r *VirtualRegion) Mapped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pages)
}

// PopulateFromAllocator is the common fault handler: back every fault with
// a fresh page from the allocator on the given node.
func PopulateFromAllocator(pa *PageAllocator, node int) FaultHandler {
	return func(r *VirtualRegion, offset uint64) (Addr, error) {
		a, ok := pa.Alloc(0, node)
		if !ok {
			return 0, fmt.Errorf("mem: out of physical pages backing virtual region")
		}
		return a, nil
	}
}
