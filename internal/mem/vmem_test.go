package mem

import (
	"errors"
	"testing"
)

func TestVirtualRegionDemandPaging(t *testing.T) {
	pa := newTestPages()
	vm := NewVirtualMemory()
	r := vm.Allocate(10*PageSize, PopulateFromAllocator(pa, 0))
	if r.Mapped() != 0 {
		t.Fatal("pages mapped eagerly")
	}
	p1, err := r.Touch(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults != 1 || r.Mapped() != 1 {
		t.Fatalf("faults=%d mapped=%d", r.Faults, r.Mapped())
	}
	// Same page: no new fault, offset arithmetic consistent.
	p2, err := r.Touch(6)
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults != 1 {
		t.Fatal("second access faulted")
	}
	if p2 != p1+1 {
		t.Fatalf("offsets inconsistent: %#x vs %#x", p1, p2)
	}
	// Different page: new fault.
	if _, err := r.Touch(PageSize + 1); err != nil {
		t.Fatal(err)
	}
	if r.Faults != 2 || r.Mapped() != 2 {
		t.Fatalf("faults=%d mapped=%d", r.Faults, r.Mapped())
	}
}

func TestVirtualRegionCustomPolicy(t *testing.T) {
	vm := NewVirtualMemory()
	// A policy that refuses faults beyond the first two pages - an
	// application-enforced quota.
	pa := newTestPages()
	quota := 2
	r := vm.Allocate(16*PageSize, func(r *VirtualRegion, off uint64) (Addr, error) {
		if r.Mapped() >= quota {
			return 0, errors.New("quota exceeded")
		}
		a, _ := pa.Alloc(0, 0)
		return a, nil
	})
	if _, err := r.Touch(0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Touch(PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Touch(2 * PageSize); err == nil {
		t.Fatal("quota policy not enforced")
	}
}

func TestVirtualRegionEagerMapNoFaults(t *testing.T) {
	pa := newTestPages()
	vm := NewVirtualMemory()
	r := vm.Allocate(4*PageSize, PopulateFromAllocator(pa, 0))
	// Pre-map every page, as EbbRT does for V8's reservations.
	for off := uint64(0); off < r.Size; off += PageSize {
		a, _ := pa.Alloc(0, 0)
		if err := r.Map(off, a); err != nil {
			t.Fatal(err)
		}
	}
	for off := uint64(0); off < r.Size; off += 512 {
		if _, err := r.Touch(off); err != nil {
			t.Fatal(err)
		}
	}
	if r.Faults != 0 {
		t.Fatalf("eagerly mapped region faulted %d times", r.Faults)
	}
}

func TestVirtualRegionUnmapRefaults(t *testing.T) {
	pa := newTestPages()
	vm := NewVirtualMemory()
	r := vm.Allocate(PageSize, PopulateFromAllocator(pa, 0))
	if _, err := r.Touch(0); err != nil {
		t.Fatal(err)
	}
	r.Unmap(0)
	if _, err := r.Touch(0); err != nil {
		t.Fatal(err)
	}
	if r.Faults != 2 {
		t.Fatalf("faults = %d, want refault after unmap", r.Faults)
	}
}

func TestVirtualRegionBounds(t *testing.T) {
	vm := NewVirtualMemory()
	r := vm.Allocate(PageSize, nil)
	if _, err := r.Touch(PageSize); err == nil {
		t.Fatal("out-of-bounds access allowed")
	}
	if _, err := r.Touch(0); err == nil {
		t.Fatal("nil-handler fault should error")
	}
	if err := r.Map(123, 0); err == nil {
		t.Fatal("unaligned map allowed")
	}
}

func TestRegionForResolvesAndGuards(t *testing.T) {
	vm := NewVirtualMemory()
	a := vm.Allocate(2*PageSize, nil)
	b := vm.Allocate(PageSize, nil)
	if got, ok := vm.RegionFor(a.Base + PageSize); !ok || got != a {
		t.Fatal("RegionFor missed region a")
	}
	if got, ok := vm.RegionFor(b.Base); !ok || got != b {
		t.Fatal("RegionFor missed region b")
	}
	// The guard page between regions belongs to neither.
	if _, ok := vm.RegionFor(a.Base + a.Size); ok {
		t.Fatal("guard page resolved to a region")
	}
}
