package netstack

import (
	"fmt"

	"ebbrt/internal/event"
	"ebbrt/internal/future"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/machine"
)

// arpCache maps IPv4 addresses to Ethernet addresses and tracks in-flight
// resolutions. Within the native environment all mutation happens on
// kernel events, so no lock is needed - mirroring how the C++ system hides
// the representative coordination behind the Ebb interface.
type arpCache struct {
	entries map[Ipv4Addr]EthAddr
	pending map[Ipv4Addr][]future.Promise[EthAddr]
}

func newArpCache() *arpCache {
	return &arpCache{
		entries: map[Ipv4Addr]EthAddr{},
		pending: map[Ipv4Addr][]future.Promise[EthAddr]{},
	}
}

// arpFind resolves ip to a MAC address. Cached entries fulfill the future
// synchronously (the fast path the paper notes); otherwise an ARP request
// goes out and the future fulfills on reply or fails on timeout.
func (itf *Interface) arpFind(c *event.Ctx, ip Ipv4Addr) future.Future[EthAddr] {
	if mac, ok := itf.arp.entries[ip]; ok {
		return future.Ready(mac)
	}
	p := future.NewPromise[EthAddr]()
	first := len(itf.arp.pending[ip]) == 0
	itf.arp.pending[ip] = append(itf.arp.pending[ip], p)
	if first {
		itf.sendArp(c, arpOpRequest, machine.Broadcast, ip)
		mgr := c.Manager()
		mgr.After(itf.St.Cfg.ArpTimeout, func(*event.Ctx) {
			waiters := itf.arp.pending[ip]
			if len(waiters) == 0 {
				return // resolved in time
			}
			delete(itf.arp.pending, ip)
			for _, w := range waiters {
				w.SetError(fmt.Errorf("netstack: arp timeout resolving %v", ip))
			}
		})
	}
	return p.Future()
}

func (itf *Interface) sendArp(c *event.Ctx, op uint16, targetHW EthAddr, targetIP Ipv4Addr) {
	pkt := ArpPacket{
		Op:       op,
		SenderHW: itf.NIC.Mac,
		SenderIP: itf.Addr,
		TargetHW: targetHW,
		TargetIP: targetIP,
	}
	buf := iobuf.New(EthHeaderLen + ArpPacketLen)
	dst := targetHW
	if op == arpOpRequest {
		dst = machine.Broadcast
	}
	writeEth(buf.Append(EthHeaderLen), EthHeader{Dst: dst, Src: itf.NIC.Mac, Type: EtherTypeARP})
	writeArp(buf.Append(ArpPacketLen), pkt)
	itf.transmit(c, buf, 0)
}

func (itf *Interface) receiveArp(c *event.Ctx, buf *iobuf.IOBuf) {
	pkt, err := parseArp(buf.Data())
	if err != nil {
		return
	}
	// Opportunistically learn the sender mapping.
	if !pkt.SenderIP.IsZero() {
		itf.arp.entries[pkt.SenderIP] = pkt.SenderHW
		if waiters, ok := itf.arp.pending[pkt.SenderIP]; ok {
			delete(itf.arp.pending, pkt.SenderIP)
			for _, w := range waiters {
				w.SetValue(pkt.SenderHW)
			}
		}
	}
	if pkt.Op == arpOpRequest && pkt.TargetIP == itf.Addr {
		itf.sendArp(c, arpOpReply, pkt.SenderHW, pkt.SenderIP)
	}
}
