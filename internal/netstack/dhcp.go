package netstack

import (
	"encoding/binary"
	"fmt"

	"ebbrt/internal/event"
	"ebbrt/internal/future"
	"ebbrt/internal/iobuf"
)

// DHCP support (paper §3.6 lists DHCP among the stack's functionality):
// a client state machine (DISCOVER -> OFFER -> REQUEST -> ACK) and a small
// server used by tests and examples to stand in for the cloud provider's
// DHCP service.

const (
	dhcpServerPort uint16 = 67
	dhcpClientPort uint16 = 68

	dhcpOpRequest = 1
	dhcpOpReply   = 2

	dhcpMsgDiscover = 1
	dhcpMsgOffer    = 2
	dhcpMsgRequest  = 3
	dhcpMsgAck      = 5

	dhcpMagic uint32 = 0x63825363

	optMsgType     = 53
	optRequestedIP = 50
	optSubnetMask  = 1
	optEnd         = 255

	dhcpFixedLen = 240 // BOOTP fields + magic cookie
)

// dhcpPacket is the decoded subset of BOOTP/DHCP the stack uses.
type dhcpPacket struct {
	Op      byte
	Xid     uint32
	Yiaddr  Ipv4Addr
	Chaddr  EthAddr
	MsgType byte
	ReqIP   Ipv4Addr
	Mask    Ipv4Addr
}

func marshalDhcp(p dhcpPacket) []byte {
	b := make([]byte, dhcpFixedLen, dhcpFixedLen+16)
	b[0] = p.Op
	b[1] = 1 // htype ethernet
	b[2] = 6 // hlen
	binary.BigEndian.PutUint32(b[4:8], p.Xid)
	copy(b[16:20], p.Yiaddr[:])
	copy(b[28:34], p.Chaddr[:])
	binary.BigEndian.PutUint32(b[236:240], dhcpMagic)
	b = append(b, optMsgType, 1, p.MsgType)
	if !p.ReqIP.IsZero() {
		b = append(b, optRequestedIP, 4, p.ReqIP[0], p.ReqIP[1], p.ReqIP[2], p.ReqIP[3])
	}
	if !p.Mask.IsZero() {
		b = append(b, optSubnetMask, 4, p.Mask[0], p.Mask[1], p.Mask[2], p.Mask[3])
	}
	b = append(b, optEnd)
	return b
}

func parseDhcp(b []byte) (dhcpPacket, error) {
	if len(b) < dhcpFixedLen {
		return dhcpPacket{}, fmt.Errorf("netstack: short dhcp packet (%d)", len(b))
	}
	if binary.BigEndian.Uint32(b[236:240]) != dhcpMagic {
		return dhcpPacket{}, fmt.Errorf("netstack: bad dhcp magic")
	}
	var p dhcpPacket
	p.Op = b[0]
	p.Xid = binary.BigEndian.Uint32(b[4:8])
	copy(p.Yiaddr[:], b[16:20])
	copy(p.Chaddr[:], b[28:34])
	// Parse options.
	i := dhcpFixedLen
	for i < len(b) {
		code := b[i]
		if code == optEnd {
			break
		}
		if code == 0 {
			i++
			continue
		}
		if i+1 >= len(b) {
			break
		}
		l := int(b[i+1])
		if i+2+l > len(b) {
			break
		}
		val := b[i+2 : i+2+l]
		switch code {
		case optMsgType:
			if l >= 1 {
				p.MsgType = val[0]
			}
		case optRequestedIP:
			if l >= 4 {
				copy(p.ReqIP[:], val)
			}
		case optSubnetMask:
			if l >= 4 {
				copy(p.Mask[:], val)
			}
		}
		i += 2 + l
	}
	return p, nil
}

// DhcpLease is the result of a successful DHCP exchange.
type DhcpLease struct {
	Addr Ipv4Addr
	Mask Ipv4Addr
}

// DhcpClient runs the acquire state machine on an interface that does not
// yet have an address. It returns a future fulfilled with the lease.
// The interface's address/mask are installed before fulfillment.
func (itf *Interface) DhcpClient(c *event.Ctx) future.Future[DhcpLease] {
	p := future.NewPromise[DhcpLease]()
	xid := uint32(0x5eb0) + uint32(itf.NIC.Mac[5])
	state := &dhcpClient{itf: itf, xid: xid, promise: p}
	_, err := itf.BindUdp(dhcpClientPort, state.receive)
	if err != nil {
		return future.Fail[DhcpLease](err)
	}
	state.sendDiscover(c)
	c.Manager().After(itf.St.Cfg.ArpTimeout*10, func(*event.Ctx) {
		if !state.done {
			state.done = true
			itf.UnbindUdp(dhcpClientPort)
			p.SetError(fmt.Errorf("netstack: dhcp timed out"))
		}
	})
	return p.Future()
}

type dhcpClient struct {
	itf     *Interface
	xid     uint32
	offered Ipv4Addr
	mask    Ipv4Addr
	done    bool
	promise future.Promise[DhcpLease]
}

func (d *dhcpClient) send(c *event.Ctx, p dhcpPacket) {
	buf := iobuf.Wrap(marshalDhcp(p))
	_ = d.itf.SendUdp(c, dhcpClientPort, IP(255, 255, 255, 255), dhcpServerPort, buf)
}

func (d *dhcpClient) sendDiscover(c *event.Ctx) {
	d.send(c, dhcpPacket{Op: dhcpOpRequest, Xid: d.xid, Chaddr: d.itf.NIC.Mac, MsgType: dhcpMsgDiscover})
}

func (d *dhcpClient) receive(c *event.Ctx, src Ipv4Addr, srcPort uint16, payload *iobuf.IOBuf) {
	if d.done {
		return
	}
	pkt, err := parseDhcp(payload.CopyOut())
	if err != nil || pkt.Xid != d.xid || pkt.Op != dhcpOpReply {
		return
	}
	switch pkt.MsgType {
	case dhcpMsgOffer:
		d.offered = pkt.Yiaddr
		d.mask = pkt.Mask
		d.send(c, dhcpPacket{Op: dhcpOpRequest, Xid: d.xid, Chaddr: d.itf.NIC.Mac,
			MsgType: dhcpMsgRequest, ReqIP: pkt.Yiaddr})
	case dhcpMsgAck:
		d.done = true
		d.itf.UnbindUdp(dhcpClientPort)
		d.itf.Addr = pkt.Yiaddr
		if !pkt.Mask.IsZero() {
			d.itf.Mask = pkt.Mask
		} else if !d.mask.IsZero() {
			d.itf.Mask = d.mask
		}
		d.promise.SetValue(DhcpLease{Addr: d.itf.Addr, Mask: d.itf.Mask})
	}
}

// DhcpServer is a minimal lease server for tests and examples.
type DhcpServer struct {
	itf    *Interface
	next   byte
	base   Ipv4Addr
	mask   Ipv4Addr
	leases map[EthAddr]Ipv4Addr
}

// ServeDhcp starts a DHCP server on the interface handing out addresses
// base+1, base+2, ... with the given mask.
func (itf *Interface) ServeDhcp(base, mask Ipv4Addr) (*DhcpServer, error) {
	s := &DhcpServer{itf: itf, base: base, mask: mask, next: 1, leases: map[EthAddr]Ipv4Addr{}}
	if _, err := itf.BindUdp(dhcpServerPort, s.receive); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *DhcpServer) leaseFor(mac EthAddr) Ipv4Addr {
	if ip, ok := s.leases[mac]; ok {
		return ip
	}
	ip := s.base
	ip[3] += s.next
	s.next++
	s.leases[mac] = ip
	return ip
}

func (s *DhcpServer) receive(c *event.Ctx, src Ipv4Addr, srcPort uint16, payload *iobuf.IOBuf) {
	pkt, err := parseDhcp(payload.CopyOut())
	if err != nil || pkt.Op != dhcpOpRequest {
		return
	}
	reply := dhcpPacket{Op: dhcpOpReply, Xid: pkt.Xid, Chaddr: pkt.Chaddr, Mask: s.mask}
	switch pkt.MsgType {
	case dhcpMsgDiscover:
		reply.MsgType = dhcpMsgOffer
		reply.Yiaddr = s.leaseFor(pkt.Chaddr)
	case dhcpMsgRequest:
		reply.MsgType = dhcpMsgAck
		reply.Yiaddr = s.leaseFor(pkt.Chaddr)
	default:
		return
	}
	buf := iobuf.Wrap(marshalDhcp(reply))
	_ = s.itf.SendUdp(c, dhcpServerPort, IP(255, 255, 255, 255), dhcpClientPort, buf)
}
