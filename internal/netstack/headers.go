package netstack

import (
	"encoding/binary"
	"fmt"

	"ebbrt/internal/iobuf"
)

// Header sizes in bytes.
const (
	EthHeaderLen  = 14
	ArpPacketLen  = 28
	Ipv4HeaderLen = 20 // no options
	UdpHeaderLen  = 8
	TcpHeaderLen  = 20 // no options except in SYN (MSS), handled explicitly
)

// EthHeader is a parsed Ethernet header.
type EthHeader struct {
	Dst, Src EthAddr
	Type     uint16
}

func parseEth(b []byte) (EthHeader, error) {
	if len(b) < EthHeaderLen {
		return EthHeader{}, fmt.Errorf("netstack: short ethernet header (%d)", len(b))
	}
	var h EthHeader
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.Type = binary.BigEndian.Uint16(b[12:14])
	return h, nil
}

func writeEth(b []byte, h EthHeader) {
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	binary.BigEndian.PutUint16(b[12:14], h.Type)
}

// ARP opcodes.
const (
	arpOpRequest = 1
	arpOpReply   = 2
)

// ArpPacket is a parsed IPv4-over-Ethernet ARP packet.
type ArpPacket struct {
	Op                 uint16
	SenderHW, TargetHW EthAddr
	SenderIP, TargetIP Ipv4Addr
}

func parseArp(b []byte) (ArpPacket, error) {
	if len(b) < ArpPacketLen {
		return ArpPacket{}, fmt.Errorf("netstack: short arp packet (%d)", len(b))
	}
	var p ArpPacket
	p.Op = binary.BigEndian.Uint16(b[6:8])
	copy(p.SenderHW[:], b[8:14])
	copy(p.SenderIP[:], b[14:18])
	copy(p.TargetHW[:], b[18:24])
	copy(p.TargetIP[:], b[24:28])
	return p, nil
}

func writeArp(b []byte, p ArpPacket) {
	binary.BigEndian.PutUint16(b[0:2], 1)      // hardware: ethernet
	binary.BigEndian.PutUint16(b[2:4], 0x0800) // protocol: IPv4
	b[4], b[5] = 6, 4                          // address lengths
	binary.BigEndian.PutUint16(b[6:8], p.Op)
	copy(b[8:14], p.SenderHW[:])
	copy(b[14:18], p.SenderIP[:])
	copy(b[18:24], p.TargetHW[:])
	copy(b[24:28], p.TargetIP[:])
}

// Ipv4Header is a parsed IPv4 header (options unsupported).
type Ipv4Header struct {
	TotalLen uint16
	TTL      byte
	Proto    byte
	Src, Dst Ipv4Addr
}

func parseIpv4(b []byte) (Ipv4Header, error) {
	if len(b) < Ipv4HeaderLen {
		return Ipv4Header{}, fmt.Errorf("netstack: short ipv4 header (%d)", len(b))
	}
	if v := b[0] >> 4; v != 4 {
		return Ipv4Header{}, fmt.Errorf("netstack: ip version %d", v)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl != Ipv4HeaderLen {
		return Ipv4Header{}, fmt.Errorf("netstack: ip options unsupported (ihl %d)", ihl)
	}
	var h Ipv4Header
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.TTL = b[8]
	h.Proto = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	return h, nil
}

func writeIpv4(b []byte, h Ipv4Header) {
	b[0] = 0x45
	b[1] = 0
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], 0)      // id
	binary.BigEndian.PutUint16(b[6:8], 0x4000) // DF
	b[8] = h.TTL
	b[9] = h.Proto
	b[10], b[11] = 0, 0 // checksum placeholder
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	ck := Checksum(b[:Ipv4HeaderLen], 0)
	binary.BigEndian.PutUint16(b[10:12], ck)
}

// UdpHeader is a parsed UDP header.
type UdpHeader struct {
	SrcPort, DstPort uint16
	Length           uint16
}

func parseUdp(b []byte) (UdpHeader, error) {
	if len(b) < UdpHeaderLen {
		return UdpHeader{}, fmt.Errorf("netstack: short udp header (%d)", len(b))
	}
	return UdpHeader{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Length:  binary.BigEndian.Uint16(b[4:6]),
	}, nil
}

func writeUdp(b []byte, h UdpHeader) {
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint16(b[4:6], h.Length)
	binary.BigEndian.PutUint16(b[6:8], 0) // checksum offloaded to hardware model
}

// TCP flag bits.
const (
	tcpFIN = 1 << 0
	tcpSYN = 1 << 1
	tcpRST = 1 << 2
	tcpPSH = 1 << 3
	tcpACK = 1 << 4
)

// TcpHeader is a parsed TCP header.
type TcpHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOff          int // header length in bytes
	Flags            byte
	Window           uint16
}

func parseTcp(b []byte) (TcpHeader, error) {
	if len(b) < TcpHeaderLen {
		return TcpHeader{}, fmt.Errorf("netstack: short tcp header (%d)", len(b))
	}
	h := TcpHeader{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Seq:     binary.BigEndian.Uint32(b[4:8]),
		Ack:     binary.BigEndian.Uint32(b[8:12]),
		DataOff: int(b[12]>>4) * 4,
		Flags:   b[13],
		Window:  binary.BigEndian.Uint16(b[14:16]),
	}
	if h.DataOff < TcpHeaderLen || h.DataOff > len(b) {
		return TcpHeader{}, fmt.Errorf("netstack: bad tcp data offset %d", h.DataOff)
	}
	return h, nil
}

func writeTcp(b []byte, h TcpHeader) {
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint32(b[4:8], h.Seq)
	binary.BigEndian.PutUint32(b[8:12], h.Ack)
	b[12] = byte(h.DataOff/4) << 4
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:16], h.Window)
	binary.BigEndian.PutUint16(b[16:18], 0) // checksum offloaded
	binary.BigEndian.PutUint16(b[18:20], 0) // urgent
}

// payloadView strips n header bytes from the front of a chain head and
// returns the same chain, now viewing only payload.
func payloadView(buf *iobuf.IOBuf, n int) *iobuf.IOBuf {
	buf.Advance(n)
	return buf
}
