package netstack

import (
	"encoding/binary"

	"ebbrt/internal/event"
	"ebbrt/internal/future"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/sim"
)

// ICMP echo support: the stack answers pings (useful for bring-up
// debugging of native instances) and can originate them, returning the
// round-trip time as a future.

const (
	icmpEchoReply   = 0
	icmpEchoRequest = 8
	icmpHeaderLen   = 8
)

// pingState tracks an outstanding echo request.
type pingState struct {
	sentAt  sim.Time
	promise future.Promise[sim.Time]
}

// receiveIcmp handles an inbound ICMP packet (buf views the ICMP header).
func (itf *Interface) receiveIcmp(c *event.Ctx, hdr Ipv4Header, buf *iobuf.IOBuf) {
	data := buf.CopyOut()
	if len(data) < icmpHeaderLen {
		return
	}
	switch data[0] {
	case icmpEchoRequest:
		// Echo back: same identifier/sequence/payload, type 0.
		reply := append([]byte(nil), data...)
		reply[0] = icmpEchoReply
		reply[2], reply[3] = 0, 0
		ck := Checksum(reply, 0)
		binary.BigEndian.PutUint16(reply[2:4], ck)
		itf.sendIcmp(c, hdr.Src, reply)
	case icmpEchoReply:
		if len(data) < icmpHeaderLen {
			return
		}
		id := binary.BigEndian.Uint16(data[4:6])
		seq := binary.BigEndian.Uint16(data[6:8])
		key := uint32(id)<<16 | uint32(seq)
		if st, ok := itf.pings[key]; ok {
			delete(itf.pings, key)
			st.promise.SetValue(c.Now() - st.sentAt)
		}
	}
}

func (itf *Interface) sendIcmp(c *event.Ctx, dst Ipv4Addr, icmp []byte) {
	total := Ipv4HeaderLen + len(icmp)
	buf := iobuf.New(total)
	writeIpv4(buf.Append(Ipv4HeaderLen), Ipv4Header{
		TotalLen: uint16(total), TTL: 64, Proto: ProtoICMP,
		Src: itf.Addr, Dst: dst,
	})
	copy(buf.Append(len(icmp)), icmp)
	_ = itf.EthArpSend(c, EtherTypeIPv4, dst, buf, FlowHash(itf.Addr, 0, dst, 0))
}

// Ping sends an ICMP echo request with the given sequence number and
// returns a future fulfilled with the round-trip time.
func (itf *Interface) Ping(c *event.Ctx, dst Ipv4Addr, seq uint16) future.Future[sim.Time] {
	if itf.pings == nil {
		itf.pings = map[uint32]*pingState{}
	}
	const id = 0xeb
	key := uint32(id)<<16 | uint32(seq)
	st := &pingState{sentAt: c.Now(), promise: future.NewPromise[sim.Time]()}
	itf.pings[key] = st

	pkt := make([]byte, icmpHeaderLen+48)
	pkt[0] = icmpEchoRequest
	binary.BigEndian.PutUint16(pkt[4:6], id)
	binary.BigEndian.PutUint16(pkt[6:8], seq)
	for i := icmpHeaderLen; i < len(pkt); i++ {
		pkt[i] = byte(i)
	}
	ck := Checksum(pkt, 0)
	binary.BigEndian.PutUint16(pkt[2:4], ck)
	itf.sendIcmp(c, dst, pkt)

	c.Manager().After(itf.St.Cfg.ArpTimeout*10, func(*event.Ctx) {
		if cur, ok := itf.pings[key]; ok && cur == st {
			delete(itf.pings, key)
			st.promise.SetError(errPingTimeout)
		}
	})
	return st.promise.Future()
}

var errPingTimeout = errTimeout("netstack: ping timed out")

type errTimeout string

func (e errTimeout) Error() string { return string(e) }
