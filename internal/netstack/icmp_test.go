package netstack

import (
	"testing"

	"ebbrt/internal/event"
	"ebbrt/internal/future"
	"ebbrt/internal/sim"
)

func TestPingRoundTrip(t *testing.T) {
	n := newTestNet(t, 1, 1)
	var rtt sim.Time
	got := false
	n.spawnA(func(c *event.Ctx) {
		n.itfA.Ping(c, IP(10, 0, 0, 2), 1).OnDone(func(r future.Result[sim.Time]) {
			v, err := r.Get()
			if err != nil {
				t.Errorf("ping: %v", err)
				return
			}
			rtt = v
			got = true
		})
	})
	n.k.RunUntil(100 * sim.Millisecond)
	if !got {
		t.Fatal("no echo reply")
	}
	if rtt <= 0 || rtt > 100*sim.Microsecond {
		t.Fatalf("implausible rtt %v", rtt)
	}
}

func TestPingSequencesIndependent(t *testing.T) {
	n := newTestNet(t, 1, 1)
	replies := 0
	n.spawnA(func(c *event.Ctx) {
		for seq := uint16(1); seq <= 5; seq++ {
			n.itfA.Ping(c, IP(10, 0, 0, 2), seq).OnDone(func(r future.Result[sim.Time]) {
				if _, err := r.Get(); err == nil {
					replies++
				}
			})
		}
	})
	n.k.RunUntil(100 * sim.Millisecond)
	if replies != 5 {
		t.Fatalf("got %d of 5 replies", replies)
	}
}

func TestPingUnreachableTimesOut(t *testing.T) {
	n := newTestNet(t, 1, 1)
	var err error
	done := false
	n.spawnA(func(c *event.Ctx) {
		n.itfA.Ping(c, IP(10, 0, 0, 77), 1).OnDone(func(r future.Result[sim.Time]) {
			_, err = r.Get()
			done = true
		})
	})
	n.k.RunUntil(5 * sim.Second)
	if !done || err == nil {
		t.Fatalf("unreachable ping: done=%v err=%v", done, err)
	}
}
