package netstack

import (
	"fmt"

	"ebbrt/internal/event"
	"ebbrt/internal/future"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/machine"
	"ebbrt/internal/sim"
)

// Interface is one attached NIC with its address configuration and
// protocol state.
type Interface struct {
	St   *Stack
	NIC  *machine.NIC
	Addr Ipv4Addr
	Mask Ipv4Addr

	arp     *arpCache
	udp     *udpLayer
	tcp     *tcpLayer
	pings   map[uint32]*pingState
	drivers []*queueDriver

	// RxPackets counts frames delivered to the stack (all queues).
	RxPackets uint64
	// PollModeSwitches counts interrupt->polling transitions, to observe
	// the adaptive driver.
	PollModeSwitches uint64
}

// queueDriver is the per-receive-queue driver: interrupt-driven by
// default, switching to polling under load (paper §3.2's example).
type queueDriver struct {
	itf        *Interface
	q          *machine.RxQueue
	mgr        *event.Manager
	idle       *event.IdleHandler
	emptyPolls int
}

// onIRQ processes every frame available, then decides whether to switch to
// polling.
func (d *queueDriver) onIRQ(c *event.Ctx) {
	n := d.drain(c)
	cfg := &d.itf.St.Cfg
	if cfg.AdaptivePolling && n >= cfg.PollBatchThreshold && d.idle == nil {
		// High interrupt rate: mask the queue and poll from the idle loop.
		d.q.DisableIRQ()
		d.emptyPolls = 0
		d.idle = d.mgr.AddIdleHandler(d.poll)
		d.itf.PollModeSwitches++
	}
}

// poll is the idle-handler body while in polling mode.
func (d *queueDriver) poll(c *event.Ctx) {
	n := d.drain(c)
	if n == 0 {
		d.emptyPolls++
		if d.emptyPolls >= d.itf.St.Cfg.PollIdleRounds {
			// Arrival rate dropped: return to interrupt-driven execution.
			d.mgr.RemoveIdleHandler(d.idle)
			d.idle = nil
			d.q.EnableIRQ()
		}
		return
	}
	d.emptyPolls = 0
}

// drain processes all currently queued frames to completion, then flushes
// the ACKs coalesced across the batch.
func (d *queueDriver) drain(c *event.Ctx) int {
	n := 0
	for {
		f, ok := d.q.Pop()
		if !ok {
			break
		}
		n++
		d.itf.RxPackets++
		d.itf.receive(c, f.Buf)
	}
	if n > 0 {
		d.itf.tcp.flushAcks(c)
	}
	return n
}

// receive demultiplexes one frame, synchronously, on the queue's core.
func (itf *Interface) receive(c *event.Ctx, buf *iobuf.IOBuf) {
	c.Charge(itf.St.Cfg.PerPacketCPU)
	if f := itf.St.Cfg.ForceCopyPerByte; f > 0 {
		c.Charge(sim.Time(f * float64(buf.ComputeChainDataLength())))
	}
	data := buf.Data()
	eth, err := parseEth(data)
	if err != nil {
		return // malformed: drop
	}
	if eth.Dst != itf.NIC.Mac && !eth.Dst.IsBroadcast() {
		return // not for us
	}
	payloadView(buf, EthHeaderLen)
	switch eth.Type {
	case EtherTypeARP:
		itf.receiveArp(c, buf)
	case EtherTypeIPv4:
		itf.receiveIpv4(c, buf)
	}
}

func (itf *Interface) receiveIpv4(c *event.Ctx, buf *iobuf.IOBuf) {
	hdr, err := parseIpv4(buf.Data())
	if err != nil {
		return
	}
	if hdr.Dst != itf.Addr && !hdr.Dst.IsBroadcast() {
		return
	}
	// Trim link-layer padding: the IP total length is authoritative.
	if total := int(hdr.TotalLen); total < buf.ComputeChainDataLength() {
		excess := buf.ComputeChainDataLength() - total
		trimChainEnd(buf, excess)
	}
	payloadView(buf, Ipv4HeaderLen)
	switch hdr.Proto {
	case ProtoUDP:
		itf.udp.receive(c, hdr, buf)
	case ProtoTCP:
		itf.tcp.receive(c, hdr, buf)
	case ProtoICMP:
		itf.receiveIcmp(c, hdr, buf)
	}
}

// trimChainEnd removes n bytes from the tail of a chain.
func trimChainEnd(buf *iobuf.IOBuf, n int) {
	for n > 0 {
		tail := buf.Prev()
		if tail.Length() >= n {
			tail.TrimEnd(n)
			return
		}
		n -= tail.Length()
		tail.TrimEnd(tail.Length())
	}
}

// Route implements the paper's simple routing: on-subnet addresses are
// delivered directly; the stack targets isolated cloud networks and has no
// gateway. Broadcasts route to the Ethernet broadcast address.
func (itf *Interface) Route(dst Ipv4Addr) (Ipv4Addr, error) {
	if dst.IsBroadcast() || SameSubnet(dst, itf.Addr, itf.Mask) {
		return dst, nil
	}
	return Ipv4Addr{}, fmt.Errorf("netstack: no route to %v (off subnet, no gateway)", dst)
}

// EthArpSend routes an IP packet, resolves the next-hop MAC (possibly
// asynchronously via ARP), prepends the Ethernet header, and transmits.
// This is the code path of the paper's Figure 2, expressed with the same
// monadic-future structure.
func (itf *Interface) EthArpSend(c *event.Ctx, proto uint16, dst Ipv4Addr, buf *iobuf.IOBuf, flowHash uint32) future.Future[future.Unit] {
	localDst, err := itf.Route(dst)
	if err != nil {
		return future.Fail[future.Unit](err)
	}
	var fmac future.Future[EthAddr]
	if localDst.IsBroadcast() {
		fmac = future.Ready(machine.Broadcast)
	} else {
		fmac = itf.arpFind(c, localDst)
	}
	return future.ThenOK(fmac, func(mac EthAddr) (future.Unit, error) {
		hdrBuf := iobuf.New(EthHeaderLen)
		writeEth(hdrBuf.Append(EthHeaderLen), EthHeader{Dst: mac, Src: itf.NIC.Mac, Type: proto})
		hdrBuf.AppendChain(buf)
		itf.transmit(c, hdrBuf, flowHash)
		return future.Unit{}, nil
	})
}

// transmit charges the device-path CPU cost and hands the frame chain to
// the NIC. The frame leaves after the event's accumulated charge, keeping
// virtual-time causality.
func (itf *Interface) transmit(c *event.Ctx, frame *iobuf.IOBuf, flowHash uint32) {
	c.Charge(itf.NIC.TxCPUCost())
	if f := itf.St.Cfg.ForceCopyPerByte; f > 0 {
		c.Charge(sim.Time(f * float64(frame.ComputeChainDataLength())))
	}
	itf.NIC.Transmit(machine.Frame{Buf: frame, Hash: flowHash}, c.Charged())
}
