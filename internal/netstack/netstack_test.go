package netstack

import (
	"bytes"
	"testing"

	"ebbrt/internal/event"
	"ebbrt/internal/future"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/machine"
	"ebbrt/internal/sim"
)

// Shorthands for future results used by callbacks in this file.
type futureResult = future.Result[EthAddr]
type dhcpResult = future.Result[DhcpLease]

// testNet wires two single- or multi-core machines with stacks over a link.
type testNet struct {
	k          *sim.Kernel
	a, b       *Stack
	itfA, itfB *Interface
	link       *machine.Link
}

func newTestNet(t *testing.T, coresA, coresB int) *testNet {
	t.Helper()
	k := sim.NewKernel()
	ma := machine.New(k, machine.DefaultConfig("a", coresA))
	mb := machine.New(k, machine.DefaultConfig("b", coresB))
	na := machine.NewNIC(ma, machine.MAC{0, 0, 0, 0, 0, 1})
	nb := machine.NewNIC(mb, machine.MAC{0, 0, 0, 0, 0, 2})
	link := machine.NewLink(k, na, nb)
	var mgrsA, mgrsB []*event.Manager
	for _, c := range ma.Cores {
		mgrsA = append(mgrsA, event.NewManager(c, event.DefaultCosts()))
	}
	for _, c := range mb.Cores {
		mgrsB = append(mgrsB, event.NewManager(c, event.DefaultCosts()))
	}
	sa := NewStack(ma, mgrsA, DefaultConfig())
	sb := NewStack(mb, mgrsB, DefaultConfig())
	itfA := sa.AddInterface(na, IP(10, 0, 0, 1), IP(255, 255, 255, 0))
	itfB := sb.AddInterface(nb, IP(10, 0, 0, 2), IP(255, 255, 255, 0))
	return &testNet{k: k, a: sa, b: sb, itfA: itfA, itfB: itfB, link: link}
}

func (n *testNet) spawnA(fn event.Handler) { n.a.Mgrs[0].Spawn(fn) }
func (n *testNet) spawnB(fn event.Handler) { n.b.Mgrs[0].Spawn(fn) }

func TestArpResolution(t *testing.T) {
	n := newTestNet(t, 1, 1)
	var mac EthAddr
	resolved := false
	n.spawnA(func(c *event.Ctx) {
		n.itfA.arpFind(c, IP(10, 0, 0, 2)).OnDone(func(r futureResult) {
			m, err := r.Get()
			if err != nil {
				t.Errorf("arp: %v", err)
				return
			}
			mac = m
			resolved = true
		})
	})
	n.k.RunUntil(10 * sim.Millisecond)
	if !resolved {
		t.Fatal("arp did not resolve")
	}
	if mac != (EthAddr{0, 0, 0, 0, 0, 2}) {
		t.Fatalf("resolved %v", mac)
	}
	// Second resolution must be synchronous (cached).
	sync := false
	n.spawnA(func(c *event.Ctx) {
		f := n.itfA.arpFind(c, IP(10, 0, 0, 2))
		if _, ok := f.Poll(); ok {
			sync = true
		}
	})
	n.k.RunUntil(20 * sim.Millisecond)
	if !sync {
		t.Fatal("cached arp lookup was not synchronous")
	}
}

func TestArpTimeout(t *testing.T) {
	n := newTestNet(t, 1, 1)
	var gotErr error
	n.spawnA(func(c *event.Ctx) {
		n.itfA.arpFind(c, IP(10, 0, 0, 99)).OnDone(func(r futureResult) {
			_, gotErr = r.Get()
		})
	})
	n.k.RunUntil(2 * sim.Second)
	if gotErr == nil {
		t.Fatal("arp to absent host did not time out")
	}
}

func TestUdpEcho(t *testing.T) {
	n := newTestNet(t, 1, 1)
	const port = 7777
	var echoed []byte
	n.spawnB(func(c *event.Ctx) {
		_, err := n.itfB.BindUdp(port, func(c *event.Ctx, src Ipv4Addr, srcPort uint16, payload *iobuf.IOBuf) {
			// Echo back.
			_ = n.itfB.SendUdp(c, port, src, srcPort, iobuf.FromBytes(payload.CopyOut()))
		})
		if err != nil {
			t.Error(err)
		}
	})
	n.spawnA(func(c *event.Ctx) {
		lp, err := n.itfA.BindUdp(0, func(c *event.Ctx, src Ipv4Addr, srcPort uint16, payload *iobuf.IOBuf) {
			echoed = payload.CopyOut()
		})
		if err != nil {
			t.Error(err)
			return
		}
		_ = n.itfA.SendUdp(c, lp, IP(10, 0, 0, 2), port, iobuf.FromBytes([]byte("ping pong")))
	})
	n.k.RunUntil(10 * sim.Millisecond)
	if string(echoed) != "ping pong" {
		t.Fatalf("echoed %q", echoed)
	}
}

func TestUdpPortInUse(t *testing.T) {
	n := newTestNet(t, 1, 1)
	var err1, err2 error
	n.spawnA(func(c *event.Ctx) {
		_, err1 = n.itfA.BindUdp(53, func(*event.Ctx, Ipv4Addr, uint16, *iobuf.IOBuf) {})
		_, err2 = n.itfA.BindUdp(53, func(*event.Ctx, Ipv4Addr, uint16, *iobuf.IOBuf) {})
	})
	n.k.Run()
	if err1 != nil || err2 == nil {
		t.Fatalf("err1=%v err2=%v", err1, err2)
	}
}

// tcpEchoServer installs an echo listener on itf.
func tcpEchoServer(t *testing.T, itf *Interface, port uint16) {
	itf.St.Mgrs[0].Spawn(func(c *event.Ctx) {
		_, err := itf.ListenTcp(port, func(c *event.Ctx, pcb *TcpPcb) ConnHandler {
			return ConnHandler{
				OnReceive: func(c *event.Ctx, pcb *TcpPcb, payload *iobuf.IOBuf) {
					if err := pcb.Send(c, iobuf.FromBytes(payload.CopyOut())); err != nil {
						t.Errorf("echo send: %v", err)
					}
				},
			}
		})
		if err != nil {
			t.Error(err)
		}
	})
}

func TestTcpConnectSendReceive(t *testing.T) {
	n := newTestNet(t, 1, 1)
	tcpEchoServer(t, n.itfB, 80)
	var got []byte
	connected := false
	n.spawnA(func(c *event.Ctx) {
		_, err := n.itfA.ConnectTcp(c, IP(10, 0, 0, 2), 80, ConnHandler{
			OnConnected: func(c *event.Ctx, pcb *TcpPcb) {
				connected = true
				if err := pcb.Send(c, iobuf.FromBytes([]byte("hello ebbrt"))); err != nil {
					t.Errorf("send: %v", err)
				}
			},
			OnReceive: func(c *event.Ctx, pcb *TcpPcb, payload *iobuf.IOBuf) {
				got = append(got, payload.CopyOut()...)
			},
		})
		if err != nil {
			t.Error(err)
		}
	})
	n.k.RunUntil(50 * sim.Millisecond)
	if !connected {
		t.Fatal("handshake did not complete")
	}
	if string(got) != "hello ebbrt" {
		t.Fatalf("echoed %q", got)
	}
}

func TestTcpLargeTransferSegmented(t *testing.T) {
	n := newTestNet(t, 1, 1)
	const size = 50000 // > 34 segments, > initial window requires window mgmt
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var rx []byte
	done := false
	n.spawnB(func(c *event.Ctx) {
		_, err := n.itfB.ListenTcp(80, func(c *event.Ctx, pcb *TcpPcb) ConnHandler {
			return ConnHandler{
				OnReceive: func(c *event.Ctx, pcb *TcpPcb, p *iobuf.IOBuf) {
					rx = append(rx, p.CopyOut()...)
					if len(rx) == size {
						done = true
					}
				},
			}
		})
		if err != nil {
			t.Error(err)
		}
	})
	n.spawnA(func(c *event.Ctx) {
		var sent int
		var pump func(c *event.Ctx, pcb *TcpPcb)
		pump = func(c *event.Ctx, pcb *TcpPcb) {
			for sent < size {
				chunk := size - sent
				if w := pcb.SendWindowRemaining(); chunk > w {
					chunk = w
				}
				if chunk == 0 {
					return // OnAcked will resume
				}
				if err := pcb.Send(c, iobuf.FromBytes(payload[sent:sent+chunk])); err != nil {
					t.Errorf("send: %v", err)
					return
				}
				sent += chunk
			}
		}
		_, err := n.itfA.ConnectTcp(c, IP(10, 0, 0, 2), 80, ConnHandler{
			OnConnected: pump,
			OnAcked:     func(c *event.Ctx, pcb *TcpPcb, nAck int) { pump(c, pcb) },
		})
		if err != nil {
			t.Error(err)
		}
	})
	n.k.RunUntil(1 * sim.Second)
	if !done {
		t.Fatalf("received %d of %d bytes", len(rx), size)
	}
	if !bytes.Equal(rx, payload) {
		t.Fatal("payload corrupted in transfer")
	}
}

func TestTcpSendExceedingWindowFails(t *testing.T) {
	n := newTestNet(t, 1, 1)
	tcpEchoServer(t, n.itfB, 80)
	var sendErr error
	ran := false
	n.spawnA(func(c *event.Ctx) {
		_, _ = n.itfA.ConnectTcp(c, IP(10, 0, 0, 2), 80, ConnHandler{
			OnConnected: func(c *event.Ctx, pcb *TcpPcb) {
				ran = true
				big := make([]byte, 200000) // far beyond a 64k window
				sendErr = pcb.Send(c, iobuf.FromBytes(big))
			},
		})
	})
	n.k.RunUntil(50 * sim.Millisecond)
	if !ran {
		t.Fatal("never connected")
	}
	if sendErr == nil {
		t.Fatal("oversized send should fail: the application owns buffering")
	}
}

func TestTcpOrderlyClose(t *testing.T) {
	n := newTestNet(t, 1, 1)
	serverClosed := false
	clientClosed := false
	n.spawnB(func(c *event.Ctx) {
		_, _ = n.itfB.ListenTcp(80, func(c *event.Ctx, pcb *TcpPcb) ConnHandler {
			return ConnHandler{
				OnReceive: func(c *event.Ctx, pcb *TcpPcb, p *iobuf.IOBuf) {
					// Server closes its side in response (CloseWait path).
					pcb.Close(c)
				},
				OnClosed: func(c *event.Ctx, pcb *TcpPcb, err error) {
					if err != nil {
						t.Errorf("server close err: %v", err)
					}
					serverClosed = true
				},
			}
		})
	})
	n.spawnA(func(c *event.Ctx) {
		_, _ = n.itfA.ConnectTcp(c, IP(10, 0, 0, 2), 80, ConnHandler{
			OnConnected: func(c *event.Ctx, pcb *TcpPcb) {
				_ = pcb.Send(c, iobuf.FromBytes([]byte("bye")))
				pcb.Close(c)
			},
			OnClosed: func(c *event.Ctx, pcb *TcpPcb, err error) {
				if err != nil {
					t.Errorf("client close err: %v", err)
				}
				clientClosed = true
			},
		})
	})
	n.k.RunUntil(1 * sim.Second)
	if !serverClosed || !clientClosed {
		t.Fatalf("serverClosed=%v clientClosed=%v", serverClosed, clientClosed)
	}
}

func TestTcpConnectRefusedRST(t *testing.T) {
	n := newTestNet(t, 1, 1)
	var closedErr error
	gotClose := false
	n.spawnA(func(c *event.Ctx) {
		_, _ = n.itfA.ConnectTcp(c, IP(10, 0, 0, 2), 9999, ConnHandler{
			OnConnected: func(c *event.Ctx, pcb *TcpPcb) {
				t.Error("connected to a port with no listener")
			},
			OnClosed: func(c *event.Ctx, pcb *TcpPcb, err error) {
				gotClose = true
				closedErr = err
			},
		})
	})
	n.k.RunUntil(100 * sim.Millisecond)
	if !gotClose || closedErr == nil {
		t.Fatalf("expected reset: gotClose=%v err=%v", gotClose, closedErr)
	}
}

func TestTcpRetransmissionOnLoss(t *testing.T) {
	n := newTestNet(t, 1, 1)
	// Drop the 8th frame on the wire (a data segment mid-transfer).
	n.link.DropFn = func(idx uint64, f machine.Frame) bool { return idx == 8 }
	const size = 20000
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	var rx []byte
	n.spawnB(func(c *event.Ctx) {
		_, _ = n.itfB.ListenTcp(80, func(c *event.Ctx, pcb *TcpPcb) ConnHandler {
			return ConnHandler{
				OnReceive: func(c *event.Ctx, pcb *TcpPcb, p *iobuf.IOBuf) {
					rx = append(rx, p.CopyOut()...)
				},
			}
		})
	})
	var clientPcb *TcpPcb
	n.spawnA(func(c *event.Ctx) {
		var sent int
		var pump func(c *event.Ctx, pcb *TcpPcb)
		pump = func(c *event.Ctx, pcb *TcpPcb) {
			for sent < size {
				chunk := size - sent
				if w := pcb.SendWindowRemaining(); chunk > w {
					chunk = w
				}
				if chunk == 0 {
					return
				}
				_ = pcb.Send(c, iobuf.FromBytes(payload[sent:sent+chunk]))
				sent += chunk
			}
		}
		clientPcb, _ = n.itfA.ConnectTcp(c, IP(10, 0, 0, 2), 80, ConnHandler{
			OnConnected: pump,
			OnAcked:     func(c *event.Ctx, pcb *TcpPcb, nAck int) { pump(c, pcb) },
		})
	})
	n.k.RunUntil(5 * sim.Second)
	if !bytes.Equal(rx, payload) {
		t.Fatalf("transfer with loss corrupted: got %d bytes want %d", len(rx), size)
	}
	if clientPcb.Retransmits == 0 {
		t.Fatal("no retransmission recorded despite drop")
	}
}

func TestDhcpAcquire(t *testing.T) {
	n := newTestNet(t, 1, 1)
	// Reconfigure A to be unnumbered; B serves DHCP.
	n.itfA.Addr = Ipv4Addr{}
	var lease DhcpLease
	gotLease := false
	n.spawnB(func(c *event.Ctx) {
		if _, err := n.itfB.ServeDhcp(IP(10, 0, 0, 100), IP(255, 255, 255, 0)); err != nil {
			t.Error(err)
		}
	})
	n.spawnA(func(c *event.Ctx) {
		n.itfA.DhcpClient(c).OnDone(func(r dhcpResult) {
			l, err := r.Get()
			if err != nil {
				t.Errorf("dhcp: %v", err)
				return
			}
			lease = l
			gotLease = true
		})
	})
	n.k.RunUntil(1 * sim.Second)
	if !gotLease {
		t.Fatal("no lease acquired")
	}
	if lease.Addr != IP(10, 0, 0, 101) {
		t.Fatalf("lease addr %v", lease.Addr)
	}
	if n.itfA.Addr != lease.Addr {
		t.Fatal("interface address not installed")
	}
}

// rawUdpFrame builds a complete Ethernet+IPv4+UDP frame for injection.
func rawUdpFrame(srcMac, dstMac EthAddr, src, dst Ipv4Addr, srcPort, dstPort uint16, payload []byte) *iobuf.IOBuf {
	total := EthHeaderLen + Ipv4HeaderLen + UdpHeaderLen + len(payload)
	buf := iobuf.New(total)
	writeEth(buf.Append(EthHeaderLen), EthHeader{Dst: dstMac, Src: srcMac, Type: EtherTypeIPv4})
	writeIpv4(buf.Append(Ipv4HeaderLen), Ipv4Header{
		TotalLen: uint16(Ipv4HeaderLen + UdpHeaderLen + len(payload)),
		TTL:      64, Proto: ProtoUDP, Src: src, Dst: dst,
	})
	writeUdp(buf.Append(UdpHeaderLen), UdpHeader{SrcPort: srcPort, DstPort: dstPort, Length: uint16(UdpHeaderLen + len(payload))})
	copy(buf.Append(len(payload)), payload)
	return buf
}

func TestAdaptivePollingEngages(t *testing.T) {
	n := newTestNet(t, 1, 1)
	received := 0
	n.spawnB(func(c *event.Ctx) {
		_, _ = n.itfB.BindUdp(9, func(*event.Ctx, Ipv4Addr, uint16, *iobuf.IOBuf) { received++ })
	})
	// Inject frames directly into B's NIC faster than the per-packet
	// service time, so the drain batch exceeds the polling threshold.
	port := machine.PortOf(n.itfB.NIC)
	const frames = 200
	for i := 0; i < frames; i++ {
		f := machine.Frame{
			Buf: rawUdpFrame(EthAddr{0, 0, 0, 0, 0, 1}, EthAddr{0, 0, 0, 0, 0, 2},
				IP(10, 0, 0, 1), IP(10, 0, 0, 2), 5000, 9, make([]byte, 32)),
		}
		n.k.At(sim.Time(1000+i*100), func() { port.Send(f) })
	}
	n.k.RunUntil(100 * sim.Millisecond)
	if received != frames {
		t.Fatalf("received %d of %d", received, frames)
	}
	if n.itfB.PollModeSwitches == 0 {
		t.Fatal("driver never engaged polling under burst load")
	}
	// After the burst the driver must return to interrupts (no idle
	// handlers left installed).
	if n.b.Mgrs[0].IdleHandlerCount() != 0 {
		t.Fatal("driver stuck in polling mode")
	}
}

func TestPollingDisabledAblation(t *testing.T) {
	k := sim.NewKernel()
	ma := machine.New(k, machine.DefaultConfig("a", 1))
	mb := machine.New(k, machine.DefaultConfig("b", 1))
	na := machine.NewNIC(ma, machine.MAC{0, 0, 0, 0, 0, 1})
	nb := machine.NewNIC(mb, machine.MAC{0, 0, 0, 0, 0, 2})
	machine.NewLink(k, na, nb)
	mgrA := event.NewManager(ma.Cores[0], event.DefaultCosts())
	mgrB := event.NewManager(mb.Cores[0], event.DefaultCosts())
	cfg := DefaultConfig()
	cfg.AdaptivePolling = false
	sa := NewStack(ma, []*event.Manager{mgrA}, cfg)
	sb := NewStack(mb, []*event.Manager{mgrB}, cfg)
	itfA := sa.AddInterface(na, IP(10, 0, 0, 1), IP(255, 255, 255, 0))
	itfB := sb.AddInterface(nb, IP(10, 0, 0, 2), IP(255, 255, 255, 0))
	got := 0
	sb.Mgrs[0].Spawn(func(c *event.Ctx) {
		_, _ = itfB.BindUdp(9, func(*event.Ctx, Ipv4Addr, uint16, *iobuf.IOBuf) { got++ })
	})
	sa.Mgrs[0].Spawn(func(c *event.Ctx) {
		for i := 0; i < 100; i++ {
			_ = itfA.SendUdp(c, 5000, IP(10, 0, 0, 2), 9, iobuf.FromBytes(make([]byte, 32)))
		}
	})
	k.RunUntil(100 * sim.Millisecond)
	if got != 100 {
		t.Fatalf("received %d of 100", got)
	}
	if itfB.PollModeSwitches != 0 {
		t.Fatal("polling engaged despite ablation")
	}
}

func TestChecksum(t *testing.T) {
	// RFC 1071 example.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data, 0); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#x", got)
	}
}

func TestFlowHashSymmetric(t *testing.T) {
	h1 := FlowHash(IP(10, 0, 0, 1), 1234, IP(10, 0, 0, 2), 80)
	h2 := FlowHash(IP(10, 0, 0, 2), 80, IP(10, 0, 0, 1), 1234)
	if h1 != h2 {
		t.Fatal("flow hash not symmetric")
	}
	h3 := FlowHash(IP(10, 0, 0, 1), 1235, IP(10, 0, 0, 2), 80)
	if h1 == h3 {
		t.Fatal("distinct flows collide trivially")
	}
}

func TestSameSubnet(t *testing.T) {
	mask := IP(255, 255, 255, 0)
	if !SameSubnet(IP(10, 0, 0, 1), IP(10, 0, 0, 200), mask) {
		t.Fatal("same subnet not detected")
	}
	if SameSubnet(IP(10, 0, 0, 1), IP(10, 0, 1, 1), mask) {
		t.Fatal("different subnet not detected")
	}
}
