package netstack

import (
	"ebbrt/internal/audit"
	"ebbrt/internal/event"
	"ebbrt/internal/machine"
	"ebbrt/internal/sim"
)

// Config carries the stack's tunables and CPU cost knobs. Costs model the
// short code path of the native environment; the GPOS baseline charges its
// own, larger, per-operation costs on top of the same protocol logic.
type Config struct {
	// PerPacketCPU is the stack processing cost per packet per direction
	// (header parse/build, demux, connection lookup).
	PerPacketCPU sim.Time
	// AppDeliverCPU is the cost of invoking the application handler
	// (function call, IOBuf bookkeeping).
	AppDeliverCPU sim.Time
	// ArpTimeout bounds an unanswered ARP resolution.
	ArpTimeout sim.Time
	// RTO is the initial TCP retransmission timeout, used until the
	// connection has taken its first RTT sample (and for the connection's
	// whole life when AdaptiveRTO is off).
	RTO sim.Time
	// AdaptiveRTO enables the RFC 6298 SRTT/RTTVAR estimator: each
	// connection samples the RTT of non-retransmitted segments (Karn's
	// rule) and derives its own timeout, clamped to [RTOMin, RTOMax].
	AdaptiveRTO bool
	// RTOMin / RTOMax clamp the per-connection timeout. The clamps also
	// bound the exponential backoff ladder (RTOMax) so a stalled flow
	// keeps probing instead of sleeping for minutes.
	RTOMin, RTOMax sim.Time
	// FastRetransmit enables recovery on three duplicate ACKs, so a
	// single dropped segment in a window is repaired in about one RTT
	// instead of waiting out a full RTO.
	FastRetransmit bool
	// MaxRetransmitTime bounds how long one segment is retried before
	// the connection is torn down as dead. Time-based (rather than a
	// retry count) so the adaptive path, whose RTO can be microseconds,
	// keeps the same patience toward a rebooting peer as the fixed path.
	MaxRetransmitTime sim.Time
	// MSS is the TCP maximum segment size.
	MSS int
	// PollBatchThreshold is the number of frames observed in one receive
	// interrupt that flips the driver into polling mode (paper §3.2's
	// "interrupt rate exceeds a configurable threshold").
	PollBatchThreshold int
	// PollIdleRounds is the number of empty polls before the driver
	// re-enables interrupts.
	PollIdleRounds int
	// AdaptivePolling can be disabled for the ablation benchmark.
	AdaptivePolling bool
	// ForceCopyPerByte, when non-zero, charges a per-byte copy on both
	// receive and transmit - the zero-copy ablation: it simulates a stack
	// that copies at the app boundary like a conventional socket layer.
	ForceCopyPerByte float64
}

// DefaultConfig returns the calibrated native-stack configuration.
func DefaultConfig() Config {
	return Config{
		PerPacketCPU:       350 * sim.Nanosecond,
		AppDeliverCPU:      100 * sim.Nanosecond,
		ArpTimeout:         100 * sim.Millisecond,
		RTO:                200 * sim.Millisecond,
		AdaptiveRTO:        true,
		RTOMin:             1 * sim.Millisecond,
		RTOMax:             5 * sim.Second,
		FastRetransmit:     true,
		MaxRetransmitTime:  100 * sim.Second,
		MSS:                1460,
		PollBatchThreshold: 8,
		PollIdleRounds:     16,
		AdaptivePolling:    true,
	}
}

// Stack is one machine's network stack instance. It owns the interfaces
// and the protocol layers. One event manager per core drives it.
type Stack struct {
	M    *machine.Machine
	Mgrs []*event.Manager
	Cfg  Config
	Itfs []*Interface

	// Audit, when non-nil, receives a typed event for every TCP state
	// transition and loss-recovery action (retransmit, fast retransmit,
	// persist probe) on this stack; AuditNode labels those events with
	// the owning node's id. The stack itself has no node concept, so the
	// embedder (internal/hosted, or a test harness) wires both after
	// construction.
	Audit     *audit.Log
	AuditNode int
}

// NewStack creates a stack over the machine's event managers.
func NewStack(m *machine.Machine, mgrs []*event.Manager, cfg Config) *Stack {
	if cfg.MSS == 0 {
		cfg = DefaultConfig()
	}
	def := DefaultConfig()
	if cfg.RTOMin == 0 {
		cfg.RTOMin = def.RTOMin
	}
	if cfg.RTOMax == 0 {
		cfg.RTOMax = def.RTOMax
	}
	if cfg.MaxRetransmitTime == 0 {
		cfg.MaxRetransmitTime = def.MaxRetransmitTime
	}
	return &Stack{M: m, Mgrs: mgrs, Cfg: cfg}
}

// queueCore maps a NIC queue index to the core that services it.
func (s *Stack) queueCore(q int) int { return q % len(s.Mgrs) }

// AddInterface attaches a NIC with a static address configuration and
// brings up its receive queues.
func (s *Stack) AddInterface(nic *machine.NIC, addr, mask Ipv4Addr) *Interface {
	itf := &Interface{
		St:   s,
		NIC:  nic,
		Addr: addr,
		Mask: mask,
		arp:  newArpCache(),
		udp:  newUdpLayer(),
		tcp:  newTcpLayer(),
	}
	itf.tcp.itf = itf
	itf.udp.itf = itf
	s.Itfs = append(s.Itfs, itf)
	for qi, q := range nic.Queues {
		coreID := s.queueCore(qi)
		mgr := s.Mgrs[coreID]
		drv := &queueDriver{itf: itf, q: q, mgr: mgr}
		vec := mgr.AllocateVector(drv.onIRQ)
		q.SetIRQ(mgr.Core(), vec)
		itf.drivers = append(itf.drivers, drv)
	}
	return itf
}

// InterfaceFor returns the interface that owns addr, or the first
// interface when addr is unspecified.
func (s *Stack) InterfaceFor(addr Ipv4Addr) *Interface {
	for _, itf := range s.Itfs {
		if itf.Addr == addr {
			return itf
		}
	}
	if len(s.Itfs) > 0 {
		return s.Itfs[0]
	}
	return nil
}
